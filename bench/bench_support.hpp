#pragma once
// Shared plumbing for the paper-reproduction bench binaries: sequence
// construction, RD-curve rendering in the paper's layout, and CSV output.
//
// Every bench prints a human-readable table on stdout (mirroring the paper's
// rows) and writes a CSV into the current working directory for plotting.

#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/rd_sweep.hpp"
#include "core/builtin_estimators.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/kv.hpp"
#include "util/timer.hpp"
#include "video/frame.hpp"

namespace acbm::bench {

/// Standard command-line options shared by the reproduction benches.
struct BenchOptions {
  int frames = 40;          ///< frames per sequence (after decimation)
  int search_range = 15;    ///< the paper's p
  std::vector<int> qps = {16, 18, 20, 22, 24, 26, 28, 30};
  video::PictureSize size = video::kQcif;  ///< --size cif for 352×288
  std::string size_label = "QCIF";
  std::string csv_prefix;   ///< output file prefix (binary name)
  bool quick = false;       ///< reduced workload for smoke runs
  int threads = 1;          ///< ME worker threads (0 = all cores);
                            ///< results are bit-exact at any count
  int slices = 1;           ///< entropy-coding slices per frame (>1 emits
                            ///< ACV2 and changes measured rates slightly)
  std::string kernel = "auto";  ///< SAD kernel variant (process-global
                                ///< selection; every variant is bit-exact)
  std::string benchmark_out;    ///< when set, also write a
                                ///< google-benchmark-style JSON report here
  std::string trace_out;        ///< when set, write a Chrome trace-event
                                ///< JSON of the bench run here (benches that
                                ///< pass supports_trace only)
  /// Sweep-config spec (key=val,... — see analysis::SweepConfig::from_spec)
  /// applied on top of the individual flags by sweep_config(); lets one
  /// string reconfigure a bench ("mode=rd,deblock=1,qps=16:22").
  std::string config_spec;
  /// --estimators "spec;spec;..." — canonicalised estimator specs to run
  /// instead of the bench's default roster. ';'-separated because specs
  /// embed commas ("ACBM:alpha=500,beta=8;FSBM"). Empty = bench default.
  std::vector<std::string> estimators;
};

/// The roster a bench should iterate: --estimators when given, otherwise
/// the bench's own default (e.g. the full registry, or just "ACBM").
inline std::vector<std::string> estimator_roster(
    const BenchOptions& options, std::vector<std::string> fallback) {
  return options.estimators.empty() ? std::move(fallback)
                                    : options.estimators;
}

/// The bench's effective sweep configuration: flags first, --config on top.
/// Exits 2 on bad specs (usage error, like every other flag).
inline analysis::SweepConfig sweep_config(const BenchOptions& options) {
  analysis::SweepConfig sweep;
  sweep.qps = options.qps;
  sweep.search_range = options.search_range;
  sweep.parallel.threads = options.threads;
  sweep.slices = options.slices;
  try {
    return analysis::SweepConfig::from_spec(options.config_spec, sweep);
  } catch (const util::SpecError& e) {
    std::cerr << "bad --config spec: " << e.what() << '\n';
    std::exit(2);
  }
}

/// Joins the kernel names accepted on this build/CPU for usage text.
inline std::string kernel_names_for_usage() {
  std::string joined;
  for (const std::string& name : simd::available_kernel_names()) {
    if (!joined.empty()) {
      joined += "|";
    }
    joined += name;
  }
  return joined;
}

/// `supports_json` marks benches that actually emit rows through
/// JsonBenchReport; the others reject the flags instead of silently
/// writing nothing.
inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        const std::string& name,
                                        bool supports_json = false,
                                        bool supports_trace = false) {
  util::ArgParser parser;
  parser.add_option("frames", "frames per sequence", "40");
  parser.add_option("search-range", "FSBM search range p", "15");
  parser.add_option("qps", "comma-separated quantiser list",
                    "16,18,20,22,24,26,28,30");
  parser.add_option("size", "picture size: qcif or cif (the paper uses both)",
                    "qcif");
  parser.add_option("threads",
                    "encoder ME worker threads (0 = all cores); output is "
                    "bit-exact at any count",
                    "1");
  parser.add_option("slices",
                    "entropy-coding slices per frame (1 = legacy ACV1)",
                    "1");
  parser.add_option("benchmark_format",
                    "console (default) or json; json requires "
                    "--benchmark_out (google-benchmark flag names, so CI "
                    "drives every bench binary identically)",
                    "console");
  parser.add_option("benchmark_out",
                    "path for the google-benchmark-style JSON report", "");
  parser.add_option("kernel",
                    "SAD kernel variant: " + kernel_names_for_usage() +
                        " (bit-exact; only throughput changes)",
                    "auto");
  parser.add_option("config",
                    "sweep-config spec key=val,... applied after the "
                    "individual flags (keys: qps=16:22:30 colon list, "
                    "range, halfpel, me_lambda, mode, deblock, slices, "
                    "threads)",
                    "");
  parser.add_option("estimators",
                    "';'-separated estimator specs (NAME or "
                    "\"NAME:key=val,...\") replacing the bench's default "
                    "roster, e.g. \"ACBM;ACBM:alpha=500,beta=8;FSBM\"",
                    "");
  parser.add_option("trace",
                    "write a Chrome trace-event JSON of the bench run "
                    "(Perfetto-loadable); the traced run's numbers are "
                    "reported as usual but a trace adds a little overhead",
                    "");
  parser.add_flag("quick", "reduced workload (fewer frames and Qp values)");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage(name);
    std::exit(2);
  }
  if (parser.help_requested()) {
    std::cout << parser.usage(name);
    std::exit(0);
  }
  BenchOptions options;
  options.frames = static_cast<int>(parser.get_int("frames"));
  options.search_range = static_cast<int>(parser.get_int("search-range"));
  options.qps.clear();
  for (const std::string& tok : util::split_csv_list(parser.get("qps"))) {
    options.qps.push_back(std::stoi(tok));
  }
  if (parser.get("size") == "cif") {
    options.size = video::kCif;
    options.size_label = "CIF";
  } else if (parser.get("size") != "qcif") {
    std::cerr << "unknown --size (use qcif or cif)\n";
    std::exit(2);
  }
  options.csv_prefix = name;
  options.threads = static_cast<int>(parser.get_int("threads"));
  options.slices = static_cast<int>(parser.get_int("slices"));
  options.benchmark_out = parser.get("benchmark_out");
  if (parser.get("benchmark_format") != "console" &&
      parser.get("benchmark_format") != "json") {
    std::cerr << "unknown --benchmark_format (use console or json)\n";
    std::exit(2);
  }
  if (parser.get("benchmark_format") == "json" &&
      options.benchmark_out.empty()) {
    std::cerr << "--benchmark_format=json requires --benchmark_out=PATH\n";
    std::exit(2);
  }
  if (!supports_json && (parser.get("benchmark_format") == "json" ||
                         !options.benchmark_out.empty())) {
    std::cerr << name << " does not emit JSON rows yet; drop "
              << "--benchmark_format/--benchmark_out or use "
              << "bench_table1_complexity / bench_fig5_rd_qcif30 / "
              << "bench_fig6_rd_qcif10 / bench_kernels\n";
    std::exit(2);
  }
  options.trace_out = parser.get("trace");
  if (!supports_trace && !options.trace_out.empty()) {
    std::cerr << name << " does not emit traces; drop --trace or use "
              << "bench_service\n";
    std::exit(2);
  }
  options.kernel = parser.get("kernel");
  if (!simd::select_kernels_by_name(options.kernel)) {
    std::cerr << "unknown or unavailable --kernel '" << options.kernel
              << "' (use " << kernel_names_for_usage() << ")\n";
    std::exit(2);
  }
  options.config_spec = parser.get("config");
  // Validate and canonicalise every estimator spec up front: a typo should
  // be a usage error before any encoding starts, and canonical specs keep
  // tables/CSV/JSON joinable across runs regardless of key order.
  for (const std::string& spec :
       util::split_list(parser.get("estimators"), ';')) {
    try {
      options.estimators.push_back(
          core::builtin_estimators().canonical_spec(spec));
    } catch (const util::SpecError& e) {
      std::cerr << "bad --estimators spec '" << spec << "': " << e.what()
                << "\n\n"
                << core::builtin_estimators().spec_usage();
      std::exit(2);
    }
  }
  options.quick = parser.get_flag("quick");
  if (options.quick) {
    options.frames = std::min(options.frames, 12);
    options.qps = {16, 22, 30};
  }
  return options;
}

/// Minimal google-benchmark-compatible JSON report for the standalone
/// reproduction benches. CI runs bench_kernels (real google-benchmark) and
/// these binaries with the same --benchmark_format=json/--benchmark_out
/// flags and merges the outputs into one BENCH_ci.json perf trajectory, so
/// the row schema here mirrors google-benchmark's: a "context" object and a
/// "benchmarks" array whose entries carry name/real_time/time_unit plus
/// free-form numeric counters.
class JsonBenchReport {
 public:
  /// Inactive when `path` is empty (every add_row is a no-op).
  explicit JsonBenchReport(std::string path) : path_(std::move(path)) {}

  void add_row(const std::string& name, double real_time_ns,
               std::vector<std::pair<std::string, double>> counters = {}) {
    if (path_.empty()) {
      return;
    }
    rows_.push_back({name, real_time_ns, std::move(counters)});
  }

  /// Adds a string entry to the report's "context" object. Benches stamp
  /// the canonical specs that produced their rows (estimator_spec,
  /// sweep_config) so BENCH_ci.json artifacts are joinable across commits
  /// by exact configuration, not just by benchmark name;
  /// scripts/bench_gate.py forwards these keys into the merged artifact.
  void set_context(std::string key, std::string value) {
    if (path_.empty()) {
      return;
    }
    context_.emplace_back(std::move(key), std::move(value));
  }

  /// Writes the report; call once at the end of the bench.
  void write(const std::string& executable) const {
    if (path_.empty()) {
      return;
    }
    std::ofstream out(path_);
    if (!out) {
      throw std::runtime_error("cannot open " + path_ + " for writing");
    }
#ifdef NDEBUG
    constexpr const char* kBuildType = "release";
#else
    constexpr const char* kBuildType = "debug";
#endif
    out << "{\n  \"context\": {\n    \"executable\": \"" << executable
        << "\",\n    \"library_build_type\": \"" << kBuildType << '"';
    for (const auto& [key, value] : context_) {
      out << ",\n    \"" << key << "\": \"" << value << '"';
    }
    out << "\n  },\n"
        << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "    {\n      \"name\": \"" << row.name
          << "\",\n      \"run_name\": \"" << row.name
          << "\",\n      \"run_type\": \"iteration\","
          << "\n      \"iterations\": 1,\n      \"real_time\": "
          << util::CsvWriter::num(row.real_time_ns, 3)
          << ",\n      \"cpu_time\": "
          << util::CsvWriter::num(row.real_time_ns, 3)
          << ",\n      \"time_unit\": \"ns\"";
      for (const auto& [key, value] : row.counters) {
        out << ",\n      \"" << key << "\": "
            << util::CsvWriter::num(value, 4);
      }
      out << "\n    }" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "[json] " << path_ << '\n';
  }

 private:
  struct Row {
    std::string name;
    double real_time_ns = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::string path_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::vector<Row> rows_;
};

/// Builds the named sequence at `fps` (QCIF unless overridden).
inline std::vector<video::Frame> qcif_sequence(
    const std::string& name, int frames, int fps,
    video::PictureSize size = video::kQcif) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = fps;
  return synth::make_sequence(req);
}

/// Opens `<prefix>_<suffix>.csv` in the working directory.
inline std::ofstream open_csv(const std::string& prefix,
                              const std::string& suffix) {
  const std::string path =
      util::sanitize_filename(prefix + "_" + suffix) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::cout << "[csv] " << path << '\n';
  return out;
}

/// Prints one sequence's RD curves in the paper's figure layout: one row per
/// Qp, one (rate, PSNR) column pair per algorithm.
inline void print_rd_figure(std::ostream& out, const std::string& sequence,
                            int fps,
                            const std::vector<analysis::RdCurve>& curves,
                            const std::string& size_label = "QCIF") {
  out << "\n-- " << sequence << " sequence (" << size_label << " @ " << fps
      << " fps) --\n";
  std::vector<std::string> header = {"Qp"};
  for (const auto& curve : curves) {
    header.push_back(curve.algorithm + " kbit/s");
    header.push_back(curve.algorithm + " PSNR-Y dB");
  }
  util::TablePrinter table(header);
  if (curves.empty()) {
    return;
  }
  for (std::size_t i = 0; i < curves[0].points.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(curves[0].points[i].qp)};
    for (const auto& curve : curves) {
      row.push_back(util::CsvWriter::num(curve.points[i].kbps, 2));
      row.push_back(util::CsvWriter::num(curve.points[i].psnr_y, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Appends a set of curves to a long-format CSV
/// (sequence,fps,algorithm,qp,kbps,psnr_y,psnr_yuv,positions,...).
inline void write_rd_csv_header(util::CsvWriter& csv) {
  csv.row({"sequence", "fps", "algorithm", "qp", "kbps", "psnr_y", "psnr_yuv",
           "avg_positions_per_mb", "full_search_fraction", "skip_fraction",
           "mv_bits_share", "me_field_smoothness"});
}

inline void write_rd_csv_rows(util::CsvWriter& csv,
                              const analysis::RdCurve& curve) {
  for (const auto& p : curve.points) {
    csv.row({curve.sequence, std::to_string(curve.fps), curve.algorithm,
             std::to_string(p.qp), util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.psnr_yuv, 3),
             util::CsvWriter::num(p.avg_positions, 2),
             util::CsvWriter::num(p.full_search_fraction, 4),
             util::CsvWriter::num(p.skip_fraction, 4),
             util::CsvWriter::num(p.mv_bits_share, 4),
             util::CsvWriter::num(p.field_smoothness, 3)});
  }
}

/// Runs the Fig. 5/6 experiment at one frame rate: the paper's four
/// sequences × {ACBM, FSBM, PBM} swept over Qp. Prints four figure panels
/// and writes the CSV.
inline void run_rd_figure_bench(const std::string& bench_name, int fps,
                                const BenchOptions& options) {
  util::Timer timer;
  const analysis::SweepConfig sweep = sweep_config(options);

  auto csv_stream = open_csv(options.csv_prefix, "rd");
  util::CsvWriter csv(csv_stream);
  write_rd_csv_header(csv);

  // The paper's three, as estimator specs (bare names = paper parameters).
  const std::vector<std::string> estimators = {"ACBM", "FSBM", "PBM"};

  std::cout << bench_name << ": " << options.size_label << " @ " << fps
            << " fps, sweep " << sweep.to_spec() << ", " << options.frames
            << " frames, "
            << core::builtin_estimators().canonical_spec("ACBM")
            << ", SAD kernel " << simd::active_kernel_name() << "\n";

  JsonBenchReport json(options.benchmark_out);
  json.set_context("sweep_config", sweep.to_spec());
  json.set_context("estimator_spec",
                   core::builtin_estimators().canonical_spec("ACBM"));
  for (const auto& name : synth::standard_sequence_names()) {
    const auto frames =
        qcif_sequence(name, options.frames, fps, options.size);
    std::vector<analysis::RdCurve> curves;
    for (const std::string& estimator : estimators) {
      util::Timer curve_timer;
      curves.push_back(
          analysis::run_rd_sweep(frames, fps, estimator, sweep, name));
      write_rd_csv_rows(csv, curves.back());
      // One trajectory row per RD curve: wall time for the CI gate plus
      // deterministic rate/quality means over the swept Qp values. A curve
      // with no points (degenerate --qps input) emits no row — NaN means
      // would be invalid JSON.
      const analysis::RdCurve& curve = curves.back();
      if (!curve.points.empty()) {
        double kbps = 0.0;
        double psnr = 0.0;
        for (const analysis::RdPoint& p : curve.points) {
          kbps += p.kbps;
          psnr += p.psnr_y;
        }
        const double n = static_cast<double>(curve.points.size());
        json.add_row("BM_RdSweep/" + name + "@" + std::to_string(fps) +
                         "/" + curve.algorithm,
                     curve_timer.seconds() * 1e9,
                     {{"mean_kbps", kbps / n}, {"mean_psnr_y", psnr / n}});
      }
    }
    print_rd_figure(std::cout, name, fps, curves, options.size_label);

    // Shape check mirroring the paper's text: ACBM ≈ FSBM quality with a
    // fraction of the positions; PBM cheapest but weakest on hard content.
    const auto& acbm = curves[0].points;
    const auto& fsbm = curves[1].points;
    double worst_gap = 0.0;
    double positions_ratio = 0.0;
    for (std::size_t i = 0; i < acbm.size(); ++i) {
      worst_gap = std::max(worst_gap, fsbm[i].psnr_y - acbm[i].psnr_y);
      positions_ratio += acbm[i].avg_positions / fsbm[i].avg_positions;
    }
    positions_ratio /= static_cast<double>(acbm.size());
    std::cout << "   shape: worst ACBM-vs-FSBM PSNR gap "
              << util::CsvWriter::num(worst_gap, 2) << " dB; ACBM cost "
              << util::CsvWriter::num(100.0 * positions_ratio, 1)
              << "% of FSBM positions\n";
  }
  json.write(options.csv_prefix);
  std::cout << "\n[done] " << bench_name << " in "
            << util::CsvWriter::num(timer.seconds(), 1) << " s\n";
}

}  // namespace acbm::bench
