#pragma once
// Shared plumbing for the paper-reproduction bench binaries: sequence
// construction, RD-curve rendering in the paper's layout, and CSV output.
//
// Every bench prints a human-readable table on stdout (mirroring the paper's
// rows) and writes a CSV into the current working directory for plotting.

#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/rd_sweep.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "video/frame.hpp"

namespace acbm::bench {

/// Standard command-line options shared by the reproduction benches.
struct BenchOptions {
  int frames = 40;          ///< frames per sequence (after decimation)
  int search_range = 15;    ///< the paper's p
  std::vector<int> qps = {16, 18, 20, 22, 24, 26, 28, 30};
  video::PictureSize size = video::kQcif;  ///< --size cif for 352×288
  std::string size_label = "QCIF";
  std::string csv_prefix;   ///< output file prefix (binary name)
  bool quick = false;       ///< reduced workload for smoke runs
  int threads = 1;          ///< ME worker threads (0 = all cores);
                            ///< results are bit-exact at any count
  std::string kernel = "auto";  ///< SAD kernel variant (process-global
                                ///< selection; every variant is bit-exact)
};

/// Joins the kernel names accepted on this build/CPU for usage text.
inline std::string kernel_names_for_usage() {
  std::string joined;
  for (const std::string& name : simd::available_kernel_names()) {
    if (!joined.empty()) {
      joined += "|";
    }
    joined += name;
  }
  return joined;
}

inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        const std::string& name) {
  util::ArgParser parser;
  parser.add_option("frames", "frames per sequence", "40");
  parser.add_option("search-range", "FSBM search range p", "15");
  parser.add_option("qps", "comma-separated quantiser list",
                    "16,18,20,22,24,26,28,30");
  parser.add_option("size", "picture size: qcif or cif (the paper uses both)",
                    "qcif");
  parser.add_option("threads",
                    "encoder ME worker threads (0 = all cores); output is "
                    "bit-exact at any count",
                    "1");
  parser.add_option("kernel",
                    "SAD kernel variant: " + kernel_names_for_usage() +
                        " (bit-exact; only throughput changes)",
                    "auto");
  parser.add_flag("quick", "reduced workload (fewer frames and Qp values)");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage(name);
    std::exit(2);
  }
  if (parser.help_requested()) {
    std::cout << parser.usage(name);
    std::exit(0);
  }
  BenchOptions options;
  options.frames = static_cast<int>(parser.get_int("frames"));
  options.search_range = static_cast<int>(parser.get_int("search-range"));
  options.qps.clear();
  for (const std::string& tok : util::split_csv_list(parser.get("qps"))) {
    options.qps.push_back(std::stoi(tok));
  }
  if (parser.get("size") == "cif") {
    options.size = video::kCif;
    options.size_label = "CIF";
  } else if (parser.get("size") != "qcif") {
    std::cerr << "unknown --size (use qcif or cif)\n";
    std::exit(2);
  }
  options.csv_prefix = name;
  options.threads = static_cast<int>(parser.get_int("threads"));
  options.kernel = parser.get("kernel");
  if (!simd::select_kernels_by_name(options.kernel)) {
    std::cerr << "unknown or unavailable --kernel '" << options.kernel
              << "' (use " << kernel_names_for_usage() << ")\n";
    std::exit(2);
  }
  options.quick = parser.get_flag("quick");
  if (options.quick) {
    options.frames = std::min(options.frames, 12);
    options.qps = {16, 22, 30};
  }
  return options;
}

/// Builds the named sequence at `fps` (QCIF unless overridden).
inline std::vector<video::Frame> qcif_sequence(
    const std::string& name, int frames, int fps,
    video::PictureSize size = video::kQcif) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = fps;
  return synth::make_sequence(req);
}

/// Opens `<prefix>_<suffix>.csv` in the working directory.
inline std::ofstream open_csv(const std::string& prefix,
                              const std::string& suffix) {
  const std::string path =
      util::sanitize_filename(prefix + "_" + suffix) + ".csv";
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  std::cout << "[csv] " << path << '\n';
  return out;
}

/// Prints one sequence's RD curves in the paper's figure layout: one row per
/// Qp, one (rate, PSNR) column pair per algorithm.
inline void print_rd_figure(std::ostream& out, const std::string& sequence,
                            int fps,
                            const std::vector<analysis::RdCurve>& curves,
                            const std::string& size_label = "QCIF") {
  out << "\n-- " << sequence << " sequence (" << size_label << " @ " << fps
      << " fps) --\n";
  std::vector<std::string> header = {"Qp"};
  for (const auto& curve : curves) {
    header.push_back(curve.algorithm + " kbit/s");
    header.push_back(curve.algorithm + " PSNR-Y dB");
  }
  util::TablePrinter table(header);
  if (curves.empty()) {
    return;
  }
  for (std::size_t i = 0; i < curves[0].points.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(curves[0].points[i].qp)};
    for (const auto& curve : curves) {
      row.push_back(util::CsvWriter::num(curve.points[i].kbps, 2));
      row.push_back(util::CsvWriter::num(curve.points[i].psnr_y, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

/// Appends a set of curves to a long-format CSV
/// (sequence,fps,algorithm,qp,kbps,psnr_y,psnr_yuv,positions,...).
inline void write_rd_csv_header(util::CsvWriter& csv) {
  csv.row({"sequence", "fps", "algorithm", "qp", "kbps", "psnr_y", "psnr_yuv",
           "avg_positions_per_mb", "full_search_fraction", "skip_fraction",
           "mv_bits_share", "me_field_smoothness"});
}

inline void write_rd_csv_rows(util::CsvWriter& csv,
                              const analysis::RdCurve& curve) {
  for (const auto& p : curve.points) {
    csv.row({curve.sequence, std::to_string(curve.fps), curve.algorithm,
             std::to_string(p.qp), util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.psnr_yuv, 3),
             util::CsvWriter::num(p.avg_positions, 2),
             util::CsvWriter::num(p.full_search_fraction, 4),
             util::CsvWriter::num(p.skip_fraction, 4),
             util::CsvWriter::num(p.mv_bits_share, 4),
             util::CsvWriter::num(p.field_smoothness, 3)});
  }
}

/// Runs the Fig. 5/6 experiment at one frame rate: the paper's four
/// sequences × {ACBM, FSBM, PBM} swept over Qp. Prints four figure panels
/// and writes the CSV.
inline void run_rd_figure_bench(const std::string& bench_name, int fps,
                                const BenchOptions& options) {
  util::Timer timer;
  analysis::SweepConfig sweep;
  sweep.qps = options.qps;
  sweep.search_range = options.search_range;
  sweep.parallel.threads = options.threads;

  auto csv_stream = open_csv(options.csv_prefix, "rd");
  util::CsvWriter csv(csv_stream);
  write_rd_csv_header(csv);

  const std::vector<analysis::Algorithm> algorithms = {
      analysis::Algorithm::kAcbm, analysis::Algorithm::kFsbm,
      analysis::Algorithm::kPbm};

  std::cout << bench_name << ": " << options.size_label << " @ " << fps
            << " fps, " << options.frames
            << " frames, p = " << options.search_range
            << ", ACBM(alpha=1000, beta=8, gamma=0.25), SAD kernel "
            << simd::active_kernel_name() << "\n";

  for (const auto& name : synth::standard_sequence_names()) {
    const auto frames =
        qcif_sequence(name, options.frames, fps, options.size);
    std::vector<analysis::RdCurve> curves;
    for (analysis::Algorithm algo : algorithms) {
      curves.push_back(
          analysis::run_rd_sweep(frames, fps, algo, sweep, name));
      write_rd_csv_rows(csv, curves.back());
    }
    print_rd_figure(std::cout, name, fps, curves, options.size_label);

    // Shape check mirroring the paper's text: ACBM ≈ FSBM quality with a
    // fraction of the positions; PBM cheapest but weakest on hard content.
    const auto& acbm = curves[0].points;
    const auto& fsbm = curves[1].points;
    double worst_gap = 0.0;
    double positions_ratio = 0.0;
    for (std::size_t i = 0; i < acbm.size(); ++i) {
      worst_gap = std::max(worst_gap, fsbm[i].psnr_y - acbm[i].psnr_y);
      positions_ratio += acbm[i].avg_positions / fsbm[i].avg_positions;
    }
    positions_ratio /= static_cast<double>(acbm.size());
    std::cout << "   shape: worst ACBM-vs-FSBM PSNR gap "
              << util::CsvWriter::num(worst_gap, 2) << " dB; ACBM cost "
              << util::CsvWriter::num(100.0 * positions_ratio, 1)
              << "% of FSBM positions\n";
  }
  std::cout << "\n[done] " << bench_name << " in "
            << util::CsvWriter::num(timer.seconds(), 1) << " s\n";
}

}  // namespace acbm::bench
