// The α/β/γ sensitivity study the paper describes but does not tabulate
// (§4: "several simulations were performed with different α, β and γ
// values" before fixing 1000/8/¼).
//
// One parameter is swept at a time around the paper's operating point, on
// the hardest sequence (Foreman @ 30 fps) at Qp 20, reporting the
// quality/complexity trade-off each knob controls. Expected shape: larger
// α/β/γ → fewer positions and (weakly) lower PSNR; the paper's point sits
// where quality has saturated at FSBM level.

#include <iostream>

#include "bench_support.hpp"
#include "core/acbm.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  auto options =
      bench::parse_bench_options(argc, argv, "bench_ablation_params");
  util::Timer timer;
  const int qp = 20;

  analysis::SweepConfig sweep;
  sweep.search_range = options.search_range;
  sweep.parallel.threads = options.threads;

  const auto frames =
      bench::qcif_sequence("foreman", options.frames, /*fps=*/30);

  // FSBM and PBM anchors.
  const auto fsbm = analysis::make_estimator(analysis::Algorithm::kFsbm);
  const auto pbm = analysis::make_estimator(analysis::Algorithm::kPbm);
  const analysis::RdPoint anchor_full =
      analysis::run_rd_point(frames, 30, *fsbm, qp, sweep);
  const analysis::RdPoint anchor_pred =
      analysis::run_rd_point(frames, 30, *pbm, qp, sweep);

  std::cout << "ACBM parameter ablation - foreman QCIF@30, Qp " << qp
            << ", p = " << options.search_range << "\n"
            << "anchors: FSBM "
            << util::CsvWriter::num(anchor_full.psnr_y, 2) << " dB @ "
            << util::CsvWriter::num(anchor_full.avg_positions, 0)
            << " pos/MB;  PBM " << util::CsvWriter::num(anchor_pred.psnr_y, 2)
            << " dB @ " << util::CsvWriter::num(anchor_pred.avg_positions, 0)
            << " pos/MB\n";

  auto csv_stream = bench::open_csv(options.csv_prefix, "sweep");
  util::CsvWriter csv(csv_stream);
  csv.row({"knob", "alpha", "beta", "gamma", "psnr_y", "kbps",
           "positions_per_mb", "critical_fraction"});

  struct Config {
    const char* knob;
    core::AcbmParams params;
  };
  std::vector<Config> configs;
  for (double alpha : {0.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    configs.push_back({"alpha", {alpha, 8.0, 0.25}});
  }
  for (double beta : {0.0, 4.0, 8.0, 16.0, 32.0}) {
    configs.push_back({"beta", {1000.0, beta, 0.25}});
  }
  for (double gamma : {0.0, 0.125, 0.25, 0.5, 1.0}) {
    configs.push_back({"gamma", {1000.0, 8.0, gamma}});
  }

  util::TablePrinter table({"knob", "alpha", "beta", "gamma", "PSNR-Y dB",
                            "kbit/s", "pos/MB", "critical %"});
  for (const Config& config : configs) {
    sweep.acbm = config.params;
    const auto acbm =
        analysis::make_estimator(analysis::Algorithm::kAcbm, config.params);
    const analysis::RdPoint p =
        analysis::run_rd_point(frames, 30, *acbm, qp, sweep);
    table.add_row({config.knob, util::CsvWriter::num(config.params.alpha, 0),
                   util::CsvWriter::num(config.params.beta, 0),
                   util::CsvWriter::num(config.params.gamma, 3),
                   util::CsvWriter::num(p.psnr_y, 2),
                   util::CsvWriter::num(p.kbps, 1),
                   util::CsvWriter::num(p.avg_positions, 0),
                   util::CsvWriter::num(100.0 * p.full_search_fraction, 1)});
    csv.row({config.knob, util::CsvWriter::num(config.params.alpha, 0),
             util::CsvWriter::num(config.params.beta, 0),
             util::CsvWriter::num(config.params.gamma, 3),
             util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.avg_positions, 2),
             util::CsvWriter::num(p.full_search_fraction, 4)});
  }
  table.print(std::cout);
  std::cout << "(alpha/beta/gamma = 0/0/0 forces FSBM everywhere; large "
               "values approach pure PBM)\n";

  // ----- Codec design-choice ablations (DESIGN.md §7): half-pel precision,
  // ----- mode decision, in-loop deblocking — ACBM at paper parameters.
  std::cout << "\nCodec design-choice ablation (ACBM, foreman QCIF@30, Qp "
            << qp << "):\n";
  util::TablePrinter codec_table(
      {"configuration", "PSNR-Y dB", "kbit/s", "pos/MB"});
  struct CodecVariant {
    const char* label;
    bool half_pel;
    codec::ModeDecision mode;
    bool deblock;
  };
  const CodecVariant variants[] = {
      {"paper (half-pel, heuristic, no filter)", true,
       codec::ModeDecision::kHeuristic, false},
      {"integer-pel only", false, codec::ModeDecision::kHeuristic, false},
      {"RD mode decision", true, codec::ModeDecision::kRateDistortion, false},
      {"deblocking filter", true, codec::ModeDecision::kHeuristic, true},
      {"RD + deblocking", true, codec::ModeDecision::kRateDistortion, true},
  };
  csv.row({"--codec-variants--", "", "", "", "", "", "", ""});
  for (const CodecVariant& variant : variants) {
    analysis::SweepConfig vc;
    vc.search_range = options.search_range;
    vc.half_pel = variant.half_pel;
    vc.mode_decision = variant.mode;
    vc.deblock = variant.deblock;
    const auto acbm = analysis::make_estimator(analysis::Algorithm::kAcbm);
    const analysis::RdPoint p =
        analysis::run_rd_point(frames, 30, *acbm, qp, vc);
    codec_table.add_row({variant.label, util::CsvWriter::num(p.psnr_y, 2),
                         util::CsvWriter::num(p.kbps, 1),
                         util::CsvWriter::num(p.avg_positions, 0)});
    csv.row({variant.label, "", "", "", util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.avg_positions, 2), ""});
  }
  codec_table.print(std::cout);
  std::cout << "(half-pel off shows the precision the paper's encoder "
               "depends on;\nRD mode decision minimises J = SSD + "
               "lambda*bits, so it slides to a lower-rate\noperating point "
               "— lower PSNR but lower Lagrangian cost at this lambda)\n";

  std::cout << "[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
