// The α/β/γ sensitivity study the paper describes but does not tabulate
// (§4: "several simulations were performed with different α, β and γ
// values" before fixing 1000/8/¼).
//
// One parameter is swept at a time around the paper's operating point, on
// the hardest sequence (Foreman @ 30 fps) at Qp 20, reporting the
// quality/complexity trade-off each knob controls. Expected shape: larger
// α/β/γ → fewer positions and (weakly) lower PSNR; the paper's point sits
// where quality has saturated at FSBM level.
//
// Every configuration is built from an estimator spec string
// ("ACBM:alpha=500,beta=8,gamma=0.25") — the sweep needs no
// parameter-struct plumbing, which is exactly what parameterized registry
// specs are for.

#include <iostream>

#include "bench_support.hpp"
#include "core/acbm.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  auto options =
      bench::parse_bench_options(argc, argv, "bench_ablation_params");
  util::Timer timer;
  const int qp = 20;

  analysis::SweepConfig sweep = bench::sweep_config(options);

  const auto frames =
      bench::qcif_sequence("foreman", options.frames, /*fps=*/30);

  // FSBM and PBM anchors.
  const auto fsbm = analysis::make_estimator("FSBM");
  const auto pbm = analysis::make_estimator("PBM");
  const analysis::RdPoint anchor_full =
      analysis::run_rd_point(frames, 30, *fsbm, qp, sweep);
  const analysis::RdPoint anchor_pred =
      analysis::run_rd_point(frames, 30, *pbm, qp, sweep);

  std::cout << "ACBM parameter ablation - foreman QCIF@30, Qp " << qp
            << ", p = " << options.search_range << "\n"
            << "anchors: FSBM "
            << util::CsvWriter::num(anchor_full.psnr_y, 2) << " dB @ "
            << util::CsvWriter::num(anchor_full.avg_positions, 0)
            << " pos/MB;  PBM " << util::CsvWriter::num(anchor_pred.psnr_y, 2)
            << " dB @ " << util::CsvWriter::num(anchor_pred.avg_positions, 0)
            << " pos/MB\n";

  auto csv_stream = bench::open_csv(options.csv_prefix, "sweep");
  util::CsvWriter csv(csv_stream);
  csv.row({"knob", "spec", "alpha", "beta", "gamma", "psnr_y", "kbps",
           "positions_per_mb", "critical_fraction"});

  // The sweep matrix, authored as the spec strings a shell script would
  // pass to acbm_enc --estimator. Unset keys keep the paper defaults.
  struct Config {
    const char* knob;
    std::string spec;
  };
  std::vector<Config> configs;
  for (const char* alpha : {"0", "500", "1000", "2000", "4000"}) {
    configs.push_back({"alpha", std::string("ACBM:alpha=") + alpha});
  }
  for (const char* beta : {"0", "4", "8", "16", "32"}) {
    configs.push_back({"beta", std::string("ACBM:beta=") + beta});
  }
  for (const char* gamma : {"0", "0.125", "0.25", "0.5", "1"}) {
    configs.push_back({"gamma", std::string("ACBM:gamma=") + gamma});
  }

  util::TablePrinter table({"knob", "alpha", "beta", "gamma", "PSNR-Y dB",
                            "kbit/s", "pos/MB", "critical %"});
  for (const Config& config : configs) {
    const auto estimator = analysis::make_estimator(config.spec);
    const auto* acbm = dynamic_cast<const core::Acbm*>(estimator.get());
    const core::AcbmParams params = acbm->params();
    const analysis::RdPoint p =
        analysis::run_rd_point(frames, 30, *estimator, qp, sweep);
    table.add_row({config.knob, util::CsvWriter::num(params.alpha, 0),
                   util::CsvWriter::num(params.beta, 0),
                   util::CsvWriter::num(params.gamma, 3),
                   util::CsvWriter::num(p.psnr_y, 2),
                   util::CsvWriter::num(p.kbps, 1),
                   util::CsvWriter::num(p.avg_positions, 0),
                   util::CsvWriter::num(100.0 * p.full_search_fraction, 1)});
    csv.row({config.knob,
             core::builtin_estimators().canonical_spec(config.spec),
             util::CsvWriter::num(params.alpha, 0),
             util::CsvWriter::num(params.beta, 0),
             util::CsvWriter::num(params.gamma, 3),
             util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.avg_positions, 2),
             util::CsvWriter::num(p.full_search_fraction, 4)});
  }
  table.print(std::cout);
  std::cout << "(alpha/beta/gamma = 0/0/0 forces FSBM everywhere; large "
               "values approach pure PBM)\n";

  // ----- Codec design-choice ablations (DESIGN.md §7): half-pel precision,
  // ----- mode decision, in-loop deblocking — ACBM at paper parameters.
  std::cout << "\nCodec design-choice ablation (ACBM, foreman QCIF@30, Qp "
            << qp << "):\n";
  util::TablePrinter codec_table(
      {"configuration", "PSNR-Y dB", "kbit/s", "pos/MB"});
  // Each variant is a sweep-config spec applied over the bench's base —
  // the same strings a script would pass via --config.
  struct CodecVariant {
    const char* label;
    const char* spec;
  };
  const CodecVariant variants[] = {
      {"paper (half-pel, heuristic, no filter)", ""},
      {"integer-pel only", "halfpel=0"},
      {"RD mode decision", "mode=rd"},
      {"deblocking filter", "deblock=1"},
      {"RD + deblocking", "mode=rd,deblock=1"},
  };
  csv.row({"--codec-variants--", "", "", "", "", "", "", "", ""});
  for (const CodecVariant& variant : variants) {
    const analysis::SweepConfig vc =
        analysis::SweepConfig::from_spec(variant.spec, sweep);
    const auto acbm = analysis::make_estimator("ACBM");
    const analysis::RdPoint p =
        analysis::run_rd_point(frames, 30, *acbm, qp, vc);
    codec_table.add_row({variant.label, util::CsvWriter::num(p.psnr_y, 2),
                         util::CsvWriter::num(p.kbps, 1),
                         util::CsvWriter::num(p.avg_positions, 0)});
    csv.row({variant.label, variant.spec, "", "", "",
             util::CsvWriter::num(p.psnr_y, 3),
             util::CsvWriter::num(p.kbps, 3),
             util::CsvWriter::num(p.avg_positions, 2), ""});
  }
  codec_table.print(std::cout);
  std::cout << "(half-pel off shows the precision the paper's encoder "
               "depends on;\nRD mode decision minimises J = SSD + "
               "lambda*bits, so it slides to a lower-rate\noperating point "
               "— lower PSNR but lower Lagrangian cost at this lambda)\n";

  std::cout << "[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
