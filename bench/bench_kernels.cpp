// Engineering microbenchmarks (google-benchmark): the kernels the paper's
// complexity argument counts — SAD variants, half-pel interpolation, the
// search algorithms per block, DCT, and whole-encoder throughput. Not a
// paper artefact; used to sanity-check that the position counts in Table 1
// translate into real time.

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/rd_sweep.hpp"
#include "codec/dct.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/decimation.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "me/sad.hpp"
#include "synth/sequences.hpp"
#include "util/rng.hpp"
#include "video/interp.hpp"

namespace {

using namespace acbm;

video::Plane bench_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
    }
  }
  p.extend_border();
  return p;
}

void BM_Sad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 1);
  const video::Plane b = bench_plane(176, 144, 2);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        me::sad_block(a, 32, 32, b, 32 + (offset & 7), 32, 16, 16));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sad16x16);

void BM_Sad16x16EarlyExit(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 3);
  const video::Plane b = bench_plane(176, 144, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block(a, 32, 32, b, 36, 34, 16, 16,
                                           /*early_exit=*/500));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sad16x16EarlyExit);

void BM_SadDecimatedQuincunx(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 5);
  const video::Plane b = bench_plane(176, 144, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block_decimated(
        a, 32, 32, b, 36, 34, 16, 16, me::DecimationPattern::kQuincunx4to1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SadDecimatedQuincunx);

void BM_IntraSad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::intra_sad(a, 32, 32, 16, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraSad16x16);

void BM_HalfpelPlanesQcif(benchmark::State& state) {
  const video::Plane src = bench_plane(176, 144, 8);
  for (auto _ : state) {
    video::HalfpelPlanes hp(src);
    benchmark::DoNotOptimize(hp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfpelPlanesQcif);

template <typename Estimator>
void run_search_benchmark(benchmark::State& state, int range) {
  const video::Plane ref = bench_plane(176, 144, 9);
  const video::Plane cur = bench_plane(176, 144, 10);
  const video::HalfpelPlanes hp(ref);
  Estimator estimator;
  me::BlockContext ctx;
  ctx.cur = &cur;
  ctx.ref = &hp;
  ctx.x = 80;
  ctx.y = 64;
  ctx.window = me::unrestricted_window(range);
  std::uint64_t positions = 0;
  for (auto _ : state) {
    const me::EstimateResult r = estimator.estimate(ctx);
    positions += r.positions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["positions/block"] = benchmark::Counter(
      static_cast<double>(positions) / static_cast<double>(state.iterations()));
}

void BM_FullSearchP15(benchmark::State& state) {
  run_search_benchmark<me::FullSearch>(state, 15);
}
BENCHMARK(BM_FullSearchP15)->Unit(benchmark::kMicrosecond);

void BM_PbmP15(benchmark::State& state) {
  run_search_benchmark<me::Pbm>(state, 15);
}
BENCHMARK(BM_PbmP15)->Unit(benchmark::kMicrosecond);

void BM_AcbmP15(benchmark::State& state) {
  run_search_benchmark<core::Acbm>(state, 15);
}
BENCHMARK(BM_AcbmP15)->Unit(benchmark::kMicrosecond);

void BM_ForwardDct8x8(benchmark::State& state) {
  std::int16_t in[codec::kDctSamples];
  util::Rng rng(11);
  for (auto& v : in) {
    v = static_cast<std::int16_t>(rng.next_in_range(-255, 255));
  }
  double out[codec::kDctSamples];
  for (auto _ : state) {
    codec::forward_dct8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct8x8);

void BM_EncodeQcifFrame(benchmark::State& state) {
  // Whole-encoder throughput with ACBM at the paper's operating point.
  synth::SequenceRequest req;
  req.name = "carphone";
  req.frame_count = 2;
  const auto frames = synth::make_sequence(req);
  for (auto _ : state) {
    state.PauseTiming();
    core::Acbm acbm;
    codec::EncoderConfig cfg;
    cfg.qp = 16;
    codec::Encoder enc(video::kQcif, cfg, acbm);
    (void)enc.encode_frame(frames[0]);  // intra frame excluded from timing
    state.ResumeTiming();
    benchmark::DoNotOptimize(enc.encode_frame(frames[1]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQcifFrame)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
