// Engineering microbenchmarks (google-benchmark): the kernels the paper's
// complexity argument counts — SAD variants, half-pel interpolation, the
// search algorithms per block, DCT, and whole-encoder throughput. Not a
// paper artefact; used to sanity-check that the position counts in Table 1
// translate into real time.
//
// The BM_SadKernel/* family is registered once per compiled-and-supported
// SIMD variant (scalar, sse2, avx2) and calls that variant's table directly,
// so one run reports per-variant throughput side by side — the measurement
// behind docs/BENCHMARKING.md's kernel speedup table. Everything else goes
// through me::sad_block and friends, i.e. the globally selected table:
// `--kernel=scalar|sse2|avx2|auto` (parsed here before google-benchmark's
// own flags) pins it for A/B runs of the search and encoder benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/rd_sweep.hpp"
#include "codec/dct.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/decimation.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "me/sad.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"
#include "util/rng.hpp"
#include "video/interp.hpp"

namespace {

using namespace acbm;

video::Plane bench_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
    }
  }
  p.extend_border();
  return p;
}

// ------------------------------------------------------ per-variant kernels

/// Full-block 16×16 SAD straight through one variant's table entry.
/// bytes/s across the BM_SadKernel/<variant> rows is the per-variant
/// throughput comparison (256 block bytes per call).
void sad_kernel_variant(benchmark::State& state, const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 1);
  const video::Plane b = bench_plane(176, 144, 2);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        k->sad(a.row(32) + 32, a.stride(), b.row(32) + 32 + (offset & 7),
               b.stride(), 16, 16, me::kNoEarlyExit));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}

void sad_kernel_early_exit_variant(benchmark::State& state,
                                   const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 3);
  const video::Plane b = bench_plane(176, 144, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->sad(a.row(32) + 32, a.stride(),
                                    b.row(34) + 36, b.stride(), 16, 16,
                                    /*early_exit=*/500));
  }
  state.SetItemsProcessed(state.iterations());
}

void sad_kernel_quincunx_variant(benchmark::State& state,
                                 const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 5);
  const video::Plane b = bench_plane(176, 144, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->sad_quincunx(a.row(32) + 32, a.stride(),
                                             b.row(34) + 36, b.stride(), 16,
                                             16));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 64);  // 4:1 of 256
}

/// One per-variant registration for every table the build/CPU offers.
void register_kernel_variant_benchmarks() {
  for (simd::KernelIsa isa : {simd::KernelIsa::kScalar,
                              simd::KernelIsa::kSse2,
                              simd::KernelIsa::kAvx2}) {
    const simd::SadKernels* k = simd::kernels_for(isa);
    if (k == nullptr) {
      continue;
    }
    const std::string suffix = k->name;
    benchmark::RegisterBenchmark(("BM_SadKernel16x16/" + suffix).c_str(),
                                 sad_kernel_variant, k);
    benchmark::RegisterBenchmark(
        ("BM_SadKernelEarlyExit/" + suffix).c_str(),
        sad_kernel_early_exit_variant, k);
    benchmark::RegisterBenchmark(
        ("BM_SadKernelQuincunx/" + suffix).c_str(),
        sad_kernel_quincunx_variant, k);
  }
}

// --------------------------------------------- dispatched-path benchmarks

void BM_Sad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 1);
  const video::Plane b = bench_plane(176, 144, 2);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        me::sad_block(a, 32, 32, b, 32 + (offset & 7), 32, 16, 16));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sad16x16);

void BM_Sad16x16EarlyExit(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 3);
  const video::Plane b = bench_plane(176, 144, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block(a, 32, 32, b, 36, 34, 16, 16,
                                           /*early_exit=*/500));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sad16x16EarlyExit);

void BM_SadDecimatedQuincunx(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 5);
  const video::Plane b = bench_plane(176, 144, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block_decimated(
        a, 32, 32, b, 36, 34, 16, 16, me::DecimationPattern::kQuincunx4to1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SadDecimatedQuincunx);

void BM_IntraSad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::intra_sad(a, 32, 32, 16, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraSad16x16);

void BM_HalfpelPlanesQcif(benchmark::State& state) {
  const video::Plane src = bench_plane(176, 144, 8);
  for (auto _ : state) {
    video::HalfpelPlanes hp(src);
    benchmark::DoNotOptimize(hp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfpelPlanesQcif);

template <typename Estimator>
void run_search_benchmark(benchmark::State& state, int range) {
  const video::Plane ref = bench_plane(176, 144, 9);
  const video::Plane cur = bench_plane(176, 144, 10);
  const video::HalfpelPlanes hp(ref);
  Estimator estimator;
  me::BlockContext ctx;
  ctx.cur = &cur;
  ctx.ref = &hp;
  ctx.x = 80;
  ctx.y = 64;
  ctx.window = me::unrestricted_window(range);
  std::uint64_t positions = 0;
  for (auto _ : state) {
    const me::EstimateResult r = estimator.estimate(ctx);
    positions += r.positions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["positions/block"] = benchmark::Counter(
      static_cast<double>(positions) / static_cast<double>(state.iterations()));
}

void BM_FullSearchP15(benchmark::State& state) {
  run_search_benchmark<me::FullSearch>(state, 15);
}
BENCHMARK(BM_FullSearchP15)->Unit(benchmark::kMicrosecond);

void BM_PbmP15(benchmark::State& state) {
  run_search_benchmark<me::Pbm>(state, 15);
}
BENCHMARK(BM_PbmP15)->Unit(benchmark::kMicrosecond);

void BM_AcbmP15(benchmark::State& state) {
  run_search_benchmark<core::Acbm>(state, 15);
}
BENCHMARK(BM_AcbmP15)->Unit(benchmark::kMicrosecond);

void BM_ForwardDct8x8(benchmark::State& state) {
  std::int16_t in[codec::kDctSamples];
  util::Rng rng(11);
  for (auto& v : in) {
    v = static_cast<std::int16_t>(rng.next_in_range(-255, 255));
  }
  double out[codec::kDctSamples];
  for (auto _ : state) {
    codec::forward_dct8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct8x8);

void BM_EntropyStage(benchmark::State& state) {
  // Stage-3 (entropy + reconstruction) scaling across slice counts. Intra
  // frames skip the motion and mode stages entirely, so an intra_period=1
  // encoder measures the entropy stage almost pure: slices:1 is the serial
  // legacy path, slices:N runs N independently-predicted slices on N pool
  // workers. CIF gives the stage enough macroblocks to amortise dispatch.
  const int slices = static_cast<int>(state.range(0));
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = video::kCif;
  req.frame_count = 1;
  const auto frames = synth::make_sequence(req);
  core::Acbm acbm;  // never consulted: every frame is intra
  codec::EncoderConfig cfg;
  cfg.qp = 16;
  cfg.intra_period = 1;
  cfg.slices = slices;
  cfg.parallel.threads = slices;
  for (auto _ : state) {
    // Fresh encoder per iteration, constructed AND destroyed untimed: a
    // reused one would accumulate the dead bitstream in its writer (buffer
    // reallocations inside the timed region), and the destructor joins the
    // slice pool's threads — a cost that grows with the slices arg and
    // would bias the very scaling this row exists to show.
    state.PauseTiming();
    auto enc = std::make_unique<codec::Encoder>(video::kCif, cfg, acbm);
    state.ResumeTiming();
    benchmark::DoNotOptimize(enc->encode_frame(frames[0]));
    state.PauseTiming();
    enc.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntropyStage)
    ->ArgName("slices")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_EncodeQcifFrame(benchmark::State& state) {
  // Whole-encoder throughput with ACBM at the paper's operating point.
  synth::SequenceRequest req;
  req.name = "carphone";
  req.frame_count = 2;
  const auto frames = synth::make_sequence(req);
  for (auto _ : state) {
    state.PauseTiming();
    core::Acbm acbm;
    codec::EncoderConfig cfg;
    cfg.qp = 16;
    codec::Encoder enc(video::kQcif, cfg, acbm);
    (void)enc.encode_frame(frames[0]);  // intra frame excluded from timing
    state.ResumeTiming();
    benchmark::DoNotOptimize(enc.encode_frame(frames[1]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQcifFrame)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: peel our --kernel flag off argv (google-benchmark rejects
// unknown flags), select the global table, then register the per-variant
// benchmarks and hand over to the library.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string kernel = "auto";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      kernel = argv[i] + 9;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!acbm::simd::select_kernels_by_name(kernel)) {
    std::fprintf(stderr,
                 "unknown or unavailable --kernel '%s' on this build/CPU "
                 "(use scalar|sse2|avx2|auto)\n",
                 kernel.c_str());
    return 2;
  }
  std::printf("dispatched SAD kernel: %s\n",
              std::string(acbm::simd::active_kernel_name()).c_str());
  register_kernel_variant_benchmarks();
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
