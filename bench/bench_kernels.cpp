// Engineering microbenchmarks (google-benchmark): the kernels the paper's
// complexity argument counts — SAD variants, half-pel interpolation, the
// search algorithms per block, DCT, and whole-encoder throughput. Not a
// paper artefact; used to sanity-check that the position counts in Table 1
// translate into real time.
//
// The BM_SadKernel/* family is registered once per compiled-and-supported
// SIMD variant (scalar, sse2, avx2) and calls that variant's table directly,
// so one run reports per-variant throughput side by side — the measurement
// behind docs/BENCHMARKING.md's kernel speedup table. Everything else goes
// through me::sad_block and friends, i.e. the globally selected table:
// `--kernel=scalar|sse2|avx2|auto` (parsed here before google-benchmark's
// own flags) pins it for A/B runs of the search and encoder benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/rd_sweep.hpp"
#include "codec/dct.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/decimation.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "me/sad.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"
#include "util/rng.hpp"
#include "video/interp.hpp"

namespace {

using namespace acbm;

video::Plane bench_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      p.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
    }
  }
  p.extend_border();
  return p;
}

// ------------------------------------------------------ per-variant kernels

/// Full-block 16×16 SAD straight through one variant's table entry.
/// bytes/s across the BM_SadKernel/<variant> rows is the per-variant
/// throughput comparison (256 block bytes per call).
void sad_kernel_variant(benchmark::State& state, const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 1);
  const video::Plane b = bench_plane(176, 144, 2);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        k->sad(a.row(32) + 32, a.stride(), b.row(32) + 32 + (offset & 7),
               b.stride(), 16, 16, me::kNoEarlyExit));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}

void sad_kernel_early_exit_variant(benchmark::State& state,
                                   const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 3);
  const video::Plane b = bench_plane(176, 144, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->sad(a.row(32) + 32, a.stride(),
                                    b.row(34) + 36, b.stride(), 16, 16,
                                    /*early_exit=*/500));
  }
  state.SetItemsProcessed(state.iterations());
}

void sad_kernel_quincunx_variant(benchmark::State& state,
                                 const simd::SadKernels* k) {
  const video::Plane a = bench_plane(176, 144, 5);
  const video::Plane b = bench_plane(176, 144, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k->sad_quincunx(a.row(32) + 32, a.stride(),
                                             b.row(34) + 36, b.stride(), 16,
                                             16));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 64);  // 4:1 of 256
}

/// Half-pel SAD the way the PR-3 encoder did it: against a phase plane
/// pre-interpolated once per frame, through one variant's plain `sad`
/// entry. The plane build itself is outside the loop — this row is the
/// per-candidate cost the fused kernel competes with, and the whole-frame
/// interpolation it additionally saves shows up in BM_HalfpelPlanesQcif.
void sad_halfpel_preinterp_variant(benchmark::State& state,
                                   const simd::SadKernels* k) {
  const video::Plane cur = bench_plane(176, 144, 21);
  const video::Plane ref = bench_plane(176, 144, 22);
  const video::HalfpelPlanes hp(ref);
  const video::Plane& phase = hp.plane(1, 1);  // HV: the expensive phase
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        k->sad(cur.row(32) + 32, cur.stride(),
               phase.row(30) + 30 + (offset & 7), phase.stride(), 16, 16,
               me::kNoEarlyExit));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}

/// The fused interpolate+SAD path (HV phase) through the globally selected
/// table — registered as BM_SadHalfpel/fused. Beating the preinterp
/// /scalar row per call while skipping the whole-frame interpolation pass
/// is the win the reserved sad_halfpel slot existed for.
void BM_SadHalfpelFused(benchmark::State& state) {
  const video::Plane cur = bench_plane(176, 144, 21);
  const video::Plane ref = bench_plane(176, 144, 22);
  const video::HalfpelPlanes hp(ref);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block_halfpel(
        cur, 32, 32, hp, 2 * (30 + (offset & 7)) + 1, 2 * 30 + 1, 16, 16));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}

/// One per-variant registration for every table the build/CPU offers.
void register_kernel_variant_benchmarks() {
  for (simd::KernelIsa isa : {simd::KernelIsa::kScalar,
                              simd::KernelIsa::kSse2,
                              simd::KernelIsa::kAvx2}) {
    const simd::SadKernels* k = simd::kernels_for(isa);
    if (k == nullptr) {
      continue;
    }
    const std::string suffix = k->name;
    benchmark::RegisterBenchmark(("BM_SadKernel16x16/" + suffix).c_str(),
                                 sad_kernel_variant, k);
    benchmark::RegisterBenchmark(
        ("BM_SadKernelEarlyExit/" + suffix).c_str(),
        sad_kernel_early_exit_variant, k);
    benchmark::RegisterBenchmark(
        ("BM_SadKernelQuincunx/" + suffix).c_str(),
        sad_kernel_quincunx_variant, k);
    benchmark::RegisterBenchmark(("BM_SadHalfpel/" + suffix).c_str(),
                                 sad_halfpel_preinterp_variant, k);
  }
  benchmark::RegisterBenchmark("BM_SadHalfpel/fused", BM_SadHalfpelFused);
}

// --------------------------------------------- dispatched-path benchmarks

void BM_Sad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 1);
  const video::Plane b = bench_plane(176, 144, 2);
  int offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        me::sad_block(a, 32, 32, b, 32 + (offset & 7), 32, 16, 16));
    ++offset;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Sad16x16);

void BM_Sad16x16EarlyExit(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 3);
  const video::Plane b = bench_plane(176, 144, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block(a, 32, 32, b, 36, 34, 16, 16,
                                           /*early_exit=*/500));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sad16x16EarlyExit);

void BM_SadDecimatedQuincunx(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 5);
  const video::Plane b = bench_plane(176, 144, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::sad_block_decimated(
        a, 32, 32, b, 36, 34, 16, 16, me::DecimationPattern::kQuincunx4to1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SadDecimatedQuincunx);

void BM_IntraSad16x16(benchmark::State& state) {
  const video::Plane a = bench_plane(176, 144, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(me::intra_sad(a, 32, 32, 16, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraSad16x16);

void BM_HalfpelPlanesQcif(benchmark::State& state) {
  // Construction is lazy since the fused kernels landed; force the
  // interpolated phases so the row keeps measuring the whole-frame
  // interpolation pass — the cost every encode that stays on the fused
  // path now skips.
  const video::Plane src = bench_plane(176, 144, 8);
  for (auto _ : state) {
    video::HalfpelPlanes hp(src);
    benchmark::DoNotOptimize(hp.plane(1, 1).at(0, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfpelPlanesQcif);

template <typename Estimator>
void run_search_benchmark(benchmark::State& state, int range) {
  const video::Plane ref = bench_plane(176, 144, 9);
  const video::Plane cur = bench_plane(176, 144, 10);
  const video::HalfpelPlanes hp(ref);
  Estimator estimator;
  me::BlockContext ctx;
  ctx.cur = &cur;
  ctx.ref = &hp;
  ctx.x = 80;
  ctx.y = 64;
  ctx.window = me::unrestricted_window(range);
  std::uint64_t positions = 0;
  for (auto _ : state) {
    const me::EstimateResult r = estimator.estimate(ctx);
    positions += r.positions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["positions/block"] = benchmark::Counter(
      static_cast<double>(positions) / static_cast<double>(state.iterations()));
}

void BM_FullSearchP15(benchmark::State& state) {
  run_search_benchmark<me::FullSearch>(state, 15);
}
BENCHMARK(BM_FullSearchP15)->Unit(benchmark::kMicrosecond);

void BM_PbmP15(benchmark::State& state) {
  run_search_benchmark<me::Pbm>(state, 15);
}
BENCHMARK(BM_PbmP15)->Unit(benchmark::kMicrosecond);

void BM_AcbmP15(benchmark::State& state) {
  run_search_benchmark<core::Acbm>(state, 15);
}
BENCHMARK(BM_AcbmP15)->Unit(benchmark::kMicrosecond);

void BM_ForwardDct8x8(benchmark::State& state) {
  std::int16_t in[codec::kDctSamples];
  util::Rng rng(11);
  for (auto& v : in) {
    v = static_cast<std::int16_t>(rng.next_in_range(-255, 255));
  }
  double out[codec::kDctSamples];
  for (auto _ : state) {
    codec::forward_dct8x8(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct8x8);

void BM_EntropyStage(benchmark::State& state) {
  // Stage-3 (MVD/entropy coding + reconstruction) scaling across slice
  // counts, reported via the pipeline's own stage stopwatch
  // (FrameReport::entropy_stage_seconds + UseManualTime) so the row keeps
  // measuring the stage it is named after now that macroblock planning
  // runs in its own parallel stage: slices:1 is the serial legacy path,
  // slices:N writes N independently-predicted slices on N pool workers.
  // Intra frames skip motion/mode, and CIF gives the stage enough
  // macroblocks to amortise dispatch.
  const int slices = static_cast<int>(state.range(0));
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = video::kCif;
  req.frame_count = 1;
  const auto frames = synth::make_sequence(req);
  core::Acbm acbm;  // never consulted: every frame is intra
  codec::EncoderConfig cfg;
  cfg.qp = 16;
  cfg.intra_period = 1;
  cfg.slices = slices;
  cfg.parallel.threads = slices;
  for (auto _ : state) {
    // Fresh encoder per iteration (outside the manual-time region): a
    // reused one would accumulate the dead bitstream in its writer, and
    // the destructor joins the pool threads — costs that grow with the
    // slices arg and would bias the scaling this row exists to show.
    auto enc = std::make_unique<codec::Encoder>(video::kCif, cfg, acbm);
    const codec::FrameReport report = enc->encode_frame(frames[0]);
    state.SetIterationTime(report.entropy_stage_seconds);
    benchmark::DoNotOptimize(report.bits);
    enc.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntropyStage)
    ->ArgName("slices")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_PlanStage(benchmark::State& state) {
  // Stage-2.5 (macroblock planning: prediction, DCT, quantisation, RD
  // candidate reconstruction + SSD) scaling across worker threads,
  // reported via FrameReport::plan_stage_seconds. Rate–distortion mode is
  // the planning-heavy operating point — three candidate reconstructions
  // per macroblock, all of which used to serialise inside the entropy
  // loop. The timed frame is a P frame, so the row includes the real
  // inter-planning path (motion compensation + residual transform).
  const int threads = static_cast<int>(state.range(0));
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = video::kCif;
  req.frame_count = 2;
  const auto frames = synth::make_sequence(req);
  codec::EncoderConfig cfg;
  cfg.qp = 16;
  cfg.mode_decision = codec::ModeDecision::kRateDistortion;
  cfg.parallel.threads = threads;
  for (auto _ : state) {
    core::Acbm acbm;
    auto enc = std::make_unique<codec::Encoder>(video::kCif, cfg, acbm);
    (void)enc->encode_frame(frames[0]);  // intra; not reported
    const codec::FrameReport report = enc->encode_frame(frames[1]);
    state.SetIterationTime(report.plan_stage_seconds);
    benchmark::DoNotOptimize(report.bits);
    enc.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanStage)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_EncodeQcifFrame(benchmark::State& state) {
  // Whole-encoder throughput with ACBM at the paper's operating point.
  synth::SequenceRequest req;
  req.name = "carphone";
  req.frame_count = 2;
  const auto frames = synth::make_sequence(req);
  for (auto _ : state) {
    state.PauseTiming();
    core::Acbm acbm;
    codec::EncoderConfig cfg;
    cfg.qp = 16;
    codec::Encoder enc(video::kQcif, cfg, acbm);
    (void)enc.encode_frame(frames[0]);  // intra frame excluded from timing
    state.ResumeTiming();
    benchmark::DoNotOptimize(enc.encode_frame(frames[1]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQcifFrame)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: peel our --kernel flag off argv (google-benchmark rejects
// unknown flags), select the global table, then register the per-variant
// benchmarks and hand over to the library.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string kernel = "auto";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernel=", 9) == 0) {
      kernel = argv[i] + 9;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!acbm::simd::select_kernels_by_name(kernel)) {
    std::fprintf(stderr,
                 "unknown or unavailable --kernel '%s' on this build/CPU "
                 "(use scalar|sse2|avx2|auto)\n",
                 kernel.c_str());
    return 2;
  }
  std::printf("dispatched SAD kernel: %s\n",
              std::string(acbm::simd::active_kernel_name()).c_str());
  register_kernel_variant_benchmarks();
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
