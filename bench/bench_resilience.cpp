// Error-resilience sweep: concealment quality and decode throughput under a
// seeded lossy channel (sim::Channel) as a function of loss rate, slice
// count, and intra-refresh period.
//
// The experiment mirrors the paper's transmission setting: a slice-
// structured ACV2 stream crosses a bursty channel (Gilbert-Elliott,
// burst=8), the decoder runs with conceal=resync, and we measure how close
// the concealed reconstruction stays to the clean decode. More slices per
// frame shrink the blast radius of one lost unit; a shorter intra period
// stops concealment error from propagating through the prediction chain —
// both cost rate, which bench_slices/bench_fig5 quantify, so this bench
// reports only the resilience side.
//
// Everything is deterministic: the channel is seeded (seed=7), the encoder
// is bit-exact, and the decoder's concealment is normative
// (docs/RESILIENCE.md), so concealment_psnr_db and concealed_slice_pct are
// gateable counters, not noisy measurements. JSON rows
// (BM_Resilience/gilbert/loss:L/slices:S/intra:P) carry
// concealment_psnr_db / concealed_slice_pct / decode_fps; wall time of the
// damaged decode is the row's real_time.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "sim/channel.hpp"
#include "video/psnr.hpp"

namespace {

using namespace acbm;

// PSNR cap for identical frames: psnr() returns +inf on zero MSE, which is
// not representable in JSON, so rows clamp to 99 dB (same convention as the
// RD sweeps' lossless corner).
constexpr double kPsnrCap = 99.0;

std::vector<std::uint8_t> encode_stream(const std::vector<video::Frame>& in,
                                        const codec::EncoderConfig& config) {
  const auto est = core::builtin_estimators().create("ACBM");
  codec::Encoder encoder({in[0].width(), in[0].height()}, config, *est);
  for (const video::Frame& frame : in) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

struct ResilienceCell {
  double psnr_db = 0.0;        ///< concealed decode vs clean decode, mean
  double concealed_pct = 0.0;  ///< % of transmitted slices concealed
  double decode_fps = 0.0;     ///< damaged-decode throughput
  double wall_seconds = 0.0;
  std::uint64_t frames = 0;    ///< frames the damaged decode emitted
};

/// Decodes `damaged` with conceal=resync and scores it against the clean
/// reconstruction. Frames the resync path could not recover score 0 dB —
/// losing a frame is the worst concealment outcome, and averaging over the
/// clean frame count keeps cells comparable across loss rates.
ResilienceCell run_cell(const std::vector<std::uint8_t>& damaged,
                        const std::vector<video::Frame>& clean, int slices,
                        int threads) {
  codec::DecoderConfig config;
  config.threads = threads;
  config.conceal = codec::Concealment::kResync;

  ResilienceCell cell;
  std::vector<video::Frame> decoded;
  util::Timer wall;
  codec::Decoder decoder(damaged, config);
  const codec::DecodeReport report = decoder.decode_stream(&decoded);
  cell.wall_seconds = wall.seconds();
  cell.frames = report.frames;

  double psnr_sum = 0.0;
  const std::size_t pairs = std::min(decoded.size(), clean.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    psnr_sum += std::min(kPsnrCap, video::psnr_luma(decoded[i], clean[i]));
  }
  cell.psnr_db = clean.empty() ? 0.0
                               : psnr_sum / static_cast<double>(clean.size());
  const double transmitted =
      static_cast<double>(clean.size()) * static_cast<double>(slices);
  cell.concealed_pct =
      transmitted > 0.0
          ? 100.0 * static_cast<double>(report.concealed_slices) / transmitted
          : 0.0;
  cell.decode_fps = cell.wall_seconds > 0.0
                        ? static_cast<double>(report.frames) /
                              cell.wall_seconds
                        : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "bench_resilience", /*supports_json=*/true);
  util::Timer timer;

  // Sweep grid. --quick keeps the slices=4/intra=8 column at every loss
  // rate — the three rows CI gates (loss=0 pins the identity property, the
  // lossy rows pin the deterministic concealment trajectory).
  const std::vector<int> loss_pct = {0, 5, 10};
  const std::vector<int> slice_counts =
      options.quick ? std::vector<int>{4} : std::vector<int>{4, 8};
  const std::vector<int> intra_periods =
      options.quick ? std::vector<int>{8} : std::vector<int>{0, 8};

  const auto frames = bench::qcif_sequence("foreman", options.frames, 30);
  std::cout << "bench_resilience: " << frames.size()
            << " foreman QCIF frames, qp=16, gilbert burst=8 seed=7, "
            << "conceal=resync, "
            << core::builtin_estimators().canonical_spec("ACBM")
            << ", SAD kernel " << simd::active_kernel_name() << "\n\n";

  bench::JsonBenchReport json(options.benchmark_out);
  json.set_context("estimator_spec",
                   core::builtin_estimators().canonical_spec("ACBM"));
  json.set_context("channel_model", "gilbert burst=8 seed=7");

  auto csv_stream = bench::open_csv(options.csv_prefix, "resilience");
  util::CsvWriter csv(csv_stream);
  csv.row({"loss_pct", "slices", "intra_period", "kbps", "psnr_db",
           "concealed_slice_pct", "decode_fps"});

  util::TablePrinter table({"loss %", "slices", "intra", "stream kbit/s",
                            "conceal PSNR-Y dB", "concealed slices %",
                            "decode fps"});
  for (int slices : slice_counts) {
    for (int intra : intra_periods) {
      codec::EncoderConfig config;
      config.qp = 16;
      config.search_range = options.search_range;
      config.slices = slices;
      config.intra_period = intra;
      const std::vector<std::uint8_t> stream = encode_stream(frames, config);
      const double kbps = static_cast<double>(stream.size()) * 8.0 * 30.0 /
                          static_cast<double>(frames.size()) / 1000.0;

      // Clean reconstruction: the reference every lossy cell scores against.
      std::vector<video::Frame> clean;
      codec::Decoder clean_decoder(stream, codec::DecoderConfig{});
      clean_decoder.decode_stream(&clean);

      for (int loss : loss_pct) {
        const std::string spec =
            "gilbert:loss=" + util::format_double(loss / 100.0) +
            ",burst=8,seed=7";
        sim::Channel channel{std::string_view(spec)};
        const std::vector<std::uint8_t> damaged = channel.apply(stream);
        const ResilienceCell cell =
            run_cell(damaged, clean, slices, options.threads);

        table.add_row({std::to_string(loss), std::to_string(slices),
                       std::to_string(intra), util::CsvWriter::num(kbps, 1),
                       util::CsvWriter::num(cell.psnr_db, 2),
                       util::CsvWriter::num(cell.concealed_pct, 2),
                       util::CsvWriter::num(cell.decode_fps, 1)});
        csv.row({std::to_string(loss), std::to_string(slices),
                 std::to_string(intra), util::CsvWriter::num(kbps, 3),
                 util::CsvWriter::num(cell.psnr_db, 3),
                 util::CsvWriter::num(cell.concealed_pct, 3),
                 util::CsvWriter::num(cell.decode_fps, 2)});
        json.add_row("BM_Resilience/gilbert/loss:" + std::to_string(loss) +
                         "/slices:" + std::to_string(slices) +
                         "/intra:" + std::to_string(intra),
                     cell.wall_seconds * 1e9,
                     {{"concealment_psnr_db", cell.psnr_db},
                      {"concealed_slice_pct", cell.concealed_pct},
                      {"decode_fps", cell.decode_fps}});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n   shape: loss=0 rows must sit at the "
            << util::CsvWriter::num(kPsnrCap, 0)
            << " dB cap with 0% concealed (channel identity); at equal loss, "
               "more slices and shorter intra periods should conceal better\n";

  json.write("bench_resilience");
  std::cout << "\n[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
