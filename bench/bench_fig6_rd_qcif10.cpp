// Reproduces Figure 6 of the paper: the Figure-5 experiment at 10 fps.
//
// Expected shape (paper): the PBM-vs-ACBM gap widens relative to 30 fps —
// at low frame rates the motion field no longer varies slowly in time, so
// predictive search degrades while ACBM's fallback holds quality.

#include "bench_support.hpp"

int main(int argc, char** argv) {
  const auto options = acbm::bench::parse_bench_options(
      argc, argv, "bench_fig6_rd_qcif10", /*supports_json=*/true);
  acbm::bench::run_rd_figure_bench("Figure 6", /*fps=*/10, options);
  return 0;
}
