// Reproduces Figures 3 and 4 of the paper: the "MOVE → FSBM → count MV
// errors" experimental setup. A ten-frame sequence with nine known global
// motion vectors is synthesised from a reference image; integer-pel FSBM
// (p = 15) runs on every transition, each block's vector error is classed
// 0,1,2,3,4,≥5 (L∞, integer samples), and the (Intra_SAD, SAD_deviation)
// statistics are summarised per class. The paper's conclusions to verify:
//   * high-textured blocks have true (error-0) vectors, and
//   * error-0 blocks show high SAD_deviation and SAD_min.
//
// The scatter itself is written to CSV (one row per block) for plotting.

#include <iostream>

#include "analysis/characterize.hpp"
#include "bench_support.hpp"
#include "synth/texture.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  const auto options = bench::parse_bench_options(
      argc, argv, "bench_fig4_characterization");
  util::Timer timer;
  if (options.threads != 1) {
    std::cout << "note: --threads has no effect here — characterization "
                 "runs the analysis harness, not the encoder\n";
  }

  // Several source images spanning the texture range of real material,
  // from near-flat (videoconference backdrops) to construction-site detail.
  // `noise` is per-frame *temporal* sensor noise: it is what makes flat
  // blocks ambiguous (any candidate matches equally well up to noise), the
  // mechanism behind the paper's false-vector population in Fig. 4.
  struct Source {
    const char* name;
    double amplitude;
    double scale;
    double noise;
  };
  const Source sources[] = {
      {"flat", 2.0, 0.02, 1.5},
      {"smooth", 10.0, 0.03, 1.2},
      {"moderate", 28.0, 0.045, 1.0},
      {"detailed", 45.0, 0.06, 1.0},
  };

  const video::PictureSize size = video::kQcif;
  const int margin = 48;

  auto csv_stream = bench::open_csv(options.csv_prefix, "scatter");
  util::CsvWriter csv(csv_stream);
  csv.row({"source", "frame", "bx", "by", "error_class", "intra_sad",
           "sad_deviation", "sad_min"});

  std::vector<analysis::BlockObservation> all;
  for (const Source& src : sources) {
    synth::TextureSpec spec;
    spec.seed = 42 + static_cast<std::uint64_t>(src.amplitude);
    spec.scale = src.scale;
    spec.octaves = 4;
    spec.amplitude = src.amplitude;
    const video::Plane image = synth::make_noise_texture(
        size.width + 2 * margin, size.height + 2 * margin, spec);

    analysis::TruthSequence seq = analysis::make_truth_sequence(
        image, size, analysis::paper_truth_motions(), margin);
    // Fresh sensor noise on every frame — without it all shifts of the same
    // still would match exactly and every block would be error-0.
    util::Rng rng(7);
    for (video::Plane& frame : seq.frames) {
      synth::add_gaussian_noise(frame, rng, src.noise);
    }
    const auto observations =
        analysis::characterize(seq, options.search_range);
    for (const auto& obs : observations) {
      csv.row({src.name, std::to_string(obs.frame), std::to_string(obs.bx),
               std::to_string(obs.by), std::to_string(std::min(obs.error, 5)),
               std::to_string(obs.intra_sad),
               std::to_string(obs.sad_deviation),
               std::to_string(obs.sad_min)});
    }
    all.insert(all.end(), observations.begin(), observations.end());
  }

  const auto summaries = analysis::summarize_by_error(all);
  std::cout << "Figure 3/4: FSBM truth experiment, " << all.size()
            << " block observations over " << 4 * 9
            << " transitions (QCIF, p = " << options.search_range << ")\n\n";
  util::TablePrinter table({"error", "blocks", "share %", "Intra_SAD mean",
                            "SAD_dev mean", "SAD_dev p90*", "SAD_min mean"});
  for (const auto& s : summaries) {
    const std::string label =
        s.error_class == 5 ? ">=5" : std::to_string(s.error_class);
    table.add_row(
        {label, std::to_string(s.blocks),
         util::CsvWriter::num(100.0 * static_cast<double>(s.blocks) /
                                  static_cast<double>(all.size()), 1),
         util::CsvWriter::num(s.intra_sad.mean(), 0),
         util::CsvWriter::num(s.sad_deviation.mean(), 0),
         util::CsvWriter::num(s.sad_deviation.max(), 0),
         util::CsvWriter::num(s.sad_min.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "(* max shown; full distribution in the CSV)\n";

  // The two paper conclusions, checked numerically.
  const auto& ok = summaries[0];
  util::RunningStats bad_intra;
  util::RunningStats bad_dev;
  for (int c = 1; c <= 5; ++c) {
    bad_intra.merge(summaries[static_cast<std::size_t>(c)].intra_sad);
    bad_dev.merge(summaries[static_cast<std::size_t>(c)].sad_deviation);
  }
  std::cout << "\nPaper conclusion 1 — textured blocks carry true vectors:\n"
            << "   mean Intra_SAD  error=0: "
            << util::CsvWriter::num(ok.intra_sad.mean(), 0)
            << "   error>0: " << util::CsvWriter::num(bad_intra.mean(), 0)
            << (ok.intra_sad.mean() > bad_intra.mean() ? "   [holds]"
                                                       : "   [VIOLATED]")
            << '\n';
  std::cout << "Paper conclusion 2 — true-vector blocks have high "
               "SAD_deviation:\n"
            << "   mean SAD_deviation  error=0: "
            << util::CsvWriter::num(ok.sad_deviation.mean(), 0)
            << "   error>0: " << util::CsvWriter::num(bad_dev.mean(), 0)
            << (ok.sad_deviation.mean() > bad_dev.mean() ? "   [holds]"
                                                         : "   [VIOLATED]")
            << '\n';
  std::cout << "[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
