// Reproduces Figure 5 of the paper: rate–distortion curves (PSNR-Y in dB vs
// kbit/s) for the Carphone, Foreman, Miss America and Table sequences at
// QCIF @ 30 fps, comparing ACBM (α=1000, β=8, γ=¼), FSBM (p=15) and PBM.
//
// Expected shape (paper): ACBM tracks or slightly beats FSBM on every
// sequence; PBM trails, worst on textured/erratic content (Foreman, Table).

#include "bench_support.hpp"

int main(int argc, char** argv) {
  const auto options = acbm::bench::parse_bench_options(
      argc, argv, "bench_fig5_rd_qcif30", /*supports_json=*/true);
  acbm::bench::run_rd_figure_bench("Figure 5", /*fps=*/30, options);
  return 0;
}
