// Multi-session encoding service: aggregate throughput and per-frame
// latency versus concurrent session count on one shared worker pool.
//
// The scaling question the service layer exists to answer: given a machine
// with T workers, how does total encoded frames/second grow as independent
// sessions are added — and what does each session's per-frame latency pay
// for the sharing? One session cannot use more than a few workers (the
// wavefront plus the front/back frame overlap bound its parallelism);
// additional sessions soak up the idle workers, so aggregate fps should
// scale until the pool saturates, while the round-robin lane dispatcher
// keeps latency degradation even-handed across sessions rather than
// starving the latecomers.
//
// Latency here is what a service caller observes: submit() to packet
// resolution, including queueing. p99 is the nearest-rank percentile over
// every frame of every session (see docs/BENCHMARKING.md).
//
// JSON rows (BM_ServiceThroughput/sessions:N/threads:T) carry
// aggregate_fps / per_session_fps / mean_ms / p99_ms counters for the CI
// perf trajectory; wall time is the row's real_time. The service health
// counters ride along as accepted_frames / completed_frames / shed_frames —
// deterministic (sessions x frames, same, 0: no overload policy, no fault
// injection), so scripts/bench_gate.py pins them exactly and any run where
// the service dropped or failed a frame fails the gate as a correctness
// regression rather than slipping through as a perf blip.

#include <algorithm>
#include <chrono>
#include <deque>
#include <iostream>
#include <optional>
#include <thread>

#include "bench_support.hpp"
#include "codec/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace acbm;
using Clock = std::chrono::steady_clock;

struct ServicePoint {
  double wall_seconds = 0.0;
  std::vector<double> latencies_ms;  // every frame of every session
  codec::ServiceStats stats;         // health counters, drained state
  /// Stage-latency histograms from the service's metrics registry
  /// (enc.stage.* / enc.frame.wall), snapshotted after the drain.
  std::vector<obs::Registry::HistogramRow> stage_rows;
};

/// Maps the registry's stage histograms onto JSON counter names the CI gate
/// understands: <stage>_p50_us / <stage>_p99_us (bench_gate.py treats the
/// _p50_us/_p99_us suffixes as loosely-gated latency counters).
void add_latency_counters(
    std::vector<std::pair<std::string, double>>& counters,
    const std::vector<obs::Registry::HistogramRow>& rows) {
  constexpr std::pair<const char*, const char*> kStages[] = {
      {"enc.stage.me", "me"},
      {"enc.stage.plan", "plan"},
      {"enc.stage.entropy", "entropy"},
      {"enc.frame.wall", "frame_wall"},
  };
  for (const auto& [hist_name, prefix] : kStages) {
    for (const obs::Registry::HistogramRow& row : rows) {
      if (row.name == hist_name && row.count > 0) {
        counters.emplace_back(std::string(prefix) + "_p50_us",
                              static_cast<double>(row.p50_ns) / 1000.0);
        counters.emplace_back(std::string(prefix) + "_p99_us",
                              static_cast<double>(row.p99_ns) / 1000.0);
      }
    }
  }
}

/// Nearest-rank percentile (q in [0,1]) of an unsorted sample set.
double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

ServicePoint run_point(const std::vector<video::Frame>& frames, int sessions,
                       int threads, const codec::EncoderConfig& config) {
  codec::EncoderService service(threads);
  std::vector<std::unique_ptr<codec::EncodeSession>> sess;
  sess.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    sess.push_back(std::make_unique<codec::EncodeSession>(
        service, video::PictureSize{frames[0].width(), frames[0].height()},
        config, core::builtin_estimators().create("ACBM")));
  }

  ServicePoint point;
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(sessions));
  util::Timer wall;
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    drivers.emplace_back([&, s] {
      codec::EncodeSession& session = *sess[static_cast<std::size_t>(s)];
      std::vector<double>& out = latencies[static_cast<std::size_t>(s)];
      std::deque<std::pair<Clock::time_point, std::future<codec::Packet>>>
          inflight;
      const auto harvest = [&out, &inflight] {
        inflight.front().second.get();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      inflight.front().first)
                .count();
        out.push_back(ms);
        inflight.pop_front();
      };
      for (const video::Frame& frame : frames) {
        inflight.emplace_back(Clock::now(), session.submit(frame));
        // Depth 2 matches the pipeline's one-front-plus-one-back admission;
        // deeper queues would only inflate the measured queueing latency.
        while (inflight.size() > 2) {
          harvest();
        }
      }
      while (!inflight.empty()) {
        harvest();
      }
      session.drain();
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  point.wall_seconds = wall.seconds();
  point.stats = service.stats();
  point.stage_rows = service.metrics().histogram_rows();
  for (const std::vector<double>& per_session : latencies) {
    point.latencies_ms.insert(point.latencies_ms.end(), per_session.begin(),
                              per_session.end());
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_bench_options(
      argc, argv, "bench_service", /*supports_json=*/true,
      /*supports_trace=*/true);
  util::Timer timer;

  std::optional<obs::Tracer> tracer;
  if (!options.trace_out.empty()) {
    tracer.emplace();
    tracer->install();
  }

  // Pool size: --threads (0 = all cores). The paper's encoder is the
  // workload; the service layer under test is what shares it.
  const int threads = util::ThreadPool::resolve_thread_count(options.threads);
  const std::vector<int> session_counts =
      options.quick ? std::vector<int>{1, 4, 16}
                    : std::vector<int>{1, 4, 16, 64};

  const auto frames = bench::qcif_sequence("foreman", options.frames, 30);
  codec::EncoderConfig config;
  config.qp = 16;
  config.search_range = options.search_range;
  config.slices = options.slices;

  std::cout << "bench_service: " << options.frames
            << " foreman QCIF frames per session, " << threads
            << " pool threads, "
            << core::builtin_estimators().canonical_spec("ACBM")
            << ", SAD kernel " << simd::active_kernel_name() << "\n\n";

  bench::JsonBenchReport json(options.benchmark_out);
  json.set_context("estimator_spec",
                   core::builtin_estimators().canonical_spec("ACBM"));
  json.set_context("service_threads", std::to_string(threads));

  util::TablePrinter table({"sessions", "aggregate fps", "per-session fps",
                            "mean ms", "p99 ms"});
  double single_session_fps = 0.0;
  for (int sessions : session_counts) {
    const ServicePoint point = run_point(frames, sessions, threads, config);
    const double total_frames =
        static_cast<double>(sessions) * static_cast<double>(frames.size());
    const double aggregate_fps = total_frames / point.wall_seconds;
    double mean_ms = 0.0;
    for (double ms : point.latencies_ms) {
      mean_ms += ms;
    }
    mean_ms /= static_cast<double>(point.latencies_ms.size());
    const double p99_ms = percentile(point.latencies_ms, 0.99);
    if (sessions == 1) {
      single_session_fps = aggregate_fps;
    }
    table.add_row({std::to_string(sessions),
                   util::CsvWriter::num(aggregate_fps, 1),
                   util::CsvWriter::num(
                       aggregate_fps / static_cast<double>(sessions), 1),
                   util::CsvWriter::num(mean_ms, 2),
                   util::CsvWriter::num(p99_ms, 2)});
    std::vector<std::pair<std::string, double>> counters = {
        {"aggregate_fps", aggregate_fps},
        {"per_session_fps", aggregate_fps / static_cast<double>(sessions)},
        {"mean_ms", mean_ms},
        {"p99_ms", p99_ms},
        {"accepted_frames", static_cast<double>(point.stats.accepted)},
        {"completed_frames", static_cast<double>(point.stats.completed)},
        {"shed_frames", static_cast<double>(point.stats.rejected +
                                            point.stats.timed_out +
                                            point.stats.failed)}};
    add_latency_counters(counters, point.stage_rows);
    json.add_row("BM_ServiceThroughput/sessions:" + std::to_string(sessions) +
                     "/threads:" + std::to_string(threads),
                 point.wall_seconds * 1e9, std::move(counters));
  }
  table.print(std::cout);
  if (single_session_fps > 0.0) {
    std::cout << "\n   scaling: 16-session aggregate should clear 2x the "
                 "1-session rate on pools of 4+ threads; per-session fps "
                 "decays as the pool saturates while p99 tracks the "
                 "round-robin fairness of the lane dispatcher\n";
  }

  if (tracer) {
    // Every run_point's service (and pool) is destroyed on return, so the
    // rings are quiescent here.
    obs::Tracer::uninstall();
    tracer->write_chrome_json_file(options.trace_out);
    std::cout << "[trace] " << options.trace_out << '\n';
  }

  json.write("bench_service");
  std::cout << "\n[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
