// Extension study (beyond the paper's figures): every motion-search
// algorithm in the library — the paper's three (ACBM/FSBM/PBM), the
// candidate-reduction family it cites (TSS, NTSS, 4SS, DS, CDS, plus
// HEXBS), and the pixel-decimation family (FSBM-adec, FSBM-sub) — compared
// on all four sequences at a fine and a coarse quantiser.
//
// Expected shape: FSBM anchors quality; ACBM matches it at a fraction of
// the positions; the fast searches are cheapest but drop tenths of a dB on
// erratic content; the decimation variants track FSBM quality at the same
// candidate count but a fraction of the arithmetic per candidate.

#include <iostream>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  const auto options =
      bench::parse_bench_options(argc, argv, "bench_baselines_roster");
  util::Timer timer;

  const analysis::SweepConfig sweep = bench::sweep_config(options);

  const std::vector<int> qps = options.quick ? std::vector<int>{16}
                                             : std::vector<int>{16, 30};

  // Default roster = the registry (every algorithm, zero bench changes when
  // one is added); --estimators narrows or parameterises it, e.g.
  //   --estimators "ACBM;ACBM:alpha=500,beta=8;FSBM-adec"
  const std::vector<std::string> roster = bench::estimator_roster(
      options, core::builtin_estimators().names());

  auto csv_stream = bench::open_csv(options.csv_prefix, "roster");
  util::CsvWriter csv(csv_stream);
  bench::write_rd_csv_header(csv);

  for (const auto& name : synth::standard_sequence_names()) {
    const auto frames = bench::qcif_sequence(name, options.frames, 30);
    std::cout << "\n-- " << name << " (QCIF @ 30 fps, " << options.frames
              << " frames) --\n";
    util::TablePrinter table(
        {"algorithm", "qp", "kbit/s", "PSNR-Y dB", "pos/MB"});
    for (const std::string& spec : roster) {
      const auto estimator = analysis::make_estimator(spec);
      analysis::RdCurve curve;
      curve.sequence = name;
      curve.algorithm = spec;
      curve.fps = 30;
      for (int qp : qps) {
        const analysis::RdPoint p =
            analysis::run_rd_point(frames, 30, *estimator, qp, sweep);
        curve.points.push_back(p);
        table.add_row({curve.algorithm, std::to_string(qp),
                       util::CsvWriter::num(p.kbps, 1),
                       util::CsvWriter::num(p.psnr_y, 2),
                       util::CsvWriter::num(p.avg_positions, 1)});
      }
      bench::write_rd_csv_rows(csv, curve);
    }
    table.print(std::cout);
  }
  std::cout << "\n[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
