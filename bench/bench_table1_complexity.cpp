// Reproduces Table 1 of the paper: average number of candidate positions
// searched per macroblock by ACBM, for Qp ∈ {16..30 even}, the four QCIF
// sequences, at 30 and 10 fps — plus the FSBM reference (969 positions) and
// the resulting reduction percentage ("up to 95 %" in the paper's text).

#include <algorithm>
#include <iostream>

#include "bench_support.hpp"
#include "core/acbm.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  const auto options =
      bench::parse_bench_options(argc, argv, "bench_table1_complexity",
                                 /*supports_json=*/true);
  util::Timer timer;

  const analysis::SweepConfig sweep = bench::sweep_config(options);
  // Table 1 is ACBM's table; --estimators re-runs it for parameterised or
  // alternative specs (each gets its own table and spec-prefixed JSON rows;
  // the default spec keeps the historical row names CI baselines join on).
  const std::vector<std::string> roster =
      bench::estimator_roster(options, {"ACBM"});
  const std::string default_spec =
      core::builtin_estimators().canonical_spec("ACBM");
  bench::JsonBenchReport json(options.benchmark_out);
  // Canonical specs into the artifact context: BENCH_ci.json rows join
  // across commits by the exact configuration that produced them.
  {
    std::string joined;
    for (const std::string& spec : roster) {
      joined += joined.empty() ? "" : ";";
      joined += core::builtin_estimators().canonical_spec(spec);
    }
    json.set_context("estimator_spec", joined);
  }
  json.set_context("sweep_config", sweep.to_spec());
  const double fsbm_positions =
      static_cast<double>((2 * options.search_range + 1) *
                          (2 * options.search_range + 1) + 8);

  std::cout << "Table 1: ACBM average candidate positions per macroblock\n"
            << "FSBM reference: " << fsbm_positions
            << " positions per macroblock (p = " << options.search_range
            << ")\n";

  auto csv_stream = bench::open_csv(options.csv_prefix, "positions");
  util::CsvWriter csv(csv_stream);
  csv.row({"estimator", "sequence", "fps", "qp", "positions_per_mb",
           "reduction_vs_fsbm_percent", "critical_fraction"});

  const auto& names = synth::standard_sequence_names();
  double best_reduction = 0.0;
  for (const std::string& spec : roster) {
    const std::string canonical =
        core::builtin_estimators().canonical_spec(spec);
    // Historical JSON row names for the default ACBM run; spec-prefixed for
    // anything else so rows never alias a differently-configured search.
    const std::string row_prefix =
        canonical == default_spec ? "BM_Table1" : "BM_Table1/" + canonical;
    if (roster.size() > 1) {
      std::cout << "\n== " << canonical << " ==\n";
    }

    // Paper layout: rows = Qp (descending), column pairs = sequence × fps.
    std::vector<std::string> header = {"Qp"};
    for (const auto& name : names) {
      header.push_back(name + "@30");
      header.push_back(name + "@10");
    }
    util::TablePrinter table(header);

    // results[sequence][fps][qp]
    std::map<std::string, std::map<int, std::map<int, analysis::RdPoint>>>
        all;
    for (const auto& name : names) {
      for (int fps : {30, 10}) {
        const auto frames = bench::qcif_sequence(name, options.frames, fps);
        const auto estimator = analysis::make_estimator(spec);
        for (int qp : options.qps) {
          util::Timer point_timer;
          const analysis::RdPoint p =
              analysis::run_rd_point(frames, fps, *estimator, qp, sweep);
          all[name][fps][qp] = p;
          const double reduction =
              100.0 * (1.0 - p.avg_positions / fsbm_positions);
          best_reduction = std::max(best_reduction, reduction);
          csv.row({canonical, name, std::to_string(fps), std::to_string(qp),
                   util::CsvWriter::num(p.avg_positions, 1),
                   util::CsvWriter::num(reduction, 1),
                   util::CsvWriter::num(p.full_search_fraction, 4)});
          // One trajectory row per Table-1 cell: wall time for CI's relative
          // regression gate plus the deterministic position count, which
          // must not drift at all between runs on any machine.
          json.add_row(row_prefix + "/" + name + "@" + std::to_string(fps) +
                           "/qp:" + std::to_string(qp),
                       point_timer.seconds() * 1e9,
                       {{"positions_per_mb", p.avg_positions},
                        {"kbps", p.kbps},
                        {"psnr_y", p.psnr_y}});
        }
      }
    }

    // Paper's Table 1 lists Qp from 30 down to 16.
    std::vector<int> rows = options.qps;
    std::sort(rows.rbegin(), rows.rend());
    for (int qp : rows) {
      std::vector<std::string> row = {std::to_string(qp)};
      for (const auto& name : names) {
        row.push_back(
            util::CsvWriter::num(all[name][30][qp].avg_positions, 0));
        row.push_back(
            util::CsvWriter::num(all[name][10][qp].avg_positions, 0));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  std::cout << "\nMaximum reduction vs FSBM: "
            << util::CsvWriter::num(best_reduction, 1)
            << "% (paper: up to 95%)\n";
  std::cout << "Shape checks (paper): miss_america cheapest, foreman most "
               "expensive;\npositions grow as Qp falls and as fps falls.\n";
  json.write("bench_table1_complexity");
  std::cout << "[done] in " << util::CsvWriter::num(timer.seconds(), 1)
            << " s\n";
  return 0;
}
