// Quickstart: estimate motion between two frames with ACBM and inspect the
// per-block decisions.
//
// This is the smallest end-to-end use of the library's core API:
//   1. obtain two frames (here: two frames of the synthetic Foreman clip),
//   2. interpolate the reference to half-pel,
//   3. run the ACBM estimator block by block,
//   4. read the motion field and the criticality statistics.
//
// Build & run:   ./examples/quickstart

#include <iostream>

#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "me/estimator.hpp"
#include "synth/sequences.hpp"
#include "util/csv.hpp"
#include "video/interp.hpp"

int main() {
  using namespace acbm;

  // 1. Two consecutive QCIF frames of the synthetic "foreman" clip.
  synth::SequenceRequest request;
  request.name = "foreman";
  request.frame_count = 2;
  const std::vector<video::Frame> frames = synth::make_sequence(request);
  const video::Frame& reference = frames[0];
  const video::Frame& current = frames[1];

  // 2. Half-pel interpolation of the reference luma (shared by all blocks).
  const video::HalfpelPlanes ref_half(reference.y());

  // 3. ACBM with the paper's parameters, constructed from a spec exactly as
  // the CLI's --estimator flag would ("ACBM" alone means the same thing).
  const auto estimator =
      core::builtin_estimators().create("ACBM:alpha=1000,beta=8,gamma=0.25");
  auto& acbm = dynamic_cast<core::Acbm&>(*estimator);
  acbm.set_record_log(true);

  me::MvField field = me::MvField::for_picture(current.width(),
                                               current.height());
  me::MvField empty_prev = field;  // no temporal predictors on frame 1

  for (int by = 0; by < field.mbs_y(); ++by) {
    for (int bx = 0; bx < field.mbs_x(); ++bx) {
      me::BlockContext ctx;
      ctx.cur = &current.y();
      ctx.ref = &ref_half;
      ctx.x = bx * me::kBlockSize;
      ctx.y = by * me::kBlockSize;
      ctx.bx = bx;
      ctx.by = by;
      ctx.window = me::unrestricted_window(15);  // the paper's p = 15
      ctx.cur_field = &field;        // spatial predictors (already-done MBs)
      ctx.prev_field = &empty_prev;  // temporal predictors
      ctx.qp = 16;                   // quantiser the thresholds scale with

      const me::EstimateResult result = acbm.estimate(ctx);
      field.set(bx, by, result.mv);
    }
  }

  // 4. Results: motion field + complexity statistics.
  std::cout << "Motion field (half-pel units), " << field.mbs_x() << "x"
            << field.mbs_y() << " macroblocks:\n";
  for (int by = 0; by < field.mbs_y(); ++by) {
    for (int bx = 0; bx < field.mbs_x(); ++bx) {
      const me::Mv mv = field.at(bx, by);
      std::cout << '(' << mv.x << ',' << mv.y << ") ";
    }
    std::cout << '\n';
  }

  const core::AcbmStats& stats = acbm.stats();
  std::cout << "\nACBM statistics over " << stats.blocks << " blocks:\n"
            << "  accepted by T1 (low activity): "
            << stats.accepted_low_activity << '\n'
            << "  accepted by T2 (good match):   "
            << stats.accepted_good_match << '\n'
            << "  critical (FSBM executed):      " << stats.critical << '\n'
            << "  avg positions per block:       "
            << util::CsvWriter::num(stats.average_positions(), 1)
            << "  (FSBM alone would use 969)\n";
  return 0;
}
