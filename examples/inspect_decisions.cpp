// Visual inspection of ACBM's behaviour: encodes a few frames and dumps,
// for the last P-frame,
//   * the source luma                    (inspect_luma.pgm)
//   * the estimated motion field         (inspect_field.ppm, hue=direction)
//   * ACBM's per-block decision map      (inspect_decisions.ppm:
//     green=T1 accept, blue=T2 accept, red=critical/FSBM)
//
// Open the PPM/PGM files with any image viewer. On the foreman analogue the
// red blocks cluster on the textured, erratically-moving regions — the
// criticality test localising exactly where the paper says full search is
// worth its cost.
//
// Usage: ./examples/inspect_decisions [--sequence NAME] [--qp Q] [--frames N]

#include <iostream>

#include "analysis/visualize.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("sequence", "carphone|foreman|miss_america|table",
                    "foreman");
  parser.add_option("qp", "quantiser", "16");
  parser.add_option("frames", "frames to encode before the snapshot", "10");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n'
              << parser.usage("inspect_decisions");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("inspect_decisions");
    return 0;
  }

  synth::SequenceRequest request;
  request.name = parser.get("sequence");
  request.frame_count = static_cast<int>(parser.get_int("frames"));
  const auto frames = synth::make_sequence(request);

  core::Acbm acbm;
  codec::EncoderConfig cfg;
  cfg.qp = static_cast<int>(parser.get_int("qp"));
  codec::Encoder encoder(video::kQcif, cfg, acbm);

  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    (void)encoder.encode_frame(frames[i]);
  }
  // Log only the final frame's decisions.
  acbm.set_record_log(true);
  acbm.reset();
  acbm.set_record_log(true);
  (void)encoder.encode_frame(frames.back());

  analysis::write_pgm("inspect_luma.pgm", frames.back().y());
  analysis::write_ppm("inspect_field.ppm",
                      analysis::render_mv_field(encoder.last_me_field()));
  analysis::write_ppm(
      "inspect_decisions.ppm",
      analysis::render_decision_map(acbm.decision_log(),
                                    encoder.last_me_field().mbs_x(),
                                    encoder.last_me_field().mbs_y()));

  const core::AcbmStats& stats = acbm.stats();
  std::cout << "Snapshot of '" << request.name << "' frame "
            << frames.size() - 1 << " at Qp " << cfg.qp << ":\n"
            << "  T1 (low activity): " << stats.accepted_low_activity
            << " blocks (green)\n"
            << "  T2 (good match):   " << stats.accepted_good_match
            << " blocks (blue)\n"
            << "  critical (FSBM):   " << stats.critical << " blocks (red)\n"
            << "Wrote inspect_luma.pgm, inspect_field.ppm, "
               "inspect_decisions.ppm\n";
  return 0;
}
