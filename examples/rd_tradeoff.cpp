// Quality/complexity dial: how the ACBM parameters trade PSNR against
// search positions on one sequence — the "highly flexible strategy" of
// paper §3.2, exposed as a tool.
//
// Sweeps gamma (the knob with the widest dynamic range) from FSBM-like to
// PBM-like behaviour and prints the operating curve, bracketed by the pure
// FSBM and PBM anchors. Also demonstrates the classical fast-search
// baselines (TSS/4SS/DS/CDS) on the same axes for context.
//
// Usage: ./examples/rd_tradeoff [--sequence NAME] [--qp Q] [--frames N]

#include <iostream>

#include "analysis/rd_sweep.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("sequence", "carphone|foreman|miss_america|table",
                    "table");
  parser.add_option("qp", "quantiser", "16");
  parser.add_option("frames", "frames to encode", "20");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("rd_tradeoff");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("rd_tradeoff");
    return 0;
  }

  synth::SequenceRequest request;
  request.name = parser.get("sequence");
  request.frame_count = static_cast<int>(parser.get_int("frames"));
  const auto frames = synth::make_sequence(request);
  const int qp = static_cast<int>(parser.get_int("qp"));

  analysis::SweepConfig sweep;  // paper defaults: p=15, half-pel, pure SAD
  std::cout << "Quality/complexity dial on '" << request.name << "' (QCIF, "
            << frames.size() << " frames, Qp " << qp << ")\n\n";

  util::TablePrinter table(
      {"config", "PSNR-Y dB", "kbit/s", "pos/MB", "vs FSBM pos"});
  const auto fsbm = analysis::make_estimator("FSBM");
  const analysis::RdPoint anchor =
      analysis::run_rd_point(frames, 30, *fsbm, qp, sweep);

  auto add_row = [&](const std::string& label, const analysis::RdPoint& p) {
    table.add_row({label, util::CsvWriter::num(p.psnr_y, 2),
                   util::CsvWriter::num(p.kbps, 1),
                   util::CsvWriter::num(p.avg_positions, 1),
                   util::CsvWriter::num(
                       100.0 * p.avg_positions / anchor.avg_positions, 1) +
                       "%"});
  };
  add_row("FSBM (exhaustive)", anchor);

  // ACBM with gamma swept via estimator specs: small gamma = strict (more
  // full searches), large gamma = permissive (approaches PBM). Alpha/beta
  // stay at the paper defaults the spec does not mention.
  for (const char* gamma : {"0.05", "0.125", "0.25", "0.5", "1", "4"}) {
    const std::string spec = std::string("ACBM:gamma=") + gamma;
    const auto acbm = analysis::make_estimator(spec);
    add_row(spec, analysis::run_rd_point(frames, 30, *acbm, qp, sweep));
  }

  for (const char* spec :
       {"PBM", "TSS", "NTSS", "4SS", "DS", "HEXBS", "CDS", "FSBM-adec",
        "FSBM-sub"}) {
    const auto est = analysis::make_estimator(spec);
    add_row(spec, analysis::run_rd_point(frames, 30, *est, qp, sweep));
  }

  table.print(std::cout);
  std::cout << "\nReading: gamma ~ 0.25 (the paper's choice) keeps PSNR at "
               "the FSBM anchor\nwhile cutting positions; gamma >= 1 "
               "degrades toward PBM quality.\n";
  return 0;
}
