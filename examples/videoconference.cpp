// Videoconference scenario: the workload the paper's introduction motivates
// — low-bitrate talking-head coding on a constrained device.
//
// Encodes the synthetic Miss-America-like clip with the full H.263-style
// encoder three times (ACBM / FSBM / PBM), prints the rate/quality/
// complexity comparison, decodes the ACBM stream to prove it is real, and
// writes the decoded video to a playable .y4m file.
//
// Usage: ./examples/videoconference [--frames N] [--qp Q] [--fps F]
//                                   [--sequence NAME] [--out FILE]

#include <iostream>

#include "analysis/rd_sweep.hpp"
#include "codec/config_map.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "video/psnr.hpp"
#include "video/y4m_io.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("frames", "frames to encode", "30");
  parser.add_option("qp", "quantiser (1..31)", "12");
  parser.add_option("fps", "frame rate (30, 15 or 10)", "30");
  parser.add_option("sequence", "carphone|foreman|miss_america|table",
                    "miss_america");
  parser.add_option("out", "decoded output (.y4m)",
                    "videoconference_decoded.y4m");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n'
              << parser.usage("videoconference");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("videoconference");
    return 0;
  }
  const int fps = static_cast<int>(parser.get_int("fps"));
  const int qp = static_cast<int>(parser.get_int("qp"));

  synth::SequenceRequest request;
  request.name = parser.get("sequence");
  request.frame_count = static_cast<int>(parser.get_int("frames"));
  request.fps = fps;
  const auto frames = synth::make_sequence(request);
  std::cout << "Encoding " << frames.size() << " QCIF frames of '"
            << request.name << "' @ " << fps << " fps, Qp " << qp << "\n\n";

  util::TablePrinter table({"algorithm", "kbit/s", "PSNR-Y dB", "pos/MB",
                            "FSBM blocks %", "skip %"});
  std::vector<std::uint8_t> acbm_stream;

  for (const std::string spec : {"ACBM", "FSBM", "PBM"}) {
    const auto estimator = analysis::make_estimator(spec);
    // Config via the key=value grammar on top of the CLI values.
    const codec::EncoderConfig cfg = codec::encoder_config_from_spec(
        "qp=" + std::to_string(qp) + ",fps=" + std::to_string(fps));
    codec::Encoder encoder(video::kQcif, cfg, *estimator);

    std::uint64_t bits = 0;
    std::uint64_t positions = 0;
    std::uint64_t fs_blocks = 0;
    std::uint64_t skips = 0;
    std::uint64_t p_mbs = 0;
    double psnr = 0.0;
    for (const auto& frame : frames) {
      const codec::FrameReport r = encoder.encode_frame(frame);
      bits += r.bits;
      psnr += r.psnr_y;
      if (!r.intra) {
        positions += r.me_positions;
        fs_blocks += r.full_search_blocks;
        skips += static_cast<std::uint64_t>(r.skip_mbs);
        p_mbs += 99;  // QCIF: 11×9 macroblocks
      }
    }
    const double n = static_cast<double>(frames.size());
    table.add_row(
        {std::string(estimator->name()),
         util::CsvWriter::num(static_cast<double>(bits) * fps / n / 1000.0, 1),
         util::CsvWriter::num(psnr / n, 2),
         util::CsvWriter::num(
             p_mbs ? static_cast<double>(positions) / p_mbs : 0.0, 1),
         util::CsvWriter::num(
             p_mbs ? 100.0 * static_cast<double>(fs_blocks) / p_mbs : 0.0, 1),
         util::CsvWriter::num(
             p_mbs ? 100.0 * static_cast<double>(skips) / p_mbs : 0.0, 1)});
    if (spec == "ACBM") {
      acbm_stream = encoder.finish();
    }
  }
  table.print(std::cout);

  // Prove the ACBM bitstream is a real, decodable stream.
  codec::Decoder decoder(acbm_stream);
  const auto decoded = decoder.decode_all();
  double decoded_psnr = 0.0;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    decoded_psnr += video::psnr_luma(frames[i], decoded[i]);
  }
  std::cout << "\nACBM bitstream: " << acbm_stream.size() << " bytes, "
            << decoded.size() << " frames decoded, PSNR-Y "
            << util::CsvWriter::num(
                   decoded_psnr / static_cast<double>(decoded.size()), 2)
            << " dB (identical to the encoder loop)\n";

  video::Y4mVideo out;
  out.size = video::kQcif;
  out.rate = {fps, 1};
  out.frames = decoded;
  video::write_y4m(parser.get("out"), out);
  std::cout << "Decoded video written to " << parser.get("out")
            << " (playable with ffplay/mpv)\n";
  return 0;
}
