// Variable-bandwidth channel: the scenario from the paper's conclusions
// ("our algorithm is self-adapted to different frame rates, and hence, it
// is suitable for variable bandwidth channel conditions").
//
// A clip is streamed over a channel whose rate drops by a third mid-call
// and recovers near the end. The rate controller raises Qp to track the
// channel; because ACBM's acceptance threshold is α + β·Qp², its search
// effort *automatically falls exactly when bits get scarce* — the
// self-adaptation claim, measured.
//
// Usage: ./examples/variable_bandwidth [--sequence NAME] [--frames N]

#include <iostream>

#include "analysis/rd_sweep.hpp"
#include "codec/config_map.hpp"
#include "codec/encoder.hpp"
#include "codec/rate_control.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("sequence", "carphone|foreman|miss_america|table",
                    "foreman");
  parser.add_option("frames", "frames to stream", "90");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n'
              << parser.usage("variable_bandwidth");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("variable_bandwidth");
    return 0;
  }

  synth::SequenceRequest request;
  request.name = parser.get("sequence");
  request.frame_count = static_cast<int>(parser.get_int("frames"));
  const auto frames = synth::make_sequence(request);
  const int fps = 30;

  core::Acbm acbm;
  const codec::EncoderConfig cfg =
      codec::encoder_config_from_spec("qp=14,fps=" + std::to_string(fps));
  codec::Encoder encoder(video::kQcif, cfg, acbm);

  const double high_kbps = 72.0;
  const double low_kbps = 50.0;  // above the content's Qp-31 floor
  codec::RateController::Config rc;
  rc.target_kbps = high_kbps;
  rc.fps = fps;
  rc.initial_qp = cfg.qp;
  codec::RateController rate(rc);

  std::cout << "Streaming '" << request.name << "' over a channel: "
            << high_kbps << " kbit/s -> " << low_kbps << " kbit/s (frame "
            << frames.size() / 3 << ") -> " << high_kbps
            << " kbit/s (frame " << 2 * frames.size() / 3 << ")\n\n";

  util::TablePrinter table({"frames", "channel kbit/s", "actual kbit/s",
                            "mean Qp", "PSNR-Y dB", "pos/MB",
                            "critical %"});
  std::uint64_t window_bits = 0;
  double window_psnr = 0.0;
  double window_qp = 0.0;
  std::uint64_t window_positions = 0;
  std::uint64_t window_critical = 0;
  int window_frames = 0;
  int window_start = 0;
  double channel = high_kbps;

  auto flush_window = [&](int end_frame) {
    if (window_frames == 0) {
      return;
    }
    const double n = window_frames;
    table.add_row(
        {std::to_string(window_start) + "-" + std::to_string(end_frame - 1),
         util::CsvWriter::num(channel, 0),
         util::CsvWriter::num(
             static_cast<double>(window_bits) * fps / n / 1000.0, 1),
         util::CsvWriter::num(window_qp / n, 1),
         util::CsvWriter::num(window_psnr / n, 2),
         util::CsvWriter::num(
             static_cast<double>(window_positions) / (n * 99.0), 1),
         util::CsvWriter::num(
             100.0 * static_cast<double>(window_critical) / (n * 99.0), 1)});
    window_bits = 0;
    window_psnr = 0.0;
    window_qp = 0.0;
    window_positions = 0;
    window_critical = 0;
    window_frames = 0;
    window_start = end_frame;
  };

  const int third = static_cast<int>(frames.size()) / 3;
  for (int i = 0; i < static_cast<int>(frames.size()); ++i) {
    if (i == third) {
      flush_window(i);
      channel = low_kbps;
      rate.set_target_kbps(channel);
    } else if (i == 2 * third) {
      flush_window(i);
      channel = high_kbps;
      rate.set_target_kbps(channel);
    }
    encoder.set_qp(rate.next_qp());
    const codec::FrameReport r =
        encoder.encode_frame(frames[static_cast<std::size_t>(i)]);
    rate.frame_encoded(r.bits);

    window_bits += r.bits;
    window_psnr += r.psnr_y;
    window_qp += rate.next_qp();
    if (!r.intra) {
      window_positions += r.me_positions;
      window_critical += r.full_search_blocks;
    }
    ++window_frames;
  }
  flush_window(static_cast<int>(frames.size()));
  table.print(std::cout);

  std::cout << "\nReading: when the channel narrows, the controller raises "
               "Qp; ACBM's\nthreshold alpha + beta*Qp^2 widens, so search "
               "positions per macroblock drop\nprecisely when the device "
               "has the least bit budget — the paper's\nself-adaptation "
               "property.\n";
  return 0;
}
