// acbm_dec — command-line decoder for ACV1/ACV2 bitstreams produced by
// acbm_enc (or any codec::Encoder user). Writes YUV4MPEG2 for direct
// playback. ACV2 frames carry independently-predicted slices, which decode
// in parallel with --threads.
//
// Examples:
//   ./acbm_dec --input foreman.acv --out foreman_dec.y4m --threads 4
//   ./acbm_dec --input clip.acv --expect "width=176,height=144,frames=60"
//   ./acbm_dec --input clip.acv --channel "gilbert:loss=0.05,burst=8,seed=7"
//       --config conceal=resync --summary
//
// Every spec flag uses the project's key=value grammar: --config is the
// decoder-config spec (threads, conceal, expect_*; codec/config_map.hpp),
// --channel a sim::Channel spec applied to the bitstream before decoding,
// and --expect a shorthand that maps key=val to expect_key=val. --summary
// prints the structured DecodeReport as one greppable line.

#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "codec/config_map.hpp"
#include "codec/decoder.hpp"
#include "obs/trace.hpp"
#include "sim/channel.hpp"
#include "util/args.hpp"
#include "util/kv.hpp"
#include "video/y4m_io.hpp"

namespace {

const char* error_class_name(acbm::codec::DecodeErrorClass error_class) {
  using acbm::codec::DecodeErrorClass;
  switch (error_class) {
    case DecodeErrorClass::kNone:
      return "none";
    case DecodeErrorClass::kHeader:
      return "header";
    case DecodeErrorClass::kFrame:
      return "frame";
    case DecodeErrorClass::kDirectory:
      return "directory";
    case DecodeErrorClass::kPayload:
      return "payload";
  }
  return "?";
}

void print_summary(const acbm::codec::DecodeReport& report) {
  std::cout << "summary: frames=" << report.frames
            << " concealed_slices=" << report.concealed_slices
            << " resync_skips=" << report.resync_skips
            << " error=" << error_class_name(report.error_class)
            << " digest=" << std::hex << report.sample_digest << std::dec
            << " channel="
            << (report.channel_spec.empty() ? "-" : report.channel_spec)
            << '\n';
  std::cout << "concealed_per_frame:";
  for (std::uint32_t concealed : report.concealed_per_frame) {
    std::cout << ' ' << concealed;
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("input", "ACV1/ACV2 bitstream", "");
  parser.add_option("out", "output .y4m path", "decoded.y4m");
  parser.add_option("threads",
                    "worker threads for slice-parallel decoding of ACV2 "
                    "frames (0 = all cores; output identical at any count)",
                    "1");
  parser.add_option("slices",
                    "expected slices per frame; fail if the stream differs "
                    "(0 = accept any; shorthand for expect_slices)",
                    "0");
  parser.add_option("expect",
                    "key=value assertions on the decoded stream over "
                    "width,height,fps,frames,slices,version (e.g. "
                    "\"width=176,slices=4\"); any mismatch fails",
                    "");
  parser.add_option("config",
                    "decoder-config spec key=val,... applied after the "
                    "individual flags (keys: threads, conceal=slice|resync|"
                    "off, expect_width/height/fps/frames/slices/version)",
                    "");
  parser.add_option("channel",
                    "lossy-channel spec applied to the bitstream before "
                    "decoding, e.g. \"gilbert:loss=0.05,burst=8,seed=7\" "
                    "(models: iid, gilbert, trunc; see docs/RESILIENCE.md)",
                    "");
  parser.add_flag("summary",
                  "print the structured DecodeReport (frames, concealments, "
                  "resync skips, error class, sample digest, channel echo)");
  parser.add_option("trace",
                    "write a Chrome trace-event JSON file of the decode "
                    "(loads in Perfetto / chrome://tracing); tracing never "
                    "changes the decoded samples",
                    "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("acbm_dec");
    return 2;
  }
  if (parser.help_requested() || parser.get("input").empty()) {
    std::cout << parser.usage("acbm_dec");
    return parser.help_requested() ? 0 : 2;
  }

  // Flags build the base DecoderConfig; --config is applied on top through
  // the same grammar, so everything stays expressible as one spec string.
  codec::DecoderConfig config;
  try {
    config.threads = static_cast<int>(parser.get_int("threads"));
    const auto expected_slices = parser.get_int("slices");
    if (expected_slices > 0) {
      config.expect_slices = expected_slices;
    }
    std::string expect_spec;
    for (const auto& [key, value] :
         util::parse_kv_list(parser.get("expect"))) {
      if (!expect_spec.empty()) {
        expect_spec += ',';
      }
      expect_spec += "expect_" + key + '=' + value;
    }
    config = codec::decoder_config_from_spec(expect_spec, config);
    config = codec::decoder_config_from_spec(parser.get("config"), config);
  } catch (const util::SpecError& e) {
    std::cerr << "acbm_dec: bad spec: " << e.what() << '\n';
    return 2;
  }

  try {
    std::ifstream in(parser.get("input"), std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open " + parser.get("input"));
    }
    std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());

    std::string channel_echo;
    if (!parser.get("channel").empty()) {
      sim::Channel channel{std::string_view(parser.get("channel"))};
      sim::ChannelReport channel_report;
      data = channel.apply(data, &channel_report);
      channel_echo = channel.spec();
      std::cout << "channel " << channel_echo << ": " << channel_report.units
                << " units, dropped " << channel_report.dropped
                << ", flipped " << channel_report.flipped
                << ", directory hits " << channel_report.directory_hits
                << ", " << channel_report.bytes_in << " -> "
                << channel_report.bytes_out << " bytes\n";
    }

    std::optional<obs::Tracer> tracer;
    if (!parser.get("trace").empty()) {
      tracer.emplace();
      tracer->install();
    }

    video::Y4mVideo video;
    codec::DecodeReport report;
    int version = 0;
    int frame_slices = 0;
    {
      codec::Decoder decoder(data, config);
      if (!channel_echo.empty()) {
        decoder.note_channel_spec(channel_echo);
      }
      video.size = decoder.size();
      video.rate = decoder.rate();
      report = decoder.decode_stream(&video.frames);
      version = decoder.version();
      frame_slices = decoder.last_frame_slices();
    }

    if (tracer) {
      // The decoder (and its worker pool) is gone: rings are quiescent.
      obs::Tracer::uninstall();
      tracer->write_chrome_json_file(parser.get("trace"));
    }

    if (parser.get_flag("summary")) {
      print_summary(report);
    }
    if (report.error_class != codec::DecodeErrorClass::kNone) {
      std::cerr << "acbm_dec: " << report.error_message << '\n';
      return 1;
    }
    if (!report.expectation_failures.empty()) {
      for (const std::string& failure : report.expectation_failures) {
        std::cerr << "acbm_dec: " << failure << '\n';
      }
      return 1;
    }

    video::write_y4m(parser.get("out"), video);

    std::cout << "decoded " << video.frames.size() << " frames ("
              << video.size.width << "x" << video.size.height << " @ "
              << video.rate.fps() << " fps, ACV" << version
              << ", " << frame_slices << " slices/frame) -> "
              << parser.get("out") << '\n';
    if (report.concealed_slices > 0) {
      std::cout << "warning: concealed " << report.concealed_slices
                << " corrupt slice(s)\n";
    }
    return 0;
  } catch (const util::SpecError& e) {
    std::cerr << "acbm_dec: bad spec: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "acbm_dec: " << e.what() << '\n';
    return 1;
  }
}
