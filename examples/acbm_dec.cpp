// acbm_dec — command-line decoder for ACV1 bitstreams produced by acbm_enc
// (or any codec::Encoder user). Writes YUV4MPEG2 for direct playback.
//
// Example:
//   ./acbm_dec --input foreman.acv --out foreman_dec.y4m

#include <fstream>
#include <iostream>
#include <vector>

#include "codec/decoder.hpp"
#include "util/args.hpp"
#include "video/y4m_io.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("input", "ACV1 bitstream", "");
  parser.add_option("out", "output .y4m path", "decoded.y4m");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("acbm_dec");
    return 2;
  }
  if (parser.help_requested() || parser.get("input").empty()) {
    std::cout << parser.usage("acbm_dec");
    return parser.help_requested() ? 0 : 2;
  }

  try {
    std::ifstream in(parser.get("input"), std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open " + parser.get("input"));
    }
    const std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    codec::Decoder decoder(data);
    video::Y4mVideo video;
    video.size = decoder.size();
    video.rate = decoder.rate();
    video.frames = decoder.decode_all();
    video::write_y4m(parser.get("out"), video);

    std::cout << "decoded " << video.frames.size() << " frames ("
              << video.size.width << "x" << video.size.height << " @ "
              << video.rate.fps() << " fps) -> " << parser.get("out") << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "acbm_dec: " << e.what() << '\n';
    return 1;
  }
}
