// acbm_dec — command-line decoder for ACV1/ACV2 bitstreams produced by
// acbm_enc (or any codec::Encoder user). Writes YUV4MPEG2 for direct
// playback. ACV2 frames carry independently-predicted slices, which decode
// in parallel with --threads.
//
// Examples:
//   ./acbm_dec --input foreman.acv --out foreman_dec.y4m --threads 4
//   ./acbm_dec --input clip.acv --expect "width=176,height=144,frames=60"
//
// --expect takes the project's key=value grammar, so CI round-trip checks
// assert stream properties with the same spec syntax the encoder consumes.

#include <fstream>
#include <iostream>
#include <vector>

#include "codec/decoder.hpp"
#include "util/args.hpp"
#include "util/kv.hpp"
#include "video/y4m_io.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("input", "ACV1/ACV2 bitstream", "");
  parser.add_option("out", "output .y4m path", "decoded.y4m");
  parser.add_option("threads",
                    "worker threads for slice-parallel decoding of ACV2 "
                    "frames (0 = all cores; output identical at any count)",
                    "1");
  parser.add_option("slices",
                    "expected slices per frame; fail if the stream differs "
                    "(0 = accept any)",
                    "0");
  parser.add_option("expect",
                    "key=value assertions on the decoded stream over "
                    "width,height,fps,frames,slices,version (e.g. "
                    "\"width=176,slices=4\"); any mismatch fails",
                    "");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("acbm_dec");
    return 2;
  }
  if (parser.help_requested() || parser.get("input").empty()) {
    std::cout << parser.usage("acbm_dec");
    return parser.help_requested() ? 0 : 2;
  }

  try {
    std::ifstream in(parser.get("input"), std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open " + parser.get("input"));
    }
    const std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    codec::Decoder decoder(data,
                           static_cast<int>(parser.get_int("threads")));
    video::Y4mVideo video;
    video.size = decoder.size();
    video.rate = decoder.rate();

    // The slice count is carried per frame, so --slices checks every frame,
    // not just the last one.
    const auto expected_slices = parser.get_int("slices");
    while (auto frame = decoder.decode_frame()) {
      if (expected_slices > 0 &&
          decoder.last_frame_slices() != expected_slices) {
        std::cerr << "acbm_dec: frame " << video.frames.size() << " has "
                  << decoder.last_frame_slices() << " slices, expected "
                  << expected_slices << '\n';
        return 1;
      }
      video.frames.push_back(std::move(*frame));
    }
    if (expected_slices > 0 && video.frames.empty()) {
      std::cerr << "acbm_dec: stream has no frames to check --slices "
                << "against\n";
      return 1;
    }

    // --expect: spec-grammar assertions, all evaluated before reporting so
    // one run surfaces every mismatch.
    try {
      int expect_failures = 0;
      for (const auto& [key, value] : util::parse_kv_list(parser.get(
               "expect"))) {
        const std::int64_t want =
            util::parse_int_strict(value, "expect key " + key);
        std::int64_t have = 0;
        if (key == "width") {
          have = video.size.width;
        } else if (key == "height") {
          have = video.size.height;
        } else if (key == "fps") {
          have = static_cast<std::int64_t>(video.rate.fps());
        } else if (key == "frames") {
          have = static_cast<std::int64_t>(video.frames.size());
        } else if (key == "slices") {
          have = decoder.last_frame_slices();
        } else if (key == "version") {
          have = decoder.version();
        } else {
          throw util::SpecError(
              "unknown --expect key \"" + key +
              "\" (valid: width, height, fps, frames, slices, version)");
        }
        if (have != want) {
          std::cerr << "acbm_dec: expect " << key << '=' << want
                    << " but stream has " << have << '\n';
          ++expect_failures;
        }
      }
      if (expect_failures > 0) {
        return 1;
      }
    } catch (const util::SpecError& e) {
      std::cerr << "acbm_dec: bad --expect spec: " << e.what() << '\n';
      return 2;
    }

    video::write_y4m(parser.get("out"), video);

    std::cout << "decoded " << video.frames.size() << " frames ("
              << video.size.width << "x" << video.size.height << " @ "
              << video.rate.fps() << " fps, ACV" << decoder.version()
              << ", " << decoder.last_frame_slices() << " slices/frame) -> "
              << parser.get("out") << '\n';
    if (decoder.concealed_slices() > 0) {
      std::cout << "warning: concealed " << decoder.concealed_slices()
                << " corrupt slice(s)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "acbm_dec: " << e.what() << '\n';
    return 1;
  }
}
