// acbm_dec — command-line decoder for ACV1/ACV2 bitstreams produced by
// acbm_enc (or any codec::Encoder user). Writes YUV4MPEG2 for direct
// playback. ACV2 frames carry independently-predicted slices, which decode
// in parallel with --threads.
//
// Example:
//   ./acbm_dec --input foreman.acv --out foreman_dec.y4m --threads 4

#include <fstream>
#include <iostream>
#include <vector>

#include "codec/decoder.hpp"
#include "util/args.hpp"
#include "video/y4m_io.hpp"

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("input", "ACV1/ACV2 bitstream", "");
  parser.add_option("out", "output .y4m path", "decoded.y4m");
  parser.add_option("threads",
                    "worker threads for slice-parallel decoding of ACV2 "
                    "frames (0 = all cores; output identical at any count)",
                    "1");
  parser.add_option("slices",
                    "expected slices per frame; fail if the stream differs "
                    "(0 = accept any)",
                    "0");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("acbm_dec");
    return 2;
  }
  if (parser.help_requested() || parser.get("input").empty()) {
    std::cout << parser.usage("acbm_dec");
    return parser.help_requested() ? 0 : 2;
  }

  try {
    std::ifstream in(parser.get("input"), std::ios::binary);
    if (!in) {
      throw std::runtime_error("cannot open " + parser.get("input"));
    }
    const std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    codec::Decoder decoder(data,
                           static_cast<int>(parser.get_int("threads")));
    video::Y4mVideo video;
    video.size = decoder.size();
    video.rate = decoder.rate();

    // The slice count is carried per frame, so --slices checks every frame,
    // not just the last one.
    const auto expected_slices = parser.get_int("slices");
    while (auto frame = decoder.decode_frame()) {
      if (expected_slices > 0 &&
          decoder.last_frame_slices() != expected_slices) {
        std::cerr << "acbm_dec: frame " << video.frames.size() << " has "
                  << decoder.last_frame_slices() << " slices, expected "
                  << expected_slices << '\n';
        return 1;
      }
      video.frames.push_back(std::move(*frame));
    }
    if (expected_slices > 0 && video.frames.empty()) {
      std::cerr << "acbm_dec: stream has no frames to check --slices "
                << "against\n";
      return 1;
    }

    video::write_y4m(parser.get("out"), video);

    std::cout << "decoded " << video.frames.size() << " frames ("
              << video.size.width << "x" << video.size.height << " @ "
              << video.rate.fps() << " fps, ACV" << decoder.version()
              << ", " << decoder.last_frame_slices() << " slices/frame) -> "
              << parser.get("out") << '\n';
    if (decoder.concealed_slices() > 0) {
      std::cout << "warning: concealed " << decoder.concealed_slices()
                << " corrupt slice(s)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "acbm_dec: " << e.what() << '\n';
    return 1;
  }
}
