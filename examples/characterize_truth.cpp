// The paper's §3.1 experiment as a standalone tool: feed any still image
// (raw 8-bit luma or a built-in synthetic texture), introduce known global
// motion, and measure where FSBM finds true vs false vectors together with
// the Intra_SAD / SAD_deviation statistics of each block.
//
// Usage:
//   ./examples/characterize_truth                       # synthetic texture
//   ./examples/characterize_truth --luma img.raw --width 352 --height 288
//
// The raw input must be headerless 8-bit grayscale, row-major, at least
// (QCIF + 2×48) in each dimension.

#include <fstream>
#include <iostream>

#include "analysis/characterize.hpp"
#include "synth/texture.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "video/plane.hpp"

namespace {

acbm::video::Plane load_raw_luma(const std::string& path, int w, int h) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  acbm::video::Plane plane(w, h);
  std::vector<char> row(static_cast<std::size_t>(w));
  for (int y = 0; y < h; ++y) {
    in.read(row.data(), w);
    if (!in) {
      throw std::runtime_error("short read on " + path);
    }
    for (int x = 0; x < w; ++x) {
      plane.set(x, y, static_cast<std::uint8_t>(row[static_cast<std::size_t>(x)]));
    }
  }
  plane.extend_border();
  return plane;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace acbm;
  util::ArgParser parser;
  parser.add_option("luma", "raw 8-bit grayscale file (optional)", "");
  parser.add_option("width", "raw image width", "0");
  parser.add_option("height", "raw image height", "0");
  parser.add_option("range", "FSBM search range p", "15");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n'
              << parser.usage("characterize_truth");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("characterize_truth");
    return 0;
  }

  const video::PictureSize size = video::kQcif;
  const int margin = 48;
  video::Plane image;
  if (parser.get("luma").empty()) {
    synth::TextureSpec spec;
    spec.seed = 99;
    spec.scale = 0.045;
    spec.octaves = 4;
    spec.amplitude = 35.0;
    image = synth::make_noise_texture(size.width + 2 * margin,
                                      size.height + 2 * margin, spec);
    std::cout << "Using built-in synthetic texture (pass --luma to use a "
                 "real image)\n";
  } else {
    image = load_raw_luma(parser.get("luma"),
                          static_cast<int>(parser.get_int("width")),
                          static_cast<int>(parser.get_int("height")));
  }

  const auto motions = analysis::paper_truth_motions();
  const analysis::TruthSequence sequence =
      analysis::make_truth_sequence(image, size, motions, margin);
  const auto observations = analysis::characterize(
      sequence, static_cast<int>(parser.get_int("range")));

  std::cout << "\nTen-frame truth sequence, " << motions.size()
            << " transitions, " << observations.size()
            << " block observations\n\n";

  const auto summaries = analysis::summarize_by_error(observations);
  util::TablePrinter table({"MV error", "blocks", "mean Intra_SAD",
                            "mean SAD_deviation", "mean SAD_min"});
  for (const auto& s : summaries) {
    table.add_row({s.error_class == 5 ? ">=5" : std::to_string(s.error_class),
                   std::to_string(s.blocks),
                   util::CsvWriter::num(s.intra_sad.mean(), 0),
                   util::CsvWriter::num(s.sad_deviation.mean(), 0),
                   util::CsvWriter::num(s.sad_min.mean(), 0)});
  }
  table.print(std::cout);

  const double true_share =
      observations.empty()
          ? 0.0
          : 100.0 * static_cast<double>(summaries[0].blocks) /
                static_cast<double>(observations.size());
  std::cout << "\nTrue vectors found on "
            << util::CsvWriter::num(true_share, 1)
            << "% of blocks. Per the paper, expect the error-0 class to own "
               "the high\nIntra_SAD / high SAD_deviation corner of the "
               "distribution.\n";
  return 0;
}
