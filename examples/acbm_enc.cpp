// acbm_enc — command-line encoder.
//
// Reads YUV4MPEG2 (.y4m) or headerless I420 (.yuv, with --width/--height/
// --fps) video — or generates a synthetic clip — and encodes it to an
// ACV1/ACV2 bitstream with the selected motion-estimation spec, either at a
// fixed quantiser or rate-controlled to a target bitrate.
//
// Examples:
//   ./acbm_enc --synthetic foreman --frames 60 --qp 14 --out foreman.acv
//   ./acbm_enc --input clip.y4m --estimator FSBM --kbps 64 --out clip.acv
//   ./acbm_enc --synthetic foreman --estimator "ACBM:alpha=500,beta=8" \
//              --config "slices=4,threads=0" --out clip.acv
//   ./acbm_enc --input clip.yuv --width 176 --height 144 --fps 30
//              --out clip.acv
//
// Estimator specs ("NAME:key=val,...") and --config key=value maps are
// validated up front; any unknown name or key exits 2 with the full
// grammar and per-estimator key tables — never a silent fallback.
//
// Exit codes: 0 success; 1 internal/environment error; 2 usage error or
// malformed input (bad spec, bad .y4m/.yuv); 3 session failure — a frame's
// encode failed (e.g. under --fault) and the structured error
// ("session error: class=... frame=... site=...") was printed to stderr.

#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "codec/config_map.hpp"
#include "codec/encoder.hpp"
#include "codec/rate_control.hpp"
#include "codec/service.hpp"
#include "core/builtin_estimators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/fault_injector.hpp"
#include "util/kv.hpp"
#include "util/timer.hpp"
#include "video/io_error.hpp"
#include "video/y4m_io.hpp"
#include "video/yuv_io.hpp"

namespace {

using namespace acbm;

/// Per-stage wall-clock totals over a sequence (--summary).
struct StageTotals {
  double me = 0.0;
  double plan = 0.0;
  double entropy = 0.0;
  double frame_wall = 0.0;

  void add(const codec::FrameReport& r) {
    me += r.me_stage_seconds;
    plan += r.plan_stage_seconds;
    entropy += r.entropy_stage_seconds;
    frame_wall += r.frame_wall_seconds;
  }

  void print(std::size_t frames) const {
    const double n = static_cast<double>(frames);
    std::cout << "  stage seconds (sum): ME "
              << util::CsvWriter::num(me, 3) << ", plan "
              << util::CsvWriter::num(plan, 3) << ", entropy "
              << util::CsvWriter::num(entropy, 3) << "; mean frame wall "
              << util::CsvWriter::num(frame_wall / n * 1000.0, 2) << " ms\n";
  }
};

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Registry-backed per-stage latency table (--summary): the same
/// measurements FrameReport's stage timers sum, but as percentiles over the
/// sequence — one p50/p95/p99 row per stage histogram.
void print_stage_table(
    const std::vector<obs::Registry::HistogramRow>& rows) {
  bool header = false;
  for (const obs::Registry::HistogramRow& row : rows) {
    if (row.count == 0) {
      continue;
    }
    if (!header) {
      header = true;
      std::cout << "  stage latency ms (p50 / p95 / p99 / max) [frames]:\n";
    }
    std::cout << "    " << row.name << ": "
              << util::CsvWriter::num(ms(row.p50_ns), 3) << " / "
              << util::CsvWriter::num(ms(row.p95_ns), 3) << " / "
              << util::CsvWriter::num(ms(row.p99_ns), 3) << " / "
              << util::CsvWriter::num(ms(row.max_ns), 3) << " ["
              << row.count << "]\n";
  }
}

/// Full registry dump (--metrics): every counter, gauge, and histogram.
void print_metrics(const std::vector<obs::Registry::CounterRow>& counters,
                   const std::vector<obs::Registry::GaugeRow>& gauges,
                   const std::vector<obs::Registry::HistogramRow>& hists) {
  std::cout << "metrics:\n";
  for (const obs::Registry::CounterRow& c : counters) {
    std::cout << "  counter " << c.name << " = " << c.value << '\n';
  }
  for (const obs::Registry::GaugeRow& g : gauges) {
    std::cout << "  gauge " << g.name << " = " << g.value << '\n';
  }
  for (const obs::Registry::HistogramRow& h : hists) {
    std::cout << "  histogram " << h.name << ": count " << h.count << ", p50 "
              << h.p50_ns << " ns, p95 " << h.p95_ns << " ns, p99 "
              << h.p99_ns << " ns, max " << h.max_ns << " ns, mean "
              << util::CsvWriter::num(h.mean_ns, 1) << " ns\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser;
  parser.add_option("input", ".y4m or .yuv input file", "");
  parser.add_option("width", "width for raw .yuv input", "176");
  parser.add_option("height", "height for raw .yuv input", "144");
  parser.add_option("fps", "frame rate for raw/synthetic input", "30");
  parser.add_option("synthetic",
                    "generate carphone|foreman|miss_america|table instead of "
                    "reading a file",
                    "");
  parser.add_option("frames", "frame limit (0 = all)", "60");
  parser.add_option("estimator",
                    "motion-estimator spec: NAME or NAME:key=val,... "
                    "(e.g. ACBM, \"ACBM:alpha=500,beta=8,gamma=0.25\"); "
                    "pass an unknown name to see every spec",
                    "");
  parser.add_option("algorithm",
                    "deprecated alias of --estimator (bare names only "
                    "historically; full specs accepted)",
                    "");
  parser.add_option("config",
                    "encoder config spec key=val,... applied after the "
                    "individual flags (e.g. \"mode=rd,deblock=1\"); pass an "
                    "unknown key to see the key table",
                    "");
  parser.add_option("qp", "fixed quantiser 1..31 (ignored when --kbps set)",
                    "16");
  parser.add_option("kbps", "target bitrate; enables rate control", "0");
  parser.add_option("search-range", "search range p", "15");
  parser.add_option("intra-period", "intra refresh period (0 = first only)",
                    "0");
  parser.add_option("threads",
                    "worker threads for the parallel pipeline stages "
                    "(0 = all cores)",
                    "1");
  parser.add_option("slices",
                    "entropy-coding slices per frame (1 = legacy ACV1 "
                    "stream; >1 emits ACV2 and parallelises entropy coding)",
                    "1");
  parser.add_option("kernel",
                    "SAD kernel variant: scalar|sse2|avx2|auto (bit-exact; "
                    "only throughput changes)",
                    "auto");
  parser.add_option("sessions",
                    "encode the input as N concurrent sessions sharing one "
                    "worker pool (EncoderService; frame-level pipelining). "
                    "Session 0's bitstream is written; every session's "
                    "bytes are identical. --kbps requires sessions=1",
                    "1");
  parser.add_option("fault",
                    "deterministic fault-injection spec, e.g. "
                    "\"fault:site=encode_throw,p=0.01,seed=7\"; forces "
                    "service mode; an injected fault surfaces as a "
                    "structured session error (exit 3)",
                    "");
  parser.add_option("overload",
                    "session overload policy, e.g. \"overload:queue=8,"
                    "deadline_ms=40,degrade=ACBM:alpha=200\"; forces service "
                    "mode; shed frames are dropped from the stream",
                    "");
  parser.add_flag("summary",
                  "print per-stage wall-clock totals (ME/plan/entropy), a "
                  "p50/p95/p99 per-stage latency table, mean per-frame "
                  "latency, and (in service mode) the service health "
                  "counters after encoding");
  parser.add_option("trace",
                    "write a Chrome trace-event JSON file of the encode "
                    "(loads in Perfetto / chrome://tracing); tracing never "
                    "changes the encoded bytes",
                    "");
  parser.add_flag("metrics",
                  "dump every metrics-registry counter, gauge, and "
                  "histogram after encoding");
  parser.add_option("out", "output bitstream path", "out.acv");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage("acbm_enc");
    return 2;
  }
  if (parser.help_requested()) {
    std::cout << parser.usage("acbm_enc") << '\n'
              << core::builtin_estimators().spec_usage() << '\n'
              << codec::config_spec_usage();
    return 0;
  }

  // Spec validation happens before any input is read: a typo in an
  // estimator name/key or a config key is a usage error (exit 2) carrying
  // the full grammar, mirroring simd::parse_kernel_name's contract that no
  // misspelling ever degrades into a silent default.
  std::unique_ptr<me::MotionEstimator> estimator;
  std::string estimator_spec = parser.get("estimator");
  if (!parser.get("algorithm").empty()) {
    if (!estimator_spec.empty()) {
      // Two sources of truth for the estimator would let a stale legacy
      // flag silently win over the explicit one; refuse instead.
      std::cerr << "acbm_enc: --estimator and --algorithm are aliases — "
                   "pass only one (got --estimator '" << estimator_spec
                << "' and --algorithm '" << parser.get("algorithm")
                << "')\n";
      return 2;
    }
    estimator_spec = parser.get("algorithm");
  }
  if (estimator_spec.empty()) {
    estimator_spec = "ACBM";
  }
  try {
    estimator = core::builtin_estimators().create(estimator_spec);
    estimator_spec =
        core::builtin_estimators().canonical_spec(estimator_spec);
  } catch (const util::SpecError& e) {
    std::cerr << "acbm_enc: bad --estimator spec: " << e.what() << "\n\n"
              << core::builtin_estimators().spec_usage();
    return 2;
  }

  try {
    // Reject bad --kernel requests loudly rather than falling back to
    // scalar: a silent fallback would invalidate any A/B timing the caller
    // believes they are running.
    const std::string kernel = parser.get("kernel");
    simd::KernelIsa kernel_isa;
    if (!simd::parse_kernel_name(kernel, kernel_isa)) {
      std::cerr << "acbm_enc: unknown --kernel '" << kernel
                << "' (valid spellings: scalar, sse2, avx2, auto)\n";
      return 2;
    }
    if (!simd::select_kernels(kernel_isa)) {
      std::cerr << "acbm_enc: --kernel '" << kernel
                << "' is not available on this build/CPU; available:";
      for (const std::string& name : simd::available_kernel_names()) {
        std::cerr << ' ' << name;
      }
      std::cerr << '\n';
      return 2;
    }
    const int fps = static_cast<int>(parser.get_int("fps"));
    const auto max_frames =
        static_cast<std::size_t>(parser.get_int("frames"));

    // --- Input.
    std::vector<video::Frame> frames;
    if (!parser.get("synthetic").empty()) {
      synth::SequenceRequest req;
      req.name = parser.get("synthetic");
      req.frame_count = static_cast<int>(max_frames ? max_frames : 60);
      req.fps = fps;
      frames = synth::make_sequence(req);
    } else if (!parser.get("input").empty()) {
      const std::string path = parser.get("input");
      if (path.size() >= 4 && path.substr(path.size() - 4) == ".y4m") {
        const video::Y4mVideo video = video::read_y4m(path, max_frames);
        frames = video.frames;
      } else {
        frames = video::read_yuv420(
            path,
            {static_cast<int>(parser.get_int("width")),
             static_cast<int>(parser.get_int("height"))},
            max_frames);
      }
    } else {
      std::cerr << "need --input or --synthetic\n" << parser.usage("acbm_enc");
      return 2;
    }
    if (frames.empty()) {
      std::cerr << "no frames to encode\n";
      return 1;
    }

    // --- Encoder setup: individual flags first, then the --config spec on
    // top (so a sweep driver can override any flag from one string).
    codec::EncoderConfig cfg;
    cfg.qp = static_cast<int>(parser.get_int("qp"));
    cfg.search_range = static_cast<int>(parser.get_int("search-range"));
    cfg.intra_period = static_cast<int>(parser.get_int("intra-period"));
    cfg.parallel.threads = static_cast<int>(parser.get_int("threads"));
    cfg.slices = static_cast<int>(parser.get_int("slices"));
    cfg.fps_num = fps;
    try {
      cfg = codec::encoder_config_from_spec(parser.get("config"), cfg);
    } catch (const util::SpecError& e) {
      std::cerr << "acbm_enc: bad --config spec: " << e.what() << '\n';
      return 2;
    }
    const int sessions = static_cast<int>(parser.get_int("sessions"));
    if (sessions < 1) {
      std::cerr << "acbm_enc: --sessions must be >= 1\n";
      return 2;
    }

    // --fault and --overload live in the service layer, so either flag
    // routes even a single session through EncoderService.
    util::FaultInjector fault;
    if (!parser.get("fault").empty()) {
      try {
        fault = util::FaultInjector(parser.get("fault"));
      } catch (const util::SpecError& e) {
        std::cerr << "acbm_enc: bad --fault spec: " << e.what() << '\n';
        return 2;
      }
    }
    codec::OverloadPolicy overload;
    if (!parser.get("overload").empty()) {
      try {
        overload = codec::overload_policy_from_spec(parser.get("overload"));
        if (!overload.degrade.empty()) {
          // Validate the degrade estimator spec before reading any input.
          (void)core::builtin_estimators().create(overload.degrade);
        }
      } catch (const util::SpecError& e) {
        std::cerr << "acbm_enc: bad --overload spec: " << e.what() << '\n';
        return 2;
      }
    }
    const bool use_service = sessions > 1 || fault.armed() ||
                             !parser.get("overload").empty();

    const double kbps = parser.get_double("kbps");
    if (kbps > 0.0 && use_service) {
      // Rate control feeds each frame's bits back into the next frame's
      // quantiser — incompatible with frames in flight ahead of that
      // feedback, and with frames being shed or failed under it.
      std::cerr << "acbm_enc: --kbps requires --sessions 1 without "
                   "--fault/--overload\n";
      return 2;
    }

    // --- Encode.
    std::uint64_t bits = 0;
    std::uint64_t positions = 0;
    double psnr = 0.0;
    StageTotals totals;
    std::vector<std::uint8_t> stream;
    int effective_slices = 1;
    double wall_seconds = 0.0;
    std::size_t encoded = frames.size();
    std::optional<codec::ServiceStats> service_stats;

    // Registry snapshots survive the encode scopes below (the encoder /
    // service — and with them the worker pools — are destroyed at scope
    // exit, which is also what makes the trace export quiescent).
    std::vector<obs::Registry::CounterRow> counter_rows;
    std::vector<obs::Registry::GaugeRow> gauge_rows;
    std::vector<obs::Registry::HistogramRow> hist_rows;
    std::optional<obs::Tracer> tracer;
    if (!parser.get("trace").empty()) {
      tracer.emplace();
      tracer->install();
    }

    if (!use_service) {
      obs::Registry registry;
      codec::Encoder encoder({frames[0].width(), frames[0].height()}, cfg,
                             *estimator);
      encoder.set_metrics(&registry);
      std::unique_ptr<codec::RateController> rate;
      if (kbps > 0.0) {
        codec::RateController::Config rc;
        rc.target_kbps = kbps;
        rc.fps = fps;
        rc.initial_qp = cfg.qp;
        rate = std::make_unique<codec::RateController>(rc);
      }
      util::Timer wall;
      for (const auto& frame : frames) {
        if (rate) {
          encoder.set_qp(rate->next_qp());
        }
        const codec::FrameReport r = encoder.encode_frame(frame);
        if (rate) {
          rate->frame_encoded(r.bits);
        }
        bits += r.bits;
        positions += r.me_positions;
        psnr += r.psnr_y;
        totals.add(r);
      }
      wall_seconds = wall.seconds();
      stream = encoder.finish();
      effective_slices = encoder.slices();
      counter_rows = registry.counter_rows();
      gauge_rows = registry.gauge_rows();
      hist_rows = registry.histogram_rows();
    } else {
      // Service mode: N sessions of the same input on one shared pool, one
      // driver thread per session keeping a couple of frames in flight so
      // each session's front/back halves overlap. Without --fault/--overload
      // every session produces the same bytes; session 0's are written.
      codec::EncoderService service(
          static_cast<int>(parser.get_int("threads")));
      if (fault.armed()) {
        service.set_fault_injector(&fault);
      }
      std::vector<std::unique_ptr<codec::EncodeSession>> sess;
      sess.reserve(static_cast<std::size_t>(sessions));
      for (int s = 0; s < sessions; ++s) {
        sess.push_back(std::make_unique<codec::EncodeSession>(
            service,
            video::PictureSize{frames[0].width(), frames[0].height()}, cfg,
            core::builtin_estimators().create(estimator_spec)));
        if (!parser.get("overload").empty()) {
          sess.back()->configure_overload(
              overload, overload.degrade.empty()
                            ? nullptr
                            : core::builtin_estimators().create(
                                  overload.degrade));
        }
      }
      std::vector<std::vector<codec::FrameReport>> reports(
          static_cast<std::size_t>(sessions));
      std::vector<std::optional<codec::SessionError>> failures(
          static_cast<std::size_t>(sessions));
      util::Timer wall;
      std::vector<std::thread> drivers;
      drivers.reserve(static_cast<std::size_t>(sessions));
      for (int s = 0; s < sessions; ++s) {
        drivers.emplace_back([&, s] {
          codec::EncodeSession& session = *sess[static_cast<std::size_t>(s)];
          std::vector<codec::FrameReport>& out =
              reports[static_cast<std::size_t>(s)];
          std::optional<codec::SessionError>& failure =
              failures[static_cast<std::size_t>(s)];
          std::deque<std::future<codec::Packet>> inflight;
          auto reap = [&](std::future<codec::Packet>& f) {
            try {
              out.push_back(f.get().report);
            } catch (const codec::SessionError& e) {
              // Shed frames (deadline/queue) are the overload policy doing
              // its job — count on the service stats and keep going. Any
              // other class means the session is lost.
              const bool shed =
                  e.error_class() == codec::SessionErrorClass::kTimeout ||
                  e.error_class() == codec::SessionErrorClass::kOverloaded;
              if (!shed && !failure) {
                failure = e;
              }
            }
          };
          for (const auto& frame : frames) {
            if (session.failed()) {
              break;  // latched: further submits would only fail fast
            }
            inflight.push_back(session.submit(frame));
            // Depth 2 covers the front/back overlap; deeper queues only add
            // latency (admission allows one front + one back in flight).
            while (inflight.size() > 2) {
              reap(inflight.front());
              inflight.pop_front();
            }
          }
          while (!inflight.empty()) {
            reap(inflight.front());
            inflight.pop_front();
          }
        });
      }
      for (std::thread& t : drivers) {
        t.join();
      }
      wall_seconds = wall.seconds();
      service_stats = service.stats();
      for (const std::optional<codec::SessionError>& failure : failures) {
        if (failure) {
          std::cerr << "acbm_enc: " << failure->what() << '\n';
          return 3;
        }
      }
      encoded = reports[0].size();
      for (const codec::FrameReport& r : reports[0]) {
        bits += r.bits;
        positions += r.me_positions;
        psnr += r.psnr_y;
        totals.add(r);
      }
      stream = sess[0]->finish();
      effective_slices = sess[0]->encoder().slices();
      counter_rows = service.metrics().counter_rows();
      gauge_rows = service.metrics().gauge_rows();
      hist_rows = service.metrics().histogram_rows();
      sess.clear();  // sessions drain their pool lanes before the export
    }

    if (tracer) {
      // Both encode scopes have closed: every pool is joined, so the rings
      // are quiescent and the export sees complete spans.
      obs::Tracer::uninstall();
      tracer->write_chrome_json_file(parser.get("trace"));
    }

    std::ofstream out(parser.get("out"), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(stream.data()),
              static_cast<std::streamsize>(stream.size()));
    if (!out) {
      std::cerr << "write failure on " << parser.get("out") << '\n';
      return 1;
    }

    if (encoded == 0) {
      std::cout << "encoded 0 frames (every frame was shed by the overload "
                   "policy) -> " << parser.get("out") << '\n';
      if (parser.get_flag("summary") && service_stats) {
        const codec::ServiceStats& st = *service_stats;
        std::cout << "  service stats: accepted " << st.accepted
                  << ", completed " << st.completed << ", rejected "
                  << st.rejected << ", timed out " << st.timed_out
                  << ", failed " << st.failed << ", degraded " << st.degraded
                  << ", peak queue " << st.peak_queue_depth << '\n';
      }
      if (parser.get_flag("metrics")) {
        print_metrics(counter_rows, gauge_rows, hist_rows);
      }
      return 0;
    }
    const double n = static_cast<double>(encoded);
    std::cout << "encoded " << encoded << " frames ("
              << frames[0].width() << "x" << frames[0].height() << ") with "
              << estimator_spec << " (SAD kernel "
              << simd::active_kernel_name() << ")\n  config "
              << codec::to_spec(cfg) << "\n  "
              << util::CsvWriter::num(static_cast<double>(bits) * fps / n /
                                          1000.0, 1)
              << " kbit/s, PSNR-Y " << util::CsvWriter::num(psnr / n, 2)
              << " dB, "
              << util::CsvWriter::num(
                     static_cast<double>(positions) /
                         (n * (frames[0].width() / 16.0) *
                          (frames[0].height() / 16.0)), 1)
              << " positions/MB\n  " << stream.size() << " bytes ("
              << (effective_slices > 1
                      ? "ACV2, " + std::to_string(effective_slices) +
                            " slices/frame"
                      : std::string("ACV1"))
              << ") -> " << parser.get("out") << '\n';
    if (sessions > 1 && wall_seconds > 0.0) {
      std::cout << "  " << sessions << " sessions: "
                << util::CsvWriter::num(
                       static_cast<double>(sessions) * n / wall_seconds, 1)
                << " frames/s aggregate ("
                << util::CsvWriter::num(n / wall_seconds, 1)
                << " frames/s per session)\n";
    }
    if (parser.get_flag("summary")) {
      totals.print(encoded);
      print_stage_table(hist_rows);
      if (service_stats) {
        const codec::ServiceStats& st = *service_stats;
        std::cout << "  service stats: accepted " << st.accepted
                  << ", completed " << st.completed << ", rejected "
                  << st.rejected << ", timed out " << st.timed_out
                  << ", failed " << st.failed << ", degraded " << st.degraded
                  << ", peak queue " << st.peak_queue_depth << '\n';
      }
    }
    if (parser.get_flag("metrics")) {
      print_metrics(counter_rows, gauge_rows, hist_rows);
    }
    return 0;
  } catch (const video::IoError& e) {
    // Malformed input is a caller problem, same exit class as a bad spec.
    std::cerr << "acbm_enc: " << e.what() << '\n';
    return 2;
  } catch (const util::SpecError& e) {
    std::cerr << "acbm_enc: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "acbm_enc: " << e.what() << '\n';
    return 1;
  }
}
