#!/usr/bin/env python3
"""Cross-commit perf trend analytics over stamped BENCH_ci.json artifacts.

scripts/bench_gate.py stamps every merged artifact with context.commit_sha
and context.timestamp_utc. Point this script at a directory (or explicit
list) of such artifacts and it renders the perf trajectory:

  * TREND.md — one markdown table per benchmark: rows are commits in
    timestamp order, columns are the row's wall time plus every numeric
    counter, so "how did p99_ms move over the last ten commits" is one
    glance.
  * sparkline_<metric>.svg — a small SVG sparkline per metric, min/max
    normalised, first..last commit left to right.
  * A "flagged moves" section naming the FIRST commit at which each metric
    moved more than --flag-threshold (default 10%) relative to the previous
    commit — the bisection starting point for an unexplained drift.

Artifacts without a timestamp stamp are tolerated with a warning and sorted
before the stamped ones (they predate the stamping convention).

Usage:
  bench_trend.py --out-dir trend artifacts/
  bench_trend.py --out-dir trend a/BENCH_ci.json b/BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys


def slugify(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_")


def discover(paths: list[str]) -> list[str]:
    """Expands directories to the .json files inside them."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, f)
                for f in sorted(os.listdir(path))
                if f.endswith(".json")
            )
        else:
            files.append(path)
    return files


def load_artifacts(files: list[str]):
    """Returns artifacts sorted by (timestamp_utc, commit, filename)."""
    artifacts = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        ctx = doc.get("context", {})
        commit = ctx.get("commit_sha", "")
        timestamp = ctx.get("timestamp_utc", "")
        if not commit or not timestamp:
            print(
                f"warning: {path} is missing context.commit_sha/"
                f"timestamp_utc (re-run bench_gate.py with --commit/"
                f"--stamp-now); sorting it first",
                file=sys.stderr,
            )
        metrics = {}
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            name = bench["name"]
            # cpu_time mirrors real_time in our single-iteration reports;
            # keeping both would double every sparkline.
            skip = {"name", "run_name", "run_type", "iterations",
                    "time_unit", "repetitions", "repetition_index",
                    "threads", "cpu_time", "family_index",
                    "per_family_instance_index"}
            for key, value in bench.items():
                if key in skip or not isinstance(value, (int, float)):
                    continue
                metrics[f"{name}/{key}"] = float(value)
        artifacts.append({
            "path": path,
            "commit": commit or "unstamped",
            "timestamp": timestamp,
            "metrics": metrics,
        })
    artifacts.sort(key=lambda a: (a["timestamp"], a["commit"], a["path"]))
    return artifacts


def metric_series(artifacts):
    """{metric: [value-or-None per artifact]} over every metric seen."""
    names = sorted({m for a in artifacts for m in a["metrics"]})
    return {
        name: [a["metrics"].get(name) for a in artifacts] for name in names
    }


def flag_moves(series, threshold):
    """First commit index at which each metric moved > threshold.

    Returns {metric: (index, previous, value)} comparing each artifact to
    the previous one that actually carried the metric.
    """
    flagged = {}
    for name, values in series.items():
        prev = None
        for i, value in enumerate(values):
            if value is None:
                continue
            if prev is not None and abs(prev) > 1e-12:
                if abs(value - prev) / abs(prev) > threshold:
                    flagged[name] = (i, prev, value)
                    break
            prev = value
    return flagged


def sparkline_svg(values, width=240, height=40, pad=3):
    """Min/max-normalised polyline; None gaps are skipped."""
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return None
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span_x = max(len(values) - 1, 1)
    span_v = hi - lo
    coords = []
    for i, v in points:
        x = pad + (width - 2 * pad) * i / span_x
        y = (
            height / 2
            if span_v == 0
            else pad + (height - 2 * pad) * (1 - (v - lo) / span_v)
        )
        coords.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#2a7" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/></svg>\n'
    )


def short(commit: str) -> str:
    return commit[:10] if re.fullmatch(r"[0-9a-f]{12,}", commit) else commit


def fmt(value) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_markdown(artifacts, series, flagged, out_dir, sparklines):
    lines = ["# Perf trend", ""]
    lines.append(
        f"{len(artifacts)} artifact(s), oldest to newest: "
        + ", ".join(
            f"{short(a['commit'])} ({a['timestamp'] or 'unstamped'})"
            for a in artifacts
        )
    )
    lines.append("")

    if flagged:
        lines.append("## Flagged moves (>{:.0f}% vs previous commit)".format(
            100 * FLAG_THRESHOLD[0]))
        lines.append("")
        for name in sorted(flagged):
            i, prev, value = flagged[name]
            pct = 100.0 * (value - prev) / abs(prev)
            lines.append(
                f"- `{name}`: {fmt(prev)} -> {fmt(value)} ({pct:+.1f}%) "
                f"first at commit {short(artifacts[i]['commit'])}"
            )
        lines.append("")
    else:
        lines.append("## Flagged moves")
        lines.append("")
        lines.append("none — every metric stayed within the threshold")
        lines.append("")

    by_bench = {}
    for name in series:
        bench, _, metric = name.rpartition("/")
        by_bench.setdefault(bench, []).append((metric, name))

    for bench in sorted(by_bench):
        columns = by_bench[bench]
        lines.append(f"## {bench}")
        lines.append("")
        header = ["commit"] + [metric for metric, _ in columns]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for i, artifact in enumerate(artifacts):
            row = [short(artifact["commit"])]
            for _, full in columns:
                cell = fmt(series[full][i])
                if full in flagged and flagged[full][0] == i:
                    cell = f"**{cell}**"
                row.append(cell)
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
        for metric, full in columns:
            svg = sparklines.get(full)
            if svg:
                lines.append(f"![{full}]({svg})")
        lines.append("")

    path = os.path.join(out_dir, "TREND.md")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines))
    return path


# Mutable cell so render_markdown can show the threshold without threading
# it through every call.
FLAG_THRESHOLD = [0.10]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="BENCH_ci.json artifacts, or directories of "
                             "them")
    parser.add_argument("--out-dir", default="trend",
                        help="directory for TREND.md and the sparklines")
    parser.add_argument("--flag-threshold", type=float, default=0.10,
                        help="relative move vs the previous commit that "
                             "flags a metric (0.10 = 10%%)")
    args = parser.parse_args()
    FLAG_THRESHOLD[0] = args.flag_threshold

    artifacts = load_artifacts(discover(args.inputs))
    if not artifacts:
        print("error: no readable artifacts", file=sys.stderr)
        return 1
    if len(artifacts) < 2:
        print("note: only one artifact — tables render but no trend or "
              "flagging is possible yet")

    series = metric_series(artifacts)
    flagged = flag_moves(series, args.flag_threshold)

    os.makedirs(args.out_dir, exist_ok=True)
    sparklines = {}
    for name, values in series.items():
        svg = sparkline_svg(values)
        if svg is None:
            continue
        filename = f"sparkline_{slugify(name)}.svg"
        with open(os.path.join(args.out_dir, filename), "w",
                  encoding="utf-8") as f:
            f.write(svg)
        sparklines[name] = filename

    path = render_markdown(artifacts, series, flagged, args.out_dir,
                           sparklines)
    print(f"wrote {path} ({len(series)} metrics over {len(artifacts)} "
          f"artifacts, {len(flagged)} flagged, {len(sparklines)} "
          f"sparklines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
