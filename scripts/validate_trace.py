#!/usr/bin/env python3
"""Schema-check a Chrome trace-event JSON file produced by the obs tracer.

Contract (docs/OBSERVABILITY.md): the exporter must only emit traces that

  * are a JSON object with a "traceEvents" list,
  * carry numeric pid/tid/ts on every non-metadata event,
  * have non-decreasing timestamps per (pid, tid) in emission order,
  * balance thread spans: B/E strictly nest per (pid, tid), every B has
    its E, no E without an open B,
  * balance async spans: every b has a matching e per (cat, id) and vice
    versa, pairing chronologically,
  * give counter events ("C") a numeric args.value,
  * restrict phases to B/E/b/e/i/C/M.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exit 0 when every file validates, 1 otherwise (one "file: problem" line per
violation on stderr).
"""

from __future__ import annotations

import json
import sys

ALLOWED_PHASES = {"B", "E", "b", "e", "i", "C", "M"}


def validate_events(events) -> list[str]:
    """Returns a list of violation descriptions (empty = valid)."""
    problems: list[str] = []
    if not isinstance(events, list):
        return ["traceEvents is not a list"]

    last_ts: dict[tuple, float] = {}
    open_spans: dict[tuple, list[str]] = {}
    open_async: dict[tuple, int] = {}

    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ALLOWED_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata: no timestamp ordering contract
        name = ev.get("name", "?")
        where = f"event {i} ({ph} {ev.get('cat', '?')}/{name})"
        pid = ev.get("pid")
        tid = ev.get("tid")
        ts = ev.get("ts")
        if not isinstance(pid, (int, float)) or not isinstance(
            tid, (int, float)
        ):
            problems.append(f"{where}: non-numeric pid/tid")
            continue
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts")
            continue
        thread = (pid, tid)
        if ts < last_ts.get(thread, float("-inf")):
            problems.append(
                f"{where}: ts {ts} goes backwards on pid={pid} tid={tid} "
                f"(previous {last_ts[thread]})"
            )
        last_ts[thread] = ts

        if ph == "B":
            open_spans.setdefault(thread, []).append(name)
        elif ph == "E":
            stack = open_spans.get(thread, [])
            if not stack:
                problems.append(
                    f"{where}: E with no open span on pid={pid} tid={tid}"
                )
            else:
                stack.pop()
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    problems.append(
                        f"{where}: async e with no open b for "
                        f"cat={key[0]!r} id={key[1]!r}"
                    )
                else:
                    open_async[key] -= 1
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter without numeric args.value")

    for (pid, tid), stack in open_spans.items():
        if stack:
            problems.append(
                f"pid={pid} tid={tid}: {len(stack)} span(s) never closed "
                f"(innermost {stack[-1]!r})"
            )
    for (cat, span_id), count in open_async.items():
        if count > 0:
            problems.append(
                f"async span cat={cat!r} id={span_id!r}: "
                f"{count} begin(s) never ended"
            )
    return problems


def validate_file(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [str(e)]
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing traceEvents object"]
    return validate_events(doc["traceEvents"])


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        problems = validate_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["traceEvents"])
            print(f"{path}: OK ({n} events)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
