#!/usr/bin/env python3
"""Regenerate the decoder fuzzing seed corpus (tests/fuzz/corpus).

Drives the acbm_enc example binary over a small grid of encoder
configurations — both wire formats (ACV1/ACV2), both mode decisions,
deblocking, intra refresh, QP extremes, full-pel, multi-session — so the
coverage-guided fuzzer (and the fuzz_corpus_regression replay test) starts
from inputs that already reach every decoder code path. A few derived
truncation edge cases ride along to seed the error paths.

Inputs are deterministic: a tiny 48x32 procedural clip written as headerless
I420 (keeps every seed file small, which keeps the in-fuzzer RefDecoder
differential cheap) plus one QCIF synthetic clip for geometry diversity.
Re-running the script reproduces the corpus byte-for-byte for a given
encoder build.

Usage:
    cmake -B build -S . && cmake --build build -j --target acbm_enc
    python3 scripts/make_corpus.py [--acbm-enc build/acbm_enc]
                                   [--out-dir tests/fuzz/corpus]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile

TINY_W, TINY_H, TINY_FRAMES = 48, 32, 4


def write_tiny_clip(path: pathlib.Path) -> None:
    """Deterministic moving-gradient clip, headerless I420."""
    data = bytearray()
    for t in range(TINY_FRAMES):
        for y in range(TINY_H):  # luma: diagonal gradient drifting with t
            for x in range(TINY_W):
                data.append((x * 3 + y * 5 + t * 7) & 0xFF)
        for y in range(TINY_H // 2):  # cb
            for x in range(TINY_W // 2):
                data.append((128 + ((x + t) % 17) * 4) & 0xFF)
        for y in range(TINY_H // 2):  # cr
            for x in range(TINY_W // 2):
                data.append((128 - ((y + 2 * t) % 13) * 5) & 0xFF)
    path.write_bytes(bytes(data))


# (seed name, acbm_enc arguments). Names describe the configuration so a
# crashing input's provenance is readable straight from the fuzzer output.
def seed_grid(tiny_yuv: pathlib.Path) -> list[tuple[str, list[str]]]:
    tiny = [
        "--input", str(tiny_yuv),
        "--width", str(TINY_W), "--height", str(TINY_H),
        "--frames", str(TINY_FRAMES),
    ]
    grid: list[tuple[str, list[str]]] = []
    for kernel in ("scalar", "auto"):
        for slices in (1, 4):
            grid.append((
                f"tiny-{kernel}-s{slices}-qp14",
                tiny + ["--kernel", kernel, "--qp", "14",
                        "--config", f"slices={slices}"],
            ))
    grid += [
        ("tiny-rd-s2-qp12",
         tiny + ["--qp", "12", "--config", "mode=rd,slices=2"]),
        ("tiny-deblock-s1-qp20",
         tiny + ["--qp", "20", "--config", "deblock=1"]),
        ("tiny-intra2-s4-qp16",
         tiny + ["--qp", "16", "--intra-period", "2",
                 "--config", "slices=4"]),
        ("tiny-qp4-s1", tiny + ["--qp", "4"]),
        ("tiny-qp31-s4", tiny + ["--qp", "31", "--config", "slices=4"]),
        ("tiny-fullpel-noskip-s1-qp16",
         tiny + ["--qp", "16", "--config", "halfpel=0,skip=0"]),
        ("tiny-sessions2-s2-qp18",
         tiny + ["--qp", "18", "--sessions", "2", "--config", "slices=2"]),
        ("qcif-foreman-s3-qp18",
         ["--synthetic", "foreman", "--frames", "3", "--qp", "18",
          "--config", "slices=3,deblock=1"]),
    ]
    return grid


def derived_edges(streams: dict[str, bytes]) -> dict[str, bytes]:
    """Truncation edge cases sliced out of the generated streams."""
    v1 = streams["tiny-scalar-s1-qp14"]
    v2 = streams["tiny-scalar-s4-qp14"]
    return {
        "edge-header-only": v1[:12],
        "edge-v1-first-frame-cut": v1[: len(v1) // 3],
        "edge-v2-mid-directory": v2[:20],
        "edge-v2-last-byte-cut": v2[:-1],
    }


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--acbm-enc", default=str(root / "build" / "acbm_enc"),
                    help="path to the acbm_enc binary")
    ap.add_argument("--out-dir", default=str(root / "tests" / "fuzz" / "corpus"),
                    help="corpus directory to (re)populate")
    args = ap.parse_args()

    enc = pathlib.Path(args.acbm_enc)
    if not enc.is_file():
        print(f"acbm_enc not found at {enc}; build it first "
              "(cmake --build build --target acbm_enc)", file=sys.stderr)
        return 2
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    streams: dict[str, bytes] = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        tiny_yuv = tmp_path / "tiny.yuv"
        write_tiny_clip(tiny_yuv)
        for name, enc_args in seed_grid(tiny_yuv):
            out = tmp_path / f"{name}.acv"
            cmd = [str(enc), *enc_args, "--out", str(out)]
            result = subprocess.run(cmd, capture_output=True, text=True)
            if result.returncode != 0:
                print(f"{name}: acbm_enc failed\n{result.stderr}",
                      file=sys.stderr)
                return 1
            streams[name] = out.read_bytes()

    streams.update(derived_edges(streams))
    for name, data in sorted(streams.items()):
        (out_dir / f"{name}.acv").write_bytes(data)
        print(f"{name}.acv: {len(data)} bytes")
    print(f"wrote {len(streams)} seed(s) to {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
