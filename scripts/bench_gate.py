#!/usr/bin/env python3
"""Merge bench JSON reports into one perf-trajectory file and gate on it.

CI runs the benchmark binaries with --benchmark_format=json (bench_kernels
is real google-benchmark; the reproduction benches emit the same row schema
via bench::JsonBenchReport), merges the outputs into a single BENCH_ci.json
artifact, and compares it against the checked-in baseline
(bench/baselines/BENCH_baseline.json):

  * Wall-clock rows are compared as RATIOS normalised by the median ratio
    across all common rows. The baseline was recorded on a different
    machine than the CI runner; the median ratio is the machine-speed
    factor, and what remains after dividing it out is per-benchmark drift.
    Any row slower than --max-regression (default 20%) after normalisation
    fails the gate.
  * Counter rows that the codec guarantees to be deterministic
    (positions_per_mb) are compared directly with a tight tolerance —
    a change there is an algorithmic drift, not noise, and fails the gate
    at any magnitude above the tolerance regardless of timing.
  * Latency counters — any counter named *_p50_us / *_p99_us, derived from
    the obs::Registry stage histograms — are gated loosely: normalised by
    the same machine-speed factor as the wall-clock rows, but with a much
    wider allowance (--max-latency-regression, default 50%), because
    percentiles over a handful of frames are noisy on shared runners.

Intentional perf/algorithm changes: re-seed the baseline with
--update-baseline and commit it, or set ACBM_BENCH_GATE=off in the
environment (CI exposes this as the `bench-gate` workflow variable /
`[bench-gate-off]` commit-message tag) to demote failures to warnings for
one run.

The merged artifact can be keyed for cross-commit trajectory plotting:
--commit SHA and --timestamp ISO8601 (or --stamp-now for the current UTC
time) land in context.commit_sha / context.timestamp_utc, so a directory of
BENCH_ci.json artifacts sorts and joins by commit without re-deriving
anything from CI metadata.

Usage:
  bench_gate.py --out BENCH_ci.json --baseline bench/baselines/BENCH_baseline.json \
      --commit "$GITHUB_SHA" --stamp-now kernels.json table1.json
  bench_gate.py --update-baseline --baseline ... kernels.json table1.json
"""

import argparse
import datetime
import json
import os
import statistics
import sys

DETERMINISTIC_COUNTERS = {  # relative tolerance per counter
    "positions_per_mb": 1e-4,
    # bench_resilience: seeded channel + bit-exact codec + normative
    # concealment make both resilience counters exactly reproducible.
    "concealment_psnr_db": 1e-4,
    "concealed_slice_pct": 1e-4,
    # bench_service health counters: with no overload policy and no fault
    # injection armed, every submitted frame must be accepted and completed
    # (accepted == completed == sessions * frames, shed == 0). Any drift is
    # a dropped/failed frame — a correctness bug, not a perf regression.
    "accepted_frames": 1e-4,
    "completed_frames": 1e-4,
    "shed_frames": 1e-4,
}

# Stage-latency percentile counters (bench_service derives them from the
# obs::Registry histograms). Gated as machine-normalised ratios with a wide
# threshold — see the module docstring.
LATENCY_COUNTER_SUFFIXES = ("_p50_us", "_p99_us")


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev) would double-count; keep plain
        # iterations only.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        rows[bench["name"]] = bench
    return doc, rows


def merge(inputs):
    merged = {"context": {"merged_from": [os.path.basename(p) for p in inputs]},
              "benchmarks": []}
    seen = set()
    for path in inputs:
        doc, rows = load_rows(path)
        ctx = doc.get("context", {})
        # estimator_spec / sweep_config are the canonical to_spec() strings
        # the benches stamp; forwarding them keys BENCH_ci.json artifacts by
        # the exact configuration that produced the rows.
        for key in ("executable", "host_name", "num_cpus", "mhz_per_cpu",
                    "library_build_type", "date", "estimator_spec",
                    "sweep_config"):
            if key in ctx and key not in merged["context"]:
                merged["context"][key] = ctx[key]
        for name, bench in rows.items():
            if name in seen:
                print(f"warning: duplicate row {name} (keeping first)")
                continue
            seen.add(name)
            merged["benchmarks"].append(bench)
    return merged


def to_ns(bench):
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return float(bench["real_time"]) * scale


def gate(current, baseline_rows, max_regression, max_latency_regression=0.50):
    cur_rows = {b["name"]: b for b in current["benchmarks"]}
    common = sorted(set(cur_rows) & set(baseline_rows))
    missing = sorted(set(baseline_rows) - set(cur_rows))
    extra = sorted(set(cur_rows) - set(baseline_rows))
    failures = []

    if missing:
        print(f"warning: {len(missing)} baseline rows absent from this run "
              f"(first: {missing[0]}) — not gated")
    if extra:
        print(f"note: {len(extra)} new rows without a baseline "
              f"(first: {extra[0]}) — re-seed the baseline to gate them")
    if not common:
        print("error: no rows in common with the baseline")
        return ["no common rows"]

    ratios = {name: to_ns(cur_rows[name]) / to_ns(baseline_rows[name])
              for name in common
              if to_ns(baseline_rows[name]) > 0}
    machine_factor = statistics.median(ratios.values())
    print(f"machine-speed factor vs baseline (median ratio): "
          f"{machine_factor:.3f}")

    print(f"{'benchmark':58s} {'norm ratio':>10s}")
    for name in common:
        norm = ratios[name] / machine_factor
        flag = ""
        if norm > 1.0 + max_regression:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {norm:.2f}x the baseline after normalisation "
                f"(limit {1.0 + max_regression:.2f}x)")
        print(f"{name:58s} {norm:10.3f}{flag}")

        for counter, tolerance in DETERMINISTIC_COUNTERS.items():
            if counter in cur_rows[name] and counter in baseline_rows[name]:
                cur = float(cur_rows[name][counter])
                base = float(baseline_rows[name][counter])
                denom = max(abs(base), 1e-12)
                if abs(cur - base) / denom > tolerance:
                    failures.append(
                        f"{name}: deterministic counter {counter} drifted "
                        f"{base} -> {cur}")

        for counter, value in cur_rows[name].items():
            if not counter.endswith(LATENCY_COUNTER_SUFFIXES):
                continue
            if counter not in baseline_rows[name]:
                continue
            base = float(baseline_rows[name][counter])
            if base <= 0:
                continue  # an empty-histogram baseline cannot form a ratio
            norm = (float(value) / base) / machine_factor
            if norm > 1.0 + max_latency_regression:
                failures.append(
                    f"{name}: latency counter {counter} {norm:.2f}x the "
                    f"baseline after normalisation "
                    f"(limit {1.0 + max_latency_regression:.2f}x)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="google-benchmark-format JSON reports to merge")
    parser.add_argument("--out", default="BENCH_ci.json",
                        help="merged trajectory file to write")
    parser.add_argument("--baseline",
                        default="bench/baselines/BENCH_baseline.json")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed normalised slowdown (0.20 = 20%%)")
    parser.add_argument("--max-latency-regression", type=float, default=0.50,
                        help="allowed normalised growth of *_p50_us/*_p99_us "
                             "latency counters (0.50 = 50%%)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the merged report as the new baseline "
                             "instead of gating")
    parser.add_argument("--commit", default="",
                        help="commit SHA to stamp into context.commit_sha")
    parser.add_argument("--timestamp", default="",
                        help="ISO-8601 UTC timestamp to stamp into "
                             "context.timestamp_utc")
    parser.add_argument("--stamp-now", action="store_true",
                        help="stamp the current UTC time (overridden by an "
                             "explicit --timestamp)")
    args = parser.parse_args()

    merged = merge(args.inputs)
    if args.commit:
        merged["context"]["commit_sha"] = args.commit
    timestamp = args.timestamp
    if not timestamp and args.stamp_now:
        timestamp = datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ")
    if timestamp:
        merged["context"]["timestamp_utc"] = timestamp
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
    print(f"wrote {args.out} ({len(merged['benchmarks'])} rows)")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(merged, f, indent=2)
        print(f"re-seeded baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"error: baseline {args.baseline} not found; run with "
              f"--update-baseline to seed it")
        return 1

    _, baseline_rows = load_rows(args.baseline)
    failures = gate(merged, baseline_rows, args.max_regression,
                    args.max_latency_regression)

    if failures:
        print("\nperf gate failures:")
        for failure in failures:
            print(f"  - {failure}")
        if os.environ.get("ACBM_BENCH_GATE", "").lower() == "off":
            print("ACBM_BENCH_GATE=off: demoting failures to warnings")
            return 0
        print("(intentional change? re-seed with --update-baseline, or set "
              "ACBM_BENCH_GATE=off / tag the commit [bench-gate-off])")
        return 1
    print("\nperf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
