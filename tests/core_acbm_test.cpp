// ACBM: the criticality tests T1/T2, degenerate parameter anchors, position
// accounting, statistics, and the decision log.

#include "core/acbm.hpp"

#include <gtest/gtest.h>

#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "me/sad.hpp"
#include "test_support.hpp"

namespace acbm::core {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;
using me::Mv;

TEST(AcbmParams, ThresholdFormula) {
  const AcbmParams p = AcbmParams::paper_defaults();
  EXPECT_DOUBLE_EQ(p.alpha, 1000.0);
  EXPECT_DOUBLE_EQ(p.beta, 8.0);
  EXPECT_DOUBLE_EQ(p.gamma, 0.25);
  EXPECT_DOUBLE_EQ(p.threshold(16), 1000.0 + 8.0 * 256.0);
  EXPECT_DOUBLE_EQ(p.threshold(30), 1000.0 + 8.0 * 900.0);
}

TEST(Acbm, LowActivityBlockSkipsFullSearch) {
  // Flat content: Intra_SAD ≈ 0 and PBM matches perfectly → T1 accepts.
  video::Plane flat(64, 48);
  flat.fill(90);
  flat.extend_border();
  video::Plane cur = flat;
  const SearchFixture fx(std::move(flat), std::move(cur));
  me::BlockContext ctx = fx.context(16, 16);
  ctx.qp = 16;
  Acbm acbm;
  const me::EstimateResult r = acbm.estimate(ctx);
  EXPECT_FALSE(r.used_full_search);
  EXPECT_LT(r.positions, 100u);
  EXPECT_EQ(acbm.stats().accepted_low_activity, 1u);
  EXPECT_EQ(acbm.stats().critical, 0u);
}

TEST(Acbm, GoodMatchOnTexturedBlockSkipsFullSearch) {
  // Highly textured but PBM finds the exact zero-motion match:
  // SAD_PBM = 0 < γ·Intra_SAD → T2 accepts.
  const video::Plane tex = acbm::test::random_plane(64, 48, 1);
  video::Plane cur = tex;
  const SearchFixture fx(tex, cur);
  me::BlockContext ctx = fx.context(16, 16);
  ctx.qp = 16;
  Acbm acbm;
  const me::EstimateResult r = acbm.estimate(ctx);
  EXPECT_FALSE(r.used_full_search);
  EXPECT_EQ(acbm.stats().accepted_good_match, 1u);
}

TEST(Acbm, CriticalBlockRunsFullSearch) {
  // Textured block with a large unpredicted shift: PBM is trapped, both
  // tests fail, FSBM must run and find the true vector.
  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 2);
  const SearchFixture fx(std::move(ref), std::move(cur));
  me::BlockContext ctx = fx.context(32, 32);
  ctx.qp = 16;
  Acbm acbm;
  const me::EstimateResult r = acbm.estimate(ctx);
  EXPECT_TRUE(r.used_full_search);
  EXPECT_EQ(r.mv, me::mv_from_fullpel(14, 14));
  EXPECT_EQ(r.sad, 0u);
  EXPECT_EQ(acbm.stats().critical, 1u);
  EXPECT_GT(r.positions, 969u);  // PBM + Intra_SAD + FSBM
}

TEST(Acbm, AlwaysFullParamsMatchFsbmQuality) {
  const SearchFixture fx(acbm::test::random_plane(96, 96, 3),
                         acbm::test::random_plane(96, 96, 4));
  const me::BlockContext ctx = fx.context(32, 32);
  Acbm acbm(AcbmParams::always_full_search());
  me::FullSearch fsbm;
  EXPECT_EQ(acbm.estimate(ctx).sad, fsbm.estimate(ctx).sad);
  EXPECT_EQ(acbm.stats().critical, 1u);
}

TEST(Acbm, NeverFullParamsMatchPbm) {
  const SearchFixture fx(acbm::test::random_plane(96, 96, 5),
                         acbm::test::random_plane(96, 96, 6));
  const me::BlockContext ctx = fx.context(32, 32);
  Acbm acbm(AcbmParams::never_full_search());
  me::Pbm pbm;
  const me::EstimateResult ra = acbm.estimate(ctx);
  const me::EstimateResult rp = pbm.estimate(ctx);
  EXPECT_EQ(ra.mv, rp.mv);
  EXPECT_EQ(ra.sad, rp.sad);
  EXPECT_EQ(ra.positions, rp.positions + 1);  // + the Intra_SAD pass
  EXPECT_FALSE(ra.used_full_search);
  EXPECT_EQ(acbm.stats().critical, 0u);
}

TEST(Acbm, NeverWorseThanPbmOnSad) {
  for (int seed = 0; seed < 8; ++seed) {
    const SearchFixture fx(acbm::test::random_plane(96, 96, 100 + seed),
                           acbm::test::random_plane(96, 96, 200 + seed));
    const me::BlockContext ctx = fx.context(32, 32);
    Acbm acbm;
    me::Pbm pbm;
    EXPECT_LE(acbm.estimate(ctx).sad, pbm.estimate(ctx).sad) << seed;
  }
}

TEST(Acbm, HigherQpAcceptsMore) {
  // The same moderately-mismatched block: at a tiny Qp the tolerance is
  // small (critical); at Qp 31 T1's β·Qp² absorbs it.
  // Two *independent* low-amplitude noise fields: no displacement can align
  // them, so SAD_PBM stays moderate (≈1200) while Intra_SAD is mild (≈800).
  // Their sum lands between the T1 thresholds at Qp 1 (1008) and Qp 31
  // (8688), and T2 fails because the match error exceeds γ·Intra_SAD.
  video::Plane ref(64, 48);
  video::Plane cur(64, 48);
  util::Rng rng(77);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      ref.set(x, y, static_cast<std::uint8_t>(100 + rng.next_in_range(-6, 6)));
      cur.set(x, y, static_cast<std::uint8_t>(100 + rng.next_in_range(-6, 6)));
    }
  }
  ref.extend_border();
  cur.extend_border();
  const SearchFixture fx(std::move(ref), std::move(cur));

  me::BlockContext low_qp = fx.context(16, 16);
  low_qp.qp = 1;
  me::BlockContext high_qp = fx.context(16, 16);
  high_qp.qp = 31;

  Acbm acbm;
  (void)acbm.estimate(low_qp);
  const bool critical_at_low = acbm.stats().critical == 1;
  acbm.reset();
  (void)acbm.estimate(high_qp);
  const bool critical_at_high = acbm.stats().critical == 1;
  EXPECT_TRUE(critical_at_low);
  EXPECT_FALSE(critical_at_high);
}

TEST(Acbm, GammaZeroDisablesGoodMatchPath) {
  const video::Plane tex = acbm::test::random_plane(64, 48, 7);
  video::Plane cur = tex;
  const SearchFixture fx(tex, cur);
  me::BlockContext ctx = fx.context(16, 16);
  ctx.qp = 1;  // keep T1 threshold small: Intra_SAD alone exceeds it
  Acbm acbm(AcbmParams{0.0, 0.0, 0.0});
  (void)acbm.estimate(ctx);
  EXPECT_EQ(acbm.stats().critical, 1u);
}

TEST(Acbm, StatsAccumulateAndReset) {
  auto [ref, cur] = shifted_pair(96, 96, 0, 0, 8);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Acbm acbm;
  for (int i = 0; i < 3; ++i) {
    (void)acbm.estimate(fx.context(32, 32));
  }
  EXPECT_EQ(acbm.stats().blocks, 3u);
  EXPECT_GT(acbm.stats().total_positions, 0u);
  EXPECT_GT(acbm.stats().average_positions(), 0.0);
  acbm.reset();
  EXPECT_EQ(acbm.stats().blocks, 0u);
  EXPECT_EQ(acbm.stats().total_positions, 0u);
}

TEST(Acbm, DecisionLogRecordsOutcomes) {
  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 9);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Acbm acbm;
  acbm.set_record_log(true);
  me::BlockContext ctx = fx.context(32, 32);
  ctx.bx = 2;
  ctx.by = 2;
  (void)acbm.estimate(ctx);
  ASSERT_EQ(acbm.decision_log().size(), 1u);
  const BlockDecision& d = acbm.decision_log()[0];
  EXPECT_EQ(d.bx, 2);
  EXPECT_EQ(d.by, 2);
  EXPECT_EQ(d.outcome, AcbmOutcome::kCritical);
  EXPECT_GT(d.intra_sad, 0u);
  EXPECT_GT(d.pbm_sad, 0u);
  EXPECT_EQ(d.final_mv, me::mv_from_fullpel(14, 14));
}

TEST(Acbm, LogDisabledByDefault) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 10);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Acbm acbm;
  (void)acbm.estimate(fx.context(16, 16));
  EXPECT_TRUE(acbm.decision_log().empty());
}

TEST(Acbm, CriticalFractionComputed) {
  AcbmStats stats;
  stats.blocks = 10;
  stats.critical = 3;
  stats.total_positions = 500;
  EXPECT_DOUBLE_EQ(stats.critical_fraction(), 0.3);
  EXPECT_DOUBLE_EQ(stats.average_positions(), 50.0);
}

TEST(Acbm, NameIsAcbm) {
  Acbm acbm;
  EXPECT_EQ(acbm.name(), "ACBM");
}

}  // namespace
}  // namespace acbm::core
