// Failure injection: the decoder must survive arbitrary corruption of a
// valid stream — throwing DecodeError or returning fewer frames is fine,
// crashing, hanging or reading out of bounds is not. Deterministic
// "fuzzing": seeded bit flips, truncations, byte erasures.

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"
#include "util/rng.hpp"

namespace acbm::codec {
namespace {

std::vector<std::uint8_t> valid_stream(int frames_count = 4,
                                       int slices = 1) {
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = {64, 48};
  req.frame_count = frames_count;
  const auto frames = synth::make_sequence(req);
  core::Acbm acbm;
  EncoderConfig cfg;
  cfg.qp = 12;
  cfg.search_range = 7;
  cfg.slices = slices;
  Encoder encoder({64, 48}, cfg, acbm);
  for (const auto& f : frames) {
    (void)encoder.encode_frame(f);
  }
  return encoder.finish();
}

/// Decodes as much as possible; any DecodeError is acceptable, any other
/// outcome than clean frames is a bug surfaced by ASAN/UBSAN or gtest.
void expect_survives(const std::vector<std::uint8_t>& data) {
  try {
    Decoder decoder(data);
    while (true) {
      const auto frame = decoder.decode_frame();
      if (!frame.has_value()) {
        break;
      }
      // Decoded frames must have the advertised geometry.
      ASSERT_EQ(frame->width(), decoder.size().width);
      ASSERT_EQ(frame->height(), decoder.size().height);
    }
  } catch (const DecodeError&) {
    // Detected corruption — the desired failure mode.
  }
}

TEST(DecoderFuzz, SingleBitFlips) {
  const auto stream = valid_stream();
  util::Rng rng(1);
  for (int trial = 0; trial < 400; ++trial) {
    auto corrupted = stream;
    const std::size_t byte = rng.next_below(
        static_cast<std::uint32_t>(corrupted.size()));
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_survives(corrupted);
  }
}

TEST(DecoderFuzz, BurstCorruption) {
  const auto stream = valid_stream();
  util::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    auto corrupted = stream;
    const std::size_t start = rng.next_below(
        static_cast<std::uint32_t>(corrupted.size()));
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(16), corrupted.size() - start);
    for (std::size_t i = 0; i < len; ++i) {
      corrupted[start + i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    expect_survives(corrupted);
  }
}

TEST(DecoderFuzz, AllTruncationLengths) {
  const auto stream = valid_stream(2);
  for (std::size_t len = 0; len <= stream.size(); ++len) {
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() + static_cast<long>(len));
    if (len < 12) {
      // Shorter than the sequence header: constructor must throw.
      EXPECT_THROW(Decoder d(truncated), DecodeError) << "len " << len;
    } else {
      expect_survives(truncated);
    }
  }
}

TEST(DecoderFuzz, RandomGarbageWithValidMagic) {
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> garbage(64 + rng.next_below(512));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // Valid magic + plausible geometry so parsing reaches the MB layer.
    garbage[0] = 'A';
    garbage[1] = 'C';
    garbage[2] = 'V';
    garbage[3] = '1';
    garbage[4] = 0;
    garbage[5] = 64;
    garbage[6] = 0;
    garbage[7] = 48;
    expect_survives(garbage);
  }
}

TEST(DecoderFuzz, DuplicatedAndReorderedFrames) {
  const auto stream = valid_stream(3);
  // Appending a copy of the tail re-feeds P-frame data; the decoder must
  // either decode it (it is syntactically valid) or flag an error.
  auto doubled = stream;
  doubled.insert(doubled.end(), stream.begin() + 12, stream.end());
  expect_survives(doubled);
}

TEST(DecoderFuzz, EmptyAndTinyInputs) {
  EXPECT_THROW(Decoder d(std::vector<std::uint8_t>{}), DecodeError);
  EXPECT_THROW(Decoder d(std::vector<std::uint8_t>{0x41}), DecodeError);
}

// ----------------------------------------------------- ACV2 (sliced) cases

TEST(DecoderFuzz, SlicedSingleBitFlips) {
  const auto stream = valid_stream(4, /*slices=*/3);
  util::Rng rng(4);
  for (int trial = 0; trial < 400; ++trial) {
    auto corrupted = stream;
    const std::size_t byte = rng.next_below(
        static_cast<std::uint32_t>(corrupted.size()));
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    expect_survives(corrupted);
  }
}

TEST(DecoderFuzz, SlicedBurstCorruption) {
  const auto stream = valid_stream(4, /*slices=*/3);
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    auto corrupted = stream;
    const std::size_t start = rng.next_below(
        static_cast<std::uint32_t>(corrupted.size()));
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(16), corrupted.size() - start);
    for (std::size_t i = 0; i < len; ++i) {
      corrupted[start + i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    expect_survives(corrupted);
  }
}

TEST(DecoderFuzz, SlicedAllTruncationLengths) {
  const auto stream = valid_stream(2, /*slices=*/3);
  for (std::size_t len = 0; len <= stream.size(); ++len) {
    std::vector<std::uint8_t> truncated(stream.begin(),
                                        stream.begin() + static_cast<long>(len));
    if (len < 12) {
      EXPECT_THROW(Decoder d(truncated), DecodeError) << "len " << len;
    } else {
      expect_survives(truncated);
    }
  }
}

TEST(DecoderFuzz, SlicedParallelDecodeSurvivesCorruption) {
  // The pool path must be as corruption-proof as the serial one: tasks may
  // not throw, so concealment has to absorb payload errors on the workers.
  const auto stream = valid_stream(4, /*slices=*/3);
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    auto corrupted = stream;
    const std::size_t byte = rng.next_below(
        static_cast<std::uint32_t>(corrupted.size()));
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      Decoder decoder(corrupted, /*threads=*/3);
      (void)decoder.decode_all();
    } catch (const DecodeError&) {
      // structural corruption — acceptable
    }
  }
}

TEST(DecoderFuzz, CorruptSlicePayloadIsConcealedAndResynchronised) {
  // Deterministic resynchronisation: zero out the first slice's payload of
  // the first frame. The all-zero data parses as empty macroblocks without
  // consuming the payload, which the decoder must flag and conceal — while
  // every later slice (located via the payload-length field in its header)
  // still decodes.
  const auto stream = valid_stream(3, /*slices=*/3);
  const auto reference_frames = [&] {
    Decoder d(stream);
    return d.decode_all();
  }();
  ASSERT_EQ(reference_frames.size(), 3u);

  // Layout: 12-byte sequence header, 3-byte frame header, 1-byte slice
  // count, 9-byte slice header, then slice 0's payload.
  constexpr std::size_t kHeaderBytes = 12 + 3 + 1 + 9;
  const std::size_t payload_len = (std::size_t{stream[kHeaderBytes - 4]}
                                       << 24) |
                                  (std::size_t{stream[kHeaderBytes - 3]}
                                       << 16) |
                                  (std::size_t{stream[kHeaderBytes - 2]}
                                       << 8) |
                                  std::size_t{stream[kHeaderBytes - 1]};
  ASSERT_GT(payload_len, 0u);
  ASSERT_LT(kHeaderBytes + payload_len, stream.size());

  auto corrupted = stream;
  for (std::size_t i = 0; i < payload_len; ++i) {
    corrupted[kHeaderBytes + i] = 0;
  }

  Decoder decoder(corrupted);
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), 3u);  // resynchronised: no frame was lost
  EXPECT_GE(decoder.concealed_slices(), 1u);
}

TEST(DecoderFuzz, SliceDirectoryTargetedCorruption) {
  // Random flips mostly land in payloads; this walk aims every shot at the
  // slice directory itself — sync word, index, first_row, payload length —
  // of every slice header in every frame, where a single byte can redirect
  // the resynchronisation machinery rather than just garble coefficients.
  const auto stream = valid_stream(3, /*slices=*/3);
  std::vector<std::size_t> headers;
  std::size_t pos = 12;  // sequence header
  while (pos + 4 <= stream.size()) {
    pos += 3;  // 23-bit frame header, byte-aligned
    const std::size_t slice_count = stream[pos++];
    for (std::size_t s = 0; s < slice_count && pos + 9 <= stream.size();
         ++s) {
      headers.push_back(pos);
      const std::size_t payload = (std::size_t{stream[pos + 5]} << 24) |
                                  (std::size_t{stream[pos + 6]} << 16) |
                                  (std::size_t{stream[pos + 7]} << 8) |
                                  std::size_t{stream[pos + 8]};
      pos += 9 + payload;
    }
  }
  ASSERT_EQ(headers.size(), 9u);  // 3 frames x 3 slices: the walk is sound
  util::Rng rng(7);
  for (const std::size_t header : headers) {
    for (std::size_t field = 0; field < 9; ++field) {
      const auto random_byte =
          static_cast<std::uint8_t>(rng.next_below(256));
      for (const std::uint8_t value :
           {std::uint8_t{0x00}, std::uint8_t{0xFF}, random_byte}) {
        auto corrupted = stream;
        corrupted[header + field] = value;
        expect_survives(corrupted);
      }
    }
  }
}

TEST(DecoderFuzz, TruncatedDecodeIsAPrefixOfTheFullDecode) {
  // Stronger than surviving truncation: because a truncated stream is a bit
  // prefix of the original and every emitted frame must have consumed only
  // bits that were actually present (slice payload lengths are validated
  // against the remaining buffer; V1 latches reader exhaustion), every
  // frame a truncated decode produces must be sample-identical to the
  // corresponding frame of the full decode — truncation can shorten the
  // output, never alter it.
  for (const int slices : {1, 3}) {
    const auto stream = valid_stream(4, slices);
    const auto reference = [&] {
      Decoder d(stream);
      return d.decode_all();
    }();
    ASSERT_EQ(reference.size(), 4u);
    for (std::size_t len = 12; len < stream.size(); ++len) {
      const std::vector<std::uint8_t> truncated(
          stream.begin(), stream.begin() + static_cast<long>(len));
      std::vector<video::Frame> decoded;
      try {
        Decoder decoder(truncated);
        while (auto frame = decoder.decode_frame()) {
          decoded.push_back(std::move(*frame));
        }
      } catch (const DecodeError&) {
        // the cut landed mid-frame — the partial frame must not be emitted
      }
      ASSERT_LE(decoded.size(), reference.size())
          << slices << " slices, len " << len;
      for (std::size_t i = 0; i < decoded.size(); ++i) {
        ASSERT_TRUE(decoded[i].y().visible_equals(reference[i].y()))
            << slices << " slices, len " << len << ", frame " << i;
        ASSERT_TRUE(decoded[i].cb().visible_equals(reference[i].cb()));
        ASSERT_TRUE(decoded[i].cr().visible_equals(reference[i].cr()));
      }
    }
  }
}

TEST(DecoderFuzz, SliceHeaderCorruptionIsRejected) {
  const auto stream = valid_stream(2, /*slices=*/3);
  // Byte 16 is the first slice header's sync word ("SL"): smashing it must
  // throw — the directory itself carries the resynchronisation points, so
  // there is nothing left to recover with.
  auto corrupted = stream;
  corrupted[16] = 0xFF;
  corrupted[17] = 0xFF;
  EXPECT_THROW(
      {
        Decoder d(corrupted);
        (void)d.decode_all();
      },
      DecodeError);

  // Payload length pointing past the end of the buffer: reject, not read.
  auto overrun = stream;
  overrun[21] = 0x7F;  // top byte of slice 0's u32 payload length
  EXPECT_THROW(
      {
        Decoder d(overrun);
        (void)d.decode_all();
      },
      DecodeError);
}

}  // namespace
}  // namespace acbm::codec
