#!/usr/bin/env python3
"""Unit tests for scripts/bench_trend.py — cross-commit trend analytics.

Exercises the contract the CI bench job relies on: stamped BENCH_ci.json
artifacts sort by context.timestamp_utc, render one markdown table per
benchmark plus an SVG sparkline per metric, and the first commit at which a
metric moved more than the flag threshold is named in the report.

Wired into ctest by CMakeLists.txt (test name: bench_trend_test); also
runnable directly: python3 tests/bench_trend_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TREND = os.path.join(REPO_ROOT, "scripts", "bench_trend.py")


def bench_row(name, ns, counters=None):
    row = {"name": name, "run_name": name, "run_type": "iteration",
           "real_time": ns, "cpu_time": ns, "time_unit": "ns"}
    if counters:
        row.update(counters)
    return row


def write_artifact(path, rows, commit=None, timestamp=None):
    context = {}
    if commit is not None:
        context["commit_sha"] = commit
    if timestamp is not None:
        context["timestamp_utc"] = timestamp
    with open(path, "w") as f:
        json.dump({"context": context, "benchmarks": rows}, f)


class BenchTrendTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        self.out_dir = os.path.join(self.dir, "trend")

    def tearDown(self):
        self.tmp.cleanup()

    def path(self, name):
        return os.path.join(self.dir, name)

    def run_trend(self, *args):
        return subprocess.run(
            [sys.executable, TREND, "--out-dir", self.out_dir, *args],
            capture_output=True, text=True, cwd=self.dir)

    def read_trend_md(self):
        with open(os.path.join(self.out_dir, "TREND.md")) as f:
            return f.read()

    def stamped_pair(self, second_p99=10.0):
        """Two artifacts of the same benchmark, one day apart."""
        write_artifact(
            self.path("a.json"),
            [bench_row("BM_Service/sessions:4", 1000.0,
                       {"p99_ms": 10.0, "me_p50_us": 400.0})],
            commit="aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            timestamp="2026-08-01T00:00:00Z")
        write_artifact(
            self.path("b.json"),
            [bench_row("BM_Service/sessions:4", 1050.0,
                       {"p99_ms": second_p99, "me_p50_us": 404.0})],
            commit="bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
            timestamp="2026-08-02T00:00:00Z")
        return self.path("a.json"), self.path("b.json")

    # ----------------------------------------------------------- rendering

    def test_two_stamped_artifacts_render_table(self):
        a, b = self.stamped_pair()
        result = self.run_trend(a, b)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        md = self.read_trend_md()
        self.assertIn("## BM_Service/sessions:4", md)
        # Chronological rows, short-sha'd.
        self.assertLess(md.index("aaaaaaaaaa"), md.index("bbbbbbbbbb"))
        self.assertIn("| commit | ", md)
        for metric in ("real_time", "p99_ms", "me_p50_us"):
            self.assertIn(metric, md)

    def test_sorts_by_timestamp_not_filename(self):
        # File named "a" carries the NEWER stamp; order must follow stamps.
        write_artifact(self.path("a.json"), [bench_row("BM_X", 2000.0)],
                       commit="new0000000000", timestamp="2026-08-05T00:00:00Z")
        write_artifact(self.path("b.json"), [bench_row("BM_X", 1000.0)],
                       commit="old0000000000", timestamp="2026-08-01T00:00:00Z")
        result = self.run_trend(self.path("a.json"), self.path("b.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        md = self.read_trend_md()
        self.assertLess(md.index("old0000000"), md.index("new0000000"))

    def test_directory_input_is_discovered(self):
        self.stamped_pair()
        result = self.run_trend(self.dir)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("2 artifact(s)", self.read_trend_md())

    def test_sparklines_written_per_metric(self):
        a, b = self.stamped_pair()
        result = self.run_trend(a, b)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        svgs = [f for f in os.listdir(self.out_dir)
                if f.startswith("sparkline_") and f.endswith(".svg")]
        # real_time + p99_ms + me_p50_us
        self.assertEqual(len(svgs), 3, svgs)
        with open(os.path.join(self.out_dir, svgs[0])) as f:
            self.assertIn("<polyline", f.read())
        md = self.read_trend_md()
        for svg in svgs:
            self.assertIn(svg, md)

    # ------------------------------------------------------------ flagging

    def test_flags_first_commit_of_large_move(self):
        a, b = self.stamped_pair(second_p99=14.0)  # +40% > 10% threshold
        result = self.run_trend(a, b)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        md = self.read_trend_md()
        self.assertIn("Flagged moves", md)
        self.assertIn("p99_ms", md.split("Flagged moves")[1].split("##")[0])
        # The move is attributed to the SECOND commit (where it first shows).
        self.assertIn("bbbbbbbbbb",
                      md.split("Flagged moves")[1].split("##")[0])

    def test_small_moves_not_flagged(self):
        a, b = self.stamped_pair(second_p99=10.5)  # +5% < 10% threshold
        result = self.run_trend(a, b)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        md = self.read_trend_md()
        flagged_section = md.split("Flagged moves")[1].split("##")[0]
        self.assertIn("none", flagged_section)

    def test_flag_threshold_is_configurable(self):
        a, b = self.stamped_pair(second_p99=10.5)  # +5%
        result = self.run_trend("--flag-threshold", "0.02", a, b)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        flagged = self.read_trend_md().split("Flagged moves")[1].split("##")[0]
        self.assertIn("p99_ms", flagged)

    # ---------------------------------------------------------- tolerance

    def test_unstamped_artifact_warns_but_renders(self):
        write_artifact(self.path("old.json"), [bench_row("BM_X", 1000.0)])
        write_artifact(self.path("new.json"), [bench_row("BM_X", 1100.0)],
                       commit="cccccccccccc",
                       timestamp="2026-08-03T00:00:00Z")
        result = self.run_trend(self.path("old.json"), self.path("new.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("missing context.commit_sha", result.stderr)
        md = self.read_trend_md()
        self.assertIn("unstamped", md)
        self.assertLess(md.index("unstamped"), md.index("cccccccccc"))

    def test_no_artifacts_is_an_error(self):
        result = self.run_trend(self.path("missing.json"))
        self.assertEqual(result.returncode, 1)

    def test_single_artifact_renders_with_note(self):
        write_artifact(self.path("a.json"), [bench_row("BM_X", 1000.0)],
                       commit="dddddddddddd",
                       timestamp="2026-08-01T00:00:00Z")
        result = self.run_trend(self.path("a.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("only one artifact", result.stdout)
        self.assertIn("BM_X", self.read_trend_md())


if __name__ == "__main__":
    unittest.main()
