// Annex-J deblocking: edge operator, strength table, plane filtering, and
// in-loop parity between encoder and decoder.

#include "codec/deblock.hpp"

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "me/pbm.hpp"
#include "synth/sequences.hpp"
#include "test_support.hpp"
#include "video/psnr.hpp"

namespace acbm::codec {
namespace {

TEST(DeblockStrength, TableEndpointsAndMonotonicity) {
  EXPECT_EQ(deblock_strength(1), 1);
  EXPECT_EQ(deblock_strength(8), 4);
  EXPECT_EQ(deblock_strength(16), 7);
  EXPECT_EQ(deblock_strength(31), 12);
  for (int qp = 2; qp <= 31; ++qp) {
    EXPECT_GE(deblock_strength(qp), deblock_strength(qp - 1));
  }
}

TEST(DeblockEdge, FlatQuadUnchanged) {
  std::uint8_t a = 100, b = 100, c = 100, d = 100;
  deblock_edge(a, b, c, d, 12);
  EXPECT_EQ(a, 100);
  EXPECT_EQ(b, 100);
  EXPECT_EQ(c, 100);
  EXPECT_EQ(d, 100);
}

TEST(DeblockEdge, SmallStepIsSmoothed) {
  // A small blocking step (quantization artefact) gets pulled together.
  std::uint8_t a = 100, b = 100, c = 108, d = 108;
  deblock_edge(a, b, c, d, 8);
  EXPECT_GT(b, 100);
  EXPECT_LT(c, 108);
  EXPECT_LE(static_cast<int>(c) - b, 8);
}

TEST(DeblockEdge, LargeRealEdgeIsPreserved) {
  // The up/down ramp turns off for differences far beyond the strength —
  // genuine image edges must not be blurred.
  std::uint8_t a = 20, b = 20, c = 220, d = 220;
  deblock_edge(a, b, c, d, 4);
  EXPECT_EQ(b, 20);
  EXPECT_EQ(c, 220);
}

TEST(DeblockEdge, ZeroStrengthIsIdentity) {
  std::uint8_t a = 90, b = 100, c = 120, d = 130;
  deblock_edge(a, b, c, d, 0);
  EXPECT_EQ(b, 100);
  EXPECT_EQ(c, 120);
}

TEST(DeblockPlane, ReducesBlockinessOnSyntheticArtefact) {
  // Build a plane with constant 8×8 tiles of alternating level — the
  // worst-case blocking pattern. Filtering must cut the total variation
  // across tile boundaries.
  video::Plane plane(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const bool odd_tile = (((x / 8) + (y / 8)) & 1) != 0;
      plane.set(x, y, odd_tile ? 110 : 100);
    }
  }
  plane.extend_border();
  auto boundary_variation = [](const video::Plane& p) {
    std::uint64_t tv = 0;
    for (int y = 0; y < p.height(); ++y) {
      for (int edge = 8; edge < p.width(); edge += 8) {
        tv += static_cast<std::uint64_t>(
            std::abs(int(p.at(edge - 1, y)) - int(p.at(edge, y))));
      }
    }
    return tv;
  };
  const std::uint64_t before = boundary_variation(plane);
  deblock_plane(plane, 16);
  EXPECT_LT(boundary_variation(plane), before / 2);
}

TEST(DeblockPlane, InteriorOfBlocksUntouchedByFlatContent) {
  video::Plane plane(32, 32);
  plane.fill(77);
  plane.extend_border();
  deblock_plane(plane, 31);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ASSERT_EQ(plane.at(x, y), 77);
    }
  }
}

TEST(DeblockFrame, FiltersAllThreePlanes) {
  video::Frame frame(32, 32);
  // Step across the 8-boundary in every plane.
  for (auto* plane : {&frame.y(), &frame.cb(), &frame.cr()}) {
    for (int y = 0; y < plane->height(); ++y) {
      for (int x = 0; x < plane->width(); ++x) {
        plane->set(x, y, x < 8 ? 100 : 110);
      }
    }
  }
  frame.extend_borders();
  deblock_frame(frame, 16);
  EXPECT_GT(frame.y().at(7, 4), 100);
  EXPECT_GT(frame.cb().at(7, 4), 100);
  EXPECT_GT(frame.cr().at(7, 4), 100);
}

TEST(DeblockLoop, EncoderDecoderParityWithFilterOn) {
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = {64, 48};
  req.frame_count = 4;
  const auto frames = synth::make_sequence(req);

  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = 24;
  cfg.search_range = 7;
  cfg.deblock = true;
  Encoder encoder({64, 48}, cfg, pbm);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)encoder.encode_frame(f);
    recons.push_back(encoder.last_recon());
  }
  Decoder decoder(encoder.finish());
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(decoded[i].y().visible_equals(recons[i].y())) << i;
    EXPECT_TRUE(decoded[i].cb().visible_equals(recons[i].cb())) << i;
  }
}

TEST(DeblockLoop, FlagTravelsPerStream) {
  // A stream encoded without the filter must decode without it (the flag is
  // in the frame header, not guessed from configuration).
  synth::SequenceRequest req;
  req.name = "table";
  req.size = {64, 48};
  req.frame_count = 3;
  const auto frames = synth::make_sequence(req);

  auto encode = [&](bool deblock) {
    me::Pbm pbm;
    EncoderConfig cfg;
    cfg.qp = 28;
    cfg.search_range = 7;
    cfg.deblock = deblock;
    Encoder encoder({64, 48}, cfg, pbm);
    std::vector<video::Frame> recons;
    for (const auto& f : frames) {
      (void)encoder.encode_frame(f);
      recons.push_back(encoder.last_recon());
    }
    auto stream = encoder.finish();
    return std::pair{std::move(stream), std::move(recons)};
  };
  const auto [with, recons_with] = encode(true);
  const auto [without, recons_without] = encode(false);
  EXPECT_FALSE(
      recons_with.back().y().visible_equals(recons_without.back().y()));

  Decoder dec_with(with);
  Decoder dec_without(without);
  EXPECT_TRUE(dec_with.decode_all().back().y().visible_equals(
      recons_with.back().y()));
  EXPECT_TRUE(dec_without.decode_all().back().y().visible_equals(
      recons_without.back().y()));
}

}  // namespace
}  // namespace acbm::codec
