// Cross-validation layer of the verification pyramid (docs/TESTING.md):
// the deliberately naive codec::RefDecoder must agree sample-for-sample
// with the optimized codec::Decoder on a generated corpus spanning kernels,
// slice counts, RD mode, intra periods, deblocking, QP extremes, and
// multi-session packet streams — and must agree on the *outcome* (decoded
// samples, concealment counts, or an error) when those streams are mutated
// or truncated. Agreement here means every reconstruction path is attested
// by two independent implementations.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/ref_decoder.hpp"
#include "codec/service.hpp"
#include "core/builtin_estimators.hpp"
#include "sim/channel.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames,
                                        video::PictureSize size) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

struct StreamCase {
  std::string name;
  std::vector<std::uint8_t> stream;
  std::size_t frames = 0;
};

std::vector<std::uint8_t> encode_stream(const std::vector<video::Frame>& in,
                                        const std::string& estimator,
                                        const EncoderConfig& config) {
  const auto est = core::builtin_estimators().create(estimator);
  Encoder encoder({in[0].width(), in[0].height()}, config, *est);
  for (const video::Frame& frame : in) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

/// The ≥30-stream corpus required by the cross-validation contract:
/// {kernel scalar/auto} × {slices 1/4} × {rd on/off} as the base grid, plus
/// intra-period, deblock, QP-extreme, geometry, and multi-session variants.
std::vector<StreamCase> build_corpus() {
  std::vector<StreamCase> corpus;
  const auto add = [&corpus](std::string name, std::vector<std::uint8_t> s,
                             std::size_t frames) {
    corpus.push_back({std::move(name), std::move(s), frames});
  };

  for (const char* kernel : {"scalar", "auto"}) {
    EXPECT_TRUE(simd::select_kernels_by_name(kernel));
    const std::string tag = std::string(kernel) + "/";

    // Base grid: slices × mode-decision.
    for (int slices : {1, 4}) {
      for (bool rd : {false, true}) {
        const auto frames = test_sequence("carphone", 5, {64, 48});
        EncoderConfig config;
        config.qp = 14;
        config.slices = slices;
        config.mode_decision =
            rd ? ModeDecision::kRateDistortion : ModeDecision::kHeuristic;
        add(tag + "slices" + std::to_string(slices) +
                (rd ? "-rd" : "-heuristic"),
            encode_stream(frames, "ACBM", config), frames.size());
      }
    }

    // Periodic intra refresh and in-loop deblocking.
    for (int slices : {1, 4}) {
      {
        const auto frames = test_sequence("foreman", 6, {64, 48});
        EncoderConfig config;
        config.qp = 18;
        config.slices = slices;
        config.intra_period = 2;
        add(tag + "intra2-slices" + std::to_string(slices),
            encode_stream(frames, "ACBM", config), frames.size());
      }
      {
        const auto frames = test_sequence("table", 5, {64, 48});
        EncoderConfig config;
        config.qp = 22;
        config.slices = slices;
        config.deblock = true;
        add(tag + "deblock-slices" + std::to_string(slices),
            encode_stream(frames, "ACBM", config), frames.size());
      }
    }
  }
  EXPECT_TRUE(simd::select_kernels_by_name("auto"));

  // QP extremes (near-lossless and coarse).
  for (int qp : {4, 28}) {
    for (int slices : {1, 4}) {
      const auto frames = test_sequence("miss_america", 4, {64, 48});
      EncoderConfig config;
      config.qp = qp;
      config.slices = slices;
      add("qp" + std::to_string(qp) + "-slices" + std::to_string(slices),
          encode_stream(frames, "ACBM", config), frames.size());
    }
  }

  // Multi-session service streams: packets concatenated per session must
  // decode like any other stream.
  for (int slices : {1, 4}) {
    EncoderService service(2);
    EncoderConfig config;
    config.qp = 16;
    config.slices = slices;
    for (int session = 0; session < 2; ++session) {
      const auto frames =
          test_sequence(session == 0 ? "carphone" : "foreman", 4, {64, 48});
      EncodeSession enc(service, {64, 48}, config,
                        core::builtin_estimators().create("ACBM"));
      std::vector<std::uint8_t> stream;
      for (const video::Frame& frame : frames) {
        auto packet = enc.submit(frame).get();
        stream.insert(stream.end(), packet.bytes.begin(),
                      packet.bytes.end());
      }
      add("session" + std::to_string(session) + "-slices" +
              std::to_string(slices),
          std::move(stream), frames.size());
    }
  }

  // Oddballs: full-pel-only, no-skip, tiny and larger geometry, RD with
  // deblocking across slices, all-intra.
  {
    const auto frames = test_sequence("foreman", 4, {64, 48});
    EncoderConfig config;
    config.qp = 16;
    config.half_pel = false;
    add("fullpel", encode_stream(frames, "ACBM", config), frames.size());
  }
  {
    const auto frames = test_sequence("carphone", 4, {64, 48});
    EncoderConfig config;
    config.qp = 16;
    config.allow_skip = false;
    add("noskip", encode_stream(frames, "ACBM", config), frames.size());
  }
  {
    const auto frames = test_sequence("table", 4, {16, 16});
    EncoderConfig config;
    config.qp = 12;
    add("tiny16x16", encode_stream(frames, "ACBM", config), frames.size());
  }
  {
    const auto frames = test_sequence("foreman", 3, {96, 80});
    EncoderConfig config;
    config.qp = 20;
    config.slices = 3;
    add("96x80-slices3", encode_stream(frames, "ACBM", config),
        frames.size());
  }
  {
    const auto frames = test_sequence("carphone", 4, {64, 48});
    EncoderConfig config;
    config.qp = 24;
    config.slices = 3;
    config.deblock = true;
    config.mode_decision = ModeDecision::kRateDistortion;
    add("rd-deblock-slices3", encode_stream(frames, "PBM", config),
        frames.size());
  }
  {
    const auto frames = test_sequence("miss_america", 3, {64, 48});
    EncoderConfig config;
    config.qp = 18;
    config.intra_period = 1;  // every frame intra
    add("all-intra", encode_stream(frames, "ACBM", config), frames.size());
  }
  return corpus;
}

void expect_picture_equal(const RefPicture& ref, const video::Frame& opt,
                          const std::string& context) {
  ASSERT_EQ(ref.width, opt.width()) << context;
  ASSERT_EQ(ref.height, opt.height()) << context;
  for (int y = 0; y < ref.height; ++y) {
    for (int x = 0; x < ref.width; ++x) {
      ASSERT_EQ(ref.y[static_cast<std::size_t>(y) * ref.width + x],
                opt.y().row(y)[x])
          << context << " luma (" << x << ", " << y << ")";
    }
  }
  const int cw = ref.width / 2;
  const int ch = ref.height / 2;
  for (int y = 0; y < ch; ++y) {
    for (int x = 0; x < cw; ++x) {
      ASSERT_EQ(ref.cb[static_cast<std::size_t>(y) * cw + x],
                opt.cb().row(y)[x])
          << context << " cb (" << x << ", " << y << ")";
      ASSERT_EQ(ref.cr[static_cast<std::size_t>(y) * cw + x],
                opt.cr().row(y)[x])
          << context << " cr (" << x << ", " << y << ")";
    }
  }
}

TEST(RefDecoderCrossValidation, SampleExactOverGeneratedCorpus) {
  const std::vector<StreamCase> corpus = build_corpus();
  ASSERT_GE(corpus.size(), 30u);

  for (const StreamCase& c : corpus) {
    SCOPED_TRACE(c.name);
    Decoder opt(c.stream, /*threads=*/2);
    RefDecoder ref(c.stream);
    EXPECT_EQ(ref.version(), opt.version());
    EXPECT_EQ(ref.width(), opt.size().width);
    EXPECT_EQ(ref.height(), opt.size().height);
    EXPECT_EQ(ref.fps_num(), opt.rate().num);
    EXPECT_EQ(ref.fps_den(), opt.rate().den);

    std::size_t frames = 0;
    while (true) {
      const std::optional<video::Frame> opt_frame = opt.decode_frame();
      const std::optional<RefPicture> ref_frame = ref.decode_frame();
      ASSERT_EQ(ref_frame.has_value(), opt_frame.has_value()) << c.name;
      if (!opt_frame.has_value()) {
        break;
      }
      expect_picture_equal(*ref_frame, *opt_frame,
                           c.name + " frame " + std::to_string(frames));
      ++frames;
    }
    EXPECT_EQ(frames, c.frames) << c.name;
    EXPECT_EQ(ref.concealed_slices(), opt.concealed_slices()) << c.name;
    EXPECT_EQ(ref.last_frame_slices(), opt.last_frame_slices()) << c.name;
  }
}

// --- Differential oracle on damaged streams --------------------------------
//
// One decode outcome, comparable across implementations: either an error, or
// the decoded frame digests plus the concealment count.

struct Outcome {
  bool error = false;
  std::size_t frames = 0;
  std::uint64_t concealed = 0;
  std::uint64_t resync_skips = 0;
  std::uint64_t digest = 0;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

Outcome optimized_outcome(const std::vector<std::uint8_t>& stream,
                          int threads, bool resync = false) {
  Outcome out;
  try {
    DecoderConfig config;
    config.threads = threads;
    config.conceal = resync ? Concealment::kResync : Concealment::kSlice;
    Decoder decoder(stream, config);
    while (auto frame = decoder.decode_frame()) {
      ++out.frames;
      for (int y = 0; y < frame->height(); ++y) {
        for (int x = 0; x < frame->width(); ++x) {
          mix(out.digest, frame->y().row(y)[x]);
        }
      }
      for (int y = 0; y < frame->height() / 2; ++y) {
        for (int x = 0; x < frame->width() / 2; ++x) {
          mix(out.digest, frame->cb().row(y)[x]);
          mix(out.digest, frame->cr().row(y)[x]);
        }
      }
    }
    out.concealed = decoder.concealed_slices();
    out.resync_skips = decoder.report().resync_skips;
  } catch (const DecodeError&) {
    out.error = true;
  }
  return out;
}

Outcome reference_outcome(const std::vector<std::uint8_t>& stream,
                          bool resync = false) {
  Outcome out;
  try {
    RefDecoder decoder(stream, resync);
    while (auto frame = decoder.decode_frame()) {
      ++out.frames;
      for (std::uint8_t s : frame->y) {
        mix(out.digest, s);
      }
      for (std::size_t i = 0; i < frame->cb.size(); ++i) {
        mix(out.digest, frame->cb[i]);
        mix(out.digest, frame->cr[i]);
      }
    }
    out.concealed = decoder.concealed_slices();
    out.resync_skips = decoder.resync_skips();
  } catch (const RefDecodeError&) {
    out.error = true;
  }
  return out;
}

void expect_same_outcome(const Outcome& ref, const Outcome& opt,
                         const std::string& context) {
  ASSERT_EQ(ref.error, opt.error) << context;
  ASSERT_EQ(ref.frames, opt.frames) << context;
  ASSERT_EQ(ref.concealed, opt.concealed) << context;
  ASSERT_EQ(ref.resync_skips, opt.resync_skips) << context;
  ASSERT_EQ(ref.digest, opt.digest) << context;
}

std::vector<std::uint8_t> sliced_stream() {
  const auto frames = test_sequence("foreman", 4, {64, 48});
  EncoderConfig config;
  config.qp = 16;
  config.slices = 3;
  return encode_stream(frames, "ACBM", config);
}

std::vector<std::uint8_t> legacy_stream() {
  const auto frames = test_sequence("carphone", 3, {48, 32});
  EncoderConfig config;
  config.qp = 14;
  return encode_stream(frames, "ACBM", config);
}

TEST(RefDecoderDifferential, BitFlipsProduceIdenticalOutcomes) {
  for (const auto& base : {sliced_stream(), legacy_stream()}) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<std::size_t> pick_byte(0, base.size() - 1);
    std::uniform_int_distribution<int> pick_bit(0, 7);
    std::uniform_int_distribution<int> pick_count(1, 3);
    for (int trial = 0; trial < 120; ++trial) {
      std::vector<std::uint8_t> mutated = base;
      const int flips = pick_count(rng);
      for (int f = 0; f < flips; ++f) {
        mutated[pick_byte(rng)] ^=
            static_cast<std::uint8_t>(1u << pick_bit(rng));
      }
      const std::string context = "trial " + std::to_string(trial);
      expect_same_outcome(reference_outcome(mutated),
                          optimized_outcome(mutated, /*threads=*/2), context);
    }
  }
}

TEST(RefDecoderDifferential, TruncationAtEveryByteAgrees) {
  const std::vector<std::uint8_t> base = sliced_stream();
  for (std::size_t len = 0; len <= base.size(); ++len) {
    std::vector<std::uint8_t> cut(base.begin(),
                                  base.begin() + static_cast<long>(len));
    expect_same_outcome(reference_outcome(cut),
                        optimized_outcome(cut, /*threads=*/1),
                        "length " + std::to_string(len));
  }
}

TEST(RefDecoderDifferential, ByteOverwritesAgree) {
  const std::vector<std::uint8_t> base = legacy_stream();
  std::mt19937 rng(23);
  std::uniform_int_distribution<std::size_t> pick_byte(0, base.size() - 1);
  std::uniform_int_distribution<int> pick_value(0, 255);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> mutated = base;
    mutated[pick_byte(rng)] = static_cast<std::uint8_t>(pick_value(rng));
    expect_same_outcome(reference_outcome(mutated),
                        optimized_outcome(mutated, /*threads=*/1),
                        "trial " + std::to_string(trial));
  }
}

// --- Channel realizations (PR 8) -------------------------------------------
//
// The resilience contract: under any seeded sim::Channel realization the
// decoder pair must stay outcome-identical — in the default (strict
// directory) mode AND in conceal=resync mode, where both implement the
// normative recovery rules of docs/RESILIENCE.md independently.

TEST(RefDecoderDifferential, ChannelRealizationsAgreeOverCorpus) {
  const std::vector<StreamCase> corpus = build_corpus();
  const std::vector<std::string> specs = {
      "gilbert:loss=0.05,burst=8,seed=7",
      "gilbert:loss=0.2,burst=4,seed=9,hit=header",
      "iid:loss=0.1,seed=3,hit=flip",
      "iid:loss=0.3,seed=21,hit=drop",
      "trunc:at=0.35",
  };
  for (const StreamCase& c : corpus) {
    for (const std::string& spec : specs) {
      const sim::Channel channel{std::string_view(spec)};
      const std::vector<std::uint8_t> damaged = channel.apply(c.stream);
      for (const bool resync : {false, true}) {
        const std::string context =
            c.name + " / " + spec + (resync ? " / resync" : " / strict");
        expect_same_outcome(reference_outcome(damaged, resync),
                            optimized_outcome(damaged, /*threads=*/2, resync),
                            context);
      }
    }
  }
}

TEST(RefDecoderDifferential, ResyncNeverErrorsOnV2ChannelDamage) {
  // conceal=resync turns every post-header corruption into concealment or a
  // forward scan: over many seeds of the nastiest mode (directory hits) the
  // optimized decoder must neither throw nor disagree with the reference.
  const std::vector<std::uint8_t> base = sliced_stream();
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::string spec =
        "gilbert:loss=0.25,burst=3,seed=" + std::to_string(seed) +
        ",hit=header";
    const sim::Channel channel{std::string_view(spec)};
    const std::vector<std::uint8_t> damaged = channel.apply(base);
    const Outcome opt = optimized_outcome(damaged, /*threads=*/2, true);
    EXPECT_FALSE(opt.error) << spec;
    expect_same_outcome(reference_outcome(damaged, true), opt, spec);
  }
}

TEST(RefDecoderDifferential, ResyncModeAgreesOnRandomMutations) {
  // Resync differential over unstructured damage too — bit flips land in
  // frame headers, directories and payloads alike, exercising every branch
  // of the normative scan rules.
  for (const auto& base : {sliced_stream(), legacy_stream()}) {
    std::mt19937 rng(31);
    std::uniform_int_distribution<std::size_t> pick_byte(0, base.size() - 1);
    std::uniform_int_distribution<int> pick_bit(0, 7);
    std::uniform_int_distribution<int> pick_count(1, 4);
    for (int trial = 0; trial < 80; ++trial) {
      std::vector<std::uint8_t> mutated = base;
      const int flips = pick_count(rng);
      for (int f = 0; f < flips; ++f) {
        mutated[pick_byte(rng)] ^=
            static_cast<std::uint8_t>(1u << pick_bit(rng));
      }
      const std::string context = "resync trial " + std::to_string(trial);
      expect_same_outcome(reference_outcome(mutated, true),
                          optimized_outcome(mutated, /*threads=*/2, true),
                          context);
    }
  }
}

TEST(RefDecoderDifferential, ResyncTruncationAtEveryByteAgrees) {
  const std::vector<std::uint8_t> base = sliced_stream();
  for (std::size_t len = 0; len <= base.size(); ++len) {
    std::vector<std::uint8_t> cut(base.begin(),
                                  base.begin() + static_cast<long>(len));
    expect_same_outcome(reference_outcome(cut, true),
                        optimized_outcome(cut, /*threads=*/1, true),
                        "resync length " + std::to_string(len));
  }
}

}  // namespace
}  // namespace acbm::codec
