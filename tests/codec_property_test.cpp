// Codec-level property tests — the invariant layer of the verification
// pyramid (docs/TESTING.md). Where the golden tests pin exact bytes, these
// pin *relations* that must survive any intentional bitstream or speed
// change: decode(encode(x)) quality floors per QP, slice-count independence
// of reconstruction, SAD monotonicity in the search window, and the
// packet-tiling contract of the multi-session service.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/service.hpp"
#include "core/builtin_estimators.hpp"
#include "me/estimator.hpp"
#include "synth/sequences.hpp"
#include "test_support.hpp"
#include "video/psnr.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames,
                                        video::PictureSize size = {64, 48}) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

std::vector<std::uint8_t> encode_stream(const std::vector<video::Frame>& in,
                                        const EncoderConfig& config,
                                        const std::string& estimator = "ACBM") {
  const auto est = core::builtin_estimators().create(estimator);
  Encoder encoder({in[0].width(), in[0].height()}, config, *est);
  for (const video::Frame& frame : in) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

double min_decoded_luma_psnr(const std::vector<video::Frame>& source,
                             int qp) {
  EncoderConfig config;
  config.qp = qp;
  Decoder decoder(encode_stream(source, config));
  const auto decoded = decoder.decode_all();
  EXPECT_EQ(decoded.size(), source.size());
  double worst = 1e9;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    worst = std::min(worst, video::psnr_luma(decoded[i], source[i]));
  }
  return worst;
}

// decode(encode(x)) must clear a QP-dependent quality floor. The bounds are
// deliberately loose (several dB under observed values on the synthetic
// sequences) — they exist to catch reconstruction-path breakage, not to
// track rate-distortion performance.
TEST(CodecProperty, DecodedPsnrClearsPerQpFloor) {
  const auto frames = test_sequence("carphone", 4);
  struct Floor {
    int qp;
    double min_db;
  };
  for (const Floor f : {Floor{2, 40.0}, Floor{8, 33.0}, Floor{14, 29.0},
                        Floor{22, 26.0}, Floor{31, 23.0}}) {
    const double worst = min_decoded_luma_psnr(frames, f.qp);
    EXPECT_GE(worst, f.min_db) << "qp " << f.qp;
  }
}

// Quality must not improve as the quantiser coarsens (allowing a small
// tolerance for per-frame noise: compare the *worst* frame at widely
// separated QPs).
TEST(CodecProperty, DecodedPsnrMonotoneAcrossQpExtremes) {
  const auto frames = test_sequence("foreman", 4);
  const double fine = min_decoded_luma_psnr(frames, 4);
  const double mid = min_decoded_luma_psnr(frames, 16);
  const double coarse = min_decoded_luma_psnr(frames, 31);
  EXPECT_GT(fine, mid);
  EXPECT_GT(mid, coarse);
}

// Slices are a pure parallelism/resilience knob: they re-predict motion
// vectors across the seam (different bytes) but reconstruction must be
// identical at every slice count, end to end through the decoder.
TEST(CodecProperty, ReconstructionIndependentOfSliceCount) {
  const auto frames = test_sequence("foreman", 5);
  EncoderConfig config;
  config.qp = 16;
  std::vector<std::vector<video::Frame>> decoded;
  for (int slices : {1, 2, 4}) {
    EncoderConfig c = config;
    c.slices = slices;
    Decoder decoder(encode_stream(frames, c));
    decoded.push_back(decoder.decode_all());
    ASSERT_EQ(decoded.back().size(), frames.size()) << slices << " slices";
  }
  for (std::size_t variant = 1; variant < decoded.size(); ++variant) {
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_TRUE(
          decoded[0][i].y().visible_equals(decoded[variant][i].y()))
          << "frame " << i;
      EXPECT_TRUE(
          decoded[0][i].cb().visible_equals(decoded[variant][i].cb()));
      EXPECT_TRUE(
          decoded[0][i].cr().visible_equals(decoded[variant][i].cr()));
    }
  }
}

// Enlarging the search window can only help an exhaustive search: FSBM's
// best SAD is non-increasing in the range p, and the evaluated position
// count is strictly increasing. Half-pel refinement is excluded — it is a
// local polish around whichever integer minimum the window admits, so its
// result is not ordered across windows (a wider window may hop to an
// integer minimum whose half-pel neighbourhood is shallower).
TEST(CodecProperty, FullSearchSadMonotoneInWindowSize) {
  for (std::uint64_t seed : {11ull, 47ull, 92ull}) {
    const auto [ref, cur] = test::shifted_pair(64, 64, 5, -3, seed);
    const test::SearchFixture fixture(ref, cur);
    const auto estimator = core::builtin_estimators().create("FSBM");
    std::uint32_t prev_sad = 0;
    std::uint32_t prev_positions = 0;
    bool first = true;
    for (int range : {1, 3, 7, 15}) {
      me::BlockContext ctx = fixture.context(16, 16, range);
      ctx.half_pel = false;
      const me::EstimateResult result = estimator->estimate(ctx);
      if (!first) {
        EXPECT_LE(result.sad, prev_sad) << "range " << range;
        EXPECT_GT(result.positions, prev_positions) << "range " << range;
      }
      first = false;
      prev_sad = result.sad;
      prev_positions = result.positions;
    }
  }
}

// The service's packet contract: one packet per submitted frame, resolving
// with ascending frame indices, every packet non-empty, and the
// concatenation of packet bytes byte-identical to a standalone encode of
// the same sequence (packets tile the stream exactly — no gaps, no
// overlaps, no trailing finisher bytes).
TEST(CodecProperty, SessionPacketsTileTheStream) {
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 18;
  config.slices = 2;

  EncoderService service(2);
  EncodeSession session(service, {64, 48}, config,
                        core::builtin_estimators().create("ACBM"));
  std::vector<std::future<Packet>> pending;
  for (const video::Frame& frame : frames) {
    pending.push_back(session.submit(frame));
  }
  std::vector<std::uint8_t> concatenated;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Packet packet = pending[i].get();
    EXPECT_EQ(packet.frame_index, i);
    EXPECT_FALSE(packet.bytes.empty()) << "frame " << i;
    concatenated.insert(concatenated.end(), packet.bytes.begin(),
                        packet.bytes.end());
  }

  const std::vector<std::uint8_t> standalone = encode_stream(frames, config);
  EXPECT_EQ(concatenated, standalone);

  Decoder decoder(concatenated);
  EXPECT_EQ(decoder.decode_all().size(), frames.size());
}

}  // namespace
}  // namespace acbm::codec
