// Kernel parity: every compiled-and-supported SIMD SAD variant must return
// EXACTLY the scalar reference's value — full-block SAD (including the
// partial totals produced by the row-group early-exit contract), quincunx
// and row-skip decimation — over randomized block sizes, offsets (border
// included) and thresholds. Plus the dispatch API's invariants.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "me/decimation.hpp"
#include "me/sad.hpp"
#include "simd/dispatch.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace acbm::simd {
namespace {

/// Every variant this build/CPU offers beyond the scalar reference.
std::vector<const SadKernels*> vector_variants() {
  std::vector<const SadKernels*> tables;
  for (KernelIsa isa : {KernelIsa::kSse2, KernelIsa::kAvx2}) {
    if (const SadKernels* t = kernels_for(isa)) {
      tables.push_back(t);
    }
  }
  return tables;
}

/// Restores the default (auto) selection when a test that pins the global
/// table exits, so test order never matters.
struct KernelSelectionGuard {
  ~KernelSelectionGuard() { select_kernels(KernelIsa::kAuto); }
};

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  ASSERT_NE(detail::scalar_kernels(), nullptr);
  EXPECT_STREQ(detail::scalar_kernels()->name, "scalar");
  EXPECT_NE(kernels_for(KernelIsa::kAuto), nullptr);
}

TEST(SimdDispatch, TablesAreFullyPopulated) {
  for (const SadKernels* t :
       {kernels_for(KernelIsa::kScalar), kernels_for(KernelIsa::kAuto)}) {
    ASSERT_NE(t, nullptr);
    EXPECT_NE(t->sad, nullptr);
    EXPECT_NE(t->sad_halfpel, nullptr);
    EXPECT_NE(t->sad_quincunx, nullptr);
    EXPECT_NE(t->sad_rowskip, nullptr);
  }
  for (const SadKernels* t : vector_variants()) {
    EXPECT_NE(t->sad, nullptr);
    EXPECT_NE(t->sad_halfpel, nullptr);
    EXPECT_NE(t->sad_quincunx, nullptr);
    EXPECT_NE(t->sad_rowskip, nullptr);
  }
}

TEST(SimdDispatch, SelectByNameRoundTrips) {
  KernelSelectionGuard guard;
  EXPECT_FALSE(select_kernels_by_name("neon"));
  EXPECT_FALSE(select_kernels_by_name(""));
  for (const std::string& name : available_kernel_names()) {
    EXPECT_TRUE(select_kernels_by_name(name)) << name;
    if (name != "auto") {
      EXPECT_EQ(active_kernel_name(), name);
    }
  }
  EXPECT_TRUE(select_kernels_by_name("auto"));
}

TEST(SimdSadParity, RandomizedBlocksOffsetsThresholds) {
  const auto variants = vector_variants();
  if (variants.empty()) {
    GTEST_SKIP() << "no SIMD variants on this build/CPU";
  }
  const SadKernels& ref_table = *detail::scalar_kernels();
  const video::Plane cur = test::random_plane(96, 96, 101);
  const video::Plane ref = test::random_plane(96, 96, 202);

  // Sizes cover the vector widths and every tail path: 16-wide fast paths,
  // 8-wide PSADBW tail, scalar column tails, odd heights (row-pair tails),
  // and >16 widths (chunked rows).
  struct Dim {
    int bw, bh;
  };
  const Dim dims[] = {{16, 16}, {16, 8},  {8, 16},  {8, 8},   {16, 17},
                      {16, 15}, {12, 10}, {7, 5},   {24, 16}, {32, 32},
                      {33, 9},  {5, 16},  {16, 2},  {1, 1},   {48, 3}};
  util::Rng rng(777);
  for (const Dim& d : dims) {
    for (int trial = 0; trial < 24; ++trial) {
      // Offsets range into the border (Plane guarantees 24 samples).
      const int cx = static_cast<int>(rng.next_below(40));
      const int cy = static_cast<int>(rng.next_below(40));
      const int rx =
          static_cast<int>(rng.next_below(60)) - 12;  // may be negative
      const int ry = static_cast<int>(rng.next_below(60)) - 12;
      const std::uint8_t* a = cur.row(cy) + cx;
      const std::uint8_t* b = ref.row(ry) + rx;

      const std::uint32_t exact = ref_table.sad(
          a, cur.stride(), b, ref.stride(), d.bw, d.bh, me::kNoEarlyExit);
      const std::uint32_t thresholds[] = {
          0u, exact / 4, exact / 2, exact > 0 ? exact - 1 : 0, exact,
          me::kNoEarlyExit};
      for (const SadKernels* t : variants) {
        for (std::uint32_t bound : thresholds) {
          EXPECT_EQ(t->sad(a, cur.stride(), b, ref.stride(), d.bw, d.bh,
                           bound),
                    ref_table.sad(a, cur.stride(), b, ref.stride(), d.bw,
                                  d.bh, bound))
              << t->name << " " << d.bw << "x" << d.bh << " bound=" << bound
              << " cur=(" << cx << "," << cy << ") ref=(" << rx << "," << ry
              << ")";
        }
        EXPECT_EQ(
            t->sad_quincunx(a, cur.stride(), b, ref.stride(), d.bw, d.bh),
            ref_table.sad_quincunx(a, cur.stride(), b, ref.stride(), d.bw,
                                   d.bh))
            << t->name << " quincunx " << d.bw << "x" << d.bh;
        EXPECT_EQ(
            t->sad_rowskip(a, cur.stride(), b, ref.stride(), d.bw, d.bh),
            ref_table.sad_rowskip(a, cur.stride(), b, ref.stride(), d.bw,
                                  d.bh))
            << t->name << " rowskip " << d.bw << "x" << d.bh;
      }
    }
  }
}

TEST(SimdSadParity, EarlyExitStopsAtSharedCheckpoints) {
  // With a bound that trips mid-block, every variant must return the SAME
  // partial total: the sum over whole kEarlyExitRowQuantum-row groups up to
  // and including the first group that exceeds the bound.
  const auto variants = vector_variants();
  if (variants.empty()) {
    GTEST_SKIP() << "no SIMD variants on this build/CPU";
  }
  const SadKernels& ref_table = *detail::scalar_kernels();
  const video::Plane cur = test::random_plane(64, 64, 11);
  const video::Plane ref = test::random_plane(64, 64, 12);
  const std::uint8_t* a = cur.row(8) + 8;
  const std::uint8_t* b = ref.row(10) + 6;

  // Manually accumulate the first group's exact SAD to pick a bound that
  // trips at the first checkpoint of a 16×16 block.
  std::uint32_t first_group = 0;
  for (int y = 0; y < kEarlyExitRowQuantum; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int d = static_cast<int>(a[y * cur.stride() + x]) -
                    static_cast<int>(b[y * ref.stride() + x]);
      first_group += static_cast<std::uint32_t>(d < 0 ? -d : d);
    }
  }
  ASSERT_GT(first_group, 0u);
  const std::uint32_t bound = first_group - 1;  // trips at checkpoint 1
  const std::uint32_t scalar_partial =
      ref_table.sad(a, cur.stride(), b, ref.stride(), 16, 16, bound);
  EXPECT_EQ(scalar_partial, first_group);  // returns the partial, not more
  for (const SadKernels* t : variants) {
    EXPECT_EQ(t->sad(a, cur.stride(), b, ref.stride(), 16, 16, bound),
              scalar_partial)
        << t->name;
  }
}

TEST(SimdSadParity, DispatchedEntryPointsFollowSelection) {
  // me::sad_block / sad_block_decimated route through the active table;
  // pinning each variant must not change any value.
  KernelSelectionGuard guard;
  const video::Plane cur = test::random_plane(64, 64, 31);
  const video::Plane ref = test::random_plane(64, 64, 32);
  ASSERT_TRUE(select_kernels(KernelIsa::kScalar));
  const std::uint32_t want_full = me::sad_block(cur, 16, 16, ref, 13, 19, 16, 16);
  const std::uint32_t want_quin = me::sad_block_decimated(
      cur, 16, 16, ref, 13, 19, 16, 16, me::DecimationPattern::kQuincunx4to1);
  const std::uint32_t want_skip = me::sad_block_decimated(
      cur, 16, 16, ref, 13, 19, 16, 16, me::DecimationPattern::kRowSkip2to1);
  for (const std::string& name : available_kernel_names()) {
    ASSERT_TRUE(select_kernels_by_name(name));
    EXPECT_EQ(me::sad_block(cur, 16, 16, ref, 13, 19, 16, 16), want_full)
        << name;
    EXPECT_EQ(me::sad_block_decimated(cur, 16, 16, ref, 13, 19, 16, 16,
                                      me::DecimationPattern::kQuincunx4to1),
              want_quin)
        << name;
    EXPECT_EQ(me::sad_block_decimated(cur, 16, 16, ref, 13, 19, 16, 16,
                                      me::DecimationPattern::kRowSkip2to1),
              want_skip)
        << name;
  }
}

TEST(SimdSadParity, FusedHalfpelMatchesPreinterpolatedPlanes) {
  // The fused interpolate+SAD kernels must return exactly what matching a
  // pre-interpolated phase plane with the plain SAD kernel returns — for
  // every variant, every phase, randomized geometry, and every early-exit
  // bound (the checkpoints are shared, so partial totals must agree too).
  const SadKernels& scalar = *detail::scalar_kernels();
  std::vector<const SadKernels*> tables = {&scalar};
  for (const SadKernels* t : vector_variants()) {
    tables.push_back(t);
  }
  const video::Plane cur = test::random_plane(96, 96, 303);
  const video::Plane ref = test::random_plane(96, 96, 404);
  const video::HalfpelPlanes hp(ref);

  struct Dim {
    int bw, bh;
  };
  const Dim dims[] = {{16, 16}, {16, 8}, {8, 8},   {16, 17}, {16, 15},
                      {12, 10}, {7, 5},  {24, 16}, {32, 32}, {1, 1}};
  util::Rng rng(888);
  for (const Dim& d : dims) {
    for (int trial = 0; trial < 12; ++trial) {
      const int cx = static_cast<int>(rng.next_below(40));
      const int cy = static_cast<int>(rng.next_below(40));
      const int rx = static_cast<int>(rng.next_below(50)) - 10;
      const int ry = static_cast<int>(rng.next_below(50)) - 10;
      for (int phase_v = 0; phase_v <= 1; ++phase_v) {
        for (int phase_h = 0; phase_h <= 1; ++phase_h) {
          // Ground truth: plain SAD against the materialised phase plane.
          const video::Plane& phase = hp.plane(phase_h, phase_v);
          const std::uint32_t exact = scalar.sad(
              cur.row(cy) + cx, cur.stride(), phase.row(ry) + rx,
              phase.stride(), d.bw, d.bh, me::kNoEarlyExit);
          const std::uint32_t thresholds[] = {
              0u, exact / 3, exact > 0 ? exact - 1 : 0, me::kNoEarlyExit};
          for (const SadKernels* t : tables) {
            for (const std::uint32_t bound : thresholds) {
              const std::uint32_t want = scalar.sad(
                  cur.row(cy) + cx, cur.stride(), phase.row(ry) + rx,
                  phase.stride(), d.bw, d.bh, bound);
              EXPECT_EQ(t->sad_halfpel(cur.row(cy) + cx, cur.stride(),
                                       hp.integer_plane().row(ry) + rx,
                                       hp.integer_plane().stride(), phase_h,
                                       phase_v, d.bw, d.bh, bound),
                        want)
                  << t->name << " " << d.bw << "x" << d.bh << " phase=("
                  << phase_h << "," << phase_v << ") bound=" << bound
                  << " cur=(" << cx << "," << cy << ") ref=(" << rx << ","
                  << ry << ")";
            }
          }
        }
      }
    }
  }
}

TEST(SimdSadParity, HalfpelRoutesThroughTable) {
  KernelSelectionGuard guard;
  const video::Plane cur = test::random_plane(64, 64, 41);
  const video::Plane ref = test::random_plane(64, 64, 42);
  const video::HalfpelPlanes hp(ref);
  ASSERT_TRUE(select_kernels(KernelIsa::kScalar));
  const std::uint32_t want[4] = {
      me::sad_block_halfpel(cur, 16, 16, hp, 28, 30, 16, 16),
      me::sad_block_halfpel(cur, 16, 16, hp, 29, 30, 16, 16),
      me::sad_block_halfpel(cur, 16, 16, hp, 28, 31, 16, 16),
      me::sad_block_halfpel(cur, 16, 16, hp, 29, 31, 16, 16)};
  for (const SadKernels* t : vector_variants()) {
    ASSERT_TRUE(select_kernels_by_name(t->name));
    EXPECT_EQ(me::sad_block_halfpel(cur, 16, 16, hp, 28, 30, 16, 16), want[0])
        << t->name;
    EXPECT_EQ(me::sad_block_halfpel(cur, 16, 16, hp, 29, 30, 16, 16), want[1])
        << t->name;
    EXPECT_EQ(me::sad_block_halfpel(cur, 16, 16, hp, 28, 31, 16, 16), want[2])
        << t->name;
    EXPECT_EQ(me::sad_block_halfpel(cur, 16, 16, hp, 29, 31, 16, 16), want[3])
        << t->name;
  }
}

}  // namespace
}  // namespace acbm::simd
