// Named sequence generators: determinism, decimation, and — crucially — the
// texture/motion ordering the DESIGN.md substitution argument promises
// (foreman most textured, miss_america least; table has the fastest object).

#include "synth/sequences.hpp"

#include <gtest/gtest.h>

#include "me/sad.hpp"
#include "synth/scene.hpp"
#include "synth/texture.hpp"
#include "video/psnr.hpp"

namespace acbm::synth {
namespace {

double mean_intra_sad(const video::Frame& frame) {
  double total = 0.0;
  int blocks = 0;
  for (int y = 0; y + 16 <= frame.height(); y += 16) {
    for (int x = 0; x + 16 <= frame.width(); x += 16) {
      total += me::intra_sad(frame.y(), x, y, 16, 16);
      ++blocks;
    }
  }
  return total / blocks;
}

double mean_frame_difference(const std::vector<video::Frame>& frames) {
  double total = 0.0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    total += static_cast<double>(
        frames[i].y().absolute_difference(frames[i - 1].y()));
  }
  return total / static_cast<double>(frames.size() - 1);
}

SequenceRequest request(const std::string& name, int frames = 6,
                        int fps = 30) {
  SequenceRequest r;
  r.name = name;
  r.frame_count = frames;
  r.fps = fps;
  return r;
}

TEST(Sequences, StandardNamesMatchPaperOrder) {
  const auto& names = standard_sequence_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "carphone");
  EXPECT_EQ(names[1], "foreman");
  EXPECT_EQ(names[2], "miss_america");
  EXPECT_EQ(names[3], "table");
  for (const auto& n : names) {
    EXPECT_TRUE(is_known_sequence(n));
  }
  EXPECT_FALSE(is_known_sequence("akiyo"));
}

TEST(Sequences, UnknownNameThrows) {
  EXPECT_THROW(make_sequence(request("akiyo")), std::invalid_argument);
}

TEST(Sequences, InvalidFpsThrows) {
  SequenceRequest r = request("foreman");
  r.fps = 7;  // does not divide 30
  EXPECT_THROW(make_sequence(r), std::invalid_argument);
  r.fps = 0;
  EXPECT_THROW(make_sequence(r), std::invalid_argument);
}

TEST(Sequences, InvalidFrameCountThrows) {
  SequenceRequest r = request("foreman");
  r.frame_count = 0;
  EXPECT_THROW(make_sequence(r), std::invalid_argument);
}

TEST(Sequences, DeliversRequestedGeometry) {
  const auto frames = make_sequence(request("miss_america", 4));
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].width(), 176);
  EXPECT_EQ(frames[0].height(), 144);
}

TEST(Sequences, DeterministicForSameRequest) {
  const auto a = make_sequence(request("carphone", 3));
  const auto b = make_sequence(request("carphone", 3));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].y().visible_equals(b[i].y()));
    EXPECT_TRUE(a[i].cb().visible_equals(b[i].cb()));
  }
}

TEST(Sequences, SeedChangesNoiseOnly) {
  SequenceRequest r1 = request("carphone", 2);
  SequenceRequest r2 = r1;
  r2.seed = 999;
  const auto a = make_sequence(r1);
  const auto b = make_sequence(r2);
  EXPECT_FALSE(a[0].y().visible_equals(b[0].y()));
  // Same scene under different sensor noise: images stay very close.
  EXPECT_GT(video::psnr_luma(a[0], b[0]), 35.0);
}

TEST(Sequences, ConsecutiveFramesAreSimilarButNotIdentical) {
  for (const auto& name : standard_sequence_names()) {
    const auto frames = make_sequence(request(name, 3));
    EXPECT_FALSE(frames[0].y().visible_equals(frames[1].y())) << name;
    EXPECT_GT(video::psnr_luma(frames[0], frames[1]), 20.0) << name;
  }
}

TEST(Sequences, TextureOrderingMatchesPaperCharacter) {
  const double foreman =
      mean_intra_sad(make_sequence(request("foreman", 1))[0]);
  const double carphone =
      mean_intra_sad(make_sequence(request("carphone", 1))[0]);
  const double miss =
      mean_intra_sad(make_sequence(request("miss_america", 1))[0]);
  EXPECT_GT(foreman, carphone);
  EXPECT_GT(carphone, miss);
}

TEST(Sequences, LowerFpsMeansLargerInterFrameMotion) {
  // The same clip decimated to 10 fps must show bigger frame-to-frame
  // differences — the effect the paper uses to stress PBM (§4). QCIF size:
  // motion amplitudes scale with the picture, lifting the signal above the
  // sensor-noise floor of the difference metric.
  for (const char* name : {"foreman", "table"}) {
    SequenceRequest r30 = request(name, 5, 30);
    r30.size = video::kQcif;
    SequenceRequest r10 = request(name, 5, 10);
    r10.size = video::kQcif;
    EXPECT_GT(mean_frame_difference(make_sequence(r10)),
              1.4 * mean_frame_difference(make_sequence(r30)))
        << name;
  }
}

TEST(Sequences, FifteenFpsSupported) {
  const auto frames = make_sequence(request("table", 4, 15));
  EXPECT_EQ(frames.size(), 4u);
}

TEST(Decimate, KeepsEveryKth) {
  std::vector<video::Frame> frames;
  for (int i = 0; i < 7; ++i) {
    video::Frame f(16, 16);
    f.fill(static_cast<std::uint8_t>(i));
    frames.push_back(std::move(f));
  }
  const auto out = decimate(frames, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].y().at(0, 0), 0);
  EXPECT_EQ(out[1].y().at(0, 0), 3);
  EXPECT_EQ(out[2].y().at(0, 0), 6);
}

TEST(Decimate, FactorOneIsIdentity) {
  std::vector<video::Frame> frames(2, video::Frame(16, 16));
  EXPECT_EQ(decimate(frames, 1).size(), 2u);
}

TEST(RenderScene, BaseLayerCoversFrame) {
  const video::Plane tex = make_gradient(64, 48, 100.0, 100.0);
  SceneFrame scene;
  Layer base;
  base.texture = &tex;
  base.color = {100, 150};
  scene.layers.push_back(base);
  util::Rng rng(1);
  const video::Frame f = render_scene({64, 48}, scene, rng);
  EXPECT_EQ(f.y().at(0, 0), 100);
  EXPECT_EQ(f.y().at(63, 47), 100);
  EXPECT_EQ(f.cb().at(10, 10), 100);
  EXPECT_EQ(f.cr().at(10, 10), 150);
}

TEST(RenderScene, SpriteCompositesOverBase) {
  const video::Plane tex = make_gradient(64, 48, 50.0, 50.0);
  SceneFrame scene;
  Layer base;
  base.texture = &tex;
  scene.layers.push_back(base);
  Sprite dot;
  dot.cx = 32.0;
  dot.cy = 24.0;
  dot.rx = 8.0;
  dot.ry = 8.0;
  dot.feather = 0.0;
  dot.luma = 200.0;
  scene.sprites.push_back(dot);
  util::Rng rng(1);
  const video::Frame f = render_scene({64, 48}, scene, rng);
  EXPECT_EQ(f.y().at(32, 24), 200);  // inside sprite
  EXPECT_EQ(f.y().at(2, 2), 50);     // outside
}

TEST(RenderScene, SubPixelLayerOffsetShiftsContent) {
  // A ramp texture offset by 0.5 samples must land between the two integer
  // renders — proves true sub-pixel motion reaches the output.
  video::Plane ramp(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      ramp.set(x, y, static_cast<std::uint8_t>(4 * x));
    }
  }
  ramp.extend_border();
  util::Rng rng(1);
  auto render_at = [&](double off) {
    SceneFrame scene;
    Layer base;
    base.texture = &ramp;
    base.offset = {off, 0.0};
    scene.layers.push_back(base);
    return render_scene({64, 48}, scene, rng);
  };
  const video::Frame f0 = render_at(0.0);
  const video::Frame fh = render_at(0.5);
  const video::Frame f1 = render_at(1.0);
  EXPECT_EQ(f0.y().at(10, 10), 40);
  EXPECT_EQ(f1.y().at(10, 10), 44);
  EXPECT_EQ(fh.y().at(10, 10), 42);
}

}  // namespace
}  // namespace acbm::synth
