// ArgParser, CSV escaping, TablePrinter.

#include <gtest/gtest.h>

#include <sstream>

#include "util/args.hpp"
#include "util/csv.hpp"

namespace acbm::util {
namespace {

ArgParser make_parser() {
  ArgParser p;
  p.add_option("qp", "quantiser", "16");
  p.add_option("sequence", "sequence name", "foreman");
  p.add_option("lambda", "lagrange multiplier", "0.92");
  p.add_flag("verbose", "chatty output");
  return p;
}

TEST(ArgParser, DefaultsWhenUnset) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get("qp"), "16");
  EXPECT_EQ(p.get_int("qp"), 16);
  EXPECT_DOUBLE_EQ(p.get_double("lambda"), 0.92);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--qp", "28", "--sequence", "table"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("qp"), 28);
  EXPECT_EQ(p.get("sequence"), "table");
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--qp=30", "--lambda=1.5"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("qp"), 30);
  EXPECT_DOUBLE_EQ(p.get_double("lambda"), 1.5);
}

TEST(ArgParser, FlagPresence) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
  EXPECT_NE(p.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--qp"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, FlagWithValueFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, PositionalArgumentFails) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(ArgParser, HelpRequested) {
  ArgParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.usage("prog").find("--qp"), std::string::npos);
}

TEST(SplitCsvList, TrimsAndDropsEmpties) {
  const auto items = split_csv_list(" a, b ,, c ,");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[1], "b");
  EXPECT_EQ(items[2], "c");
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvWriter, NumFormatsFixedPrecision) {
  EXPECT_EQ(CsvWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(CsvWriter::num(2.0, 3), "2.000");
}

TEST(TablePrinter, AlignsColumnsAndCountsRows) {
  TablePrinter t({"Seq", "Qp", "PSNR"});
  t.add_row({"foreman", "16", "33.2"});
  t.add_row({"x", "8", "30.01"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Seq"), std::string::npos);
  EXPECT_NE(text.find("foreman"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"A", "B"});
  t.add_row({"only-a"});
  std::ostringstream out;
  t.print(out);  // must not crash; second cell rendered empty
  EXPECT_NE(out.str().find("only-a"), std::string::npos);
}

TEST(SanitizeFilename, ReplacesHostileCharacters) {
  EXPECT_EQ(sanitize_filename("a/b c*d.csv"), "a_b_c_d.csv");
  EXPECT_EQ(sanitize_filename("ok-name_1.txt"), "ok-name_1.txt");
}

}  // namespace
}  // namespace acbm::util
