// util::ThreadPool: task completion, the wait_idle() barrier, stable worker
// indices, FIFO dispatch, and thread-count resolution — the properties the
// parallel encoding pipeline is built on.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace acbm::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool pool2(3);
  EXPECT_EQ(pool2.size(), 3);
}

TEST(ThreadPool, WaitIdleWithoutTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not block
  SUCCEED();
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, WorkerIndicesAreStableAndInRange) {
  ThreadPool pool(3);
  std::mutex m;
  std::set<int> seen;
  for (int i = 0; i < 60; ++i) {
    pool.submit([&] {
      const int index = ThreadPool::worker_index();
      const std::lock_guard<std::mutex> lock(m);
      seen.insert(index);
    });
  }
  pool.wait_idle();
  for (int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.size());
  }
}

TEST(ThreadPool, WorkerIndexOutsidePoolIsMinusOne) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
}

TEST(ThreadPool, SingleThreadExecutesInSubmissionOrder) {
  // FIFO dispatch is part of the contract (the wavefront scheduler depends
  // on it); with one worker, dispatch order IS completion order.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(-2), 1);  // degrade to serial
}

TEST(WavefrontProgress, SatisfiedWaitReturnsImmediately) {
  WavefrontProgress progress(2);
  progress.publish(0, 5);
  progress.wait_for(0, 5);  // must not block
  progress.wait_for(0, 3);
  EXPECT_EQ(progress.progress(0), 5);
  EXPECT_EQ(progress.progress(1), 0);
}

TEST(WavefrontProgress, ParkedWaiterWakesOnPublish) {
  WavefrontProgress progress(1);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    progress.wait_for(0, 10);
    released.store(true);
  });
  // Publish below the threshold first: the waiter must stay parked.
  progress.publish(0, 9);
  EXPECT_FALSE(released.load());
  progress.publish(0, 10);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(WavefrontProgress, WavefrontOrderingHoldsOnPool) {
  // The encoder's exact usage pattern: row by waits for row by-1 to lead by
  // two columns. Verify the dependency is never observed violated.
  constexpr int kRows = 8;
  constexpr int kCols = 32;
  WavefrontProgress progress(kRows);
  std::atomic<int> violations{0};
  ThreadPool pool(4);
  for (int by = 0; by < kRows; ++by) {
    pool.submit([&, by] {
      for (int bx = 0; bx < kCols; ++bx) {
        if (by > 0) {
          const int need = std::min(bx + 2, kCols);
          progress.wait_for(by - 1, need);
          if (progress.progress(by - 1) < need) {
            violations.fetch_add(1);
          }
        }
        progress.publish(by, bx + 1);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(violations.load(), 0);
  for (int by = 0; by < kRows; ++by) {
    EXPECT_EQ(progress.progress(by), kCols);
  }
}

TEST(WavefrontProgress, ManyWaitersAllRelease) {
  WavefrontProgress progress(1);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&, i] {
      progress.wait_for(0, i + 1);
      released.fetch_add(1);
    });
  }
  for (int step = 1; step <= 8; ++step) {
    progress.publish(0, step);
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(released.load(), 8);
}

}  // namespace
}  // namespace acbm::util
