// util::ThreadPool: task completion, the wait_idle() barrier, stable worker
// indices, FIFO dispatch, and thread-count resolution — the properties the
// parallel encoding pipeline is built on.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace acbm::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool pool2(3);
  EXPECT_EQ(pool2.size(), 3);
}

TEST(ThreadPool, WaitIdleWithoutTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not block
  SUCCEED();
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, WorkerIndicesAreStableAndInRange) {
  ThreadPool pool(3);
  std::mutex m;
  std::set<int> seen;
  for (int i = 0; i < 60; ++i) {
    pool.submit([&] {
      const int index = ThreadPool::worker_index();
      const std::lock_guard<std::mutex> lock(m);
      seen.insert(index);
    });
  }
  pool.wait_idle();
  for (int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.size());
  }
}

TEST(ThreadPool, WorkerIndexOutsidePoolIsMinusOne) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
}

TEST(ThreadPool, SingleThreadExecutesInSubmissionOrder) {
  // FIFO dispatch is part of the contract (the wavefront scheduler depends
  // on it); with one worker, dispatch order IS completion order.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must still run everything.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(5), 5);
  EXPECT_EQ(ThreadPool::resolve_thread_count(1), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_EQ(ThreadPool::resolve_thread_count(-2), 1);  // degrade to serial
}

TEST(ThreadPool, QueueLanesPreserveFifoWithinALane) {
  // Two lanes on one worker: within each lane, completion order must equal
  // submission order regardless of how the dispatcher interleaves lanes.
  ThreadPool pool(1);
  ThreadPool::Queue a(pool);
  ThreadPool::Queue b(pool);
  std::mutex m;
  std::vector<std::pair<int, int>> order;  // (lane, seq)
  for (int i = 0; i < 20; ++i) {
    pool.submit(a, [&, i] {
      const std::lock_guard<std::mutex> lock(m);
      order.emplace_back(0, i);
    });
    pool.submit(b, [&, i] {
      const std::lock_guard<std::mutex> lock(m);
      order.emplace_back(1, i);
    });
  }
  pool.wait_idle();
  int next[2] = {0, 0};
  for (const auto& [lane, seq] : order) {
    EXPECT_EQ(seq, next[lane]) << "lane " << lane;
    ++next[lane];
  }
  EXPECT_EQ(next[0], 20);
  EXPECT_EQ(next[1], 20);
}

TEST(ThreadPool, RoundRobinSharesWorkersAcrossSaturatingLanes) {
  // Fair scheduling: a lane that enqueues a burst of work must not monopolise
  // the single worker while another lane holds queued tasks — with both
  // lanes full, dispatch alternates. Verify no lane ever gets more than one
  // task ahead while the other still has work queued (strict alternation on
  // one worker once both backlogs exist).
  ThreadPool pool(1);
  ThreadPool::Queue greedy(pool);
  ThreadPool::Queue modest(pool);
  std::mutex m;
  std::vector<int> order;
  // Stall the worker so both lanes build a backlog before dispatch starts.
  std::atomic<bool> go{false};
  pool.submit(greedy, [&] {
    while (!go.load()) {
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.submit(greedy, [&] {
      const std::lock_guard<std::mutex> lock(m);
      order.push_back(0);
    });
  }
  for (int i = 0; i < 10; ++i) {
    pool.submit(modest, [&] {
      const std::lock_guard<std::mutex> lock(m);
      order.push_back(1);
    });
  }
  go.store(true);
  pool.wait_idle();
  ASSERT_EQ(order.size(), 60u);
  // The modest lane's 10 tasks must all complete within the first ~20
  // dispatches (alternation), not after the greedy lane's 50.
  int modest_done = 0;
  for (std::size_t i = 0; i < 21 && i < order.size(); ++i) {
    modest_done += order[i] == 1 ? 1 : 0;
  }
  EXPECT_EQ(modest_done, 10)
      << "round-robin should interleave the modest lane's tasks";
}

TEST(ThreadPool, TaskGroupWaitCoversOnlyItsOwnTasks) {
  ThreadPool pool(2);
  ThreadPool::Queue lane(pool);
  TaskGroup mine;
  std::atomic<bool> blocker_running{false};
  std::atomic<bool> release_blocker{false};
  std::atomic<int> mine_done{0};
  // An unrelated long-running task (no group): wait(mine) must not wait for
  // it.
  pool.submit(lane, [&] {
    blocker_running.store(true);
    while (!release_blocker.load()) {
      std::this_thread::yield();
    }
  });
  while (!blocker_running.load()) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 8; ++i) {
    pool.submit(lane, [&] { mine_done.fetch_add(1); }, &mine);
  }
  pool.wait(mine);
  EXPECT_EQ(mine_done.load(), 8);
  EXPECT_FALSE(release_blocker.load());  // returned while the blocker runs
  release_blocker.store(true);
  pool.wait_idle();
}

TEST(ThreadPool, WorkerWaitingOnGroupHelpsItsTasks) {
  // A pool task that submits subtasks and waits for them must make progress
  // even when every other worker is busy — the wait helps. One worker makes
  // this deadlock-or-help: parking would hang forever.
  ThreadPool pool(1);
  ThreadPool::Queue lane(pool);
  std::atomic<int> subtasks_done{0};
  std::atomic<bool> parent_done{false};
  pool.submit(lane, [&] {
    TaskGroup group;
    for (int i = 0; i < 4; ++i) {
      pool.submit(lane, [&] { subtasks_done.fetch_add(1); }, &group);
    }
    pool.wait(group);
    parent_done.store(true);
  });
  pool.wait_idle();
  EXPECT_EQ(subtasks_done.load(), 4);
  EXPECT_TRUE(parent_done.load());
}

// ------------------------------------------------------- failure paths ---
// Tasks may throw: the pool must capture the exception (never terminate),
// run the rest of the batch so barrier counting stays intact, and rethrow
// the first captured error from the matching wait. These are the primitives
// the encoding pipeline's session-isolation guarantees stand on.

TEST(ThreadPool, ThrowingTaskIsCapturedAndWaitIdleRethrows) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.submit([] { throw std::runtime_error("ungrouped boom"); });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&survivors] { survivors.fetch_add(1); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle swallowed the task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "ungrouped boom");
  }
  // The rest of the batch still ran, the error was consumed, and the pool
  // is fully reusable.
  EXPECT_EQ(survivors.load(), 8);
  pool.submit([&survivors] { survivors.fetch_add(1); });
  pool.wait_idle();  // must not rethrow again
  EXPECT_EQ(survivors.load(), 9);
}

TEST(ThreadPool, WaitGroupRethrowsFirstErrorOfItsGroupOnly) {
  // One worker makes "first" deterministic; a second group's error must not
  // leak into the first group's wait.
  ThreadPool pool(1);
  ThreadPool::Queue lane(pool);
  TaskGroup bad;
  TaskGroup good;
  std::atomic<int> done{0};
  pool.submit(lane, [] { throw std::runtime_error("boom0"); }, &bad);
  pool.submit(lane, [] { throw std::runtime_error("boom1"); }, &bad);
  pool.submit(lane, [&done] { done.fetch_add(1); }, &good);
  try {
    pool.wait(bad);
    FAIL() << "wait(group) swallowed the task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom0") << "first captured error must win";
  }
  pool.wait(good);  // must return cleanly: its group had no error
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, ThrowInsideHelpingWaitIsCaptured) {
  // A worker task waits on its own subtask group; with one worker the wait
  // must help, which means the throwing subtask runs INSIDE wait(group) on
  // the helping thread — the capture must work on that path too, and the
  // error must surface to the parent task, not escape into the worker loop.
  ThreadPool pool(1);
  ThreadPool::Queue lane(pool);
  std::atomic<bool> parent_saw_error{false};
  std::atomic<int> siblings_done{0};
  pool.submit(lane, [&] {
    TaskGroup group;
    pool.submit(lane, [] { throw std::runtime_error("subtask boom"); },
                &group);
    for (int i = 0; i < 3; ++i) {
      pool.submit(lane, [&siblings_done] { siblings_done.fetch_add(1); },
                  &group);
    }
    try {
      pool.wait(group);
    } catch (const std::runtime_error& e) {
      parent_saw_error.store(std::string(e.what()) == "subtask boom");
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(parent_saw_error.load());
  EXPECT_EQ(siblings_done.load(), 3) << "siblings must run despite the throw";
}

TEST(ThreadPool, ThrowAfterPublicationDoesNotStrandCounterWaiters) {
  // The pipeline's wavefront rows publish their full row range before
  // rethrowing, so a downstream row parked on the ReadyCounter is released
  // and the error still reaches the group wait. Model exactly that shape.
  ThreadPool pool(2);
  ThreadPool::Queue lane(pool);
  TaskGroup group;
  ReadyCounter rows;
  std::atomic<bool> downstream_ran{false};
  pool.submit(lane, [&] {
    rows.publish(1);  // poison-publish, then fail
    throw std::runtime_error("row boom");
  }, &group);
  pool.submit(lane, [&] {
    rows.wait_for(1);  // must be released by the publish above
    downstream_ran.store(true);
  }, &group);
  try {
    pool.wait(group);
    FAIL() << "wait(group) swallowed the row error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "row boom");
  }
  EXPECT_TRUE(downstream_ran.load());
}

TEST(ThreadPool, DestructionDrainsPoisonedQueuedTasks) {
  // A poisoned session's lane may still hold throwing tasks when the pool
  // goes down; the destructor must run them all without terminating and
  // without hanging (nobody is left to consume the latched error).
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    ThreadPool::Queue lane(pool);
    for (int i = 0; i < 16; ++i) {
      pool.submit(lane, [&done, i] {
        done.fetch_add(1);
        if (i % 3 == 0) {
          throw std::runtime_error("queued boom");
        }
      });
    }
    // No wait_idle: destruction races dispatch of the poisoned backlog.
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, QueueDestructorDrainsItsLane) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    ThreadPool::Queue lane(pool);
    for (int i = 0; i < 40; ++i) {
      pool.submit(lane, [&count] { count.fetch_add(1); });
    }
    // No barrier: ~Queue must block until the lane is empty.
  }
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, QueueDestructionBlocksWhileTasksArePark) {
  // A session tears its Queue down while the frame pipeline's tasks are
  // parked on a ReadyCounter (waiting for reference rows). ~Queue must
  // block until those tasks are released and run to completion — returning
  // early would free per-session state out from under live tasks.
  ThreadPool pool(2);
  ReadyCounter gate;
  std::atomic<int> finished{0};
  std::atomic<bool> destroyed{false};
  auto lane = std::make_unique<ThreadPool::Queue>(pool);
  for (int i = 0; i < 4; ++i) {
    pool.submit(*lane, [&] {
      gate.wait_for(1);
      finished.fetch_add(1);
    });
  }
  std::thread destroyer([&] {
    lane.reset();
    destroyed.store(true);
  });
  // Give the destructor ample time to (incorrectly) return while every
  // worker is still parked on the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(destroyed.load());
  gate.publish(1);
  destroyer.join();
  EXPECT_TRUE(destroyed.load());
  EXPECT_EQ(finished.load(), 4);
}

TEST(ReadyCounter, PublishIsARunningMax) {
  ReadyCounter counter;
  counter.publish(5);
  counter.publish(3);  // out-of-order publication must not regress
  EXPECT_EQ(counter.value(), 5u);
  counter.wait_for(4);  // already satisfied: must not block
  counter.publish(9);
  EXPECT_EQ(counter.value(), 9u);
}

TEST(ReadyCounter, ParkedWaiterWakesAtThreshold) {
  ReadyCounter counter;
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    counter.wait_for(10);
    released.store(true);
  });
  counter.publish(9);
  EXPECT_FALSE(released.load());
  counter.publish(10);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(ReadyCounter, HighBitValuesNeverRegressOrMiscompare) {
  // The counter is cumulative over a whole stream, so the contract leans on
  // u64 never wrapping — but the comparisons must stay correct arbitrarily
  // close to the top of the range (a signed compare or a narrowing cast
  // would break exactly here, releasing waiters early or parking forever).
  ReadyCounter counter;
  const std::uint64_t high = std::uint64_t{1} << 63;
  counter.publish(high);
  counter.wait_for(high - 1);  // satisfied: must not block
  counter.publish(high - 1);   // late lower publish must not regress
  EXPECT_EQ(counter.value(), high);

  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    counter.wait_for(max);
    released.store(true);
  });
  counter.publish(max - 1);
  EXPECT_FALSE(released.load());
  counter.publish(max);
  waiter.join();
  EXPECT_TRUE(released.load());
  counter.publish(0);  // running max holds at the very top
  EXPECT_EQ(counter.value(), max);
}

TEST(ReadyCounter, WaiterNeverWakesBelowItsThreshold) {
  // Many waiters at distinct thresholds, released by single-step publishes:
  // every waiter must observe its own threshold met at wake-up — a notify
  // that releases the wrong (higher-threshold) waiter shows up here.
  ReadyCounter counter;
  std::atomic<int> early{0};
  std::vector<std::thread> waiters;
  for (std::uint64_t threshold = 1; threshold <= 16; ++threshold) {
    waiters.emplace_back([&, threshold] {
      counter.wait_for(threshold);
      if (counter.value() < threshold) {
        early.fetch_add(1);
      }
    });
  }
  for (std::uint64_t step = 1; step <= 16; ++step) {
    counter.publish(step);
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(early.load(), 0);
  EXPECT_EQ(counter.value(), 16u);
}

TEST(WavefrontProgress, SatisfiedWaitReturnsImmediately) {
  WavefrontProgress progress(2);
  progress.publish(0, 5);
  progress.wait_for(0, 5);  // must not block
  progress.wait_for(0, 3);
  EXPECT_EQ(progress.progress(0), 5);
  EXPECT_EQ(progress.progress(1), 0);
}

TEST(WavefrontProgress, ParkedWaiterWakesOnPublish) {
  WavefrontProgress progress(1);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    progress.wait_for(0, 10);
    released.store(true);
  });
  // Publish below the threshold first: the waiter must stay parked.
  progress.publish(0, 9);
  EXPECT_FALSE(released.load());
  progress.publish(0, 10);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(WavefrontProgress, WavefrontOrderingHoldsOnPool) {
  // The encoder's exact usage pattern: row by waits for row by-1 to lead by
  // two columns. Verify the dependency is never observed violated.
  constexpr int kRows = 8;
  constexpr int kCols = 32;
  WavefrontProgress progress(kRows);
  std::atomic<int> violations{0};
  ThreadPool pool(4);
  for (int by = 0; by < kRows; ++by) {
    pool.submit([&, by] {
      for (int bx = 0; bx < kCols; ++bx) {
        if (by > 0) {
          const int need = std::min(bx + 2, kCols);
          progress.wait_for(by - 1, need);
          if (progress.progress(by - 1) < need) {
            violations.fetch_add(1);
          }
        }
        progress.publish(by, bx + 1);
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(violations.load(), 0);
  for (int by = 0; by < kRows; ++by) {
    EXPECT_EQ(progress.progress(by), kCols);
  }
}

TEST(WavefrontProgress, ManyWaitersAllRelease) {
  WavefrontProgress progress(1);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&, i] {
      progress.wait_for(0, i + 1);
      released.fetch_add(1);
    });
  }
  for (int step = 1; step <= 8; ++step) {
    progress.publish(0, step);
  }
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(released.load(), 8);
}

}  // namespace
}  // namespace acbm::util
