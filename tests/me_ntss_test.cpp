// NTSS (the paper's ref [3]): centre bias, halfway stops, TSS continuation.

#include "me/ntss.hpp"

#include <gtest/gtest.h>

#include "me/tss.hpp"
#include "test_support.hpp"

namespace acbm::me {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;
using acbm::test::smooth_shifted_pair;

TEST(Ntss, StationaryBlockStopsAfterFirstStep) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 1);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Ntss ntss;
  const EstimateResult r = ntss.estimate(fx.context(16, 16, 15));
  EXPECT_EQ(r.mv, (Mv{0, 0}));
  EXPECT_EQ(r.sad, 0u);
  // 17 first-step positions + 8 half-pel.
  EXPECT_EQ(r.positions, 25u);
}

TEST(Ntss, UnitMotionUsesSecondHalfwayStop) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 2);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Ntss ntss;
  const EstimateResult r = ntss.estimate(fx.context(16, 16, 15));
  EXPECT_EQ(r.mv, mv_from_fullpel(1, 1));
  EXPECT_EQ(r.sad, 0u);
  // 17 + at most 8 extra unit probes (corner: 3 new) + 8 half-pel.
  EXPECT_LE(r.positions, 33u);
}

TEST(Ntss, BeatsTssOnSmallUnpredictedMotion) {
  // The whole point of NTSS: small motion on noisy content. On iid random
  // planes classic TSS's first probe ring is ±8 integer — it cannot see the
  // (1,1) optimum, while NTSS's unit ring catches it immediately.
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 3);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Ntss ntss;
  Tss tss;
  const BlockContext ctx = fx.context(16, 16, 15);
  const EstimateResult rn = ntss.estimate(ctx);
  const EstimateResult rt = tss.estimate(ctx);
  EXPECT_EQ(rn.sad, 0u);
  EXPECT_LE(rn.sad, rt.sad);
}

TEST(Ntss, FollowsGradientToLargeMotion) {
  auto [ref, cur] = smooth_shifted_pair(96, 96, 12, -6, 4, 32);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Ntss ntss;
  const EstimateResult r = ntss.estimate(fx.context(32, 32, 15));
  EXPECT_EQ(r.mv, mv_from_fullpel(12, -6));
  EXPECT_EQ(r.sad, 0u);
}

TEST(Ntss, ComplexityBoundedOnHardContent) {
  const SearchFixture fx(acbm::test::random_plane(96, 96, 5),
                         acbm::test::random_plane(96, 96, 6));
  Ntss ntss;
  const EstimateResult r = ntss.estimate(fx.context(32, 32, 15));
  // Worst case: 17 + 8·(stages) + 8 ≈ 17 + 24 + 8 = 49 (dedup can reduce).
  EXPECT_LE(r.positions, 49u);
  EXPECT_FALSE(r.used_full_search);
}

TEST(Ntss, StaysInsideWindow) {
  for (int seed = 0; seed < 4; ++seed) {
    const SearchFixture fx(acbm::test::random_plane(64, 64, 70 + seed),
                           acbm::test::random_plane(64, 64, 80 + seed));
    Ntss ntss;
    const BlockContext ctx = fx.context(16, 16, 4);
    EXPECT_TRUE(ctx.window.contains(ntss.estimate(ctx).mv));
  }
}

TEST(Ntss, NameIsNtss) {
  Ntss ntss;
  EXPECT_EQ(ntss.name(), "NTSS");
}

}  // namespace
}  // namespace acbm::me
