// RunningStats / SampleSet / Histogram.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace acbm::util {
namespace {

TEST(RunningStats, EmptyAccumulatorIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0 + i * 0.1;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, QuantilesOnKnownData) {
  SampleSet s;
  for (int i = 10; i >= 1; --i) {  // insertion order must not matter
    s.add(i);
  }
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, EmptyIsZero) {
  const SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.median(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(9.99);   // bin 9
  h.add(5.0);    // bin 5
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 100.0);
}

TEST(Histogram, TotalsMatchSampleCountUnderStress) {
  Histogram h(-1.0, 1.0, 7);
  for (int i = 0; i < 1000; ++i) {
    h.add(std::sin(i * 0.37) * 2.0);  // many out-of-range values
  }
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    sum += h.bin(b);
  }
  EXPECT_EQ(sum, 1000u);
  EXPECT_EQ(h.total(), 1000u);
}

}  // namespace
}  // namespace acbm::util
