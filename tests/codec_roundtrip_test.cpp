// Encoder ↔ decoder parity: the decoder's output must be sample-identical to
// the encoder's reconstruction loop for every frame, every estimator, and
// every macroblock mode — the strongest correctness check on the codec.

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "synth/sequences.hpp"
#include "video/psnr.hpp"
#include "test_support.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames,
                                        int fps = 30) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = fps;
  return synth::make_sequence(req);
}

void expect_frames_identical(const video::Frame& a, const video::Frame& b) {
  EXPECT_TRUE(a.y().visible_equals(b.y()));
  EXPECT_TRUE(a.cb().visible_equals(b.cb()));
  EXPECT_TRUE(a.cr().visible_equals(b.cr()));
}

TEST(RoundTrip, HeaderSurvives) {
  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = 16;
  cfg.fps_num = 10;
  cfg.fps_den = 1;
  Encoder enc({64, 48}, cfg, pbm);
  const auto bytes = enc.finish();
  const Decoder dec(bytes);
  EXPECT_EQ(dec.size().width, 64);
  EXPECT_EQ(dec.size().height, 48);
  EXPECT_EQ(dec.rate().num, 10);
  EXPECT_EQ(dec.rate().den, 1);
}

TEST(RoundTrip, EmptyStreamDecodesToNoFrames) {
  me::Pbm pbm;
  Encoder enc({64, 48}, EncoderConfig{}, pbm);
  Decoder dec(enc.finish());
  EXPECT_FALSE(dec.decode_frame().has_value());
}

TEST(RoundTrip, GarbageInputThrows) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8,
                                             9, 10, 11, 12};
  EXPECT_THROW(Decoder dec(garbage), DecodeError);
}

TEST(RoundTrip, TruncatedStreamThrowsNotCrashes) {
  const auto frames = test_sequence("carphone", 2);
  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = 12;
  cfg.search_range = 7;
  Encoder enc({64, 48}, cfg, pbm);
  for (const auto& f : frames) {
    (void)enc.encode_frame(f);
  }
  auto bytes = enc.finish();
  bytes.resize(bytes.size() * 2 / 3);
  Decoder dec(bytes);
  EXPECT_THROW(
      {
        while (dec.decode_frame()) {
        }
      },
      DecodeError);
}

class RoundTripEstimatorTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(RoundTripEstimatorTest, DecoderMatchesEncoderReconstruction) {
  const auto [algo, qp] = GetParam();
  const auto frames = test_sequence("table", 4);

  std::unique_ptr<me::MotionEstimator> estimator;
  if (std::string_view(algo) == "FSBM") {
    estimator = std::make_unique<me::FullSearch>();
  } else if (std::string_view(algo) == "PBM") {
    estimator = std::make_unique<me::Pbm>();
  } else {
    estimator = std::make_unique<core::Acbm>();
  }

  EncoderConfig cfg;
  cfg.qp = qp;
  cfg.search_range = 7;
  Encoder enc({64, 48}, cfg, *estimator);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)enc.encode_frame(f);
    recons.push_back(enc.last_recon());
  }
  const auto bytes = enc.finish();

  Decoder dec(bytes);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto decoded = dec.decode_frame();
    ASSERT_TRUE(decoded.has_value()) << "frame " << i;
    expect_frames_identical(*decoded, recons[i]);
  }
  EXPECT_FALSE(dec.decode_frame().has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndQps, RoundTripEstimatorTest,
    ::testing::Values(std::tuple{"FSBM", 8}, std::tuple{"FSBM", 24},
                      std::tuple{"PBM", 8}, std::tuple{"PBM", 24},
                      std::tuple{"ACBM", 8}, std::tuple{"ACBM", 16},
                      std::tuple{"ACBM", 30}),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_qp" +
             std::to_string(std::get<1>(info.param));
    });

TEST(RoundTrip, IntraPeriodStreams) {
  const auto frames = test_sequence("foreman", 5);
  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = 14;
  cfg.search_range = 7;
  cfg.intra_period = 2;
  Encoder enc({64, 48}, cfg, pbm);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)enc.encode_frame(f);
    recons.push_back(enc.last_recon());
  }
  Decoder dec(enc.finish());
  const auto decoded = dec.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_frames_identical(decoded[i], recons[i]);
  }
}

TEST(RoundTrip, NoHalfPelStreams) {
  const auto frames = test_sequence("miss_america", 3);
  me::FullSearch fsbm;
  EncoderConfig cfg;
  cfg.qp = 10;
  cfg.search_range = 7;
  cfg.half_pel = false;
  Encoder enc({64, 48}, cfg, fsbm);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)enc.encode_frame(f);
    recons.push_back(enc.last_recon());
  }
  Decoder dec(enc.finish());
  const auto decoded = dec.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_frames_identical(decoded[i], recons[i]);
  }
}

TEST(RoundTrip, DecodedQualityTracksQp) {
  const auto frames = test_sequence("carphone", 3);
  auto encode_decode_psnr = [&](int qp) {
    me::Pbm pbm;
    EncoderConfig cfg;
    cfg.qp = qp;
    cfg.search_range = 7;
    Encoder enc({64, 48}, cfg, pbm);
    for (const auto& f : frames) {
      (void)enc.encode_frame(f);
    }
    Decoder dec(enc.finish());
    const auto decoded = dec.decode_all();
    double psnr = 0.0;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      psnr += video::psnr_luma(frames[i], decoded[i]);
    }
    return psnr / static_cast<double>(decoded.size());
  };
  EXPECT_GT(encode_decode_psnr(4), encode_decode_psnr(28) + 3.0);
}

}  // namespace
}  // namespace acbm::codec
