// FSBM: optimality, position counts (the paper's 969), half-pel refinement,
// SAD_deviation bookkeeping, and half-pel recovery of true sub-pel motion.

#include "me/full_search.hpp"

#include <gtest/gtest.h>

#include "me/sad.hpp"
#include "test_support.hpp"

namespace acbm::me {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;

TEST(FullSearch, FindsExactIntegerShift) {
  for (const auto& [dx, dy] : {std::pair{0, 0}, std::pair{3, -2},
                               std::pair{-7, 5}, std::pair{15, -15}}) {
    auto [ref, cur] = shifted_pair(64, 48, dx, dy, 100 + dx * 31 + dy);
    const SearchFixture fx(std::move(ref), std::move(cur));
    FullSearch fsbm;
    const EstimateResult r = fsbm.estimate(fx.context(16, 16));
    EXPECT_EQ(r.mv, mv_from_fullpel(dx, dy)) << dx << "," << dy;
    EXPECT_EQ(r.sad, 0u);
    EXPECT_TRUE(r.used_full_search);
  }
}

TEST(FullSearch, PositionCountIsPaper969) {
  auto [ref, cur] = shifted_pair(64, 48, 2, 1, 7);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  const EstimateResult r = fsbm.estimate(fx.context(16, 16, 15));
  EXPECT_EQ(r.positions, 969u);  // 31² integer + 8 half-pel
}

TEST(FullSearch, PositionCountScalesWithRange) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 8);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  EXPECT_EQ(fsbm.estimate(fx.context(16, 16, 7)).positions, 225u + 8u);
  EXPECT_EQ(fsbm.estimate(fx.context(16, 16, 1)).positions, 9u + 8u);
}

TEST(FullSearch, NoHalfpelWhenDisabled) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 9);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  BlockContext ctx = fx.context(16, 16, 15);
  ctx.half_pel = false;
  const EstimateResult r = fsbm.estimate(ctx);
  EXPECT_EQ(r.positions, 961u);
  EXPECT_TRUE(r.mv.is_integer());
}

TEST(FullSearch, SadIsGlobalIntegerMinimum) {
  // Verify against an exhaustive naive scan on textured content.
  const SearchFixture fx(acbm::test::random_plane(64, 64, 10),
                         acbm::test::random_plane(64, 64, 11));
  BlockContext ctx = fx.context(32, 32, 7);
  ctx.half_pel = false;
  FullSearch fsbm;
  const EstimateResult r = fsbm.estimate(ctx);
  std::uint32_t best = ~0u;
  for (int dy = -7; dy <= 7; ++dy) {
    for (int dx = -7; dx <= 7; ++dx) {
      best = std::min(best, sad_block(fx.cur, 32, 32, fx.ref, 32 + dx,
                                      32 + dy, 16, 16));
    }
  }
  EXPECT_EQ(r.sad, best);
}

TEST(FullSearch, HalfpelNeverWorseThanInteger) {
  for (int seed = 0; seed < 6; ++seed) {
    const SearchFixture fx(acbm::test::random_plane(64, 64, 20 + seed),
                           acbm::test::random_plane(64, 64, 30 + seed));
    FullSearch fsbm;
    const FullSearchResult full = fsbm.search_full(fx.context(16, 16, 7));
    EXPECT_LE(full.best.sad, full.best_integer_sad);
  }
}

TEST(FullSearch, RecoversTrueHalfpelMotion) {
  // Current frame = reference sampled half a pixel to the right (average of
  // neighbours, H.263 rounding): the half-pel refinement must pick a
  // non-integer vector with a much lower SAD than the best integer one.
  const video::Plane ref = acbm::test::random_plane(64, 48, 40);
  video::Plane cur(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      cur.set(x, y, static_cast<std::uint8_t>(
                        (ref.at(x, y) + ref.at(x + 1, y) + 1) >> 1));
    }
  }
  cur.extend_border();
  const SearchFixture fx(ref, cur);
  FullSearch fsbm;
  const FullSearchResult full = fsbm.search_full(fx.context(16, 16, 7));
  EXPECT_EQ(full.best.mv, (Mv{1, 0}));
  EXPECT_EQ(full.best.sad, 0u);
  EXPECT_GT(full.best_integer_sad, 0u);
}

TEST(FullSearch, DeviationZeroOnConstantPicture) {
  video::Plane flat_ref(48, 48);
  flat_ref.fill(99);
  flat_ref.extend_border();
  video::Plane flat_cur = flat_ref;
  const SearchFixture fx(std::move(flat_ref), std::move(flat_cur));
  FullSearch fsbm;
  const FullSearchResult full = fsbm.search_full(fx.context(16, 16, 7));
  EXPECT_EQ(full.sad_deviation(), 0u);  // every candidate SAD identical (0)
  EXPECT_EQ(full.best_integer_sad, 0u);
}

TEST(FullSearch, DeviationLargeOnTexturedPicture) {
  auto [ref, cur] = shifted_pair(64, 48, 4, 4, 50);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  const FullSearchResult full = fsbm.search_full(fx.context(16, 16, 7));
  EXPECT_EQ(full.best_integer_sad, 0u);
  // Random 8-bit content: off-positions average ≈85 per sample; the sum over
  // 224 wrong candidates must be enormous compared with zero at the truth.
  EXPECT_GT(full.sad_deviation(), 1000000u);
  EXPECT_EQ(full.integer_positions, 225u);
}

TEST(FullSearch, TieBreakPrefersShorterVector) {
  // Constant picture: every candidate has SAD 0 → the zero vector must win.
  video::Plane ref(48, 48);
  ref.fill(50);
  ref.extend_border();
  video::Plane cur = ref;
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  const EstimateResult r = fsbm.estimate(fx.context(16, 16, 7));
  EXPECT_EQ(r.mv, (Mv{0, 0}));
}

TEST(FullSearch, NameIsFsbm) {
  FullSearch fsbm;
  EXPECT_EQ(fsbm.name(), "FSBM");
}

class FullSearchRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(FullSearchRangeTest, IntegerPositionsMatchWindowFormula) {
  const int p = GetParam();
  auto [ref, cur] = shifted_pair(96, 96, 0, 0, 60 + p);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm;
  BlockContext ctx = fx.context(32, 32, p);
  ctx.half_pel = false;
  const EstimateResult r = fsbm.estimate(ctx);
  EXPECT_EQ(r.positions,
            static_cast<std::uint32_t>((2 * p + 1) * (2 * p + 1)));
}

INSTANTIATE_TEST_SUITE_P(Ranges, FullSearchRangeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 15));

}  // namespace
}  // namespace acbm::me
