// Frame geometry plus raw-YUV and Y4M I/O round-trips — and the
// malformed-input contract: a corrupt header or truncated stream must raise
// a typed video::IoError (clean CLI exit 2), never read out of bounds,
// allocate absurd buffers, or hand back silent garbage. The corpus of
// hostile files lives in tests/data/malformed/.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "test_support.hpp"
#include "video/frame.hpp"
#include "video/io_error.hpp"
#include "video/y4m_io.hpp"
#include "video/yuv_io.hpp"

namespace acbm::video {
namespace {

Frame test_frame(int w, int h, std::uint64_t seed) {
  Frame f(w, h);
  f.y() = acbm::test::random_plane(w, h, seed);
  f.cb() = acbm::test::random_plane(w / 2, h / 2, seed + 1);
  f.cr() = acbm::test::random_plane(w / 2, h / 2, seed + 2);
  return f;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Frame, ChromaIsHalfResolution) {
  const Frame f(kQcif);
  EXPECT_EQ(f.width(), 176);
  EXPECT_EQ(f.height(), 144);
  EXPECT_EQ(f.cb().width(), 88);
  EXPECT_EQ(f.cb().height(), 72);
  EXPECT_EQ(f.cr().width(), 88);
}

TEST(Frame, FillSetsNeutralChroma) {
  Frame f(32, 32);
  f.fill(200);
  EXPECT_EQ(f.y().at(0, 0), 200);
  EXPECT_EQ(f.cb().at(0, 0), 128);
  EXPECT_EQ(f.cr().at(0, 0), 128);
}

TEST(PackI420, SizeAndLayout) {
  const Frame f = test_frame(32, 16, 3);
  const auto bytes = pack_i420(f);
  EXPECT_EQ(bytes.size(), 32u * 16u * 3u / 2u);
  EXPECT_EQ(bytes[0], f.y().at(0, 0));
  EXPECT_EQ(bytes[32 * 16], f.cb().at(0, 0));
  EXPECT_EQ(bytes[32 * 16 + 16 * 8], f.cr().at(0, 0));
}

TEST(PackI420, UnpackInverts) {
  const Frame f = test_frame(32, 16, 4);
  const Frame g = unpack_i420(pack_i420(f), {32, 16});
  EXPECT_TRUE(g.y().visible_equals(f.y()));
  EXPECT_TRUE(g.cb().visible_equals(f.cb()));
  EXPECT_TRUE(g.cr().visible_equals(f.cr()));
}

TEST(PackI420, UnpackRejectsWrongSize) {
  const std::vector<std::uint8_t> bytes(100);
  EXPECT_THROW(unpack_i420(bytes, {32, 16}), std::runtime_error);
}

TEST(YuvIo, FileRoundTrip) {
  const std::string path = temp_path("acbm_test_roundtrip.yuv");
  std::vector<Frame> frames;
  for (int i = 0; i < 3; ++i) {
    frames.push_back(test_frame(32, 32, 10 + i));
  }
  write_yuv420(path, frames);
  const auto back = read_yuv420(path, {32, 32});
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(back[i].y().visible_equals(frames[i].y()));
    EXPECT_TRUE(back[i].cb().visible_equals(frames[i].cb()));
  }
  std::remove(path.c_str());
}

TEST(YuvIo, MaxFramesLimitsRead) {
  const std::string path = temp_path("acbm_test_maxframes.yuv");
  write_yuv420(path, {test_frame(16, 16, 1), test_frame(16, 16, 2),
                      test_frame(16, 16, 3)});
  EXPECT_EQ(read_yuv420(path, {16, 16}, 2).size(), 2u);
  std::remove(path.c_str());
}

TEST(YuvIo, TruncatedFileThrows) {
  const std::string path = temp_path("acbm_test_trunc.yuv");
  {
    std::ofstream out(path, std::ios::binary);
    const std::string garbage(100, 'x');  // not a whole 16×16 frame (384 B)
    out << garbage;
  }
  EXPECT_THROW(read_yuv420(path, {16, 16}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(YuvIo, MissingFileThrows) {
  EXPECT_THROW(read_yuv420("/nonexistent/definitely.yuv", {16, 16}),
               std::runtime_error);
}

TEST(Y4mIo, FileRoundTripWithRate) {
  const std::string path = temp_path("acbm_test_roundtrip.y4m");
  Y4mVideo video;
  video.size = {32, 16};
  video.rate = {30000, 1001};
  video.frames.push_back(test_frame(32, 16, 20));
  video.frames.push_back(test_frame(32, 16, 21));
  write_y4m(path, video);

  const Y4mVideo back = read_y4m(path);
  EXPECT_EQ(back.size.width, 32);
  EXPECT_EQ(back.size.height, 16);
  EXPECT_EQ(back.rate.num, 30000);
  EXPECT_EQ(back.rate.den, 1001);
  ASSERT_EQ(back.frames.size(), 2u);
  EXPECT_TRUE(back.frames[1].y().visible_equals(video.frames[1].y()));
  std::remove(path.c_str());
}

TEST(Y4mIo, RejectsNonY4m) {
  const std::string path = temp_path("acbm_test_bogus.y4m");
  {
    std::ofstream out(path);
    out << "RIFFxxxx not a y4m\n";
  }
  EXPECT_THROW(read_y4m(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Y4mIo, Rejects422Chroma) {
  const std::string path = temp_path("acbm_test_422.y4m");
  {
    std::ofstream out(path);
    out << "YUV4MPEG2 W16 H16 F30:1 C422\n";
  }
  EXPECT_THROW(read_y4m(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Y4mIo, FrameRateFpsHelper) {
  const FrameRate r{30000, 1001};
  EXPECT_NEAR(r.fps(), 29.97, 0.001);
}

// ------------------------------------------------- malformed-input corpus ---

TEST(MalformedCorpus, EveryHostileY4mRaisesTypedIoError) {
  const std::filesystem::path dir =
      std::filesystem::path(ACBM_TEST_DIR) / "data" / "malformed";
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "corpus missing: " << dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".y4m") {
      continue;
    }
    ++files;
    try {
      (void)read_y4m(entry.path().string());
      FAIL() << entry.path().filename()
             << " parsed without error — hostile input accepted";
    } catch (const IoError&) {
      // the contract: typed, catchable, exit-2-mappable
    }
    // catch nothing else: any other exception type fails the test loudly
  }
  EXPECT_GE(files, 8) << "corpus unexpectedly small in " << dir;
}

TEST(Y4mIo, RejectsAbsurdDimensionsBeforeAllocating) {
  const std::string path = temp_path("acbm_test_huge.y4m");
  {
    std::ofstream out(path);
    out << "YUV4MPEG2 W1000000000 H1000000000 F30:1 C420\n";
  }
  // Must throw the typed error while parsing the header — not OOM trying
  // to build a petabyte frame.
  EXPECT_THROW(read_y4m(path), IoError);
  std::remove(path.c_str());
}

TEST(Y4mIo, RejectsOddDimensionsFor420) {
  const std::string path = temp_path("acbm_test_odd.y4m");
  {
    std::ofstream out(path);
    out << "YUV4MPEG2 W17 H15 F30:1 C420\n";
  }
  EXPECT_THROW(read_y4m(path), IoError);
  std::remove(path.c_str());
}

TEST(Y4mIo, RejectsNonNumericDimension) {
  const std::string path = temp_path("acbm_test_nan.y4m");
  {
    std::ofstream out(path);
    out << "YUV4MPEG2 W-16 H16 F30:1 C420\n";
  }
  EXPECT_THROW(read_y4m(path), IoError);
  std::remove(path.c_str());
}

TEST(YuvIo, RejectsAbsurdRequestedSize) {
  // The size is caller-supplied for headerless input; it passes through the
  // same bounds check, throwing before any allocation or read.
  EXPECT_THROW(read_yuv420("/nonexistent.yuv", {100000, 100000}), IoError);
  EXPECT_THROW(read_yuv420("/nonexistent.yuv", {0, 16}), IoError);
  EXPECT_THROW(read_yuv420("/nonexistent.yuv", {17, 15}), IoError);
}

TEST(YuvIo, TruncationIsTypedIoError) {
  const std::string path = temp_path("acbm_test_trunc_typed.yuv");
  {
    std::ofstream out(path, std::ios::binary);
    out << std::string(100, 'x');
  }
  EXPECT_THROW(read_yuv420(path, {16, 16}), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acbm::video
