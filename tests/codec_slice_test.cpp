// Slice-parallel entropy coding (ACV2): determinism across thread counts
// and kernel-independent scheduling, byte-exact single-slice compatibility
// with the legacy ACV1 framing, decoder round-trip parity (serial and
// slice-parallel), and the reconstruction invariant — slicing re-predicts
// motion vectors but never changes a single reconstructed sample, so PSNR
// is identical at every slice count.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames,
                                        video::PictureSize size = {64, 48}) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

struct EncodeResult {
  std::vector<std::uint8_t> stream;
  std::vector<FrameReport> reports;
  std::vector<video::Frame> recon;  ///< per-frame encoder reconstruction
};

EncodeResult encode_with(const std::vector<video::Frame>& frames,
                         const std::string& algorithm,
                         const EncoderConfig& config) {
  const auto estimator = core::builtin_estimators().create(algorithm);
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  EncodeResult result;
  for (const video::Frame& frame : frames) {
    result.reports.push_back(encoder.encode_frame(frame));
    result.recon.push_back(encoder.last_recon());
  }
  result.stream = encoder.finish();
  return result;
}

void expect_frames_identical(const video::Frame& a, const video::Frame& b) {
  EXPECT_TRUE(a.y().visible_equals(b.y()));
  EXPECT_TRUE(a.cb().visible_equals(b.cb()));
  EXPECT_TRUE(a.cr().visible_equals(b.cr()));
}

std::uint32_t stream_magic(const std::vector<std::uint8_t>& stream) {
  return (std::uint32_t{stream[0]} << 24) | (std::uint32_t{stream[1]} << 16) |
         (std::uint32_t{stream[2]} << 8) | std::uint32_t{stream[3]};
}

TEST(SliceEncode, SingleSliceKeepsLegacyMagicAndBytes) {
  const auto frames = test_sequence("foreman", 6);
  EncoderConfig config;
  config.qp = 16;
  const EncodeResult baseline = encode_with(frames, "ACBM", config);
  EXPECT_EQ(stream_magic(baseline.stream), kSequenceMagic);

  // slices = 1 must be a no-op on the wire, threaded or not.
  EncoderConfig explicit_single = config;
  explicit_single.slices = 1;
  explicit_single.parallel.threads = 4;
  EXPECT_EQ(encode_with(frames, "ACBM", explicit_single).stream,
            baseline.stream);
}

TEST(SliceEncode, MultiSliceEmitsV2Magic) {
  const auto frames = test_sequence("foreman", 2);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 2;
  const EncodeResult sliced = encode_with(frames, "ACBM", config);
  EXPECT_EQ(stream_magic(sliced.stream), kSequenceMagicV2);
}

TEST(SliceEncode, BitstreamIdenticalAcrossThreadCounts) {
  const auto frames = test_sequence("foreman", 8);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 3;
  const EncodeResult serial = encode_with(frames, "ACBM", config);
  ASSERT_GT(serial.stream.size(), 0u);

  for (int threads : {2, 4, 0}) {
    EncoderConfig parallel = config;
    parallel.parallel.threads = threads;
    const EncodeResult outcome = encode_with(frames, "ACBM", parallel);
    EXPECT_EQ(outcome.stream, serial.stream) << threads << " threads";
    ASSERT_EQ(outcome.reports.size(), serial.reports.size());
    for (std::size_t i = 0; i < serial.reports.size(); ++i) {
      EXPECT_EQ(outcome.reports[i].bits, serial.reports[i].bits) << i;
      EXPECT_EQ(outcome.reports[i].intra_mbs, serial.reports[i].intra_mbs);
      EXPECT_EQ(outcome.reports[i].inter_mbs, serial.reports[i].inter_mbs);
      EXPECT_EQ(outcome.reports[i].skip_mbs, serial.reports[i].skip_mbs);
    }
  }
}

TEST(SliceEncode, PbmPredictorsSurviveSliceBoundaries) {
  // PBM leans hardest on spatial prediction; the slice seam must not leak
  // scheduling into the bytes.
  const auto frames = test_sequence("carphone", 8);
  EncoderConfig config;
  config.qp = 20;
  config.slices = 3;
  const EncodeResult serial = encode_with(frames, "PBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  EXPECT_EQ(encode_with(frames, "PBM", parallel).stream, serial.stream);
}

TEST(SliceEncode, ReconstructionIdenticalAtEverySliceCount) {
  // Slicing re-predicts vectors (different bits) but reconstruction reads
  // only the previous reference — so PSNR must match exactly, which is the
  // acceptance bar for "slices are a pure parallelism knob".
  const auto frames = test_sequence("foreman", 8);
  EncoderConfig config;
  config.qp = 16;
  const EncodeResult single = encode_with(frames, "ACBM", config);

  for (int slices : {2, 3}) {
    EncoderConfig sliced = config;
    sliced.slices = slices;
    const EncodeResult outcome = encode_with(frames, "ACBM", sliced);
    EXPECT_NE(outcome.stream, single.stream);  // headers + MVD resets
    ASSERT_EQ(outcome.reports.size(), single.reports.size());
    for (std::size_t i = 0; i < single.reports.size(); ++i) {
      EXPECT_DOUBLE_EQ(outcome.reports[i].psnr_y, single.reports[i].psnr_y)
          << "frame " << i << ", " << slices << " slices";
      expect_frames_identical(outcome.recon[i], single.recon[i]);
    }
  }
}

TEST(SliceRoundTrip, DecoderMatchesEncoderReconstruction) {
  const auto frames = test_sequence("foreman", 6);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 3;
  config.parallel.threads = 4;
  const EncodeResult outcome = encode_with(frames, "ACBM", config);

  Decoder decoder(outcome.stream);
  EXPECT_EQ(decoder.version(), 2);
  std::size_t i = 0;
  while (auto frame = decoder.decode_frame()) {
    ASSERT_LT(i, outcome.recon.size());
    expect_frames_identical(*frame, outcome.recon[i]);
    ++i;
  }
  EXPECT_EQ(i, frames.size());
  EXPECT_EQ(decoder.last_frame_slices(), 3);
  EXPECT_EQ(decoder.concealed_slices(), 0u);
}

TEST(SliceRoundTrip, ParallelDecodeIdenticalToSerial) {
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 18;
  config.slices = 3;
  const EncodeResult outcome = encode_with(frames, "ACBM", config);

  Decoder serial(outcome.stream, /*threads=*/1);
  Decoder parallel(outcome.stream, /*threads=*/4);
  const auto serial_frames = serial.decode_all();
  const auto parallel_frames = parallel.decode_all();
  ASSERT_EQ(serial_frames.size(), parallel_frames.size());
  for (std::size_t i = 0; i < serial_frames.size(); ++i) {
    expect_frames_identical(serial_frames[i], parallel_frames[i]);
  }
}

TEST(SliceRoundTrip, RateDistortionModeRoundTrips) {
  // RD mode prices bits against the slice-local predictor chain on both
  // sides; parity proves encoder and decoder agree on the seam.
  const auto frames = test_sequence("carphone", 5);
  EncoderConfig config;
  config.qp = 20;
  config.slices = 2;
  config.mode_decision = ModeDecision::kRateDistortion;
  const EncodeResult outcome = encode_with(frames, "PBM", config);

  Decoder decoder(outcome.stream);
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_frames_identical(decoded[i], outcome.recon[i]);
  }

  // encode_inter_mb_rd must also be deterministic when its slices run on
  // pool threads — it drives the same slice machinery (recon_,
  // coded_field_, per-slice writer) as the heuristic path.
  for (int threads : {3, 4}) {
    EncoderConfig parallel = config;
    parallel.parallel.threads = threads;
    EXPECT_EQ(encode_with(frames, "PBM", parallel).stream, outcome.stream)
        << threads << " threads";
  }
}

TEST(SliceRoundTrip, IntraPeriodStreamsRoundTrip) {
  const auto frames = test_sequence("miss_america", 6);
  EncoderConfig config;
  config.qp = 24;
  config.slices = 3;
  config.intra_period = 2;
  const EncodeResult outcome = encode_with(frames, "ACBM", config);

  Decoder decoder(outcome.stream, /*threads=*/2);
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_frames_identical(decoded[i], outcome.recon[i]);
  }
}

TEST(SliceEncode, SliceCountClampsToMacroblockRows) {
  // 64×48 has 3 macroblock rows; a 16-slice request degrades to 3 (still
  // ACV2) and must round-trip.
  const auto frames = test_sequence("foreman", 3);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 16;
  const EncodeResult outcome = encode_with(frames, "ACBM", config);

  EncoderConfig three = config;
  three.slices = 3;
  EXPECT_EQ(encode_with(frames, "ACBM", three).stream, outcome.stream);

  Decoder decoder(outcome.stream);
  EXPECT_EQ(decoder.decode_all().size(), frames.size());
  EXPECT_EQ(decoder.last_frame_slices(), 3);
}

TEST(SliceEncode, DeblockingComposesWithSlices) {
  // The in-loop filter runs whole-frame after the slices join, on both
  // sides of the channel; parity across the slice seams proves it.
  const auto frames = test_sequence("foreman", 5);
  EncoderConfig config;
  config.qp = 22;
  config.slices = 3;
  config.deblock = true;
  config.parallel.threads = 2;
  const EncodeResult outcome = encode_with(frames, "ACBM", config);

  Decoder decoder(outcome.stream, /*threads=*/3);
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    expect_frames_identical(decoded[i], outcome.recon[i]);
  }
}

}  // namespace
}  // namespace acbm::codec
