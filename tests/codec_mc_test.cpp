// Motion compensation: luma half-pel prediction, chroma vector derivation
// (H.263 rounding table), chroma interpolation, and the block-codec pipeline.

#include "codec/mc.hpp"

#include <gtest/gtest.h>

#include "codec/block_codec.hpp"
#include "test_support.hpp"

namespace acbm::codec {
namespace {

TEST(PredictLuma, IntegerVectorCopiesBlock) {
  const video::Plane ref = acbm::test::random_plane(64, 48, 1);
  const video::HalfpelPlanes hp(ref);
  std::uint8_t dst[16 * 16];
  predict_luma(hp, 16, 16, me::mv_from_fullpel(3, -2), 16, 16, dst, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(dst[y * 16 + x], ref.at(16 + x + 3, 16 + y - 2));
    }
  }
}

TEST(PredictLuma, HalfpelVectorInterpolates) {
  const video::Plane ref = acbm::test::random_plane(64, 48, 2);
  const video::HalfpelPlanes hp(ref);
  std::uint8_t dst[8 * 8];
  predict_luma(hp, 24, 24, {5, 1}, 8, 8, dst, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_EQ(dst[y * 8 + x],
                video::sample_halfpel(ref, (24 + x) * 2 + 5, (24 + y) * 2 + 1));
    }
  }
}

TEST(PredictLuma, NegativeVectorReadsBorder) {
  video::Plane ref(32, 32);
  ref.fill(77);
  ref.extend_border();
  const video::HalfpelPlanes hp(ref);
  std::uint8_t dst[16 * 16];
  predict_luma(hp, 0, 0, me::mv_from_fullpel(-15, -15), 16, 16, dst, 16);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(dst[i], 77);
  }
}

TEST(DeriveChromaMv, H263RoundingTable) {
  // luma half-pel → chroma half-pel: fraction {1,2,3}/4 all map to 1/2.
  EXPECT_EQ(derive_chroma_mv({0, 0}), (me::Mv{0, 0}));
  EXPECT_EQ(derive_chroma_mv({4, 0}), (me::Mv{2, 0}));   // +2 luma → +1 chroma
  EXPECT_EQ(derive_chroma_mv({1, 0}), (me::Mv{1, 0}));   // ¼ → ½
  EXPECT_EQ(derive_chroma_mv({2, 0}), (me::Mv{1, 0}));   // ½ → ½
  EXPECT_EQ(derive_chroma_mv({3, 0}), (me::Mv{1, 0}));   // ¾ → ½
  EXPECT_EQ(derive_chroma_mv({5, 0}), (me::Mv{3, 0}));   // 1¼ → 1½
  EXPECT_EQ(derive_chroma_mv({0, -1}), (me::Mv{0, -1}));
  EXPECT_EQ(derive_chroma_mv({0, -4}), (me::Mv{0, -2}));
  EXPECT_EQ(derive_chroma_mv({-6, 7}), (me::Mv{-3, 3}));
}

TEST(DeriveChromaMv, OddSymmetry) {
  for (int v = -30; v <= 30; ++v) {
    EXPECT_EQ(derive_chroma_mv({v, 0}).x, -derive_chroma_mv({-v, 0}).x);
  }
}

TEST(PredictChroma, IntegerChromaVectorCopies) {
  const video::Plane ref = acbm::test::random_plane(32, 24, 3);
  std::uint8_t dst[8 * 8];
  predict_chroma(ref, 8, 8, {4, -2}, 8, 8, dst, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_EQ(dst[y * 8 + x], ref.at(8 + x + 2, 8 + y - 1));
    }
  }
}

TEST(PredictChroma, HalfSampleInterpolates) {
  const video::Plane ref = acbm::test::random_plane(32, 24, 4);
  std::uint8_t dst[4 * 4];
  predict_chroma(ref, 8, 8, {1, 1}, 4, 4, dst, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      ASSERT_EQ(dst[y * 4 + x],
                video::sample_halfpel(ref, (8 + x) * 2 + 1, (8 + y) * 2 + 1));
    }
  }
}

TEST(BlockCodec, IntraRoundTripCloseToSource) {
  const video::Plane src = acbm::test::random_plane(16, 16, 5);
  std::int16_t levels[kDctSamples];
  const std::uint8_t dc = encode_intra_block(src.row(0), src.stride(),
                                             levels, /*qp=*/4);
  video::Plane rec(16, 16);
  reconstruct_intra_block(levels, dc, 4, rec.row(0), rec.stride());
  // Max per-sample error bounded by quantizer noise across 64 coefficients;
  // at qp=4 a generous bound is ±32.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_NEAR(int(rec.at(x, y)), int(src.at(x, y)), 32);
    }
  }
}

TEST(BlockCodec, IntraFlatBlockNearExact) {
  video::Plane src(8, 8);
  src.fill(137);
  std::int16_t levels[kDctSamples];
  const std::uint8_t dc =
      encode_intra_block(src.row(0), src.stride(), levels, 8);
  EXPECT_EQ(dc, 137);  // DC = 8·137/8
  video::Plane rec(8, 8);
  reconstruct_intra_block(levels, dc, 8, rec.row(0), rec.stride());
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_NEAR(int(rec.at(x, y)), 137, 1);
    }
  }
}

TEST(BlockCodec, InterZeroResidualGivesZeroLevels) {
  const video::Plane src = acbm::test::random_plane(8, 8, 6);
  std::int16_t levels[kDctSamples];
  std::uint8_t pred[64];
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      pred[y * 8 + x] = src.at(x, y);
    }
  }
  encode_inter_block(src.row(0), src.stride(), pred, 8, levels, 10);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(levels[i], 0);
  }
}

TEST(BlockCodec, InterReconstructionImprovesOnPrediction) {
  const video::Plane src = acbm::test::random_plane(8, 8, 7);
  video::Plane pred_plane(8, 8);
  pred_plane.fill(128);
  std::uint8_t pred[64];
  for (int i = 0; i < 64; ++i) {
    pred[i] = 128;
  }
  std::int16_t levels[kDctSamples];
  encode_inter_block(src.row(0), src.stride(), pred, 8, levels, 4);
  video::Plane rec(8, 8);
  reconstruct_inter_block(levels, pred, 8, 4, rec.row(0), rec.stride());
  std::uint64_t err_pred = 0;
  std::uint64_t err_rec = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      err_pred += std::abs(int(src.at(x, y)) - 128);
      err_rec += std::abs(int(src.at(x, y)) - int(rec.at(x, y)));
    }
  }
  EXPECT_LT(err_rec, err_pred / 2);
}

TEST(BlockCodec, InterSkipEquivalence) {
  // All-zero levels must reproduce the prediction exactly (the SKIP path).
  std::uint8_t pred[64];
  for (int i = 0; i < 64; ++i) {
    pred[i] = static_cast<std::uint8_t>(i * 3);
  }
  const std::int16_t levels[kDctSamples] = {};
  std::uint8_t dst[64];
  reconstruct_inter_block(levels, pred, 8, 16, dst, 8);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(dst[i], pred[i]);
  }
}

}  // namespace
}  // namespace acbm::codec
