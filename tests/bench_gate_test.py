#!/usr/bin/env python3
"""Unit tests for scripts/bench_gate.py — the CI perf-trajectory gate.

The gate script guards every other perf claim in the repository, so its own
logic is gated here: merge/dedup semantics, median-normalised regression
detection, deterministic-counter drift, baseline re-seeding, the
ACBM_BENCH_GATE=off escape hatch, and the commit/timestamp stamping that
keys BENCH_ci.json artifacts for cross-commit trajectory plotting.

Wired into ctest by CMakeLists.txt (test name: bench_gate_test); also
runnable directly: python3 tests/bench_gate_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GATE = os.path.join(REPO_ROOT, "scripts", "bench_gate.py")


def bench_row(name, ns, counters=None):
    row = {"name": name, "run_name": name, "run_type": "iteration",
           "real_time": ns, "cpu_time": ns, "time_unit": "ns"}
    if counters:
        row.update(counters)
    return row


def write_report(path, rows, context=None):
    with open(path, "w") as f:
        json.dump({"context": context or {}, "benchmarks": rows}, f)


class BenchGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def path(self, name):
        return os.path.join(self.dir, name)

    def run_gate(self, *args, env_extra=None):
        env = dict(os.environ)
        env.pop("ACBM_BENCH_GATE", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, GATE, *args],
            capture_output=True, text=True, env=env, cwd=self.dir)

    def seed_baseline(self, rows):
        baseline = self.path("baseline.json")
        inp = self.path("seed_input.json")
        write_report(inp, rows)
        result = self.run_gate("--update-baseline", "--baseline", baseline,
                               "--out", self.path("seed_out.json"), inp)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        return baseline

    # ------------------------------------------------------------- gating

    def test_identical_run_passes(self):
        rows = [bench_row("BM_A", 100.0), bench_row("BM_B", 200.0)]
        baseline = self.seed_baseline(rows)
        write_report(self.path("run.json"), rows)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("perf gate: OK", result.stdout)

    def test_uniform_slowdown_is_machine_factor_not_regression(self):
        # Everything 3x slower = slower machine; the median normalisation
        # must absorb it entirely.
        rows = [bench_row(f"BM_{i}", 100.0 * (i + 1)) for i in range(5)]
        baseline = self.seed_baseline(rows)
        slowed = [bench_row(f"BM_{i}", 300.0 * (i + 1)) for i in range(5)]
        write_report(self.path("run.json"), slowed)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_single_row_regression_fails(self):
        rows = [bench_row(f"BM_{i}", 100.0) for i in range(5)]
        baseline = self.seed_baseline(rows)
        regressed = [bench_row(f"BM_{i}", 100.0) for i in range(4)]
        regressed.append(bench_row("BM_4", 200.0))  # 2x one row
        write_report(self.path("run.json"), regressed)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)
        self.assertIn("BM_4", result.stdout)

    def test_regression_within_tolerance_passes(self):
        rows = [bench_row(f"BM_{i}", 100.0) for i in range(5)]
        baseline = self.seed_baseline(rows)
        nudged = [bench_row(f"BM_{i}", 100.0) for i in range(4)]
        nudged.append(bench_row("BM_4", 115.0))  # within the 20% default
        write_report(self.path("run.json"), nudged)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_counter_drift_fails_even_when_timing_is_clean(self):
        rows = [bench_row("BM_T1", 100.0, {"positions_per_mb": 42.5}),
                bench_row("BM_T2", 100.0)]
        baseline = self.seed_baseline(rows)
        drifted = [bench_row("BM_T1", 100.0, {"positions_per_mb": 43.0}),
                   bench_row("BM_T2", 100.0)]
        write_report(self.path("run.json"), drifted)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("positions_per_mb", result.stdout)

    # ---------------------------------------------- latency counter gating

    def latency_rows(self, p99_us):
        # Several timing rows keep the median machine factor at 1.0 so the
        # latency ratio is what is actually under test.
        rows = [bench_row(f"BM_{i}", 100.0) for i in range(4)]
        rows.append(bench_row("BM_Svc", 100.0, {"me_p50_us": 400.0,
                                                "me_p99_us": p99_us}))
        return rows

    def test_latency_counter_within_threshold_passes(self):
        baseline = self.seed_baseline(self.latency_rows(800.0))
        write_report(self.path("run.json"), self.latency_rows(1100.0))  # +37%
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_latency_counter_regression_fails(self):
        baseline = self.seed_baseline(self.latency_rows(800.0))
        write_report(self.path("run.json"), self.latency_rows(1300.0))  # +62%
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("me_p99_us", result.stdout)

    def test_latency_threshold_is_configurable(self):
        baseline = self.seed_baseline(self.latency_rows(800.0))
        write_report(self.path("run.json"), self.latency_rows(1100.0))  # +37%
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"),
                               "--max-latency-regression", "0.10")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("me_p99_us", result.stdout)

    def test_latency_counter_normalised_by_machine_factor(self):
        # Whole run 3x slower (machine factor 3): a 3x latency counter is
        # machine speed, not a regression.
        rows = [bench_row(f"BM_{i}", 100.0) for i in range(4)]
        rows.append(bench_row("BM_Svc", 100.0, {"me_p99_us": 800.0}))
        baseline = self.seed_baseline(rows)
        slowed = [bench_row(f"BM_{i}", 300.0) for i in range(4)]
        slowed.append(bench_row("BM_Svc", 300.0, {"me_p99_us": 2400.0}))
        write_report(self.path("run.json"), slowed)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_zero_latency_baseline_is_skipped(self):
        baseline = self.seed_baseline(self.latency_rows(0.0))
        write_report(self.path("run.json"), self.latency_rows(900.0))
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_gate_off_env_demotes_failures(self):
        rows = [bench_row(f"BM_{i}", 100.0) for i in range(3)]
        baseline = self.seed_baseline(rows)
        regressed = [bench_row("BM_0", 100.0), bench_row("BM_1", 100.0),
                     bench_row("BM_2", 500.0)]
        write_report(self.path("run.json"), regressed)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"),
                               env_extra={"ACBM_BENCH_GATE": "off"})
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("demoting failures to warnings", result.stdout)

    def test_missing_baseline_errors(self):
        write_report(self.path("run.json"), [bench_row("BM_A", 1.0)])
        result = self.run_gate("--baseline", self.path("nonexistent.json"),
                               "--out", self.path("out.json"),
                               self.path("run.json"))
        self.assertEqual(result.returncode, 1)
        self.assertIn("not found", result.stdout)

    # ------------------------------------------------- merge + re-seeding

    def test_merge_dedups_and_drops_aggregates(self):
        write_report(self.path("a.json"), [
            bench_row("BM_X", 10.0),
            dict(bench_row("BM_X_mean", 10.0), run_type="aggregate"),
        ])
        write_report(self.path("b.json"), [bench_row("BM_X", 99.0),
                                           bench_row("BM_Y", 20.0)])
        baseline = self.seed_baseline([bench_row("BM_X", 10.0),
                                       bench_row("BM_Y", 20.0)])
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("a.json"),
                               self.path("b.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(self.path("out.json")) as f:
            merged = json.load(f)
        names = [b["name"] for b in merged["benchmarks"]]
        self.assertEqual(names, ["BM_X", "BM_Y"])  # first BM_X wins, no mean
        times = {b["name"]: b["real_time"] for b in merged["benchmarks"]}
        self.assertEqual(times["BM_X"], 10.0)

    def test_update_baseline_writes_merged_report(self):
        baseline = self.path("fresh/baseline.json")
        write_report(self.path("in.json"), [bench_row("BM_A", 5.0)])
        result = self.run_gate("--update-baseline", "--baseline", baseline,
                               "--out", self.path("out.json"),
                               self.path("in.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(baseline) as f:
            seeded = json.load(f)
        self.assertEqual(seeded["benchmarks"][0]["name"], "BM_A")

    # ------------------------------------------------------------ stamping

    def test_commit_and_timestamp_stamp_into_context(self):
        rows = [bench_row("BM_A", 100.0)]
        baseline = self.seed_baseline(rows)
        write_report(self.path("run.json"), rows)
        result = self.run_gate(
            "--baseline", baseline, "--out", self.path("out.json"),
            "--commit", "deadbeefcafe", "--timestamp", "2026-07-30T12:00:00Z",
            self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(self.path("out.json")) as f:
            merged = json.load(f)
        self.assertEqual(merged["context"]["commit_sha"], "deadbeefcafe")
        self.assertEqual(merged["context"]["timestamp_utc"],
                         "2026-07-30T12:00:00Z")

    def test_stamp_now_writes_iso_utc(self):
        rows = [bench_row("BM_A", 100.0)]
        baseline = self.seed_baseline(rows)
        write_report(self.path("run.json"), rows)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), "--stamp-now",
                               self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(self.path("out.json")) as f:
            merged = json.load(f)
        stamp = merged["context"]["timestamp_utc"]
        self.assertRegex(stamp, r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")

    def test_no_stamp_flags_leave_context_unkeyed(self):
        rows = [bench_row("BM_A", 100.0)]
        baseline = self.seed_baseline(rows)
        write_report(self.path("run.json"), rows)
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(self.path("out.json")) as f:
            merged = json.load(f)
        self.assertNotIn("commit_sha", merged["context"])
        self.assertNotIn("timestamp_utc", merged["context"])

    def test_canonical_spec_context_forwarded_into_merged_artifact(self):
        # Benches stamp the canonical to_spec() strings into their report
        # context; the merge must forward them so BENCH_ci.json joins
        # across commits by exact configuration.
        rows = [bench_row("BM_A", 100.0)]
        baseline = self.seed_baseline(rows)
        write_report(self.path("run.json"), rows, context={
            "estimator_spec": "ACBM:alpha=1000,beta=8,gamma=0.25",
            "sweep_config": "qps=16:22:30,range=15,halfpel=1,me_lambda=0,"
                            "mode=heuristic,deblock=0,slices=1,threads=1",
        })
        result = self.run_gate("--baseline", baseline, "--out",
                               self.path("out.json"), self.path("run.json"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        with open(self.path("out.json")) as f:
            merged = json.load(f)
        self.assertEqual(merged["context"]["estimator_spec"],
                         "ACBM:alpha=1000,beta=8,gamma=0.25")
        self.assertIn("qps=16:22:30", merged["context"]["sweep_config"])


if __name__ == "__main__":
    unittest.main()
