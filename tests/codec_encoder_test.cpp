// Encoder behaviour: frame types, rate/quality trends, SKIP economics,
// bit accounting, and configuration validation. (Decoder parity is covered
// in codec_roundtrip_test.cpp.)

#include "codec/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/acbm.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "synth/sequences.hpp"
#include "video/psnr.hpp"
#include "test_support.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> small_sequence(int frames, int fps = 30) {
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = {64, 48};  // small for fast tests
  req.frame_count = frames;
  req.fps = fps;
  return synth::make_sequence(req);
}

EncoderConfig config_with(int qp, int range = 7) {
  EncoderConfig c;
  c.qp = qp;
  c.search_range = range;
  return c;
}

TEST(Encoder, RejectsBadGeometryAndQp) {
  me::Pbm pbm;
  EXPECT_THROW(Encoder({60, 48}, config_with(16), pbm),
               std::invalid_argument);
  EXPECT_THROW(Encoder({64, 48}, config_with(0), pbm), std::invalid_argument);
  EXPECT_THROW(Encoder({64, 48}, config_with(32), pbm),
               std::invalid_argument);
}

TEST(Encoder, FirstFrameIsIntra) {
  const auto frames = small_sequence(2);
  me::Pbm pbm;
  Encoder enc({64, 48}, config_with(10), pbm);
  const FrameReport r0 = enc.encode_frame(frames[0]);
  EXPECT_TRUE(r0.intra);
  EXPECT_EQ(r0.intra_mbs, (64 / 16) * (48 / 16));
  EXPECT_EQ(r0.inter_mbs, 0);
  EXPECT_EQ(r0.me_positions, 0u);
  const FrameReport r1 = enc.encode_frame(frames[1]);
  EXPECT_FALSE(r1.intra);
  EXPECT_GT(r1.me_positions, 0u);
}

TEST(Encoder, IntraPeriodForcesRefreshes) {
  const auto frames = small_sequence(5);
  me::Pbm pbm;
  EncoderConfig cfg = config_with(12);
  cfg.intra_period = 2;
  Encoder enc({64, 48}, cfg, pbm);
  std::vector<bool> intra;
  for (const auto& f : frames) {
    intra.push_back(enc.encode_frame(f).intra);
  }
  EXPECT_EQ(intra, (std::vector<bool>{true, false, true, false, true}));
}

TEST(Encoder, LowerQpMoreBitsBetterPsnr) {
  const auto frames = small_sequence(4);
  std::uint64_t bits_hi_qp = 0;
  std::uint64_t bits_lo_qp = 0;
  double psnr_hi_qp = 0.0;
  double psnr_lo_qp = 0.0;
  for (const int qp : {28, 6}) {
    me::Pbm pbm;
    Encoder enc({64, 48}, config_with(qp), pbm);
    std::uint64_t bits = 0;
    double psnr = 0.0;
    for (const auto& f : frames) {
      const FrameReport r = enc.encode_frame(f);
      bits += r.bits;
      psnr += r.psnr_y;
    }
    if (qp == 28) {
      bits_hi_qp = bits;
      psnr_hi_qp = psnr;
    } else {
      bits_lo_qp = bits;
      psnr_lo_qp = psnr;
    }
  }
  EXPECT_GT(bits_lo_qp, bits_hi_qp);
  EXPECT_GT(psnr_lo_qp, psnr_hi_qp);
}

TEST(Encoder, StaticSceneSkipsAlmostEverything) {
  // Identical frames: after the intra frame every MB is COD=1 (1 bit).
  video::Frame still(64, 48);
  still.y() = acbm::test::random_plane(64, 48, 1);
  still.extend_borders();
  me::FullSearch fsbm;
  Encoder enc({64, 48}, config_with(16), fsbm);
  const FrameReport r0 = enc.encode_frame(still);
  const FrameReport r = enc.encode_frame(still);
  EXPECT_EQ(r.skip_mbs, 12);
  EXPECT_EQ(r.inter_mbs, 0);
  // Frame cost ≈ sync+header+12 COD bits, byte-aligned.
  EXPECT_LT(r.bits, 64u);
  // Skipped MBs copy the previous reconstruction, so quality is exactly the
  // intra frame's quality — no drift.
  EXPECT_NEAR(r.psnr_y, r0.psnr_y, 1e-9);
}

TEST(Encoder, SkipDisabledStillCodes) {
  video::Frame still(64, 48);
  still.y() = acbm::test::random_plane(64, 48, 2);
  still.extend_borders();
  me::FullSearch fsbm;
  EncoderConfig cfg = config_with(16);
  cfg.allow_skip = false;
  Encoder enc({64, 48}, cfg, fsbm);
  (void)enc.encode_frame(still);
  const FrameReport r = enc.encode_frame(still);
  EXPECT_EQ(r.skip_mbs, 0);
  EXPECT_EQ(r.inter_mbs, 12);
}

TEST(Encoder, BitCategoriesSumToTotal) {
  const auto frames = small_sequence(3);
  me::FullSearch fsbm;
  Encoder enc({64, 48}, config_with(14), fsbm);
  for (const auto& f : frames) {
    const FrameReport r = enc.encode_frame(f);
    // Alignment padding (≤7 bits/frame) is the only uncategorised residue.
    EXPECT_LE(r.header_bits + r.mv_bits + r.coeff_bits, r.bits);
    EXPECT_GE(r.header_bits + r.mv_bits + r.coeff_bits + 7, r.bits);
  }
}

TEST(Encoder, ReportsFullSearchBlocks) {
  const auto frames = small_sequence(2);
  me::FullSearch fsbm;
  Encoder enc({64, 48}, config_with(16), fsbm);
  (void)enc.encode_frame(frames[0]);
  const FrameReport r = enc.encode_frame(frames[1]);
  EXPECT_EQ(r.full_search_blocks, 12u);  // FSBM runs on every MB
  // Test config uses p = 7: (2·7+1)² + 8 half-pel candidates per MB.
  EXPECT_EQ(r.me_positions, 12u * ((7 * 2 + 1) * (7 * 2 + 1) + 8));
}

TEST(Encoder, PbmUsesFarFewerPositionsThanFsbm) {
  const auto frames = small_sequence(3);
  std::uint64_t positions_fsbm = 0;
  std::uint64_t positions_pbm = 0;
  {
    me::FullSearch fsbm;
    Encoder enc({64, 48}, config_with(16), fsbm);
    for (const auto& f : frames) {
      positions_fsbm += enc.encode_frame(f).me_positions;
    }
  }
  {
    me::Pbm pbm;
    Encoder enc({64, 48}, config_with(16), pbm);
    for (const auto& f : frames) {
      positions_pbm += enc.encode_frame(f).me_positions;
    }
  }
  EXPECT_LT(positions_pbm * 5, positions_fsbm);
}

TEST(Encoder, MeFieldExposedAndSized) {
  const auto frames = small_sequence(2);
  me::Pbm pbm;
  Encoder enc({64, 48}, config_with(16), pbm);
  (void)enc.encode_frame(frames[0]);
  (void)enc.encode_frame(frames[1]);
  EXPECT_EQ(enc.last_me_field().mbs_x(), 4);
  EXPECT_EQ(enc.last_me_field().mbs_y(), 3);
  EXPECT_EQ(enc.last_coded_field().mbs_x(), 4);
}

TEST(Encoder, ReconstructionMatchesReportedPsnr) {
  const auto frames = small_sequence(2);
  me::Pbm pbm;
  Encoder enc({64, 48}, config_with(8), pbm);
  const FrameReport r = enc.encode_frame(frames[0]);
  EXPECT_NEAR(video::psnr_luma(frames[0], enc.last_recon()), r.psnr_y, 1e-9);
}

TEST(Encoder, FinishProducesMagicHeader) {
  me::Pbm pbm;
  Encoder enc({64, 48}, config_with(16), pbm);
  const auto bytes = enc.finish();
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 'A');
  EXPECT_EQ(bytes[1], 'C');
  EXPECT_EQ(bytes[2], 'V');
  EXPECT_EQ(bytes[3], '1');
  EXPECT_EQ((bytes[4] << 8) | bytes[5], 64);
  EXPECT_EQ((bytes[6] << 8) | bytes[7], 48);
}

TEST(Encoder, AcbmStatsVisibleThroughBorrowedEstimator) {
  const auto frames = small_sequence(3);
  core::Acbm acbm;
  Encoder enc({64, 48}, config_with(16), acbm);
  for (const auto& f : frames) {
    (void)enc.encode_frame(f);
  }
  EXPECT_EQ(acbm.stats().blocks, 2u * 12u);  // two P frames × 12 MBs
  EXPECT_GT(acbm.stats().total_positions, 0u);
}

}  // namespace
}  // namespace acbm::codec
