#pragma once
// Shared fixtures/builders for the test suite.

#include <utility>

#include "me/estimator.hpp"
#include "synth/texture.hpp"
#include "util/rng.hpp"
#include "video/frame.hpp"
#include "video/interp.hpp"
#include "video/pad.hpp"
#include "video/plane.hpp"

namespace acbm::test {

/// A plane filled with uniform random samples — maximally textured content,
/// which makes block matches unique (good for optimality checks).
inline video::Plane random_plane(int w, int h, std::uint64_t seed) {
  video::Plane p(w, h);
  util::Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    std::uint8_t* row = p.row(y);
    for (int x = 0; x < w; ++x) {
      row[x] = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  p.extend_border();
  return p;
}

/// A smooth low-texture plane (ramp + small sinusoid-free) for ambiguous-
/// match scenarios.
inline video::Plane smooth_plane(int w, int h, int base = 96) {
  video::Plane p(w, h);
  for (int y = 0; y < h; ++y) {
    std::uint8_t* row = p.row(y);
    for (int x = 0; x < w; ++x) {
      row[x] = static_cast<std::uint8_t>((base + (x + y) / 8) & 0xFF);
    }
  }
  p.extend_border();
  return p;
}

/// Builds (reference, current) where current equals reference shifted by the
/// integer displacement (dx, dy): block matching from current to reference
/// should find mv = (2·dx, 2·dy) in half-pel units.
inline std::pair<video::Plane, video::Plane> shifted_pair(
    int w, int h, int dx, int dy, std::uint64_t seed, int margin = 24) {
  const video::Plane big = random_plane(w + 2 * margin, h + 2 * margin, seed);
  video::Plane ref = video::crop(big, margin, margin, w, h);
  video::Plane cur = video::crop(big, margin + dx, margin + dy, w, h);
  return {std::move(ref), std::move(cur)};
}

/// Like shifted_pair(), but over *smooth* fractal texture whose SAD landscape
/// decreases monotonically toward the true displacement — the terrain the
/// gradient-following fast searches (TSS/4SS/DS/CDS) are designed for.
/// (On iid random content those algorithms legitimately get lost.)
inline std::pair<video::Plane, video::Plane> smooth_shifted_pair(
    int w, int h, int dx, int dy, std::uint64_t seed, int margin = 24) {
  synth::TextureSpec spec;
  spec.seed = seed;
  spec.scale = 0.025;  // feature size ≫ search range: cone-shaped SAD
  spec.octaves = 2;
  spec.amplitude = 90.0;
  const video::Plane big =
      synth::make_noise_texture(w + 2 * margin, h + 2 * margin, spec);
  video::Plane ref = video::crop(big, margin, margin, w, h);
  video::Plane cur = video::crop(big, margin + dx, margin + dy, w, h);
  return {std::move(ref), std::move(cur)};
}

/// Standard BlockContext for a block at (x, y) with a ±p window.
struct SearchFixture {
  video::Plane ref;
  video::Plane cur;
  video::HalfpelPlanes ref_half;

  SearchFixture(video::Plane r, video::Plane c)
      : ref(std::move(r)), cur(std::move(c)), ref_half(ref) {}

  [[nodiscard]] me::BlockContext context(int x, int y, int range = 15) const {
    me::BlockContext ctx;
    ctx.cur = &cur;
    ctx.ref = &ref_half;
    ctx.x = x;
    ctx.y = y;
    ctx.bx = x / me::kBlockSize;
    ctx.by = y / me::kBlockSize;
    ctx.window = me::unrestricted_window(range);
    return ctx;
  }
};

}  // namespace acbm::test
