// sim::Channel — seeded determinism, the spec grammar, the loss models'
// statistics, and the contract the resilience pipeline is built on: loss=0
// is the identity, and a dropped slice is always concealed (never silently
// mis-decoded).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/builtin_estimators.hpp"
#include "sim/channel.hpp"
#include "synth/sequences.hpp"
#include "util/kv.hpp"
#include "video/psnr.hpp"

namespace acbm::sim {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames,
                                        video::PictureSize size) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = size;
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

std::vector<std::uint8_t> encode_stream(const std::vector<video::Frame>& in,
                                        const codec::EncoderConfig& config) {
  const auto est = core::builtin_estimators().create("ACBM");
  codec::Encoder encoder({in[0].width(), in[0].height()}, config, *est);
  for (const video::Frame& frame : in) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

std::vector<std::uint8_t> sliced_stream(int slices, int intra_period = 0,
                                        int frames = 8) {
  const auto seq = test_sequence("foreman", frames, {64, 48});
  codec::EncoderConfig config;
  config.qp = 16;
  config.slices = slices;
  config.intra_period = intra_period;
  return encode_stream(seq, config);
}

// --- Spec grammar ----------------------------------------------------------

TEST(ChannelSpec, ParsesAndCanonicalises) {
  const ChannelConfig c =
      channel_config_from_spec("gilbert: loss=0.05, burst=8, seed=7");
  EXPECT_EQ(c.model, ChannelModel::kGilbert);
  EXPECT_DOUBLE_EQ(c.loss, 0.05);
  EXPECT_EQ(c.burst, 8);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.hit, ChannelHit::kDrop);
  EXPECT_EQ(to_spec(c), "gilbert:loss=0.05,burst=8,seed=7,hit=drop,flips=3");

  const ChannelConfig iid =
      channel_config_from_spec("iid:loss=0.1,seed=3,hit=flip,flips=5");
  EXPECT_EQ(to_spec(iid), "iid:loss=0.1,seed=3,hit=flip,flips=5");

  const ChannelConfig trunc = channel_config_from_spec("trunc:at=0.25");
  EXPECT_EQ(trunc.model, ChannelModel::kTrunc);
  EXPECT_EQ(to_spec(trunc), "trunc:at=0.25");
}

TEST(ChannelSpec, RoundTripsThroughCanonicalForm) {
  for (const char* spec :
       {"iid:loss=0.05,seed=1", "gilbert:loss=0.2,burst=4,seed=99,hit=header",
        "iid:loss=0,seed=42,hit=flip,flips=1", "trunc:at=0.5",
        "gilbert:loss=0.5,burst=1,seed=0"}) {
    const ChannelConfig once = channel_config_from_spec(spec);
    const ChannelConfig twice = channel_config_from_spec(to_spec(once));
    EXPECT_EQ(to_spec(once), to_spec(twice)) << spec;
    EXPECT_EQ(once.model, twice.model) << spec;
    EXPECT_DOUBLE_EQ(once.loss, twice.loss) << spec;
    EXPECT_EQ(once.burst, twice.burst) << spec;
    EXPECT_EQ(once.seed, twice.seed) << spec;
    EXPECT_EQ(once.hit, twice.hit) << spec;
    EXPECT_EQ(once.flips, twice.flips) << spec;
    EXPECT_DOUBLE_EQ(once.at, twice.at) << spec;
  }
}

TEST(ChannelSpec, RejectsBadSpecs) {
  for (const char* bad :
       {"", "rayleigh:loss=0.1", "iid:chance=0.1", "iid:loss=1.5",
        "iid:loss=-0.1", "gilbert:loss=0.1,burst=0", "iid:loss=0.1,hit=melt",
        "iid:loss=0.1,flips=0", "trunc:at=1.5", "trunc:loss=0.1",
        "gilbert:loss", "iid:loss=abc"}) {
    EXPECT_THROW((void)channel_config_from_spec(bad), util::SpecError) << bad;
  }
}

TEST(ChannelSpec, UnknownKeyErrorEmbedsUsage) {
  try {
    (void)channel_config_from_spec("gilbert:bogus=1");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("gilbert"), std::string::npos);
    EXPECT_NE(message.find("burst"), std::string::npos);
  }
}

// --- Seeded determinism ----------------------------------------------------

TEST(Channel, SameSpecSameRealization) {
  const Channel a{std::string_view("gilbert:loss=0.3,burst=8,seed=7")};
  const Channel b{std::string_view("gilbert:loss=0.3,burst=8,seed=7")};
  EXPECT_EQ(a.realize(4096), b.realize(4096));

  const std::vector<std::uint8_t> stream = sliced_stream(4);
  EXPECT_EQ(a.apply(stream), b.apply(stream));
  // Stateless across calls: a second apply on the same object is identical.
  EXPECT_EQ(a.apply(stream), a.apply(stream));
}

TEST(Channel, DifferentSeedDifferentRealization) {
  const Channel a{std::string_view("iid:loss=0.5,seed=1")};
  const Channel b{std::string_view("iid:loss=0.5,seed=2")};
  EXPECT_NE(a.realize(4096), b.realize(4096));
}

TEST(Channel, RealizeMatchesApplyLossDecisions) {
  // hit=drop rewrites each lost unit's directory length to 0, so the loss
  // sequence is recoverable from the report: dropped == count of true.
  const Channel channel{std::string_view("gilbert:loss=0.25,burst=4,seed=11")};
  const std::vector<std::uint8_t> stream = sliced_stream(4);
  ChannelReport report;
  (void)channel.apply(stream, &report);
  const std::vector<bool> loss =
      channel.realize(static_cast<std::size_t>(report.units));
  const auto lost = static_cast<std::uint64_t>(
      std::count(loss.begin(), loss.end(), true));
  EXPECT_EQ(report.dropped, lost);
}

// --- Loss-model statistics -------------------------------------------------

TEST(Channel, IidLossRateConverges) {
  const Channel channel{std::string_view("iid:loss=0.2,seed=5")};
  const std::vector<bool> loss = channel.realize(200000);
  const double rate = static_cast<double>(std::count(loss.begin(), loss.end(),
                                                     true)) /
                      static_cast<double>(loss.size());
  EXPECT_NEAR(rate, 0.2, 0.01);
}

TEST(Channel, GilbertMatchesStationaryLossAndMeanBurst) {
  const Channel channel{
      std::string_view("gilbert:loss=0.2,burst=8,seed=13")};
  const std::vector<bool> loss = channel.realize(400000);
  const double rate = static_cast<double>(std::count(loss.begin(), loss.end(),
                                                     true)) /
                      static_cast<double>(loss.size());
  EXPECT_NEAR(rate, 0.2, 0.02);

  // Mean run length of consecutive lost units should approach `burst`.
  std::size_t bursts = 0;
  std::size_t lost_units = 0;
  bool in_burst = false;
  for (const bool lost : loss) {
    if (lost) {
      ++lost_units;
      if (!in_burst) {
        ++bursts;
        in_burst = true;
      }
    } else {
      in_burst = false;
    }
  }
  ASSERT_GT(bursts, 0u);
  const double mean_burst =
      static_cast<double>(lost_units) / static_cast<double>(bursts);
  EXPECT_NEAR(mean_burst, 8.0, 1.5);

  // Burstiness is the model's point: at equal loss, gilbert produces far
  // fewer (longer) loss events than iid.
  const Channel iid{std::string_view("iid:loss=0.2,seed=13")};
  const std::vector<bool> iid_loss = iid.realize(400000);
  std::size_t iid_bursts = 0;
  in_burst = false;
  for (const bool lost : iid_loss) {
    if (lost && !in_burst) {
      ++iid_bursts;
    }
    in_burst = lost;
  }
  EXPECT_LT(bursts * 3, iid_bursts);
}

// --- Identity and structural contracts -------------------------------------

TEST(Channel, LossZeroIsByteIdentity) {
  const std::vector<std::uint8_t> stream = sliced_stream(4, /*intra=*/2);
  for (const char* spec :
       {"iid:loss=0,seed=7", "gilbert:loss=0,burst=8,seed=7", "trunc:at=1"}) {
    const Channel channel{std::string_view(spec)};
    ChannelReport report;
    EXPECT_EQ(channel.apply(stream, &report), stream) << spec;
    EXPECT_EQ(report.dropped, 0u) << spec;
    EXPECT_EQ(report.flipped, 0u) << spec;
    EXPECT_EQ(report.directory_hits, 0u) << spec;
    EXPECT_EQ(report.bytes_in, report.bytes_out) << spec;
  }

  // And the decoder confirms: zero concealments, same samples.
  const Channel identity{std::string_view("gilbert:loss=0,burst=8,seed=7")};
  codec::Decoder clean(stream, codec::DecoderConfig{});
  codec::Decoder channeled(identity.apply(stream), codec::DecoderConfig{});
  const codec::DecodeReport clean_report = clean.decode_stream();
  const codec::DecodeReport channeled_report = channeled.decode_stream();
  EXPECT_EQ(channeled_report.concealed_slices, 0u);
  EXPECT_EQ(channeled_report.sample_digest, clean_report.sample_digest);
}

TEST(Channel, TruncKeepsExactPrefix) {
  const std::vector<std::uint8_t> stream = sliced_stream(2);
  const Channel channel{std::string_view("trunc:at=0.5")};
  const std::vector<std::uint8_t> cut = channel.apply(stream);
  const std::size_t expect = stream.size() / 2;
  ASSERT_EQ(cut.size(), expect);
  EXPECT_TRUE(std::equal(cut.begin(), cut.end(), stream.begin()));

  const Channel zero{std::string_view("trunc:at=0")};
  EXPECT_TRUE(zero.apply(stream).empty());
}

TEST(Channel, DroppedSlicesAreAlwaysConcealed) {
  // hit=drop leaves a zero-length payload, which can never decode, so every
  // dropped slice must surface as a concealment — never as silently wrong
  // samples accepted by the payload decoder.
  const std::vector<std::uint8_t> stream = sliced_stream(4, /*intra=*/2);
  const Channel channel{std::string_view("iid:loss=0.3,seed=21,hit=drop")};
  ChannelReport report;
  const std::vector<std::uint8_t> damaged = channel.apply(stream, &report);
  ASSERT_GT(report.dropped, 0u);

  codec::Decoder decoder(damaged, codec::DecoderConfig{});
  const codec::DecodeReport decode_report = decoder.decode_stream();
  EXPECT_EQ(decode_report.error_class, codec::DecodeErrorClass::kNone);
  EXPECT_EQ(decode_report.concealed_slices, report.dropped);
}

TEST(Channel, V1StreamsDamageInFixedCells) {
  const auto seq = test_sequence("carphone", 4, {64, 48});
  codec::EncoderConfig config;
  config.qp = 14;
  const std::vector<std::uint8_t> stream = encode_stream(seq, config);
  ASSERT_EQ(stream[3], 0x31u);  // ACV1

  const Channel channel{std::string_view("iid:loss=0.5,seed=9,hit=drop")};
  ChannelReport report;
  const std::vector<std::uint8_t> damaged = channel.apply(stream, &report);
  // Drop zero-fills 64-byte cells, so V1 stream length is preserved.
  EXPECT_EQ(damaged.size(), stream.size());
  EXPECT_EQ(report.units, (stream.size() - 12 + 63) / 64);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_NE(damaged, stream);
}

TEST(Channel, MalformedInputPassesThrough) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  const Channel channel{std::string_view("iid:loss=0.9,seed=1")};
  EXPECT_EQ(channel.apply(garbage), garbage);
  EXPECT_TRUE(channel.apply({}).empty());
}

// --- Concealment quality floor ---------------------------------------------

TEST(Channel, ConcealmentPsnrFloorAtFivePercentLoss) {
  // The resilience configuration the bench/CI gate pins: slices=4, intra
  // period 8, gilbert 5% loss. Concealment must hold a sane quality floor
  // against the clean reconstruction — a regression here means slices are
  // being lost without concealment or resync is eating whole frames.
  const auto seq = test_sequence("foreman", 12, {64, 48});
  codec::EncoderConfig config;
  config.qp = 16;
  config.slices = 4;
  config.intra_period = 8;
  const std::vector<std::uint8_t> stream = encode_stream(seq, config);

  std::vector<video::Frame> clean;
  codec::Decoder clean_decoder(stream, codec::DecoderConfig{});
  clean_decoder.decode_stream(&clean);

  const Channel channel{std::string_view("gilbert:loss=0.05,burst=8,seed=7")};
  codec::DecoderConfig resync;
  resync.conceal = codec::Concealment::kResync;
  std::vector<video::Frame> decoded;
  codec::Decoder decoder(channel.apply(stream), resync);
  const codec::DecodeReport report = decoder.decode_stream(&decoded);
  EXPECT_EQ(report.error_class, codec::DecodeErrorClass::kNone);
  ASSERT_FALSE(decoded.empty());

  double psnr_sum = 0.0;
  const std::size_t pairs = std::min(decoded.size(), clean.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    psnr_sum += std::min(99.0, video::psnr_luma(decoded[i], clean[i]));
  }
  const double mean_psnr = psnr_sum / static_cast<double>(clean.size());
  EXPECT_GE(mean_psnr, 20.0);
}

}  // namespace
}  // namespace acbm::sim
