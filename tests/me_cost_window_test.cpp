// Motion cost model (J = D + λ·R) and search windows.

#include <gtest/gtest.h>

#include "me/cost.hpp"
#include "me/window.hpp"
#include "util/expgolomb.hpp"

namespace acbm::me {
namespace {

TEST(MvRateBits, ZeroDifferenceIsCheapest) {
  const Mv pred{4, -6};
  const std::uint32_t base = mv_rate_bits(pred, pred);
  EXPECT_EQ(base, 2u);  // se(0) twice
  for (int dx = -4; dx <= 4; ++dx) {
    for (int dy = -4; dy <= 4; ++dy) {
      EXPECT_GE(mv_rate_bits({pred.x + dx, pred.y + dy}, pred), base);
    }
  }
}

TEST(MvRateBits, MonotoneInComponentMagnitude) {
  for (int m = 0; m < 60; ++m) {
    EXPECT_LE(mv_rate_bits({m, 0}, {}), mv_rate_bits({m + 1, 0}, {}));
    EXPECT_LE(mv_rate_bits({0, -m}, {}), mv_rate_bits({0, -(m + 1)}, {}));
  }
}

TEST(MvRateBits, MatchesExpGolombLengths) {
  const Mv mv{7, -3};
  const Mv pred{2, 1};
  EXPECT_EQ(mv_rate_bits(mv, pred),
            static_cast<std::uint32_t>(util::se_bit_length(5) +
                                       util::se_bit_length(-4)));
}

TEST(MotionCost, LambdaZeroIsPureSad) {
  const MotionCost cost(0.0, {0, 0});
  EXPECT_DOUBLE_EQ(cost.cost(500, {30, 30}), 500.0);
  EXPECT_EQ(cost.cost_fixed(500, {30, 30}), 500ull << 8);
}

TEST(MotionCost, RateTermPenalisesLongVectors) {
  const MotionCost cost(10.0, {0, 0});
  EXPECT_LT(cost.cost(100, {0, 0}), cost.cost(100, {20, 20}));
  EXPECT_LT(cost.cost_fixed(100, {0, 0}), cost.cost_fixed(100, {20, 20}));
}

TEST(MotionCost, ForQpScalesLambda) {
  const MotionCost c10 = MotionCost::for_qp(10);
  const MotionCost c20 = MotionCost::for_qp(20);
  EXPECT_DOUBLE_EQ(c10.lambda(), 0.92 * 10);
  EXPECT_DOUBLE_EQ(c20.lambda(), 2 * c10.lambda());
}

TEST(MotionCost, FixedAndFloatAgreeOnOrdering) {
  const MotionCost cost(3.7, {2, 2});
  const Mv a{0, 0};
  const Mv b{14, -9};
  const bool float_order = cost.cost(200, a) < cost.cost(230, b);
  const bool fixed_order = cost.cost_fixed(200, a) < cost.cost_fixed(230, b);
  EXPECT_EQ(float_order, fixed_order);
}

TEST(SearchWindow, UnrestrictedBounds) {
  const SearchWindow w = unrestricted_window(15);
  EXPECT_EQ(w.min_x, -30);
  EXPECT_EQ(w.max_x, 30);
  EXPECT_TRUE(w.contains({30, -30}));
  EXPECT_FALSE(w.contains({31, 0}));
  EXPECT_FALSE(w.contains({0, -31}));
}

TEST(SearchWindow, FullpelPositionCountIsPaper961) {
  EXPECT_EQ(unrestricted_window(15).fullpel_positions(), 961);
  EXPECT_EQ(unrestricted_window(7).fullpel_positions(), 225);
  EXPECT_EQ(unrestricted_window(1).fullpel_positions(), 9);
}

TEST(SearchWindow, ClampProjectsComponentwise) {
  const SearchWindow w = unrestricted_window(4);
  EXPECT_EQ(w.clamp({100, -3}), (Mv{8, -3}));
  EXPECT_EQ(w.clamp({-100, 100}), (Mv{-8, 8}));
  EXPECT_EQ(w.clamp({3, 3}), (Mv{3, 3}));
}

TEST(SearchWindow, RestrictedClampsAtPictureEdges) {
  // Top-left block of a QCIF picture with p=15: negative displacements are
  // cut to the picture (slack 0).
  const SearchWindow w = restricted_window(15, 0, 0, 16, 16, 176, 144, 0);
  EXPECT_EQ(w.min_x, 0);
  EXPECT_EQ(w.min_y, 0);
  EXPECT_EQ(w.max_x, 30);
  EXPECT_EQ(w.max_y, 30);
}

TEST(SearchWindow, RestrictedInteriorBlockUnchanged) {
  const SearchWindow w = restricted_window(7, 80, 64, 16, 16, 176, 144, 0);
  EXPECT_EQ(w.min_x, -14);
  EXPECT_EQ(w.max_x, 14);
  EXPECT_EQ(w.min_y, -14);
  EXPECT_EQ(w.max_y, 14);
}

TEST(SearchWindow, RestrictedBottomRightBlock) {
  const SearchWindow w =
      restricted_window(15, 160, 128, 16, 16, 176, 144, 0);
  EXPECT_EQ(w.max_x, 0);
  EXPECT_EQ(w.max_y, 0);
  EXPECT_EQ(w.min_x, -30);
}

TEST(Mv, HelpersBehave) {
  EXPECT_TRUE((Mv{4, -6}).is_integer());
  EXPECT_FALSE((Mv{3, 0}).is_integer());
  EXPECT_EQ((Mv{-7, 4}).linf(), 7);
  EXPECT_EQ(mv_from_fullpel(3, -2), (Mv{6, -4}));
  EXPECT_EQ((Mv{1, 2}) + (Mv{3, 4}), (Mv{4, 6}));
  EXPECT_EQ((Mv{1, 2}) - (Mv{3, 4}), (Mv{-2, -2}));
}

}  // namespace
}  // namespace acbm::me
