// RD sweep driver: estimator factory, sweep mechanics, and the qualitative
// relations the paper's Figs. 5/6 and Table 1 rest on (small scale here;
// the benches run the full-size versions).

#include "analysis/rd_sweep.hpp"

#include <gtest/gtest.h>

#include "synth/sequences.hpp"

namespace acbm::analysis {
namespace {

std::vector<video::Frame> sequence(const std::string& name, int frames,
                                   int fps = 30) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = fps;
  return synth::make_sequence(req);
}

SweepConfig small_config(std::vector<int> qps) {
  SweepConfig cfg;
  cfg.qps = std::move(qps);
  cfg.search_range = 7;
  return cfg;
}

TEST(AlgorithmNames, MatchPaperLegends) {
  EXPECT_EQ(algorithm_name(Algorithm::kFsbm), "FSBM");
  EXPECT_EQ(algorithm_name(Algorithm::kPbm), "PBM");
  EXPECT_EQ(algorithm_name(Algorithm::kAcbm), "ACBM");
  EXPECT_EQ(algorithm_name(Algorithm::kTss), "TSS");
  EXPECT_EQ(algorithm_name(Algorithm::kNtss), "NTSS");
  EXPECT_EQ(algorithm_name(Algorithm::kFss), "4SS");
  EXPECT_EQ(algorithm_name(Algorithm::kDs), "DS");
  EXPECT_EQ(algorithm_name(Algorithm::kHexbs), "HEXBS");
  EXPECT_EQ(algorithm_name(Algorithm::kCds), "CDS");
  EXPECT_EQ(algorithm_name(Algorithm::kFsbmAdaptiveDecimation), "FSBM-adec");
  EXPECT_EQ(algorithm_name(Algorithm::kFsbmSubsampled), "FSBM-sub");
  EXPECT_EQ(all_algorithms().size(), 11u);
}

TEST(MakeEstimator, ProducesCorrectlyNamedInstances) {
  for (Algorithm a : all_algorithms()) {
    const auto est = make_estimator(a);
    ASSERT_NE(est, nullptr);
    EXPECT_EQ(est->name(), algorithm_name(a));
  }
}

TEST(RunRdSweep, ProducesOnePointPerQp) {
  const auto frames = sequence("miss_america", 3);
  const RdCurve curve = run_rd_sweep(frames, 30, Algorithm::kPbm,
                                     small_config({10, 20, 30}),
                                     "miss_america");
  EXPECT_EQ(curve.sequence, "miss_america");
  EXPECT_EQ(curve.algorithm, "PBM");
  EXPECT_EQ(curve.fps, 30);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_EQ(curve.points[0].qp, 10);
  EXPECT_EQ(curve.points[2].qp, 30);
}

TEST(RunRdSweep, RateAndQualityDecreaseWithQp) {
  const auto frames = sequence("carphone", 4);
  const RdCurve curve = run_rd_sweep(frames, 30, Algorithm::kPbm,
                                     small_config({6, 16, 28}), "carphone");
  EXPECT_GT(curve.points[0].kbps, curve.points[1].kbps);
  EXPECT_GT(curve.points[1].kbps, curve.points[2].kbps);
  EXPECT_GT(curve.points[0].psnr_y, curve.points[1].psnr_y);
  EXPECT_GT(curve.points[1].psnr_y, curve.points[2].psnr_y);
}

TEST(RunRdSweep, EmptyFramesThrow) {
  const std::vector<video::Frame> empty;
  EXPECT_THROW(run_rd_sweep(empty, 30, Algorithm::kPbm,
                            small_config({16}), "x"),
               std::invalid_argument);
}

TEST(RunRdPoint, FsbmPositionsMatchTheory) {
  const auto frames = sequence("table", 3);
  const auto est = make_estimator(Algorithm::kFsbm);
  const RdPoint p = run_rd_point(frames, 30, *est, 16, small_config({16}));
  EXPECT_DOUBLE_EQ(p.avg_positions, (15 * 15) + 8);  // p=7: 225+8
  EXPECT_DOUBLE_EQ(p.full_search_fraction, 1.0);
}

TEST(RunRdPoint, AcbmCheaperThanFsbmAndBetterThanPbmQuality) {
  // The paper's two headline claims, miniaturised.
  const auto frames = sequence("table", 5);
  const SweepConfig cfg = small_config({16});

  const auto fsbm = make_estimator(Algorithm::kFsbm);
  const auto pbm = make_estimator(Algorithm::kPbm);
  const auto acbm = make_estimator(Algorithm::kAcbm);

  const RdPoint pf = run_rd_point(frames, 30, *fsbm, 16, cfg);
  const RdPoint pp = run_rd_point(frames, 30, *pbm, 16, cfg);
  const RdPoint pa = run_rd_point(frames, 30, *acbm, 16, cfg);

  EXPECT_LT(pa.avg_positions, pf.avg_positions);
  EXPECT_GT(pa.avg_positions, pp.avg_positions);
  // Quality: ACBM within a whisker of FSBM, PBM at or below ACBM.
  EXPECT_GT(pa.psnr_y, pf.psnr_y - 0.5);
  EXPECT_GE(pa.psnr_y, pp.psnr_y - 0.05);
}

TEST(RunRdPoint, AcbmCriticalFractionRisesAtLowQp) {
  const auto frames = sequence("foreman", 4);
  const SweepConfig cfg = small_config({16});
  const auto acbm = make_estimator(Algorithm::kAcbm);
  const RdPoint lo = run_rd_point(frames, 30, *acbm, 4, cfg);
  const RdPoint hi = run_rd_point(frames, 30, *acbm, 30, cfg);
  EXPECT_GE(lo.full_search_fraction, hi.full_search_fraction);
  EXPECT_GE(lo.avg_positions, hi.avg_positions);
}

TEST(RunRdPoint, EstimatorResetBetweenRuns) {
  // Reusing one estimator across runs must not leak state (ACBM stats are
  // reset; complexity numbers identical for identical inputs).
  const auto frames = sequence("carphone", 3);
  const SweepConfig cfg = small_config({16});
  const auto acbm = make_estimator(Algorithm::kAcbm);
  const RdPoint a = run_rd_point(frames, 30, *acbm, 16, cfg);
  const RdPoint b = run_rd_point(frames, 30, *acbm, 16, cfg);
  EXPECT_DOUBLE_EQ(a.avg_positions, b.avg_positions);
  EXPECT_DOUBLE_EQ(a.kbps, b.kbps);
  EXPECT_DOUBLE_EQ(a.psnr_y, b.psnr_y);
}

TEST(RunRdPoint, MvBitsShareNonTrivialForFsbm) {
  const auto frames = sequence("foreman", 3);
  const auto fsbm = make_estimator(Algorithm::kFsbm);
  const RdPoint p =
      run_rd_point(frames, 30, *fsbm, 30, small_config({30}));
  EXPECT_GT(p.mv_bits_share, 0.0);
  EXPECT_LT(p.mv_bits_share, 1.0);
}

TEST(RunRdPoint, PbmFieldSmootherThanFsbm) {
  // §2.3: FSBM fields are incoherent relative to PBM's. The effect lives in
  // ambiguous (flat/noisy) regions, so use the low-texture clip at QCIF
  // where the field is big enough for the statistic to be meaningful.
  synth::SequenceRequest req;
  req.name = "miss_america";
  req.size = video::kQcif;
  req.frame_count = 4;
  req.fps = 10;
  const auto frames = synth::make_sequence(req);
  const SweepConfig cfg = small_config({16});
  const auto fsbm = make_estimator(Algorithm::kFsbm);
  const auto pbm = make_estimator(Algorithm::kPbm);
  const RdPoint pf = run_rd_point(frames, 10, *fsbm, 16, cfg);
  const RdPoint pp = run_rd_point(frames, 10, *pbm, 16, cfg);
  EXPECT_LT(pp.field_smoothness, pf.field_smoothness);
}

}  // namespace
}  // namespace acbm::analysis
