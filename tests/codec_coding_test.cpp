// Entropy layer: run/level block coding and differential MV coding.

#include <gtest/gtest.h>

#include "codec/coeff_coding.hpp"
#include "codec/mv_coding.hpp"
#include "me/cost.hpp"
#include "util/bitstream.hpp"
#include "util/expgolomb.hpp"
#include "util/rng.hpp"

namespace acbm::codec {
namespace {

void expect_blocks_equal(const std::int16_t a[kDctSamples],
                         const std::int16_t b[kDctSamples]) {
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(a[i], b[i]) << "coefficient " << i;
  }
}

TEST(CoeffCoding, EmptyBlockIsJustEob) {
  const std::int16_t levels[kDctSamples] = {};
  util::BitWriter bw;
  encode_block_coeffs(bw, levels);
  EXPECT_EQ(bw.bit_count(),
            static_cast<std::size_t>(util::ue_bit_length(kEob)));
  const auto bytes = bw.take();
  util::BitReader br(bytes);
  std::int16_t out[kDctSamples];
  ASSERT_TRUE(decode_block_coeffs(br, out));
  expect_blocks_equal(levels, out);
}

TEST(CoeffCoding, SingleDcCoefficient) {
  std::int16_t levels[kDctSamples] = {};
  levels[0] = -5;
  util::BitWriter bw;
  encode_block_coeffs(bw, levels);
  const auto bytes = bw.take();
  util::BitReader br(bytes);
  std::int16_t out[kDctSamples];
  ASSERT_TRUE(decode_block_coeffs(br, out));
  expect_blocks_equal(levels, out);
}

TEST(CoeffCoding, TrailingCoefficientPosition63) {
  std::int16_t levels[kDctSamples] = {};
  levels[63] = 3;  // last zig-zag position: run of 63 zeros
  util::BitWriter bw;
  encode_block_coeffs(bw, levels);
  const auto bytes = bw.take();
  util::BitReader br(bytes);
  std::int16_t out[kDctSamples];
  ASSERT_TRUE(decode_block_coeffs(br, out));
  expect_blocks_equal(levels, out);
}

TEST(CoeffCoding, SkipDcExcludesIndexZero) {
  std::int16_t levels[kDctSamples] = {};
  levels[0] = 99;  // must be ignored under skip_dc
  levels[1] = 2;
  util::BitWriter bw;
  encode_block_coeffs(bw, levels, /*skip_dc=*/true);
  const auto bytes = bw.take();
  util::BitReader br(bytes);
  std::int16_t out[kDctSamples];
  ASSERT_TRUE(decode_block_coeffs(br, out, /*skip_dc=*/true));
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST(CoeffCoding, BitCountMatchesEncoding) {
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::int16_t levels[kDctSamples] = {};
    const int nonzero = static_cast<int>(rng.next_below(20));
    for (int i = 0; i < nonzero; ++i) {
      levels[rng.next_below(kDctSamples)] =
          static_cast<std::int16_t>(rng.next_in_range(-127, 127));
    }
    for (bool skip_dc : {false, true}) {
      util::BitWriter bw;
      encode_block_coeffs(bw, levels, skip_dc);
      EXPECT_EQ(bw.bit_count(), block_coeff_bits(levels, skip_dc));
    }
  }
}

TEST(CoeffCoding, RandomizedRoundTrip) {
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::int16_t levels[kDctSamples] = {};
    const int nonzero = static_cast<int>(rng.next_below(30));
    for (int i = 0; i < nonzero; ++i) {
      std::int16_t v = static_cast<std::int16_t>(rng.next_in_range(-127, 127));
      if (v == 0) {
        v = 1;
      }
      levels[rng.next_below(kDctSamples)] = v;
    }
    util::BitWriter bw;
    encode_block_coeffs(bw, levels);
    const auto bytes = bw.take();
    util::BitReader br(bytes);
    std::int16_t out[kDctSamples];
    ASSERT_TRUE(decode_block_coeffs(br, out));
    expect_blocks_equal(levels, out);
  }
}

TEST(CoeffCoding, SparseBlocksCheaperThanDense) {
  std::int16_t sparse[kDctSamples] = {};
  sparse[0] = 4;
  sparse[1] = -2;
  std::int16_t dense[kDctSamples];
  for (int i = 0; i < kDctSamples; ++i) {
    dense[i] = static_cast<std::int16_t>((i % 5) - 2);
    if (dense[i] == 0) {
      dense[i] = 1;
    }
  }
  EXPECT_LT(block_coeff_bits(sparse), block_coeff_bits(dense) / 4);
}

TEST(CoeffCoding, BlockHasCoeffsRespectsSkipDc) {
  std::int16_t levels[kDctSamples] = {};
  EXPECT_FALSE(block_has_coeffs(levels));
  levels[0] = 7;
  EXPECT_TRUE(block_has_coeffs(levels));
  EXPECT_FALSE(block_has_coeffs(levels, /*skip_dc=*/true));
  levels[13] = -1;
  EXPECT_TRUE(block_has_coeffs(levels, /*skip_dc=*/true));
}

TEST(CoeffCoding, DecodeRejectsTruncatedStream) {
  std::int16_t levels[kDctSamples] = {};
  levels[5] = 3;
  util::BitWriter bw;
  encode_block_coeffs(bw, levels);
  auto bytes = bw.take();
  bytes.resize(bytes.size() / 2);  // chop the stream
  // Either decode fails outright or the reader reports exhaustion — a
  // truncated block must never silently decode to valid data.
  util::BitReader br(bytes);
  std::int16_t out[kDctSamples];
  const bool ok = decode_block_coeffs(br, out);
  EXPECT_TRUE(!ok || br.exhausted());
}

TEST(MvCoding, RoundTripAgainstPredictors) {
  util::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const me::Mv mv{rng.next_in_range(-30, 30), rng.next_in_range(-30, 30)};
    const me::Mv pred{rng.next_in_range(-30, 30), rng.next_in_range(-30, 30)};
    util::BitWriter bw;
    encode_mvd(bw, mv, pred);
    EXPECT_EQ(bw.bit_count(), mvd_bits(mv, pred));
    const auto bytes = bw.take();
    util::BitReader br(bytes);
    EXPECT_EQ(decode_mvd(br, pred), mv);
  }
}

TEST(MvCoding, PredictedVectorCostsTwoBits) {
  const me::Mv mv{12, -8};
  EXPECT_EQ(mvd_bits(mv, mv), 2u);
}

TEST(MvCoding, RateMatchesSearchSideModel) {
  // codec::mvd_bits and me::mv_rate_bits must be the same function — the
  // search optimises exactly what the encoder transmits.
  for (int dx = -20; dx <= 20; dx += 3) {
    for (int dy = -20; dy <= 20; dy += 3) {
      EXPECT_EQ(mvd_bits({dx, dy}, {1, -1}),
                me::mv_rate_bits({dx, dy}, {1, -1}));
    }
  }
}

}  // namespace
}  // namespace acbm::codec
