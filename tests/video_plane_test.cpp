// Plane: geometry, border extension, copies, comparisons, and pad/crop.

#include "video/plane.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "video/pad.hpp"

namespace acbm::video {
namespace {

TEST(Plane, DefaultConstructedIsEmpty) {
  const Plane p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.width(), 0);
  EXPECT_EQ(p.height(), 0);
}

TEST(Plane, GeometryAndZeroInit) {
  const Plane p(32, 16, 8);
  EXPECT_EQ(p.width(), 32);
  EXPECT_EQ(p.height(), 16);
  EXPECT_EQ(p.border(), 8);
  EXPECT_EQ(p.stride(), 32 + 16);
  EXPECT_EQ(p.at(0, 0), 0);
  EXPECT_EQ(p.at(31, 15), 0);
  EXPECT_EQ(p.at(-8, -8), 0);
  EXPECT_EQ(p.at(39, 23), 0);
}

TEST(Plane, SetAndGetRoundTrip) {
  Plane p(8, 8, 4);
  p.set(3, 5, 200);
  p.set(-2, -1, 13);  // border writes are legal
  EXPECT_EQ(p.at(3, 5), 200);
  EXPECT_EQ(p.at(-2, -1), 13);
}

TEST(Plane, RowPointerArithmeticMatchesAt) {
  Plane p(16, 8, 4);
  p.set(5, 3, 77);
  EXPECT_EQ(p.row(3)[5], 77);
  p.row(2)[-1] = 9;  // border column via pointer
  EXPECT_EQ(p.at(-1, 2), 9);
}

TEST(Plane, ExtendBorderReplicatesEdges) {
  Plane p(4, 4, 3);
  // Distinct corner values.
  p.set(0, 0, 10);
  p.set(3, 0, 20);
  p.set(0, 3, 30);
  p.set(3, 3, 40);
  p.set(2, 0, 15);
  p.extend_border();

  // Corners replicate diagonally.
  EXPECT_EQ(p.at(-3, -3), 10);
  EXPECT_EQ(p.at(6, -1), 20);
  EXPECT_EQ(p.at(-1, 6), 30);
  EXPECT_EQ(p.at(6, 6), 40);
  // Edges replicate perpendicular.
  EXPECT_EQ(p.at(2, -2), 15);
  EXPECT_EQ(p.at(-2, 0), 10);
}

TEST(Plane, FillTouchesOnlyVisibleArea) {
  Plane p(4, 4, 2);
  p.extend_border();  // borders = 0 replicated
  p.fill(99);
  EXPECT_EQ(p.at(0, 0), 99);
  EXPECT_EQ(p.at(3, 3), 99);
  EXPECT_EQ(p.at(-1, 0), 0);  // border untouched by fill
}

TEST(Plane, CopyVisibleFrom) {
  Plane a(6, 6);
  a.fill(7);
  Plane b(6, 6);
  b.copy_visible_from(a);
  EXPECT_TRUE(b.visible_equals(a));
}

TEST(Plane, VisibleEqualsDetectsDifference) {
  Plane a(6, 6);
  Plane b(6, 6);
  EXPECT_TRUE(a.visible_equals(b));
  b.set(5, 5, 1);
  EXPECT_FALSE(a.visible_equals(b));
  const Plane c(6, 4);
  EXPECT_FALSE(a.visible_equals(c));
}

TEST(Plane, AbsoluteDifference) {
  Plane a(4, 4);
  Plane b(4, 4);
  a.fill(10);
  b.fill(13);
  EXPECT_EQ(a.absolute_difference(b), 16u * 3u);
  b.set(0, 0, 0);  // |10−0| − |10−13| = +7 relative to the uniform case
  EXPECT_EQ(a.absolute_difference(b), 16u * 3u - 3u + 10u);
}

TEST(Pad, WithBorderPreservesVisible) {
  const Plane src = acbm::test::random_plane(16, 16, 1);
  const Plane out = with_border(src, 4);
  EXPECT_EQ(out.border(), 4);
  EXPECT_TRUE(out.visible_equals(src));
  // New border replicated from edges.
  EXPECT_EQ(out.at(-4, 0), src.at(0, 0));
  EXPECT_EQ(out.at(19, 15), src.at(15, 15));
}

TEST(Pad, CropExtractsRectangle) {
  const Plane src = acbm::test::random_plane(32, 32, 2);
  const Plane out = crop(src, 8, 4, 16, 8);
  EXPECT_EQ(out.width(), 16);
  EXPECT_EQ(out.height(), 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(out.at(x, y), src.at(8 + x, 4 + y));
    }
  }
}

TEST(Pad, CropMayReadSourceBorder) {
  Plane src(8, 8, 4);
  src.fill(50);
  src.extend_border();
  const Plane out = crop(src, -2, -2, 4, 4);
  EXPECT_EQ(out.at(0, 0), 50);  // replicated border content
}

}  // namespace
}  // namespace acbm::video
