// Pixel-decimation SAD (the paper's second fast-ME family, refs [6–8]).

#include "me/decimation.hpp"

#include <gtest/gtest.h>

#include "me/full_search.hpp"
#include "me/sad.hpp"
#include "test_support.hpp"

namespace acbm::me {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;

TEST(Decimation, SampleCounts) {
  EXPECT_EQ(decimated_sample_count(DecimationPattern::kNone, 16, 16), 256);
  EXPECT_EQ(decimated_sample_count(DecimationPattern::kQuincunx4to1, 16, 16),
            64);
  EXPECT_EQ(decimated_sample_count(DecimationPattern::kRowSkip2to1, 16, 16),
            128);
}

TEST(Decimation, NonePatternEqualsPlainSad) {
  const video::Plane a = acbm::test::random_plane(32, 32, 1);
  const video::Plane b = acbm::test::random_plane(32, 32, 2);
  EXPECT_EQ(sad_block_decimated(a, 4, 4, b, 6, 5, 16, 16,
                                DecimationPattern::kNone),
            sad_block(a, 4, 4, b, 6, 5, 16, 16));
}

TEST(Decimation, DecimatedSadIsLowerBoundOfFull) {
  // Each pattern sums a subset of the |diff| terms, so it can never exceed
  // the full SAD.
  const video::Plane a = acbm::test::random_plane(32, 32, 3);
  const video::Plane b = acbm::test::random_plane(32, 32, 4);
  const std::uint32_t full = sad_block(a, 8, 8, b, 5, 9, 16, 16);
  for (auto pattern : {DecimationPattern::kQuincunx4to1,
                       DecimationPattern::kRowSkip2to1}) {
    EXPECT_LE(sad_block_decimated(a, 8, 8, b, 5, 9, 16, 16, pattern), full);
  }
}

TEST(Decimation, ZeroAtPerfectMatch) {
  const video::Plane a = acbm::test::random_plane(32, 32, 5);
  for (auto pattern : {DecimationPattern::kQuincunx4to1,
                       DecimationPattern::kRowSkip2to1}) {
    EXPECT_EQ(sad_block_decimated(a, 8, 8, a, 8, 8, 16, 16, pattern), 0u);
  }
}

TEST(Decimation, QuincunxRoughlyQuarterOfFull) {
  // On iid random content the subset mean tracks the full mean.
  const video::Plane a = acbm::test::random_plane(64, 64, 6);
  const video::Plane b = acbm::test::random_plane(64, 64, 7);
  const double full = sad_block(a, 16, 16, b, 20, 18, 16, 16);
  const double dec = sad_block_decimated(a, 16, 16, b, 20, 18, 16, 16,
                                         DecimationPattern::kQuincunx4to1);
  EXPECT_NEAR(dec / full, 0.25, 0.08);
}

TEST(DecimatedFullSearch, FindsExactShiftOnTexturedContent) {
  auto [ref, cur] = shifted_pair(64, 48, 5, -4, 8);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch fsbm(DecimationPattern::kQuincunx4to1);
  const EstimateResult r = fsbm.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(5, -4));
  EXPECT_EQ(r.sad, 0u);
  EXPECT_TRUE(r.used_full_search);
}

TEST(DecimatedFullSearch, EvaluatesSameCandidateCount) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 9);
  const SearchFixture fx(std::move(ref), std::move(cur));
  FullSearch plain;
  FullSearch decimated(DecimationPattern::kQuincunx4to1);
  const BlockContext ctx = fx.context(16, 16, 7);
  // Decimation reduces per-candidate arithmetic, not candidate count; the
  // decimated variant re-scores its winner exactly (+1).
  EXPECT_EQ(decimated.estimate(ctx).positions,
            plain.estimate(ctx).positions + 1);
}

TEST(DecimatedFullSearch, NameDistinguishesVariant) {
  EXPECT_EQ(FullSearch(DecimationPattern::kQuincunx4to1).name(), "FSBM-dec");
  EXPECT_EQ(FullSearch().name(), "FSBM");
}

TEST(AdaptiveDecimation, PatternSelectionByTexture) {
  const AdaptiveDecimationSearch search;
  EXPECT_EQ(search.pattern_for(500, 16, 16),
            DecimationPattern::kQuincunx4to1);
  EXPECT_EQ(search.pattern_for(2500, 16, 16),
            DecimationPattern::kRowSkip2to1);
  EXPECT_EQ(search.pattern_for(8000, 16, 16), DecimationPattern::kNone);
}

TEST(AdaptiveDecimation, ThresholdsScaleWithBlockArea) {
  const AdaptiveDecimationSearch search;
  // The same *per-sample* texture level must select the same pattern for an
  // 8×8 block (area ratio 1/4): Intra_SAD 500 on 16×16 ≡ 125 on 8×8.
  EXPECT_EQ(search.pattern_for(125, 8, 8), DecimationPattern::kQuincunx4to1);
  EXPECT_EQ(search.pattern_for(1500, 8, 8), DecimationPattern::kNone);
}

TEST(AdaptiveDecimation, CustomThresholds) {
  AdaptiveDecimationSearch::Thresholds t;
  t.quarter_below = 10;
  t.half_below = 20;
  const AdaptiveDecimationSearch search(t);
  EXPECT_EQ(search.pattern_for(15, 16, 16), DecimationPattern::kRowSkip2to1);
  EXPECT_EQ(search.pattern_for(25, 16, 16), DecimationPattern::kNone);
}

TEST(AdaptiveDecimation, FindsExactShift) {
  auto [ref, cur] = shifted_pair(64, 48, 3, 2, 20);
  const SearchFixture fx(std::move(ref), std::move(cur));
  AdaptiveDecimationSearch search;
  const EstimateResult r = search.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(3, 2));
  EXPECT_EQ(r.sad, 0u);
}

TEST(AdaptiveDecimation, NameDistinct) {
  EXPECT_EQ(AdaptiveDecimationSearch().name(), "FSBM-adec");
}

TEST(SubsampledFullSearch, FindsEvenParityShiftOnAnyContent) {
  // Even-parity shifts sit on the ranked checkerboard, so even white-noise
  // content is found exactly.
  auto [ref, cur] = shifted_pair(64, 48, 4, 2, 30);
  const SearchFixture fx(std::move(ref), std::move(cur));
  SubsampledFullSearch search;
  const EstimateResult r = search.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(4, 2));
  EXPECT_EQ(r.sad, 0u);
}

TEST(SubsampledFullSearch, FindsOddParityShiftOnNaturalContent) {
  // Odd-parity shifts are recovered through the winner's 8-neighbourhood
  // re-rank, which relies on the natural-image property that a
  // one-sample-off match still ranks well (Yu/Zhou/Chen's premise) — so
  // smooth content, not iid noise.
  auto [ref, cur] = acbm::test::smooth_shifted_pair(64, 48, 3, 2, 31);
  const SearchFixture fx(std::move(ref), std::move(cur));
  SubsampledFullSearch search;
  const EstimateResult r = search.estimate(fx.context(16, 16));
  // On a gentle ramp, half-pel interpolation can reproduce a neighbouring
  // row exactly, so several zero-SAD positions may exist; require a perfect
  // match within half a sample of the truth.
  EXPECT_EQ(r.sad, 0u);
  EXPECT_LE((r.mv - mv_from_fullpel(3, 2)).linf(), 1);
}

TEST(SubsampledFullSearch, HalvesCandidateCount) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 40);
  const SearchFixture fx(std::move(ref), std::move(cur));
  SubsampledFullSearch sub;
  FullSearch full;
  const BlockContext ctx = fx.context(16, 16, 15);
  const std::uint32_t sub_positions = sub.estimate(ctx).positions;
  const std::uint32_t full_positions = full.estimate(ctx).positions;
  // Checkerboard ranks ~481 of 961 integer positions, plus ≤9 exact
  // re-ranks and 8 half-pel probes.
  EXPECT_LT(sub_positions, full_positions * 11 / 20);
  EXPECT_GT(sub_positions, full_positions * 2 / 5);
}

TEST(SubsampledFullSearch, NameDistinct) {
  EXPECT_EQ(SubsampledFullSearch().name(), "FSBM-sub");
}

TEST(Decimation, RowSkipIgnoresOddRows) {
  video::Plane a(16, 16);
  video::Plane b(16, 16);
  // Put all the difference on odd rows: row-skip SAD must be zero.
  for (int x = 0; x < 16; ++x) {
    b.set(x, 1, 255);
    b.set(x, 3, 255);
  }
  EXPECT_EQ(sad_block_decimated(a, 0, 0, b, 0, 0, 16, 16,
                                DecimationPattern::kRowSkip2to1),
            0u);
  EXPECT_GT(sad_block(a, 0, 0, b, 0, 0, 16, 16), 0u);
}

}  // namespace
}  // namespace acbm::me
