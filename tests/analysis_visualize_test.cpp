// Visualisation: PGM/PPM writers and the field/decision renderers.

#include "analysis/visualize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_support.hpp"

namespace acbm::analysis {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(RgbImage, SolidAndSet) {
  RgbImage image = RgbImage::solid(4, 2, 10, 20, 30);
  EXPECT_EQ(image.rgb.size(), 4u * 2u * 3u);
  EXPECT_EQ(image.rgb[0], 10);
  EXPECT_EQ(image.rgb[2], 30);
  image.set(3, 1, 1, 2, 3);
  const std::size_t i = (1 * 4 + 3) * 3;
  EXPECT_EQ(image.rgb[i], 1);
  EXPECT_EQ(image.rgb[i + 2], 3);
}

TEST(WritePgm, HeaderAndPayload) {
  const video::Plane plane = acbm::test::random_plane(8, 4, 1);
  const std::string path = temp_path("acbm_test.pgm");
  write_pgm(path, plane);
  const std::string data = read_file(path);
  EXPECT_EQ(data.substr(0, 3), "P5\n");
  EXPECT_NE(data.find("8 4\n255\n"), std::string::npos);
  EXPECT_EQ(data.size(), data.find("255\n") + 4 + 8 * 4);
  std::remove(path.c_str());
}

TEST(WritePpm, HeaderAndPayload) {
  const RgbImage image = RgbImage::solid(5, 3, 1, 2, 3);
  const std::string path = temp_path("acbm_test.ppm");
  write_ppm(path, image);
  const std::string data = read_file(path);
  EXPECT_EQ(data.substr(0, 3), "P6\n");
  EXPECT_EQ(data.size(), data.find("255\n") + 4 + 5 * 3 * 3);
  std::remove(path.c_str());
}

TEST(WritePgm, UnwritablePathThrows) {
  const video::Plane plane(4, 4);
  EXPECT_THROW(write_pgm("/nonexistent/dir/x.pgm", plane),
               std::runtime_error);
}

TEST(RenderMvField, GeometryAndZeroIsGray) {
  me::MvField field(3, 2);
  const RgbImage image = render_mv_field(field, 4);
  EXPECT_EQ(image.width, 12);
  EXPECT_EQ(image.height, 8);
  // All vectors zero → every pixel gray.
  for (std::size_t i = 0; i < image.rgb.size(); ++i) {
    ASSERT_EQ(image.rgb[i], 128);
  }
}

TEST(RenderMvField, DirectionChangesColour) {
  me::MvField field(2, 1);
  field.set(0, 0, {20, 0});    // east
  field.set(1, 0, {-20, 0});   // west
  const RgbImage image = render_mv_field(field, 2);
  // Opposite directions must render clearly different colours.
  const std::size_t left = 0;
  const std::size_t right = (0 * 4 + 2) * 3;
  int diff = 0;
  for (int c = 0; c < 3; ++c) {
    diff += std::abs(int(image.rgb[left + c]) - int(image.rgb[right + c]));
  }
  EXPECT_GT(diff, 100);
}

TEST(RenderDecisionMap, OutcomeColours) {
  std::vector<core::BlockDecision> decisions(3);
  decisions[0].bx = 0;
  decisions[0].outcome = core::AcbmOutcome::kAcceptLowActivity;
  decisions[1].bx = 1;
  decisions[1].outcome = core::AcbmOutcome::kAcceptGoodMatch;
  decisions[2].bx = 2;
  decisions[2].outcome = core::AcbmOutcome::kCritical;
  const RgbImage image = render_decision_map(decisions, 3, 1, 1);
  // green / blue-ish / red pixels in order.
  EXPECT_GT(image.rgb[1], 150);            // block 0: green channel
  EXPECT_GT(image.rgb[3 + 2], 150);        // block 1: blue channel
  EXPECT_GT(image.rgb[6 + 0], 150);        // block 2: red channel
  EXPECT_EQ(image.rgb[0], 0);
}

TEST(RenderDecisionMap, OutOfRangeBlocksIgnored) {
  std::vector<core::BlockDecision> decisions(1);
  decisions[0].bx = 99;
  decisions[0].by = 99;
  const RgbImage image = render_decision_map(decisions, 2, 2, 2);
  for (std::uint8_t v : image.rgb) {
    ASSERT_EQ(v, 0);
  }
}

}  // namespace
}  // namespace acbm::analysis
