// 8×8 DCT: inversion, orthonormal scaling, energy preservation, basis shape.

#include "codec/dct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace acbm::codec {
namespace {

void fill_random(std::int16_t block[kDctSamples], util::Rng& rng, int lo,
                 int hi) {
  for (int i = 0; i < kDctSamples; ++i) {
    block[i] = static_cast<std::int16_t>(rng.next_in_range(lo, hi));
  }
}

TEST(Dct, ForwardInverseIsIdentityWithinRounding) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::int16_t in[kDctSamples];
    fill_random(in, rng, -255, 255);
    double coeffs[kDctSamples];
    double out[kDctSamples];
    forward_dct8x8(in, coeffs);
    inverse_dct8x8(coeffs, out);
    for (int i = 0; i < kDctSamples; ++i) {
      ASSERT_NEAR(out[i], in[i], 1e-9);
    }
  }
}

TEST(Dct, DcOfConstantBlockIsEightTimesMean) {
  std::int16_t in[kDctSamples];
  for (auto& v : in) {
    v = 100;
  }
  double coeffs[kDctSamples];
  forward_dct8x8(in, coeffs);
  EXPECT_NEAR(coeffs[0], 800.0, 1e-9);  // orthonormal: DC = 8·mean
  for (int i = 1; i < kDctSamples; ++i) {
    ASSERT_NEAR(coeffs[i], 0.0, 1e-9);
  }
}

TEST(Dct, MaximumDcFitsIntraDcRange) {
  std::int16_t in[kDctSamples];
  for (auto& v : in) {
    v = 255;
  }
  double coeffs[kDctSamples];
  forward_dct8x8(in, coeffs);
  EXPECT_NEAR(coeffs[0], 2040.0, 1e-9);
  EXPECT_LE(std::lround(coeffs[0] / 8.0), 255);  // quantizes into u8
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Rng rng(2);
  std::int16_t in[kDctSamples];
  fill_random(in, rng, -200, 200);
  double coeffs[kDctSamples];
  forward_dct8x8(in, coeffs);
  double spatial_energy = 0.0;
  double coeff_energy = 0.0;
  for (int i = 0; i < kDctSamples; ++i) {
    spatial_energy += double(in[i]) * in[i];
    coeff_energy += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(coeff_energy, spatial_energy, spatial_energy * 1e-12 + 1e-6);
}

TEST(Dct, LinearInInput) {
  util::Rng rng(3);
  std::int16_t a[kDctSamples];
  std::int16_t b[kDctSamples];
  std::int16_t sum[kDctSamples];
  fill_random(a, rng, -100, 100);
  fill_random(b, rng, -100, 100);
  for (int i = 0; i < kDctSamples; ++i) {
    sum[i] = static_cast<std::int16_t>(a[i] + b[i]);
  }
  double ca[kDctSamples];
  double cb[kDctSamples];
  double cs[kDctSamples];
  forward_dct8x8(a, ca);
  forward_dct8x8(b, cb);
  forward_dct8x8(sum, cs);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_NEAR(cs[i], ca[i] + cb[i], 1e-9);
  }
}

TEST(Dct, HorizontalCosineHitsSingleCoefficient) {
  // in(x,y) = cos((2x+1)·3π/16) → only coefficient (u=3, v=0) fires.
  std::int16_t in[kDctSamples];
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      in[y * 8 + x] = static_cast<std::int16_t>(
          std::lround(100.0 * std::cos((2 * x + 1) * 3.0 * M_PI / 16.0)));
    }
  }
  double coeffs[kDctSamples];
  forward_dct8x8(in, coeffs);
  double max_other = 0.0;
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      if (u == 3 && v == 0) {
        continue;
      }
      max_other = std::max(max_other, std::abs(coeffs[v * 8 + u]));
    }
  }
  EXPECT_GT(std::abs(coeffs[3]), 390.0);  // ≈ 100·4 with rounding error
  EXPECT_LT(max_other, 3.0);              // rounding leakage only
}

TEST(Dct, InverseToIntRoundsAndClamps) {
  std::int16_t coeffs[kDctSamples] = {};
  coeffs[0] = 2040;  // constant 255 block
  std::int16_t out[kDctSamples];
  inverse_dct8x8_to_int(coeffs, out, 512);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(out[i], 255);
  }
  coeffs[0] = 16000;  // absurd energy → clamp at the limit
  inverse_dct8x8_to_int(coeffs, out, 512);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(out[i], 512);
  }
}

TEST(Dct, InverseToIntNegativeClamp) {
  std::int16_t coeffs[kDctSamples] = {};
  coeffs[0] = -16000;
  std::int16_t out[kDctSamples];
  inverse_dct8x8_to_int(coeffs, out, 300);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(out[i], -300);
  }
}

}  // namespace
}  // namespace acbm::codec
