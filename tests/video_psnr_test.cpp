// MSE / PSNR metrics.

#include "video/psnr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "test_support.hpp"

namespace acbm::video {
namespace {

TEST(Psnr, IdenticalPlanesAreInfinite) {
  const Plane a = acbm::test::random_plane(32, 32, 1);
  EXPECT_EQ(mse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownUniformError) {
  Plane a(16, 16);
  Plane b(16, 16);
  a.fill(100);
  b.fill(110);  // every sample off by 10 → MSE 100
  EXPECT_DOUBLE_EQ(mse(a, b), 100.0);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-12);
  EXPECT_NEAR(psnr(a, b), 28.13, 0.01);
}

TEST(Psnr, SingleSampleError) {
  Plane a(8, 8);
  Plane b(8, 8);
  b.set(3, 3, 64);
  EXPECT_DOUBLE_EQ(mse(a, b), 64.0 * 64.0 / 64.0);
}

TEST(Psnr, SymmetricInArguments) {
  const Plane a = acbm::test::random_plane(24, 24, 2);
  const Plane b = acbm::test::random_plane(24, 24, 3);
  EXPECT_DOUBLE_EQ(psnr(a, b), psnr(b, a));
}

TEST(Psnr, MonotoneInNoise) {
  const Plane clean = acbm::test::smooth_plane(32, 32);
  Plane noisy_small = clean;
  Plane noisy_large = clean;
  util::Rng rng(4);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const int n = rng.next_in_range(-3, 3);
      noisy_small.set(x, y, static_cast<std::uint8_t>(
                                std::clamp(clean.at(x, y) + n, 0, 255)));
      noisy_large.set(x, y, static_cast<std::uint8_t>(
                                std::clamp(clean.at(x, y) + 4 * n, 0, 255)));
    }
  }
  EXPECT_GT(psnr(clean, noisy_small), psnr(clean, noisy_large));
}

TEST(Psnr, LumaOnlyIgnoresChroma) {
  Frame a(32, 32);
  Frame b(32, 32);
  a.fill(100);
  b.fill(100);
  b.cb().fill(0);  // wreck chroma only
  EXPECT_TRUE(std::isinf(psnr_luma(a, b)));
  EXPECT_FALSE(std::isinf(psnr_yuv(a, b)));
}

TEST(Psnr, YuvWeightsBySampleCount) {
  Frame a(32, 32);
  Frame b(32, 32);
  a.fill(100);
  b.fill(100);
  // Luma error of 10 on all samples; chroma perfect. 4:2:0 → luma is 2/3 of
  // samples, so combined MSE = 100·(2/3).
  b.y().fill(110);
  const double expected_mse = 100.0 * (32.0 * 32.0) / (32.0 * 32.0 * 1.5);
  EXPECT_NEAR(psnr_yuv(a, b), 10.0 * std::log10(255.0 * 255.0 / expected_mse),
              1e-9);
}

}  // namespace
}  // namespace acbm::video
