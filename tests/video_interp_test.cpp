// Half-pel interpolation: H.263 rounding, phase-plane consistency, borders.

#include "video/interp.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace acbm::video {
namespace {

TEST(SampleHalfpel, IntegerPhasePassesThrough) {
  const Plane p = acbm::test::random_plane(16, 16, 1);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(sample_halfpel(p, 2 * x, 2 * y), p.at(x, y));
    }
  }
}

TEST(SampleHalfpel, HorizontalRounding) {
  Plane p(4, 4, 4);
  p.set(0, 0, 10);
  p.set(1, 0, 11);
  p.extend_border();
  // (10+11+1)>>1 = 11 — H.263 rounds toward +∞ on .5.
  EXPECT_EQ(sample_halfpel(p, 1, 0), 11);
}

TEST(SampleHalfpel, VerticalRounding) {
  Plane p(4, 4, 4);
  p.set(0, 0, 10);
  p.set(0, 1, 13);
  p.extend_border();
  EXPECT_EQ(sample_halfpel(p, 0, 1), 12);  // (10+13+1)>>1
}

TEST(SampleHalfpel, CenterRounding) {
  Plane p(4, 4, 4);
  p.set(0, 0, 10);
  p.set(1, 0, 11);
  p.set(0, 1, 12);
  p.set(1, 1, 13);
  p.extend_border();
  EXPECT_EQ(sample_halfpel(p, 1, 1), 12);  // (10+11+12+13+2)>>2 = 12
}

TEST(SampleHalfpel, NegativeHalfpelCoordinates) {
  Plane p(4, 4, 4);
  p.fill(50);
  p.set(0, 0, 100);
  p.extend_border();
  // hx = −1 interpolates between border (replicates 100) and (0,0).
  EXPECT_EQ(sample_halfpel(p, -1, 0), 100);
  EXPECT_EQ(sample_halfpel(p, -2, 0), 100);  // pure border sample
}

TEST(HalfpelPlanes, Phase00MatchesSource) {
  const Plane src = acbm::test::random_plane(32, 24, 2);
  const HalfpelPlanes hp(src);
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 32; ++x) {
      ASSERT_EQ(hp.plane(0, 0).at(x, y), src.at(x, y));
    }
  }
}

TEST(HalfpelPlanes, AllPhasesMatchDirectComputation) {
  const Plane src = acbm::test::random_plane(32, 24, 3);
  const HalfpelPlanes hp(src);
  for (int hy = -10; hy < 58; ++hy) {
    for (int hx = -10; hx < 74; ++hx) {
      ASSERT_EQ(hp.at(hx, hy), sample_halfpel(src, hx, hy))
          << "at (" << hx << "," << hy << ")";
    }
  }
}

TEST(HalfpelPlanes, InterpolatedBorderShrinksByOne) {
  const Plane src = acbm::test::random_plane(16, 16, 4);
  const HalfpelPlanes hp(src);
  // The integer phase is the source snapshot (full border); interpolation
  // consumes one sample on the +x/+y side.
  EXPECT_EQ(hp.plane(0, 0).border(), src.border());
  EXPECT_EQ(hp.plane(1, 0).border(), src.border() - 1);
  EXPECT_EQ(hp.plane(0, 1).border(), src.border() - 1);
  EXPECT_EQ(hp.plane(1, 1).border(), src.border() - 1);
}

TEST(HalfpelPlanes, LazyConstructionDefersInterpolation) {
  const Plane src = acbm::test::random_plane(16, 16, 5);
  const HalfpelPlanes hp(src);
  // integer_plane() and at() never trigger the build; copies made before
  // the first phase request stay lazy and still interpolate correctly.
  EXPECT_TRUE(hp.integer_plane().visible_equals(src));
  EXPECT_EQ(hp.at(9, 7), sample_halfpel(src, 9, 7));
  const HalfpelPlanes copy = hp;
  EXPECT_EQ(copy.plane(1, 1).at(3, 3), sample_halfpel(src, 7, 7));
  // A copy taken AFTER materialisation carries the built planes.
  const HalfpelPlanes built_copy = copy;
  EXPECT_EQ(built_copy.plane(1, 0).at(3, 3), sample_halfpel(src, 7, 6));
}

TEST(HalfpelPlanes, DefaultConstructedIsEmpty) {
  const HalfpelPlanes hp;
  EXPECT_TRUE(hp.empty());
}

TEST(HalfpelPlanes, ConstantPlaneStaysConstant) {
  Plane src(16, 16);
  src.fill(77);
  src.extend_border();
  const HalfpelPlanes hp(src);
  for (int phase = 0; phase < 4; ++phase) {
    const Plane& p = hp.plane(phase & 1, phase >> 1);
    for (int y = -4; y < 20; ++y) {
      for (int x = -4; x < 20; ++x) {
        ASSERT_EQ(p.at(x, y), 77);
      }
    }
  }
}

TEST(HalfpelPlanes, HalfShiftedContentInterpolatesExactly) {
  // A plane holding a horizontal ramp: the H phase must be the midpoint.
  Plane src(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      src.set(x, y, static_cast<std::uint8_t>(10 * x));
    }
  }
  src.extend_border();
  const HalfpelPlanes hp(src);
  for (int x = 0; x < 15; ++x) {
    EXPECT_EQ(hp.plane(1, 0).at(x, 5), 10 * x + 5);
  }
}

}  // namespace
}  // namespace acbm::video
