// Deterministic PRNG: reproducibility, ranges, and rough distribution checks.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace acbm::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 95);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(5);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 255u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int32_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInRangeSingleton) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.next_in_range(42, 42), 42);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, UniformityChiSquaredCoarse) {
  // 16 buckets over next_below(16): chi² with 15 dof should be far below
  // the catastrophic range for 16k samples if the generator is healthy.
  Rng rng(11);
  int counts[16] = {};
  const int n = 16000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(16)];
  }
  const double expected = n / 16.0;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 60.0);  // 15 dof; p≈1e-6 threshold is ~51, allow slack
}

}  // namespace
}  // namespace acbm::util
