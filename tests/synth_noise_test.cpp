// Noise and texture generators: determinism, ranges, texture statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "me/sad.hpp"
#include "synth/noise.hpp"
#include "synth/texture.hpp"

namespace acbm::synth {
namespace {

TEST(LatticeNoise, DeterministicAndUniformRange) {
  for (int i = 0; i < 100; ++i) {
    const double v = lattice_noise(42, i * 13, -i * 7);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_EQ(v, lattice_noise(42, i * 13, -i * 7));
  }
}

TEST(LatticeNoise, SeedChangesField) {
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (lattice_noise(1, i, 0) != lattice_noise(2, i, 0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(SmoothNoise, InterpolatesLatticeValuesAtIntegers) {
  for (int x = -5; x <= 5; ++x) {
    for (int y = -5; y <= 5; ++y) {
      EXPECT_NEAR(smooth_noise(9, x, y), lattice_noise(9, x, y), 1e-12);
    }
  }
}

TEST(SmoothNoise, ContinuousBetweenLatticePoints) {
  // Sampling densely, adjacent samples must not jump (feature size ≫ step).
  double prev = smooth_noise(5, 0.0, 0.5);
  for (int i = 1; i <= 100; ++i) {
    const double v = smooth_noise(5, i * 0.01, 0.5);
    EXPECT_LT(std::abs(v - prev), 0.05);
    prev = v;
  }
}

TEST(Fbm, StaysNormalised) {
  for (int i = 0; i < 200; ++i) {
    const double v = fbm(3, i * 0.173, i * -0.091, 4);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Fbm, SingleOctaveEqualsSmoothNoise) {
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.173;
    const double y = i * -0.091;
    EXPECT_NEAR(fbm(11, x, y, 1), smooth_noise(11, x, y), 1e-12);
  }
}

TEST(Fbm, MoreOctavesAddDetail) {
  // Count local extrema along a line: higher octaves inject higher spatial
  // frequencies, so the signal wiggles more often.
  auto extrema = [](int octaves) {
    int count = 0;
    double prev = fbm(11, 0.0, 0.3, octaves);
    double prev_delta = 0.0;
    for (int i = 1; i < 400; ++i) {
      const double v = fbm(11, i * 0.1, 0.3, octaves);
      const double delta = v - prev;
      if (delta * prev_delta < 0.0) {
        ++count;
      }
      prev = v;
      prev_delta = delta;
    }
    return count;
  };
  EXPECT_GT(extrema(4), extrema(1) * 3 / 2);
}

TEST(MakeNoiseTexture, RespectsBaseAndAmplitude) {
  TextureSpec spec;
  spec.base = 100.0;
  spec.amplitude = 20.0;
  const video::Plane p = make_noise_texture(64, 64, spec);
  double sum = 0.0;
  int lo = 255;
  int hi = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const int v = p.at(x, y);
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_NEAR(sum / (64.0 * 64.0), 100.0, 8.0);
  EXPECT_GE(lo, 80 - 1);
  EXPECT_LE(hi, 120 + 1);
  EXPECT_GT(hi - lo, 10);  // actually textured
}

TEST(MakeNoiseTexture, AmplitudeControlsIntraSad) {
  TextureSpec lo_spec;
  lo_spec.amplitude = 5.0;
  TextureSpec hi_spec;
  hi_spec.amplitude = 45.0;
  const video::Plane lo = make_noise_texture(32, 32, lo_spec);
  const video::Plane hi = make_noise_texture(32, 32, hi_spec);
  EXPECT_GT(me::intra_sad(hi, 0, 0, 16, 16),
            2 * me::intra_sad(lo, 0, 0, 16, 16));
}

TEST(MakeGradient, EndpointsAndMonotone) {
  const video::Plane p = make_gradient(16, 32, 50.0, 90.0);
  EXPECT_EQ(p.at(0, 0), 50);
  EXPECT_EQ(p.at(0, 31), 90);
  for (int y = 1; y < 32; ++y) {
    EXPECT_GE(p.at(5, y), p.at(5, y - 1));
  }
  // Rows are constant.
  for (int x = 1; x < 16; ++x) {
    EXPECT_EQ(p.at(x, 10), p.at(0, 10));
  }
}

TEST(AddGaussianNoise, ZeroSigmaIsIdentity) {
  video::Plane p = make_gradient(16, 16, 0.0, 255.0);
  const video::Plane before = p;
  util::Rng rng(1);
  add_gaussian_noise(p, rng, 0.0);
  EXPECT_TRUE(p.visible_equals(before));
}

TEST(AddGaussianNoise, PerturbsRoughlyBySigma) {
  video::Plane p(64, 64);
  p.fill(128);
  util::Rng rng(2);
  add_gaussian_noise(p, rng, 3.0);
  double sum_sq = 0.0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const double d = p.at(x, y) - 128.0;
      sum_sq += d * d;
    }
  }
  const double measured_sigma = std::sqrt(sum_sq / (64.0 * 64.0));
  EXPECT_NEAR(measured_sigma, 3.0, 0.4);
}

TEST(SampleBilinear, IntegerCoordinatesExact) {
  const video::Plane p = make_gradient(8, 8, 10.0, 80.0);
  EXPECT_DOUBLE_EQ(sample_bilinear(p, 3.0, 2.0), p.at(3, 2));
}

TEST(SampleBilinear, MidpointAveragesOnRamp) {
  video::Plane p(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      p.set(x, y, static_cast<std::uint8_t>(20 * x));
    }
  }
  p.extend_border();
  EXPECT_DOUBLE_EQ(sample_bilinear(p, 2.5, 3.0), 50.0);
  EXPECT_DOUBLE_EQ(sample_bilinear(p, 2.25, 3.0), 45.0);
}

TEST(ToSample, ClampsAndRounds) {
  EXPECT_EQ(to_sample(-5.0), 0);
  EXPECT_EQ(to_sample(300.0), 255);
  EXPECT_EQ(to_sample(99.5), 100);
  EXPECT_EQ(to_sample(99.4), 99);
}

}  // namespace
}  // namespace acbm::synth
