// End-to-end integration: the whole stack (synthetic sequence → motion
// estimation → encoder → bitstream → decoder → PSNR) exercised together,
// including the paper's qualitative claims at miniature scale.

#include <gtest/gtest.h>

#include <map>

#include "analysis/rd_sweep.hpp"
#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "synth/sequences.hpp"
#include "video/psnr.hpp"

namespace acbm {
namespace {

std::vector<video::Frame> make_frames(const std::string& name, int count,
                                      int fps = 30) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = count;
  req.fps = fps;
  return synth::make_sequence(req);
}

struct PipelineResult {
  double psnr = 0.0;
  std::uint64_t bits = 0;
  std::uint64_t positions = 0;
};

PipelineResult run_pipeline(const std::vector<video::Frame>& frames,
                            me::MotionEstimator& estimator, int qp) {
  codec::EncoderConfig cfg;
  cfg.qp = qp;
  cfg.search_range = 7;
  codec::Encoder enc({frames[0].width(), frames[0].height()}, cfg, estimator);
  PipelineResult result;
  for (const auto& f : frames) {
    const codec::FrameReport r = enc.encode_frame(f);
    result.bits += r.bits;
    result.positions += r.me_positions;
  }
  // Measure quality through the *decoder*, proving the full loop.
  codec::Decoder dec(enc.finish());
  const auto decoded = dec.decode_all();
  EXPECT_EQ(decoded.size(), frames.size());
  double psnr = 0.0;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    psnr += video::psnr_luma(frames[i], decoded[i]);
  }
  result.psnr = psnr / static_cast<double>(decoded.size());
  return result;
}

TEST(Integration, AllSequencesEncodeDecodeAtReasonableQuality) {
  for (const auto& name : synth::standard_sequence_names()) {
    const auto frames = make_frames(name, 3);
    me::Pbm pbm;
    const PipelineResult r = run_pipeline(frames, pbm, 10);
    EXPECT_GT(r.psnr, 28.0) << name;
    EXPECT_GT(r.bits, 0u) << name;
  }
}

TEST(Integration, AcbmMatchesFsbmQualityAtFractionOfCost) {
  // The paper's headline, end to end: similar PSNR, big position savings.
  const auto frames = make_frames("carphone", 6);
  me::FullSearch fsbm;
  core::Acbm acbm;
  const PipelineResult rf = run_pipeline(frames, fsbm, 16);
  const PipelineResult ra = run_pipeline(frames, acbm, 16);
  EXPECT_GT(ra.psnr, rf.psnr - 0.5);          // quality preserved
  EXPECT_LT(ra.positions, rf.positions / 2);  // ≥50 % fewer SADs (miniature)
}

TEST(Integration, AcbmBeatsPbmOnHardContent) {
  // Fast erratic motion (table @10fps): PBM alone degrades, ACBM recovers
  // by spending full searches on the critical blocks.
  const auto frames = make_frames("table", 5, 10);
  me::Pbm pbm;
  core::Acbm acbm;
  const PipelineResult rp = run_pipeline(frames, pbm, 16);
  const PipelineResult ra = run_pipeline(frames, acbm, 16);
  EXPECT_GE(ra.psnr, rp.psnr - 1e-9);
  EXPECT_GT(ra.positions, rp.positions);  // it paid for the quality
}

TEST(Integration, ComplexityOrderingAcrossSequences) {
  // Table 1's row structure: miss_america cheapest for ACBM, foreman most
  // expensive (texture + pan forces more full searches).
  std::map<std::string, double> avg_positions;
  for (const std::string name : {"miss_america", "foreman"}) {
    const auto frames = make_frames(name, 5);
    core::Acbm acbm;
    const PipelineResult r = run_pipeline(frames, acbm, 20);
    const double p_mbs = (64.0 / 16) * (48.0 / 16) * (frames.size() - 1);
    avg_positions[name] = static_cast<double>(r.positions) / p_mbs;
  }
  EXPECT_LT(avg_positions["miss_america"], avg_positions["foreman"]);
}

TEST(Integration, AcbmComplexityRisesAsQpFalls) {
  // Table 1's column structure: positions grow monotonically (in trend) as
  // Qp decreases because the T1 threshold shrinks.
  const auto frames = make_frames("carphone", 5);
  std::vector<double> positions;
  for (int qp : {30, 20, 10}) {
    core::Acbm acbm;
    positions.push_back(
        static_cast<double>(run_pipeline(frames, acbm, qp).positions));
  }
  EXPECT_LE(positions[0], positions[1]);
  EXPECT_LE(positions[1], positions[2]);
}

TEST(Integration, LowerFrameRateRaisesAcbmCost) {
  // The paper: at 10 fps motion is larger, PBM fails more often, ACBM runs
  // more full searches than at 30 fps. QCIF so the moving objects span
  // enough macroblocks for the effect to register.
  auto frames_at = [](int fps) {
    synth::SequenceRequest req;
    req.name = "table";
    req.size = video::kQcif;
    req.frame_count = 4;
    req.fps = fps;
    return synth::make_sequence(req);
  };
  core::Acbm acbm30;
  core::Acbm acbm10;
  const PipelineResult r30 = run_pipeline(frames_at(30), acbm30, 20);
  const PipelineResult r10 = run_pipeline(frames_at(10), acbm10, 20);
  EXPECT_GT(r10.positions, r30.positions);
}

TEST(Integration, RdSweepThroughPublicDriver) {
  // The exact call chain the benches use, smoke-tested end to end.
  const auto frames = make_frames("miss_america", 4);
  analysis::SweepConfig cfg;
  cfg.qps = {16, 24};
  cfg.search_range = 7;
  for (analysis::Algorithm algo :
       {analysis::Algorithm::kAcbm, analysis::Algorithm::kFsbm,
        analysis::Algorithm::kPbm}) {
    const analysis::RdCurve curve =
        run_rd_sweep(frames, 30, algo, cfg, "miss_america");
    ASSERT_EQ(curve.points.size(), 2u);
    for (const auto& p : curve.points) {
      EXPECT_GT(p.psnr_y, 25.0);
      EXPECT_GT(p.kbps, 0.0);
    }
  }
}

}  // namespace
}  // namespace acbm
