// Plan-stage parity: hoisting macroblock planning (DCT/quant/RD candidate
// costing) out of the entropy loop into the row-parallel plan stage must
// not move a single bit. Serial and multi-threaded encodes are held
// byte-identical across the full {slices} × {mode decision} × {kernel}
// grid, and the precomputed-plan write path must leave reconstruction (and
// therefore the decoder) untouched.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/builtin_estimators.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

struct EncodeOutcome {
  std::vector<std::uint8_t> stream;
  std::vector<FrameReport> reports;
};

EncodeOutcome encode_with(const std::vector<video::Frame>& frames,
                          const EncoderConfig& config) {
  const auto estimator = core::builtin_estimators().create("ACBM");
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  EncodeOutcome outcome;
  for (const video::Frame& frame : frames) {
    outcome.reports.push_back(encoder.encode_frame(frame));
  }
  outcome.stream = encoder.finish();
  return outcome;
}

/// Restores the default (auto) kernel selection on scope exit.
struct KernelSelectionGuard {
  ~KernelSelectionGuard() { simd::select_kernels(simd::KernelIsa::kAuto); }
};

TEST(PlanStage, ByteIdenticalAcrossFullGrid) {
  // The acceptance grid: serial vs 4-thread encodes must agree bit for bit
  // for every {slices} × {rd} × {kernel} combination. The 4-thread encode
  // runs the plan stage on the pool; the serial one plans inline — any
  // divergence (scheduling, predictor chains, RD cost arithmetic) shows up
  // as a byte mismatch here.
  KernelSelectionGuard guard;
  const auto frames = test_sequence("foreman", 6);
  for (const char* kernel : {"scalar", "auto"}) {
    ASSERT_TRUE(simd::select_kernels_by_name(kernel));
    for (const bool rd : {false, true}) {
      for (const int slices : {1, 4}) {
        EncoderConfig config;
        config.qp = 16;
        config.slices = slices;
        config.mode_decision = rd ? ModeDecision::kRateDistortion
                                  : ModeDecision::kHeuristic;
        const EncodeOutcome serial = encode_with(frames, config);
        ASSERT_GT(serial.stream.size(), 0u);

        EncoderConfig parallel = config;
        parallel.parallel.threads = 4;
        const EncodeOutcome outcome = encode_with(frames, parallel);
        EXPECT_EQ(outcome.stream, serial.stream)
            << "kernel=" << kernel << " rd=" << rd << " slices=" << slices;
        ASSERT_EQ(outcome.reports.size(), serial.reports.size());
        for (std::size_t i = 0; i < serial.reports.size(); ++i) {
          EXPECT_EQ(outcome.reports[i].bits, serial.reports[i].bits) << i;
          EXPECT_EQ(outcome.reports[i].intra_mbs, serial.reports[i].intra_mbs)
              << i;
          EXPECT_EQ(outcome.reports[i].inter_mbs, serial.reports[i].inter_mbs)
              << i;
          EXPECT_EQ(outcome.reports[i].skip_mbs, serial.reports[i].skip_mbs)
              << i;
          EXPECT_DOUBLE_EQ(outcome.reports[i].psnr_y,
                           serial.reports[i].psnr_y)
              << i;
        }
      }
    }
  }
}

TEST(PlanStage, RdBitBreakdownSurvivesHoisting) {
  // The RD write path recomputes J_inter from the precomputed body bits +
  // one mvd_bits() call; the per-category bit tallies must match a serial
  // run exactly (they are derived from the same writer positions).
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 20;
  config.mode_decision = ModeDecision::kRateDistortion;
  const EncodeOutcome serial = encode_with(frames, config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 3;
  const EncodeOutcome outcome = encode_with(frames, parallel);
  ASSERT_EQ(outcome.reports.size(), serial.reports.size());
  for (std::size_t i = 0; i < serial.reports.size(); ++i) {
    EXPECT_EQ(outcome.reports[i].mv_bits, serial.reports[i].mv_bits) << i;
    EXPECT_EQ(outcome.reports[i].coeff_bits, serial.reports[i].coeff_bits)
        << i;
    EXPECT_EQ(outcome.reports[i].header_bits, serial.reports[i].header_bits)
        << i;
  }
}

TEST(PlanStage, IntraPeriodAndDeblockIdentical) {
  // Periodic intra refresh exercises the intra-frame plan path mid-stream;
  // deblocking runs after reconstruction and must see identical samples.
  const auto frames = test_sequence("table", 8);
  EncoderConfig config;
  config.qp = 18;
  config.intra_period = 3;
  config.deblock = true;
  config.slices = 2;
  const EncodeOutcome serial = encode_with(frames, config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  EXPECT_EQ(encode_with(frames, parallel).stream, serial.stream);
}

TEST(PlanStage, SkipHeavyContentIdentical) {
  // Coarse quantiser on static content: most plans are skippable InterPlans
  // — the cheapest write path, and the one where a stale plan would
  // corrupt the COD chain most visibly.
  const auto frames = test_sequence("miss_america", 8);
  EncoderConfig config;
  config.qp = 30;
  const EncodeOutcome serial = encode_with(frames, config);
  int skips = 0;
  for (const FrameReport& report : serial.reports) {
    skips += report.skip_mbs;
  }
  EXPECT_GT(skips, 0) << "scenario should actually exercise the skip path";
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  EXPECT_EQ(encode_with(frames, parallel).stream, serial.stream);
}

TEST(PlanStage, PlannedStreamDecodesToEncoderReconstruction) {
  // End-to-end: a multi-thread, multi-slice, RD-mode stream written from
  // precomputed plans must still decode sample-identically to the
  // encoder's own reconstruction.
  const auto frames = test_sequence("foreman", 5);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 2;
  config.mode_decision = ModeDecision::kRateDistortion;
  config.parallel.threads = 4;

  const auto estimator = core::builtin_estimators().create("ACBM");
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  std::vector<video::Frame> recons;
  for (const video::Frame& frame : frames) {
    (void)encoder.encode_frame(frame);
    recons.push_back(encoder.last_recon());
  }
  const auto stream = encoder.finish();

  Decoder decoder(stream);
  const std::vector<video::Frame> decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(decoded[i].y().visible_equals(recons[i].y())) << i;
    EXPECT_TRUE(decoded[i].cb().visible_equals(recons[i].cb())) << i;
    EXPECT_TRUE(decoded[i].cr().visible_equals(recons[i].cr())) << i;
  }
}

}  // namespace
}  // namespace acbm::codec
