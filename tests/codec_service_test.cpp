// Multi-session service invariants: N concurrent frame-pipelined sessions
// sharing one EncoderService pool must each produce a bitstream
// byte-identical to a standalone sequential encode of the same sequence —
// at every pool size, with sliced and unsliced entropy coding, across
// intra-refresh and deblocking configurations — and the per-frame packets
// must tile the stream exactly. This is the invariant that makes
// frame-level pipelining and session concurrency pure throughput knobs.
//
// The whole file is intended to run under ThreadSanitizer in CI: the
// row-readiness handshake (ReadyCounter), the per-strip border extensions
// and the admission engine are exactly the code TSan would catch cheating.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/service.hpp"
#include "core/builtin_estimators.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

std::vector<std::uint8_t> encode_standalone(
    const std::vector<video::Frame>& frames, const std::string& spec,
    const EncoderConfig& config) {
  const auto estimator = core::builtin_estimators().create(spec);
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  for (const video::Frame& frame : frames) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

struct SessionOutcome {
  std::vector<std::uint8_t> stream;
  std::vector<Packet> packets;
};

/// Drives one session to completion: submits every frame, keeping a couple
/// in flight so the front/back overlap actually happens, and collects the
/// packets plus the finished stream.
SessionOutcome drive_session(EncodeSession& session,
                             const std::vector<video::Frame>& frames) {
  SessionOutcome outcome;
  std::vector<std::future<Packet>> inflight;
  for (const video::Frame& frame : frames) {
    inflight.push_back(session.submit(frame));
    while (inflight.size() > 2) {
      outcome.packets.push_back(inflight.front().get());
      inflight.erase(inflight.begin());
    }
  }
  for (std::future<Packet>& f : inflight) {
    outcome.packets.push_back(f.get());
  }
  outcome.stream = session.finish();
  return outcome;
}

TEST(ServiceEncode, SingleSessionByteIdenticalAcrossPoolSizes) {
  const auto frames = test_sequence("foreman", 8);
  EncoderConfig config;
  config.qp = 16;
  const auto reference = encode_standalone(frames, "ACBM", config);
  ASSERT_GT(reference.size(), 0u);

  for (int threads : {1, 2, 4}) {
    EncoderService service(threads);
    EncodeSession session(service, {frames[0].width(), frames[0].height()},
                          config, core::builtin_estimators().create("ACBM"));
    const SessionOutcome outcome = drive_session(session, frames);
    EXPECT_EQ(outcome.stream, reference) << threads << " pool threads";
  }
}

TEST(ServiceEncode, PacketsTileTheStreamInSubmissionOrder) {
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 18;
  EncoderService service(4);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("ACBM"));
  const SessionOutcome outcome = drive_session(session, frames);

  ASSERT_EQ(outcome.packets.size(), frames.size());
  std::vector<std::uint8_t> concatenated;
  for (std::size_t i = 0; i < outcome.packets.size(); ++i) {
    EXPECT_EQ(outcome.packets[i].frame_index, i);
    EXPECT_GT(outcome.packets[i].bytes.size(), 0u);
    EXPECT_GT(outcome.packets[i].report.bits, 0u);
    concatenated.insert(concatenated.end(), outcome.packets[i].bytes.begin(),
                        outcome.packets[i].bytes.end());
  }
  EXPECT_EQ(concatenated, outcome.stream);
}

TEST(ServiceEncode, ConcurrentSessionsMatchSequentialEncodes) {
  // Four different sequences, four different configurations, all in flight
  // on one pool at once, each driven from its own thread — byte-identical
  // to four standalone sequential encodes, at every pool size.
  const std::vector<std::string> names = {"foreman", "carphone",
                                          "miss_america", "table"};
  std::vector<std::vector<video::Frame>> inputs;
  std::vector<EncoderConfig> configs;
  for (std::size_t s = 0; s < names.size(); ++s) {
    inputs.push_back(test_sequence(names[s], 6));
    EncoderConfig config;
    config.qp = 14 + static_cast<int>(s) * 4;
    config.slices = s % 2 == 0 ? 1 : 4;  // mix ACV1 and ACV2 sessions
    configs.push_back(config);
  }
  std::vector<std::vector<std::uint8_t>> references;
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    references.push_back(encode_standalone(inputs[s], "ACBM", configs[s]));
  }

  for (int threads : {1, 2, 4, 8}) {
    EncoderService service(threads);
    std::vector<std::unique_ptr<EncodeSession>> sessions;
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      sessions.push_back(std::make_unique<EncodeSession>(
          service,
          video::PictureSize{inputs[s][0].width(), inputs[s][0].height()},
          configs[s], core::builtin_estimators().create("ACBM")));
    }
    std::vector<SessionOutcome> outcomes(inputs.size());
    std::vector<std::thread> drivers;
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      drivers.emplace_back([&, s] {
        outcomes[s] = drive_session(*sessions[s], inputs[s]);
      });
    }
    for (std::thread& t : drivers) {
      t.join();
    }
    for (std::size_t s = 0; s < inputs.size(); ++s) {
      EXPECT_EQ(outcomes[s].stream, references[s])
          << names[s] << " at " << threads << " pool threads";
    }
  }
}

TEST(ServiceEncode, IntraRefreshAndSlicedEntropyIdentical) {
  // Mid-stream intra frames reset the cross-frame gating (an intra front
  // waits on nothing); sliced entropy publishes reference rows from
  // concurrent slice tasks. Both must leave the bytes untouched.
  const auto frames = test_sequence("foreman", 9);
  EncoderConfig config;
  config.qp = 16;
  config.intra_period = 3;
  config.slices = 4;
  const auto reference = encode_standalone(frames, "ACBM", config);

  EncoderService service(4);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("ACBM"));
  EXPECT_EQ(drive_session(session, frames).stream, reference);
}

TEST(ServiceEncode, DeblockDegradesToFramePublicationIdentically) {
  // In-loop deblocking rewrites rows after entropy coding, so the pipeline
  // must fall back to whole-frame reference publication — and still match.
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 20;
  config.deblock = true;
  const auto reference = encode_standalone(frames, "ACBM", config);

  EncoderService service(4);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("ACBM"));
  EXPECT_EQ(drive_session(session, frames).stream, reference);
}

TEST(ServiceEncode, RateDistortionModeIdentical) {
  const auto frames = test_sequence("table", 6);
  EncoderConfig config;
  config.qp = 20;
  config.mode_decision = ModeDecision::kRateDistortion;
  const auto reference = encode_standalone(frames, "PBM", config);

  EncoderService service(3);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("PBM"));
  EXPECT_EQ(drive_session(session, frames).stream, reference);
}

TEST(ServiceEncode, SynchronousEncodeFrameWorksOnServiceEncoder) {
  // encode_frame on a shared-pool encoder routes through the async path and
  // blocks per frame — still byte-identical, and submit_frame on a
  // standalone encoder must refuse instead of deadlocking.
  const auto frames = test_sequence("foreman", 5);
  EncoderConfig config;
  config.qp = 16;
  const auto reference = encode_standalone(frames, "ACBM", config);

  EncoderService service(2);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("ACBM"));
  // Bypass submit(): exercise the blocking API on the service encoder.
  Encoder& encoder = session.encoder();
  for (const video::Frame& frame : frames) {
    const FrameReport report = encoder.encode_frame(frame);
    EXPECT_GT(report.bits, 0u);
    EXPECT_GE(report.frame_wall_seconds, 0.0);
  }
  EXPECT_EQ(session.finish(), reference);

  const auto estimator = core::builtin_estimators().create("ACBM");
  Encoder standalone({frames[0].width(), frames[0].height()}, config,
                     *estimator);
  EXPECT_THROW(standalone.submit_frame(frames[0]), std::logic_error);
}

TEST(ServiceEncode, ServiceStreamDecodesOnSharedPool) {
  // Round trip through the shared-pool decoder constructor: two decoders on
  // one pool, each on its own lane, must reproduce the per-decoder-pool
  // output.
  const auto frames = test_sequence("foreman", 6);
  EncoderConfig config;
  config.qp = 16;
  config.slices = 4;

  EncoderService service(4);
  EncodeSession session(service, {frames[0].width(), frames[0].height()},
                        config, core::builtin_estimators().create("ACBM"));
  const SessionOutcome outcome = drive_session(session, frames);

  Decoder own_pool(outcome.stream, /*threads=*/4);
  const std::vector<video::Frame> expected = own_pool.decode_all();
  ASSERT_EQ(expected.size(), frames.size());

  std::vector<std::vector<video::Frame>> decoded(2);
  std::vector<std::thread> drivers;
  for (std::size_t d = 0; d < decoded.size(); ++d) {
    drivers.emplace_back([&, d] {
      Decoder decoder(outcome.stream, service.pool());
      decoded[d] = decoder.decode_all();
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  for (const std::vector<video::Frame>& frames_out : decoded) {
    ASSERT_EQ(frames_out.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(frames_out[i].y().visible_equals(expected[i].y())) << i;
      EXPECT_TRUE(frames_out[i].cb().visible_equals(expected[i].cb())) << i;
      EXPECT_TRUE(frames_out[i].cr().visible_equals(expected[i].cr())) << i;
    }
  }
}

TEST(ServiceEncode, MeStageTimerPopulated) {
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 16;
  const auto estimator = core::builtin_estimators().create("ACBM");
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const FrameReport report = encoder.encode_frame(frames[i]);
    EXPECT_GE(report.frame_wall_seconds,
              report.entropy_stage_seconds)  // wall spans every stage
        << i;
    if (i == 0) {
      EXPECT_EQ(report.me_stage_seconds, 0.0);  // intra: ME never ran
    } else {
      EXPECT_GT(report.me_stage_seconds, 0.0) << i;
    }
  }
}

}  // namespace
}  // namespace acbm::codec
