// End-to-end kernel-dispatch invariant: selecting any SAD kernel variant is
// a pure throughput knob — encoding the same input under --kernel=scalar and
// --kernel=auto (the best SIMD variant this CPU offers) must produce
// byte-identical ACV1 bitstreams, for estimators exercising the full-block
// kernel (ACBM, FSBM), the decimated kernels (FSBM-adec, FSBM-sub) and the
// fast searches, serial and threaded alike.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/encoder.hpp"
#include "core/builtin_estimators.hpp"
#include "simd/dispatch.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

std::vector<std::uint8_t> encode_with(const std::vector<video::Frame>& frames,
                                      const std::string& algorithm,
                                      const EncoderConfig& config) {
  const auto estimator = core::builtin_estimators().create(algorithm);
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  for (const video::Frame& frame : frames) {
    (void)encoder.encode_frame(frame);
  }
  return encoder.finish();
}

struct KernelSelectionGuard {
  ~KernelSelectionGuard() { simd::select_kernels(simd::KernelIsa::kAuto); }
};

TEST(SimdBitstream, ScalarAndAutoKernelsEncodeIdentically) {
  if (simd::kernels_for(simd::KernelIsa::kAuto) ==
      simd::kernels_for(simd::KernelIsa::kScalar)) {
    GTEST_SKIP() << "scalar-only build/CPU: nothing to compare";
  }
  KernelSelectionGuard guard;
  const auto frames = test_sequence("foreman", 6);
  EncoderConfig config;
  config.qp = 16;
  // ACBM/FSBM drive the full-block kernel, FSBM-adec/FSBM-sub the quincunx
  // and row-skip decimation kernels, DS a fast-search candidate pattern.
  for (const std::string& algorithm :
       {std::string("ACBM"), std::string("FSBM"), std::string("FSBM-adec"),
        std::string("FSBM-sub"), std::string("DS")}) {
    ASSERT_TRUE(simd::select_kernels(simd::KernelIsa::kScalar));
    const auto scalar_stream = encode_with(frames, algorithm, config);
    ASSERT_TRUE(simd::select_kernels(simd::KernelIsa::kAuto));
    const auto simd_stream = encode_with(frames, algorithm, config);
    EXPECT_EQ(scalar_stream, simd_stream)
        << algorithm << " bitstream differs between scalar and "
        << simd::active_kernel_name();
  }
}

TEST(SimdBitstream, KernelChoiceOrthogonalToThreadCount) {
  if (simd::kernels_for(simd::KernelIsa::kAuto) ==
      simd::kernels_for(simd::KernelIsa::kScalar)) {
    GTEST_SKIP() << "scalar-only build/CPU: nothing to compare";
  }
  KernelSelectionGuard guard;
  const auto frames = test_sequence("carphone", 5);
  EncoderConfig serial_config;
  serial_config.qp = 18;
  EncoderConfig threaded_config = serial_config;
  threaded_config.parallel.threads = 3;

  ASSERT_TRUE(simd::select_kernels(simd::KernelIsa::kScalar));
  const auto scalar_serial = encode_with(frames, "ACBM", serial_config);
  ASSERT_TRUE(simd::select_kernels(simd::KernelIsa::kAuto));
  const auto simd_threaded = encode_with(frames, "ACBM", threaded_config);
  EXPECT_EQ(scalar_serial, simd_threaded)
      << "kernel x thread-count grid must be one equivalence class";
}

}  // namespace
}  // namespace acbm::codec
