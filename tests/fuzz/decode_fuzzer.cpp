// libFuzzer entry point for the decoder — the frontier layer of the
// verification pyramid (docs/TESTING.md).
//
// Two properties are enforced on every input:
//   1. Robustness: codec::Decoder must either decode or throw DecodeError.
//      Any other escape (crash, sanitizer report, uncaught exception) is a
//      finding.
//   2. Differential correctness: on small inputs the naive RefDecoder must
//      reach the same outcome — same frame count, same samples, same
//      concealment count, or an error on both sides — in BOTH decode
//      policies: the default strict-directory mode and conceal=resync,
//      where each implementation independently follows the normative
//      recovery rules of docs/RESILIENCE.md. The reference decoder is
//      orders of magnitude slower, so the differential check is gated on
//      input/geometry size to keep fuzzing throughput useful; the optimized
//      decoder still runs (under sanitizers) on every input.
//
// Build: cmake -DACBM_BUILD_FUZZERS=ON with a clang toolchain, then run
// build/decode_fuzzer tests/fuzz/corpus. Without clang the same entry point
// links into decode_fuzzer_driver, which replays a corpus directory and
// backs the fuzz_corpus_regression ctest (see tests/fuzz/fuzz_driver_main.cpp
// and scripts/make_corpus.py).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/ref_decoder.hpp"

namespace {

constexpr std::size_t kDifferentialMaxBytes = 1 << 16;
constexpr int kDifferentialMaxDimension = 352;

struct Outcome {
  bool error = false;
  std::size_t frames = 0;
  std::uint64_t concealed = 0;
  std::uint64_t resync_skips = 0;
  std::uint64_t digest = 0;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

Outcome optimized_outcome(std::span<const std::uint8_t> input, bool resync) {
  Outcome out;
  try {
    acbm::codec::DecoderConfig config;
    config.conceal = resync ? acbm::codec::Concealment::kResync
                            : acbm::codec::Concealment::kSlice;
    acbm::codec::Decoder decoder(input, config);
    while (auto frame = decoder.decode_frame()) {
      ++out.frames;
      for (int y = 0; y < frame->height(); ++y) {
        for (int x = 0; x < frame->width(); ++x) {
          mix(out.digest, frame->y().row(y)[x]);
        }
      }
      for (int y = 0; y < frame->height() / 2; ++y) {
        for (int x = 0; x < frame->width() / 2; ++x) {
          mix(out.digest, frame->cb().row(y)[x]);
          mix(out.digest, frame->cr().row(y)[x]);
        }
      }
    }
    out.concealed = decoder.concealed_slices();
    out.resync_skips = decoder.report().resync_skips;
  } catch (const acbm::codec::DecodeError&) {
    out.error = true;
  }
  return out;
}

Outcome reference_outcome(std::span<const std::uint8_t> input, bool resync) {
  Outcome out;
  try {
    acbm::codec::RefDecoder decoder(input, resync);
    while (auto frame = decoder.decode_frame()) {
      ++out.frames;
      for (std::uint8_t s : frame->y) {
        mix(out.digest, s);
      }
      for (std::size_t i = 0; i < frame->cb.size(); ++i) {
        mix(out.digest, frame->cb[i]);
        mix(out.digest, frame->cr[i]);
      }
    }
    out.concealed = decoder.concealed_slices();
    out.resync_skips = decoder.resync_skips();
  } catch (const acbm::codec::RefDecodeError&) {
    out.error = true;
  }
  return out;
}

[[noreturn]] void differential_failure(const char* what, const Outcome& opt,
                                       const Outcome& ref) {
  std::fprintf(stderr,
               "decoder disagreement (%s): optimized{error=%d frames=%zu "
               "concealed=%llu resync=%llu digest=%llx} reference{error=%d "
               "frames=%zu concealed=%llu resync=%llu digest=%llx}\n",
               what, opt.error, opt.frames,
               static_cast<unsigned long long>(opt.concealed),
               static_cast<unsigned long long>(opt.resync_skips),
               static_cast<unsigned long long>(opt.digest), ref.error,
               ref.frames, static_cast<unsigned long long>(ref.concealed),
               static_cast<unsigned long long>(ref.resync_skips),
               static_cast<unsigned long long>(ref.digest));
  std::abort();
}

void check_differential(std::span<const std::uint8_t> input, bool resync) {
  const Outcome opt = optimized_outcome(input, resync);
  const Outcome ref = reference_outcome(input, resync);
  if (ref.error != opt.error) {
    differential_failure(resync ? "error class (resync)" : "error class",
                         opt, ref);
  }
  if (!ref.error &&
      (ref.frames != opt.frames || ref.concealed != opt.concealed ||
       ref.resync_skips != opt.resync_skips || ref.digest != opt.digest)) {
    differential_failure(resync ? "decoded output (resync)"
                                : "decoded output",
                         opt, ref);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  bool small = size <= kDifferentialMaxBytes;
  if (small) {
    try {
      const acbm::codec::Decoder probe(input);
      small = probe.size().width <= kDifferentialMaxDimension &&
              probe.size().height <= kDifferentialMaxDimension;
    } catch (const acbm::codec::DecodeError&) {
      // Sequence-header rejection: still cross-checked below (the reference
      // must reject it too), and trivially cheap.
    }
  }

  if (!small) {
    // Too big to cross-check against the naive decoder at fuzzing speed;
    // still exercise the optimized path fully (under the sanitizers).
    try {
      acbm::codec::Decoder decoder(input);
      while (decoder.decode_frame()) {
      }
    } catch (const acbm::codec::DecodeError&) {
    }
    return 0;
  }

  check_differential(input, /*resync=*/false);
  check_differential(input, /*resync=*/true);
  return 0;
}
