// libFuzzer entry point for the decoder — the frontier layer of the
// verification pyramid (docs/TESTING.md).
//
// Two properties are enforced on every input:
//   1. Robustness: codec::Decoder must either decode or throw DecodeError.
//      Any other escape (crash, sanitizer report, uncaught exception) is a
//      finding.
//   2. Differential correctness: on small inputs the naive RefDecoder must
//      reach the same outcome — same frame count, same samples, same
//      concealment count, or an error on both sides. The reference decoder
//      is orders of magnitude slower, so the differential check is gated on
//      input/geometry size to keep fuzzing throughput useful; the optimized
//      decoder still runs (under sanitizers) on every input.
//
// Build: cmake -DACBM_BUILD_FUZZERS=ON with a clang toolchain, then run
// build/decode_fuzzer tests/fuzz/corpus. Without clang the same entry point
// links into decode_fuzzer_driver, which replays a corpus directory and
// backs the fuzz_corpus_regression ctest (see tests/fuzz/fuzz_driver_main.cpp
// and scripts/make_corpus.py).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/ref_decoder.hpp"

namespace {

constexpr std::size_t kDifferentialMaxBytes = 1 << 16;
constexpr int kDifferentialMaxDimension = 352;

struct Outcome {
  bool error = false;
  std::size_t frames = 0;
  std::uint64_t concealed = 0;
  std::uint64_t digest = 0;
};

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
}

[[noreturn]] void differential_failure(const char* what, const Outcome& opt,
                                       const Outcome& ref) {
  std::fprintf(stderr,
               "decoder disagreement (%s): optimized{error=%d frames=%zu "
               "concealed=%llu digest=%llx} reference{error=%d frames=%zu "
               "concealed=%llu digest=%llx}\n",
               what, opt.error, opt.frames,
               static_cast<unsigned long long>(opt.concealed),
               static_cast<unsigned long long>(opt.digest), ref.error,
               ref.frames, static_cast<unsigned long long>(ref.concealed),
               static_cast<unsigned long long>(ref.digest));
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  Outcome opt;
  try {
    acbm::codec::Decoder decoder(input);
    const bool small_geometry =
        decoder.size().width <= kDifferentialMaxDimension &&
        decoder.size().height <= kDifferentialMaxDimension;
    if (!small_geometry || size > kDifferentialMaxBytes) {
      // Too big to cross-check against the naive decoder at fuzzing speed;
      // still exercise the optimized path fully (under the sanitizers).
      try {
        while (decoder.decode_frame()) {
        }
      } catch (const acbm::codec::DecodeError&) {
      }
      return 0;
    }
    while (auto frame = decoder.decode_frame()) {
      ++opt.frames;
      for (int y = 0; y < frame->height(); ++y) {
        for (int x = 0; x < frame->width(); ++x) {
          mix(opt.digest, frame->y().row(y)[x]);
        }
      }
      for (int y = 0; y < frame->height() / 2; ++y) {
        for (int x = 0; x < frame->width() / 2; ++x) {
          mix(opt.digest, frame->cb().row(y)[x]);
          mix(opt.digest, frame->cr().row(y)[x]);
        }
      }
    }
    opt.concealed = decoder.concealed_slices();
  } catch (const acbm::codec::DecodeError&) {
    opt.error = true;
  }

  // Reaching here means the stream is small enough to cross-check (or its
  // sequence header was rejected, which the reference must reject too).
  Outcome ref;
  try {
    acbm::codec::RefDecoder decoder(input);
    while (auto frame = decoder.decode_frame()) {
      ++ref.frames;
      for (std::uint8_t s : frame->y) {
        mix(ref.digest, s);
      }
      for (std::size_t i = 0; i < frame->cb.size(); ++i) {
        mix(ref.digest, frame->cb[i]);
        mix(ref.digest, frame->cr[i]);
      }
    }
    ref.concealed = decoder.concealed_slices();
  } catch (const acbm::codec::RefDecodeError&) {
    ref.error = true;
  }

  if (ref.error != opt.error) {
    differential_failure("error class", opt, ref);
  }
  if (!ref.error &&
      (ref.frames != opt.frames || ref.concealed != opt.concealed ||
       ref.digest != opt.digest)) {
    differential_failure("decoded output", opt, ref);
  }
  return 0;
}
