// Standalone corpus replayer for the fuzz entry points.
//
// libFuzzer needs clang; this driver needs nothing. It links the same
// LLVMFuzzerTestOneInput and feeds it every file (or every file in every
// directory) named on the command line, so gcc-only environments — and the
// fuzz_corpus_regression ctest — replay the checked-in seed corpus through
// the identical code path the fuzzer explores. Exit status is non-zero when
// no inputs were found (a renamed corpus directory must fail loudly, not
// pass vacuously).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

int run_one(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::printf("%s: %zu bytes\n", path.string().c_str(), bytes.size());
  std::fflush(stdout);  // keep the crashing input's name visible on abort
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  int inputs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        inputs += run_one(file);
      }
    } else if (std::filesystem::is_regular_file(path)) {
      inputs += run_one(path);
    } else {
      std::fprintf(stderr, "%s: not a file or directory\n", argv[i]);
      return 2;
    }
  }
  if (inputs == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 2;
  }
  std::printf("replayed %d corpus input(s) cleanly\n", inputs);
  return 0;
}
