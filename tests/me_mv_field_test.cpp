// MvField: storage, median predictor (H.263 rules), smoothness, rate.

#include "me/mv_field.hpp"

#include <gtest/gtest.h>

namespace acbm::me {
namespace {

TEST(MvField, GeometryFromPicture) {
  const MvField f = MvField::for_picture(176, 144);
  EXPECT_EQ(f.mbs_x(), 11);
  EXPECT_EQ(f.mbs_y(), 9);
  EXPECT_FALSE(f.empty());
}

TEST(MvField, DefaultIsEmptyAndZeroInitialised) {
  const MvField empty;
  EXPECT_TRUE(empty.empty());
  const MvField f(3, 2);
  EXPECT_EQ(f.at(2, 1), (Mv{0, 0}));
}

TEST(MvField, SetGetRoundTrip) {
  MvField f(4, 3);
  f.set(1, 2, {6, -8});
  EXPECT_EQ(f.at(1, 2), (Mv{6, -8}));
  EXPECT_EQ(f.at(0, 0), (Mv{0, 0}));
}

TEST(MvField, AtOrFallsBackOutside) {
  MvField f(2, 2);
  f.set(0, 0, {2, 2});
  EXPECT_EQ(f.at_or(-1, 0, {9, 9}), (Mv{9, 9}));
  EXPECT_EQ(f.at_or(0, 5), (Mv{0, 0}));
  EXPECT_EQ(f.at_or(0, 0), (Mv{2, 2}));
}

TEST(MvField, MedianPredictorFirstRowUsesLeft) {
  MvField f(4, 2);
  f.set(0, 0, {10, 4});
  EXPECT_EQ(f.median_predictor(1, 0), (Mv{10, 4}));
  // First block of the first row: no left → zero.
  EXPECT_EQ(f.median_predictor(0, 0), (Mv{0, 0}));
}

TEST(MvField, MedianPredictorInterior) {
  MvField f(4, 3);
  f.set(0, 1, {2, 0});   // left of (1,1)
  f.set(1, 0, {4, 2});   // above
  f.set(2, 0, {6, -2});  // above-right
  EXPECT_EQ(f.median_predictor(1, 1), (Mv{4, 0}));
}

TEST(MvField, MedianPredictorComponentwise) {
  MvField f(4, 3);
  f.set(0, 1, {1, 30});
  f.set(1, 0, {2, 10});
  f.set(2, 0, {3, 20});
  // Median of x: 2; median of y: 20 — from different neighbours.
  EXPECT_EQ(f.median_predictor(1, 1), (Mv{2, 20}));
}

TEST(MvField, MedianPredictorLeftEdgeUsesZeroForLeft) {
  MvField f(3, 3);
  f.set(0, 0, {8, 8});
  f.set(1, 0, {8, 8});
  // Block (0,1): left is outside → 0; above = {8,8}; above-right = {8,8}.
  EXPECT_EQ(f.median_predictor(0, 1), (Mv{8, 8}));
}

TEST(MvField, SmoothnessZeroForUniformField) {
  MvField f(5, 5);
  for (int by = 0; by < 5; ++by) {
    for (int bx = 0; bx < 5; ++bx) {
      f.set(bx, by, {6, -2});
    }
  }
  EXPECT_DOUBLE_EQ(f.smoothness_l1(), 0.0);
}

TEST(MvField, SmoothnessDetectsIncoherence) {
  MvField smooth(4, 4);
  MvField rough(4, 4);
  for (int by = 0; by < 4; ++by) {
    for (int bx = 0; bx < 4; ++bx) {
      smooth.set(bx, by, {bx, by});  // gentle gradient
      rough.set(bx, by, {((bx + by) & 1) != 0 ? 20 : -20, 0});
    }
  }
  EXPECT_GT(rough.smoothness_l1(), smooth.smoothness_l1() * 5.0);
}

TEST(MvField, SingleBlockFieldSmoothnessIsZero) {
  MvField f(1, 1);
  f.set(0, 0, {10, 10});
  EXPECT_DOUBLE_EQ(f.smoothness_l1(), 0.0);
}

TEST(MvField, TotalRateLowerForCoherentField) {
  MvField coherent(6, 6);
  MvField scattered(6, 6);
  for (int by = 0; by < 6; ++by) {
    for (int bx = 0; bx < 6; ++bx) {
      coherent.set(bx, by, {8, -4});
      scattered.set(bx, by,
                    {((bx * 7 + by * 3) % 29) - 14, ((bx * 5 + by * 11) % 29) - 14});
    }
  }
  EXPECT_LT(coherent.total_rate_bits(), scattered.total_rate_bits());
}

TEST(MvField, ZeroFieldRateIsTwoBitsPerBlock) {
  const MvField f(4, 4);
  EXPECT_EQ(f.total_rate_bits(), 2u * 16u);  // se(0)+se(0) per block
}

}  // namespace
}  // namespace acbm::me
