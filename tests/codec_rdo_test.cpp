// Rate–distortion-optimized mode decision: J = SSD + λ·bits per macroblock
// (the paper's §2.1 cost function applied to mode selection).

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"
#include "synth/sequences.hpp"
#include "test_support.hpp"
#include "video/psnr.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> sequence(const std::string& name, int count) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = count;
  return synth::make_sequence(req);
}

struct RunResult {
  std::uint64_t bits = 0;
  double sse = 0.0;  // total luma SSE vs source
  int skip_mbs = 0;
  int intra_mbs = 0;
};

RunResult run(const std::vector<video::Frame>& frames, ModeDecision mode,
              int qp) {
  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = qp;
  cfg.search_range = 7;
  cfg.mode_decision = mode;
  Encoder encoder({frames[0].width(), frames[0].height()}, cfg, pbm);
  RunResult result;
  for (const auto& f : frames) {
    const FrameReport r = encoder.encode_frame(f);
    result.bits += r.bits;
    result.sse += video::mse(f.y(), encoder.last_recon().y()) *
                  f.width() * f.height();
    result.skip_mbs += r.skip_mbs;
    result.intra_mbs += r.intra ? 0 : r.intra_mbs;
  }
  return result;
}

TEST(RdoModeDecision, LagrangianCostNeverWorseThanHeuristic) {
  // RDO minimises J per macroblock, so the sequence-level J must not exceed
  // the heuristic's (same λ). Allow 1 % slack for the greedy per-MB scope
  // (predictor coupling between macroblocks is not jointly optimised).
  for (const char* name : {"carphone", "table", "foreman"}) {
    const auto frames = sequence(name, 5);
    for (int qp : {8, 16, 28}) {
      const RunResult heuristic = run(frames, ModeDecision::kHeuristic, qp);
      const RunResult rdo = run(frames, ModeDecision::kRateDistortion, qp);
      const double lambda = 0.85 * qp * qp;
      const double j_heuristic =
          heuristic.sse + lambda * static_cast<double>(heuristic.bits);
      const double j_rdo = rdo.sse + lambda * static_cast<double>(rdo.bits);
      EXPECT_LE(j_rdo, j_heuristic * 1.01) << name << " qp " << qp;
    }
  }
}

TEST(RdoModeDecision, StreamsDecodableWithParity) {
  const auto frames = sequence("table", 4);
  core::Acbm acbm;
  EncoderConfig cfg;
  cfg.qp = 20;
  cfg.search_range = 7;
  cfg.mode_decision = ModeDecision::kRateDistortion;
  Encoder encoder({64, 48}, cfg, acbm);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)encoder.encode_frame(f);
    recons.push_back(encoder.last_recon());
  }
  Decoder decoder(encoder.finish());
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(decoded[i].y().visible_equals(recons[i].y())) << i;
    EXPECT_TRUE(decoded[i].cb().visible_equals(recons[i].cb())) << i;
    EXPECT_TRUE(decoded[i].cr().visible_equals(recons[i].cr())) << i;
  }
}

TEST(RdoModeDecision, SkipsAggressivelyAtCoarseQp) {
  // At coarse quantisers λ is huge, so RDO should skip at least as much as
  // the heuristic (which requires an exactly-zero residual to skip).
  const auto frames = sequence("miss_america", 5);
  const RunResult heuristic = run(frames, ModeDecision::kHeuristic, 30);
  const RunResult rdo = run(frames, ModeDecision::kRateDistortion, 30);
  EXPECT_GE(rdo.skip_mbs, heuristic.skip_mbs);
  EXPECT_LE(rdo.bits, heuristic.bits);
}

TEST(RdoModeDecision, StaticSceneFullySkipped) {
  video::Frame still(64, 48);
  still.y() = acbm::test::random_plane(64, 48, 3);
  still.extend_borders();
  me::FullSearch fsbm;
  EncoderConfig cfg;
  cfg.qp = 16;
  cfg.search_range = 7;
  cfg.mode_decision = ModeDecision::kRateDistortion;
  Encoder encoder({64, 48}, cfg, fsbm);
  (void)encoder.encode_frame(still);
  const FrameReport r = encoder.encode_frame(still);
  EXPECT_EQ(r.skip_mbs, 12);
  EXPECT_EQ(r.inter_mbs, 0);
}

TEST(RdoModeDecision, MacroblockCountsConsistent) {
  const auto frames = sequence("foreman", 4);
  me::Pbm pbm;
  EncoderConfig cfg;
  cfg.qp = 16;
  cfg.search_range = 7;
  cfg.mode_decision = ModeDecision::kRateDistortion;
  Encoder encoder({64, 48}, cfg, pbm);
  (void)encoder.encode_frame(frames[0]);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const FrameReport r = encoder.encode_frame(frames[i]);
    EXPECT_EQ(r.intra_mbs + r.inter_mbs + r.skip_mbs, 12) << i;
  }
}

}  // namespace
}  // namespace acbm::codec
