// Fault-tolerance invariants of the encoding service.
//
// The contract under test (docs/FAULT_TOLERANCE.md): a fault inside one
// session's pipeline never crashes the process, never hangs a waiter, and
// never perturbs any other session's bytes — it surfaces as exactly one
// structured SessionError on the failed frame's future, latches that
// session, and resolves every other outstanding frame of that session with
// a kSessionFailed error. Because util::FaultInjector's firing decision is
// a pure hash of (seed, site, lane, event), the soak test can predict from
// the spec alone which frame of which session will fail, and assert the
// error's frame_index matches — across a sweep of 24 seeds.
//
// Also here: deadline shedding, queue-limit shedding, the degradation
// ladder, ServiceStats conservation, destruction with frames in flight,
// and the kv spec grammars for "fault:..." and "overload:...".

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "codec/encoder.hpp"
#include "codec/service.hpp"
#include "codec/session_error.hpp"
#include "core/builtin_estimators.hpp"
#include "synth/sequences.hpp"
#include "util/fault_injector.hpp"
#include "util/kv.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

std::vector<std::uint8_t> encode_standalone(
    const std::vector<video::Frame>& frames, const EncoderConfig& config) {
  const auto estimator = core::builtin_estimators().create("ACBM");
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  for (const video::Frame& frame : frames) {
    encoder.encode_frame(frame);
  }
  return encoder.finish();
}

std::unique_ptr<EncodeSession> make_session(EncoderService& service,
                                            const std::vector<video::Frame>& f,
                                            const EncoderConfig& config) {
  return std::make_unique<EncodeSession>(
      service, video::PictureSize{f[0].width(), f[0].height()}, config,
      core::builtin_estimators().create("ACBM"));
}

/// One frame's outcome when driven through a possibly-faulty session.
struct FrameOutcome {
  bool ok = false;
  SessionErrorClass error_class = SessionErrorClass::kEncodeFailed;
  std::uint64_t error_frame = 0;
};

std::vector<FrameOutcome> drive_all(EncodeSession& session,
                                    const std::vector<video::Frame>& frames) {
  std::vector<std::future<Packet>> futures;
  futures.reserve(frames.size());
  for (const video::Frame& frame : frames) {
    futures.push_back(session.submit(frame));
  }
  std::vector<FrameOutcome> outcomes;
  outcomes.reserve(futures.size());
  for (std::future<Packet>& f : futures) {
    FrameOutcome o;
    try {
      (void)f.get();
      o.ok = true;
    } catch (const SessionError& e) {
      o.error_class = e.error_class();
      o.error_frame = e.frame_index();
    }
    outcomes.push_back(o);
  }
  return outcomes;
}

// ---------------------------------------------------------------- specs ---

TEST(FaultSpec, ParsesAndRoundTrips) {
  const util::FaultConfig c =
      util::fault_config_from_spec("fault:site=alloc,p=0.25,seed=9");
  EXPECT_EQ(c.site, util::FaultSite::kAlloc);
  EXPECT_DOUBLE_EQ(c.p, 0.25);
  EXPECT_EQ(c.seed, 9u);
  EXPECT_EQ(util::to_spec(c), "fault:site=alloc,p=0.25,seed=9");

  const util::FaultConfig d = util::fault_config_from_spec(
      "fault:site=task_delay_ms,p=1,seed=3,delay_ms=20");
  EXPECT_EQ(d.site, util::FaultSite::kTaskDelay);
  EXPECT_EQ(d.delay_ms, 20);
  EXPECT_EQ(util::fault_config_from_spec(util::to_spec(d)).delay_ms, 20);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)util::fault_config_from_spec("faults:p=0.1"),
               util::SpecError);
  EXPECT_THROW((void)util::fault_config_from_spec("fault:site=nope,p=0.1"),
               util::SpecError);
  EXPECT_THROW((void)util::fault_config_from_spec("fault:p=1.5"),
               util::SpecError);
  EXPECT_THROW((void)util::fault_config_from_spec("fault:frequency=1"),
               util::SpecError);
}

TEST(FaultSpec, FiringIsAPureHash) {
  const util::FaultInjector inj("fault:site=encode_throw,p=0.2,seed=11");
  for (std::uint64_t lane = 0; lane < 4; ++lane) {
    const std::int64_t first = inj.first_fire(lane, 0, 64);
    for (std::uint64_t event = 0; event < 64; ++event) {
      // Same (lane, event) must answer the same on every query, and agree
      // with first_fire's scan.
      EXPECT_EQ(inj.should_fire(lane, event), inj.should_fire(lane, event));
      if (first >= 0 && event < static_cast<std::uint64_t>(first)) {
        EXPECT_FALSE(inj.should_fire(lane, event));
      }
    }
    if (first >= 0) {
      EXPECT_TRUE(inj.should_fire(lane, static_cast<std::uint64_t>(first)));
    }
  }
  EXPECT_FALSE(util::FaultInjector().armed());
}

TEST(OverloadSpec, ParsesAndRoundTrips) {
  const OverloadPolicy p = overload_policy_from_spec(
      "overload:queue=8,deadline_ms=40,degrade=ACBM:alpha=200,beta=8");
  EXPECT_EQ(p.queue_limit, 8);
  EXPECT_EQ(p.deadline_ms, 40);
  // degrade= consumes the remainder verbatim — estimator specs embed ','.
  EXPECT_EQ(p.degrade, "ACBM:alpha=200,beta=8");
  const OverloadPolicy again = overload_policy_from_spec(to_spec(p));
  EXPECT_EQ(again.queue_limit, p.queue_limit);
  EXPECT_EQ(again.deadline_ms, p.deadline_ms);
  EXPECT_EQ(again.degrade, p.degrade);
}

TEST(OverloadSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)overload_policy_from_spec("overloaded:queue=1"),
               util::SpecError);
  EXPECT_THROW((void)overload_policy_from_spec("overload:queue=-1"),
               util::SpecError);
  EXPECT_THROW((void)overload_policy_from_spec("overload:window=4"),
               util::SpecError);
  EXPECT_THROW((void)overload_policy_from_spec("overload:degrade="),
               util::SpecError);
}

// ----------------------------------------------------------------- soak ---

// The tentpole soak: 24 seeds x 3 sessions x 12 frames with p=0.2
// encode_throw faults. For every session the injector's pure hash predicts
// the first firing frame; the session's outcomes must match it exactly —
// values before, a fatal kEncodeFailed carrying that frame index at it,
// only structured errors after — and sessions the hash spares must produce
// bytes identical to a fault-free standalone encode. Never a crash, never
// a hang, never an unstructured exception.
TEST(FaultSoak, SeedSweepIsPredictedAndContained) {
  constexpr int kSeeds = 24;
  constexpr int kSessions = 3;
  constexpr int kFrames = 12;
  const auto frames = test_sequence("foreman", kFrames);
  EncoderConfig config;
  config.qp = 16;
  const std::vector<std::uint8_t> reference =
      encode_standalone(frames, config);

  int fired_sessions = 0;
  int clean_sessions = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const util::FaultInjector injector(
        "fault:site=encode_throw,p=0.2,seed=" + std::to_string(seed));
    EncoderService service(4);
    service.set_fault_injector(&injector);
    std::vector<std::unique_ptr<EncodeSession>> sessions;
    for (int s = 0; s < kSessions; ++s) {
      sessions.push_back(make_session(service, frames, config));
    }
    std::vector<std::vector<FrameOutcome>> outcomes(kSessions);
    std::vector<std::thread> drivers;
    for (int s = 0; s < kSessions; ++s) {
      drivers.emplace_back([&, s] {
        outcomes[static_cast<std::size_t>(s)] =
            drive_all(*sessions[static_cast<std::size_t>(s)], frames);
      });
    }
    for (std::thread& t : drivers) {
      t.join();
    }
    for (int s = 0; s < kSessions; ++s) {
      const std::uint64_t lane = sessions[static_cast<std::size_t>(s)]->id();
      const std::int64_t fire = injector.first_fire(lane, 0, kFrames);
      const std::vector<FrameOutcome>& seen =
          outcomes[static_cast<std::size_t>(s)];
      ASSERT_EQ(seen.size(), static_cast<std::size_t>(kFrames));
      if (fire < 0) {
        ++clean_sessions;
        for (const FrameOutcome& o : seen) {
          EXPECT_TRUE(o.ok) << "seed " << seed << " lane " << lane;
        }
        EXPECT_FALSE(sessions[static_cast<std::size_t>(s)]->failed());
        EXPECT_EQ(sessions[static_cast<std::size_t>(s)]->finish(), reference)
            << "uninjected session drifted from the fault-free bytes (seed "
            << seed << ", lane " << lane << ")";
      } else {
        ++fired_sessions;
        EXPECT_TRUE(sessions[static_cast<std::size_t>(s)]->failed());
        for (int f = 0; f < kFrames; ++f) {
          const FrameOutcome& o = seen[static_cast<std::size_t>(f)];
          if (f < fire) {
            EXPECT_TRUE(o.ok) << "seed " << seed << " lane " << lane
                              << " frame " << f << " (fire at " << fire
                              << ")";
          } else if (f == fire) {
            ASSERT_FALSE(o.ok);
            EXPECT_EQ(o.error_class, SessionErrorClass::kEncodeFailed);
            EXPECT_EQ(o.error_frame, static_cast<std::uint64_t>(fire));
          } else {
            ASSERT_FALSE(o.ok) << "frame after the latch resolved with a "
                                  "value (seed " << seed << ")";
            EXPECT_EQ(o.error_class, SessionErrorClass::kSessionFailed);
          }
        }
      }
    }
  }
  // The sweep must actually exercise both arms, or it proves nothing.
  EXPECT_GT(fired_sessions, 0);
  EXPECT_GT(clean_sessions, 0);
}

// site=alloc faults are classified as resource exhaustion, not encode bugs.
TEST(FaultSoak, AllocFaultClassifiesAsResource) {
  const auto frames = test_sequence("foreman", 3);
  EncoderConfig config;
  config.qp = 16;
  const util::FaultInjector injector("fault:site=alloc,p=1,seed=1");
  EncoderService service(2);
  service.set_fault_injector(&injector);
  auto session = make_session(service, frames, config);
  const std::vector<FrameOutcome> seen = drive_all(*session, frames);
  ASSERT_FALSE(seen[0].ok);
  EXPECT_EQ(seen[0].error_class, SessionErrorClass::kResource);
}

// A poisoned session must not perturb a healthy one sharing the pool.
TEST(FaultSoak, HealthySessionSurvivesPoisonedNeighbour) {
  constexpr int kFrames = 6;
  const auto frames = test_sequence("carphone", kFrames);
  EncoderConfig config;
  config.qp = 16;
  const std::vector<std::uint8_t> reference =
      encode_standalone(frames, config);

  // Find a seed whose hash poisons lane 0 early but spares lane 1 entirely
  // (p=0.5 makes both outcomes common; the scan is deterministic).
  int seed = -1;
  for (int candidate = 0; candidate < 1000; ++candidate) {
    const util::FaultInjector probe(
        "fault:site=encode_throw,p=0.5,seed=" + std::to_string(candidate));
    if (probe.first_fire(0, 0, kFrames) == 0 &&
        probe.first_fire(1, 0, kFrames) < 0) {
      seed = candidate;
      break;
    }
  }
  ASSERT_GE(seed, 0);

  const util::FaultInjector injector(
      "fault:site=encode_throw,p=0.5,seed=" + std::to_string(seed));
  EncoderService service(4);
  service.set_fault_injector(&injector);
  auto poisoned = make_session(service, frames, config);
  auto healthy = make_session(service, frames, config);
  ASSERT_EQ(poisoned->id(), 0u);
  ASSERT_EQ(healthy->id(), 1u);

  std::vector<FrameOutcome> poisoned_seen;
  std::vector<FrameOutcome> healthy_seen;
  std::thread a([&] { poisoned_seen = drive_all(*poisoned, frames); });
  std::thread b([&] { healthy_seen = drive_all(*healthy, frames); });
  a.join();
  b.join();

  EXPECT_TRUE(poisoned->failed());
  ASSERT_FALSE(poisoned_seen[0].ok);
  EXPECT_EQ(poisoned_seen[0].error_class, SessionErrorClass::kEncodeFailed);
  EXPECT_FALSE(healthy->failed());
  for (const FrameOutcome& o : healthy_seen) {
    EXPECT_TRUE(o.ok);
  }
  EXPECT_EQ(healthy->finish(), reference);
}

// After the latch, new submits fail fast with kSessionFailed.
TEST(FaultSoak, LatchedSessionFailsFastOnSubmit) {
  const auto frames = test_sequence("foreman", 2);
  EncoderConfig config;
  config.qp = 16;
  const util::FaultInjector injector("fault:site=encode_throw,p=1,seed=1");
  EncoderService service(2);
  service.set_fault_injector(&injector);
  auto session = make_session(service, frames, config);
  (void)drive_all(*session, frames);
  ASSERT_TRUE(session->failed());
  std::future<Packet> late = session->submit(frames[0]);
  try {
    (void)late.get();
    FAIL() << "submit on a latched session resolved with a value";
  } catch (const SessionError& e) {
    EXPECT_EQ(e.error_class(), SessionErrorClass::kSessionFailed);
  }
}

// ------------------------------------------------- deadlines & shedding ---

// A frame whose deadline has already passed is shed with kTimeout at
// dispatch — and, critically, does NOT consume an encode index: the
// surviving frames' bytes equal a standalone encode of just those frames
// (shedding stays invisible to a decoder of the emitted stream).
TEST(Deadlines, ExpiredFrameIsShedWithoutConsumingAnIndex) {
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 16;
  const std::vector<video::Frame> kept = {frames[0], frames[1], frames[3]};
  const std::vector<std::uint8_t> reference = encode_standalone(kept, config);

  EncoderService service(2);
  auto session = make_session(service, frames, config);
  std::vector<std::future<Packet>> futures;
  for (int f = 0; f < 4; ++f) {
    SubmitOptions options;
    if (f == 2) {
      options.deadline =
          std::chrono::steady_clock::now() - std::chrono::seconds(1);
    }
    futures.push_back(session->submit(frames[static_cast<std::size_t>(f)],
                                      options));
  }
  for (int f = 0; f < 4; ++f) {
    if (f == 2) {
      try {
        (void)futures[2].get();
        FAIL() << "expired frame resolved with a value";
      } catch (const SessionError& e) {
        EXPECT_EQ(e.error_class(), SessionErrorClass::kTimeout);
        EXPECT_EQ(e.frame_index(), 2u);
        EXPECT_FALSE(e.fatal());
      }
    } else {
      EXPECT_NO_THROW((void)futures[static_cast<std::size_t>(f)].get());
    }
  }
  EXPECT_FALSE(session->failed());
  EXPECT_EQ(session->finish(), reference);
}

// With a queue limit and a slow pipeline, excess submits shed kOverloaded
// (submit) or return nullopt (try_submit) — and the session survives.
TEST(Overload, QueueLimitShedsBeyondCapacity) {
  const auto frames = test_sequence("foreman", 1);
  EncoderConfig config;
  config.qp = 16;
  // Every frame sleeps 100 ms at the front, so the admission queue is
  // guaranteed to still hold the pending frame when the excess arrives.
  const util::FaultInjector injector(
      "fault:site=task_delay_ms,p=1,seed=1,delay_ms=100");
  EncoderService service(2);
  service.set_fault_injector(&injector);
  auto session = make_session(service, frames, config);
  OverloadPolicy policy;
  policy.queue_limit = 1;
  session->configure_overload(policy);

  std::vector<std::future<Packet>> futures;
  futures.push_back(session->submit(frames[0]));  // -> front (in flight)
  futures.push_back(session->submit(frames[0]));  // -> pending (queue of 1)
  // Queue full: the polling API declines...
  EXPECT_FALSE(session->try_submit(frames[0]).has_value());
  // ...and the throwing API sheds with a structured error.
  std::future<Packet> shed = session->submit(frames[0]);
  try {
    (void)shed.get();
    FAIL() << "over-limit frame resolved with a value";
  } catch (const SessionError& e) {
    EXPECT_EQ(e.error_class(), SessionErrorClass::kOverloaded);
    EXPECT_FALSE(e.fatal());
  }
  for (std::future<Packet>& f : futures) {
    EXPECT_NO_THROW((void)f.get());
  }
  EXPECT_FALSE(session->failed());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 2u);  // try_submit + submit
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

// The degradation ladder: with degrade configured, over-limit frames are
// encoded on the cheaper estimator instead of being shed.
TEST(Overload, DegradeEncodesInsteadOfShedding) {
  constexpr int kFrames = 8;
  const auto frames = test_sequence("foreman", kFrames);
  EncoderConfig config;
  config.qp = 16;
  const util::FaultInjector injector(
      "fault:site=task_delay_ms,p=1,seed=1,delay_ms=20");
  EncoderService service(2);
  service.set_fault_injector(&injector);
  auto session = make_session(service, frames, config);
  OverloadPolicy policy = overload_policy_from_spec(
      "overload:queue=1,degrade=ACBM:alpha=200");
  session->configure_overload(
      policy, core::builtin_estimators().create(policy.degrade));

  std::vector<std::future<Packet>> futures;
  for (const video::Frame& frame : frames) {
    futures.push_back(session->submit(frame));
  }
  for (std::future<Packet>& f : futures) {
    EXPECT_NO_THROW((void)f.get());  // nothing shed, nothing failed
  }
  EXPECT_FALSE(session->failed());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kFrames));
  EXPECT_GT(stats.degraded, 0u);
}

// --------------------------------------------------------------- stats ----

// Conservation law: once drained, accepted == completed + timed_out +
// failed; rejected counts the never-admitted separately.
TEST(ServiceStatsTest, CountersObeyConservation) {
  const auto frames = test_sequence("foreman", 5);
  EncoderConfig config;
  config.qp = 16;
  EncoderService service(2);
  auto session = make_session(service, frames, config);
  std::vector<std::future<Packet>> futures;
  for (int f = 0; f < 5; ++f) {
    SubmitOptions options;
    if (f == 3) {
      options.deadline =
          std::chrono::steady_clock::now() - std::chrono::seconds(1);
    }
    futures.push_back(session->submit(frames[static_cast<std::size_t>(f)],
                                      options));
  }
  for (std::future<Packet>& f : futures) {
    try {
      (void)f.get();
    } catch (const SessionError&) {
    }
  }
  session->drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.accepted, stats.completed + stats.timed_out + stats.failed);
  EXPECT_GE(stats.peak_queue_depth, 1u);
}

// ---------------------------------------------------------- destruction ---

// Destroying a session with frames in flight must leave every outstanding
// future resolvable — a value or a SessionError, never std::future_error
// (the latent broken-promise path this PR closes).
TEST(Destruction, InflightFuturesNeverBreakThePromise) {
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 16;
  const util::FaultInjector injector(
      "fault:site=task_delay_ms,p=1,seed=1,delay_ms=20");
  EncoderService service(2);
  service.set_fault_injector(&injector);
  auto session = make_session(service, frames, config);
  std::vector<std::future<Packet>> futures;
  for (const video::Frame& frame : frames) {
    futures.push_back(session->submit(frame));
  }
  session.reset();  // frames still in flight
  for (std::future<Packet>& f : futures) {
    try {
      (void)f.get();
    } catch (const SessionError&) {
      // acceptable: structured error
    } catch (const std::future_error&) {
      FAIL() << "destruction broke a pending frame's promise";
    }
  }
}

}  // namespace
}  // namespace acbm::codec
