// Exp-Golomb codes: canonical values, bit lengths, round-trips, monotonicity.

#include "util/expgolomb.hpp"

#include <gtest/gtest.h>

#include "util/bitstream.hpp"
#include "util/rng.hpp"

namespace acbm::util {
namespace {

TEST(ExpGolombUe, CanonicalCodewords) {
  // ue(0)=1, ue(1)=010, ue(2)=011, ue(3)=00100 ... (H.26x convention).
  struct Case {
    std::uint32_t value;
    std::uint32_t bits;
    int length;
  };
  const Case cases[] = {
      {0, 0b1, 1},     {1, 0b010, 3},   {2, 0b011, 3},    {3, 0b00100, 5},
      {4, 0b00101, 5}, {5, 0b00110, 5}, {6, 0b00111, 5},  {7, 0b0001000, 7},
  };
  for (const Case& c : cases) {
    BitWriter bw;
    put_ue(bw, c.value);
    EXPECT_EQ(bw.bit_count(), static_cast<std::size_t>(c.length))
        << "value " << c.value;
    const auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(br.get_bits(c.length), c.bits) << "value " << c.value;
  }
}

TEST(ExpGolombUe, BitLengthMatchesEncoding) {
  for (std::uint32_t v : {0u, 1u, 2u, 3u, 7u, 8u, 63u, 64u, 255u, 1000u,
                          65535u, 1000000u}) {
    BitWriter bw;
    put_ue(bw, v);
    EXPECT_EQ(static_cast<int>(bw.bit_count()), ue_bit_length(v))
        << "value " << v;
  }
}

TEST(ExpGolombSe, ZigzagMapping) {
  // se: 0→0, 1→+1, 2→−1, 3→+2, 4→−2 ...
  struct Case {
    std::int32_t value;
    int length;
  };
  const Case cases[] = {{0, 1},  {1, 3},  {-1, 3}, {2, 5},
                        {-2, 5}, {3, 5},  {-3, 5}, {4, 7}};
  for (const Case& c : cases) {
    BitWriter bw;
    put_se(bw, c.value);
    EXPECT_EQ(static_cast<int>(bw.bit_count()), c.length)
        << "value " << c.value;
    EXPECT_EQ(se_bit_length(c.value), c.length) << "value " << c.value;
    const auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(get_se(br), c.value);
  }
}

TEST(ExpGolombSe, PositiveShorterOrEqualToNegative) {
  // The mapping gives positive values the (weakly) shorter code — relevant
  // because MVDs are symmetric, so total rate is unaffected, but tests pin
  // the convention.
  for (int v = 1; v < 100; ++v) {
    EXPECT_LE(se_bit_length(v), se_bit_length(-v));
  }
}

TEST(ExpGolombUe, LengthIsMonotoneNonDecreasing) {
  int prev = ue_bit_length(0);
  for (std::uint32_t v = 1; v < 5000; ++v) {
    const int len = ue_bit_length(v);
    EXPECT_GE(len, prev) << "value " << v;
    prev = len;
  }
}

TEST(ExpGolombRoundTrip, UeRandomized) {
  util::Rng rng(7);
  BitWriter bw;
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(
        rng.next_u64() >> (33 + rng.next_below(28)));
    values.push_back(v);
    put_ue(bw, v);
  }
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (std::uint32_t v : values) {
    EXPECT_EQ(get_ue(br), v);
  }
}

TEST(ExpGolombRoundTrip, SeRandomized) {
  util::Rng rng(8);
  BitWriter bw;
  std::vector<std::int32_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::int32_t v = rng.next_in_range(-100000, 100000);
    values.push_back(v);
    put_se(bw, v);
  }
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (std::int32_t v : values) {
    EXPECT_EQ(get_se(br), v);
  }
}

TEST(ExpGolombRoundTrip, InterleavedUeSeSurvivesAlignment) {
  BitWriter bw;
  put_ue(bw, 13);
  put_se(bw, -7);
  bw.align();
  put_ue(bw, 64);  // the codec's EOB value
  const auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(get_ue(br), 13u);
  EXPECT_EQ(get_se(br), -7);
  br.align();
  EXPECT_EQ(get_ue(br), 64u);
}

TEST(ExpGolomb, DecodeOnEmptyStreamIsSafe) {
  const std::vector<std::uint8_t> empty;
  BitReader br(empty);
  EXPECT_EQ(get_ue(br), 0u);
  EXPECT_TRUE(br.exhausted());
}

}  // namespace
}  // namespace acbm::util
