// The estimator spec grammar ("NAME:key=val,...") end to end: parsing and
// canonical round-trips, duplicate-key rejection, range/type validation
// with per-estimator key lists in the errors, bare-name back-compat, and
// the semantic anchor that "ACBM:alpha=0,beta=0,gamma=0" is bit-identical
// to AcbmParams::always_full_search().

#include "me/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "core/params.hpp"
#include "me/decimation.hpp"
#include "me/full_search.hpp"
#include "me/registry.hpp"
#include "synth/sequences.hpp"
#include "util/kv.hpp"

namespace acbm {
namespace {

// ------------------------------------------------------------ kv grammar

TEST(KvGrammar, ParsesOrderedPairsAndTrimsSpaces) {
  const auto pairs = util::parse_kv_list(" a=1 , b = two ,c=");
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].first, "a");
  EXPECT_EQ(pairs[0].second, "1");
  EXPECT_EQ(pairs[1].first, "b");
  EXPECT_EQ(pairs[1].second, "two");
  EXPECT_EQ(pairs[2].first, "c");
  EXPECT_EQ(pairs[2].second, "");
}

TEST(KvGrammar, EmptyTextIsEmptyList) {
  EXPECT_TRUE(util::parse_kv_list("").empty());
  EXPECT_TRUE(util::parse_kv_list("  ").empty());
}

TEST(KvGrammar, RejectsDuplicateKeysAndMalformedTokens) {
  EXPECT_THROW((void)util::parse_kv_list("a=1,a=2"), util::SpecError);
  EXPECT_THROW((void)util::parse_kv_list("a=1,,b=2"), util::SpecError);
  EXPECT_THROW((void)util::parse_kv_list("novalue"), util::SpecError);
  EXPECT_THROW((void)util::parse_kv_list("=1"), util::SpecError);
}

TEST(KvGrammar, StrictScalarsRejectTrailingGarbage) {
  EXPECT_EQ(util::parse_int_strict("42", "x"), 42);
  EXPECT_DOUBLE_EQ(util::parse_double_strict("0.25", "x"), 0.25);
  EXPECT_THROW((void)util::parse_int_strict("12x", "x"), util::SpecError);
  EXPECT_THROW((void)util::parse_int_strict("", "x"), util::SpecError);
  EXPECT_THROW((void)util::parse_double_strict("1.2.3", "x"),
               util::SpecError);
  EXPECT_TRUE(util::parse_bool_strict("on", "x"));
  EXPECT_FALSE(util::parse_bool_strict("0", "x"));
  EXPECT_THROW((void)util::parse_bool_strict("yes", "x"), util::SpecError);
}

TEST(KvGrammar, FormatDoubleRoundTripsAndPrefersPlainIntegers) {
  EXPECT_EQ(util::format_double(1000.0), "1000");
  EXPECT_EQ(util::format_double(0.25), "0.25");
  EXPECT_EQ(util::format_double(1e18), "1e+18");
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  EXPECT_DOUBLE_EQ(
      util::parse_double_strict(util::format_double(awkward), "x"), awkward);
}

// --------------------------------------------------------- EstimatorSpec

TEST(EstimatorSpec, BareNameHasNoParams) {
  const auto spec = me::EstimatorSpec::parse("ACBM");
  EXPECT_EQ(spec.name, "ACBM");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "ACBM");
}

TEST(EstimatorSpec, ParseToStringRoundTrip) {
  const std::string text = "ACBM:alpha=500,beta=8,gamma=0.25";
  EXPECT_EQ(me::EstimatorSpec::parse(text).to_string(), text);
}

TEST(EstimatorSpec, RejectsEmptyNameDanglingColonAndDuplicates) {
  EXPECT_THROW((void)me::EstimatorSpec::parse(""), util::SpecError);
  EXPECT_THROW((void)me::EstimatorSpec::parse(":alpha=1"), util::SpecError);
  EXPECT_THROW((void)me::EstimatorSpec::parse("ACBM:"), util::SpecError);
  EXPECT_THROW((void)me::EstimatorSpec::parse("ACBM:alpha=1,alpha=2"),
               util::SpecError);
}

// --------------------------------------------------- ParamSet validation

TEST(ParamSet, BindsDefaultsAndExplicitValues) {
  const auto spec = me::EstimatorSpec::parse("ACBM:alpha=500");
  const auto set = me::ParamSet::bind(
      spec, core::builtin_estimators().params("ACBM"), "ACBM");
  EXPECT_DOUBLE_EQ(set.get_double("alpha"), 500.0);
  EXPECT_DOUBLE_EQ(set.get_double("beta"), 8.0);
  EXPECT_DOUBLE_EQ(set.get_double("gamma"), 0.25);
  EXPECT_TRUE(set.explicitly_set("alpha"));
  EXPECT_FALSE(set.explicitly_set("beta"));
}

TEST(ParamSet, CanonicalSpecListsEveryKeyAndRoundTrips) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  const std::string canonical = registry.canonical_spec("ACBM:alpha=500");
  EXPECT_EQ(canonical, "ACBM:alpha=500,beta=8,gamma=0.25");
  // Canonicalisation is idempotent (a fixed point of the grammar).
  EXPECT_EQ(registry.canonical_spec(canonical), canonical);
  // Knob-less estimators canonicalise to the bare name.
  EXPECT_EQ(registry.canonical_spec("TSS"), "TSS");
}

TEST(ParamSet, UnknownKeyErrorListsEveryValidKey) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  try {
    (void)registry.create("ACBM:delta=1");
    FAIL() << "expected util::SpecError";
  } catch (const util::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("delta"), std::string::npos);
    EXPECT_NE(message.find("alpha"), std::string::npos);
    EXPECT_NE(message.find("beta"), std::string::npos);
    EXPECT_NE(message.find("gamma"), std::string::npos);
  }
}

TEST(ParamSet, RangeAndTypeValidation) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  EXPECT_THROW((void)registry.create("ACBM:alpha=-1"), util::SpecError);
  EXPECT_THROW((void)registry.create("ACBM:alpha=abc"), util::SpecError);
  EXPECT_THROW((void)registry.create("PBM:iters=1.5"), util::SpecError);
  EXPECT_THROW((void)registry.create("PBM:iters=99999"), util::SpecError);
  EXPECT_THROW((void)registry.create("FSBM:dec=hex"), util::SpecError);
  // Knob-less estimators reject every key.
  EXPECT_THROW((void)registry.create("TSS:step=4"), util::SpecError);
}

TEST(ParamSet, EnumAndIntKnobsReachTheEstimator) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  const auto decimated = registry.create("FSBM:dec=quincunx");
  EXPECT_EQ(decimated->name(), "FSBM-dec");  // FullSearch renames itself
  const auto plain = registry.create("FSBM:dec=none");
  EXPECT_EQ(plain->name(), "FSBM");
  EXPECT_NO_THROW((void)registry.create("PBM:iters=2"));
  EXPECT_NO_THROW(
      (void)registry.create("FSBM-adec:quarter_below=100,half_below=200"));
}

// ------------------------------------------------------ registry surface

TEST(RegistrySpecs, BareNamesStillCreateEveryBuiltin) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  for (const std::string& name : registry.names()) {
    const auto estimator = registry.create(name);
    ASSERT_NE(estimator, nullptr) << name;
    EXPECT_EQ(estimator->name(), name);
  }
}

TEST(RegistrySpecs, SpecUsageMentionsEveryEstimatorAndGrammar) {
  const std::string usage = core::builtin_estimators().spec_usage();
  EXPECT_NE(usage.find("NAME:key=val"), std::string::npos);
  for (const std::string& name : core::builtin_estimators().names()) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

TEST(RegistrySpecs, RegistrationRejectsReservedCharactersAndDupKeys) {
  me::EstimatorRegistry registry;
  auto factory = [](const me::ParamSet&) {
    return std::make_unique<me::FullSearch>();
  };
  EXPECT_THROW(registry.add("A:B", {}, factory), std::invalid_argument);
  EXPECT_THROW(registry.add("A=B", {}, factory), std::invalid_argument);
  EXPECT_THROW(
      registry.add("X",
                   {me::ParamDesc::number("k", 0, 0, 1, "h"),
                    me::ParamDesc::number("k", 0, 0, 1, "h")},
                   factory),
      std::invalid_argument);
}

// ----------------------------------------------------- semantic anchors

std::vector<std::uint8_t> encode_stream(me::MotionEstimator& estimator) {
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = {64, 48};
  req.frame_count = 5;
  req.fps = 30;
  const auto frames = synth::make_sequence(req);
  codec::EncoderConfig config;
  config.qp = 16;
  codec::Encoder encoder({64, 48}, config, estimator);
  for (const auto& frame : frames) {
    (void)encoder.encode_frame(frame);
  }
  return encoder.finish();
}

TEST(RegistrySpecs, ZeroedAcbmSpecIsBitIdenticalToAlwaysFullSearch) {
  const auto from_spec =
      core::builtin_estimators().create("ACBM:alpha=0,beta=0,gamma=0");
  core::Acbm reference(core::AcbmParams::always_full_search());
  EXPECT_EQ(encode_stream(*from_spec), encode_stream(reference));
}

TEST(RegistrySpecs, BareNameIsBitIdenticalToPaperDefaultsSpec) {
  const auto bare = core::builtin_estimators().create("ACBM");
  const auto spelled = core::builtin_estimators().create(
      "ACBM:alpha=1000,beta=8,gamma=0.25");
  EXPECT_EQ(encode_stream(*bare), encode_stream(*spelled));
}

}  // namespace
}  // namespace acbm
