// Cross-module property tests: invariants swept over parameter grids with
// TEST_P — picture-size conformance (up to CIF), window algebra, quantizer
// monotonicity, median-predictor bounds, and ACBM's position-accounting
// identities.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "codec/quant.hpp"
#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "me/pbm.hpp"
#include "me/spec.hpp"
#include "me/window.hpp"
#include "synth/sequences.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace acbm {
namespace {

// ------------------------------------------------------- size conformance

class PictureSizeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PictureSizeTest, EncodeDecodeParityAtAnyLegalSize) {
  const auto [w, h] = GetParam();
  synth::SequenceRequest req;
  req.name = "carphone";
  req.size = {w, h};
  req.frame_count = 2;
  const auto frames = synth::make_sequence(req);

  me::Pbm pbm;
  codec::EncoderConfig cfg;
  cfg.qp = 14;
  cfg.search_range = 7;
  codec::Encoder encoder({w, h}, cfg, pbm);
  std::vector<video::Frame> recons;
  for (const auto& f : frames) {
    (void)encoder.encode_frame(f);
    recons.push_back(encoder.last_recon());
  }
  codec::Decoder decoder(encoder.finish());
  EXPECT_EQ(decoder.size().width, w);
  EXPECT_EQ(decoder.size().height, h);
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(decoded[i].y().visible_equals(recons[i].y()));
    EXPECT_TRUE(decoded[i].cb().visible_equals(recons[i].cb()));
    EXPECT_TRUE(decoded[i].cr().visible_equals(recons[i].cr()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PictureSizeTest,
    ::testing::Values(std::tuple{16, 16},    // single macroblock
                      std::tuple{48, 16},    // single row
                      std::tuple{16, 48},    // single column
                      std::tuple{64, 48},
                      std::tuple{176, 144},  // QCIF (the paper's format)
                      std::tuple{352, 288}), // CIF (also used by the paper)
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------------- window algebra

class WindowRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowRangeTest, ClampIsIdempotentProjectionIntoWindow) {
  const int p = GetParam();
  const me::SearchWindow w = me::unrestricted_window(p);
  util::Rng rng(100 + static_cast<std::uint64_t>(p));
  for (int trial = 0; trial < 200; ++trial) {
    const me::Mv mv{rng.next_in_range(-100, 100), rng.next_in_range(-100, 100)};
    const me::Mv clamped = w.clamp(mv);
    EXPECT_TRUE(w.contains(clamped));
    EXPECT_EQ(w.clamp(clamped), clamped);          // idempotent
    if (w.contains(mv)) {
      EXPECT_EQ(clamped, mv);                      // identity inside
    }
    // Projection never moves a component past the original.
    EXPECT_LE(std::abs(clamped.x), std::max(std::abs(mv.x), 2 * p));
  }
}

TEST_P(WindowRangeTest, FullpelCountMatchesBruteForce) {
  const int p = GetParam();
  const me::SearchWindow w = me::unrestricted_window(p);
  int count = 0;
  for (int y = w.min_y; y <= w.max_y; ++y) {
    for (int x = w.min_x; x <= w.max_x; ++x) {
      if ((x & 1) == 0 && (y & 1) == 0) {
        ++count;
      }
    }
  }
  EXPECT_EQ(w.fullpel_positions(), count);
}

INSTANTIATE_TEST_SUITE_P(Ranges, WindowRangeTest,
                         ::testing::Values(1, 2, 3, 7, 15, 31));

// ----------------------------------------------------- quantizer properties

class QuantQpTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantQpTest, DequantQuantIsMonotoneNonDecreasing) {
  const int qp = GetParam();
  for (bool intra : {false, true}) {
    int prev = -100000;
    for (int c = -2000; c <= 2000; c += 13) {
      const int rec = codec::dequant_ac(codec::quant_ac(c, qp, intra), qp);
      EXPECT_GE(rec, prev) << "qp " << qp << " c " << c;
      prev = rec;
    }
  }
}

TEST_P(QuantQpTest, QuantisationIsOddSymmetric) {
  const int qp = GetParam();
  for (bool intra : {false, true}) {
    for (int c = 0; c <= 2000; c += 31) {
      EXPECT_EQ(codec::quant_ac(-c, qp, intra),
                -codec::quant_ac(c, qp, intra));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Qps, QuantQpTest,
                         ::testing::Values(1, 2, 5, 8, 13, 21, 31));

// ------------------------------------------------ median predictor bounds

TEST(MedianPredictorProperty, AlwaysWithinNeighbourEnvelope) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    me::MvField field(5, 5);
    for (int by = 0; by < 5; ++by) {
      for (int bx = 0; bx < 5; ++bx) {
        field.set(bx, by,
                  {rng.next_in_range(-30, 30), rng.next_in_range(-30, 30)});
      }
    }
    for (int by = 1; by < 5; ++by) {
      for (int bx = 0; bx < 5; ++bx) {
        const me::Mv pred = field.median_predictor(bx, by);
        const me::Mv a = field.at_or(bx - 1, by);
        const me::Mv b = field.at_or(bx, by - 1);
        const me::Mv c = field.at_or(bx + 1, by - 1);
        EXPECT_GE(pred.x, std::min({a.x, b.x, c.x}));
        EXPECT_LE(pred.x, std::max({a.x, b.x, c.x}));
        EXPECT_GE(pred.y, std::min({a.y, b.y, c.y}));
        EXPECT_LE(pred.y, std::max({a.y, b.y, c.y}));
      }
    }
  }
}

// ----------------------------------------------- ACBM accounting identities

TEST(AcbmAccountingProperty, PositionsDecomposeExactly) {
  // For every block: accepted → positions == PBM positions + 1 (Intra_SAD);
  // critical → positions == PBM + 1 + FSBM(969). Verified against a PBM
  // run on the identical context.
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const acbm::test::SearchFixture fx(
        acbm::test::random_plane(96, 96, 300 + trial),
        acbm::test::random_plane(96, 96, 400 + trial));
    me::BlockContext ctx = fx.context(32, 32, 15);
    ctx.qp = 1 + static_cast<int>(rng.next_below(31));

    core::Acbm acbm;
    acbm.set_record_log(true);
    me::Pbm pbm;
    const me::EstimateResult ra = acbm.estimate(ctx);
    const me::EstimateResult rp = pbm.estimate(ctx);
    ASSERT_EQ(acbm.decision_log().size(), 1u);
    const bool critical = acbm.decision_log()[0].outcome ==
                          core::AcbmOutcome::kCritical;
    if (critical) {
      // FSBM contributes 961 integer positions plus 3–8 half-pel probes
      // (neighbours outside the window when the integer winner lies on the
      // boundary are not evaluated and hence not charged).
      EXPECT_GE(ra.positions, rp.positions + 1 + 961 + 3);
      EXPECT_LE(ra.positions, rp.positions + 1 + 961 + 8);
    } else {
      EXPECT_EQ(ra.positions, rp.positions + 1);
    }
    EXPECT_EQ(ra.used_full_search, critical);
  }
}

TEST(AcbmStatsProperty, CountersPartitionBlocks) {
  const acbm::test::SearchFixture fx(acbm::test::random_plane(96, 96, 500),
                                     acbm::test::random_plane(96, 96, 501));
  core::Acbm acbm;
  util::Rng rng(11);
  const int blocks = 40;
  for (int i = 0; i < blocks; ++i) {
    me::BlockContext ctx = fx.context(32, 32, 7);
    ctx.qp = 1 + static_cast<int>(rng.next_below(31));
    (void)acbm.estimate(ctx);
  }
  const core::AcbmStats& s = acbm.stats();
  EXPECT_EQ(s.blocks, static_cast<std::uint64_t>(blocks));
  EXPECT_EQ(s.accepted_low_activity + s.accepted_good_match + s.critical,
            s.blocks);
}

// -------------------------------------------- determinism across instances

TEST(DeterminismProperty, IdenticalRunsProduceIdenticalStreams) {
  synth::SequenceRequest req;
  req.name = "table";
  req.size = {64, 48};
  req.frame_count = 4;
  auto encode = [&] {
    const auto frames = synth::make_sequence(req);
    core::Acbm acbm;
    codec::EncoderConfig cfg;
    cfg.qp = 18;
    cfg.search_range = 7;
    codec::Encoder encoder({64, 48}, cfg, acbm);
    for (const auto& f : frames) {
      (void)encoder.encode_frame(f);
    }
    return encoder.finish();
  };
  EXPECT_EQ(encode(), encode());
}

// ----------------------------------------- spec grammar round-trip property

/// Random valid value for one knob, rendered as spec text.
std::string random_param_text(const me::ParamDesc& desc, util::Rng& rng) {
  switch (desc.type) {
    case me::ParamDesc::Type::kBool:
      return rng.next_below(2) == 0 ? "0" : "1";
    case me::ParamDesc::Type::kEnum:
      return desc.choices[rng.next_below(desc.choices.size())];
    case me::ParamDesc::Type::kInt: {
      const auto lo = static_cast<std::int64_t>(desc.min_value);
      const auto hi = static_cast<std::int64_t>(desc.max_value);
      // Huge declared ranges: sample near the bottom plus the endpoints.
      const std::uint64_t span =
          std::min<std::uint64_t>(static_cast<std::uint64_t>(hi - lo), 1000);
      std::int64_t v = lo + static_cast<std::int64_t>(rng.next_below(span + 1));
      if (rng.next_below(8) == 0) {
        v = rng.next_below(2) == 0 ? lo : hi;
      }
      return std::to_string(v);
    }
    case me::ParamDesc::Type::kDouble: {
      const double lo = desc.min_value;
      const double hi = desc.max_value;
      const double t = static_cast<double>(rng.next_below(9)) / 8.0;
      const double span = std::min(hi - lo, 4000.0);
      std::ostringstream text;
      text << lo + span * t;
      return text.str();
    }
  }
  return "0";
}

// canonical_spec() must be a *projection*: every spelling of a configuration
// (any subset of keys, any key order) maps to one canonical string, and the
// canonical string is a fixed point that parses back to the same estimator.
TEST(SpecRoundTripProperty, CanonicalFormIsOrderInvariantAndIdempotent) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  util::Rng rng(2026);
  for (const std::string& name : registry.names()) {
    const std::vector<me::ParamDesc>& descs = registry.params(name);
    if (descs.empty()) {
      // Knob-less estimators: the bare name is its own canonical form.
      EXPECT_EQ(registry.canonical_spec(name), name);
      continue;
    }
    for (int trial = 0; trial < 25; ++trial) {
      // Random subset of knobs with random valid values...
      std::vector<std::string> pairs;
      for (const me::ParamDesc& desc : descs) {
        if (rng.next_below(2) == 0) {
          pairs.push_back(desc.key + "=" + random_param_text(desc, rng));
        }
      }
      auto render = [&name](const std::vector<std::string>& kv) {
        if (kv.empty()) {
          return name;
        }
        std::string spec = name + ":";
        for (std::size_t i = 0; i < kv.size(); ++i) {
          spec += (i > 0 ? "," : "") + kv[i];
        }
        return spec;
      };
      const std::string spec = render(pairs);
      const std::string canonical = registry.canonical_spec(spec);

      // ...is idempotent under canonicalisation,
      EXPECT_EQ(registry.canonical_spec(canonical), canonical) << spec;
      // carries every declared knob exactly once,
      const me::EstimatorSpec parsed = me::EstimatorSpec::parse(canonical);
      EXPECT_EQ(parsed.name, name);
      EXPECT_EQ(parsed.params.size(), descs.size()) << canonical;
      // and is key-order independent: any permutation of the same pairs
      // canonicalises identically.
      for (int shuffle = 0; shuffle < 3 && pairs.size() > 1; ++shuffle) {
        for (std::size_t i = pairs.size(); i > 1; --i) {
          std::swap(pairs[i - 1], pairs[rng.next_below(i)]);
        }
        EXPECT_EQ(registry.canonical_spec(render(pairs)), canonical)
            << render(pairs);
      }
      // Both spellings construct successfully.
      EXPECT_NE(registry.create(spec), nullptr);
      EXPECT_NE(registry.create(canonical), nullptr);
    }
  }
}

}  // namespace
}  // namespace acbm
