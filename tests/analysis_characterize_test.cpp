// §3.1 characterization harness: truth sequences, FSBM error classes,
// and the paper's two conclusions (textured blocks ⇒ true vectors with high
// SAD_deviation).

#include "analysis/characterize.hpp"

#include <gtest/gtest.h>

#include "synth/texture.hpp"
#include "test_support.hpp"

namespace acbm::analysis {
namespace {

video::Plane textured_source(int w, int h, std::uint64_t seed) {
  synth::TextureSpec spec;
  spec.seed = seed;
  spec.scale = 0.05;
  spec.octaves = 4;
  spec.amplitude = 40.0;
  return synth::make_noise_texture(w, h, spec);
}

TEST(TruthSequence, GeometryAndFrameCount) {
  const video::Plane src = textured_source(176, 144, 1);
  const auto motions = paper_truth_motions();
  const TruthSequence seq = make_truth_sequence(src, {64, 48}, motions, 40);
  EXPECT_EQ(seq.frames.size(), 10u);  // the paper's ten-frame sequence
  EXPECT_EQ(seq.motions.size(), 9u);
  EXPECT_EQ(seq.frames[0].width(), 64);
  EXPECT_EQ(seq.frames[0].height(), 48);
}

TEST(TruthSequence, FramesActuallyShifted) {
  const video::Plane src = textured_source(176, 144, 2);
  const std::vector<me::Mv> motions = {me::mv_from_fullpel(3, 2)};
  const TruthSequence seq = make_truth_sequence(src, {64, 48}, motions, 30);
  // Ground-truth MV (3,2): the current frame's content at x matches the
  // previous frame at x + (3,2).
  for (int y = 8; y < 40; ++y) {
    for (int x = 8; x < 56; ++x) {
      ASSERT_EQ(seq.frames[1].at(x, y), seq.frames[0].at(x + 3, y + 2));
    }
  }
}

TEST(TruthSequence, RejectsTooSmallSource) {
  const video::Plane src = textured_source(80, 60, 3);
  EXPECT_THROW(
      make_truth_sequence(src, {64, 48}, paper_truth_motions(), 40),
      std::invalid_argument);
}

TEST(TruthSequence, RejectsHalfPelMotions) {
  const video::Plane src = textured_source(176, 144, 4);
  EXPECT_THROW(make_truth_sequence(src, {64, 48}, {me::Mv{1, 0}}, 40),
               std::invalid_argument);
}

TEST(TruthSequence, RejectsPathLeavingMargin) {
  const video::Plane src = textured_source(176, 144, 5);
  const std::vector<me::Mv> runaway(10, me::mv_from_fullpel(10, 0));
  EXPECT_THROW(make_truth_sequence(src, {64, 48}, runaway, 16),
               std::invalid_argument);
}

TEST(PaperTruthMotions, NineDistinctWithinWindow) {
  const auto motions = paper_truth_motions();
  ASSERT_EQ(motions.size(), 9u);
  for (std::size_t i = 0; i < motions.size(); ++i) {
    EXPECT_TRUE(motions[i].is_integer());
    EXPECT_LE(motions[i].linf(), 30);  // inside ±15 integer
    for (std::size_t j = i + 1; j < motions.size(); ++j) {
      EXPECT_FALSE(motions[i] == motions[j]);
    }
  }
}

TEST(Characterize, TexturedContentYieldsZeroErrors) {
  // Highly textured source + exact integer shifts: FSBM must recover every
  // vector — the paper's "high textured blocks have true motion vectors".
  const video::Plane src = textured_source(200, 160, 6);
  const TruthSequence seq =
      make_truth_sequence(src, {64, 48}, paper_truth_motions(), 40);
  const auto observations = characterize(seq, 15);
  ASSERT_EQ(observations.size(), 9u * (4u * 3u));
  for (const auto& obs : observations) {
    EXPECT_EQ(obs.error, 0) << "frame " << obs.frame << " block (" << obs.bx
                            << "," << obs.by << ")";
  }
}

TEST(Characterize, FlatContentYieldsAmbiguousVectors) {
  // A constant image: every candidate matches, FSBM's tie-break picks the
  // zero vector, so nonzero truths register as errors with ~zero
  // Intra_SAD and ~zero SAD_deviation — the paper's "low textured blocks
  // fail" quadrant of Fig. 4.
  video::Plane flat(200, 160);
  flat.fill(128);
  flat.extend_border();
  const std::vector<me::Mv> motions = {me::mv_from_fullpel(5, 5),
                                       me::mv_from_fullpel(-7, 3)};
  const TruthSequence seq = make_truth_sequence(flat, {64, 48}, motions, 40);
  const auto observations = characterize(seq, 15);
  for (const auto& obs : observations) {
    EXPECT_GT(obs.error, 0);
    EXPECT_EQ(obs.intra_sad, 0u);
    EXPECT_EQ(obs.sad_deviation, 0u);
  }
}

TEST(Characterize, StatisticsSeparateByTexture) {
  // Mixed test: textured runs give error-0 blocks with high deviation;
  // flat runs give error>0 blocks with low deviation. The summaries must
  // reproduce the separation Fig. 4 shows.
  const video::Plane textured = textured_source(200, 160, 7);
  video::Plane flat(200, 160);
  flat.fill(100);
  flat.extend_border();
  const std::vector<me::Mv> motions = {me::mv_from_fullpel(6, -4)};

  auto tex_obs =
      characterize(make_truth_sequence(textured, {64, 48}, motions, 40), 15);
  const auto flat_obs =
      characterize(make_truth_sequence(flat, {64, 48}, motions, 40), 15);
  tex_obs.insert(tex_obs.end(), flat_obs.begin(), flat_obs.end());

  const auto summaries = summarize_by_error(tex_obs);
  ASSERT_EQ(summaries.size(), 6u);
  EXPECT_GT(summaries[0].blocks, 0u);
  EXPECT_GT(summaries[5].blocks, 0u);
  // Error-0 population is the textured one: higher Intra_SAD and deviation.
  EXPECT_GT(summaries[0].intra_sad.mean(),
            10.0 * (summaries[5].intra_sad.mean() + 1.0));
  EXPECT_GT(summaries[0].sad_deviation.mean(),
            10.0 * (summaries[5].sad_deviation.mean() + 1.0));
}

TEST(Characterize, EmptySequenceGivesNoObservations) {
  TruthSequence seq;
  EXPECT_TRUE(characterize(seq, 15).empty());
}

TEST(SummarizeByError, BucketsAndClampsAtFive) {
  std::vector<BlockObservation> obs(3);
  obs[0].error = 0;
  obs[1].error = 5;
  obs[2].error = 12;  // clamps into the ≥5 bucket
  const auto summaries = summarize_by_error(obs);
  EXPECT_EQ(summaries[0].blocks, 1u);
  EXPECT_EQ(summaries[5].blocks, 2u);
  EXPECT_EQ(summaries[1].blocks, 0u);
}

}  // namespace
}  // namespace acbm::analysis
