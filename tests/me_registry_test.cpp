// EstimatorRegistry: lookup, unknown-name error, registration discipline,
// and the clone()/merge_stats() contract — in particular that ACBM clones
// share parameters but never statistics.

#include "me/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "me/pbm.hpp"
#include "test_support.hpp"

namespace acbm {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;

// ------------------------------------------------------ registry mechanics

TEST(EstimatorRegistry, BuiltinsCoverEveryAlgorithm) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  const std::vector<std::string> expected = {
      "ACBM", "FSBM", "PBM",   "TSS",       "NTSS",    "4SS",
      "DS",   "HEXBS", "CDS", "FSBM-adec", "FSBM-sub"};
  EXPECT_EQ(registry.names(), expected);
  EXPECT_EQ(registry.size(), expected.size());
}

TEST(EstimatorRegistry, CreateReturnsEstimatorWithMatchingName) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  for (const std::string& name : registry.names()) {
    const auto estimator = registry.create(name);
    ASSERT_NE(estimator, nullptr) << name;
    EXPECT_EQ(estimator->name(), name);
  }
}

TEST(EstimatorRegistry, CreateReturnsFreshInstances) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  const auto a = registry.create("ACBM");
  const auto b = registry.create("ACBM");
  EXPECT_NE(a.get(), b.get());
}

TEST(EstimatorRegistry, UnknownNameThrowsAndListsOptions) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  EXPECT_FALSE(registry.contains("UMHEX"));
  try {
    (void)registry.create("UMHEX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("UMHEX"), std::string::npos);
    EXPECT_NE(message.find("ACBM"), std::string::npos);  // lists options
  }
}

TEST(EstimatorRegistry, DuplicateAndEmptyRegistrationsThrow) {
  me::EstimatorRegistry registry;
  registry.add("PBM", [] { return std::make_unique<me::Pbm>(); });
  EXPECT_TRUE(registry.contains("PBM"));
  EXPECT_THROW(
      registry.add("PBM", [] { return std::make_unique<me::Pbm>(); }),
      std::invalid_argument);
  EXPECT_THROW(registry.add("", [] { return std::make_unique<me::Pbm>(); }),
               std::invalid_argument);
  EXPECT_THROW(registry.add("X", nullptr), std::invalid_argument);
}

TEST(EstimatorRegistry, CustomRegistryCreates) {
  me::EstimatorRegistry registry;
  registry.add("mine", [] { return std::make_unique<me::Pbm>(); });
  const auto estimator = registry.create("mine");
  EXPECT_EQ(estimator->name(), "PBM");
}

TEST(EstimatorRegistry, CustomParameterizedFactoryReceivesBoundParams) {
  me::EstimatorRegistry registry;
  double seen = -1.0;
  registry.add("mine",
               {me::ParamDesc::number("knob", 2.5, 0.0, 10.0, "a knob")},
               [&seen](const me::ParamSet& params) {
                 seen = params.get_double("knob");
                 return std::make_unique<me::Pbm>();
               });
  (void)registry.create("mine");
  EXPECT_DOUBLE_EQ(seen, 2.5);  // default applied
  (void)registry.create("mine:knob=7");
  EXPECT_DOUBLE_EQ(seen, 7.0);  // explicit value bound
  EXPECT_THROW((void)registry.create("mine:knob=11"), std::invalid_argument);
  EXPECT_EQ(registry.canonical_spec("mine"), "mine:knob=2.5");
}

// ----------------------------------------------------------- clone contract

TEST(EstimatorClone, EveryBuiltinClonesToSameAlgorithm) {
  const me::EstimatorRegistry& registry = core::builtin_estimators();
  for (const std::string& name : registry.names()) {
    const auto original = registry.create(name);
    const auto copy = original->clone();
    ASSERT_NE(copy, nullptr) << name;
    EXPECT_NE(copy.get(), original.get()) << name;
    EXPECT_EQ(copy->name(), original->name()) << name;
  }
}

TEST(EstimatorClone, AcbmClonePreservesParamsAndLogFlag) {
  core::Acbm acbm(core::AcbmParams{123.0, 4.5, 0.5});
  acbm.set_record_log(true);
  const auto copy = acbm.clone();
  auto* cloned = dynamic_cast<core::Acbm*>(copy.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_DOUBLE_EQ(cloned->params().alpha, 123.0);
  EXPECT_DOUBLE_EQ(cloned->params().beta, 4.5);
  EXPECT_DOUBLE_EQ(cloned->params().gamma, 0.5);

  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 31);
  const SearchFixture fx(std::move(ref), std::move(cur));
  (void)cloned->estimate(fx.context(32, 32));
  EXPECT_EQ(cloned->decision_log().size(), 1u);  // flag was copied
}

TEST(EstimatorClone, AcbmStatsDoNotLeakBetweenClones) {
  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 32);
  const SearchFixture fx(std::move(ref), std::move(cur));

  core::Acbm original;
  (void)original.estimate(fx.context(32, 32));
  ASSERT_EQ(original.stats().blocks, 1u);

  // A clone taken from a used estimator starts from zero.
  const auto copy = original.clone();
  auto* cloned = dynamic_cast<core::Acbm*>(copy.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_EQ(cloned->stats().blocks, 0u);
  EXPECT_EQ(cloned->stats().total_positions, 0u);

  // Running the clone leaves the original untouched, and vice versa.
  (void)cloned->estimate(fx.context(32, 32));
  (void)cloned->estimate(fx.context(48, 48));
  EXPECT_EQ(original.stats().blocks, 1u);
  EXPECT_EQ(cloned->stats().blocks, 2u);
}

// ------------------------------------------------------------- merge_stats

TEST(MergeStats, DefaultIsNoOpForStatelessEstimators) {
  me::Pbm primary;
  const auto worker = primary.clone();
  primary.merge_stats(*worker);  // must not throw
  SUCCEED();
}

TEST(MergeStats, AcbmTotalsAreSumOfWorkerPartitions) {
  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 33);
  const SearchFixture fx(std::move(ref), std::move(cur));

  core::Acbm primary;
  const auto w1 = primary.clone();
  const auto w2 = primary.clone();
  auto* worker1 = dynamic_cast<core::Acbm*>(w1.get());
  auto* worker2 = dynamic_cast<core::Acbm*>(w2.get());
  ASSERT_NE(worker1, nullptr);
  ASSERT_NE(worker2, nullptr);

  (void)worker1->estimate(fx.context(16, 16));
  (void)worker1->estimate(fx.context(32, 32));
  (void)worker2->estimate(fx.context(48, 48));
  const std::uint64_t expected_positions =
      worker1->stats().total_positions + worker2->stats().total_positions;
  const std::uint64_t expected_critical =
      worker1->stats().critical + worker2->stats().critical;

  primary.merge_stats(*worker1);
  primary.merge_stats(*worker2);

  EXPECT_EQ(primary.stats().blocks, 3u);
  EXPECT_EQ(primary.stats().total_positions, expected_positions);
  EXPECT_EQ(primary.stats().critical, expected_critical);

  // Drain semantics: merging again must not double count.
  EXPECT_EQ(worker1->stats().blocks, 0u);
  EXPECT_EQ(worker2->stats().blocks, 0u);
  primary.merge_stats(*worker1);
  EXPECT_EQ(primary.stats().blocks, 3u);
}

TEST(MergeStats, AcbmMergeSortsDecisionLogIntoEncodeOrder) {
  auto [ref, cur] = shifted_pair(96, 96, 3, 2, 34);
  const SearchFixture fx(std::move(ref), std::move(cur));

  core::Acbm primary;
  primary.set_record_log(true);
  const auto w1 = primary.clone();
  const auto w2 = primary.clone();
  auto* worker1 = dynamic_cast<core::Acbm*>(w1.get());
  auto* worker2 = dynamic_cast<core::Acbm*>(w2.get());

  // Worker 2 handles row 1, worker 1 handles row 0; merge in worker order
  // must still yield raster order.
  me::BlockContext row1 = fx.context(32, 32);
  row1.bx = 0;
  row1.by = 1;
  (void)worker2->estimate(row1);
  me::BlockContext row0 = fx.context(16, 16);
  row0.bx = 1;
  row0.by = 0;
  (void)worker1->estimate(row0);

  primary.merge_stats(*worker2);
  primary.merge_stats(*worker1);
  ASSERT_EQ(primary.decision_log().size(), 2u);
  EXPECT_EQ(primary.decision_log()[0].by, 0);
  EXPECT_EQ(primary.decision_log()[1].by, 1);
}

TEST(MergeStats, AcbmRejectsForeignWorkerType) {
  core::Acbm acbm;
  me::Pbm pbm;
  EXPECT_THROW(acbm.merge_stats(pbm), std::invalid_argument);
}

}  // namespace
}  // namespace acbm
