// PBM: predictor assembly (paper Fig. 2), local refinement, low complexity,
// and the characteristic failure mode (local minimum on erratic content).

#include "me/pbm.hpp"

#include <gtest/gtest.h>

#include "me/full_search.hpp"
#include "me/predictors.hpp"
#include "test_support.hpp"

namespace acbm::me {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;

TEST(CandidateList, DeduplicatesAndCaps) {
  CandidateList list;
  list.push_unique({2, 2});
  list.push_unique({2, 2});
  list.push_unique({4, 4});
  EXPECT_EQ(list.size(), 2);
  for (int i = 0; i < 20; ++i) {
    list.push_unique({i * 2, 0});
  }
  EXPECT_EQ(list.size(), CandidateList::kCapacity);
}

TEST(PbmCandidates, AlwaysContainsZero) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 1);
  const SearchFixture fx(std::move(ref), std::move(cur));
  const BlockContext ctx = fx.context(16, 16);
  const CandidateList list = pbm_candidates(ctx);
  ASSERT_GE(list.size(), 1);
  EXPECT_EQ(list[0], (Mv{0, 0}));
}

TEST(PbmCandidates, CollectsSpatialNeighbours) {
  auto [ref, cur] = shifted_pair(64, 64, 0, 0, 2);
  const SearchFixture fx(std::move(ref), std::move(cur));
  MvField cur_field(4, 4);
  cur_field.set(0, 1, {10, 2});   // left of (1,1)
  cur_field.set(1, 0, {-4, 6});   // above
  cur_field.set(2, 0, {8, -8});   // above-right
  BlockContext ctx = fx.context(16, 16);
  ctx.bx = 1;
  ctx.by = 1;
  ctx.cur_field = &cur_field;
  const CandidateList list = pbm_candidates(ctx);
  auto contains = [&](Mv mv) {
    for (Mv c : list) {
      if (c == mv) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(contains({10, 2}));
  EXPECT_TRUE(contains({-4, 6}));
  EXPECT_TRUE(contains({8, -8}));
  EXPECT_TRUE(contains({0, 0}));
}

TEST(PbmCandidates, CollectsTemporalNeighbours) {
  auto [ref, cur] = shifted_pair(64, 64, 0, 0, 3);
  const SearchFixture fx(std::move(ref), std::move(cur));
  MvField prev(4, 4);
  prev.set(1, 1, {6, 6});   // collocated
  prev.set(2, 1, {-2, 4});  // right of collocated
  prev.set(1, 2, {2, -6});  // below collocated
  BlockContext ctx = fx.context(16, 16);
  ctx.bx = 1;
  ctx.by = 1;
  ctx.prev_field = &prev;
  const CandidateList list = pbm_candidates(ctx);
  EXPECT_EQ(list.size(), 4);  // zero + 3 temporal (spatial field absent)
}

TEST(PbmCandidates, ClampsToWindow) {
  auto [ref, cur] = shifted_pair(64, 64, 0, 0, 4);
  const SearchFixture fx(std::move(ref), std::move(cur));
  MvField prev(4, 4);
  prev.set(1, 1, {100, -100});  // far outside ±p
  BlockContext ctx = fx.context(16, 16, 7);
  ctx.bx = 1;
  ctx.by = 1;
  ctx.prev_field = &prev;
  const CandidateList list = pbm_candidates(ctx);
  for (Mv c : list) {
    EXPECT_TRUE(ctx.window.contains(c));
  }
}

TEST(Pbm, FindsZeroMotionInstantly) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 5);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Pbm pbm;
  const EstimateResult r = pbm.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, (Mv{0, 0}));
  EXPECT_EQ(r.sad, 0u);
  EXPECT_FALSE(r.used_full_search);
}

TEST(Pbm, TracksAdjacentMotionViaDescent) {
  // (1,−1) integer samples: one descent step from the zero predictor.
  auto [ref, cur] = shifted_pair(64, 48, 1, -1, 6);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Pbm pbm;
  const EstimateResult r = pbm.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(1, -1));
  EXPECT_EQ(r.sad, 0u);
}

TEST(Pbm, GoodPredictorUnlocksLargeMotion) {
  // A ±13-sample shift is far beyond local descent from zero, but with the
  // collocated predictor pointing at the truth PBM locks on immediately —
  // the spatio-temporal-coherence hypothesis of §2.2.
  auto [ref, cur] = shifted_pair(96, 96, 13, -11, 7);
  const SearchFixture fx(std::move(ref), std::move(cur));
  MvField prev(6, 6);
  for (int by = 0; by < 6; ++by) {
    for (int bx = 0; bx < 6; ++bx) {
      prev.set(bx, by, mv_from_fullpel(13, -11));
    }
  }
  BlockContext ctx = fx.context(32, 32);
  ctx.bx = 2;
  ctx.by = 2;
  ctx.prev_field = &prev;
  Pbm pbm;
  const EstimateResult r = pbm.estimate(ctx);
  EXPECT_EQ(r.mv, mv_from_fullpel(13, -11));
  EXPECT_EQ(r.sad, 0u);
}

TEST(Pbm, ComplexityIsTensNotHundreds) {
  auto [ref, cur] = shifted_pair(64, 48, 3, 2, 8);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Pbm pbm;
  const EstimateResult r = pbm.estimate(fx.context(16, 16));
  EXPECT_LT(r.positions, 120u);   // orders of magnitude below FSBM's 969
  EXPECT_GT(r.positions, 0u);
}

TEST(Pbm, MissesLargeMotionWithoutPredictors) {
  // The documented failure mode: a large shift with no usable predictors —
  // PBM's local descent stops at some local minimum, FSBM finds the truth.
  auto [ref, cur] = shifted_pair(96, 96, 14, 14, 9);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Pbm pbm;
  FullSearch fsbm;
  const BlockContext ctx = fx.context(32, 32);
  const EstimateResult pr = pbm.estimate(ctx);
  const EstimateResult fr = fsbm.estimate(ctx);
  EXPECT_EQ(fr.sad, 0u);
  EXPECT_GT(pr.sad, fr.sad);  // trapped (random content: any miss is huge)
}

TEST(Pbm, HalfpelRefinementCanGoSubInteger) {
  // Reference blurred half a pixel: best match sits on an odd coordinate.
  const video::Plane ref = acbm::test::random_plane(64, 48, 10);
  video::Plane cur(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      cur.set(x, y, static_cast<std::uint8_t>(
                        (ref.at(x, y) + ref.at(x, y + 1) + 1) >> 1));
    }
  }
  cur.extend_border();
  const SearchFixture fx(ref, cur);
  Pbm pbm;
  const EstimateResult r = pbm.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, (Mv{0, 1}));
  EXPECT_EQ(r.sad, 0u);
}

TEST(Pbm, RespectsHalfPelSwitch) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 1, 11);
  const SearchFixture fx(std::move(ref), std::move(cur));
  BlockContext ctx = fx.context(16, 16);
  ctx.half_pel = false;
  Pbm pbm;
  const EstimateResult r = pbm.estimate(ctx);
  EXPECT_TRUE(r.mv.is_integer());
}

TEST(Pbm, NameIsPbm) {
  Pbm pbm;
  EXPECT_EQ(pbm.name(), "PBM");
}

}  // namespace
}  // namespace acbm::me
