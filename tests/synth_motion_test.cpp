// Motion models: periodicity, determinism, reflection physics.

#include "synth/motion_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace acbm::synth {
namespace {

TEST(SinusoidalSway, ZeroAtOriginPhase) {
  const SinusoidalSway sway(3.0, 2.0, 20.0);
  const Displacement d = sway.at(0.0);
  EXPECT_NEAR(d.x, 0.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
}

TEST(SinusoidalSway, BoundedByAmplitude) {
  const SinusoidalSway sway(3.0, 2.0, 20.0);
  for (int t = 0; t < 200; ++t) {
    const Displacement d = sway.at(t);
    EXPECT_LE(std::abs(d.x), 3.0 + 1e-9);
    EXPECT_LE(std::abs(d.y), 2.0 + 1e-9);
  }
}

TEST(SinusoidalSway, PeriodicInX) {
  const SinusoidalSway sway(5.0, 0.0, 16.0);
  for (int t = 0; t < 32; ++t) {
    EXPECT_NEAR(sway.at(t).x, sway.at(t + 16).x, 1e-9);
  }
}

TEST(SinusoidalSway, ReachesNearAmplitude) {
  const SinusoidalSway sway(4.0, 0.0, 40.0);
  double max_x = 0.0;
  for (int t = 0; t < 40; ++t) {
    max_x = std::max(max_x, std::abs(sway.at(t).x));
  }
  EXPECT_GT(max_x, 3.5);
}

TEST(LinearPan, ProportionalToTime) {
  const LinearPan pan(0.8, -0.25);
  EXPECT_DOUBLE_EQ(pan.at(0.0).x, 0.0);
  EXPECT_DOUBLE_EQ(pan.at(10.0).x, 8.0);
  EXPECT_DOUBLE_EQ(pan.at(10.0).y, -2.5);
}

TEST(RandomWalk, DeterministicForSeed) {
  const RandomWalk a(77, 100, 0.5);
  const RandomWalk b(77, 100, 0.5);
  for (int t = 0; t <= 100; ++t) {
    EXPECT_EQ(a.at(t).x, b.at(t).x);
    EXPECT_EQ(a.at(t).y, b.at(t).y);
  }
}

TEST(RandomWalk, StartsAtOriginAndClampsRange) {
  const RandomWalk w(3, 50, 1.0);
  EXPECT_EQ(w.at(0).x, 0.0);
  EXPECT_EQ(w.at(-5).x, 0.0);           // clamped below
  EXPECT_EQ(w.at(999).x, w.at(50).x);   // clamped above
}

TEST(RandomWalk, StepScaleMatters) {
  const RandomWalk small(9, 200, 0.1);
  const RandomWalk large(9, 200, 2.0);
  // Same seed → same direction sequence, scaled.
  EXPECT_NEAR(large.at(200).x, small.at(200).x * 20.0, 1e-9);
}

TEST(BouncePath, StraightLineInsideBox) {
  const BouncePath path(10.0, 10.0, 1.0, 2.0, 0.0, 100.0, 0.0, 100.0);
  const auto [x, y] = path.position(5);
  EXPECT_DOUBLE_EQ(x, 15.0);
  EXPECT_DOUBLE_EQ(y, 20.0);
}

TEST(BouncePath, ReflectsOffWalls) {
  // Start near the right wall moving right: must come back.
  const BouncePath path(95.0, 50.0, 4.0, 0.0, 0.0, 100.0, 0.0, 100.0);
  const auto [x1, y1] = path.position(1);  // 99
  const auto [x2, y2] = path.position(2);  // 103 → reflect to 97
  const auto [x3, y3] = path.position(3);  // 93 (moving left now)
  EXPECT_DOUBLE_EQ(x1, 99.0);
  EXPECT_DOUBLE_EQ(x2, 97.0);
  EXPECT_DOUBLE_EQ(x3, 93.0);
  EXPECT_DOUBLE_EQ(y1, 50.0);
  (void)y2;
  (void)y3;
}

TEST(BouncePath, StaysInsideBoxLongTerm) {
  const BouncePath path(30.0, 40.0, 5.5, 3.5, 10.0, 90.0, 15.0, 85.0);
  for (int t = 0; t < 500; ++t) {
    const auto [x, y] = path.position(t);
    EXPECT_GE(x, 10.0 - 1e-9);
    EXPECT_LE(x, 90.0 + 1e-9);
    EXPECT_GE(y, 15.0 - 1e-9);
    EXPECT_LE(y, 85.0 + 1e-9);
  }
}

TEST(Displacement, Addition) {
  const Displacement a{1.5, -2.0};
  const Displacement b{0.5, 3.0};
  const Displacement c = a + b;
  EXPECT_DOUBLE_EQ(c.x, 2.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

}  // namespace
}  // namespace acbm::synth
