// H.263-style quantization and the zig-zag scan.

#include <gtest/gtest.h>

#include "codec/quant.hpp"
#include "codec/zigzag.hpp"
#include "util/rng.hpp"

namespace acbm::codec {
namespace {

TEST(Quant, ZeroStaysZero) {
  for (int qp = 1; qp <= 31; ++qp) {
    EXPECT_EQ(quant_ac(0.0, qp, true), 0);
    EXPECT_EQ(quant_ac(0.0, qp, false), 0);
    EXPECT_EQ(dequant_ac(0, qp), 0);
  }
}

TEST(Quant, InterDeadZoneSwallowsSmallCoefficients) {
  // |coef| < 1.5·QP quantizes to zero in inter mode (dead zone).
  EXPECT_EQ(quant_ac(20.0, 16, false), 0);
  EXPECT_EQ(quant_ac(-30.0, 16, false), 0);
  EXPECT_NE(quant_ac(60.0, 16, false), 0);
}

TEST(Quant, IntraHasNoDeadZoneBeyondStep) {
  EXPECT_EQ(quant_ac(31.0, 16, true), 0);   // < 2·QP
  EXPECT_EQ(quant_ac(33.0, 16, true), 1);   // ≥ 2·QP
}

TEST(Quant, SignPreserved) {
  EXPECT_GT(quant_ac(200.0, 8, false), 0);
  EXPECT_LT(quant_ac(-200.0, 8, false), 0);
  EXPECT_EQ(quant_ac(-200.0, 8, false), -quant_ac(200.0, 8, false));
  EXPECT_EQ(dequant_ac(-5, 8), -dequant_ac(5, 8));
}

TEST(Quant, ReconstructionErrorBoundedByStep) {
  // |dequant(quant(c)) − c| ≤ 2.5·QP: 1.5·QP once a level fires, up to
  // 2.5·QP inside the inter dead zone — the H.263 distortion bound that
  // makes the paper's β·Qp² tolerance meaningful.
  util::Rng rng(1);
  for (int qp : {1, 4, 8, 16, 31}) {
    // Stay below the ±127 level clamp: |c| ≤ 2·qp·120.
    const int cmax = std::min(2000, 2 * qp * 120);
    for (int trial = 0; trial < 400; ++trial) {
      const double c = rng.next_in_range(-cmax, cmax);
      for (bool intra : {false, true}) {
        const std::int16_t level = quant_ac(c, qp, intra);
        const double rec = dequant_ac(level, qp);
        EXPECT_LE(std::abs(rec - c), 2.5 * qp + 1.0)
            << "qp=" << qp << " c=" << c << " intra=" << intra;
      }
    }
  }
}

TEST(Quant, LevelMagnitudeMonotoneInCoefficient) {
  for (int qp : {2, 10, 25}) {
    int prev = 0;
    for (int c = 0; c <= 2000; c += 7) {
      const int level = quant_ac(c, qp, false);
      EXPECT_GE(level, prev);
      prev = level;
    }
  }
}

TEST(Quant, DequantOddEvenQpRule) {
  // qp odd: |rec| = qp(2|L|+1); qp even: qp(2|L|+1) − 1.
  EXPECT_EQ(dequant_ac(3, 5), 5 * 7);
  EXPECT_EQ(dequant_ac(3, 6), 6 * 7 - 1);
  EXPECT_EQ(dequant_ac(-2, 4), -(4 * 5 - 1));
}

TEST(Quant, IntraDcFixedStepEight) {
  EXPECT_EQ(quant_intra_dc(800.0), 100);
  EXPECT_EQ(dequant_intra_dc(100), 800);
  EXPECT_EQ(quant_intra_dc(804.0), 101);  // 100.5 rounds away from zero
}

TEST(Quant, IntraDcClampsToLegalRange) {
  EXPECT_EQ(quant_intra_dc(0.0), 1);     // 0 illegal in H.263
  EXPECT_EQ(quant_intra_dc(-100.0), 1);
  EXPECT_EQ(quant_intra_dc(5000.0), 254);
}

TEST(Quant, BlockFormsRespectIntraDcConvention) {
  double coeffs[kDctSamples] = {};
  coeffs[0] = 800.0;
  coeffs[1] = 100.0;
  std::int16_t levels[kDctSamples];
  quantize_block(coeffs, levels, 8, /*intra=*/true);
  EXPECT_EQ(levels[0], 0);  // DC excluded from the AC path
  EXPECT_EQ(levels[1], quant_ac(100.0, 8, true));

  std::int16_t rec[kDctSamples];
  dequantize_block(levels, rec, 8, /*intra=*/true);
  EXPECT_EQ(rec[0], 0);  // caller injects the DC
  EXPECT_EQ(rec[1], dequant_ac(levels[1], 8));
}

TEST(Quant, InterBlockRoundTripBounded) {
  util::Rng rng(2);
  double coeffs[kDctSamples];
  for (auto& c : coeffs) {
    c = rng.next_in_range(-500, 500);
  }
  std::int16_t levels[kDctSamples];
  std::int16_t rec[kDctSamples];
  quantize_block(coeffs, levels, 10, false);
  dequantize_block(levels, rec, 10, false);
  for (int i = 0; i < kDctSamples; ++i) {
    EXPECT_LE(std::abs(rec[i] - coeffs[i]), 2.5 * 10 + 1.0);
  }
}

TEST(Zigzag, IsAPermutation) {
  bool seen[kDctSamples] = {};
  for (int k = 0; k < kDctSamples; ++k) {
    const int idx = kZigzagOrder[k];
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, kDctSamples);
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(Zigzag, CanonicalPrefix) {
  // First entries of the standard scan: 0, 1, 8, 16, 9, 2, 3, 10 and the
  // last is 63.
  EXPECT_EQ(kZigzagOrder[0], 0);
  EXPECT_EQ(kZigzagOrder[1], 1);
  EXPECT_EQ(kZigzagOrder[2], 8);
  EXPECT_EQ(kZigzagOrder[3], 16);
  EXPECT_EQ(kZigzagOrder[4], 9);
  EXPECT_EQ(kZigzagOrder[63], 63);
}

TEST(Zigzag, ScanUnscanInverse) {
  util::Rng rng(3);
  std::int16_t block[kDctSamples];
  for (auto& v : block) {
    v = static_cast<std::int16_t>(rng.next_in_range(-1000, 1000));
  }
  std::int16_t scanned[kDctSamples];
  std::int16_t back[kDctSamples];
  zigzag_scan(block, scanned);
  zigzag_unscan(scanned, back);
  for (int i = 0; i < kDctSamples; ++i) {
    ASSERT_EQ(back[i], block[i]);
  }
}

TEST(Zigzag, FrequencyOrderingMovesEnergyForward) {
  // A typical quantized block (energy in the top-left corner) must become
  // front-loaded after the scan.
  std::int16_t block[kDctSamples] = {};
  block[0] = 50;
  block[1] = 20;
  block[8] = 18;
  block[9] = 7;
  std::int16_t scanned[kDctSamples];
  zigzag_scan(block, scanned);
  EXPECT_EQ(scanned[0], 50);
  EXPECT_EQ(scanned[1], 20);
  EXPECT_EQ(scanned[2], 18);
  EXPECT_EQ(scanned[4], 7);
  for (int k = 5; k < kDctSamples; ++k) {
    ASSERT_EQ(scanned[k], 0);
  }
}

}  // namespace
}  // namespace acbm::codec
