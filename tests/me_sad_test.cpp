// SAD kernels, Intra_SAD, block mean, SSD — against naive references.

#include "me/sad.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "test_support.hpp"

namespace acbm::me {
namespace {

std::uint32_t naive_sad(const video::Plane& a, int ax, int ay,
                        const video::Plane& b, int bx, int by, int bw,
                        int bh) {
  std::uint32_t total = 0;
  for (int y = 0; y < bh; ++y) {
    for (int x = 0; x < bw; ++x) {
      total += static_cast<std::uint32_t>(
          std::abs(int(a.at(ax + x, ay + y)) - int(b.at(bx + x, by + y))));
    }
  }
  return total;
}

TEST(Sad, ZeroForIdenticalBlocks) {
  const video::Plane p = acbm::test::random_plane(32, 32, 1);
  EXPECT_EQ(sad_block(p, 8, 8, p, 8, 8, 16, 16), 0u);
}

TEST(Sad, MatchesNaiveReference) {
  const video::Plane a = acbm::test::random_plane(48, 48, 2);
  const video::Plane b = acbm::test::random_plane(48, 48, 3);
  for (int oy : {-4, 0, 5}) {
    for (int ox : {-3, 0, 7}) {
      EXPECT_EQ(sad_block(a, 16, 16, b, 16 + ox, 16 + oy, 16, 16),
                naive_sad(a, 16, 16, b, 16 + ox, 16 + oy, 16, 16));
    }
  }
}

TEST(Sad, NonSquareBlocks) {
  const video::Plane a = acbm::test::random_plane(32, 32, 4);
  const video::Plane b = acbm::test::random_plane(32, 32, 5);
  EXPECT_EQ(sad_block(a, 4, 4, b, 6, 2, 8, 16),
            naive_sad(a, 4, 4, b, 6, 2, 8, 16));
  EXPECT_EQ(sad_block(a, 0, 0, b, 1, 1, 16, 8),
            naive_sad(a, 0, 0, b, 1, 1, 16, 8));
}

TEST(Sad, ReadsReferenceBorder) {
  video::Plane a(32, 32);
  a.fill(100);
  a.extend_border();
  video::Plane b(32, 32);
  b.fill(100);
  b.extend_border();
  // Entire reference block inside the border region: replicated 100s.
  EXPECT_EQ(sad_block(a, 0, 0, b, -16, -16, 16, 16), 0u);
}

TEST(Sad, EarlyExitReturnsExcess) {
  const video::Plane a = acbm::test::random_plane(32, 32, 6);
  video::Plane b = acbm::test::random_plane(32, 32, 7);
  const std::uint32_t exact = sad_block(a, 8, 8, b, 8, 8, 16, 16);
  ASSERT_GT(exact, 100u);
  const std::uint32_t bounded = sad_block(a, 8, 8, b, 8, 8, 16, 16, 100);
  EXPECT_GT(bounded, 100u);   // contract: value exceeds the bound
  EXPECT_LE(bounded, exact);  // partial sums never overshoot the true SAD
}

TEST(Sad, EarlyExitAboveTotalIsExact) {
  const video::Plane a = acbm::test::random_plane(32, 32, 8);
  const video::Plane b = acbm::test::random_plane(32, 32, 9);
  const std::uint32_t exact = sad_block(a, 8, 8, b, 8, 8, 16, 16);
  EXPECT_EQ(sad_block(a, 8, 8, b, 8, 8, 16, 16, exact), exact);
}

TEST(SadHalfpel, IntegerPhaseEqualsPlainSad) {
  const video::Plane cur = acbm::test::random_plane(48, 48, 10);
  const video::Plane ref = acbm::test::random_plane(48, 48, 11);
  const video::HalfpelPlanes hp(ref);
  EXPECT_EQ(sad_block_halfpel(cur, 16, 16, hp, 2 * 14, 2 * 18, 16, 16),
            sad_block(cur, 16, 16, ref, 14, 18, 16, 16));
}

TEST(SadHalfpel, HalfPhaseMatchesDirectInterpolation) {
  const video::Plane cur = acbm::test::random_plane(48, 48, 12);
  const video::Plane ref = acbm::test::random_plane(48, 48, 13);
  const video::HalfpelPlanes hp(ref);
  // Reference block at half-pel (2·16+1, 2·16+1).
  std::uint32_t naive = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      naive += static_cast<std::uint32_t>(
          std::abs(int(cur.at(16 + x, 16 + y)) -
                   int(video::sample_halfpel(ref, 2 * (16 + x) + 1,
                                             2 * (16 + y) + 1))));
    }
  }
  EXPECT_EQ(sad_block_halfpel(cur, 16, 16, hp, 33, 33, 16, 16), naive);
}

TEST(BlockMean, UniformBlock) {
  video::Plane p(16, 16);
  p.fill(77);
  EXPECT_EQ(block_mean(p, 0, 0, 16, 16), 77u);
}

TEST(BlockMean, RoundsToNearest) {
  video::Plane p(2, 1, 4);
  p.set(0, 0, 10);
  p.set(1, 0, 11);  // mean 10.5 → rounds to 11
  EXPECT_EQ(block_mean(p, 0, 0, 2, 1), 11u);
}

TEST(IntraSad, ZeroForFlatBlock) {
  video::Plane p(16, 16);
  p.fill(123);
  EXPECT_EQ(intra_sad(p, 0, 0, 16, 16), 0u);
}

TEST(IntraSad, KnownCheckerboard) {
  video::Plane p(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      p.set(x, y, ((x + y) & 1) != 0 ? 200 : 100);
    }
  }
  // Mean = 150; every sample deviates by 50 → 256·50.
  EXPECT_EQ(intra_sad(p, 0, 0, 16, 16), 256u * 50u);
}

TEST(IntraSad, GrowsWithTexture) {
  const video::Plane flat = acbm::test::smooth_plane(32, 32);
  const video::Plane busy = acbm::test::random_plane(32, 32, 14);
  EXPECT_GT(intra_sad(busy, 0, 0, 16, 16), 4 * intra_sad(flat, 0, 0, 16, 16));
}

TEST(IntraSad, TranslationInvariant) {
  // Intra_SAD depends only on content, not on position: the same samples at
  // a different block origin give the same value.
  const video::Plane big = acbm::test::random_plane(64, 64, 15);
  const video::Plane moved = video::crop(big, 8, 8, 32, 32);
  EXPECT_EQ(intra_sad(big, 8, 8, 16, 16), intra_sad(moved, 0, 0, 16, 16));
}

TEST(Ssd, MatchesNaive) {
  const video::Plane a = acbm::test::random_plane(32, 32, 16);
  const video::Plane b = acbm::test::random_plane(32, 32, 17);
  std::uint64_t naive = 0;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const int d = int(a.at(4 + x, 4 + y)) - int(b.at(6 + x, 3 + y));
      naive += static_cast<std::uint64_t>(d * d);
    }
  }
  EXPECT_EQ(ssd_block(a, 4, 4, b, 6, 3, 8, 8), naive);
}

}  // namespace
}  // namespace acbm::me
