// The classical fast searches (TSS, 4SS, DS, CDS) through the common
// MotionEstimator interface: correctness on tractable cases, complexity
// bounds, window discipline, and position accounting.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "me/cds.hpp"
#include "me/ds.hpp"
#include "me/fss.hpp"
#include "me/hexbs.hpp"
#include "me/full_search.hpp"
#include "me/tss.hpp"
#include "test_support.hpp"

namespace acbm::me {
namespace {

using acbm::test::SearchFixture;
using acbm::test::shifted_pair;

enum class Kind { kTss, kFss, kDs, kHexbs, kCds };

std::unique_ptr<MotionEstimator> make(Kind kind) {
  switch (kind) {
    case Kind::kTss:
      return std::make_unique<Tss>();
    case Kind::kFss:
      return std::make_unique<Fss>();
    case Kind::kDs:
      return std::make_unique<DiamondSearch>();
    case Kind::kHexbs:
      return std::make_unique<HexagonSearch>();
    case Kind::kCds:
      return std::make_unique<CrossDiamondSearch>();
  }
  return nullptr;
}

class FastSearchTest : public ::testing::TestWithParam<Kind> {};

TEST_P(FastSearchTest, FindsZeroMotion) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 1);
  const SearchFixture fx(std::move(ref), std::move(cur));
  auto est = make(GetParam());
  const EstimateResult r = est->estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, (Mv{0, 0}));
  EXPECT_EQ(r.sad, 0u);
}

TEST_P(FastSearchTest, FindsSmallAdjacentMotion) {
  // Smooth texture: the SAD landscape slopes toward the truth, which is the
  // regime these centre-biased searches are built for (on iid noise they
  // can legitimately wander — see FastSearches.AllWorseOrEqualToFsbmOnSad).
  auto [ref, cur] = acbm::test::smooth_shifted_pair(64, 48, 1, 1, 2);
  const SearchFixture fx(std::move(ref), std::move(cur));
  auto est = make(GetParam());
  const EstimateResult r = est->estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(1, 1));
  EXPECT_EQ(r.sad, 0u);
}

TEST_P(FastSearchTest, FarCheaperThanFullSearch) {
  auto [ref, cur] = shifted_pair(64, 48, 2, -2, 3);
  const SearchFixture fx(std::move(ref), std::move(cur));
  auto est = make(GetParam());
  const EstimateResult r = est->estimate(fx.context(16, 16, 15));
  EXPECT_LT(r.positions, 969u / 4u);
  EXPECT_GT(r.positions, 8u);
}

TEST_P(FastSearchTest, ResultAlwaysInsideWindow) {
  for (int seed = 0; seed < 4; ++seed) {
    const SearchFixture fx(acbm::test::random_plane(64, 64, 50 + seed),
                           acbm::test::random_plane(64, 64, 60 + seed));
    auto est = make(GetParam());
    const BlockContext ctx = fx.context(16, 16, 7);
    const EstimateResult r = est->estimate(ctx);
    EXPECT_TRUE(ctx.window.contains(r.mv));
  }
}

TEST_P(FastSearchTest, NeverClaimsFullSearch) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 0, 4);
  const SearchFixture fx(std::move(ref), std::move(cur));
  auto est = make(GetParam());
  EXPECT_FALSE(est->estimate(fx.context(16, 16)).used_full_search);
}

TEST_P(FastSearchTest, TinyWindowStillWorks) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 0, 5);
  const SearchFixture fx(std::move(ref), std::move(cur));
  auto est = make(GetParam());
  const BlockContext ctx = fx.context(16, 16, 1);
  const EstimateResult r = est->estimate(ctx);
  EXPECT_TRUE(ctx.window.contains(r.mv));
  EXPECT_EQ(r.mv, mv_from_fullpel(1, 0));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FastSearchTest,
                         ::testing::Values(Kind::kTss, Kind::kFss, Kind::kDs,
                                           Kind::kHexbs, Kind::kCds),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kTss:
                               return "TSS";
                             case Kind::kFss:
                               return "FSS";
                             case Kind::kDs:
                               return "DS";
                             case Kind::kHexbs:
                               return "HEXBS";
                             case Kind::kCds:
                               return "CDS";
                           }
                           return "?";
                         });

TEST(Tss, FollowsGradientToLargeMotion) {
  // A smooth cone-shaped SAD landscape: matching error grows monotonically
  // with displacement error, so TSS's logarithmic 8→4→2→1 schedule must
  // walk to a +12 shift.
  auto [ref, cur] = acbm::test::smooth_shifted_pair(96, 96, 12, 0, 3, 32);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Tss tss;
  const EstimateResult r = tss.estimate(fx.context(32, 32, 15));
  EXPECT_EQ(r.mv, mv_from_fullpel(12, 0));
  EXPECT_EQ(r.sad, 0u);
}

TEST(Tss, PositionBudgetLogarithmic) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 6);
  const SearchFixture fx(std::move(ref), std::move(cur));
  Tss tss;
  const EstimateResult r = tss.estimate(fx.context(16, 16, 15));
  // ≤ 1 + 4 stages × 8 points + 8 half-pel (visited-dedup may reduce it).
  EXPECT_LE(r.positions, 41u);
}

TEST(Ds, SdspRunsAfterConvergence) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 7);
  const SearchFixture fx(std::move(ref), std::move(cur));
  DiamondSearch ds;
  const EstimateResult r = ds.estimate(fx.context(16, 16));
  // LDSP (9) + SDSP (4, deduped) + half-pel (8): stationary block budget.
  EXPECT_LE(r.positions, 21u);
}

TEST(Cds, StationaryBlockUsesHalfwayStop) {
  auto [ref, cur] = shifted_pair(64, 48, 0, 0, 8);
  const SearchFixture fx(std::move(ref), std::move(cur));
  CrossDiamondSearch cds;
  const EstimateResult r = cds.estimate(fx.context(16, 16));
  // Small cross (5) + half-pel (8) = 13 — the CDS selling point.
  EXPECT_LE(r.positions, 13u);
}

TEST(Cds, QuasiStationaryStopsAfterSmallDiamond) {
  auto [ref, cur] = shifted_pair(64, 48, 1, 0, 9);
  const SearchFixture fx(std::move(ref), std::move(cur));
  CrossDiamondSearch cds;
  const EstimateResult r = cds.estimate(fx.context(16, 16));
  EXPECT_EQ(r.mv, mv_from_fullpel(1, 0));
  EXPECT_LE(r.positions, 25u);
}

TEST(FastSearches, AllWorseOrEqualToFsbmOnSad) {
  // Sanity of the quality hierarchy on a hard case: FSBM is the floor.
  const SearchFixture fx(acbm::test::random_plane(96, 96, 70),
                         acbm::test::random_plane(96, 96, 71));
  FullSearch fsbm;
  const BlockContext ctx = fx.context(32, 32, 15);
  const std::uint32_t floor_sad = fsbm.estimate(ctx).sad;
  for (Kind kind :
       {Kind::kTss, Kind::kFss, Kind::kDs, Kind::kHexbs, Kind::kCds}) {
    auto est = make(kind);
    EXPECT_GE(est->estimate(ctx).sad, floor_sad);
  }
}

}  // namespace
}  // namespace acbm::me
