// The encoder-config half of the spec grammar: key=value → EncoderConfig
// binding, validation with key tables in the errors, canonical to_spec()
// round-trips (the artifact-stamping contract), and the analysis layer's
// SweepConfig specs.

#include "codec/config_map.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/rd_sweep.hpp"
#include "util/kv.hpp"

namespace acbm {
namespace {

TEST(ConfigMap, EmptySpecIsDefaults) {
  const codec::EncoderConfig config = codec::encoder_config_from_spec("");
  const codec::EncoderConfig defaults;
  EXPECT_EQ(codec::to_spec(config), codec::to_spec(defaults));
}

TEST(ConfigMap, AppliesTypedKeysOnTopOfBase) {
  codec::EncoderConfig base;
  base.qp = 20;
  const codec::EncoderConfig config = codec::encoder_config_from_spec(
      "slices=4,mode=rd,deblock=1,me_lambda=0.5,threads=0", base);
  EXPECT_EQ(config.qp, 20);  // untouched key keeps the base value
  EXPECT_EQ(config.slices, 4);
  EXPECT_EQ(config.mode_decision, codec::ModeDecision::kRateDistortion);
  EXPECT_TRUE(config.deblock);
  EXPECT_DOUBLE_EQ(config.me_lambda, 0.5);
  EXPECT_EQ(config.parallel.threads, 0);
}

TEST(ConfigMap, ToSpecRoundTripsEveryField) {
  codec::EncoderConfig config;
  config.qp = 24;
  config.search_range = 8;
  config.half_pel = false;
  config.intra_period = 12;
  config.me_lambda = 1.25;
  config.intra_bias = -100;
  config.allow_skip = false;
  config.deblock = true;
  config.slices = 9;
  config.mode_decision = codec::ModeDecision::kRateDistortion;
  config.parallel.threads = 3;
  config.fps_num = 25;
  config.fps_den = 2;
  const std::string spec = codec::to_spec(config);
  const codec::EncoderConfig back = codec::encoder_config_from_spec(spec);
  EXPECT_EQ(codec::to_spec(back), spec);
  EXPECT_EQ(back.qp, 24);
  EXPECT_EQ(back.search_range, 8);
  EXPECT_FALSE(back.half_pel);
  EXPECT_EQ(back.intra_period, 12);
  EXPECT_DOUBLE_EQ(back.me_lambda, 1.25);
  EXPECT_EQ(back.intra_bias, -100);
  EXPECT_FALSE(back.allow_skip);
  EXPECT_TRUE(back.deblock);
  EXPECT_EQ(back.slices, 9);
  EXPECT_EQ(back.mode_decision, codec::ModeDecision::kRateDistortion);
  EXPECT_EQ(back.parallel.threads, 3);
  EXPECT_EQ(back.fps_num, 25);
  EXPECT_EQ(back.fps_den, 2);
}

TEST(ConfigMap, UnknownKeyErrorCarriesTheKeyTable) {
  try {
    (void)codec::encoder_config_from_spec("quality=9");
    FAIL() << "expected util::SpecError";
  } catch (const util::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("quality"), std::string::npos);
    EXPECT_NE(message.find("qp="), std::string::npos);
    EXPECT_NE(message.find("slices="), std::string::npos);
    EXPECT_NE(message.find("mode="), std::string::npos);
  }
}

TEST(ConfigMap, ValidatesRangesTypesAndDuplicates) {
  EXPECT_THROW((void)codec::encoder_config_from_spec("qp=0"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("qp=32"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("slices=256"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("qp=abc"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("mode=fast"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("deblock=maybe"),
               util::SpecError);
  EXPECT_THROW((void)codec::encoder_config_from_spec("qp=16,qp=18"),
               util::SpecError);
}

TEST(ConfigMap, UsageListsEveryKey) {
  const std::string usage = codec::config_spec_usage();
  for (const char* key :
       {"qp=", "range=", "halfpel=", "intra_period=", "me_lambda=",
        "intra_bias=", "skip=", "deblock=", "slices=", "mode=", "threads=",
        "fps=", "fps_den="}) {
    EXPECT_NE(usage.find(key), std::string::npos) << key;
  }
}

// ------------------------------------------------------------ SweepConfig

TEST(SweepSpec, ParsesQpListAndScalarKeys) {
  const analysis::SweepConfig sweep = analysis::SweepConfig::from_spec(
      "qps=16:22:30,range=8,mode=rd,slices=2,threads=0");
  EXPECT_EQ(sweep.qps, (std::vector<int>{16, 22, 30}));
  EXPECT_EQ(sweep.search_range, 8);
  EXPECT_EQ(sweep.mode_decision, codec::ModeDecision::kRateDistortion);
  EXPECT_EQ(sweep.slices, 2);
  EXPECT_EQ(sweep.parallel.threads, 0);
}

TEST(SweepSpec, ToSpecRoundTrips) {
  analysis::SweepConfig sweep;
  sweep.qps = {16, 22};
  sweep.search_range = 7;
  sweep.deblock = true;
  const std::string spec = sweep.to_spec();
  const analysis::SweepConfig back = analysis::SweepConfig::from_spec(spec);
  EXPECT_EQ(back.to_spec(), spec);
  EXPECT_EQ(back.qps, sweep.qps);
  EXPECT_EQ(back.search_range, 7);
  EXPECT_TRUE(back.deblock);
}

TEST(SweepSpec, EmptyQpListRoundTrips) {
  // Degenerate sweeps (no Qp points) are representable, so the stamped
  // to_spec() string must parse back rather than throwing on "qps=".
  analysis::SweepConfig sweep;
  sweep.qps.clear();
  const std::string spec = sweep.to_spec();
  const analysis::SweepConfig back = analysis::SweepConfig::from_spec(spec);
  EXPECT_TRUE(back.qps.empty());
  EXPECT_EQ(back.to_spec(), spec);
}

TEST(SweepSpec, RejectsUnknownKeysAndBadQps) {
  EXPECT_THROW((void)analysis::SweepConfig::from_spec("qp=16"),
               util::SpecError);  // the sweep key is qps
  EXPECT_THROW((void)analysis::SweepConfig::from_spec("qps=16:99"),
               util::SpecError);
  EXPECT_THROW((void)analysis::SweepConfig::from_spec("qps=16:"),
               util::SpecError);  // dangling separator is not a number
  EXPECT_THROW((void)analysis::SweepConfig::from_spec("alpha=500"),
               util::SpecError);  // estimator keys live in estimator specs
  EXPECT_THROW((void)analysis::SweepConfig::from_spec("range=0"),
               util::SpecError);  // shared keys validate via the key table
}

// --- Decoder half of the grammar -------------------------------------------

TEST(DecoderSpec, EmptySpecIsDefaults) {
  const codec::DecoderConfig config = codec::decoder_config_from_spec("");
  EXPECT_EQ(config.threads, 1);
  EXPECT_EQ(config.conceal, codec::Concealment::kSlice);
  EXPECT_EQ(config.expect_width, -1);
  EXPECT_EQ(config.expect_slices, -1);
}

TEST(DecoderSpec, AppliesKeysOnTopOfBase) {
  codec::DecoderConfig base;
  base.threads = 4;
  const codec::DecoderConfig config = codec::decoder_config_from_spec(
      "conceal=resync,expect_frames=60,expect_slices=4", base);
  EXPECT_EQ(config.threads, 4);  // base survives
  EXPECT_EQ(config.conceal, codec::Concealment::kResync);
  EXPECT_EQ(config.expect_frames, 60);
  EXPECT_EQ(config.expect_slices, 4);
  EXPECT_EQ(config.expect_width, -1);

  const codec::DecoderConfig off =
      codec::decoder_config_from_spec("conceal=off");
  EXPECT_EQ(off.conceal, codec::Concealment::kOff);
}

TEST(DecoderSpec, ToSpecRoundTripsEveryField) {
  codec::DecoderConfig config;
  config.threads = 3;
  config.conceal = codec::Concealment::kResync;
  config.expect_width = 176;
  config.expect_height = 144;
  config.expect_fps = 30;
  config.expect_frames = 60;
  config.expect_slices = 4;
  config.expect_version = 2;
  const std::string spec = codec::to_spec(config);
  const codec::DecoderConfig back = codec::decoder_config_from_spec(spec);
  EXPECT_EQ(codec::to_spec(back), spec);
  EXPECT_EQ(back.threads, 3);
  EXPECT_EQ(back.conceal, codec::Concealment::kResync);
  EXPECT_EQ(back.expect_width, 176);
  EXPECT_EQ(back.expect_height, 144);
  EXPECT_EQ(back.expect_fps, 30);
  EXPECT_EQ(back.expect_frames, 60);
  EXPECT_EQ(back.expect_slices, 4);
  EXPECT_EQ(back.expect_version, 2);
}

TEST(DecoderSpec, ValidatesKeysValuesAndRanges) {
  EXPECT_THROW((void)codec::decoder_config_from_spec("workers=4"),
               util::SpecError);  // unknown key
  EXPECT_THROW((void)codec::decoder_config_from_spec("conceal=maybe"),
               util::SpecError);
  EXPECT_THROW((void)codec::decoder_config_from_spec("threads=-1"),
               util::SpecError);
  EXPECT_THROW((void)codec::decoder_config_from_spec("expect_width=-2"),
               util::SpecError);
  EXPECT_THROW((void)codec::decoder_config_from_spec("expect_frames=abc"),
               util::SpecError);
}

TEST(DecoderSpec, UnknownKeyErrorCarriesTheKeyTable) {
  try {
    (void)codec::decoder_config_from_spec("bogus=1");
    FAIL() << "expected SpecError";
  } catch (const util::SpecError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("conceal"), std::string::npos);
    EXPECT_NE(message.find("expect_slices"), std::string::npos);
  }
}

}  // namespace
}  // namespace acbm
