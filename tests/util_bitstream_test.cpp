// BitWriter/BitReader: layout, alignment, exhaustion, and round-trips.

#include "util/bitstream.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace acbm::util {
namespace {

TEST(BitWriter, EmptyWriterProducesNoBytes) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  EXPECT_TRUE(bw.take().empty());
}

TEST(BitWriter, SingleBitsPackMsbFirst) {
  BitWriter bw;
  // 1,0,1,1,0,0,1,0 -> 0b10110010 = 0xB2
  for (bool b : {true, false, true, true, false, false, true, false}) {
    bw.put_bit(b);
  }
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xB2);
}

TEST(BitWriter, MultiBitValueCrossesByteBoundary) {
  BitWriter bw;
  bw.put_bits(0x3, 2);      // 11
  bw.put_bits(0x1AB, 10);   // 0110101011
  // Stream: 11 0110101011 → bytes 11011010 | 1011(0000 pad)
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b11011010);
  EXPECT_EQ(bytes[1], 0b10110000);
}

TEST(BitWriter, ValueBitsAboveCountAreMasked) {
  BitWriter bw;
  bw.put_bits(0xFFFF, 4);  // only the low 4 bits (0xF) survive
  bw.put_bits(0x0, 4);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xF0);
}

TEST(BitWriter, AlignPadsWithZeros) {
  BitWriter bw;
  bw.put_bits(0b101, 3);
  bw.align();
  EXPECT_EQ(bw.bit_count(), 8u);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitWriter, AlignOnBoundaryIsNoOp) {
  BitWriter bw;
  bw.put_bits(0xAB, 8);
  bw.align();
  EXPECT_EQ(bw.bit_count(), 8u);
}

TEST(BitWriter, TakeResetsWriter) {
  BitWriter bw;
  bw.put_bits(0xFF, 8);
  (void)bw.take();
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put_bits(0x1, 1);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);
}

TEST(BitWriter, SixtyFourBitValue) {
  BitWriter bw;
  const std::uint64_t v = 0x0123456789ABCDEFull;
  bw.put_bits(v, 64);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[7], 0xEF);
}

TEST(BitReader, ReadsBackWrittenBits) {
  BitWriter bw;
  bw.put_bits(0b110, 3);
  bw.put_bits(0x5A, 8);
  bw.put_bits(0x12345, 20);
  const auto bytes = bw.take();

  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(3), 0b110u);
  EXPECT_EQ(br.get_bits(8), 0x5Au);
  EXPECT_EQ(br.get_bits(20), 0x12345u);
  EXPECT_FALSE(br.exhausted());
}

TEST(BitReader, ZeroBitReadReturnsZero) {
  const std::vector<std::uint8_t> data = {0xFF};
  BitReader br(data);
  EXPECT_EQ(br.get_bits(0), 0u);
  EXPECT_EQ(br.bit_position(), 0u);
}

TEST(BitReader, ExhaustionFlagSetOnOverread) {
  const std::vector<std::uint8_t> data = {0xAA};
  BitReader br(data);
  EXPECT_EQ(br.get_bits(8), 0xAAu);
  EXPECT_FALSE(br.exhausted());
  (void)br.get_bits(1);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, OverreadReturnsZeroBits) {
  const std::vector<std::uint8_t> data = {0xFF};
  BitReader br(data);
  (void)br.get_bits(4);
  // 4 valid (1111) + 4 missing (0000)
  EXPECT_EQ(br.get_bits(8), 0xF0u);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, AlignSkipsToByteBoundary) {
  const std::vector<std::uint8_t> data = {0xFF, 0x01};
  BitReader br(data);
  (void)br.get_bits(3);
  br.align();
  EXPECT_EQ(br.bit_position(), 8u);
  EXPECT_EQ(br.get_bits(8), 0x01u);
}

TEST(BitReader, BitsLeftTracksConsumption) {
  const std::vector<std::uint8_t> data = {0x00, 0x00, 0x00};
  BitReader br(data);
  EXPECT_EQ(br.bits_left(), 24u);
  (void)br.get_bits(10);
  EXPECT_EQ(br.bits_left(), 14u);
}

TEST(BitRoundTrip, RandomizedMixedWidths) {
  util::Rng rng(42);
  std::vector<std::pair<std::uint64_t, int>> tokens;
  BitWriter bw;
  for (int i = 0; i < 2000; ++i) {
    const int width = 1 + static_cast<int>(rng.next_below(32));
    const std::uint64_t value =
        rng.next_u64() & ((width < 64) ? (1ull << width) - 1 : ~0ull);
    tokens.emplace_back(value, width);
    bw.put_bits(value, width);
  }
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (const auto& [value, width] : tokens) {
    EXPECT_EQ(br.get_bits(width), value);
  }
  EXPECT_FALSE(br.exhausted());
}

}  // namespace
}  // namespace acbm::util
