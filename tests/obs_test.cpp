// Observability subsystem: histogram percentile exactness against a sorted
// reference, ring-buffer wrap accounting, concurrent span recording (the
// TSan target for the tracer), disarmed-tracer byte-identity of a pinned
// stream, and registry counter conservation against the ServiceStats
// snapshot.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "codec/encoder.hpp"
#include "codec/service.hpp"
#include "me/pbm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/sequences.hpp"

namespace acbm {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Histogram, SmallValuesAreExact) {
  obs::Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::Histogram::quantize(v), v);
  }
}

TEST(Histogram, BucketRoundTripIsMonotoneAndTight) {
  std::uint64_t prev_lower = 0;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 15ull, 16ull, 17ull, 100ull,
                          1000ull, 123456ull, 1ull << 31, 1ull << 62,
                          ~0ull}) {
    const std::size_t idx = obs::Histogram::bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets);
    const std::uint64_t lower = obs::Histogram::bucket_lower(idx);
    EXPECT_LE(lower, v);
    EXPECT_GE(lower, prev_lower);
    // The bucket's lower edge is within one sub-bucket (~12.5%) of v.
    EXPECT_GE(static_cast<double>(lower), static_cast<double>(v) / 1.126);
    prev_lower = lower;
  }
}

TEST(Histogram, PercentilesMatchSortedQuantizedReference) {
  obs::Histogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Mix magnitudes: microseconds to seconds in nanoseconds.
    const std::uint64_t v = (lcg >> 20) % (std::uint64_t{1} << (10 + i % 21));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(p / 100.0 * n));
    rank = std::min<std::uint64_t>(std::max<std::uint64_t>(rank, 1),
                                   values.size());
    // Quantization is monotone, so the rank'th smallest quantized sample is
    // the quantized rank'th smallest sample — the histogram must agree
    // exactly.
    EXPECT_EQ(h.percentile(p),
              obs::Histogram::quantize(values[rank - 1]))
        << "p=" << p;
  }
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.max_value(), values.back());
}

TEST(Registry, ReferencesAreStableAndRowsSorted) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("b.second");
  obs::Counter& b = registry.counter("a.first");
  obs::Counter& a_again = registry.counter("b.second");
  EXPECT_EQ(&a, &a_again);
  a.add(3);
  b.add();
  // Force deque growth; earlier references must survive it.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i));
  }
  a.add(4);
  const auto rows = registry.counter_rows();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a.first");
  EXPECT_EQ(rows[0].value, 1u);
  EXPECT_EQ(rows[1].name, "b.second");
  EXPECT_EQ(rows[1].value, 7u);
  EXPECT_TRUE(std::is_sorted(
      rows.begin(), rows.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
}

// ----------------------------------------------------------------- tracer

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Tracer, RingWrapDropsOldestButExportStaysBalanced) {
  obs::Tracer tracer(/*events_per_thread=*/16);
  tracer.install();
  for (int i = 0; i < 100; ++i) {
    obs::Span span("test", "wrap", /*session=*/0, /*frame=*/i);
  }
  obs::Tracer::uninstall();
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.thread_count(), 1u);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  const std::size_t begins = count_occurrences(json, "\"ph\":\"B\"");
  const std::size_t ends = count_occurrences(json, "\"ph\":\"E\"");
  EXPECT_EQ(begins, ends);
  EXPECT_GT(begins, 0u);
  EXPECT_LE(begins, 8u);  // at most capacity/2 whole spans survive the wrap
}

TEST(Tracer, ConcurrentRecordingBalancesAfterQuiesce) {
  // The TSan-relevant test: many threads hammer their rings while counters
  // and async spans interleave, then the export (after join) must pair
  // every surviving event.
  obs::Tracer tracer(/*events_per_thread=*/1 << 12);
  tracer.install();
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        const auto id =
            static_cast<std::uint64_t>(t) * kIters + static_cast<std::uint64_t>(i) + 1;
        obs::async_begin("test", "job", id, t, i);
        {
          obs::Span outer("test", "outer", t, i);
          obs::Span inner("test", "inner", t, i, i % 7);
          obs::instant("test", "tick", t, i);
          obs::counter("test", "depth", t, static_cast<std::uint64_t>(i));
        }
        obs::async_end("test", "job", id, t, i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  obs::Tracer::uninstall();
  EXPECT_EQ(tracer.thread_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(tracer.dropped(), 0u);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            static_cast<std::size_t>(2 * kThreads * kIters));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""),
            static_cast<std::size_t>(kThreads * kIters));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""),
            count_occurrences(json, "\"ph\":\"e\""));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""),
            static_cast<std::size_t>(kThreads * kIters));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""),
            static_cast<std::size_t>(kThreads * kIters));
}

std::vector<std::uint8_t> encode_pinned_stream() {
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = {64, 48};
  req.frame_count = 6;
  req.fps = 30;
  const std::vector<video::Frame> frames = synth::make_sequence(req);
  me::Pbm pbm;
  codec::EncoderConfig cfg;
  cfg.qp = 16;
  cfg.slices = 2;
  cfg.parallel.threads = 2;
  codec::Encoder enc({64, 48}, cfg, pbm);
  for (const video::Frame& frame : frames) {
    enc.encode_frame(frame);
  }
  return enc.finish();
}

TEST(Tracer, DisarmedAndArmedStreamsAreByteIdentical) {
  const std::vector<std::uint8_t> disarmed = encode_pinned_stream();
  std::vector<std::uint8_t> armed;
  {
    obs::Tracer tracer;
    tracer.install();
    armed = encode_pinned_stream();
    obs::Tracer::uninstall();
  }
  ASSERT_EQ(disarmed.size(), armed.size());
  EXPECT_EQ(disarmed, armed);
  const std::vector<std::uint8_t> disarmed_again = encode_pinned_stream();
  EXPECT_EQ(disarmed, disarmed_again);
}

// --------------------------------------------------------------- service

std::uint64_t counter_value(
    const std::vector<obs::Registry::CounterRow>& rows,
    const std::string& name) {
  for (const obs::Registry::CounterRow& row : rows) {
    if (row.name == name) {
      return row.value;
    }
  }
  ADD_FAILURE() << "counter " << name << " not registered";
  return 0;
}

TEST(Registry, ServiceCountersMatchStatsSnapshot) {
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = {64, 48};
  req.frame_count = 5;
  req.fps = 30;
  const std::vector<video::Frame> frames = synth::make_sequence(req);

  codec::EncoderService service(2);
  codec::EncoderConfig cfg;
  cfg.qp = 16;
  {
    codec::EncodeSession session(service, {64, 48}, cfg,
                                 std::make_unique<me::Pbm>());
    for (const video::Frame& frame : frames) {
      session.submit(frame).get();
    }
    (void)session.finish();
  }

  const codec::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, frames.size());
  // Conservation: every accepted frame resolves exactly once.
  EXPECT_EQ(stats.accepted, stats.completed + stats.timed_out + stats.failed);

  const auto rows = service.metrics().counter_rows();
  EXPECT_EQ(counter_value(rows, "svc.accepted"), stats.accepted);
  EXPECT_EQ(counter_value(rows, "svc.completed"), stats.completed);
  EXPECT_EQ(counter_value(rows, "svc.rejected"), stats.rejected);
  EXPECT_EQ(counter_value(rows, "svc.timed_out"), stats.timed_out);
  EXPECT_EQ(counter_value(rows, "svc.failed"), stats.failed);
  EXPECT_EQ(counter_value(rows, "svc.degraded"), stats.degraded);
  const auto gauges = service.metrics().gauge_rows();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "svc.peak_queue_depth");
  EXPECT_EQ(gauges[0].value, stats.peak_queue_depth);

  // The stage histograms absorbed every frame's timers.
  bool saw_wall = false;
  for (const obs::Registry::HistogramRow& row :
       service.metrics().histogram_rows()) {
    if (row.name == "enc.frame.wall") {
      saw_wall = true;
      EXPECT_EQ(row.count, frames.size());
      EXPECT_GT(row.p50_ns, 0u);
      EXPECT_GE(row.p99_ns, row.p50_ns);
      EXPECT_GE(row.max_ns, row.p99_ns);
    }
  }
  EXPECT_TRUE(saw_wall);
}

}  // namespace
}  // namespace acbm
