// Parallel-encoding determinism: the pipeline's wavefront ME stage must
// produce byte-identical ACV1 bitstreams at any thread count, for I-only,
// P-heavy and skip-heavy content, with identical AcbmStats totals after the
// worker merge — the invariant that makes the thread count a pure
// throughput knob.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "core/builtin_estimators.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

std::vector<video::Frame> test_sequence(const std::string& name, int frames) {
  synth::SequenceRequest req;
  req.name = name;
  req.size = {64, 48};
  req.frame_count = frames;
  req.fps = 30;
  return synth::make_sequence(req);
}

struct EncodeOutcome {
  std::vector<std::uint8_t> stream;
  std::vector<FrameReport> reports;
  core::AcbmStats acbm_stats;  // zeros unless the estimator was ACBM
  std::vector<core::BlockDecision> acbm_log;
};

EncodeOutcome encode_with(const std::vector<video::Frame>& frames,
                          const std::string& algorithm,
                          const EncoderConfig& config,
                          bool record_log = false) {
  const auto estimator = core::builtin_estimators().create(algorithm);
  auto* acbm = dynamic_cast<core::Acbm*>(estimator.get());
  if (acbm != nullptr && record_log) {
    acbm->set_record_log(true);
  }
  Encoder encoder({frames[0].width(), frames[0].height()}, config,
                  *estimator);
  EncodeOutcome outcome;
  for (const video::Frame& frame : frames) {
    outcome.reports.push_back(encoder.encode_frame(frame));
  }
  outcome.stream = encoder.finish();
  if (acbm != nullptr) {
    outcome.acbm_stats = acbm->stats();
    outcome.acbm_log = acbm->decision_log();
  }
  return outcome;
}

void expect_reports_identical(const std::vector<FrameReport>& a,
                              const std::vector<FrameReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bits, b[i].bits) << "frame " << i;
    EXPECT_EQ(a[i].me_positions, b[i].me_positions) << "frame " << i;
    EXPECT_EQ(a[i].full_search_blocks, b[i].full_search_blocks)
        << "frame " << i;
    EXPECT_EQ(a[i].intra_mbs, b[i].intra_mbs) << "frame " << i;
    EXPECT_EQ(a[i].inter_mbs, b[i].inter_mbs) << "frame " << i;
    EXPECT_EQ(a[i].skip_mbs, b[i].skip_mbs) << "frame " << i;
    EXPECT_DOUBLE_EQ(a[i].psnr_y, b[i].psnr_y) << "frame " << i;
  }
}

TEST(ParallelEncode, PHeavyBitstreamIdenticalAcrossThreadCounts) {
  const auto frames = test_sequence("foreman", 8);
  EncoderConfig config;
  config.qp = 16;
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);
  ASSERT_GT(serial.stream.size(), 0u);

  for (int threads : {2, 4}) {
    EncoderConfig parallel = config;
    parallel.parallel.threads = threads;
    const EncodeOutcome outcome = encode_with(frames, "ACBM", parallel);
    EXPECT_EQ(outcome.stream, serial.stream) << threads << " threads";
    expect_reports_identical(outcome.reports, serial.reports);
  }
}

TEST(ParallelEncode, PbmSpatialPredictorsSurviveWavefront) {
  // PBM leans hardest on the left/above/above-right predictors — exactly
  // the entries the wavefront must order correctly.
  const auto frames = test_sequence("carphone", 8);
  EncoderConfig config;
  config.qp = 20;
  const EncodeOutcome serial = encode_with(frames, "PBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  EXPECT_EQ(encode_with(frames, "PBM", parallel).stream, serial.stream);
}

TEST(ParallelEncode, FsbmBitstreamIdentical) {
  const auto frames = test_sequence("table", 4);
  EncoderConfig config;
  config.qp = 22;
  config.search_range = 7;  // keep full search affordable in the suite
  const EncodeOutcome serial = encode_with(frames, "FSBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 3;
  EXPECT_EQ(encode_with(frames, "FSBM", parallel).stream, serial.stream);
}

TEST(ParallelEncode, IOnlySequenceIdentical) {
  const auto frames = test_sequence("carphone", 4);
  EncoderConfig config;
  config.qp = 16;
  config.intra_period = 1;  // every frame intra: ME never runs
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  const EncodeOutcome outcome = encode_with(frames, "ACBM", parallel);
  EXPECT_EQ(outcome.stream, serial.stream);
  for (const FrameReport& report : outcome.reports) {
    EXPECT_TRUE(report.intra);
  }
  EXPECT_EQ(outcome.acbm_stats.blocks, 0u);  // no ME on intra frames
}

TEST(ParallelEncode, SkipHeavySequenceIdentical) {
  // miss_america at a coarse quantiser: static studio background, most
  // macroblocks quantise to COD=1 skips.
  const auto frames = test_sequence("miss_america", 8);
  EncoderConfig config;
  config.qp = 30;
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);

  int skips = 0;
  for (const FrameReport& report : serial.reports) {
    skips += report.skip_mbs;
  }
  EXPECT_GT(skips, 0) << "scenario should actually exercise the skip path";

  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  const EncodeOutcome outcome = encode_with(frames, "ACBM", parallel);
  EXPECT_EQ(outcome.stream, serial.stream);
  expect_reports_identical(outcome.reports, serial.reports);
}

TEST(ParallelEncode, AcbmStatsTotalsIdenticalAfterMerge) {
  const auto frames = test_sequence("foreman", 8);
  EncoderConfig config;
  config.qp = 18;
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  const EncodeOutcome outcome = encode_with(frames, "ACBM", parallel);

  EXPECT_GT(serial.acbm_stats.blocks, 0u);
  EXPECT_EQ(outcome.acbm_stats.blocks, serial.acbm_stats.blocks);
  EXPECT_EQ(outcome.acbm_stats.total_positions,
            serial.acbm_stats.total_positions);
  EXPECT_EQ(outcome.acbm_stats.accepted_low_activity,
            serial.acbm_stats.accepted_low_activity);
  EXPECT_EQ(outcome.acbm_stats.accepted_good_match,
            serial.acbm_stats.accepted_good_match);
  EXPECT_EQ(outcome.acbm_stats.critical, serial.acbm_stats.critical);
}

TEST(ParallelEncode, AcbmDecisionLogIdenticalAfterMerge) {
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 18;
  const EncodeOutcome serial =
      encode_with(frames, "ACBM", config, /*record_log=*/true);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 3;
  const EncodeOutcome outcome =
      encode_with(frames, "ACBM", parallel, /*record_log=*/true);

  ASSERT_GT(serial.acbm_log.size(), 0u);
  ASSERT_EQ(outcome.acbm_log.size(), serial.acbm_log.size());
  for (std::size_t i = 0; i < serial.acbm_log.size(); ++i) {
    const core::BlockDecision& a = serial.acbm_log[i];
    const core::BlockDecision& b = outcome.acbm_log[i];
    EXPECT_EQ(a.frame, b.frame) << i;
    EXPECT_EQ(a.bx, b.bx) << i;
    EXPECT_EQ(a.by, b.by) << i;
    EXPECT_EQ(a.outcome, b.outcome) << i;
    EXPECT_EQ(a.intra_sad, b.intra_sad) << i;
    EXPECT_EQ(a.pbm_sad, b.pbm_sad) << i;
    EXPECT_EQ(a.final_mv, b.final_mv) << i;
    EXPECT_EQ(a.positions, b.positions) << i;
  }
}

TEST(ParallelEncode, RateDistortionModeIdentical) {
  const auto frames = test_sequence("carphone", 6);
  EncoderConfig config;
  config.qp = 20;
  config.mode_decision = ModeDecision::kRateDistortion;
  const EncodeOutcome serial = encode_with(frames, "PBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 3;
  EXPECT_EQ(encode_with(frames, "PBM", parallel).stream, serial.stream);
}

TEST(ParallelEncode, AutoThreadCountIdentical) {
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 16;
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 0;  // one worker per hardware thread
  EXPECT_EQ(encode_with(frames, "ACBM", parallel).stream, serial.stream);
}

TEST(ParallelEncode, NonDeterministicFlagStillBitExactToday) {
  // ParallelConfig::deterministic = false is an API reservation; the
  // wavefront scheduler currently stays bit-exact either way.
  const auto frames = test_sequence("foreman", 4);
  EncoderConfig config;
  config.qp = 16;
  const EncodeOutcome serial = encode_with(frames, "ACBM", config);
  EncoderConfig parallel = config;
  parallel.parallel.threads = 4;
  parallel.parallel.deterministic = false;
  EXPECT_EQ(encode_with(frames, "ACBM", parallel).stream, serial.stream);
}

TEST(ParallelEncode, ParallelStreamDecodes) {
  const auto frames = test_sequence("foreman", 6);
  EncoderConfig config;
  config.qp = 16;
  config.parallel.threads = 4;
  const EncodeOutcome outcome = encode_with(frames, "ACBM", config);

  Decoder decoder(outcome.stream);
  const std::vector<video::Frame> decoded = decoder.decode_all();
  EXPECT_EQ(decoded.size(), frames.size());
}

}  // namespace
}  // namespace acbm::codec
