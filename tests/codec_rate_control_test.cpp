// RateController: buffer model, deadbands, step clamping, renegotiation,
// and closed-loop behaviour against the real encoder.

#include "codec/rate_control.hpp"

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"
#include "core/acbm.hpp"
#include "synth/sequences.hpp"

namespace acbm::codec {
namespace {

RateController::Config config(double kbps, double fps = 30.0, int qp = 16) {
  RateController::Config c;
  c.target_kbps = kbps;
  c.fps = fps;
  c.initial_qp = qp;
  return c;
}

TEST(RateController, StartsAtInitialQp) {
  const RateController rc(config(48.0));
  EXPECT_EQ(rc.next_qp(), 16);
  EXPECT_EQ(rc.buffer_bits(), 0.0);
}

TEST(RateController, TargetBitsPerFrame) {
  const RateController rc(config(48.0, 30.0));
  EXPECT_DOUBLE_EQ(rc.target_bits_per_frame(), 1600.0);
}

TEST(RateController, OnBudgetFramesLeaveQpAlone) {
  RateController rc(config(48.0));
  for (int i = 0; i < 20; ++i) {
    rc.frame_encoded(1600);
  }
  EXPECT_EQ(rc.next_qp(), 16);
  EXPECT_DOUBLE_EQ(rc.buffer_bits(), 0.0);
}

TEST(RateController, OversizedFramesRaiseQp) {
  RateController rc(config(48.0));
  rc.frame_encoded(3200);  // backlog = 1 frame > upper deadband
  EXPECT_EQ(rc.next_qp(), 17);
  rc.frame_encoded(20000);  // backlog >> 4 frames
  EXPECT_EQ(rc.next_qp(), 19);  // step clamped to +2
}

TEST(RateController, UndersizedFramesLowerQp) {
  RateController rc(config(48.0));
  rc.frame_encoded(0);  // deficit of one frame
  EXPECT_EQ(rc.next_qp(), 15);
}

TEST(RateController, QpClampedToConfiguredRange) {
  RateController rc(config(48.0));
  for (int i = 0; i < 50; ++i) {
    rc.frame_encoded(100000);
  }
  EXPECT_EQ(rc.next_qp(), 31);
  // Positive backlog is capped at two seconds (overflowed bucket), so a
  // long run of empty frames drains it and walks Qp down to the floor.
  for (int i = 0; i < 100; ++i) {
    rc.frame_encoded(0);
  }
  EXPECT_EQ(rc.next_qp(), 2);  // default min_qp
}

TEST(RateController, BufferCannotBankUnlimitedCredit) {
  RateController rc(config(48.0, 30.0));
  for (int i = 0; i < 300; ++i) {
    rc.frame_encoded(0);  // idle channel
  }
  // Credit floor is one second of target bits.
  EXPECT_GE(rc.buffer_bits(), -30.0 * 1600.0 - 1e-9);
}

TEST(RateController, RenegotiationClampsBacklog) {
  RateController rc(config(48.0));
  for (int i = 0; i < 20; ++i) {
    rc.frame_encoded(10000);  // build a large backlog
  }
  rc.set_target_kbps(96.0);
  // At the new rate (3200 bits/frame) the carried backlog is ≤ 2 frames.
  EXPECT_LE(rc.backlog_frames(), 2.0 + 1e-9);
  EXPECT_DOUBLE_EQ(rc.target_bits_per_frame(), 3200.0);
}

TEST(RateController, BacklogFramesUnits) {
  RateController rc(config(60.0, 30.0));  // 2000 bits/frame
  rc.frame_encoded(6000);
  EXPECT_DOUBLE_EQ(rc.backlog_frames(), 2.0);
}

TEST(RateController, ClosedLoopHitsTargetRate) {
  // Full loop: encoder + controller must land within 20 % of the channel
  // rate on a nontrivial clip (excluding the intra frame).
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = video::kQcif;
  req.frame_count = 40;
  const auto frames = synth::make_sequence(req);

  core::Acbm acbm;
  EncoderConfig cfg;
  cfg.qp = 16;
  Encoder encoder(video::kQcif, cfg, acbm);
  RateController rc(config(60.0));

  std::uint64_t bits = 0;
  int counted = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    encoder.set_qp(rc.next_qp());
    const FrameReport r = encoder.encode_frame(frames[i]);
    rc.frame_encoded(r.bits);
    if (i >= 10) {  // skip intra transient
      bits += r.bits;
      ++counted;
    }
  }
  const double kbps =
      static_cast<double>(bits) * 30.0 / counted / 1000.0;
  EXPECT_NEAR(kbps, 60.0, 12.0);
}

TEST(RateController, ClosedLoopQpTracksChannelInversely) {
  // Lower channel rate must settle at a strictly higher quantiser.
  synth::SequenceRequest req;
  req.name = "foreman";
  req.size = video::kQcif;
  req.frame_count = 30;
  const auto frames = synth::make_sequence(req);

  auto settled_qp = [&](double kbps) {
    core::Acbm acbm;
    EncoderConfig cfg;
    cfg.qp = 16;
    Encoder encoder(video::kQcif, cfg, acbm);
    RateController rc(config(kbps));
    double qp_sum = 0.0;
    int counted = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      encoder.set_qp(rc.next_qp());
      const FrameReport r = encoder.encode_frame(frames[i]);
      rc.frame_encoded(r.bits);
      if (i >= 15) {
        qp_sum += rc.next_qp();
        ++counted;
      }
    }
    return qp_sum / counted;
  };
  EXPECT_GT(settled_qp(48.0), settled_qp(80.0) + 1.0);
}

TEST(Encoder, SetQpValidatesAndApplies) {
  core::Acbm acbm;
  EncoderConfig cfg;
  cfg.qp = 16;
  Encoder encoder({64, 48}, cfg, acbm);
  EXPECT_THROW(encoder.set_qp(0), std::invalid_argument);
  EXPECT_THROW(encoder.set_qp(32), std::invalid_argument);
  encoder.set_qp(25);
  EXPECT_EQ(encoder.config().qp, 25);
}

TEST(Encoder, VaryingQpStreamStaysDecodable) {
  synth::SequenceRequest req;
  req.name = "table";
  req.size = {64, 48};
  req.frame_count = 6;
  const auto frames = synth::make_sequence(req);

  core::Acbm acbm;
  EncoderConfig cfg;
  cfg.qp = 8;
  cfg.search_range = 7;
  Encoder encoder({64, 48}, cfg, acbm);
  std::vector<video::Frame> recons;
  const int qps[] = {8, 31, 2, 20, 11, 27};
  for (std::size_t i = 0; i < frames.size(); ++i) {
    encoder.set_qp(qps[i]);
    (void)encoder.encode_frame(frames[i]);
    recons.push_back(encoder.last_recon());
  }
  Decoder decoder(encoder.finish());
  const auto decoded = decoder.decode_all();
  ASSERT_EQ(decoded.size(), recons.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_TRUE(decoded[i].y().visible_equals(recons[i].y())) << i;
  }
}

}  // namespace
}  // namespace acbm::codec
