#pragma once
// Runtime selection of the active SAD kernel table.
//
// Variant availability is decided twice: at BUILD time a CMake feature probe
// compiles src/simd/sad_sse2.cpp / sad_avx2.cpp with the matching -m flags
// (skipped entirely under -DACBM_DISABLE_SIMD=ON or on non-x86 targets), and
// at RUN time CPUID gates which compiled variants may execute. The process
// starts on the best variant that passes both gates ("auto"); the --kernel
// CLI flag on acbm_enc / the benches, or select_kernels() from code, pins a
// specific one for A/B measurement.
//
// Selection is process-global: the table is consulted through one atomic
// pointer on every me::sad_block call. Swapping variants mid-encode is safe
// (all variants are bit-identical) but pointless; the intended protocol is
// select once at startup. Thread-pool workers read the same table, so a
// parallel encode uses one variant throughout.

#include <string>
#include <string_view>
#include <vector>

#include "simd/sad_kernels.hpp"

namespace acbm::simd {

/// The selectable kernel variants. kAuto resolves to the best variant that
/// is both compiled in and supported by the executing CPU.
enum class KernelIsa { kScalar, kSse2, kAvx2, kAuto };

/// @brief Table for a specific variant, or nullptr when it is unavailable
/// (compiled out by the feature probe / ACBM_DISABLE_SIMD, or the CPU lacks
/// the ISA). kScalar always succeeds; kAuto returns the best available.
/// Useful for benchmarking variants side by side without touching the
/// global selection.
[[nodiscard]] const SadKernels* kernels_for(KernelIsa isa);

/// @brief The table all me:: SAD entry points currently route through.
/// Defaults to kAuto's choice on first use.
[[nodiscard]] const SadKernels& active_kernels();

/// @brief Makes `isa` the active table. Returns false (selection unchanged)
/// when the variant is unavailable on this build/CPU.
bool select_kernels(KernelIsa isa);

/// @brief select_kernels() keyed by the CLI spelling: "scalar", "sse2",
/// "avx2" or "auto". Unknown names return false.
bool select_kernels_by_name(std::string_view name);

/// @brief Parses a CLI kernel spelling into its KernelIsa without touching
/// the active selection or checking availability. Lets callers distinguish
/// "not a kernel name" (reject with the valid spellings) from "a real
/// variant this build/CPU cannot honour" (reject with
/// available_kernel_names()) instead of collapsing both into one failure.
/// @return true and sets `isa` for the four valid spellings; false otherwise.
bool parse_kernel_name(std::string_view name, KernelIsa& isa);

/// @brief Name of the active table ("scalar", "sse2", "avx2").
[[nodiscard]] std::string_view active_kernel_name();

/// @brief CLI spellings accepted by select_kernels_by_name() on this
/// build/CPU, in preference order ending with "auto" — ready for usage
/// strings and validation messages.
[[nodiscard]] std::vector<std::string> available_kernel_names();

}  // namespace acbm::simd
