#include "simd/dispatch.hpp"

#include <atomic>

namespace acbm::simd {
namespace {

// CPUID gates. __builtin_cpu_supports (GCC/Clang) checks OS state too
// (OSXSAVE/XCR0 for AVX2), so a kernel is only offered where it may legally
// execute. Non-GNU compilers conservatively report "unsupported" and run the
// scalar table.
bool cpu_supports_sse2() {
#if defined(__x86_64__)
  return true;  // architectural baseline
#elif defined(__i386__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("sse2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const SadKernels* best_table() {
  if (const SadKernels* t = kernels_for(KernelIsa::kAvx2)) {
    return t;
  }
  if (const SadKernels* t = kernels_for(KernelIsa::kSse2)) {
    return t;
  }
  return detail::scalar_kernels();
}

// Function-local static: thread-safe lazy init, immune to cross-TU static
// initialization order (me::sad_block may run during another TU's dynamic
// initialization).
std::atomic<const SadKernels*>& active_slot() {
  static std::atomic<const SadKernels*> slot{best_table()};
  return slot;
}

}  // namespace

const SadKernels* kernels_for(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return detail::scalar_kernels();
    case KernelIsa::kSse2:
      return cpu_supports_sse2() ? detail::sse2_kernels() : nullptr;
    case KernelIsa::kAvx2:
      return cpu_supports_avx2() ? detail::avx2_kernels() : nullptr;
    case KernelIsa::kAuto:
      return best_table();
  }
  return nullptr;
}

const SadKernels& active_kernels() {
  return *active_slot().load(std::memory_order_acquire);
}

bool select_kernels(KernelIsa isa) {
  const SadKernels* table = kernels_for(isa);
  if (table == nullptr) {
    return false;
  }
  active_slot().store(table, std::memory_order_release);
  return true;
}

bool select_kernels_by_name(std::string_view name) {
  KernelIsa isa;
  return parse_kernel_name(name, isa) && select_kernels(isa);
}

bool parse_kernel_name(std::string_view name, KernelIsa& isa) {
  if (name == "scalar") {
    isa = KernelIsa::kScalar;
    return true;
  }
  if (name == "sse2") {
    isa = KernelIsa::kSse2;
    return true;
  }
  if (name == "avx2") {
    isa = KernelIsa::kAvx2;
    return true;
  }
  if (name == "auto") {
    isa = KernelIsa::kAuto;
    return true;
  }
  return false;
}

std::string_view active_kernel_name() { return active_kernels().name; }

std::vector<std::string> available_kernel_names() {
  std::vector<std::string> names;
  for (KernelIsa isa :
       {KernelIsa::kAvx2, KernelIsa::kSse2, KernelIsa::kScalar}) {
    if (const SadKernels* t = kernels_for(isa)) {
      names.emplace_back(t->name);
    }
  }
  names.emplace_back("auto");
  return names;
}

}  // namespace acbm::simd
