// AVX2 variant of the SAD kernel table.
//
// The encoder's macroblocks are 16 samples wide — half a 256-bit vector —
// so the bw == 16 fast paths pack TWO rows into each YMM register and run
// one VPSADBW per row pair; wider blocks use 32-byte row chunks. Everything
// funnels through the same row-group early-exit checkpoints as the scalar
// reference (kEarlyExitRowQuantum is a multiple of the 2-row packing), so
// results are bit-identical. Compiled with -mavx2 when the CMake feature
// probe accepts the flag; a nullptr accessor otherwise.

#include "simd/sad_kernels.hpp"

#if !defined(ACBM_DISABLE_SIMD) && defined(__AVX2__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <algorithm>
#include <cstdlib>

#include "simd/sad_halfpel_rows.hpp"

namespace acbm::simd {
namespace {

static_assert(kEarlyExitRowQuantum % 2 == 0,
              "AVX2 packs two rows per op between early-exit checkpoints");

/// Two independent 16-byte rows packed into one YMM register.
inline __m256i load_two_rows(const std::uint8_t* r0, const std::uint8_t* r1) {
  return _mm256_inserti128_si256(
      _mm256_castsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0))),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1)), 1);
}

inline std::uint32_t hsum_sad128(__m128i v) {
  const __m128i hi = _mm_srli_si128(v, 8);
  const __m128i s = _mm_add_epi32(v, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

/// Sums the four 64-bit VPSADBW accumulator lanes.
inline std::uint32_t hsum_sad256(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  return hsum_sad128(_mm_add_epi32(lo, hi));
}

inline std::uint32_t row_sad_vec(const std::uint8_t* a, const std::uint8_t* b,
                                 int bw) {
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 32) {
    __m256i acc = _mm256_setzero_si256();
    for (; x + 32 <= bw; x += 32) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + x));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + x));
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
    }
    sum = hsum_sad256(acc);
  }
  if (x + 16 <= bw) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + x));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + x));
    sum += hsum_sad128(_mm_sad_epu8(va, vb));
    x += 16;
  }
  if (x + 8 <= bw) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + x));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + x));
    sum += static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_sad_epu8(va, vb)));
    x += 8;
  }
  for (; x < bw; ++x) {
    sum += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
  }
  return sum;
}

std::uint32_t sad_avx2(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* ref, int ref_stride, int bw, int bh,
                       std::uint32_t early_exit) {
  std::uint32_t total = 0;
  int y = 0;
  if (bw == 16) {
    while (y < bh) {
      const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
      __m256i acc = _mm256_setzero_si256();
      for (; y + 2 <= group_end; y += 2) {
        const std::uint8_t* a0 =
            cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
        const std::uint8_t* b0 =
            ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(load_two_rows(a0, a0 + cur_stride),
                                 load_two_rows(b0, b0 + ref_stride)));
      }
      total += hsum_sad256(acc);
      for (; y < group_end; ++y) {  // odd final row of the block
        total +=
            row_sad_vec(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                        ref + static_cast<std::ptrdiff_t>(y) * ref_stride, bw);
      }
      if (total > early_exit) {
        return total;
      }
    }
    return total;
  }
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      total += row_sad_vec(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                           ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                           bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

// --------------------------------------------------- fused half-pel + SAD
//
// Same phase arithmetic as the SSE2 variant (VPAVGB for H/V — its rounding
// IS the H.263 rule — and widened 16-bit math for HV), but the bw == 16
// fast path keeps the two-rows-per-YMM packing of sad_avx2: output rows y
// and y+1 interpolate from reference rows {y, y+1} and {y+1, y+2}, which
// load_two_rows expresses directly. The shared 128-bit per-row helpers
// (sad_halfpel_rows.hpp) cover odd tail rows and generic widths.

std::uint32_t sad_halfpel_avx2(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride,
                               int phase_h, int phase_v, int bw, int bh,
                               std::uint32_t early_exit) {
  if (phase_h == 0 && phase_v == 0) {
    return sad_avx2(cur, cur_stride, ref, ref_stride, bw, bh, early_exit);
  }
  std::uint32_t total = 0;
  int y = 0;
  if (bw == 16) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i two = _mm256_set1_epi16(2);
    while (y < bh) {
      const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
      __m256i acc = _mm256_setzero_si256();
      for (; y + 2 <= group_end; y += 2) {
        const std::uint8_t* c0 =
            cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
        const std::uint8_t* r_y =
            ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
        const std::uint8_t* r_y1 = r_y + ref_stride;
        const __m256i vc = load_two_rows(c0, c0 + cur_stride);
        __m256i p;
        if (phase_v == 0) {
          p = _mm256_avg_epu8(load_two_rows(r_y, r_y1),
                              load_two_rows(r_y + 1, r_y1 + 1));
        } else if (phase_h == 0) {
          p = _mm256_avg_epu8(load_two_rows(r_y, r_y1),
                              load_two_rows(r_y1, r_y1 + ref_stride));
        } else {
          // 256-bit transcription of row_sad_fused_hv (sad_halfpel_rows.hpp)
          // over a packed row pair — any change to the HV rounding must be
          // applied to BOTH sites or the cross-variant bit parity breaks.
          const __m256i a = load_two_rows(r_y, r_y1);
          const __m256i b = load_two_rows(r_y + 1, r_y1 + 1);
          const __m256i d = load_two_rows(r_y1, r_y1 + ref_stride);
          const __m256i e = load_two_rows(r_y1 + 1, r_y1 + ref_stride + 1);
          const __m256i lo = _mm256_srli_epi16(
              _mm256_add_epi16(
                  _mm256_add_epi16(_mm256_unpacklo_epi8(a, zero),
                                   _mm256_unpacklo_epi8(b, zero)),
                  _mm256_add_epi16(
                      _mm256_add_epi16(_mm256_unpacklo_epi8(d, zero),
                                       _mm256_unpacklo_epi8(e, zero)),
                      two)),
              2);
          const __m256i hi = _mm256_srli_epi16(
              _mm256_add_epi16(
                  _mm256_add_epi16(_mm256_unpackhi_epi8(a, zero),
                                   _mm256_unpackhi_epi8(b, zero)),
                  _mm256_add_epi16(
                      _mm256_add_epi16(_mm256_unpackhi_epi8(d, zero),
                                       _mm256_unpackhi_epi8(e, zero)),
                      two)),
              2);
          p = _mm256_packus_epi16(lo, hi);
        }
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(vc, p));
      }
      total += hsum_sad256(acc);
      for (; y < group_end; ++y) {  // odd final row of the block
        total += detail::row_sad_fused(
            cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
            ref + static_cast<std::ptrdiff_t>(y) * ref_stride, ref_stride,
            phase_h, phase_v, bw);
      }
      if (total > early_exit) {
        return total;
      }
    }
    return total;
  }
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      total += detail::row_sad_fused(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                             ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                             ref_stride, phase_h, phase_v, bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

inline std::uint32_t row_quincunx_vec(const std::uint8_t* a,
                                      const std::uint8_t* b, int bw,
                                      int phase) {
  const __m128i mask = phase != 0
                           ? _mm_set1_epi16(static_cast<short>(0xFF00))
                           : _mm_set1_epi16(0x00FF);
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i va = _mm_and_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + x)), mask);
      const __m128i vb = _mm_and_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + x)), mask);
      acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    }
    sum = hsum_sad128(acc);
  }
  for (x += phase; x < bw; x += 2) {
    sum += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
  }
  return sum;
}

std::uint32_t sad_quincunx_avx2(const std::uint8_t* cur, int cur_stride,
                                const std::uint8_t* ref, int ref_stride,
                                int bw, int bh) {
  std::uint32_t total = 0;
  int y = 0;
  if (bw == 16) {
    // Consecutive sampled rows y, y+2 always carry phases (0, 1), so one
    // constant YMM mask (even lanes low half, odd lanes high half) covers
    // every pair.
    const __m256i mask = _mm256_inserti128_si256(
        _mm256_castsi128_si256(_mm_set1_epi16(0x00FF)),
        _mm_set1_epi16(static_cast<short>(0xFF00)), 1);
    __m256i acc = _mm256_setzero_si256();
    for (; y + 4 <= bh; y += 4) {
      const std::uint8_t* a0 =
          cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
      const std::uint8_t* b0 =
          ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
      const __m256i va =
          _mm256_and_si256(load_two_rows(a0, a0 + 2 * cur_stride), mask);
      const __m256i vb =
          _mm256_and_si256(load_two_rows(b0, b0 + 2 * ref_stride), mask);
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
    }
    total = hsum_sad256(acc);
  }
  for (; y < bh; y += 2) {
    total += row_quincunx_vec(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
        ref + static_cast<std::ptrdiff_t>(y) * ref_stride, bw, (y >> 1) & 1);
  }
  return total;
}

std::uint32_t sad_rowskip_avx2(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride,
                               int bw, int bh) {
  std::uint32_t total = 0;
  int y = 0;
  if (bw == 16) {
    __m256i acc = _mm256_setzero_si256();
    for (; y + 4 <= bh; y += 4) {  // sampled rows y and y+2 per op
      const std::uint8_t* a0 =
          cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
      const std::uint8_t* b0 =
          ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(load_two_rows(a0, a0 + 2 * cur_stride),
                               load_two_rows(b0, b0 + 2 * ref_stride)));
    }
    total = hsum_sad256(acc);
  }
  for (; y < bh; y += 2) {
    total += row_sad_vec(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                         ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                         bw);
  }
  return total;
}

constexpr SadKernels kAvx2Table = {sad_avx2, sad_halfpel_avx2,
                                   sad_quincunx_avx2, sad_rowskip_avx2,
                                   "avx2"};

}  // namespace

namespace detail {

const SadKernels* avx2_kernels() { return &kAvx2Table; }

}  // namespace detail
}  // namespace acbm::simd

#else  // variant compiled out

namespace acbm::simd::detail {

const SadKernels* avx2_kernels() { return nullptr; }

}  // namespace acbm::simd::detail

#endif
