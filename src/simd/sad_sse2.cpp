// SSE2 variant of the SAD kernel table.
//
// One 128-bit PSADBW per 16 samples; rows shorter than a full vector fall
// back to an 8-byte PSADBW and a scalar tail, so any (bw, bh) is handled and
// the result is bit-identical to the scalar reference. Compiled with -msse2
// when the CMake feature probe accepts the flag; compiles to a nullptr
// accessor otherwise (or under -DACBM_DISABLE_SIMD=ON), so dispatch.cpp can
// link against this TU unconditionally.

#include "simd/sad_kernels.hpp"

#if !defined(ACBM_DISABLE_SIMD) && defined(__SSE2__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <emmintrin.h>

#include <algorithm>
#include <cstdlib>

#include "simd/sad_halfpel_rows.hpp"

namespace acbm::simd {
namespace {

/// Sums the two 64-bit PSADBW accumulator lanes (each < 2^32 for any
/// realistic block, so 32-bit extraction is safe).
inline std::uint32_t hsum_sad128(__m128i v) {
  const __m128i hi = _mm_srli_si128(v, 8);
  const __m128i s = _mm_add_epi32(v, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

inline std::uint32_t row_sad_sse2(const std::uint8_t* a, const std::uint8_t* b,
                                  int bw) {
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + x));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    }
    sum = hsum_sad128(acc);
  }
  if (x + 8 <= bw) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + x));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + x));
    sum += static_cast<std::uint32_t>(_mm_cvtsi128_si32(_mm_sad_epu8(va, vb)));
    x += 8;
  }
  for (; x < bw; ++x) {
    sum += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
  }
  return sum;
}

std::uint32_t sad_sse2(const std::uint8_t* cur, int cur_stride,
                       const std::uint8_t* ref, int ref_stride, int bw, int bh,
                       std::uint32_t early_exit) {
  std::uint32_t total = 0;
  int y = 0;
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      total += row_sad_sse2(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                            ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                            bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

// --------------------------------------------------- fused half-pel + SAD
//
// Row arithmetic lives in sad_halfpel_rows.hpp (shared with the AVX2 TU):
// PAVGB for the H/V phases — its rounding IS the H.263 bilinear rule — and
// widened 16-bit math for HV, which has no single-op equivalent.

std::uint32_t sad_halfpel_sse2(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride,
                               int phase_h, int phase_v, int bw, int bh,
                               std::uint32_t early_exit) {
  if (phase_h == 0 && phase_v == 0) {
    return sad_sse2(cur, cur_stride, ref, ref_stride, bw, bh, early_exit);
  }
  std::uint32_t total = 0;
  int y = 0;
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      total += detail::row_sad_fused(
          cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
          ref + static_cast<std::ptrdiff_t>(y) * ref_stride, ref_stride,
          phase_h, phase_v, bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

/// Masked PSADBW over one quincunx-sampled row. Zeroing the discarded lanes
/// in *both* operands makes their |difference| zero, so a full-width PSADBW
/// sums exactly the kept columns. Chunk origins are multiples of 16 (even),
/// so lane parity within a chunk equals column parity and one constant mask
/// per phase covers every chunk.
inline std::uint32_t row_quincunx_sse2(const std::uint8_t* a,
                                       const std::uint8_t* b, int bw,
                                       int phase) {
  const __m128i mask = phase != 0
                           ? _mm_set1_epi16(static_cast<short>(0xFF00))
                           : _mm_set1_epi16(0x00FF);
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i va = _mm_and_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + x)), mask);
      const __m128i vb = _mm_and_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + x)), mask);
      acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    }
    sum = hsum_sad128(acc);
  }
  for (x += phase; x < bw; x += 2) {
    sum += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
  }
  return sum;
}

std::uint32_t sad_quincunx_sse2(const std::uint8_t* cur, int cur_stride,
                                const std::uint8_t* ref, int ref_stride,
                                int bw, int bh) {
  std::uint32_t total = 0;
  for (int y = 0; y < bh; y += 2) {
    total += row_quincunx_sse2(
        cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
        ref + static_cast<std::ptrdiff_t>(y) * ref_stride, bw, (y >> 1) & 1);
  }
  return total;
}

std::uint32_t sad_rowskip_sse2(const std::uint8_t* cur, int cur_stride,
                               const std::uint8_t* ref, int ref_stride,
                               int bw, int bh) {
  std::uint32_t total = 0;
  for (int y = 0; y < bh; y += 2) {
    total += row_sad_sse2(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                          ref + static_cast<std::ptrdiff_t>(y) * ref_stride,
                          bw);
  }
  return total;
}

constexpr SadKernels kSse2Table = {sad_sse2, sad_halfpel_sse2,
                                   sad_quincunx_sse2, sad_rowskip_sse2,
                                   "sse2"};

}  // namespace

namespace detail {

const SadKernels* sse2_kernels() { return &kSse2Table; }

}  // namespace detail
}  // namespace acbm::simd

#else  // variant compiled out

namespace acbm::simd::detail {

const SadKernels* sse2_kernels() { return nullptr; }

}  // namespace acbm::simd::detail

#endif
