#pragma once
// The SAD kernel function table — the contract every ISA variant implements.
//
// Motion estimation spends nearly all of its time inside the SAD inner loop,
// so that loop is the one place in the repository with per-ISA code. The
// rest of the system never names an instruction set: `me::sad_block` and
// friends call through the table returned by `simd::active_kernels()`
// (see dispatch.hpp), and every variant of the table computes *bit-identical
// results* — the scalar implementation is the ground truth, and
// tests/simd_sad_test.cpp holds the SSE2/AVX2 variants to exact equality
// over randomized blocks, offsets and thresholds.
//
// Kernels operate on raw row pointers + strides rather than video::Plane so
// the ISA translation units depend on nothing but this header. Callers are
// responsible for bounds: a kernel reads exactly `bw` samples from each of
// `bh` rows (every other row for the decimated patterns) starting at the
// given pointers — no overread, which keeps the kernels sanitizer-clean
// against video::Plane's border guarantee.

#include <cstdint>

namespace acbm::simd {

/// @brief Early-exit check granularity, in rows, shared by every variant.
///
/// The full-block SAD kernel compares its running total against the caller's
/// bound after each group of `kEarlyExitRowQuantum` rows (and after the
/// final, possibly shorter, group) — not after every row. Hoisting the check
/// to row-group granularity is what lets a 256-bit kernel process two
/// 16-sample rows per instruction while still returning *exactly* the same
/// value as the scalar reference: all variants accumulate the same groups in
/// the same order, so the partial total at every checkpoint is identical.
inline constexpr int kEarlyExitRowQuantum = 4;

/// @brief Full-block SAD with an early-exit bound.
///
/// @param cur        first sample of the current block's top row
/// @param cur_stride distance in samples between vertically adjacent rows
/// @param ref        first sample of the reference block's top row
/// @param ref_stride reference row stride in samples
/// @param bw,bh      block width/height in samples (any positive values)
/// @param early_exit if the running total exceeds this after any
///                   kEarlyExitRowQuantum-row group, the kernel returns that
///                   partial total (> early_exit) without finishing the
///                   block. Pass 0xFFFFFFFF for "no bound".
/// @return the exact SAD over all rows processed; every ISA variant returns
///         the same value for the same inputs (including partial totals).
using SadFn = std::uint32_t (*)(const std::uint8_t* cur, int cur_stride,
                                const std::uint8_t* ref, int ref_stride,
                                int bw, int bh, std::uint32_t early_exit);

/// @brief Decimated SAD (no early exit — decimation already bounds the work).
/// Same pointer/stride conventions as SadFn.
using SadPatternFn = std::uint32_t (*)(const std::uint8_t* cur, int cur_stride,
                                       const std::uint8_t* ref, int ref_stride,
                                       int bw, int bh);

/// @brief Fused half-pel interpolate + SAD.
///
/// `ref` points at the INTEGER-pel reference sample (rX, rY) = the floor of
/// the half-pel block origin; (phase_h, phase_v) ∈ {0,1}² select the H.263
/// bilinear phase. The kernel synthesises each interpolated reference
/// sample on the fly — (a+b+1)>>1 for the H/V phases, (a+b+c+d+2)>>2 for
/// HV — and accumulates |cur − interp| under the same
/// kEarlyExitRowQuantum-row early-exit contract as SadFn, so every variant
/// returns bit-identical values (including partial totals) to matching a
/// pre-interpolated phase plane with the plain SAD kernel. A kernel reads
/// `bw + phase_h` samples from each of `bh + phase_v` reference rows; the
/// caller guarantees those bounds (the integer plane keeps one more border
/// sample than the legacy phase planes carried, exactly covering the +1
/// overread).
///
/// Phase (0, 0) degrades to the plain SAD — callers need not special-case
/// integer candidates.
using SadHalfpelFn = std::uint32_t (*)(const std::uint8_t* cur, int cur_stride,
                                       const std::uint8_t* ref, int ref_stride,
                                       int phase_h, int phase_v, int bw, int bh,
                                       std::uint32_t early_exit);

/// @brief One ISA's complete set of SAD kernels.
///
/// Populated once per compiled variant (scalar always; SSE2/AVX2 when the
/// CMake feature probe enables them) and selected at runtime by
/// simd::dispatch. All function pointers are always non-null.
struct SadKernels {
  /// Full-block SAD with the row-group early-exit contract above.
  SadFn sad;

  /// Fused interpolate+SAD against the integer-pel reference (see
  /// SadHalfpelFn). me::sad_block_halfpel resolves half-pel coordinates to
  /// an integer origin + phase pair and calls this slot directly; no
  /// pre-interpolated phase planes are involved, which is what lets
  /// video::HalfpelPlanes stay lazy for encodes that only ever match.
  SadHalfpelFn sad_halfpel;

  /// Quincunx 4:1 decimation (Liu–Zaccarin pattern A): every other row is
  /// sampled, and within a sampled row every other column, with the column
  /// phase alternating between sampled rows: row y contributes columns
  /// x ≡ (y>>1)&1 (mod 2), y even. Matches me::DecimationPattern::kQuincunx4to1.
  SadPatternFn sad_quincunx;

  /// Row-skip 2:1 decimation (Chan & Siu): full rows, every other row
  /// (y = 0, 2, 4, ...). Matches me::DecimationPattern::kRowSkip2to1.
  SadPatternFn sad_rowskip;

  /// Stable lowercase identifier: "scalar", "sse2", "avx2". Used by the
  /// --kernel CLI flag and bench output.
  const char* name;
};

namespace detail {
/// Per-variant table accessors. The scalar table always exists; the ISA
/// accessors return nullptr when the variant was compiled out (feature probe
/// failure, non-x86 target, or -DACBM_DISABLE_SIMD=ON).
[[nodiscard]] const SadKernels* scalar_kernels();
[[nodiscard]] const SadKernels* sse2_kernels();
[[nodiscard]] const SadKernels* avx2_kernels();
}  // namespace detail

}  // namespace acbm::simd
