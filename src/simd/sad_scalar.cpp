// Scalar reference implementation of the SAD kernel table.
//
// This is the ground truth: the SSE2/AVX2 variants are tested for exact
// equality against these loops, and every non-x86 build runs them directly.
// The build compiles this file with auto-vectorization disabled where the
// compiler supports it (see CMakeLists.txt) so `--kernel=scalar` measures a
// true scalar baseline and the A/B numbers in docs/BENCHMARKING.md mean what
// they say.

#include "simd/sad_kernels.hpp"

#include <algorithm>
#include <cstdlib>

namespace acbm::simd {
namespace {

std::uint32_t row_sad(const std::uint8_t* a, const std::uint8_t* b, int bw) {
  std::uint32_t sum = 0;
  for (int x = 0; x < bw; ++x) {
    sum += static_cast<std::uint32_t>(
        std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
  }
  return sum;
}

std::uint32_t sad_scalar(const std::uint8_t* cur, int cur_stride,
                         const std::uint8_t* ref, int ref_stride, int bw,
                         int bh, std::uint32_t early_exit) {
  std::uint32_t total = 0;
  int y = 0;
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      total += row_sad(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                       ref + static_cast<std::ptrdiff_t>(y) * ref_stride, bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

/// One row of |cur − interp(ref)| for a non-integer phase. r0/r1 are the
/// integer rows bracketing the half-pel position vertically (r1 == r0 for
/// the pure-H phase).
std::uint32_t row_sad_interp(const std::uint8_t* c, const std::uint8_t* r0,
                             const std::uint8_t* r1, int phase_h, int bw) {
  std::uint32_t sum = 0;
  if (phase_h == 0) {
    for (int x = 0; x < bw; ++x) {
      const int p = (r0[x] + r1[x] + 1) >> 1;
      sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
    }
  } else if (r0 == r1) {
    for (int x = 0; x < bw; ++x) {
      const int p = (r0[x] + r0[x + 1] + 1) >> 1;
      sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
    }
  } else {
    for (int x = 0; x < bw; ++x) {
      const int p = (r0[x] + r0[x + 1] + r1[x] + r1[x + 1] + 2) >> 2;
      sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
    }
  }
  return sum;
}

std::uint32_t sad_halfpel_scalar(const std::uint8_t* cur, int cur_stride,
                                 const std::uint8_t* ref, int ref_stride,
                                 int phase_h, int phase_v, int bw, int bh,
                                 std::uint32_t early_exit) {
  if (phase_h == 0 && phase_v == 0) {
    return sad_scalar(cur, cur_stride, ref, ref_stride, bw, bh, early_exit);
  }
  std::uint32_t total = 0;
  int y = 0;
  while (y < bh) {
    const int group_end = std::min(y + kEarlyExitRowQuantum, bh);
    for (; y < group_end; ++y) {
      const std::uint8_t* c = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
      const std::uint8_t* r0 =
          ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
      total += row_sad_interp(c, r0, phase_v != 0 ? r0 + ref_stride : r0,
                              phase_h, bw);
    }
    if (total > early_exit) {
      return total;
    }
  }
  return total;
}

std::uint32_t sad_quincunx_scalar(const std::uint8_t* cur, int cur_stride,
                                  const std::uint8_t* ref, int ref_stride,
                                  int bw, int bh) {
  std::uint32_t total = 0;
  for (int y = 0; y < bh; y += 2) {
    const int phase = (y >> 1) & 1;
    const std::uint8_t* a = cur + static_cast<std::ptrdiff_t>(y) * cur_stride;
    const std::uint8_t* b = ref + static_cast<std::ptrdiff_t>(y) * ref_stride;
    for (int x = phase; x < bw; x += 2) {
      total += static_cast<std::uint32_t>(
          std::abs(static_cast<int>(a[x]) - static_cast<int>(b[x])));
    }
  }
  return total;
}

std::uint32_t sad_rowskip_scalar(const std::uint8_t* cur, int cur_stride,
                                 const std::uint8_t* ref, int ref_stride,
                                 int bw, int bh) {
  std::uint32_t total = 0;
  for (int y = 0; y < bh; y += 2) {
    total += row_sad(cur + static_cast<std::ptrdiff_t>(y) * cur_stride,
                     ref + static_cast<std::ptrdiff_t>(y) * ref_stride, bw);
  }
  return total;
}

constexpr SadKernels kScalarTable = {sad_scalar, sad_halfpel_scalar,
                                     sad_quincunx_scalar, sad_rowskip_scalar,
                                     "scalar"};

}  // namespace

namespace detail {

const SadKernels* scalar_kernels() { return &kScalarTable; }

}  // namespace detail
}  // namespace acbm::simd
