#pragma once
// Shared 128-bit row helpers for the fused interpolate+SAD kernels.
//
// Included ONLY by the ISA translation units (sad_sse2.cpp, sad_avx2.cpp)
// inside their feature-gated #if blocks — every includer is compiled with
// at least -msse2, so the intrinsics here are always legal. Keeping one
// copy matters more than usual: these helpers encode the H.263 rounding
// ((a+b+1)>>1 via PAVGB; (a+b+c+d+2)>>2 via widened 16-bit math, which is
// NOT avg(avg(a,b),avg(c,d))), and the cross-variant bit-parity contract
// dies silently if two hand-maintained copies drift.
//
// Pointer conventions match SadHalfpelFn: `c` is the current row, `r0` the
// integer reference row bracketing the half-pel position from above, `r1`
// the row below (callers pass r0 + ref_stride). H reads bw+1 columns of
// r0; V reads bw columns of r0 and r1; HV reads bw+1 columns of both.

#include <emmintrin.h>

#include <cstdint>
#include <cstdlib>

namespace acbm::simd::detail {

/// Sums the two 64-bit PSADBW accumulator lanes.
inline std::uint32_t fused_hsum_sad128(__m128i v) {
  const __m128i hi = _mm_srli_si128(v, 8);
  const __m128i s = _mm_add_epi32(v, hi);
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

/// One row of |cur − interp| for the H phase: (r[x] + r[x+1] + 1) >> 1.
inline std::uint32_t row_sad_fused_h(const std::uint8_t* c,
                                     const std::uint8_t* r, int bw) {
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i p = _mm_avg_epu8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + x)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + x + 1)));
      const __m128i vc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(vc, p));
    }
    sum = fused_hsum_sad128(acc);
  }
  for (; x < bw; ++x) {
    const int p = (r[x] + r[x + 1] + 1) >> 1;
    sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
  }
  return sum;
}

/// One row for the V phase: (r0[x] + r1[x] + 1) >> 1.
inline std::uint32_t row_sad_fused_v(const std::uint8_t* c,
                                     const std::uint8_t* r0,
                                     const std::uint8_t* r1, int bw) {
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i p = _mm_avg_epu8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + x)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + x)));
      const __m128i vc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(vc, p));
    }
    sum = fused_hsum_sad128(acc);
  }
  for (; x < bw; ++x) {
    const int p = (r0[x] + r1[x] + 1) >> 1;
    sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
  }
  return sum;
}

/// One row for the HV phase: (r0[x] + r0[x+1] + r1[x] + r1[x+1] + 2) >> 2,
/// computed in 16-bit lanes (no saturation: the result is ≤ 255). The AVX2
/// bw==16 fast path carries a 256-bit transcription of this sequence over
/// packed row pairs (sad_avx2.cpp) — change both together.
inline std::uint32_t row_sad_fused_hv(const std::uint8_t* c,
                                      const std::uint8_t* r0,
                                      const std::uint8_t* r1, int bw) {
  std::uint32_t sum = 0;
  int x = 0;
  if (bw >= 16) {
    const __m128i zero = _mm_setzero_si128();
    const __m128i two = _mm_set1_epi16(2);
    __m128i acc = _mm_setzero_si128();
    for (; x + 16 <= bw; x += 16) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + x));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + x + 1));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + x));
      const __m128i e =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + x + 1));
      const __m128i lo = _mm_srli_epi16(
          _mm_add_epi16(
              _mm_add_epi16(_mm_unpacklo_epi8(a, zero),
                            _mm_unpacklo_epi8(b, zero)),
              _mm_add_epi16(_mm_add_epi16(_mm_unpacklo_epi8(d, zero),
                                          _mm_unpacklo_epi8(e, zero)),
                            two)),
          2);
      const __m128i hi = _mm_srli_epi16(
          _mm_add_epi16(
              _mm_add_epi16(_mm_unpackhi_epi8(a, zero),
                            _mm_unpackhi_epi8(b, zero)),
              _mm_add_epi16(_mm_add_epi16(_mm_unpackhi_epi8(d, zero),
                                          _mm_unpackhi_epi8(e, zero)),
                            two)),
          2);
      const __m128i p = _mm_packus_epi16(lo, hi);
      const __m128i vc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + x));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(vc, p));
    }
    sum = fused_hsum_sad128(acc);
  }
  for (; x < bw; ++x) {
    const int p = (r0[x] + r0[x + 1] + r1[x] + r1[x + 1] + 2) >> 2;
    sum += static_cast<std::uint32_t>(std::abs(static_cast<int>(c[x]) - p));
  }
  return sum;
}

/// Phase-dispatching row helper for non-integer phases (phase_h/phase_v
/// not both zero).
inline std::uint32_t row_sad_fused(const std::uint8_t* c,
                                   const std::uint8_t* r0, int ref_stride,
                                   int phase_h, int phase_v, int bw) {
  if (phase_v == 0) {
    return row_sad_fused_h(c, r0, bw);
  }
  if (phase_h == 0) {
    return row_sad_fused_v(c, r0, r0 + ref_stride, bw);
  }
  return row_sad_fused_hv(c, r0, r0 + ref_stride, bw);
}

}  // namespace acbm::simd::detail
