#pragma once
// ACBM tuning parameters (paper §3.2 and §4).

namespace acbm::core {

/// The three knobs of the ACBM criticality test:
///
///   accept PBM when  Intra_SAD + SAD_PBM < α + β·Qp²          (T1)
///   or when          SAD_PBM < γ·Intra_SAD                    (T2)
///   otherwise the block is critical and FSBM runs.
///
/// Larger α/β/γ avoid more full searches (lower cost, lower quality);
/// α = β = γ = 0 forces FSBM everywhere; γ → ∞ disables it entirely.
struct AcbmParams {
  double alpha = 1000.0;  ///< paper's chosen value
  double beta = 8.0;      ///< paper's chosen value
  double gamma = 0.25;    ///< paper's chosen value (¼)

  /// The T1 acceptance threshold at quantiser `qp`.
  [[nodiscard]] double threshold(int qp) const {
    return alpha + beta * static_cast<double>(qp) * static_cast<double>(qp);
  }

  /// The paper's tuned configuration (α=1000, β=8, γ=¼): quality matched to
  /// FSBM at a fraction of its cost.
  [[nodiscard]] static AcbmParams paper_defaults() { return {}; }

  /// Degenerate configuration that always runs FSBM — useful as a sanity
  /// anchor in tests (ACBM(always_full) must equal FSBM quality).
  [[nodiscard]] static AcbmParams always_full_search() {
    return {0.0, 0.0, 0.0};
  }

  /// Degenerate configuration that never runs FSBM (pure PBM behaviour).
  [[nodiscard]] static AcbmParams never_full_search() {
    return {1e18, 0.0, 1e18};
  }
};

}  // namespace acbm::core
