#include "core/builtin_estimators.hpp"

#include "core/acbm.hpp"
#include "me/cds.hpp"
#include "me/decimation.hpp"
#include "me/ds.hpp"
#include "me/fss.hpp"
#include "me/full_search.hpp"
#include "me/hexbs.hpp"
#include "me/ntss.hpp"
#include "me/pbm.hpp"
#include "me/tss.hpp"

namespace acbm::core {

namespace {

using me::ParamDesc;
using me::ParamSet;

me::DecimationPattern pattern_from_choice(const std::string& choice) {
  if (choice == "quincunx") {
    return me::DecimationPattern::kQuincunx4to1;
  }
  if (choice == "rowskip") {
    return me::DecimationPattern::kRowSkip2to1;
  }
  return me::DecimationPattern::kNone;
}

me::EstimatorRegistry make_builtin_registry() {
  // The degenerate AcbmParams configurations must stay expressible:
  // never_full_search() uses 1e18 for alpha/gamma, so the declared ranges
  // admit it.
  constexpr double kThresholdMax = 1e18;

  me::EstimatorRegistry registry;
  // Paper's three first (the order benches and usage strings display).
  registry.add(
      "ACBM",
      {ParamDesc::number("alpha", 1000.0, 0.0, kThresholdMax,
                         "T1 additive threshold (paper: 1000); 0 with "
                         "beta=gamma=0 forces FSBM everywhere"),
       ParamDesc::number("beta", 8.0, 0.0, kThresholdMax,
                         "T1 quantiser-squared weight (paper: 8)"),
       ParamDesc::number("gamma", 0.25, 0.0, kThresholdMax,
                         "T2 Intra_SAD fraction (paper: 1/4); large values "
                         "approach pure PBM")},
      [](const ParamSet& params) {
        return std::make_unique<Acbm>(AcbmParams{params.get_double("alpha"),
                                                 params.get_double("beta"),
                                                 params.get_double("gamma")});
      });
  registry.add(
      "FSBM",
      {ParamDesc::choice("dec", {"none", "quincunx", "rowskip"}, "none",
                         "pixel-decimation pattern for the SAD (none "
                         "reproduces the paper's exact FSBM)")},
      [](const ParamSet& params) {
        return std::make_unique<me::FullSearch>(
            pattern_from_choice(params.get_choice("dec")));
      });
  registry.add(
      "PBM",
      {ParamDesc::integer("iters", 8, 0, 1024,
                          "bound on the local ±1 descent after the "
                          "predictor step (Chimienti's complexity bound)")},
      [](const ParamSet& params) {
        return std::make_unique<me::Pbm>(
            static_cast<int>(params.get_int("iters")));
      });
  // Candidate-reduction baselines (paper refs [3–5] family). Knob-less: the
  // search range every one of them scales to arrives per block via
  // BlockContext::window (EncoderConfig's "range" key).
  registry.add("TSS", [] { return std::make_unique<me::Tss>(); });
  registry.add("NTSS", [] { return std::make_unique<me::Ntss>(); });
  registry.add("4SS", [] { return std::make_unique<me::Fss>(); });
  registry.add("DS", [] { return std::make_unique<me::DiamondSearch>(); });
  registry.add("HEXBS",
               [] { return std::make_unique<me::HexagonSearch>(); });
  registry.add("CDS",
               [] { return std::make_unique<me::CrossDiamondSearch>(); });
  // Pixel-decimation baselines (paper refs [6–8] family).
  registry.add(
      "FSBM-adec",
      {ParamDesc::integer("quarter_below", 1500, 0, 1 << 30,
                          "Intra_SAD below this (16x16 units) matches from "
                          "4:1 samples"),
       ParamDesc::integer("half_below", 4000, 0, 1 << 30,
                          "...below this from 2:1 samples; above it the "
                          "full kernel runs")},
      [](const ParamSet& params) {
        me::AdaptiveDecimationSearch::Thresholds thresholds;
        thresholds.quarter_below =
            static_cast<std::uint32_t>(params.get_int("quarter_below"));
        thresholds.half_below =
            static_cast<std::uint32_t>(params.get_int("half_below"));
        return std::make_unique<me::AdaptiveDecimationSearch>(thresholds);
      });
  registry.add("FSBM-sub",
               [] { return std::make_unique<me::SubsampledFullSearch>(); });
  return registry;
}

}  // namespace

const me::EstimatorRegistry& builtin_estimators() {
  static const me::EstimatorRegistry registry = make_builtin_registry();
  return registry;
}

}  // namespace acbm::core
