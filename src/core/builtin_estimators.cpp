#include "core/builtin_estimators.hpp"

#include "core/acbm.hpp"
#include "me/cds.hpp"
#include "me/decimation.hpp"
#include "me/ds.hpp"
#include "me/fss.hpp"
#include "me/full_search.hpp"
#include "me/hexbs.hpp"
#include "me/ntss.hpp"
#include "me/pbm.hpp"
#include "me/tss.hpp"

namespace acbm::core {

namespace {

me::EstimatorRegistry make_builtin_registry() {
  me::EstimatorRegistry registry;
  // Paper's three first (the order benches and usage strings display).
  registry.add("ACBM", [] { return std::make_unique<Acbm>(); });
  registry.add("FSBM", [] { return std::make_unique<me::FullSearch>(); });
  registry.add("PBM", [] { return std::make_unique<me::Pbm>(); });
  // Candidate-reduction baselines (paper refs [3–5] family).
  registry.add("TSS", [] { return std::make_unique<me::Tss>(); });
  registry.add("NTSS", [] { return std::make_unique<me::Ntss>(); });
  registry.add("4SS", [] { return std::make_unique<me::Fss>(); });
  registry.add("DS", [] { return std::make_unique<me::DiamondSearch>(); });
  registry.add("HEXBS",
               [] { return std::make_unique<me::HexagonSearch>(); });
  registry.add("CDS",
               [] { return std::make_unique<me::CrossDiamondSearch>(); });
  // Pixel-decimation baselines (paper refs [6–8] family).
  registry.add("FSBM-adec",
               [] { return std::make_unique<me::AdaptiveDecimationSearch>(); });
  registry.add("FSBM-sub",
               [] { return std::make_unique<me::SubsampledFullSearch>(); });
  return registry;
}

}  // namespace

const me::EstimatorRegistry& builtin_estimators() {
  static const me::EstimatorRegistry registry = make_builtin_registry();
  return registry;
}

}  // namespace acbm::core
