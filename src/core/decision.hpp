#pragma once
// Per-block decision records and aggregate statistics for ACBM.
//
// Table 1 of the paper (average candidate positions per macroblock) and the
// "up to 95 % reduction" headline are regenerated from these counters.

#include <cstdint>

#include "me/types.hpp"

namespace acbm::core {

/// Which branch of the ACBM test accepted the block.
enum class AcbmOutcome : std::uint8_t {
  kAcceptLowActivity,  ///< T1: Intra_SAD + SAD_PBM < α + β·Qp²
  kAcceptGoodMatch,    ///< T2: SAD_PBM < γ·Intra_SAD
  kCritical,           ///< neither held — FSBM ran
};

/// One block's full decision trace (optional; see Acbm::set_record_log).
struct BlockDecision {
  int frame = 0;  ///< encode-order frame index (BlockContext::frame)
  int bx = 0;
  int by = 0;
  AcbmOutcome outcome = AcbmOutcome::kAcceptLowActivity;
  std::uint32_t intra_sad = 0;
  std::uint32_t pbm_sad = 0;
  me::Mv pbm_mv;
  me::Mv final_mv;
  std::uint32_t positions = 0;  ///< SAD evaluations charged to this block
};

/// Aggregate counters across all blocks since the last reset().
struct AcbmStats {
  std::uint64_t blocks = 0;
  std::uint64_t accepted_low_activity = 0;
  std::uint64_t accepted_good_match = 0;
  std::uint64_t critical = 0;
  std::uint64_t total_positions = 0;

  /// Average candidate positions per macroblock — Table 1's metric.
  [[nodiscard]] double average_positions() const {
    return blocks > 0 ? static_cast<double>(total_positions) /
                            static_cast<double>(blocks)
                      : 0.0;
  }

  /// Fraction of blocks classified critical (FSBM executed).
  [[nodiscard]] double critical_fraction() const {
    return blocks > 0
               ? static_cast<double>(critical) / static_cast<double>(blocks)
               : 0.0;
  }

  /// Counter-wise accumulation; all fields are additive, so merging worker
  /// partitions in any order yields the same totals as a serial run.
  AcbmStats& operator+=(const AcbmStats& other) {
    blocks += other.blocks;
    accepted_low_activity += other.accepted_low_activity;
    accepted_good_match += other.accepted_good_match;
    critical += other.critical;
    total_positions += other.total_positions;
    return *this;
  }
};

}  // namespace acbm::core
