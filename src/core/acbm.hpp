#pragma once
// ACBM — adaptive cost block matching, the paper's contribution (§3.2).
//
// Per block:
//   1. compute Intra_SAD of the reference (current-frame) block;
//   2. run PBM;
//   3. accept the PBM vector if Intra_SAD + SAD_PBM < α + β·Qp²  (T1 — the
//      quantiser will absorb the residual anyway; spending 961 SADs and many
//      MV bits on a low-activity block buys nothing), or if
//      SAD_PBM < γ·Intra_SAD  (T2 — PBM found a near-minimal match for a
//      textured block, cf. the §3.1 characterization);
//   4. otherwise the block is critical: run FSBM and keep the better match.
//
// The class is a drop-in MotionEstimator, so the encoder and every bench
// treat {FSBM, PBM, ACBM, ...} uniformly.

#include <cstdint>
#include <vector>

#include "core/decision.hpp"
#include "core/params.hpp"
#include "me/estimator.hpp"
#include "me/full_search.hpp"
#include "me/pbm.hpp"

namespace acbm::core {

class Acbm final : public me::MotionEstimator {
 public:
  explicit Acbm(AcbmParams params = AcbmParams::paper_defaults());

  me::EstimateResult estimate(const me::BlockContext& ctx) override;

  [[nodiscard]] std::string_view name() const override { return "ACBM"; }

  /// Clears statistics and the decision log.
  void reset() override;

  /// Copies parameters and the logging flag; statistics and the decision
  /// log start empty (the clone() contract).
  [[nodiscard]] std::unique_ptr<me::MotionEstimator> clone() const override;

  /// Adds `worker`'s AcbmStats into this instance's, appends its decision
  /// log, and clears both from the worker. The merged log is kept sorted in
  /// (frame, raster) order so it is byte-identical to a serial run's log no
  /// matter how blocks were partitioned across workers. `worker` must be an
  /// Acbm (it is checked); anything else throws std::invalid_argument.
  void merge_stats(me::MotionEstimator& worker) override;

  [[nodiscard]] const AcbmParams& params() const { return params_; }
  void set_params(AcbmParams params) { params_ = params; }

  [[nodiscard]] const AcbmStats& stats() const { return stats_; }

  /// When enabled, every block appends a BlockDecision to decision_log().
  /// Off by default (the log grows by one entry per macroblock).
  void set_record_log(bool on) { record_log_ = on; }
  [[nodiscard]] const std::vector<BlockDecision>& decision_log() const {
    return decision_log_;
  }

 private:
  AcbmParams params_;
  me::Pbm pbm_;
  me::FullSearch full_search_;
  AcbmStats stats_;
  bool record_log_ = false;
  std::vector<BlockDecision> decision_log_;
};

}  // namespace acbm::core
