#include "core/acbm.hpp"

#include <algorithm>
#include <stdexcept>

#include "me/sad.hpp"

namespace acbm::core {

Acbm::Acbm(AcbmParams params) : params_(params) {}

me::EstimateResult Acbm::estimate(const me::BlockContext& ctx) {
  // Step 1: texture statistic of the current block. This costs one
  // block-sized pass, the same arithmetic as one SAD; it is charged to the
  // position counter so Table 1's comparison against FSBM's 969 is fair.
  const std::uint32_t texture =
      me::intra_sad(*ctx.cur, ctx.x, ctx.y, ctx.bw, ctx.bh);

  // Step 2: predictive search.
  const me::EstimateResult pbm = pbm_.estimate(ctx);

  BlockDecision decision;
  decision.frame = ctx.frame;
  decision.bx = ctx.bx;
  decision.by = ctx.by;
  decision.intra_sad = texture;
  decision.pbm_sad = pbm.sad;
  decision.pbm_mv = pbm.mv;

  me::EstimateResult result = pbm;
  result.positions += 1;  // the Intra_SAD pass

  // Step 3: the two acceptance tests (T1 then T2, as in §3.2).
  const double t1 = static_cast<double>(texture) + pbm.sad;
  if (t1 < params_.threshold(ctx.qp)) {
    decision.outcome = AcbmOutcome::kAcceptLowActivity;
  } else if (static_cast<double>(pbm.sad) <
             params_.gamma * static_cast<double>(texture)) {
    decision.outcome = AcbmOutcome::kAcceptGoodMatch;
  } else {
    // Step 4: critical block — full search, keep the better of the two
    // matches (PBM's half-pel point can undercut FSBM's refinement basin).
    decision.outcome = AcbmOutcome::kCritical;
    me::EstimateResult full = full_search_.estimate(ctx);
    const std::uint32_t combined_positions = result.positions + full.positions;
    if (full.sad <= pbm.sad) {
      result = full;
    }
    result.positions = combined_positions;
    result.used_full_search = true;
  }

  decision.final_mv = result.mv;
  decision.positions = result.positions;

  ++stats_.blocks;
  stats_.total_positions += result.positions;
  switch (decision.outcome) {
    case AcbmOutcome::kAcceptLowActivity:
      ++stats_.accepted_low_activity;
      break;
    case AcbmOutcome::kAcceptGoodMatch:
      ++stats_.accepted_good_match;
      break;
    case AcbmOutcome::kCritical:
      ++stats_.critical;
      break;
  }
  if (record_log_) {
    decision_log_.push_back(decision);
  }
  return result;
}

void Acbm::reset() {
  stats_ = AcbmStats{};
  decision_log_.clear();
}

std::unique_ptr<me::MotionEstimator> Acbm::clone() const {
  auto copy = std::make_unique<Acbm>(params_);
  copy->record_log_ = record_log_;
  return copy;
}

void Acbm::merge_stats(me::MotionEstimator& worker) {
  auto* other = dynamic_cast<Acbm*>(&worker);
  if (other == nullptr) {
    throw std::invalid_argument("Acbm::merge_stats: worker is not an Acbm");
  }
  if (other == this) {
    return;
  }
  stats_ += other->stats_;
  if (!other->decision_log_.empty()) {
    // Both halves are already sorted — this log by construction (estimate()
    // appends in encode order, prior merges preserve it) and the worker's by
    // its own raster traversal — so a linear merge keeps the whole log in
    // (frame, raster) order without re-sorting history every frame.
    const auto middle_index = decision_log_.size();
    decision_log_.insert(decision_log_.end(), other->decision_log_.begin(),
                         other->decision_log_.end());
    const auto before = [](const BlockDecision& a, const BlockDecision& b) {
      if (a.frame != b.frame) return a.frame < b.frame;
      return a.by != b.by ? a.by < b.by : a.bx < b.bx;
    };
    std::inplace_merge(decision_log_.begin(),
                       decision_log_.begin() +
                           static_cast<std::ptrdiff_t>(middle_index),
                       decision_log_.end(), before);
  }
  other->reset();
}

}  // namespace acbm::core
