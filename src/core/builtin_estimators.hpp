#pragma once
// The EstimatorRegistry instance covering every algorithm in this library.
//
// Lives in core:: (not me::) because it must name core::Acbm, which itself
// builds on the me:: search library. Seeding is explicit — no static
// self-registration, which silently breaks when the linker drops an
// estimator's object file from a static-library link.

#include "me/registry.hpp"

namespace acbm::core {

/// Registry with the paper's algorithms and this library's baselines,
/// keyed by the names used in the paper's tables and the bench output:
/// ACBM, FSBM, PBM, TSS, NTSS, 4SS, DS, HEXBS, CDS, FSBM-adec, FSBM-sub.
/// Every estimator with knobs declares them as ParamDescs, so create()
/// accepts parameterized specs — "ACBM:alpha=500,beta=8,gamma=0.25",
/// "FSBM:dec=quincunx", "PBM:iters=16",
/// "FSBM-adec:quarter_below=1500,half_below=4000" — and a bare name means
/// every default (ACBM's defaults are AcbmParams::paper_defaults()).
/// Initialised on first use (thread-safe function-local static).
[[nodiscard]] const me::EstimatorRegistry& builtin_estimators();

}  // namespace acbm::core
