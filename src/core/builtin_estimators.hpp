#pragma once
// The EstimatorRegistry instance covering every algorithm in this library.
//
// Lives in core:: (not me::) because it must name core::Acbm, which itself
// builds on the me:: search library. Seeding is explicit — no static
// self-registration, which silently breaks when the linker drops an
// estimator's object file from a static-library link.

#include "me/registry.hpp"

namespace acbm::core {

/// Registry with the paper's algorithms and this library's baselines,
/// keyed by the names used in the paper's tables and the bench output:
/// ACBM, FSBM, PBM, TSS, NTSS, 4SS, DS, HEXBS, CDS, FSBM-adec, FSBM-sub.
/// ACBM is created with AcbmParams::paper_defaults(); callers needing other
/// parameters use core::Acbm::set_params on the created instance.
/// Initialised on first use (thread-safe function-local static).
[[nodiscard]] const me::EstimatorRegistry& builtin_estimators();

}  // namespace acbm::core
