#include "codec/decoder.hpp"

#include "codec/block_codec.hpp"
#include "codec/coeff_coding.hpp"
#include "codec/deblock.hpp"
#include "codec/mc.hpp"
#include "codec/mv_coding.hpp"
#include "codec/quant.hpp"
#include "me/types.hpp"

namespace acbm::codec {

namespace {

constexpr int kMb = me::kBlockSize;
constexpr int kLumaBlockOffsets[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};
// Local mirrors of the encoder's constants (encoder.hpp is not included to
// keep the decoder linkable without the encoder's dependencies).
constexpr std::uint32_t kMagic = 0x41435631;
constexpr std::uint32_t kSync = 0x7E5A;

}  // namespace

Decoder::Decoder(std::span<const std::uint8_t> data)
    : data_(data.begin(), data.end()), reader_(data_) {
  if (reader_.get_bits(32) != kMagic || reader_.exhausted()) {
    throw DecodeError("decoder: missing ACV1 magic");
  }
  size_.width = static_cast<int>(reader_.get_bits(16));
  size_.height = static_cast<int>(reader_.get_bits(16));
  rate_.num = static_cast<int>(reader_.get_bits(16));
  rate_.den = static_cast<int>(reader_.get_bits(16));
  // 4096×4096 comfortably covers any realistic use of this codec and keeps
  // a corrupted header from demanding gigabyte allocations.
  constexpr int kMaxDimension = 4096;
  if (reader_.exhausted() || size_.width <= 0 || size_.height <= 0 ||
      size_.width % kMb != 0 || size_.height % kMb != 0 ||
      size_.width > kMaxDimension || size_.height > kMaxDimension) {
    throw DecodeError("decoder: invalid sequence header");
  }
  ref_ = video::Frame(size_);
  coded_field_ = me::MvField::for_picture(size_.width, size_.height);
}

std::optional<video::Frame> Decoder::decode_frame() {
  reader_.align();
  if (reader_.bits_left() < 16 + 1 + 5 + 1) {
    return std::nullopt;  // clean end of stream
  }
  if (reader_.get_bits(16) != kSync) {
    throw DecodeError("decoder: lost frame sync");
  }
  const bool inter_frame = reader_.get_bit();
  const int qp = static_cast<int>(reader_.get_bits(5));
  const bool deblock = reader_.get_bit();
  if (qp < kMinQp || qp > kMaxQp) {
    throw DecodeError("decoder: qp out of range");
  }
  if (first_frame_ && inter_frame) {
    throw DecodeError("decoder: first frame must be intra");
  }

  video::Frame out(size_);
  coded_field_ = me::MvField::for_picture(size_.width, size_.height);
  if (inter_frame) {
    ref_half_ = video::HalfpelPlanes(ref_.y());
  }

  const int mbs_x = size_.width / kMb;
  const int mbs_y = size_.height / kMb;
  for (int by = 0; by < mbs_y; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      if (!inter_frame) {
        decode_intra_mb(out, bx, by, qp);
        continue;
      }
      const bool skip = reader_.get_bit();  // COD
      if (skip) {
        copy_skip_mb(out, bx, by);
        coded_field_.set(bx, by, {0, 0});
        continue;
      }
      const bool intra = reader_.get_bit();
      if (intra) {
        decode_intra_mb(out, bx, by, qp);
        continue;
      }
      const me::Mv mv =
          decode_mvd(reader_, coded_field_.median_predictor(bx, by));
      decode_inter_mb(out, bx, by, qp, mv);
      coded_field_.set(bx, by, mv);
      if (reader_.exhausted()) {
        throw DecodeError("decoder: truncated macroblock data");
      }
    }
  }
  if (reader_.exhausted()) {
    throw DecodeError("decoder: truncated frame");
  }

  if (deblock) {
    deblock_frame(out, qp);
  }
  out.extend_borders();
  ref_ = out;
  ref_.extend_borders();
  first_frame_ = false;
  return out;
}

std::vector<video::Frame> Decoder::decode_all() {
  std::vector<video::Frame> frames;
  while (auto frame = decode_frame()) {
    frames.push_back(std::move(*frame));
  }
  return frames;
}

void Decoder::decode_intra_mb(video::Frame& out, int bx, int by, int qp) {
  const int x = bx * kMb;
  const int y = by * kMb;

  std::uint8_t dc[6];
  for (auto& d : dc) {
    d = static_cast<std::uint8_t>(reader_.get_bits(8));
  }
  const std::uint32_t cbp = static_cast<std::uint32_t>(reader_.get_bits(6));

  std::int16_t levels[6][kDctSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_block_coeffs(reader_, levels[b], /*skip_dc=*/true)) {
        throw DecodeError("decoder: bad intra coefficients");
      }
    }
  }

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_intra_block(levels[b], dc[b], qp, out.y().row(y + oy) + x + ox,
                            out.y().stride());
  }
  reconstruct_intra_block(levels[4], dc[4], qp, out.cb().row(y / 2) + x / 2,
                          out.cb().stride());
  reconstruct_intra_block(levels[5], dc[5], qp, out.cr().row(y / 2) + x / 2,
                          out.cr().stride());
  coded_field_.set(bx, by, {0, 0});
}

void Decoder::decode_inter_mb(video::Frame& out, int bx, int by, int qp,
                              me::Mv mv) {
  const int x = bx * kMb;
  const int y = by * kMb;

  const std::uint32_t cbp = static_cast<std::uint32_t>(reader_.get_bits(6));
  std::int16_t levels[6][kDctSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_block_coeffs(reader_, levels[b])) {
        throw DecodeError("decoder: bad inter coefficients");
      }
    }
  }

  std::uint8_t pred_y[kMb * kMb];
  predict_luma(ref_half_, x, y, mv, kMb, kMb, pred_y, kMb);
  const me::Mv cmv = derive_chroma_mv(mv);
  std::uint8_t pred_cb[8 * 8];
  std::uint8_t pred_cr[8 * 8];
  predict_chroma(ref_.cb(), x / 2, y / 2, cmv, 8, 8, pred_cb, 8);
  predict_chroma(ref_.cr(), x / 2, y / 2, cmv, 8, 8, pred_cr, 8);

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_inter_block(levels[b], pred_y + oy * kMb + ox, kMb, qp,
                            out.y().row(y + oy) + x + ox, out.y().stride());
  }
  reconstruct_inter_block(levels[4], pred_cb, 8, qp,
                          out.cb().row(y / 2) + x / 2, out.cb().stride());
  reconstruct_inter_block(levels[5], pred_cr, 8, qp,
                          out.cr().row(y / 2) + x / 2, out.cr().stride());
}

void Decoder::copy_skip_mb(video::Frame& out, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int row = 0; row < kMb; ++row) {
    std::uint8_t* dst = out.y().row(y + row) + x;
    const std::uint8_t* src = ref_.y().row(y + row) + x;
    for (int col = 0; col < kMb; ++col) {
      dst[col] = src[col];
    }
  }
  for (int row = 0; row < kMb / 2; ++row) {
    std::uint8_t* dcb = out.cb().row(y / 2 + row) + x / 2;
    const std::uint8_t* scb = ref_.cb().row(y / 2 + row) + x / 2;
    std::uint8_t* dcr = out.cr().row(y / 2 + row) + x / 2;
    const std::uint8_t* scr = ref_.cr().row(y / 2 + row) + x / 2;
    for (int col = 0; col < kMb / 2; ++col) {
      dcb[col] = scb[col];
      dcr[col] = scr[col];
    }
  }
}

}  // namespace acbm::codec
