#include "codec/decoder.hpp"

#include <algorithm>

#include "codec/block_codec.hpp"
#include "codec/coeff_coding.hpp"
#include "codec/deblock.hpp"
#include "codec/mc.hpp"
#include "codec/mv_coding.hpp"
#include "codec/quant.hpp"
#include "me/types.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace acbm::codec {

namespace {

constexpr int kMb = me::kBlockSize;
constexpr int kLumaBlockOffsets[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};
// Local mirrors of the encoder's constants (encoder.hpp is not included to
// keep the decoder linkable without the encoder's dependencies).
constexpr std::uint32_t kMagicV1 = 0x41435631;  // "ACV1"
constexpr std::uint32_t kMagicV2 = 0x41435632;  // "ACV2"
constexpr std::uint32_t kSync = 0x7E5A;
constexpr std::uint32_t kSliceSyncWord = 0x534C;  // "SL"
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_plane(const video::Plane& plane, int width, int height,
               std::uint64_t& digest) {
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* row = plane.row(y);
    for (int x = 0; x < width; ++x) {
      digest = (digest ^ row[x]) * kFnvPrime;
    }
  }
}

}  // namespace

void Decoder::fail(DecodeErrorClass error_class, const std::string& message) {
  report_.error_class = error_class;
  report_.error_message = message;
  throw DecodeError(message);
}

Decoder::Decoder(std::span<const std::uint8_t> data,
                 const DecoderConfig& config)
    : data_(data.begin(), data.end()), reader_(data_), config_(config) {
  const std::uint32_t magic =
      static_cast<std::uint32_t>(reader_.get_bits(32));
  if ((magic != kMagicV1 && magic != kMagicV2) || reader_.exhausted()) {
    fail(DecodeErrorClass::kHeader, "decoder: missing ACV1/ACV2 magic");
  }
  version_ = magic == kMagicV2 ? 2 : 1;
  size_.width = static_cast<int>(reader_.get_bits(16));
  size_.height = static_cast<int>(reader_.get_bits(16));
  rate_.num = static_cast<int>(reader_.get_bits(16));
  rate_.den = static_cast<int>(reader_.get_bits(16));
  // 4096×4096 comfortably covers any realistic use of this codec and keeps
  // a corrupted header from demanding gigabyte allocations.
  constexpr int kMaxDimension = 4096;
  if (reader_.exhausted() || size_.width <= 0 || size_.height <= 0 ||
      size_.width % kMb != 0 || size_.height % kMb != 0 ||
      size_.width > kMaxDimension || size_.height > kMaxDimension) {
    fail(DecodeErrorClass::kHeader, "decoder: invalid sequence header");
  }
  ref_ = video::Frame(size_);
  coded_field_ = me::MvField::for_picture(size_.width, size_.height);

  // Header-level expectations are decidable right here; mismatches are
  // report entries, not exceptions (the stream still decodes fine).
  const auto expect = [&](const char* key, std::int64_t want,
                          std::int64_t have) {
    if (want >= 0 && have != want) {
      report_.expectation_failures.push_back(
          std::string("expect ") + key + '=' + std::to_string(want) +
          " but stream has " + std::to_string(have));
    }
  };
  expect("width", config_.expect_width, size_.width);
  expect("height", config_.expect_height, size_.height);
  expect("fps", config_.expect_fps,
         static_cast<std::int64_t>(rate_.fps()));
  expect("version", config_.expect_version, version_);
}

Decoder::Decoder(std::span<const std::uint8_t> data,
                 const DecoderConfig& config, util::ThreadPool& shared_pool)
    : Decoder(data, config) {
  shared_pool_ = &shared_pool;
}

Decoder::Decoder(std::span<const std::uint8_t> data, int threads)
    : Decoder(data, DecoderConfig{.threads = threads}) {}

Decoder::Decoder(std::span<const std::uint8_t> data,
                 util::ThreadPool& shared_pool)
    : Decoder(data, DecoderConfig{.threads = shared_pool.size()},
              shared_pool) {}

Decoder::~Decoder() = default;

std::optional<video::Frame> Decoder::decode_frame() {
  const obs::Span span("dec", "frame.decode", /*session=*/-1,
                       static_cast<std::int32_t>(report_.frames));
  const std::uint64_t concealed_before = report_.concealed_slices;
  std::optional<video::Frame> out =
      config_.conceal == Concealment::kResync && version_ == 2
          ? decode_frame_resync()
          : decode_frame_strict();
  if (out.has_value()) {
    account_frame(*out, concealed_before);
  }
  return out;
}

void Decoder::account_frame(const video::Frame& frame,
                            std::uint64_t concealed_before) {
  ++report_.frames;
  report_.concealed_per_frame.push_back(static_cast<std::uint32_t>(
      report_.concealed_slices - concealed_before));
  fnv_plane(frame.y(), size_.width, size_.height, report_.sample_digest);
  fnv_plane(frame.cb(), size_.width / 2, size_.height / 2,
            report_.sample_digest);
  fnv_plane(frame.cr(), size_.width / 2, size_.height / 2,
            report_.sample_digest);
  if (config_.expect_slices >= 0 && !slices_mismatch_recorded_ &&
      last_frame_slices_ != config_.expect_slices) {
    slices_mismatch_recorded_ = true;
    report_.expectation_failures.push_back(
        "expect slices=" + std::to_string(config_.expect_slices) +
        " but frame " + std::to_string(report_.frames - 1) + " has " +
        std::to_string(last_frame_slices_));
  }
}

std::optional<video::Frame> Decoder::decode_frame_strict() {
  reader_.align();
  if (reader_.bits_left() < 16 + 1 + 5 + 1) {
    return std::nullopt;  // clean end of stream
  }
  if (reader_.get_bits(16) != kSync) {
    fail(DecodeErrorClass::kFrame, "decoder: lost frame sync");
  }
  const bool inter_frame = reader_.get_bit();
  const int qp = static_cast<int>(reader_.get_bits(5));
  const bool deblock = reader_.get_bit();
  if (qp < kMinQp || qp > kMaxQp) {
    fail(DecodeErrorClass::kFrame, "decoder: qp out of range");
  }
  if (first_frame_ && inter_frame) {
    fail(DecodeErrorClass::kFrame, "decoder: first frame must be intra");
  }

  video::Frame out(size_);
  coded_field_ = me::MvField::for_picture(size_.width, size_.height);
  if (inter_frame) {
    ref_half_ = video::HalfpelPlanes(ref_.y());
  }

  if (version_ == 2) {
    decode_frame_slices(out, qp, inter_frame);
  } else {
    decode_frame_v1(out, qp, inter_frame);
  }

  if (deblock) {
    deblock_frame(out, qp);
  }
  out.extend_borders();
  ref_ = out;
  ref_.extend_borders();
  first_frame_ = false;
  return out;
}

std::optional<video::Frame> Decoder::decode_frame_resync() {
  // conceal=resync, V2 only: nothing after the sequence header throws.
  // Frame-header damage emits no frame and scans forward; directory damage
  // conceals the unreachable rows, emits the frame, then scans. The scan
  // rules are normative (docs/RESILIENCE.md) — RefDecoder implements them
  // independently and the two must stay outcome-identical.
  while (true) {
    reader_.align();
    if (reader_.bits_left() < 16 + 1 + 5 + 1) {
      return std::nullopt;  // clean end of stream
    }
    const std::size_t frame_start = reader_.bit_position() / 8;
    const std::uint64_t sync = reader_.get_bits(16);
    const bool inter_frame = reader_.get_bit();
    const int qp = static_cast<int>(reader_.get_bits(5));
    const bool deblock = reader_.get_bit();
    if (sync != kSync || qp < kMinQp || qp > kMaxQp ||
        (first_frame_ && inter_frame)) {
      ++report_.resync_skips;
      if (!seek_next_frame(frame_start + 1)) {
        return std::nullopt;
      }
      continue;
    }
    // The header validated, so this frame WILL be emitted (directory damage
    // conceals, it does not abort). Clearing first_frame_ now lets a scan
    // triggered inside decode_frame_slices_resync accept inter frame
    // headers — the concealed frame is a legitimate prediction reference.
    first_frame_ = false;

    video::Frame out(size_);
    coded_field_ = me::MvField::for_picture(size_.width, size_.height);
    if (inter_frame) {
      ref_half_ = video::HalfpelPlanes(ref_.y());
    }
    decode_frame_slices_resync(out, qp, inter_frame);
    if (deblock) {
      deblock_frame(out, qp);
    }
    out.extend_borders();
    ref_ = out;
    ref_.extend_borders();
    return out;
  }
}

void Decoder::decode_frame_v1(video::Frame& out, int qp, bool inter_frame) {
  const int mbs_y = size_.height / kMb;
  last_frame_slices_ = 1;
  // Legacy semantics: corruption anywhere in the frame is a hard error —
  // there are no slice boundaries to resynchronise on.
  if (!decode_rows(reader_, out, qp, inter_frame, 0, mbs_y,
                   /*first_row=*/0) ||
      reader_.exhausted()) {
    fail(DecodeErrorClass::kFrame, "decoder: corrupt frame");
  }
}

void Decoder::decode_frame_slices(video::Frame& out, int qp,
                                  bool inter_frame) {
  const int mbs_y = size_.height / kMb;
  reader_.align();
  const int slice_count = static_cast<int>(reader_.get_bits(8));
  if (reader_.exhausted() || slice_count < 1 || slice_count > mbs_y) {
    fail(DecodeErrorClass::kDirectory, "decoder: invalid slice count");
  }

  // Pass 1 — walk the slice directory. Payload lengths let us locate every
  // slice header without decoding any macroblock, which is both the
  // resynchronisation mechanism and what makes the payloads independently
  // decodable afterwards.
  std::vector<SliceEntry> slices(static_cast<std::size_t>(slice_count));
  for (int s = 0; s < slice_count; ++s) {
    SliceEntry& entry = slices[static_cast<std::size_t>(s)];
    reader_.align();
    const std::uint32_t sync =
        static_cast<std::uint32_t>(reader_.get_bits(16));
    const int index = static_cast<int>(reader_.get_bits(8));
    const int first_row = static_cast<int>(reader_.get_bits(16));
    const std::uint64_t payload_bytes = reader_.get_bits(32);
    if (reader_.exhausted() || sync != kSliceSyncWord || index != s) {
      fail(DecodeErrorClass::kDirectory, "decoder: lost slice sync");
    }
    const int prev_first =
        s > 0 ? slices[static_cast<std::size_t>(s) - 1].first_row : 0;
    if (first_row >= mbs_y || (s == 0 ? first_row != 0
                                      : first_row <= prev_first)) {
      fail(DecodeErrorClass::kDirectory, "decoder: invalid slice row layout");
    }
    if (payload_bytes > reader_.bits_left() / 8) {
      fail(DecodeErrorClass::kDirectory, "decoder: truncated slice payload");
    }
    entry.first_row = first_row;
    entry.offset = reader_.bit_position() / 8;  // aligned above
    entry.bytes = static_cast<std::size_t>(payload_bytes);
    reader_.skip_bits(entry.bytes * 8);
  }
  for (int s = 0; s < slice_count; ++s) {
    slices[static_cast<std::size_t>(s)].end_row =
        s + 1 < slice_count ? slices[static_cast<std::size_t>(s) + 1].first_row
                            : mbs_y;
  }

  decode_slice_payloads(slices, out, qp, inter_frame);
  last_frame_slices_ = slice_count;
}

void Decoder::decode_frame_slices_resync(video::Frame& out, int qp,
                                         bool inter_frame) {
  const int mbs_y = size_.height / kMb;
  reader_.align();
  const std::size_t count_off = reader_.bit_position() / 8;
  const int slice_count = static_cast<int>(reader_.get_bits(8));
  if (reader_.exhausted() || slice_count < 1 || slice_count > mbs_y) {
    // An unusable slice count leaves nothing navigable in this frame: the
    // whole picture is concealed (counted as one concealment) and decoding
    // scans on from the byte after the count.
    conceal_rows(out, 0, mbs_y);
    ++report_.concealed_slices;
    last_frame_slices_ = 1;
    ++report_.resync_skips;
    seek_next_frame(count_off + 1);
    return;
  }

  // Pass 1 with damage detection instead of throws: stop at the first
  // entry that fails any directory invariant.
  std::vector<SliceEntry> slices;
  slices.reserve(static_cast<std::size_t>(slice_count));
  int valid_entries = slice_count;
  std::size_t damage_off = 0;
  for (int s = 0; s < slice_count; ++s) {
    reader_.align();
    const std::size_t entry_off = reader_.bit_position() / 8;
    const std::uint32_t sync =
        static_cast<std::uint32_t>(reader_.get_bits(16));
    const int index = static_cast<int>(reader_.get_bits(8));
    const int first_row = static_cast<int>(reader_.get_bits(16));
    const std::uint64_t payload_bytes = reader_.get_bits(32);
    const int prev_first = s > 0 ? slices.back().first_row : 0;
    if (reader_.exhausted() || sync != kSliceSyncWord || index != s ||
        first_row >= mbs_y ||
        (s == 0 ? first_row != 0 : first_row <= prev_first) ||
        payload_bytes > reader_.bits_left() / 8) {
      valid_entries = s;
      damage_off = entry_off;
      break;
    }
    SliceEntry entry;
    entry.first_row = first_row;
    entry.offset = reader_.bit_position() / 8;  // aligned above
    entry.bytes = static_cast<std::size_t>(payload_bytes);
    slices.push_back(entry);
    reader_.skip_bits(entry.bytes * 8);
  }

  if (valid_entries == slice_count) {
    // Intact directory — identical to the strict path from here on.
    for (int s = 0; s < slice_count; ++s) {
      slices[static_cast<std::size_t>(s)].end_row =
          s + 1 < slice_count
              ? slices[static_cast<std::size_t>(s) + 1].first_row
              : mbs_y;
    }
    decode_slice_payloads(slices, out, qp, inter_frame);
    last_frame_slices_ = slice_count;
    return;
  }

  // Entry k is damaged. Entries 0..k-1 parsed, but entry k-1's extent
  // depends on entry k's first row, so only slices 0..k-2 have known
  // extents and decode; rows from entry k-1's first row down are concealed
  // (all rows when k == 0), counted as the slices they replace.
  const int k = valid_entries;
  if (k >= 2) {
    std::vector<SliceEntry> known(
        slices.begin(), slices.begin() + static_cast<std::ptrdiff_t>(k - 1));
    for (int s = 0; s + 1 < k; ++s) {
      known[static_cast<std::size_t>(s)].end_row =
          slices[static_cast<std::size_t>(s) + 1].first_row;
    }
    decode_slice_payloads(known, out, qp, inter_frame);
  }
  const int conceal_from =
      k >= 1 ? slices[static_cast<std::size_t>(k) - 1].first_row : 0;
  conceal_rows(out, conceal_from, mbs_y);
  report_.concealed_slices +=
      static_cast<std::uint64_t>(slice_count - std::max(0, k - 1));
  last_frame_slices_ = slice_count;
  ++report_.resync_skips;
  seek_next_frame(damage_off + 1);
}

void Decoder::decode_slice_payloads(std::vector<SliceEntry>& slices,
                                    video::Frame& out, int qp,
                                    bool inter_frame) {
  // Pass 2 — decode the payloads, each from its own BitReader. Slices write
  // only row-disjoint regions of `out` and the coded field and predict
  // vectors strictly within their own rows, so they are independent; with a
  // worker pool they run concurrently and the output is identical either
  // way.
  const auto decode_one = [&](SliceEntry& entry) {
    const obs::Span span("dec", "slice.decode", /*session=*/-1,
                         static_cast<std::int32_t>(report_.frames),
                         entry.first_row);
    util::BitReader br(
        std::span<const std::uint8_t>(data_).subspan(entry.offset,
                                                     entry.bytes));
    entry.ok = decode_rows(br, out, qp, inter_frame, entry.first_row,
                           entry.end_row, entry.first_row) &&
               br.bits_left() < 8;  // only alignment padding may remain:
                                    // leftover payload means the entropy
                                    // data desynchronised somewhere
  };
  const int slice_count = static_cast<int>(slices.size());
  const int workers =
      shared_pool_ != nullptr
          ? shared_pool_->size()
          : util::ThreadPool::resolve_thread_count(config_.threads);
  if (workers > 1 && slice_count > 1) {
    util::ThreadPool* pool = shared_pool_;
    if (pool == nullptr) {
      if (!pool_) {
        pool_ = std::make_unique<util::ThreadPool>(workers);
      }
      pool = pool_.get();
    }
    if (!queue_) {
      queue_ = std::make_unique<util::ThreadPool::Queue>(*pool);
    }
    // Group wait, not wait_idle: on a shared pool an idle wait would block
    // on (and be woken by) every other session's traffic.
    util::TaskGroup group;
    for (SliceEntry& entry : slices) {
      pool->submit(
          *queue_, [&decode_one, &entry] { decode_one(entry); }, &group);
    }
    pool->wait(group);
  } else {
    for (SliceEntry& entry : slices) {
      decode_one(entry);
    }
  }

  // Pass 3 — conceal whatever failed. The slice's region is rewritten
  // wholesale (a corrupt payload may have deposited partial macroblocks
  // before the error was detected), which keeps the output deterministic.
  // Under conceal=off the first failure is fatal instead.
  for (const SliceEntry& entry : slices) {
    if (!entry.ok) {
      if (config_.conceal == Concealment::kOff) {
        fail(DecodeErrorClass::kPayload, "decoder: corrupt slice payload");
      }
      conceal_rows(out, entry.first_row, entry.end_row);
      ++report_.concealed_slices;
    }
  }
}

bool Decoder::seek_next_frame(std::size_t from_byte) {
  // Resynchronisation scan (normative; docs/RESILIENCE.md): a byte offset
  // is a valid restart point iff the frame sync word, frame header fields,
  // slice count and the *entire* slice directory all validate — payload
  // hops included — so a restart can never land on entropy data that
  // merely looks like a sync word without paying for it structurally.
  const int mbs_y = size_.height / kMb;
  const auto u16 = [&](std::size_t at) {
    return (static_cast<std::uint32_t>(data_[at]) << 8) |
           static_cast<std::uint32_t>(data_[at + 1]);
  };
  for (std::size_t o = from_byte; o + 4 <= data_.size(); ++o) {
    if (u16(o) != kSync) {
      continue;
    }
    const std::uint8_t header = data_[o + 2];
    const bool inter = (header & 0x80u) != 0;
    const int qp = (header >> 2) & 0x1F;
    if (qp < kMinQp || qp > kMaxQp) {
      continue;
    }
    if (first_frame_ && inter) {
      continue;  // a restart before any emitted frame must be intra
    }
    const int count = data_[o + 3];
    if (count < 1 || count > mbs_y) {
      continue;
    }
    std::size_t p = o + 4;
    bool ok = true;
    int prev_first = 0;
    for (int s = 0; s < count; ++s) {
      if (data_.size() - p < 9) {
        ok = false;
        break;
      }
      const int first_row = static_cast<int>(u16(p + 3));
      const std::size_t payload =
          (static_cast<std::size_t>(data_[p + 5]) << 24) |
          (static_cast<std::size_t>(data_[p + 6]) << 16) |
          (static_cast<std::size_t>(data_[p + 7]) << 8) |
          static_cast<std::size_t>(data_[p + 8]);
      if (u16(p) != kSliceSyncWord || data_[p + 2] != s ||
          first_row >= mbs_y ||
          (s == 0 ? first_row != 0 : first_row <= prev_first) ||
          payload > data_.size() - (p + 9)) {
        ok = false;
        break;
      }
      prev_first = first_row;
      p += 9 + payload;
    }
    if (!ok) {
      continue;
    }
    reader_ = util::BitReader(data_);
    reader_.skip_bits(o * 8);
    return true;
  }
  reader_ = util::BitReader(data_);
  reader_.skip_bits(data_.size() * 8);
  return false;
}

bool Decoder::decode_rows(util::BitReader& br, video::Frame& out, int qp,
                          bool inter_frame, int row_begin, int row_end,
                          int first_row) noexcept {
  const int mbs_x = size_.width / kMb;
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      if (!inter_frame) {
        if (!decode_intra_block_set(br, out, bx, by, qp)) {
          return false;
        }
        continue;
      }
      const bool skip = br.get_bit();  // COD
      if (skip) {
        copy_skip_mb(out, bx, by);
        coded_field_.set(bx, by, {0, 0});
        continue;
      }
      const bool intra = br.get_bit();
      if (intra) {
        if (!decode_intra_block_set(br, out, bx, by, qp)) {
          return false;
        }
        continue;
      }
      const me::Mv mv =
          decode_mvd(br, coded_field_.median_predictor(bx, by, first_row));
      if (!mv_in_reference(mv, bx * kMb, by * kMb)) {
        return false;  // corrupt MVD pointing outside the padded reference
      }
      if (!decode_inter_block_set(br, out, bx, by, qp, mv)) {
        return false;
      }
      coded_field_.set(bx, by, mv);
      if (br.exhausted()) {
        return false;  // truncated macroblock data
      }
    }
  }
  return !br.exhausted();
}

bool Decoder::mv_in_reference(me::Mv mv, int x, int y) const {
  // Same integer-part computation as predict_luma; the compensated 16×16
  // read must stay inside the reference's replicated border (one sample is
  // reserved for the half-pel interpolation overread). A valid encoder can
  // never emit such a vector — its search window is border-clamped — so an
  // out-of-range one is always stream corruption, and rejecting it here is
  // what keeps a fuzzed MVD from indexing outside the plane.
  const int margin = ref_.y().border() - 1;
  const int ix = (mv.x - (mv.x & 1)) >> 1;
  const int iy = (mv.y - (mv.y & 1)) >> 1;
  return x + ix >= -margin && x + ix + kMb <= size_.width + margin &&
         y + iy >= -margin && y + iy + kMb <= size_.height + margin;
}

void Decoder::conceal_rows(video::Frame& out, int row_begin, int row_end) {
  const int mbs_x = size_.width / kMb;
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      copy_skip_mb(out, bx, by);
      coded_field_.set(bx, by, {0, 0});
    }
  }
}

std::vector<video::Frame> Decoder::decode_all() {
  std::vector<video::Frame> frames;
  while (auto frame = decode_frame()) {
    frames.push_back(std::move(*frame));
  }
  return frames;
}

DecodeReport Decoder::decode_stream(std::vector<video::Frame>* frames) {
  try {
    while (auto frame = decode_frame()) {
      if (frames != nullptr) {
        frames->push_back(std::move(*frame));
      }
    }
  } catch (const DecodeError&) {
    // Class and message were recorded by fail() before the throw.
  }
  if (config_.expect_frames >= 0 &&
      report_.frames != static_cast<std::uint64_t>(config_.expect_frames)) {
    report_.expectation_failures.push_back(
        "expect frames=" + std::to_string(config_.expect_frames) +
        " but stream has " + std::to_string(report_.frames));
  }
  if (config_.expect_slices >= 0 && report_.frames == 0) {
    report_.expectation_failures.push_back(
        "expect slices=" + std::to_string(config_.expect_slices) +
        " but the stream has no frames to check against");
  }
  return report_;
}

bool Decoder::decode_intra_block_set(util::BitReader& br, video::Frame& out,
                                     int bx, int by, int qp) {
  const int x = bx * kMb;
  const int y = by * kMb;

  std::uint8_t dc[6];
  for (auto& d : dc) {
    d = static_cast<std::uint8_t>(br.get_bits(8));
  }
  const std::uint32_t cbp = static_cast<std::uint32_t>(br.get_bits(6));

  std::int16_t levels[6][kDctSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_block_coeffs(br, levels[b], /*skip_dc=*/true)) {
        return false;  // bad intra coefficients
      }
    }
  }

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_intra_block(levels[b], dc[b], qp, out.y().row(y + oy) + x + ox,
                            out.y().stride());
  }
  reconstruct_intra_block(levels[4], dc[4], qp, out.cb().row(y / 2) + x / 2,
                          out.cb().stride());
  reconstruct_intra_block(levels[5], dc[5], qp, out.cr().row(y / 2) + x / 2,
                          out.cr().stride());
  coded_field_.set(bx, by, {0, 0});
  return true;
}

bool Decoder::decode_inter_block_set(util::BitReader& br, video::Frame& out,
                                     int bx, int by, int qp, me::Mv mv) {
  const int x = bx * kMb;
  const int y = by * kMb;

  const std::uint32_t cbp = static_cast<std::uint32_t>(br.get_bits(6));
  std::int16_t levels[6][kDctSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_block_coeffs(br, levels[b])) {
        return false;  // bad inter coefficients
      }
    }
  }

  std::uint8_t pred_y[kMb * kMb];
  predict_luma(ref_half_, x, y, mv, kMb, kMb, pred_y, kMb);
  const me::Mv cmv = derive_chroma_mv(mv);
  std::uint8_t pred_cb[8 * 8];
  std::uint8_t pred_cr[8 * 8];
  predict_chroma(ref_.cb(), x / 2, y / 2, cmv, 8, 8, pred_cb, 8);
  predict_chroma(ref_.cr(), x / 2, y / 2, cmv, 8, 8, pred_cr, 8);

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_inter_block(levels[b], pred_y + oy * kMb + ox, kMb, qp,
                            out.y().row(y + oy) + x + ox, out.y().stride());
  }
  reconstruct_inter_block(levels[4], pred_cb, 8, qp,
                          out.cb().row(y / 2) + x / 2, out.cb().stride());
  reconstruct_inter_block(levels[5], pred_cr, 8, qp,
                          out.cr().row(y / 2) + x / 2, out.cr().stride());
  return true;
}

void Decoder::copy_skip_mb(video::Frame& out, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int row = 0; row < kMb; ++row) {
    std::uint8_t* dst = out.y().row(y + row) + x;
    const std::uint8_t* src = ref_.y().row(y + row) + x;
    for (int col = 0; col < kMb; ++col) {
      dst[col] = src[col];
    }
  }
  for (int row = 0; row < kMb / 2; ++row) {
    std::uint8_t* dcb = out.cb().row(y / 2 + row) + x / 2;
    const std::uint8_t* scb = ref_.cb().row(y / 2 + row) + x / 2;
    std::uint8_t* dcr = out.cr().row(y / 2 + row) + x / 2;
    const std::uint8_t* scr = ref_.cr().row(y / 2 + row) + x / 2;
    for (int col = 0; col < kMb / 2; ++col) {
      dcb[col] = scb[col];
      dcr[col] = scr[col];
    }
  }
}

}  // namespace acbm::codec
