#include "codec/coeff_coding.hpp"

#include "codec/zigzag.hpp"
#include "util/expgolomb.hpp"

namespace acbm::codec {

namespace {

/// Iterates (run, level) events of the zig-zagged block, invoking
/// fn(run, level) for each nonzero coefficient. Returns the event count.
template <typename Fn>
int for_each_event(const std::int16_t levels[kDctSamples], bool skip_dc,
                   Fn&& fn) {
  std::int16_t scanned[kDctSamples];
  zigzag_scan(levels, scanned);
  int events = 0;
  std::uint32_t run = 0;
  for (int k = skip_dc ? 1 : 0; k < kDctSamples; ++k) {
    if (scanned[k] == 0) {
      ++run;
      continue;
    }
    fn(run, scanned[k]);
    ++events;
    run = 0;
  }
  return events;
}

}  // namespace

void encode_block_coeffs(util::BitWriter& bw,
                         const std::int16_t levels[kDctSamples],
                         bool skip_dc) {
  for_each_event(levels, skip_dc, [&bw](std::uint32_t run, std::int16_t level) {
    util::put_ue(bw, run);
    util::put_se(bw, level);
  });
  util::put_ue(bw, kEob);
}

bool decode_block_coeffs(util::BitReader& br,
                         std::int16_t levels[kDctSamples], bool skip_dc) {
  std::int16_t scanned[kDctSamples] = {};
  int k = skip_dc ? 1 : 0;
  while (true) {
    const std::uint32_t run = util::get_ue(br);
    if (br.exhausted()) {
      return false;
    }
    if (run == kEob) {
      break;
    }
    if (run > 63) {
      return false;
    }
    const std::int32_t level = util::get_se(br);
    if (br.exhausted() || level == 0) {
      return false;
    }
    k += static_cast<int>(run);
    if (k >= kDctSamples) {
      return false;
    }
    scanned[k] = static_cast<std::int16_t>(level);
    ++k;
  }
  zigzag_unscan(scanned, levels);
  return true;
}

std::uint32_t block_coeff_bits(const std::int16_t levels[kDctSamples],
                               bool skip_dc) {
  std::uint32_t bits = 0;
  for_each_event(levels, skip_dc,
                 [&bits](std::uint32_t run, std::int16_t level) {
                   bits += static_cast<std::uint32_t>(util::ue_bit_length(run));
                   bits += static_cast<std::uint32_t>(util::se_bit_length(level));
                 });
  bits += static_cast<std::uint32_t>(util::ue_bit_length(kEob));
  return bits;
}

bool block_has_coeffs(const std::int16_t levels[kDctSamples], bool skip_dc) {
  for (int i = skip_dc ? 1 : 0; i < kDctSamples; ++i) {
    // Raster index 0 is the DC in both scans, so skip_dc maps cleanly.
    if (levels[i] != 0 && !(skip_dc && i == 0)) {
      return true;
    }
  }
  return false;
}

}  // namespace acbm::codec
