#pragma once
// Structured per-frame error taxonomy of the encoding service.
//
// Every way a submitted frame can fail to become a packet resolves its
// std::future<Packet> with a SessionError carrying three machine-readable
// fields — the error class, the frame's submission sequence number, and the
// pipeline site that raised it — so a service frontend can shed, retry or
// tear down per class instead of string-matching what() texts. The classes
// split along the operational response they call for:
//
//   kEncodeFailed / kResource : the session is broken — the pipeline latches
//       into a failed state, every queued frame resolves with
//       kSessionFailed, and subsequent submit()s fail fast. Re-create the
//       session; other sessions on the shared pool are unaffected.
//   kTimeout / kOverloaded    : load shedding, not failure — the frame was
//       dropped before it consumed an encode slot, the bitstream simply
//       continues without it (a shed frame never occupies a frame index, so
//       the reference chain and decoder stay in sync), and the session
//       keeps accepting frames.
//   kSessionFailed            : fail-fast echo of an earlier kEncodeFailed/
//       kResource on the same session.
//   kClosed                   : the session was destroyed while this frame
//       was still unresolved (the broken-promise guard — consumers see this
//       error, never std::future_error).
//
// docs/FAULT_TOLERANCE.md is the prose contract for all of this.

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace acbm::codec {

/// Why a submitted frame's future resolved with an error.
enum class SessionErrorClass {
  kEncodeFailed,   ///< an encoder stage threw; the session is now failed
  kResource,       ///< allocation failure (std::bad_alloc); session failed
  kTimeout,        ///< deadline expired before the frame was dispatched
  kOverloaded,     ///< admission queue full, frame shed at submit
  kSessionFailed,  ///< an earlier frame already failed this session
  kClosed,         ///< session destroyed with this frame unresolved
};

/// Canonical lower-snake name of `cls` (what acbm_enc prints as class=...).
[[nodiscard]] constexpr const char* session_error_class_name(
    SessionErrorClass cls) {
  switch (cls) {
    case SessionErrorClass::kEncodeFailed:
      return "encode_failed";
    case SessionErrorClass::kResource:
      return "resource";
    case SessionErrorClass::kTimeout:
      return "timeout";
    case SessionErrorClass::kOverloaded:
      return "overloaded";
    case SessionErrorClass::kSessionFailed:
      return "session_failed";
    case SessionErrorClass::kClosed:
      return "closed";
  }
  return "?";
}

/// The structured error a frame's future resolves with. `frame_index()` is
/// the frame's SUBMISSION sequence number on its session (shed frames never
/// receive an encode index, so the submission number is the only identity
/// every failure path has); `site()` names where the error was raised
/// ("front", "back", "submit", "shed").
class SessionError : public std::runtime_error {
 public:
  SessionError(SessionErrorClass cls, std::uint64_t frame_index,
               std::string site, const std::string& detail)
      : std::runtime_error("session error: class=" +
                           std::string(session_error_class_name(cls)) +
                           " frame=" + std::to_string(frame_index) +
                           " site=" + site +
                           (detail.empty() ? "" : ": " + detail)),
        class_(cls),
        frame_index_(frame_index),
        site_(std::move(site)) {}

  [[nodiscard]] SessionErrorClass error_class() const { return class_; }
  [[nodiscard]] std::uint64_t frame_index() const { return frame_index_; }
  [[nodiscard]] const std::string& site() const { return site_; }

  /// True for the classes that latch the session into the failed state.
  [[nodiscard]] bool fatal() const {
    return class_ == SessionErrorClass::kEncodeFailed ||
           class_ == SessionErrorClass::kResource;
  }

 private:
  SessionErrorClass class_;
  std::uint64_t frame_index_;
  std::string site_;
};

/// Per-submit admission controls (EncodeSession::submit / try_submit).
/// Default-constructed options reproduce the historical behaviour exactly:
/// no deadline, unbounded queue, no degradation.
struct SubmitOptions {
  /// Frames not yet dispatched when the deadline passes resolve with
  /// kTimeout instead of encoding stale video. Checked at front admission
  /// (a frame already being encoded is never aborted mid-stage).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Maximum frames waiting for dispatch (excluding the ones being
  /// encoded); a submit beyond it is shed with kOverloaded (or nullopt from
  /// try_submit). 0 = unbounded.
  int queue_limit = 0;
  /// With queue_limit exceeded AND a degraded estimator configured on the
  /// session, admit the frame flagged for the cheaper estimator instead of
  /// shedding it (the degradation ladder; see docs/FAULT_TOLERANCE.md).
  bool degrade_on_overload = false;
};

}  // namespace acbm::codec
