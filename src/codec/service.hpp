#pragma once
// Multi-session encoding service: many independent encodes sharing one
// worker pool.
//
// The per-encoder pool model (one ThreadPool per codec::Encoder) breaks
// down the moment a process runs more than a handful of encodes at once —
// 64 sessions × 8 workers is 512 threads fighting over 8 cores, and each
// pool's stage barriers serialise against its own session only, so a burst
// on one session cannot soak up idle cycles another session leaves behind.
//
// EncoderService inverts the ownership: ONE pool, sized to the machine, and
// one EncodeSession per concurrent stream. Each session's pipeline runs on
// its own FIFO lane of the pool (util::ThreadPool::Queue); the dispatcher
// round-robins across lanes that hold work, so
//   * a saturating session cannot starve the others (fair scheduling),
//   * an idle session costs nothing (no parked per-session threads), and
//   * every session gets the frame-level pipelining of the shared-pool
//     Encoder constructor — frame t+1's motion estimation overlaps frame
//     t's entropy coding, row-readiness gated, bitstreams byte-identical
//     to a standalone encode of the same sequence.
//
// Threading contract: one thread drives a session (submit/finish are not
// self-synchronised), but different sessions may be driven from different
// threads concurrently — the shared pool and the per-session lanes carry
// all cross-session synchronisation. Packets resolve in submission order
// per session; concatenating one session's packet bytes reproduces
// Encoder::finish() for that stream byte for byte.
//
// bench/bench_service.cpp measures the aggregate-throughput and per-frame
// latency behaviour of this layer; tests/codec_service_test.cpp holds the
// byte-identity and TSan-cleanliness invariants.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codec/encoder.hpp"
#include "codec/service_stats.hpp"
#include "codec/session_error.hpp"
#include "me/estimator.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "video/frame.hpp"

namespace acbm::util {
class FaultInjector;
}

namespace acbm::codec {

/// The unit a service caller receives per frame. (Alias of EncodedFrame:
/// the async Encoder API and the service speak the same type.)
using Packet = EncodedFrame;

class EncoderService;

/// A session-wide overload posture, settable from the kv spec grammar
/// ("overload:queue=8,deadline_ms=40,degrade=ACBM:alpha=200"). submit()
/// folds it into every frame's SubmitOptions; see docs/FAULT_TOLERANCE.md
/// for the degradation-ladder semantics.
struct OverloadPolicy {
  int queue_limit = 0;  ///< frames awaiting dispatch; 0 = unbounded
  int deadline_ms = 0;  ///< per-frame deadline from submit time; 0 = none
  /// Estimator spec to swap to while overloaded instead of shedding
  /// (empty = shed with kOverloaded). The session does not build the
  /// estimator itself — pass one created from this spec to
  /// EncodeSession::configure_overload (keeps codec/ free of the estimator
  /// registry dependency).
  std::string degrade;
};

/// Human-readable grammar description, embedded in SpecError messages.
[[nodiscard]] std::string overload_spec_usage();

/// Parses "overload:key=val,...". The "overload" prefix is mandatory;
/// degrade=, when present, must be the LAST key — it consumes the rest of
/// the spec verbatim (estimator specs contain ':' and ','). Throws
/// util::SpecError on unknown keys or out-of-range values.
[[nodiscard]] OverloadPolicy overload_policy_from_spec(std::string_view spec);

/// Canonical round-trip render of `policy`.
[[nodiscard]] std::string to_spec(const OverloadPolicy& policy);

/// One independent encode in flight on a shared EncoderService. Owns its
/// estimator (sessions must not share one — estimators carry per-sequence
/// adaptive state) and its Encoder, which runs on one lane of the service's
/// pool with frame-level pipelining enabled.
class EncodeSession {
 public:
  /// @param service must outlive the session
  /// @param size picture dimensions (multiples of 16)
  /// @param config encoder settings; config.parallel.threads is ignored —
  ///        the service's pool size governs parallelism for every session
  /// @param estimator the session's own estimator instance, e.g. from
  ///        core::builtin_estimators().create(spec); must be non-null
  EncodeSession(EncoderService& service, video::PictureSize size,
                const EncoderConfig& config,
                std::unique_ptr<me::MotionEstimator> estimator);

  /// Drains any frames still in flight before tearing the encoder down.
  ~EncodeSession();

  EncodeSession(const EncodeSession&) = delete;
  EncodeSession& operator=(const EncodeSession&) = delete;

  /// Enqueues one frame; the future resolves when the frame's packet —
  /// report plus its byte range of the session's bitstream — is complete.
  /// Frames resolve in submission order. The session's OverloadPolicy (if
  /// configured) applies: the future may instead resolve with a
  /// SessionError (kTimeout/kOverloaded for shed frames, kEncodeFailed/
  /// kResource/kSessionFailed on a failed session).
  std::future<Packet> submit(video::Frame frame);

  /// submit() with explicit per-frame admission controls (overrides the
  /// session policy for this frame).
  std::future<Packet> submit(video::Frame frame, const SubmitOptions& options);

  /// Poll-style backpressure: like submit(), but returns std::nullopt when
  /// the frame would be shed as kOverloaded — the caller may retry later.
  /// A failed session still returns an engaged error future (terminal).
  std::optional<std::future<Packet>> try_submit(video::Frame frame);
  std::optional<std::future<Packet>> try_submit(video::Frame frame,
                                                const SubmitOptions& options);

  /// Installs the session's overload posture. `degraded_estimator`, when
  /// non-null, should be built from policy.degrade — frames past the queue
  /// limit then encode on it instead of being shed. Call before the first
  /// submit (the pipeline clones estimator workers at the first frame).
  void configure_overload(const OverloadPolicy& policy,
                          std::unique_ptr<me::MotionEstimator>
                              degraded_estimator = nullptr);

  /// Blocks until every submitted frame's packet has resolved. Returns
  /// normally on a failed session — the failure already surfaced through
  /// the per-frame futures.
  void drain();

  /// True once a frame's encode failed and latched this session; its
  /// subsequent submits fail fast. Other sessions are unaffected.
  [[nodiscard]] bool failed() const;

  /// This session's id: its creation rank on the service, and the fault
  /// injector lane its frames are keyed by.
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Drains and returns the session's complete bitstream (identical to the
  /// concatenation of every packet's bytes). The session must not be used
  /// afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// The session's estimator — read statistics here after encoding.
  [[nodiscard]] me::MotionEstimator& estimator() { return *estimator_; }

  [[nodiscard]] const Encoder& encoder() const { return *encoder_; }
  [[nodiscard]] Encoder& encoder() { return *encoder_; }

 private:
  /// The session policy rendered as SubmitOptions (deadline stamped per
  /// frame at submit time).
  [[nodiscard]] SubmitOptions options_from_policy() const;

  std::unique_ptr<me::MotionEstimator> estimator_;
  std::unique_ptr<Encoder> encoder_;  ///< declared after the estimator it borrows
  OverloadPolicy policy_;             ///< default admission controls
  std::uint64_t id_ = 0;
};

/// The shared pool. Construct one per process (or per core-partition),
/// then as many EncodeSessions against it as there are concurrent streams.
class EncoderService {
 public:
  /// @param threads pool size: 0 = one per hardware thread, N = exactly N
  ///        (util::ThreadPool::resolve_thread_count semantics)
  explicit EncoderService(int threads = 0)
      : pool_(util::ThreadPool::resolve_thread_count(threads)) {}

  EncoderService(const EncoderService&) = delete;
  EncoderService& operator=(const EncoderService&) = delete;

  /// Worker threads shared by every session.
  [[nodiscard]] int threads() const { return pool_.size(); }

  /// Convenience spelling of session.submit(frame): submits `frame` to
  /// `session`, which must have been created against this service.
  std::future<Packet> submit(EncodeSession& session, video::Frame frame) {
    return session.submit(std::move(frame));
  }

  /// Arms deterministic fault injection for sessions created AFTER this
  /// call: each new session's frames are keyed by (session id, frame
  /// submission number) on `injector`. The injector is borrowed and must
  /// outlive the service; null disarms for subsequent sessions.
  void set_fault_injector(const util::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Aggregated health counters across every session of this service.
  [[nodiscard]] ServiceStats stats() const { return stats_sink_.snapshot(); }

  /// The shared mutable counter block (sessions bump it; benches snapshot).
  [[nodiscard]] ServiceStatsSink& stats_sink() { return stats_sink_; }

  /// The service-wide metrics registry: "svc.*" health counters (the
  /// ServiceStatsSink storage) plus the "enc.stage.*" / "enc.frame.*"
  /// latency histograms every session's pipeline records into. Snapshot
  /// with counter_rows()/histogram_rows() for reporting.
  [[nodiscard]] obs::Registry& metrics() { return registry_; }
  [[nodiscard]] const obs::Registry& metrics() const { return registry_; }

  /// The underlying pool (sessions bind their pipeline lane to it).
  [[nodiscard]] util::ThreadPool& pool() { return pool_; }

 private:
  friend class EncodeSession;
  [[nodiscard]] std::uint64_t allocate_session_id() {
    return next_session_id_.fetch_add(1, std::memory_order_relaxed);
  }

  util::ThreadPool pool_;
  obs::Registry registry_;  ///< declared before the sink that binds into it
  ServiceStatsSink stats_sink_{registry_};
  const util::FaultInjector* fault_ = nullptr;
  std::atomic<std::uint64_t> next_session_id_{0};
};

}  // namespace acbm::codec
