#pragma once
// Multi-session encoding service: many independent encodes sharing one
// worker pool.
//
// The per-encoder pool model (one ThreadPool per codec::Encoder) breaks
// down the moment a process runs more than a handful of encodes at once —
// 64 sessions × 8 workers is 512 threads fighting over 8 cores, and each
// pool's stage barriers serialise against its own session only, so a burst
// on one session cannot soak up idle cycles another session leaves behind.
//
// EncoderService inverts the ownership: ONE pool, sized to the machine, and
// one EncodeSession per concurrent stream. Each session's pipeline runs on
// its own FIFO lane of the pool (util::ThreadPool::Queue); the dispatcher
// round-robins across lanes that hold work, so
//   * a saturating session cannot starve the others (fair scheduling),
//   * an idle session costs nothing (no parked per-session threads), and
//   * every session gets the frame-level pipelining of the shared-pool
//     Encoder constructor — frame t+1's motion estimation overlaps frame
//     t's entropy coding, row-readiness gated, bitstreams byte-identical
//     to a standalone encode of the same sequence.
//
// Threading contract: one thread drives a session (submit/finish are not
// self-synchronised), but different sessions may be driven from different
// threads concurrently — the shared pool and the per-session lanes carry
// all cross-session synchronisation. Packets resolve in submission order
// per session; concatenating one session's packet bytes reproduces
// Encoder::finish() for that stream byte for byte.
//
// bench/bench_service.cpp measures the aggregate-throughput and per-frame
// latency behaviour of this layer; tests/codec_service_test.cpp holds the
// byte-identity and TSan-cleanliness invariants.

#include <future>
#include <memory>
#include <vector>

#include "codec/encoder.hpp"
#include "me/estimator.hpp"
#include "util/thread_pool.hpp"
#include "video/frame.hpp"

namespace acbm::codec {

/// The unit a service caller receives per frame. (Alias of EncodedFrame:
/// the async Encoder API and the service speak the same type.)
using Packet = EncodedFrame;

class EncoderService;

/// One independent encode in flight on a shared EncoderService. Owns its
/// estimator (sessions must not share one — estimators carry per-sequence
/// adaptive state) and its Encoder, which runs on one lane of the service's
/// pool with frame-level pipelining enabled.
class EncodeSession {
 public:
  /// @param service must outlive the session
  /// @param size picture dimensions (multiples of 16)
  /// @param config encoder settings; config.parallel.threads is ignored —
  ///        the service's pool size governs parallelism for every session
  /// @param estimator the session's own estimator instance, e.g. from
  ///        core::builtin_estimators().create(spec); must be non-null
  EncodeSession(EncoderService& service, video::PictureSize size,
                const EncoderConfig& config,
                std::unique_ptr<me::MotionEstimator> estimator);

  /// Drains any frames still in flight before tearing the encoder down.
  ~EncodeSession();

  EncodeSession(const EncodeSession&) = delete;
  EncodeSession& operator=(const EncodeSession&) = delete;

  /// Enqueues one frame; the future resolves when the frame's packet —
  /// report plus its byte range of the session's bitstream — is complete.
  /// Frames resolve in submission order.
  std::future<Packet> submit(video::Frame frame);

  /// Blocks until every submitted frame's packet has resolved.
  void drain();

  /// Drains and returns the session's complete bitstream (identical to the
  /// concatenation of every packet's bytes). The session must not be used
  /// afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// The session's estimator — read statistics here after encoding.
  [[nodiscard]] me::MotionEstimator& estimator() { return *estimator_; }

  [[nodiscard]] const Encoder& encoder() const { return *encoder_; }
  [[nodiscard]] Encoder& encoder() { return *encoder_; }

 private:
  std::unique_ptr<me::MotionEstimator> estimator_;
  std::unique_ptr<Encoder> encoder_;  ///< declared after the estimator it borrows
};

/// The shared pool. Construct one per process (or per core-partition),
/// then as many EncodeSessions against it as there are concurrent streams.
class EncoderService {
 public:
  /// @param threads pool size: 0 = one per hardware thread, N = exactly N
  ///        (util::ThreadPool::resolve_thread_count semantics)
  explicit EncoderService(int threads = 0)
      : pool_(util::ThreadPool::resolve_thread_count(threads)) {}

  EncoderService(const EncoderService&) = delete;
  EncoderService& operator=(const EncoderService&) = delete;

  /// Worker threads shared by every session.
  [[nodiscard]] int threads() const { return pool_.size(); }

  /// Convenience spelling of session.submit(frame): submits `frame` to
  /// `session`, which must have been created against this service.
  std::future<Packet> submit(EncodeSession& session, video::Frame frame) {
    return session.submit(std::move(frame));
  }

  /// The underlying pool (sessions bind their pipeline lane to it).
  [[nodiscard]] util::ThreadPool& pool() { return pool_; }

 private:
  util::ThreadPool pool_;
};

}  // namespace acbm::codec
