#pragma once
// H.263-style quantization (TMN reference behaviour).
//
//   intra DC : fixed step 8, level clamped to [1, 254]
//   intra AC : LEVEL = COF / (2·QP)                      (no dead zone)
//   inter    : LEVEL = (|COF| − QP/2) / (2·QP) · sign    (dead zone QP/2)
//   dequant  : |COF'| = QP·(2·|LEVEL| + 1)   − (QP even ? 1 : 0), 0 if LEVEL=0
//
// The Qp-proportional step is what gives the paper's β·Qp² term its meaning:
// the quantiser absorbs matching errors up to O(Qp) per coefficient, so the
// tolerable SAD scales with Qp (and the Lagrangian λ with Qp²-in-SSD ≡ Qp-in-
// SAD).

#include <cstdint>

#include "codec/dct.hpp"

namespace acbm::codec {

/// Valid H.263 quantiser range.
inline constexpr int kMinQp = 1;
inline constexpr int kMaxQp = 31;

/// Quantizes one AC (or inter-DC) coefficient.
[[nodiscard]] std::int16_t quant_ac(double coeff, int qp, bool intra);

/// Dequantizes one AC (or inter-DC) level.
[[nodiscard]] std::int16_t dequant_ac(std::int16_t level, int qp);

/// Quantizes the intra DC coefficient (orthonormal DCT: DC = 8·mean).
[[nodiscard]] std::uint8_t quant_intra_dc(double coeff);

/// Dequantizes the intra DC level.
[[nodiscard]] std::int16_t dequant_intra_dc(std::uint8_t level);

/// Block forms. For intra blocks, index 0 holds the DC and is NOT touched by
/// quantize_block (the caller codes it via quant_intra_dc); levels[0] is set
/// to zero.
void quantize_block(const double coeffs[kDctSamples],
                    std::int16_t levels[kDctSamples], int qp, bool intra);

void dequantize_block(const std::int16_t levels[kDctSamples],
                      std::int16_t coeffs[kDctSamples], int qp, bool intra);

}  // namespace acbm::codec
