#pragma once
// Motion compensation: forming the inter prediction from the reconstructed
// reference picture.
//
// Luma interpolates on the fly from the reference's integer plane (through
// the lazy video::HalfpelPlanes handle, which it never forces to
// materialise); chroma derives its vector by halving the luma vector with
// the H.263 rounding rule (fractions 1/4, 1/2, 3/4 of a chroma sample all
// round to 1/2) and interpolates the same way.

#include <cstdint>

#include "me/types.hpp"
#include "video/interp.hpp"
#include "video/plane.hpp"

namespace acbm::codec {

/// Copies the bw×bh luma prediction for the block at (x, y) displaced by
/// `mv` (half-pel) into dst (row-major, `stride` samples per row).
void predict_luma(const video::HalfpelPlanes& ref, int x, int y, me::Mv mv,
                  int bw, int bh, std::uint8_t* dst, int stride);

/// H.263 chroma vector derivation: half the luma vector, rounded so any
/// fractional part becomes a half-sample position. Input and output are in
/// half-pel units of their respective planes.
[[nodiscard]] me::Mv derive_chroma_mv(me::Mv luma_mv);

/// Copies the bw×bh chroma prediction for the chroma-plane block at
/// (cx, cy) displaced by `cmv` (chroma half-pel units).
void predict_chroma(const video::Plane& ref_chroma, int cx, int cy, me::Mv cmv,
                    int bw, int bh, std::uint8_t* dst, int stride);

}  // namespace acbm::codec
