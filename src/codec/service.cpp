#include "codec/service.hpp"

#include <cassert>
#include <utility>

namespace acbm::codec {

EncodeSession::EncodeSession(EncoderService& service, video::PictureSize size,
                             const EncoderConfig& config,
                             std::unique_ptr<me::MotionEstimator> estimator)
    : estimator_(std::move(estimator)) {
  assert(estimator_ != nullptr);
  encoder_ =
      std::make_unique<Encoder>(size, config, *estimator_, service.pool());
}

EncodeSession::~EncodeSession() {
  // The encoder's pipeline drains its own lane on destruction; draining
  // here first just keeps the teardown path identical to finish().
  if (encoder_) {
    encoder_->drain();
  }
}

std::future<Packet> EncodeSession::submit(video::Frame frame) {
  return encoder_->submit_frame(std::move(frame));
}

void EncodeSession::drain() { encoder_->drain(); }

std::vector<std::uint8_t> EncodeSession::finish() {
  encoder_->drain();
  return encoder_->finish();
}

}  // namespace acbm::codec
