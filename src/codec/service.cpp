#include "codec/service.hpp"

#include <cassert>
#include <chrono>
#include <utility>

#include "util/kv.hpp"

namespace acbm::codec {

std::string overload_spec_usage() {
  return
      "overload spec grammar: overload:key=val[,key=val...] over the keys\n"
      "  queue=0         admission queue limit in frames (0 = unbounded)\n"
      "  deadline_ms=0   per-frame dispatch deadline from submit (0 = none)\n"
      "  degrade=SPEC    estimator spec to encode with while overloaded\n"
      "                  instead of shedding; must be the LAST key (the\n"
      "                  rest of the spec is taken verbatim)\n";
}

OverloadPolicy overload_policy_from_spec(std::string_view spec) {
  std::string_view name = spec;
  std::string_view kv;
  if (const std::size_t colon = spec.find(':');
      colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    kv = spec.substr(colon + 1);
  }
  while (!name.empty() && name.front() == ' ') {
    name.remove_prefix(1);
  }
  while (!name.empty() && name.back() == ' ') {
    name.remove_suffix(1);
  }
  if (name != "overload") {
    throw util::SpecError("overload: spec must start with \"overload\", got \"" +
                          std::string(name) + "\"; " + overload_spec_usage());
  }

  OverloadPolicy policy;
  // degrade= swallows the remainder verbatim — estimator specs contain ':'
  // and ',', so it cannot go through the kv splitter and must come last.
  if (const std::size_t at = kv.find("degrade="); at != std::string_view::npos) {
    if (at != 0 && kv[at - 1] != ',') {
      throw util::SpecError("overload: malformed key before degrade=; " +
                            overload_spec_usage());
    }
    policy.degrade = std::string(kv.substr(at + 8));
    if (policy.degrade.empty()) {
      throw util::SpecError("overload: degrade= needs an estimator spec");
    }
    kv = kv.substr(0, at == 0 ? 0 : at - 1);
  }
  for (const util::KeyValue& pair : util::parse_kv_list(kv)) {
    const std::string what = "overload key " + pair.first;
    if (pair.first == "queue") {
      const std::int64_t value = util::parse_int_strict(pair.second, what);
      if (value < 0 || value > 100000) {
        throw util::SpecError("overload: queue=" + pair.second +
                              " out of range [0, 100000]");
      }
      policy.queue_limit = static_cast<int>(value);
    } else if (pair.first == "deadline_ms") {
      const std::int64_t value = util::parse_int_strict(pair.second, what);
      if (value < 0 || value > 3600000) {
        throw util::SpecError("overload: deadline_ms=" + pair.second +
                              " out of range [0, 3600000]");
      }
      policy.deadline_ms = static_cast<int>(value);
    } else {
      throw util::SpecError("overload: unknown key \"" + pair.first + "\"; " +
                            overload_spec_usage());
    }
  }
  return policy;
}

std::string to_spec(const OverloadPolicy& policy) {
  std::string out = "overload:queue=" + std::to_string(policy.queue_limit);
  out += ",deadline_ms=" + std::to_string(policy.deadline_ms);
  if (!policy.degrade.empty()) {
    out += ",degrade=" + policy.degrade;
  }
  return out;
}

EncodeSession::EncodeSession(EncoderService& service, video::PictureSize size,
                             const EncoderConfig& config,
                             std::unique_ptr<me::MotionEstimator> estimator)
    : estimator_(std::move(estimator)), id_(service.allocate_session_id()) {
  assert(estimator_ != nullptr);
  encoder_ =
      std::make_unique<Encoder>(size, config, *estimator_, service.pool());
  encoder_->set_stats_sink(&service.stats_sink());
  encoder_->set_metrics(&service.metrics());
  encoder_->set_trace_session(id_);
  if (service.fault_ != nullptr) {
    encoder_->set_fault_injector(service.fault_, id_);
  }
}

EncodeSession::~EncodeSession() {
  // The encoder's pipeline drains its own lane on destruction; draining
  // here first just keeps the teardown path identical to finish().
  if (encoder_) {
    encoder_->drain();
  }
}

SubmitOptions EncodeSession::options_from_policy() const {
  SubmitOptions options;
  options.queue_limit = policy_.queue_limit;
  options.degrade_on_overload = !policy_.degrade.empty();
  if (policy_.deadline_ms > 0) {
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(policy_.deadline_ms);
  }
  return options;
}

void EncodeSession::configure_overload(
    const OverloadPolicy& policy,
    std::unique_ptr<me::MotionEstimator> degraded_estimator) {
  policy_ = policy;
  if (degraded_estimator != nullptr) {
    encoder_->set_degraded_estimator(std::move(degraded_estimator));
  }
}

std::future<Packet> EncodeSession::submit(video::Frame frame) {
  return encoder_->submit_frame(std::move(frame), options_from_policy());
}

std::future<Packet> EncodeSession::submit(video::Frame frame,
                                          const SubmitOptions& options) {
  return encoder_->submit_frame(std::move(frame), options);
}

std::optional<std::future<Packet>> EncodeSession::try_submit(
    video::Frame frame) {
  return encoder_->try_submit_frame(std::move(frame), options_from_policy());
}

std::optional<std::future<Packet>> EncodeSession::try_submit(
    video::Frame frame, const SubmitOptions& options) {
  return encoder_->try_submit_frame(std::move(frame), options);
}

void EncodeSession::drain() { encoder_->drain(); }

bool EncodeSession::failed() const { return encoder_->failed(); }

std::vector<std::uint8_t> EncodeSession::finish() {
  encoder_->drain();
  return encoder_->finish();
}

}  // namespace acbm::codec
