#pragma once
// Decoder for the ACV1/ACV2 bitstreams produced by codec::Encoder.
//
// The paper never decodes (PSNR is measured against the encoder's
// reconstruction loop); we ship a decoder anyway because round-trip parity
// — decoder output bit-exact against Encoder::last_recon() — is the
// strongest available correctness check on the whole codec substrate.
//
// Construction takes a DecoderConfig (built from the kv spec grammar via
// codec/config_map.hpp: "threads=4,conceal=resync,expect_frames=60"). The
// config selects the concealment policy for damaged ACV2 streams:
//
//   conceal=slice   (default) A slice whose *payload* is corrupt is
//                   concealed (its macroblocks copy the reference, its
//                   vectors read as zero) and decoding resynchronises at
//                   the next slice header; corruption of the slice
//                   directory itself — bad slice sync, out-of-order
//                   indices, payload lengths past the end of the buffer —
//                   throws DecodeError.
//   conceal=resync  Adds directory- and frame-header-level recovery: a
//                   damaged directory entry conceals the frame's remaining
//                   rows and decoding scans forward for the next
//                   validating frame header (the normative rules live in
//                   docs/RESILIENCE.md; codec::RefDecoder implements them
//                   independently so the pair stays a differential oracle
//                   under channel damage). V2 decoding never throws after
//                   construction in this mode.
//   conceal=off     Strict: even payload corruption throws.
//
// Progress and damage accounting stream into a structured DecodeReport
// (frames, per-frame concealments, resync skips, error class, sample
// digest) instead of hidden counters; decode_stream() runs a whole stream
// to completion without throwing and returns the report.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "me/mv_field.hpp"
#include "util/bitstream.hpp"
#include "util/thread_pool.hpp"  // nested ThreadPool::Queue needs the full type
#include "video/frame.hpp"
#include "video/interp.hpp"
#include "video/y4m_io.hpp"

namespace acbm::codec {

/// Raised on malformed bitstreams.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Concealment policy for damaged ACV2 streams (see the header comment).
enum class Concealment { kSlice, kResync, kOff };

/// Which structural layer a DecodeError came from. kHeader errors are only
/// observable as exceptions (the constructor throws before a report
/// exists); the others are recorded in DecodeReport::error_class before the
/// throw.
enum class DecodeErrorClass {
  kNone,       ///< no error
  kHeader,     ///< sequence header (magic, dimensions)
  kFrame,      ///< frame sync / frame header fields / V1 body corruption
  kDirectory,  ///< ACV2 slice directory (sync, index, layout, lengths)
  kPayload,    ///< slice payload under conceal=off
};

/// Decoder configuration, buildable from the kv spec grammar through
/// decoder_config_from_spec() (codec/config_map.hpp). The expect_* fields
/// absorb acbm_dec's --expect assertions: -1 means unchecked, any other
/// value is compared against the stream and a mismatch is recorded in
/// DecodeReport::expectation_failures (never thrown).
struct DecoderConfig {
  /// Worker threads for slice-parallel decoding of ACV2 frames: 1 = serial
  /// (default), 0 = one worker per hardware thread, N = exactly N workers.
  /// Output is identical at every thread count.
  int threads = 1;
  Concealment conceal = Concealment::kSlice;
  std::int64_t expect_width = -1;
  std::int64_t expect_height = -1;
  std::int64_t expect_fps = -1;     ///< integer part of the header rate
  std::int64_t expect_frames = -1;  ///< checked by decode_stream() at EOS
  std::int64_t expect_slices = -1;  ///< checked against every frame
  std::int64_t expect_version = -1;
};

/// Structured decode outcome. Filled incrementally as frames decode; read
/// it via Decoder::report() at any point, or let decode_stream() run the
/// stream to the end (capturing any DecodeError) and return it.
struct DecodeReport {
  std::uint64_t frames = 0;            ///< frames emitted
  std::uint64_t concealed_slices = 0;  ///< total slices concealed
  std::uint64_t resync_skips = 0;      ///< conceal=resync recovery events
  std::vector<std::uint32_t> concealed_per_frame;  ///< one entry per frame
  DecodeErrorClass error_class = DecodeErrorClass::kNone;
  std::string error_message;  ///< the DecodeError text, when one was thrown
  std::string channel_spec;   ///< echo of the sim::Channel spec, when known
  std::vector<std::string> expectation_failures;  ///< expect_* mismatches
  /// FNV-1a over every emitted frame's Y, Cb, Cr samples in raster order —
  /// a cheap outcome fingerprint for differential tests and CI assertions.
  std::uint64_t sample_digest = 0xcbf29ce484222325ull;
};

class Decoder {
 public:
  /// Parses the sequence header; throws DecodeError when the data is not an
  /// ACV1/ACV2 stream. The buffer is copied so the decoder owns its input.
  Decoder(std::span<const std::uint8_t> data, const DecoderConfig& config);

  /// Shared-pool variant: slice-parallel decoding runs on one FIFO lane of
  /// `shared_pool` (which must outlive the decoder) instead of a pool built
  /// per decoder instance — N concurrent decoders share the machine's
  /// workers fairly rather than oversubscribing it N-fold, and each
  /// decoder's stage barrier covers only its own tasks. Output is identical
  /// to the own-pool constructor. config.threads is ignored (the pool's
  /// size applies).
  Decoder(std::span<const std::uint8_t> data, const DecoderConfig& config,
          util::ThreadPool& shared_pool);

  /// Deprecated: thin wrapper over the DecoderConfig constructor, kept for
  /// source compatibility (byte-/sample-identical to the old behaviour).
  /// Prefer Decoder(data, DecoderConfig{.threads = n}).
  explicit Decoder(std::span<const std::uint8_t> data, int threads = 1);

  /// Deprecated: wrapper over the shared-pool DecoderConfig constructor.
  Decoder(std::span<const std::uint8_t> data, util::ThreadPool& shared_pool);

  ~Decoder();

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  [[nodiscard]] video::PictureSize size() const { return size_; }
  [[nodiscard]] video::FrameRate rate() const { return rate_; }

  /// Decodes the next frame; std::nullopt at clean end-of-stream. Throws
  /// DecodeError on unconcealable corruption for the configured policy
  /// (never, for V2 streams under conceal=resync); the error class and
  /// message are recorded in report() before the throw.
  std::optional<video::Frame> decode_frame();

  /// Decodes every remaining frame; rethrows like decode_frame().
  std::vector<video::Frame> decode_all();

  /// Runs the stream to the end without throwing: any DecodeError is
  /// captured into the report's error class/message, end-of-stream
  /// expectations (expect_frames, expect_slices on an empty stream) are
  /// evaluated, and the final report is returned. Frames are appended to
  /// `frames` when non-null.
  DecodeReport decode_stream(std::vector<video::Frame>* frames = nullptr);

  /// The accumulated report (see DecodeReport).
  [[nodiscard]] const DecodeReport& report() const { return report_; }

  /// Stamps the channel spec that damaged this stream into the report, so
  /// artifacts carry the full provenance (acbm_dec --channel does this).
  void note_channel_spec(std::string spec) {
    report_.channel_spec = std::move(spec);
  }

  /// Bitstream revision: 1 for ACV1, 2 for ACV2 (sliced frames).
  [[nodiscard]] int version() const { return version_; }

  /// Slice count of the most recently decoded frame (1 before any frame and
  /// for every ACV1 frame).
  [[nodiscard]] int last_frame_slices() const { return last_frame_slices_; }

  /// Total slices concealed so far (= report().concealed_slices).
  [[nodiscard]] std::uint64_t concealed_slices() const {
    return report_.concealed_slices;
  }

 private:
  /// ACV2 slice-directory entry (pass 1 product; see decode_frame_slices).
  struct SliceEntry {
    int first_row = 0;
    int end_row = 0;
    std::size_t offset = 0;  ///< payload start, bytes into data_
    std::size_t bytes = 0;
    bool ok = false;
  };

  /// Records the class/message in report_ and throws DecodeError.
  [[noreturn]] void fail(DecodeErrorClass error_class,
                         const std::string& message);

  std::optional<video::Frame> decode_frame_strict();
  std::optional<video::Frame> decode_frame_resync();
  void decode_frame_v1(video::Frame& out, int qp, bool inter_frame);
  void decode_frame_slices(video::Frame& out, int qp, bool inter_frame);
  void decode_frame_slices_resync(video::Frame& out, int qp,
                                  bool inter_frame);

  /// Passes 2+3 over a parsed directory: decode payloads (in parallel when
  /// configured), then conceal failures — or, under conceal=off, throw on
  /// the first bad payload.
  void decode_slice_payloads(std::vector<SliceEntry>& slices,
                             video::Frame& out, int qp, bool inter_frame);

  /// conceal=resync: scans data_ from `from_byte` for the next byte offset
  /// that validates as a complete frame header + slice directory
  /// (docs/RESILIENCE.md "resynchronisation scan") and repositions the
  /// reader there. Returns false — reader at end-of-stream — when no
  /// candidate validates.
  bool seek_next_frame(std::size_t from_byte);

  /// Frame bookkeeping shared by both decode paths: frame count, per-frame
  /// concealment, sample digest, expect_slices.
  void account_frame(const video::Frame& frame,
                     std::uint64_t concealed_before);

  /// Decodes macroblock rows [row_begin, row_end) from `br`, predicting
  /// vectors against `first_row` as the slice boundary. Returns false on
  /// corrupt entropy data instead of throwing, so it can run on pool
  /// threads (tasks must not throw) and feed concealment.
  bool decode_rows(util::BitReader& br, video::Frame& out, int qp,
                   bool inter_frame, int row_begin, int row_end,
                   int first_row) noexcept;

  /// Error concealment for a corrupt slice: every macroblock of the range
  /// copies the reference frame and its coded vector reads as {0,0}.
  void conceal_rows(video::Frame& out, int row_begin, int row_end);

  /// True when a 16×16 motion-compensated read at (x, y) + mv stays inside
  /// the reference's padded bounds; false flags a corrupt vector.
  [[nodiscard]] bool mv_in_reference(me::Mv mv, int x, int y) const;

  /// Decode one macroblock's six-block set; false on corrupt coefficients.
  bool decode_intra_block_set(util::BitReader& br, video::Frame& out, int bx,
                              int by, int qp);
  bool decode_inter_block_set(util::BitReader& br, video::Frame& out, int bx,
                              int by, int qp, me::Mv mv);
  void copy_skip_mb(video::Frame& out, int bx, int by);

  std::vector<std::uint8_t> data_;
  util::BitReader reader_;
  DecoderConfig config_;
  DecodeReport report_;
  video::PictureSize size_{};
  video::FrameRate rate_{};
  video::Frame ref_;
  video::HalfpelPlanes ref_half_;
  me::MvField coded_field_;
  int version_ = 1;
  bool first_frame_ = true;
  int last_frame_slices_ = 1;
  bool slices_mismatch_recorded_ = false;
  std::unique_ptr<util::ThreadPool> pool_;  ///< created at first parallel use
  util::ThreadPool* shared_pool_ = nullptr;  ///< injected pool, not owned
  /// This decoder's FIFO lane of whichever pool is active; its TaskGroup
  /// waits are what keep concurrent decoders from observing each other.
  /// Declared after pool_ so the lane unregisters before an owned pool
  /// tears down.
  std::unique_ptr<util::ThreadPool::Queue> queue_;
};

}  // namespace acbm::codec
