#pragma once
// Decoder for the ACV1/ACV2 bitstreams produced by codec::Encoder.
//
// The paper never decodes (PSNR is measured against the encoder's
// reconstruction loop); we ship a decoder anyway because round-trip parity
// — decoder output bit-exact against Encoder::last_recon() — is the
// strongest available correctness check on the whole codec substrate.
//
// ACV2 streams carry per-frame slice directories (see encoder.hpp for the
// wire format). Slices are independently predicted and byte-aligned, so the
// decoder parses the directory serially and then decodes the payloads
// independently — in parallel on a util::ThreadPool when constructed with
// threads != 1. A slice whose *payload* is corrupt is concealed (its
// macroblocks copy the reference, its vectors read as zero) and decoding
// resynchronises at the next slice header; corruption of the directory
// itself — bad slice sync, out-of-order indices, payload lengths past the
// end of the buffer — still throws DecodeError, because there is nothing
// left to resynchronise on.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "me/mv_field.hpp"
#include "util/bitstream.hpp"
#include "util/thread_pool.hpp"  // nested ThreadPool::Queue needs the full type
#include "video/frame.hpp"
#include "video/interp.hpp"
#include "video/y4m_io.hpp"

namespace acbm::codec {

/// Raised on malformed bitstreams.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Decoder {
 public:
  /// Parses the sequence header; throws DecodeError when the data is not an
  /// ACV1/ACV2 stream. The buffer is copied so the decoder owns its input.
  /// `threads` drives slice-parallel decoding of ACV2 frames: 1 = serial
  /// (default), 0 = one worker per hardware thread, N = exactly N workers.
  /// Output is identical at every thread count.
  explicit Decoder(std::span<const std::uint8_t> data, int threads = 1);

  /// Shared-pool variant: slice-parallel decoding runs on one FIFO lane of
  /// `shared_pool` (which must outlive the decoder) instead of a pool built
  /// per decoder instance — N concurrent decoders share the machine's
  /// workers fairly rather than oversubscribing it N-fold, and each
  /// decoder's stage barrier covers only its own tasks. Output is identical
  /// to the own-pool constructor.
  Decoder(std::span<const std::uint8_t> data, util::ThreadPool& shared_pool);
  ~Decoder();

  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  [[nodiscard]] video::PictureSize size() const { return size_; }
  [[nodiscard]] video::FrameRate rate() const { return rate_; }

  /// Decodes the next frame; std::nullopt at clean end-of-stream. Throws
  /// DecodeError on corruption (for ACV2, on corruption the slice layer
  /// cannot conceal — see the header comment).
  std::optional<video::Frame> decode_frame();

  /// Decodes every remaining frame.
  std::vector<video::Frame> decode_all();

  /// Bitstream revision: 1 for ACV1, 2 for ACV2 (sliced frames).
  [[nodiscard]] int version() const { return version_; }

  /// Slice count of the most recently decoded frame (1 before any frame and
  /// for every ACV1 frame).
  [[nodiscard]] int last_frame_slices() const { return last_frame_slices_; }

  /// Total slices concealed so far (corrupt payload, resynchronised at the
  /// next slice header).
  [[nodiscard]] std::uint64_t concealed_slices() const {
    return concealed_slices_;
  }

 private:
  void decode_frame_v1(video::Frame& out, int qp, bool inter_frame);
  void decode_frame_slices(video::Frame& out, int qp, bool inter_frame);

  /// Decodes macroblock rows [row_begin, row_end) from `br`, predicting
  /// vectors against `first_row` as the slice boundary. Returns false on
  /// corrupt entropy data instead of throwing, so it can run on pool
  /// threads (tasks must not throw) and feed concealment.
  bool decode_rows(util::BitReader& br, video::Frame& out, int qp,
                   bool inter_frame, int row_begin, int row_end,
                   int first_row) noexcept;

  /// Error concealment for a corrupt slice: every macroblock of the range
  /// copies the reference frame and its coded vector reads as {0,0}.
  void conceal_rows(video::Frame& out, int row_begin, int row_end);

  /// True when a 16×16 motion-compensated read at (x, y) + mv stays inside
  /// the reference's padded bounds; false flags a corrupt vector.
  [[nodiscard]] bool mv_in_reference(me::Mv mv, int x, int y) const;

  /// Decode one macroblock's six-block set; false on corrupt coefficients.
  bool decode_intra_block_set(util::BitReader& br, video::Frame& out, int bx,
                              int by, int qp);
  bool decode_inter_block_set(util::BitReader& br, video::Frame& out, int bx,
                              int by, int qp, me::Mv mv);
  void copy_skip_mb(video::Frame& out, int bx, int by);

  std::vector<std::uint8_t> data_;
  util::BitReader reader_;
  video::PictureSize size_{};
  video::FrameRate rate_{};
  video::Frame ref_;
  video::HalfpelPlanes ref_half_;
  me::MvField coded_field_;
  int version_ = 1;
  bool first_frame_ = true;
  int threads_ = 1;
  int last_frame_slices_ = 1;
  std::uint64_t concealed_slices_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;  ///< created at first parallel use
  util::ThreadPool* shared_pool_ = nullptr;  ///< injected pool, not owned
  /// This decoder's FIFO lane of whichever pool is active; its TaskGroup
  /// waits are what keep concurrent decoders from observing each other.
  /// Declared after pool_ so the lane unregisters before an owned pool
  /// tears down.
  std::unique_ptr<util::ThreadPool::Queue> queue_;
};

}  // namespace acbm::codec
