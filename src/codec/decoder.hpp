#pragma once
// Decoder for the ACV1 bitstream produced by codec::Encoder.
//
// The paper never decodes (PSNR is measured against the encoder's
// reconstruction loop); we ship a decoder anyway because round-trip parity
// — decoder output bit-exact against Encoder::last_recon() — is the
// strongest available correctness check on the whole codec substrate.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "me/mv_field.hpp"
#include "util/bitstream.hpp"
#include "video/frame.hpp"
#include "video/interp.hpp"
#include "video/y4m_io.hpp"

namespace acbm::codec {

/// Raised on malformed bitstreams.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Decoder {
 public:
  /// Parses the sequence header; throws DecodeError when the data is not an
  /// ACV1 stream. The buffer is copied so the decoder owns its input.
  explicit Decoder(std::span<const std::uint8_t> data);

  [[nodiscard]] video::PictureSize size() const { return size_; }
  [[nodiscard]] video::FrameRate rate() const { return rate_; }

  /// Decodes the next frame; std::nullopt at clean end-of-stream. Throws
  /// DecodeError on corruption.
  std::optional<video::Frame> decode_frame();

  /// Decodes every remaining frame.
  std::vector<video::Frame> decode_all();

 private:
  void decode_intra_mb(video::Frame& out, int bx, int by, int qp);
  void decode_inter_mb(video::Frame& out, int bx, int by, int qp, me::Mv mv);
  void copy_skip_mb(video::Frame& out, int bx, int by);

  std::vector<std::uint8_t> data_;
  util::BitReader reader_;
  video::PictureSize size_{};
  video::FrameRate rate_{};
  video::Frame ref_;
  video::HalfpelPlanes ref_half_;
  me::MvField coded_field_;
  bool first_frame_ = true;
};

}  // namespace acbm::codec
