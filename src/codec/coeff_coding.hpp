#pragma once
// Run/level entropy coding of quantized 8×8 blocks.
//
// Zig-zag order, events of (zero-run, nonzero level) coded as
// ue(run) + se(level), terminated by the reserved run value kEob = 64.
// A structured universal code replaces TMN's Huffman tables (DESIGN.md §4):
// it preserves the monotone rate-in-(run, |level|) behaviour the paper's
// R term depends on, and unlike a table import it is trivially prefix-free
// and decodable by construction.

#include <cstdint>

#include "codec/dct.hpp"
#include "util/bitstream.hpp"

namespace acbm::codec {

/// Reserved ue() value marking end-of-block (valid runs are 0..63).
inline constexpr std::uint32_t kEob = 64;

/// Encodes the block (raster-order levels). When `skip_dc` is set, index 0
/// is excluded from the scan (intra blocks code DC out of band).
void encode_block_coeffs(util::BitWriter& bw,
                         const std::int16_t levels[kDctSamples],
                         bool skip_dc = false);

/// Decodes into raster-order levels (zero-filled first). Returns false on a
/// malformed stream (bad run, zero level, or reader exhaustion).
[[nodiscard]] bool decode_block_coeffs(util::BitReader& br,
                                       std::int16_t levels[kDctSamples],
                                       bool skip_dc = false);

/// Exact bit count encode_block_coeffs would produce.
[[nodiscard]] std::uint32_t block_coeff_bits(
    const std::int16_t levels[kDctSamples], bool skip_dc = false);

/// True when any codable coefficient is nonzero (respecting skip_dc).
[[nodiscard]] bool block_has_coeffs(const std::int16_t levels[kDctSamples],
                                    bool skip_dc = false);

}  // namespace acbm::codec
