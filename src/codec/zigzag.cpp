#include "codec/zigzag.hpp"

namespace acbm::codec {

const std::array<std::uint8_t, kDctSamples> kZigzagOrder = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

void zigzag_scan(const std::int16_t in[kDctSamples],
                 std::int16_t out[kDctSamples]) {
  for (int k = 0; k < kDctSamples; ++k) {
    out[k] = in[kZigzagOrder[k]];
  }
}

void zigzag_unscan(const std::int16_t in[kDctSamples],
                   std::int16_t out[kDctSamples]) {
  for (int k = 0; k < kDctSamples; ++k) {
    out[kZigzagOrder[k]] = in[k];
  }
}

}  // namespace acbm::codec
