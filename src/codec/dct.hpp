#pragma once
// 8×8 orthonormal type-II DCT / type-III IDCT.
//
// The transform pair is exact to floating-point precision; quantization is
// the only lossy stage in the codec. With the orthonormal scaling the DC
// coefficient equals 8·(block mean), so intra DC fits H.263's fixed
// step-8 quantizer (levels 1..254 cover means 0..255).

#include <cstdint>

namespace acbm::codec {

inline constexpr int kDctSize = 8;
inline constexpr int kDctSamples = kDctSize * kDctSize;

/// Forward DCT: spatial samples/residuals (row-major) → coefficients.
void forward_dct8x8(const std::int16_t in[kDctSamples],
                    double out[kDctSamples]);

/// Inverse DCT: coefficients → spatial values (row-major, unrounded).
void inverse_dct8x8(const double in[kDctSamples], double out[kDctSamples]);

/// Inverse DCT from integer (dequantized) coefficients, rounded to the
/// nearest integer and clamped to [-limit, limit]. The codec uses
/// limit = 255 for residuals and 255 for intra samples (then offsets).
void inverse_dct8x8_to_int(const std::int16_t in[kDctSamples],
                           std::int16_t out[kDctSamples], int limit = 512);

}  // namespace acbm::codec
