#include "codec/ref_decoder.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

// Everything below is written from the wire-format documentation, not from
// the optimized decoder's sources: simple loops, per-sample clamping, fresh
// vectors per frame. Keep it that way — the value of this file is exactly
// its independence.

namespace acbm::codec {

namespace {

constexpr int kMacroblock = 16;
constexpr int kBlock = 8;
constexpr int kBlockSamples = kBlock * kBlock;

// Wire constants, from the format description in docs/ARCHITECTURE.md.
constexpr std::uint32_t kRefMagicV1 = 0x41435631;  // "ACV1"
constexpr std::uint32_t kRefMagicV2 = 0x41435632;  // "ACV2"
constexpr std::uint32_t kRefFrameSync = 0x7E5A;
constexpr std::uint32_t kRefSliceSync = 0x534C;  // "SL"
constexpr std::uint32_t kRefEob = 64;            // end-of-block escape run
constexpr int kRefMinQp = 1;
constexpr int kRefMaxQp = 31;
constexpr int kRefMaxDimension = 4096;
constexpr int kRefCoeffLimit = 2047;
// Compensated reads must stay within this many samples of the picture edge
// (the optimized decoder's 24-sample replicated border, minus the sample the
// half-pel interpolation reads past the block).
constexpr int kRefMvMargin = 23;

// --- Exp-Golomb -----------------------------------------------------------

std::uint32_t read_ue(RefDecoder::BitCursor&);

// --- Zig-zag scan, derived from the diagonal walk (H.263 Figure 14) -------

struct ZigzagTable {
  std::array<int, kBlockSamples> raster_of_scan{};

  ZigzagTable() {
    int k = 0;
    for (int d = 0; d <= 2 * (kBlock - 1); ++d) {
      // Diagonal d holds cells with row+col == d. Odd diagonals walk with
      // the row increasing, even diagonals with the row decreasing.
      const int lo = std::max(0, d - (kBlock - 1));
      const int hi = std::min(kBlock - 1, d);
      if ((d & 1) != 0) {
        for (int row = lo; row <= hi; ++row) {
          raster_of_scan[static_cast<std::size_t>(k++)] =
              row * kBlock + (d - row);
        }
      } else {
        for (int row = hi; row >= lo; --row) {
          raster_of_scan[static_cast<std::size_t>(k++)] =
              row * kBlock + (d - row);
        }
      }
    }
  }
};

const ZigzagTable kZigzag;

// --- Inverse DCT ----------------------------------------------------------
//
// Orthonormal basis and columns-then-rows accumulation order; both are
// normative for sample-exactness (see ref_decoder.hpp).

struct RefBasis {
  double b[kBlock][kBlock];

  RefBasis() {
    for (int u = 0; u < kBlock; ++u) {
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < kBlock; ++x) {
        b[u][x] = 0.5 * cu *
                  std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};

const RefBasis kRefBasis;

void ref_inverse_dct(const int coeffs[kBlockSamples],
                     int spatial[kBlockSamples]) {
  double in[kBlockSamples];
  for (int i = 0; i < kBlockSamples; ++i) {
    in[i] = coeffs[i];
  }
  double tmp[kBlockSamples];
  for (int u = 0; u < kBlock; ++u) {
    for (int y = 0; y < kBlock; ++y) {
      double s = 0.0;
      for (int v = 0; v < kBlock; ++v) {
        s += kRefBasis.b[v][y] * in[v * kBlock + u];
      }
      tmp[y * kBlock + u] = s;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      double s = 0.0;
      for (int u = 0; u < kBlock; ++u) {
        s += kRefBasis.b[u][x] * tmp[y * kBlock + u];
      }
      const long r = std::lround(s);
      spatial[y * kBlock + x] =
          static_cast<int>(std::clamp<long>(r, -512, 512));
    }
  }
}

// --- Dequantization (H.263/TMN) -------------------------------------------

int ref_dequant_ac(int level, int qp) {
  if (level == 0) {
    return 0;
  }
  const int mag = level < 0 ? -level : level;
  int rec = qp * (2 * mag + 1);
  if ((qp & 1) == 0) {
    rec -= 1;
  }
  rec = std::min(rec, kRefCoeffLimit);
  return level < 0 ? -rec : rec;
}

// --- Clamped picture sampling ---------------------------------------------
//
// The optimized decoder replicates each plane's edge samples into a border;
// sampling with clamped coordinates reads the same values without one.

int clamp_coord(int v, int limit) { return std::clamp(v, 0, limit - 1); }

std::uint8_t sample(const std::vector<std::uint8_t>& plane, int w, int h,
                    int x, int y) {
  return plane[static_cast<std::size_t>(clamp_coord(y, h)) *
                   static_cast<std::size_t>(w) +
               static_cast<std::size_t>(clamp_coord(x, w))];
}

/// One sample at half-pel coordinates (hx, hy), H.263 rounding.
std::uint8_t sample_halfpel(const std::vector<std::uint8_t>& plane, int w,
                            int h, int hx, int hy) {
  const int phase_h = hx & 1;
  const int phase_v = hy & 1;
  const int x = (hx - phase_h) >> 1;
  const int y = (hy - phase_v) >> 1;
  const int a = sample(plane, w, h, x, y);
  if (phase_h == 0 && phase_v == 0) {
    return static_cast<std::uint8_t>(a);
  }
  if (phase_v == 0) {
    return static_cast<std::uint8_t>((a + sample(plane, w, h, x + 1, y) + 1) >>
                                     1);
  }
  if (phase_h == 0) {
    return static_cast<std::uint8_t>((a + sample(plane, w, h, x, y + 1) + 1) >>
                                     1);
  }
  return static_cast<std::uint8_t>(
      (a + sample(plane, w, h, x + 1, y) + sample(plane, w, h, x, y + 1) +
       sample(plane, w, h, x + 1, y + 1) + 2) >>
      2);
}

std::uint8_t clamp_sample(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

// --- Deblocking (H.263 Annex J) -------------------------------------------

int ref_deblock_strength(int qp) {
  static constexpr int kStrength[32] = {
      0,  1, 1, 2, 2, 3, 3, 4,  4,  4,  5,  5,  6,  6,  7,  7,
      7,  8, 8, 8, 9, 9, 9, 10, 10, 10, 11, 11, 11, 12, 12, 12};
  return kStrength[std::clamp(qp, kRefMinQp, kRefMaxQp)];
}

void ref_deblock_edge(std::uint8_t& a, std::uint8_t& b, std::uint8_t& c,
                      std::uint8_t& d, int strength) {
  const int ia = a;
  const int ib = b;
  const int ic = c;
  const int id = d;
  const int diff = (ia - 4 * ib + 4 * ic - id) / 8;
  const int adiff = std::abs(diff);
  const int ramp = std::max(0, adiff - std::max(0, 2 * (adiff - strength)));
  const int d1 = diff >= 0 ? ramp : -ramp;
  const int half = std::abs(d1) / 2;
  const int d2 = std::clamp((ia - id) / 4, -half, half);
  a = clamp_sample(ia - d2);
  b = clamp_sample(ib + d1);
  c = clamp_sample(ic - d1);
  d = clamp_sample(id + d2);
}

void ref_deblock_plane(std::vector<std::uint8_t>& plane, int w, int h,
                       int qp) {
  const int strength = ref_deblock_strength(qp);
  if (strength == 0 || w == 0 || h == 0) {
    return;
  }
  auto at = [&](int x, int y) -> std::uint8_t& {
    return plane[static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                 static_cast<std::size_t>(x)];
  };
  // Horizontal block edges first, then vertical — the order is normative.
  for (int edge = kBlock; edge < h; edge += kBlock) {
    for (int x = 0; x < w; ++x) {
      ref_deblock_edge(at(x, edge - 2), at(x, edge - 1), at(x, edge),
                       at(x, edge + 1), strength);
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int edge = kBlock; edge < w; edge += kBlock) {
      ref_deblock_edge(at(edge - 2, y), at(edge - 1, y), at(edge, y),
                       at(edge + 1, y), strength);
    }
  }
}

// --- Coefficient decoding --------------------------------------------------

std::int32_t read_se(RefDecoder::BitCursor& bc) {
  const std::uint32_t mapped = read_ue(bc);
  if (mapped == 0) {
    return 0;
  }
  const std::uint32_t half = (mapped + 1) / 2;
  return (mapped & 1u) != 0 ? static_cast<std::int32_t>(half)
                            : -static_cast<std::int32_t>(half);
}

/// Decodes one block's run/level events into raster-order levels. Returns
/// false on a malformed stream.
bool decode_coeffs(RefDecoder::BitCursor& bc, int levels[kBlockSamples],
                   bool skip_dc) {
  // Levels are 16-bit on the wire's reconstruction path; a corrupt stream's
  // oversized se() value wraps through int16 exactly as it does there.
  std::int16_t scanned[kBlockSamples] = {};
  int k = skip_dc ? 1 : 0;
  while (true) {
    const std::uint32_t run = read_ue(bc);
    if (bc.exhausted) {
      return false;
    }
    if (run == kRefEob) {
      break;
    }
    if (run > 63) {
      return false;
    }
    const std::int32_t level = read_se(bc);
    if (bc.exhausted || level == 0) {
      return false;
    }
    k += static_cast<int>(run);
    if (k >= kBlockSamples) {
      return false;
    }
    scanned[k] = static_cast<std::int16_t>(level);
    ++k;
  }
  for (int i = 0; i < kBlockSamples; ++i) {
    levels[kZigzag.raster_of_scan[static_cast<std::size_t>(i)]] = scanned[i];
  }
  return true;
}

std::uint32_t read_ue(RefDecoder::BitCursor& bc) {
  int zeros = 0;
  while (!bc.exhausted && bc.get_bits(1) == 0) {
    ++zeros;
    if (zeros > 32) {  // malformed stream guard
      return 0;
    }
  }
  if (bc.exhausted) {
    return 0;
  }
  const std::uint64_t rest = bc.get_bits(zeros);
  const std::uint64_t v = (std::uint64_t{1} << zeros) | rest;
  return static_cast<std::uint32_t>(v - 1);
}

}  // namespace

// --- BitCursor -------------------------------------------------------------

std::uint64_t RefDecoder::BitCursor::get_bits(int count) {
  std::uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    const std::size_t byte_index = bit_pos >> 3;
    std::uint64_t bit = 0;
    if (byte_index < size) {
      const int shift = 7 - static_cast<int>(bit_pos & 7u);
      bit = (data[byte_index] >> shift) & 1u;
      ++bit_pos;
    } else {
      exhausted = true;
    }
    value = (value << 1) | bit;
  }
  return value;
}

void RefDecoder::BitCursor::align() {
  bit_pos = (bit_pos + 7u) & ~std::size_t{7};
  if (bit_pos > bit_size()) {
    bit_pos = bit_size();
  }
}

void RefDecoder::BitCursor::skip_bits(std::size_t count) {
  if (count > bit_size() - bit_pos) {
    bit_pos = bit_size();
    exhausted = true;
    return;
  }
  bit_pos += count;
}

// --- RefDecoder ------------------------------------------------------------

RefDecoder::RefDecoder(std::span<const std::uint8_t> data,
                       bool conceal_resync)
    : data_(data.begin(), data.end()), conceal_resync_(conceal_resync) {
  reader_.data = data_.data();
  reader_.size = data_.size();
  const std::uint32_t magic =
      static_cast<std::uint32_t>(reader_.get_bits(32));
  if ((magic != kRefMagicV1 && magic != kRefMagicV2) || reader_.exhausted) {
    throw RefDecodeError("ref decoder: missing ACV1/ACV2 magic");
  }
  version_ = magic == kRefMagicV2 ? 2 : 1;
  width_ = static_cast<int>(reader_.get_bits(16));
  height_ = static_cast<int>(reader_.get_bits(16));
  fps_num_ = static_cast<int>(reader_.get_bits(16));
  fps_den_ = static_cast<int>(reader_.get_bits(16));
  if (reader_.exhausted || width_ <= 0 || height_ <= 0 ||
      width_ % kMacroblock != 0 || height_ % kMacroblock != 0 ||
      width_ > kRefMaxDimension || height_ > kRefMaxDimension) {
    throw RefDecodeError("ref decoder: invalid sequence header");
  }
  mbs_x_ = width_ / kMacroblock;
  mbs_y_ = height_ / kMacroblock;
  ref_.width = width_;
  ref_.height = height_;
  ref_.y.assign(static_cast<std::size_t>(width_) * height_, 0);
  ref_.cb.assign(static_cast<std::size_t>(width_ / 2) * (height_ / 2), 0);
  ref_.cr.assign(static_cast<std::size_t>(width_ / 2) * (height_ / 2), 0);
}

std::optional<RefPicture> RefDecoder::decode_frame() {
  if (conceal_resync_ && version_ == 2) {
    return decode_frame_resync();
  }
  return decode_frame_strict();
}

RefPicture RefDecoder::fresh_picture() {
  RefPicture out;
  out.width = width_;
  out.height = height_;
  out.y.assign(static_cast<std::size_t>(width_) * height_, 0);
  out.cb.assign(static_cast<std::size_t>(width_ / 2) * (height_ / 2), 0);
  out.cr.assign(static_cast<std::size_t>(width_ / 2) * (height_ / 2), 0);
  coded_mvx_.assign(static_cast<std::size_t>(mbs_x_) * mbs_y_, 0);
  coded_mvy_.assign(static_cast<std::size_t>(mbs_x_) * mbs_y_, 0);
  return out;
}

void RefDecoder::finish_frame(RefPicture& out, int qp, bool deblock) {
  if (deblock) {
    ref_deblock_plane(out.y, width_, height_, qp);
    ref_deblock_plane(out.cb, width_ / 2, height_ / 2, qp);
    ref_deblock_plane(out.cr, width_ / 2, height_ / 2, qp);
  }
  ref_ = out;
  first_frame_ = false;
}

std::optional<RefPicture> RefDecoder::decode_frame_strict() {
  reader_.align();
  if (reader_.bits_left() < 16 + 1 + 5 + 1) {
    return std::nullopt;  // clean end of stream
  }
  if (reader_.get_bits(16) != kRefFrameSync) {
    throw RefDecodeError("ref decoder: lost frame sync");
  }
  const bool inter_frame = reader_.get_bit();
  const int qp = static_cast<int>(reader_.get_bits(5));
  const bool deblock = reader_.get_bit();
  if (qp < kRefMinQp || qp > kRefMaxQp) {
    throw RefDecodeError("ref decoder: qp out of range");
  }
  if (first_frame_ && inter_frame) {
    throw RefDecodeError("ref decoder: first frame must be intra");
  }

  RefPicture out = fresh_picture();
  if (version_ == 2) {
    decode_frame_slices(out, qp, inter_frame);
  } else {
    decode_frame_v1(out, qp, inter_frame);
  }
  finish_frame(out, qp, deblock);
  return out;
}

std::optional<RefPicture> RefDecoder::decode_frame_resync() {
  // The normative recovery rules (docs/RESILIENCE.md), implemented here
  // from the text and nowhere shared with codec::Decoder: a frame header
  // that fails any check emits nothing and the cursor scans forward from
  // the byte after the sync position; slice-directory damage is handled by
  // decode_frame_slices_resync (which emits a partially concealed frame).
  while (true) {
    reader_.align();
    if (reader_.bits_left() < 16 + 1 + 5 + 1) {
      return std::nullopt;  // clean end of stream
    }
    const std::size_t frame_start = reader_.bit_pos / 8;
    const std::uint32_t sync =
        static_cast<std::uint32_t>(reader_.get_bits(16));
    const bool inter_frame = reader_.get_bit();
    const int qp = static_cast<int>(reader_.get_bits(5));
    const bool deblock = reader_.get_bit();
    if (sync != kRefFrameSync || qp < kRefMinQp || qp > kRefMaxQp ||
        (first_frame_ && inter_frame)) {
      ++resync_skips_;
      if (!find_restart(frame_start + 1)) {
        return std::nullopt;
      }
      continue;
    }
    // Header validated ⇒ the frame will be emitted (directory damage only
    // conceals), so it can serve as a reference: clear first_frame_ before
    // any scan inside decode_frame_slices_resync rejects inter headers.
    first_frame_ = false;
    RefPicture out = fresh_picture();
    decode_frame_slices_resync(out, qp, inter_frame);
    finish_frame(out, qp, deblock);
    return out;
  }
}

std::vector<RefPicture> RefDecoder::decode_all() {
  std::vector<RefPicture> frames;
  while (auto frame = decode_frame()) {
    frames.push_back(std::move(*frame));
  }
  return frames;
}

void RefDecoder::decode_frame_v1(RefPicture& out, int qp, bool inter_frame) {
  last_frame_slices_ = 1;
  // No slice boundaries: corruption anywhere in the frame is a hard error.
  if (!decode_rows(reader_, out, qp, inter_frame, 0, mbs_y_,
                   /*first_row=*/0) ||
      reader_.exhausted) {
    throw RefDecodeError("ref decoder: corrupt frame");
  }
}

void RefDecoder::decode_frame_slices(RefPicture& out, int qp,
                                     bool inter_frame) {
  reader_.align();
  const int slice_count = static_cast<int>(reader_.get_bits(8));
  if (reader_.exhausted || slice_count < 1 || slice_count > mbs_y_) {
    throw RefDecodeError("ref decoder: invalid slice count");
  }

  // Walk the directory: per slice a sync word, its index, its first MB row,
  // and the byte length of its aligned payload.
  struct Slice {
    int first_row = 0;
    int end_row = 0;
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };
  std::vector<Slice> slices(static_cast<std::size_t>(slice_count));
  for (int s = 0; s < slice_count; ++s) {
    Slice& entry = slices[static_cast<std::size_t>(s)];
    reader_.align();
    const std::uint32_t sync =
        static_cast<std::uint32_t>(reader_.get_bits(16));
    const int index = static_cast<int>(reader_.get_bits(8));
    const int first_row = static_cast<int>(reader_.get_bits(16));
    const std::uint64_t payload_bytes = reader_.get_bits(32);
    if (reader_.exhausted || sync != kRefSliceSync || index != s) {
      throw RefDecodeError("ref decoder: lost slice sync");
    }
    const int prev_first =
        s > 0 ? slices[static_cast<std::size_t>(s) - 1].first_row : 0;
    if (first_row >= mbs_y_ ||
        (s == 0 ? first_row != 0 : first_row <= prev_first)) {
      throw RefDecodeError("ref decoder: invalid slice row layout");
    }
    if (payload_bytes > reader_.bits_left() / 8) {
      throw RefDecodeError("ref decoder: truncated slice payload");
    }
    entry.first_row = first_row;
    entry.offset = reader_.bit_pos / 8;  // aligned above
    entry.bytes = static_cast<std::size_t>(payload_bytes);
    reader_.skip_bits(entry.bytes * 8);
  }
  for (int s = 0; s < slice_count; ++s) {
    slices[static_cast<std::size_t>(s)].end_row =
        s + 1 < slice_count
            ? slices[static_cast<std::size_t>(s) + 1].first_row
            : mbs_y_;
  }

  // Decode every payload serially from its own cursor; a payload is good
  // when its rows decode and only alignment padding (< 8 bits) remains.
  // Bad payloads are concealed: the region copies the reference and its
  // vectors read as zero.
  for (const Slice& entry : slices) {
    BitCursor bc;
    bc.data = data_.data() + entry.offset;
    bc.size = entry.bytes;
    const bool ok = decode_rows(bc, out, qp, inter_frame, entry.first_row,
                                entry.end_row, entry.first_row) &&
                    bc.bits_left() < 8;
    if (!ok) {
      conceal_rows(out, entry.first_row, entry.end_row);
      ++concealed_slices_;
    }
  }
  last_frame_slices_ = slice_count;
}

void RefDecoder::decode_frame_slices_resync(RefPicture& out, int qp,
                                            bool inter_frame) {
  reader_.align();
  const std::size_t count_pos = reader_.bit_pos / 8;
  const int slice_count = static_cast<int>(reader_.get_bits(8));
  if (reader_.exhausted || slice_count < 1 || slice_count > mbs_y_) {
    // Unusable slice count: the whole picture is concealed (one
    // concealment) and decoding scans on from the byte after the count.
    conceal_rows(out, 0, mbs_y_);
    concealed_slices_ += 1;
    last_frame_slices_ = 1;
    ++resync_skips_;
    find_restart(count_pos + 1);
    return;
  }

  // Walk the directory, stopping at the first entry that fails an
  // invariant instead of throwing.
  std::vector<int> first_rows;
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> lengths;
  int valid = slice_count;
  std::size_t damage_pos = 0;
  for (int s = 0; s < slice_count; ++s) {
    reader_.align();
    const std::size_t entry_pos = reader_.bit_pos / 8;
    const std::uint32_t sync =
        static_cast<std::uint32_t>(reader_.get_bits(16));
    const int index = static_cast<int>(reader_.get_bits(8));
    const int first_row = static_cast<int>(reader_.get_bits(16));
    const std::uint64_t payload_bytes = reader_.get_bits(32);
    const int prev_first = s > 0 ? first_rows.back() : 0;
    if (reader_.exhausted || sync != kRefSliceSync || index != s ||
        first_row >= mbs_y_ ||
        (s == 0 ? first_row != 0 : first_row <= prev_first) ||
        payload_bytes > reader_.bits_left() / 8) {
      valid = s;
      damage_pos = entry_pos;
      break;
    }
    first_rows.push_back(first_row);
    offsets.push_back(reader_.bit_pos / 8);
    lengths.push_back(static_cast<std::size_t>(payload_bytes));
    reader_.skip_bits(payload_bytes * 8);
  }

  // Decode every slice whose row extent is known: all of them when the
  // directory is intact, the first valid-1 when entry `valid` is damaged
  // (the last parsed entry's extent would depend on the damaged one).
  const bool intact = valid == slice_count;
  const int decodable = intact ? slice_count : std::max(0, valid - 1);
  for (int s = 0; s < decodable; ++s) {
    const int end_row = s + 1 < slice_count
                            ? (s + 1 < static_cast<int>(first_rows.size())
                                   ? first_rows[static_cast<std::size_t>(s) + 1]
                                   : mbs_y_)
                            : mbs_y_;
    BitCursor bc;
    bc.data = data_.data() + offsets[static_cast<std::size_t>(s)];
    bc.size = lengths[static_cast<std::size_t>(s)];
    const bool ok =
        decode_rows(bc, out, qp, inter_frame,
                    first_rows[static_cast<std::size_t>(s)], end_row,
                    first_rows[static_cast<std::size_t>(s)]) &&
        bc.bits_left() < 8;
    if (!ok) {
      conceal_rows(out, first_rows[static_cast<std::size_t>(s)], end_row);
      ++concealed_slices_;
    }
  }
  last_frame_slices_ = slice_count;
  if (intact) {
    return;
  }
  // Conceal the unreachable remainder — from the last parsed entry's first
  // row (all rows when the very first entry is damaged) — counted as the
  // slices it replaces, then scan from the byte after the damaged entry.
  const int conceal_from = valid >= 1 ? first_rows.back() : 0;
  conceal_rows(out, conceal_from, mbs_y_);
  concealed_slices_ +=
      static_cast<std::uint64_t>(slice_count - std::max(0, valid - 1));
  ++resync_skips_;
  find_restart(damage_pos + 1);
}

bool RefDecoder::find_restart(std::size_t from_byte) {
  // Resynchronisation scan (normative, docs/RESILIENCE.md): an offset is a
  // restart point iff the frame sync, header fields, slice count and the
  // complete slice directory (hopping payload lengths) all validate.
  for (std::size_t o = from_byte; o + 4 <= data_.size(); ++o) {
    if (data_[o] != 0x7E || data_[o + 1] != 0x5A) {
      continue;
    }
    const std::uint8_t fields = data_[o + 2];
    const bool inter = (fields & 0x80u) != 0;
    const int qp = (fields >> 2) & 0x1F;
    if (qp < kRefMinQp || qp > kRefMaxQp) {
      continue;
    }
    if (first_frame_ && inter) {
      continue;  // before any emitted frame the restart must be intra
    }
    const int count = data_[o + 3];
    if (count < 1 || count > mbs_y_) {
      continue;
    }
    std::size_t p = o + 4;
    bool ok = true;
    int prev_first = 0;
    for (int s = 0; s < count; ++s) {
      if (data_.size() - p < 9) {
        ok = false;
        break;
      }
      const std::uint32_t sync =
          (static_cast<std::uint32_t>(data_[p]) << 8) | data_[p + 1];
      const int first_row =
          (static_cast<int>(data_[p + 3]) << 8) | data_[p + 4];
      const std::size_t len =
          (static_cast<std::size_t>(data_[p + 5]) << 24) |
          (static_cast<std::size_t>(data_[p + 6]) << 16) |
          (static_cast<std::size_t>(data_[p + 7]) << 8) |
          static_cast<std::size_t>(data_[p + 8]);
      if (sync != kRefSliceSync || data_[p + 2] != s || first_row >= mbs_y_ ||
          (s == 0 ? first_row != 0 : first_row <= prev_first) ||
          len > data_.size() - (p + 9)) {
        ok = false;
        break;
      }
      prev_first = first_row;
      p += 9 + len;
    }
    if (!ok) {
      continue;
    }
    reader_.bit_pos = o * 8;
    reader_.exhausted = false;
    return true;
  }
  reader_.bit_pos = reader_.bit_size();
  return false;
}

bool RefDecoder::decode_rows(BitCursor& bc, RefPicture& out, int qp,
                             bool inter_frame, int row_begin, int row_end,
                             int first_row) {
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x_; ++bx) {
      if (!inter_frame) {
        if (!decode_intra_mb(bc, out, bx, by, qp)) {
          return false;
        }
        continue;
      }
      const bool skip = bc.get_bit();  // COD
      if (skip) {
        copy_skip_mb(out, bx, by);
        coded_mvx_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
        coded_mvy_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
        continue;
      }
      const bool intra = bc.get_bit();
      if (intra) {
        if (!decode_intra_mb(bc, out, bx, by, qp)) {
          return false;
        }
        continue;
      }
      int px = 0;
      int py = 0;
      predicted_mv(bx, by, first_row, px, py);
      const int mvx = px + read_se(bc);
      const int mvy = py + read_se(bc);
      if (!mv_in_reference(mvx, mvy, bx * kMacroblock, by * kMacroblock)) {
        return false;  // corrupt MVD pointing outside the reference margin
      }
      if (!decode_inter_mb(bc, out, bx, by, qp, mvx, mvy)) {
        return false;
      }
      coded_mvx_[static_cast<std::size_t>(by) * mbs_x_ + bx] = mvx;
      coded_mvy_[static_cast<std::size_t>(by) * mbs_x_ + bx] = mvy;
      if (bc.exhausted) {
        return false;  // truncated macroblock data
      }
    }
  }
  return !bc.exhausted;
}

void RefDecoder::predicted_mv(int bx, int by, int first_row, int& px,
                              int& py) const {
  // H.263 §6.1.1 median of left, above, above-right; outside-picture (or,
  // for slices, outside-slice) candidates are zero, except that in a
  // slice's first row the left candidate is used directly.
  auto mv_at = [&](int x, int y, int& ox, int& oy) {
    if (x < 0 || x >= mbs_x_ || y < 0 || y >= mbs_y_) {
      ox = 0;
      oy = 0;
      return;
    }
    const std::size_t i =
        static_cast<std::size_t>(y) * static_cast<std::size_t>(mbs_x_) +
        static_cast<std::size_t>(x);
    ox = coded_mvx_[i];
    oy = coded_mvy_[i];
  };
  int lx = 0;
  int ly = 0;
  mv_at(bx - 1, by, lx, ly);
  if (by == first_row) {
    px = lx;
    py = ly;
    return;
  }
  int ax = 0;
  int ay = 0;
  int rx = 0;
  int ry = 0;
  mv_at(bx, by - 1, ax, ay);
  mv_at(bx + 1, by - 1, rx, ry);
  auto median3 = [](int a, int b, int c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  px = median3(lx, ax, rx);
  py = median3(ly, ay, ry);
}

bool RefDecoder::mv_in_reference(int mvx, int mvy, int x, int y) const {
  const int ix = (mvx - (mvx & 1)) >> 1;
  const int iy = (mvy - (mvy & 1)) >> 1;
  return x + ix >= -kRefMvMargin &&
         x + ix + kMacroblock <= width_ + kRefMvMargin &&
         y + iy >= -kRefMvMargin &&
         y + iy + kMacroblock <= height_ + kRefMvMargin;
}

void RefDecoder::conceal_rows(RefPicture& out, int row_begin, int row_end) {
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x_; ++bx) {
      copy_skip_mb(out, bx, by);
      coded_mvx_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
      coded_mvy_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
    }
  }
}

bool RefDecoder::decode_intra_mb(BitCursor& bc, RefPicture& out, int bx,
                                 int by, int qp) {
  const int x = bx * kMacroblock;
  const int y = by * kMacroblock;

  int dc[6];
  for (int& d : dc) {
    d = static_cast<int>(bc.get_bits(8));
  }
  const std::uint32_t cbp = static_cast<std::uint32_t>(bc.get_bits(6));

  int levels[6][kBlockSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_coeffs(bc, levels[b], /*skip_dc=*/true)) {
        return false;
      }
    }
  }

  // Blocks in Y00 Y10 Y01 Y11 Cb Cr order; intra DC is coded out of band at
  // a fixed step of 8 and the AC coefficients dequantize per H.263.
  auto reconstruct = [&](const int lv[kBlockSamples], int dc_level,
                         std::vector<std::uint8_t>& plane, int w, int px,
                         int py) {
    int coeffs[kBlockSamples];
    for (int i = 0; i < kBlockSamples; ++i) {
      coeffs[i] = ref_dequant_ac(static_cast<int>(lv[i]), qp);
    }
    coeffs[0] = dc_level * 8;
    int spatial[kBlockSamples];
    ref_inverse_dct(coeffs, spatial);
    for (int r = 0; r < kBlock; ++r) {
      for (int c = 0; c < kBlock; ++c) {
        plane[static_cast<std::size_t>(py + r) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(px + c)] =
            clamp_sample(spatial[r * kBlock + c]);
      }
    }
  };
  reconstruct(levels[0], dc[0], out.y, width_, x, y);
  reconstruct(levels[1], dc[1], out.y, width_, x + kBlock, y);
  reconstruct(levels[2], dc[2], out.y, width_, x, y + kBlock);
  reconstruct(levels[3], dc[3], out.y, width_, x + kBlock, y + kBlock);
  reconstruct(levels[4], dc[4], out.cb, width_ / 2, x / 2, y / 2);
  reconstruct(levels[5], dc[5], out.cr, width_ / 2, x / 2, y / 2);
  coded_mvx_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
  coded_mvy_[static_cast<std::size_t>(by) * mbs_x_ + bx] = 0;
  return true;
}

bool RefDecoder::decode_inter_mb(BitCursor& bc, RefPicture& out, int bx,
                                 int by, int qp, int mvx, int mvy) {
  const int x = bx * kMacroblock;
  const int y = by * kMacroblock;

  const std::uint32_t cbp = static_cast<std::uint32_t>(bc.get_bits(6));
  int levels[6][kBlockSamples] = {};
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      if (!decode_coeffs(bc, levels[b], /*skip_dc=*/false)) {
        return false;
      }
    }
  }

  // Luma prediction: half-pel phases from the vector's low bits, bilinear
  // H.263 rounding, sampled from the previous reconstruction.
  std::vector<std::uint8_t> pred_y(kMacroblock * kMacroblock);
  const int phase_h = mvx & 1;
  const int phase_v = mvy & 1;
  const int rx = x + ((mvx - phase_h) >> 1);
  const int ry = y + ((mvy - phase_v) >> 1);
  for (int row = 0; row < kMacroblock; ++row) {
    for (int col = 0; col < kMacroblock; ++col) {
      const int a = sample(ref_.y, width_, height_, rx + col, ry + row);
      int value;
      if (phase_h == 0 && phase_v == 0) {
        value = a;
      } else if (phase_v == 0) {
        value =
            (a + sample(ref_.y, width_, height_, rx + col + 1, ry + row) + 1) >>
            1;
      } else if (phase_h == 0) {
        value =
            (a + sample(ref_.y, width_, height_, rx + col, ry + row + 1) + 1) >>
            1;
      } else {
        value = (a + sample(ref_.y, width_, height_, rx + col + 1, ry + row) +
                 sample(ref_.y, width_, height_, rx + col, ry + row + 1) +
                 sample(ref_.y, width_, height_, rx + col + 1, ry + row + 1) +
                 2) >>
                2;
      }
      pred_y[static_cast<std::size_t>(row) * kMacroblock +
             static_cast<std::size_t>(col)] =
          static_cast<std::uint8_t>(value);
    }
  }

  // Chroma vector: halve each component rounding any fractional chroma
  // position to the half-sample grid, then sample half-pel.
  auto chroma_component = [](int v) {
    const int sign = v < 0 ? -1 : 1;
    const int a = v < 0 ? -v : v;
    return sign * ((a >> 2) * 2 + ((a & 3) != 0 ? 1 : 0));
  };
  const int cmvx = chroma_component(mvx);
  const int cmvy = chroma_component(mvy);
  const int cw = width_ / 2;
  const int ch = height_ / 2;
  std::vector<std::uint8_t> pred_cb(kBlockSamples);
  std::vector<std::uint8_t> pred_cr(kBlockSamples);
  for (int row = 0; row < kBlock; ++row) {
    for (int col = 0; col < kBlock; ++col) {
      const int hx = (x / 2 + col) * 2 + cmvx;
      const int hy = (y / 2 + row) * 2 + cmvy;
      pred_cb[static_cast<std::size_t>(row) * kBlock + col] =
          sample_halfpel(ref_.cb, cw, ch, hx, hy);
      pred_cr[static_cast<std::size_t>(row) * kBlock + col] =
          sample_halfpel(ref_.cr, cw, ch, hx, hy);
    }
  }

  auto reconstruct = [&](const int lv[kBlockSamples],
                         const std::vector<std::uint8_t>& pred,
                         int pred_stride, int pred_ox, int pred_oy,
                         std::vector<std::uint8_t>& plane, int w, int px,
                         int py) {
    int coeffs[kBlockSamples];
    for (int i = 0; i < kBlockSamples; ++i) {
      coeffs[i] = ref_dequant_ac(static_cast<int>(lv[i]), qp);
    }
    int residual[kBlockSamples];
    ref_inverse_dct(coeffs, residual);
    for (int r = 0; r < kBlock; ++r) {
      for (int c = 0; c < kBlock; ++c) {
        const int p =
            pred[static_cast<std::size_t>(pred_oy + r) * pred_stride +
                 static_cast<std::size_t>(pred_ox + c)];
        plane[static_cast<std::size_t>(py + r) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(px + c)] =
            clamp_sample(p + residual[r * kBlock + c]);
      }
    }
  };
  reconstruct(levels[0], pred_y, kMacroblock, 0, 0, out.y, width_, x, y);
  reconstruct(levels[1], pred_y, kMacroblock, kBlock, 0, out.y, width_,
              x + kBlock, y);
  reconstruct(levels[2], pred_y, kMacroblock, 0, kBlock, out.y, width_, x,
              y + kBlock);
  reconstruct(levels[3], pred_y, kMacroblock, kBlock, kBlock, out.y, width_,
              x + kBlock, y + kBlock);
  reconstruct(levels[4], pred_cb, kBlock, 0, 0, out.cb, cw, x / 2, y / 2);
  reconstruct(levels[5], pred_cr, kBlock, 0, 0, out.cr, cw, x / 2, y / 2);
  return true;
}

void RefDecoder::copy_skip_mb(RefPicture& out, int bx, int by) {
  const int x = bx * kMacroblock;
  const int y = by * kMacroblock;
  for (int row = 0; row < kMacroblock; ++row) {
    for (int col = 0; col < kMacroblock; ++col) {
      out.y[static_cast<std::size_t>(y + row) *
                static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x + col)] =
          ref_.y[static_cast<std::size_t>(y + row) *
                     static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x + col)];
    }
  }
  const int cw = width_ / 2;
  for (int row = 0; row < kBlock; ++row) {
    for (int col = 0; col < kBlock; ++col) {
      const std::size_t i =
          static_cast<std::size_t>(y / 2 + row) * static_cast<std::size_t>(cw) +
          static_cast<std::size_t>(x / 2 + col);
      out.cb[i] = ref_.cb[i];
      out.cr[i] = ref_.cr[i];
    }
  }
}

}  // namespace acbm::codec
