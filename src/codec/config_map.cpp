#include "codec/config_map.hpp"

#include <cstdint>
#include <vector>

#include "util/kv.hpp"

namespace acbm::codec {

namespace {

/// One table drives parsing, rendering and usage text, so the three views
/// of the grammar cannot drift apart. Numeric payloads (int/bool included)
/// travel as double through get/set; kMode is the one string-valued key and
/// is handled inline.
struct KeySpec {
  enum class Kind { kInt, kDouble, kBool, kMode };

  const char* name;
  Kind kind;
  double min_value;
  double max_value;
  const char* help;
  double (*get)(const EncoderConfig&);
  void (*set)(EncoderConfig&, double);
};

constexpr double kGet = 0.0;  // silences unused warnings in kMode entries
double mode_get(const EncoderConfig&) { return kGet; }
void mode_set(EncoderConfig&, double) {}

const std::vector<KeySpec>& key_table() {
  static const std::vector<KeySpec> keys = {
      {"qp", KeySpec::Kind::kInt, 1, 31, "quantiser",
       [](const EncoderConfig& c) { return double(c.qp); },
       [](EncoderConfig& c, double v) { c.qp = int(v); }},
      {"range", KeySpec::Kind::kInt, 1, 23,
       "integer search range p (paper: 15; bounded by the plane border)",
       [](const EncoderConfig& c) { return double(c.search_range); },
       [](EncoderConfig& c, double v) { c.search_range = int(v); }},
      {"halfpel", KeySpec::Kind::kBool, 0, 1,
       "half-pel refinement + compensation",
       [](const EncoderConfig& c) { return c.half_pel ? 1.0 : 0.0; },
       [](EncoderConfig& c, double v) { c.half_pel = v != 0.0; }},
      {"intra_period", KeySpec::Kind::kInt, 0, 100000,
       "intra refresh period (0 = only frame 0)",
       [](const EncoderConfig& c) { return double(c.intra_period); },
       [](EncoderConfig& c, double v) { c.intra_period = int(v); }},
      {"me_lambda", KeySpec::Kind::kDouble, 0, 1e6,
       "lambda for rate-aware ME (0 = pure SAD, paper)",
       [](const EncoderConfig& c) { return c.me_lambda; },
       [](EncoderConfig& c, double v) { c.me_lambda = v; }},
      {"intra_bias", KeySpec::Kind::kInt, -65536, 65536,
       "TMN INTRA decision bias",
       [](const EncoderConfig& c) { return double(c.intra_bias); },
       [](EncoderConfig& c, double v) { c.intra_bias = int(v); }},
      {"skip", KeySpec::Kind::kBool, 0, 1,
       "emit COD=1 for zero-MV zero-CBP macroblocks",
       [](const EncoderConfig& c) { return c.allow_skip ? 1.0 : 0.0; },
       [](EncoderConfig& c, double v) { c.allow_skip = v != 0.0; }},
      {"deblock", KeySpec::Kind::kBool, 0, 1,
       "in-loop Annex-J deblocking filter",
       [](const EncoderConfig& c) { return c.deblock ? 1.0 : 0.0; },
       [](EncoderConfig& c, double v) { c.deblock = v != 0.0; }},
      {"slices", KeySpec::Kind::kInt, 1, kMaxSlices,
       "entropy-coding slices per frame (1 = legacy ACV1)",
       [](const EncoderConfig& c) { return double(c.slices); },
       [](EncoderConfig& c, double v) { c.slices = int(v); }},
      {"mode", KeySpec::Kind::kMode, 0, 0,
       "macroblock mode decision: heuristic|rd", mode_get, mode_set},
      {"threads", KeySpec::Kind::kInt, 0, 4096,
       "pipeline worker threads (0 = all cores; bit-exact at any count)",
       [](const EncoderConfig& c) { return double(c.parallel.threads); },
       [](EncoderConfig& c, double v) { c.parallel.threads = int(v); }},
      {"fps", KeySpec::Kind::kInt, 1, 65535,
       "frame-rate numerator (sequence header)",
       [](const EncoderConfig& c) { return double(c.fps_num); },
       [](EncoderConfig& c, double v) { c.fps_num = int(v); }},
      {"fps_den", KeySpec::Kind::kInt, 1, 65535,
       "frame-rate denominator",
       [](const EncoderConfig& c) { return double(c.fps_den); },
       [](EncoderConfig& c, double v) { c.fps_den = int(v); }},
  };
  return keys;
}

std::string default_text(const KeySpec& key) {
  static const EncoderConfig defaults;
  switch (key.kind) {
    case KeySpec::Kind::kInt:
      return std::to_string(
          static_cast<std::int64_t>(key.get(defaults)));
    case KeySpec::Kind::kDouble:
      return util::format_double(key.get(defaults));
    case KeySpec::Kind::kBool:
      return key.get(defaults) != 0.0 ? "1" : "0";
    case KeySpec::Kind::kMode:
      return defaults.mode_decision == ModeDecision::kRateDistortion
                 ? "rd"
                 : "heuristic";
  }
  return {};
}

}  // namespace

std::string config_spec_usage() {
  std::string out =
      "encoder config grammar: key=val[,key=val...] over the keys\n";
  for (const KeySpec& key : key_table()) {
    out += "  ";
    out += key.name;
    out += '=';
    out += default_text(key);
    switch (key.kind) {
      case KeySpec::Kind::kInt:
        out += " (" +
               std::to_string(static_cast<std::int64_t>(key.min_value)) +
               ".." +
               std::to_string(static_cast<std::int64_t>(key.max_value)) +
               ")";
        break;
      case KeySpec::Kind::kDouble:
        out += " (" + util::format_double(key.min_value) + ".." +
               util::format_double(key.max_value) + ")";
        break;
      case KeySpec::Kind::kBool:
        out += " (0|1)";
        break;
      case KeySpec::Kind::kMode:
        out += " (heuristic|rd)";
        break;
    }
    out += ": ";
    out += key.help;
    out += '\n';
  }
  return out;
}

EncoderConfig encoder_config_from_spec(std::string_view spec,
                                       const EncoderConfig& base) {
  EncoderConfig config = base;
  for (const util::KeyValue& pair : util::parse_kv_list(spec)) {
    const KeySpec* key = nullptr;
    for (const KeySpec& candidate : key_table()) {
      if (pair.first == candidate.name) {
        key = &candidate;
        break;
      }
    }
    if (key == nullptr) {
      throw util::SpecError("encoder config: unknown key \"" + pair.first +
                            "\"; valid keys:\n" + config_spec_usage());
    }
    const std::string what = "encoder config key " + pair.first;
    switch (key->kind) {
      case KeySpec::Kind::kInt: {
        const std::int64_t value =
            util::parse_int_strict(pair.second, what);
        if (value < static_cast<std::int64_t>(key->min_value) ||
            value > static_cast<std::int64_t>(key->max_value)) {
          throw util::SpecError(
              "encoder config: " + pair.first + '=' + pair.second +
              " out of range [" +
              std::to_string(static_cast<std::int64_t>(key->min_value)) +
              ", " +
              std::to_string(static_cast<std::int64_t>(key->max_value)) +
              ']');
        }
        key->set(config, static_cast<double>(value));
        break;
      }
      case KeySpec::Kind::kDouble: {
        const double value = util::parse_double_strict(pair.second, what);
        if (!(value >= key->min_value && value <= key->max_value)) {
          throw util::SpecError("encoder config: " + pair.first + '=' +
                                pair.second + " out of range [" +
                                util::format_double(key->min_value) + ", " +
                                util::format_double(key->max_value) + ']');
        }
        key->set(config, value);
        break;
      }
      case KeySpec::Kind::kBool:
        key->set(config,
                 util::parse_bool_strict(pair.second, what) ? 1.0 : 0.0);
        break;
      case KeySpec::Kind::kMode:
        if (pair.second == "heuristic") {
          config.mode_decision = ModeDecision::kHeuristic;
        } else if (pair.second == "rd") {
          config.mode_decision = ModeDecision::kRateDistortion;
        } else {
          throw util::SpecError("encoder config: mode=" + pair.second +
                                " is not one of {heuristic, rd}");
        }
        break;
    }
  }
  return config;
}

namespace {

/// The decoder table mirrors the encoder's KeySpec shape, with `conceal`
/// as the one enum-valued key (handled inline like the encoder's kMode).
/// All expect_* keys share one int range: -1 (unchecked) .. 2^31.
struct DecoderKeySpec {
  enum class Kind { kInt, kConceal };

  const char* name;
  Kind kind;
  std::int64_t min_value;
  std::int64_t max_value;
  const char* help;
  std::int64_t (*get)(const DecoderConfig&);
  void (*set)(DecoderConfig&, std::int64_t);
};

const std::vector<DecoderKeySpec>& decoder_key_table() {
  constexpr std::int64_t kExpectMax = std::int64_t{1} << 31;
  static const std::vector<DecoderKeySpec> keys = {
      {"threads", DecoderKeySpec::Kind::kInt, 0, 4096,
       "slice-decode worker threads (0 = all cores; output identical at "
       "any count)",
       [](const DecoderConfig& c) { return std::int64_t{c.threads}; },
       [](DecoderConfig& c, std::int64_t v) {
         c.threads = static_cast<int>(v);
       }},
      {"conceal", DecoderKeySpec::Kind::kConceal, 0, 0,
       "concealment policy: slice (payload conceal, directory throws) | "
       "resync (directory/frame-header recovery too) | off (strict)",
       [](const DecoderConfig&) { return std::int64_t{0}; },
       [](DecoderConfig&, std::int64_t) {}},
      {"expect_width", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert luma width (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_width; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_width = v; }},
      {"expect_height", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert luma height (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_height; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_height = v; }},
      {"expect_fps", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert integer frame rate (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_fps; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_fps = v; }},
      {"expect_frames", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert total decoded frames at end of stream (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_frames; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_frames = v; }},
      {"expect_slices", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert slices per frame, every frame (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_slices; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_slices = v; }},
      {"expect_version", DecoderKeySpec::Kind::kInt, -1, kExpectMax,
       "assert bitstream revision 1|2 (-1 = unchecked)",
       [](const DecoderConfig& c) { return c.expect_version; },
       [](DecoderConfig& c, std::int64_t v) { c.expect_version = v; }},
  };
  return keys;
}

const char* conceal_name(Concealment conceal) {
  switch (conceal) {
    case Concealment::kSlice:
      return "slice";
    case Concealment::kResync:
      return "resync";
    case Concealment::kOff:
      return "off";
  }
  return "?";
}

}  // namespace

std::string decoder_config_spec_usage() {
  static const DecoderConfig defaults;
  std::string out =
      "decoder config grammar: key=val[,key=val...] over the keys\n";
  for (const DecoderKeySpec& key : decoder_key_table()) {
    out += "  ";
    out += key.name;
    out += '=';
    if (key.kind == DecoderKeySpec::Kind::kConceal) {
      out += conceal_name(defaults.conceal);
      out += " (slice|resync|off)";
    } else {
      out += std::to_string(key.get(defaults));
      out += " (" + std::to_string(key.min_value) + ".." +
             std::to_string(key.max_value) + ")";
    }
    out += ": ";
    out += key.help;
    out += '\n';
  }
  return out;
}

DecoderConfig decoder_config_from_spec(std::string_view spec,
                                       const DecoderConfig& base) {
  DecoderConfig config = base;
  for (const util::KeyValue& pair : util::parse_kv_list(spec)) {
    const DecoderKeySpec* key = nullptr;
    for (const DecoderKeySpec& candidate : decoder_key_table()) {
      if (pair.first == candidate.name) {
        key = &candidate;
        break;
      }
    }
    if (key == nullptr) {
      throw util::SpecError("decoder config: unknown key \"" + pair.first +
                            "\"; valid keys:\n" + decoder_config_spec_usage());
    }
    if (key->kind == DecoderKeySpec::Kind::kConceal) {
      if (pair.second == "slice") {
        config.conceal = Concealment::kSlice;
      } else if (pair.second == "resync") {
        config.conceal = Concealment::kResync;
      } else if (pair.second == "off") {
        config.conceal = Concealment::kOff;
      } else {
        throw util::SpecError("decoder config: conceal=" + pair.second +
                              " is not one of {slice, resync, off}");
      }
      continue;
    }
    const std::int64_t value = util::parse_int_strict(
        pair.second, "decoder config key " + pair.first);
    if (value < key->min_value || value > key->max_value) {
      throw util::SpecError(
          "decoder config: " + pair.first + '=' + pair.second +
          " out of range [" + std::to_string(key->min_value) + ", " +
          std::to_string(key->max_value) + ']');
    }
    key->set(config, value);
  }
  return config;
}

std::string to_spec(const DecoderConfig& config) {
  std::string out;
  for (const DecoderKeySpec& key : decoder_key_table()) {
    if (!out.empty()) {
      out += ',';
    }
    out += key.name;
    out += '=';
    if (key.kind == DecoderKeySpec::Kind::kConceal) {
      out += conceal_name(config.conceal);
    } else {
      out += std::to_string(key.get(config));
    }
  }
  return out;
}

std::string to_spec(const EncoderConfig& config) {
  std::string out;
  for (const KeySpec& key : key_table()) {
    if (!out.empty()) {
      out += ',';
    }
    out += key.name;
    out += '=';
    switch (key.kind) {
      case KeySpec::Kind::kInt:
        out += std::to_string(static_cast<std::int64_t>(key.get(config)));
        break;
      case KeySpec::Kind::kDouble:
        out += util::format_double(key.get(config));
        break;
      case KeySpec::Kind::kBool:
        out += key.get(config) != 0.0 ? "1" : "0";
        break;
      case KeySpec::Kind::kMode:
        out += config.mode_decision == ModeDecision::kRateDistortion
                   ? "rd"
                   : "heuristic";
        break;
    }
  }
  return out;
}

}  // namespace acbm::codec
