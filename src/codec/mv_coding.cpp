#include "codec/mv_coding.hpp"

#include "me/cost.hpp"
#include "util/expgolomb.hpp"

namespace acbm::codec {

void encode_mvd(util::BitWriter& bw, me::Mv mv, me::Mv pred) {
  const me::Mv d = mv - pred;
  util::put_se(bw, d.x);
  util::put_se(bw, d.y);
}

me::Mv decode_mvd(util::BitReader& br, me::Mv pred) {
  const std::int32_t dx = util::get_se(br);
  const std::int32_t dy = util::get_se(br);
  return {pred.x + dx, pred.y + dy};
}

std::uint32_t mvd_bits(me::Mv mv, me::Mv pred) {
  return me::mv_rate_bits(mv, pred);
}

}  // namespace acbm::codec
