#include "codec/block_codec.hpp"

#include <algorithm>

#include "codec/quant.hpp"

namespace acbm::codec {

namespace {

std::uint8_t clamp_sample(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

}  // namespace

std::uint8_t encode_intra_block(const std::uint8_t* src, int src_stride,
                                std::int16_t levels[kDctSamples], int qp) {
  std::int16_t samples[kDctSamples];
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      samples[y * kDctSize + x] =
          src[static_cast<std::ptrdiff_t>(y) * src_stride + x];
    }
  }
  double coeffs[kDctSamples];
  forward_dct8x8(samples, coeffs);
  quantize_block(coeffs, levels, qp, /*intra=*/true);
  return quant_intra_dc(coeffs[0]);
}

void reconstruct_intra_block(const std::int16_t levels[kDctSamples],
                             std::uint8_t dc_level, int qp, std::uint8_t* dst,
                             int dst_stride) {
  std::int16_t coeffs[kDctSamples];
  dequantize_block(levels, coeffs, qp, /*intra=*/true);
  coeffs[0] = dequant_intra_dc(dc_level);
  std::int16_t spatial[kDctSamples];
  inverse_dct8x8_to_int(coeffs, spatial, /*limit=*/512);
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      dst[static_cast<std::ptrdiff_t>(y) * dst_stride + x] =
          clamp_sample(spatial[y * kDctSize + x]);
    }
  }
}

void encode_inter_block(const std::uint8_t* src, int src_stride,
                        const std::uint8_t* pred, int pred_stride,
                        std::int16_t levels[kDctSamples], int qp) {
  std::int16_t residual[kDctSamples];
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      residual[y * kDctSize + x] = static_cast<std::int16_t>(
          static_cast<int>(src[static_cast<std::ptrdiff_t>(y) * src_stride + x]) -
          static_cast<int>(
              pred[static_cast<std::ptrdiff_t>(y) * pred_stride + x]));
    }
  }
  double coeffs[kDctSamples];
  forward_dct8x8(residual, coeffs);
  quantize_block(coeffs, levels, qp, /*intra=*/false);
}

void reconstruct_inter_block(const std::int16_t levels[kDctSamples],
                             const std::uint8_t* pred, int pred_stride, int qp,
                             std::uint8_t* dst, int dst_stride) {
  std::int16_t coeffs[kDctSamples];
  dequantize_block(levels, coeffs, qp, /*intra=*/false);
  std::int16_t residual[kDctSamples];
  inverse_dct8x8_to_int(coeffs, residual, /*limit=*/512);
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      dst[static_cast<std::ptrdiff_t>(y) * dst_stride + x] = clamp_sample(
          static_cast<int>(
              pred[static_cast<std::ptrdiff_t>(y) * pred_stride + x]) +
          residual[y * kDctSize + x]);
    }
  }
}

}  // namespace acbm::codec
