#pragma once
// The staged per-frame encoding pipeline behind codec::Encoder.
//
// Encoder::encode_frame used to be one ~90-line macroblock loop doing
// motion estimation, mode decision, entropy coding and reconstruction per
// block before moving to the next. This class separates those concerns into
// explicit stages run over the whole frame:
//
//   1. motion stage       — one EstimateResult per macroblock. Serial when
//                           ParallelConfig::threads == 1; otherwise
//                           row-parallel on a util::ThreadPool in WAVEFRONT
//                           order: block (bx, by) waits until row by−1 has
//                           finished block bx+1, so the spatial predictors
//                           PBM and the median predictor read (left, above,
//                           above-right in BlockContext::cur_field) are
//                           final before the read. Each worker thread owns
//                           a clone() of the caller's estimator; worker
//                           statistics are merged back into the primary via
//                           merge_stats() after every frame.
//   2. mode stage         — the TMN heuristic INTRA/INTER decision per
//                           macroblock (row-parallel, no dependencies).
//                           Rate–distortion mode decisions compare exact
//                           bit counts against the coded-field predictor
//                           chain, so in kRateDistortion mode the decision
//                           itself waits for stage 3 — but its candidate
//                           costs are precomputed by the plan stage below.
//   2.5 plan stage        — one Encoder::MbPlan per macroblock: DCT +
//                           quantisation of the block the chosen mode will
//                           transmit (both candidates plus all three
//                           candidate reconstructions/SSDs in RD mode).
//                           Every input — me_results_, use_intra_, source,
//                           reference — is fixed before the stage starts,
//                           so it is row-parallel with no dependencies.
//   3. entropy stage      — MVD coding + bit writing + reconstruction from
//                           the precomputed plans; the only work left here
//                           is what genuinely chains through the
//                           coded-field MV predictor. With
//                           EncoderConfig::slices == 1 this is the legacy
//                           serial raster scan straight into the stream
//                           writer; with slices == N the frame's macroblock
//                           rows split into N independently-predicted ACV2
//                           slices coded in parallel (see entropy_stage).
//
// FRAME-LEVEL PIPELINING (the service mode, built on the staging above):
// stages 1–2.5 read only the *previous* frame's reconstruction, stage 3
// writes the *current* one — so with the reference double-buffered
// (Encoder::recon_buf_), frame t+1's front half (motion/mode/plan) can run
// while frame t's back half (entropy + reconstruction) is still coding:
//
//      frame t   : [ME t   | mode | plan] [entropy+recon t  ]
//      frame t+1 :                  [ME t+1 | mode | plan] [entropy t+1]
//                                      ▲ row-readiness waits
//
// The handoff is row-granular, not whole-frame: stage 3 publishes each
// reconstructed macroblock row (border-extended) through a monotonic
// util::ReadyCounter, and frame t+1's ME row `by` parks until the rows its
// clamped search window can touch — ±search_range plus the half-pel
// interpolation sample — are published (rows_needed()). Everything an ME /
// plan read can observe is final before the read, so pipelined streams are
// byte-identical to the sequential path. In-loop deblocking is frame-global
// and rewrites rows after entropy, so with deblock enabled the pipeline
// degrades to whole-frame publication (still overlapped with the next
// frame's submission, just not row-granular).
//
// Admission rules (pump_locked) keep at most one front and one back in
// flight per session: front(f) needs front(f−1) done (fronts serialise: the
// estimator state, ME-field parity and ref binding are per-session
// singletons) and back(f−2) done (parity f&1 buffers free); back(f) needs
// front(f) done and back(f−1) done (the bitstream writer is strictly
// ordered). Backs are enqueued before fronts on the session's FIFO lane, so
// a task that parks on a reference row is always dispatched after the task
// that publishes it — the same dispatch-order argument that keeps the
// intra-frame wavefront deadlock-free, one level up.
//
// FAULT TOLERANCE (docs/FAULT_TOLERANCE.md is the contract):
//   * Shedding. A frame whose SubmitOptions deadline expires before its
//     front is dispatched, or that arrives past the admission queue_limit,
//     is resolved with a kTimeout/kOverloaded SessionError and REMOVED —
//     crucially, encode indices are assigned at front DISPATCH, not at
//     submission, so a shed frame never consumes an index. (If it did, the
//     encoder would reference frame f−2 where a decoder of the emitted
//     stream references f−1 — silent drift.) The bitstream simply continues
//     without the shed frame.
//   * Failure latching. If a front or back stage throws, the session
//     latches failed: the throwing frame's future resolves with the
//     classified error (kResource for bad_alloc, else kEncodeFailed), every
//     not-yet-running frame resolves with kSessionFailed, later submits
//     fail fast, and drain() returns instead of hanging. A back that was
//     already running when a newer frame's front failed completes and
//     resolves with its packet (its bytes precede the failure point). Other
//     sessions on the shared pool are untouched — all failure state is
//     per-pipeline.
//   * Unwedging. A failed back poison-publishes its full row range
//     (release_back_waiters) so the next frame's ME rows parked on the
//     reference gate wake up (they read stale-but-allocated samples; the
//     session is latched and their results are discarded), and a throwing
//     wavefront row publishes its row complete before rethrowing so sibling
//     rows' dependency waits resolve. Both keep "a task that parks is
//     always preceded by the task that publishes" true even on error paths.
//
// Determinism: every stage consumes only inputs that are fixed before the
// stage starts or ordered by a wavefront/readiness dependency, so serial,
// N-thread and frame-pipelined encodes of the same sequence produce
// byte-identical ACV1/ACV2 bitstreams. tests/codec_parallel_test.cpp and
// tests/codec_service_test.cpp hold that invariant.
//
// One deliberate semantic change from the pre-pipeline encoder: the
// rate-aware ME cost predictor (EncoderConfig::me_lambda > 0) is now the
// median of the ME field — computable inside the wavefront — instead of the
// coded field, which only exists after entropy coding. With the default
// me_lambda = 0 (the paper's pure-SAD search) the cost ignores the
// predictor entirely and bitstreams are unchanged.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codec/encoder.hpp"
#include "codec/session_error.hpp"
#include "me/types.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace acbm::codec {

/// @brief The staged per-frame encoder described above; owned by
/// codec::Encoder and driven once per encode_frame / submit_frame call.
///
/// The ME stage's SAD arithmetic routes through the runtime-dispatched
/// kernel table (simd/dispatch.hpp); every worker reads the same table, so
/// the (kernel × thread-count × pipelining) grid is one bitstream
/// equivalence class.
class EncoderPipeline {
 public:
  /// @brief Standalone mode: binds the pipeline to its encoder and sizes a
  /// private worker pool.
  /// @param encoder must outlive the pipeline (the Encoder owns it)
  /// @param parallel thread-count/determinism knobs; threads == 1 builds
  ///        no pool and runs every stage serially
  EncoderPipeline(Encoder& encoder, const ParallelConfig& parallel);

  /// @brief Service mode: runs on one FIFO lane of `shared_pool` (which
  /// fair-schedules across sessions) with frame-level pipelining enabled.
  /// The pool must outlive the pipeline.
  EncoderPipeline(Encoder& encoder, util::ThreadPool& shared_pool);

  ~EncoderPipeline();

  EncoderPipeline(const EncoderPipeline&) = delete;
  EncoderPipeline& operator=(const EncoderPipeline&) = delete;

  /// @brief Runs the stages for one frame, synchronously. In service mode
  /// this routes through the async path and blocks on the result.
  /// @param src the source frame (dimensions matching the encoder's
  ///        configured picture size)
  /// @return the frame's bit count, PSNR and per-mode macroblock tallies
  FrameReport encode_frame(const video::Frame& src);

  /// @brief Service mode: enqueues a frame for pipelined encoding. Frames
  /// complete in submission order; throws std::logic_error in standalone
  /// mode.
  std::future<EncodedFrame> submit_frame(video::Frame src);

  /// @brief Service mode with admission controls: deadline, bounded queue
  /// (shed with kOverloaded beyond it) and opt-in degradation. Never throws
  /// for admission outcomes — rejections come back as already-resolved
  /// error futures.
  std::future<EncodedFrame> submit_frame(video::Frame src,
                                         const SubmitOptions& options);

  /// @brief Like submit_frame(src, options) but an overload rejection
  /// returns std::nullopt instead of an error future (the caller keeps the
  /// frame conceptually — poll-style backpressure). A failed session still
  /// returns an engaged error future: that is terminal, not backpressure.
  std::optional<std::future<EncodedFrame>> try_submit_frame(
      video::Frame src, const SubmitOptions& options);

  /// @brief Blocks until every submitted frame has resolved (no-op in
  /// standalone mode). Returns normally on a failed session — the failure
  /// already surfaced through the per-frame futures.
  void drain();

  /// @return true once a frame's stage has thrown and latched the session.
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  /// @return number of ME workers (1 in serial mode).
  [[nodiscard]] int worker_count() const { return worker_count_; }

  /// @return true in service mode (frame-level pipelining active).
  [[nodiscard]] bool pipelined() const { return queue_ != nullptr; }

 private:
  /// One submitted frame: its source copy, its packet under construction,
  /// and the promise the service caller holds. Lives in jobs_ from
  /// admission until resolution; the destructor is the broken-promise
  /// safety net (a job destroyed unresolved rejects with kClosed, so a
  /// consumer blocked on the future sees a SessionError, never
  /// std::future_error).
  struct FrameJob {
    enum class Stage { kPending, kFront, kFrontDone, kBack };

    video::Frame src;
    std::uint64_t submit_seq = 0;  ///< submission number (error identity)
    std::uint64_t index = 0;       ///< encode index, set at front dispatch
    /// Non-zero once admitted: the obs async-span id pairing this frame's
    /// submit (async_begin at admission) with its resolution (async_end in
    /// resolve()) — the submit→resolve latency band in a trace.
    std::uint64_t trace_id = 0;
    Stage stage = Stage::kPending;
    bool degraded = false;  ///< encode with the degraded estimator
    std::optional<std::chrono::steady_clock::time_point> deadline;
    EncodedFrame out;
    std::exception_ptr error;  ///< set => resolve() rejects instead
    bool resolved = false;
    std::promise<EncodedFrame> promise;
    util::Timer wall;  ///< restarted when the front half starts

    /// Resolves the promise exactly once: with `error` if set, with the
    /// packet otherwise. Call WITHOUT admit_mutex_ held — the waiter may
    /// destroy the session the moment it observes the result.
    void resolve();
    ~FrameJob();
  };
  /// Jobs extracted under admit_mutex_, resolved after it is released.
  using Reap = std::vector<std::unique_ptr<FrameJob>>;

  [[nodiscard]] bool is_intra(std::uint64_t frame) const;

  /// Stages 1–2.5: motion, mode, plan — everything that reads only the
  /// previous frame's reconstruction. Retargets the encoder's front role
  /// pointers for frame `f` first. `degraded` selects the overload
  /// estimator for the motion stage.
  void run_front(const video::Frame& src, std::uint64_t f, FrameReport& report,
                 bool degraded);
  /// Stage 3 + frame finalisation: header/entropy bits, reconstruction,
  /// row publication, PSNR. `bytes_out`, when non-null, receives the
  /// frame's byte range of the stream (the async packet payload).
  void run_back(const video::Frame& src, std::uint64_t f, FrameReport& report,
                std::vector<std::uint8_t>* bytes_out);

  // --- async admission engine (service mode) ---
  /// Common body of submit_frame/try_submit_frame; nullopt only on an
  /// overload rejection with `overload_as_error` false.
  std::optional<std::future<EncodedFrame>> enqueue(video::Frame src,
                                                   const SubmitOptions& options,
                                                   bool overload_as_error);
  /// Dispatches whatever the admission rules allow; sheds deadline-expired
  /// frames it meets into `reap`. Requires admit_mutex_ held.
  void pump_locked(Reap& reap);
  void finish_front(FrameJob* job, std::exception_ptr error);
  void finish_back(FrameJob* job, std::exception_ptr error);
  /// Latches the session failed: classifies `cause` onto `job`, resolves
  /// every not-yet-running job with kSessionFailed. Requires admit_mutex_.
  void fail_locked(FrameJob* job, std::exception_ptr cause, const char* site,
                   Reap& reap);
  /// Removes `job` from jobs_ and returns its owner. Requires admit_mutex_.
  std::unique_ptr<FrameJob> extract_locked(FrameJob* job);
  /// Poison-publishes the failed back's full row range so gated ME rows of
  /// the next frame wake up (see the header comment).
  void release_back_waiters();

  // --- helpers shared by both modes ---
  /// Submits a stage task: onto the session lane tagged with `group` in
  /// service mode, onto the private pool's default lane otherwise.
  void submit_stage_task(util::TaskGroup& group, std::function<void()> task);
  /// The matching barrier: group wait (helping) or wait_idle.
  void wait_stage(util::TaskGroup& group);

  void motion_stage(const video::Frame& src, FrameReport& report);
  void motion_stage_serial(const video::Frame& src);
  void motion_stage_wavefront(const video::Frame& src);
  [[nodiscard]] me::EstimateResult estimate_block(
      me::MotionEstimator& estimator, const video::Frame& src, int bx,
      int by) const;
  /// Reference rows (cumulative macroblock rows, frame-local) frame f's ME
  /// row `by` may touch: the block rows themselves shifted by up to
  /// ±search_range, one extra sample row for half-pel interpolation, and
  /// one row of slack. Reads past the bottom edge resolve in the replicated
  /// border, which is only final once the whole reference is — hence the
  /// clamp to "all rows".
  [[nodiscard]] std::uint64_t rows_needed(int by) const;

  void mode_stage(const video::Frame& src);
  void mode_stage_rows(const video::Frame& src, int row_begin, int row_end);

  /// Stage 2.5: fills the front parity's plans (one MbPlan per macroblock)
  /// on the pool. All inputs are fixed before the stage starts, so rows
  /// split into plain contiguous tasks — no wavefront.
  void plan_stage(const video::Frame& src, bool intra_frame);
  void plan_stage_rows(const video::Frame& src, bool intra_frame,
                       int row_begin, int row_end);

  void entropy_stage(bool intra_frame, Encoder::MbBitCounters& counters,
                     FrameReport& report);
  /// Entropy-codes and reconstructs rows [row_begin, row_end) into `slice`
  /// from the precomputed plans (the stage no longer reads the source
  /// frame). Slices touch only their own writer/tallies plus row-disjoint
  /// regions of the reconstruction and coded MV field, so distinct slices
  /// may run concurrently.
  void entropy_slice(bool intra_frame, Encoder::SliceState& slice,
                     int row_begin, int row_end);
  /// Row-granular reference publication: border-extends the reconstructed
  /// macroblock row `by` and advances this frame's contiguous ready prefix
  /// on the parity's ReadyCounter. Safe from concurrent slices.
  void publish_back_row(int by);
  /// Folds one finished slice's tallies into the frame totals (slice order
  /// keeps the report deterministic).
  static void fold_slice(const Encoder::SliceState& slice,
                         Encoder::MbBitCounters& counters,
                         FrameReport& report);

  /// Clones the primary estimator once per worker (lazily, so callers may
  /// still configure the estimator between Encoder construction and the
  /// first encoded frame); likewise the degraded estimator if one is set.
  void ensure_workers();

  Encoder& enc_;
  int worker_count_ = 1;
  std::vector<std::unique_ptr<me::MotionEstimator>> workers_;
  /// Worker clones of the session's degraded (overload) estimator; frames
  /// admitted with FrameJob::degraded run their motion stage on these.
  std::vector<std::unique_ptr<me::MotionEstimator>> degraded_workers_;
  // Declared after workers_ so destruction joins the pool threads before
  // the per-worker estimators they may still reference go away.
  std::unique_ptr<util::ThreadPool> pool_;  ///< owned pool, standalone mode
  util::ThreadPool* active_pool_ = nullptr;  ///< owned or shared; null=serial
  /// This session's FIFO lane of the shared pool; non-null IS the service
  /// mode flag. Destroyed (draining the lane) before pool_ would be.
  std::unique_ptr<util::ThreadPool::Queue> queue_;
  util::TaskGroup front_group_;  ///< ME/mode/plan row tasks, current front
  util::TaskGroup back_group_;   ///< entropy slice tasks, current back

  // Per-frame stage outputs, indexed by by * mbs_x + bx; two parities so a
  // back half can read frame f's plans while the next front fills frame
  // f+1's (standalone mode always uses parity 0). Sized once and reused
  // across frames (geometry is fixed per encoder): plans_ in particular
  // holds every InterPlan/IntraPlan prediction buffer inline, so re-sizing
  // it per frame would be megabytes of allocator traffic at HD.
  std::vector<me::EstimateResult> me_results_[2];
  std::vector<std::uint8_t> use_intra_[2];  ///< heuristic mode decisions
  std::vector<Encoder::MbPlan> plans_[2];   ///< plan-stage output (stage 2.5)
  /// ACV2 per-slice payload writers, reset (capacity kept) every frame.
  std::vector<util::BitWriter> slice_writers_;

  // --- front-half state, owned by the (single) in-flight front task ---
  int front_parity_ = 0;              ///< stage-buffer parity of this front
  std::uint64_t front_frame_ = 0;     ///< frame index (BlockContext::frame)
  bool front_degraded_ = false;       ///< this front uses degraded_workers_
  util::ReadyCounter* front_gate_ = nullptr;  ///< null = reference complete
  std::uint64_t front_wait_base_ = 0; ///< gate value where this ref starts

  // --- back-half state, owned by the (single) in-flight back task ---
  int back_parity_ = 0;
  std::uint64_t back_frame_ = 0;  ///< frame index (trace span tagging)
  bool row_publish_ = false;     ///< row-granular publication this frame
  std::uint64_t back_base_ = 0;  ///< counter value where this frame starts
  std::mutex publish_mutex_;     ///< guards row_done_/row_prefix_
  std::vector<std::uint8_t> row_done_;
  int row_prefix_ = 0;  ///< contiguous published rows of the current back

  /// Cumulative reconstructed-row counters, one per reconstruction parity.
  /// Frame f's back publishes rows of recon_buf_[f&1] as
  /// (f>>1)*mbs_y + row_prefix_; frame f+1's front waits on the same
  /// parity's counter. 64-bit and never reset, so a counter value uniquely
  /// identifies (frame, row) across the whole stream.
  util::ReadyCounter ref_ready_[2];

  // --- admission engine state (admit_mutex_) ---
  std::mutex admit_mutex_;
  std::condition_variable drained_;
  /// Every unresolved job, submission order. In-flight jobs (stage !=
  /// kPending) form a prefix of at most two; the front job is always the
  /// lowest-index in-flight encode (backs retire strictly in order).
  std::deque<std::unique_ptr<FrameJob>> jobs_;
  std::uint64_t next_seq_ = 0;    ///< submission numbers (service mode)
  std::uint64_t next_index_ = 0;  ///< encode indices; assigned at dispatch
  bool front_running_ = false;
  bool back_running_ = false;
  /// Latched by fail_locked; read lock-free by failed() and the fast paths.
  std::atomic<bool> failed_{false};
  std::string failure_message_;  ///< what() of the latching error
};

}  // namespace acbm::codec
