#pragma once
// The staged per-frame encoding pipeline behind codec::Encoder.
//
// Encoder::encode_frame used to be one ~90-line macroblock loop doing
// motion estimation, mode decision, entropy coding and reconstruction per
// block before moving to the next. This class separates those concerns into
// explicit stages run over the whole frame:
//
//   1. motion stage       — one EstimateResult per macroblock. Serial when
//                           ParallelConfig::threads == 1; otherwise
//                           row-parallel on a util::ThreadPool in WAVEFRONT
//                           order: block (bx, by) waits until row by−1 has
//                           finished block bx+1, so the spatial predictors
//                           PBM and the median predictor read (left, above,
//                           above-right in BlockContext::cur_field) are
//                           final before the read. Each worker thread owns
//                           a clone() of the caller's estimator; worker
//                           statistics are merged back into the primary via
//                           merge_stats() after every frame.
//   2. mode stage         — the TMN heuristic INTRA/INTER decision per
//                           macroblock (row-parallel, no dependencies).
//                           Rate–distortion mode decisions compare exact
//                           bit counts against the coded-field predictor
//                           chain, so in kRateDistortion mode the decision
//                           itself waits for stage 3 — but its candidate
//                           costs are precomputed by the plan stage below.
//   2.5 plan stage        — one Encoder::MbPlan per macroblock: DCT +
//                           quantisation of the block the chosen mode will
//                           transmit (both candidates plus all three
//                           candidate reconstructions/SSDs in RD mode).
//                           Every input — me_results_, use_intra_, source,
//                           reference — is fixed before the stage starts,
//                           so it is row-parallel with no dependencies;
//                           this is where the transform work that used to
//                           serialise inside the entropy loop now runs.
//   3. entropy stage      — MVD coding + bit writing + reconstruction from
//                           the precomputed plans; the only work left here
//                           is what genuinely chains through the
//                           coded-field MV predictor. With
//                           EncoderConfig::slices == 1 this is the legacy
//                           serial raster scan straight into the stream
//                           writer (differential MV coding chains the whole
//                           frame). With slices == N the frame's macroblock
//                           rows split into N independently-predicted
//                           slices: MV prediction resets at each slice's
//                           first row, every slice entropy-codes into its
//                           own util::BitWriter (in parallel on the pool
//                           when one exists), and the byte-aligned payloads
//                           are concatenated behind ACV2 slice headers in
//                           slice order. Reconstruction is per-macroblock
//                           independent (it reads only the previous frame's
//                           reference), so it rides along inside each
//                           slice's task.
//
// Determinism: every stage consumes only inputs that are fixed before the
// stage starts or ordered by the wavefront dependency, so serial and
// N-thread encodes of the same sequence produce byte-identical ACV1
// bitstreams. tests/codec_parallel_test.cpp holds that invariant.
//
// One deliberate semantic change from the pre-pipeline encoder: the
// rate-aware ME cost predictor (EncoderConfig::me_lambda > 0) is now the
// median of the ME field — computable inside the wavefront — instead of the
// coded field, which only exists after entropy coding. With the default
// me_lambda = 0 (the paper's pure-SAD search) the cost ignores the
// predictor entirely and bitstreams are unchanged.

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/encoder.hpp"
#include "me/types.hpp"

namespace acbm::util {
class ThreadPool;
}

namespace acbm::codec {

/// @brief The staged per-frame encoder described above; owned by
/// codec::Encoder and driven once per encode_frame call.
///
/// The ME stage's SAD arithmetic routes through the runtime-dispatched
/// kernel table (simd/dispatch.hpp); every worker reads the same table, so
/// the (kernel × thread-count) grid is one bitstream equivalence class.
class EncoderPipeline {
 public:
  /// @brief Binds the pipeline to its encoder and sizes the worker pool.
  /// @param encoder must outlive the pipeline (the Encoder owns it)
  /// @param parallel thread-count/determinism knobs; threads == 1 builds
  ///        no pool and runs every stage serially
  EncoderPipeline(Encoder& encoder, const ParallelConfig& parallel);
  ~EncoderPipeline();

  EncoderPipeline(const EncoderPipeline&) = delete;
  EncoderPipeline& operator=(const EncoderPipeline&) = delete;

  /// @brief Runs the three stages for one frame.
  /// @param src the source frame (any dimensions matching the encoder's
  ///        configured picture size)
  /// @return the frame's bit count, PSNR and per-mode macroblock tallies
  FrameReport encode_frame(const video::Frame& src);

  /// @return number of ME workers (1 in serial mode).
  [[nodiscard]] int worker_count() const { return worker_count_; }

 private:
  void motion_stage(const video::Frame& src, FrameReport& report);
  void motion_stage_serial(const video::Frame& src);
  void motion_stage_wavefront(const video::Frame& src);
  [[nodiscard]] me::EstimateResult estimate_block(
      me::MotionEstimator& estimator, const video::Frame& src, int bx,
      int by) const;

  void mode_stage(const video::Frame& src);
  void mode_stage_rows(const video::Frame& src, int row_begin, int row_end);

  /// Stage 2.5: fills plans_ (one MbPlan per macroblock) on the pool. All
  /// inputs are fixed before the stage starts, so rows split into plain
  /// contiguous tasks — no wavefront.
  void plan_stage(const video::Frame& src, bool intra_frame);
  void plan_stage_rows(const video::Frame& src, bool intra_frame,
                       int row_begin, int row_end);

  void entropy_stage(bool intra_frame, Encoder::MbBitCounters& counters,
                     FrameReport& report);
  /// Entropy-codes and reconstructs rows [row_begin, row_end) into `slice`
  /// from the precomputed plans (the stage no longer reads the source
  /// frame). Slices touch only their own writer/tallies plus row-disjoint
  /// regions of the reconstruction and coded MV field, so distinct slices
  /// may run concurrently.
  void entropy_slice(bool intra_frame, Encoder::SliceState& slice,
                     int row_begin, int row_end);
  /// Folds one finished slice's tallies into the frame totals (slice order
  /// keeps the report deterministic).
  static void fold_slice(const Encoder::SliceState& slice,
                         Encoder::MbBitCounters& counters,
                         FrameReport& report);

  /// Clones the primary estimator once per worker (lazily, so callers may
  /// still configure the estimator between Encoder construction and the
  /// first encoded frame).
  void ensure_workers();

  Encoder& enc_;
  int worker_count_ = 1;
  std::vector<std::unique_ptr<me::MotionEstimator>> workers_;
  // Declared after workers_ so destruction joins the pool threads before
  // the per-worker estimators they may still reference go away.
  std::unique_ptr<util::ThreadPool> pool_;  ///< null in serial mode

  // Per-frame stage outputs, indexed by by * mbs_x + bx. Sized once and
  // reused across frames (geometry is fixed per encoder): plans_ in
  // particular holds every InterPlan/IntraPlan prediction buffer inline, so
  // re-sizing it per frame would be megabytes of allocator traffic at HD.
  std::vector<me::EstimateResult> me_results_;
  std::vector<std::uint8_t> use_intra_;  ///< heuristic mode decisions
  std::vector<Encoder::MbPlan> plans_;   ///< plan-stage output (stage 2.5)
  /// ACV2 per-slice payload writers, reset (capacity kept) every frame.
  std::vector<util::BitWriter> slice_writers_;
};

}  // namespace acbm::codec
