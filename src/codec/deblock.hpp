#pragma once
// In-loop deblocking filter (H.263 Annex J).
//
// Block-based DCT coding at coarse quantisers leaves visible discontinuities
// on the 8×8 grid; the Annex-J filter smooths one sample each side of every
// interior block edge with a quantiser-dependent strength, inside the coding
// loop (encoder and decoder run the identical filter on the reconstruction,
// so prediction references stay in sync — the same parity discipline as the
// rest of this codec).
//
// Edge operator on samples A B | C D straddling a boundary:
//   d  = (A − 4B + 4C − D) / 8
//   d1 = UpDownRamp(d, S) = sign(d)·max(0, |d| − max(0, 2(|d| − S)))
//   d2 = clamp((A − D) / 4, −|d1|/2, |d1|/2)
//   B += d1, C −= d1, A −= d2, D += d2   (B, C clamped to [0, 255])
// with S the Annex-J strength for the frame quantiser.

#include "video/frame.hpp"
#include "video/plane.hpp"

namespace acbm::codec {

/// Annex J Table J.2 filter strength for qp in [1, 31].
[[nodiscard]] int deblock_strength(int qp);

/// Filters one edge quad in place (exposed for tests).
void deblock_edge(std::uint8_t& a, std::uint8_t& b, std::uint8_t& c,
                  std::uint8_t& d, int strength);

/// Filters all interior `block`-grid edges of the plane: horizontal edges
/// first, then vertical (both encoder and decoder must call this exact
/// function for reconstruction parity).
void deblock_plane(video::Plane& plane, int qp, int block = 8);

/// Filters luma and both chroma planes on their 8×8 grids and re-extends
/// the borders.
void deblock_frame(video::Frame& frame, int qp);

}  // namespace acbm::codec
