#pragma once
// Deliberately naive reference decoder for ACV1/ACV2 bitstreams.
//
// This is the cross-validation layer of the verification pyramid
// (docs/TESTING.md): a second, independent implementation of the decoder
// written directly from the wire format documented in encoder.hpp and
// docs/ARCHITECTURE.md. It shares no code with codec::Decoder — it has its
// own bit reader, its own exp-Golomb codes, derives the zig-zag scan
// algorithmically instead of importing the table, samples the reference
// picture with coordinate clamping instead of replicated borders, and is
// single-threaded, scalar, and allocation-happy throughout. Anything the two
// decoders agree on is therefore attested by two codebases, which is what
// lets SIMD kernels, slice-parallel decoding, and pipelining changes in the
// optimized decoder be tested differentially instead of trusted.
//
// Sample-exactness contract: the wire format pins not just bit layout but
// reconstruction arithmetic. Two points are normative beyond the obvious
// integer formulas:
//   * the inverse DCT is computed in doubles over the orthonormal basis
//     b[u][x] = 0.5·C(u)·cos((2x+1)uπ/16), accumulated columns-first then
//     rows, and rounded with lround — both decoders follow that exact
//     evaluation order so they produce identical IEEE-754 doubles;
//   * motion vectors are valid when the compensated 16×16 read stays within
//     23 samples of the picture edge (the optimized decoder's 24-sample
//     replicated border minus the one sample reserved for the half-pel
//     overread). Out-of-range vectors are stream corruption.
// Corruption behaviour is mirrored too: directory-level damage throws,
// per-slice payload damage conceals, so the pair can be used as a
// differential oracle on corrupt inputs as well as clean ones.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace acbm::codec {

/// Raised on malformed bitstreams (the reference decoder's analogue of
/// DecodeError; a distinct type so the two implementations stay disjoint).
class RefDecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A decoded picture: tightly packed row-major planes, no border padding.
struct RefPicture {
  int width = 0;   ///< luma width
  int height = 0;  ///< luma height
  std::vector<std::uint8_t> y;   ///< width × height
  std::vector<std::uint8_t> cb;  ///< (width/2) × (height/2)
  std::vector<std::uint8_t> cr;  ///< (width/2) × (height/2)
};

class RefDecoder {
 public:
  /// Parses the sequence header; throws RefDecodeError when `data` is not an
  /// ACV1/ACV2 stream. The buffer is copied. `conceal_resync` mirrors the
  /// optimized decoder's conceal=resync policy: an independent
  /// implementation of the normative recovery rules in docs/RESILIENCE.md
  /// (directory damage conceals the frame's unreachable rows, frame-header
  /// damage scans forward for the next validating frame header), so the
  /// decoder pair stays a differential oracle under channel damage.
  explicit RefDecoder(std::span<const std::uint8_t> data,
                      bool conceal_resync = false);

  /// Decodes the next frame; std::nullopt at clean end-of-stream. Throws
  /// RefDecodeError on unconcealable corruption (same conditions as the
  /// optimized decoder: anything before the slice payloads; for V2 streams
  /// under conceal_resync, never).
  std::optional<RefPicture> decode_frame();

  /// Decodes every remaining frame.
  std::vector<RefPicture> decode_all();

  [[nodiscard]] int version() const { return version_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int fps_num() const { return fps_num_; }
  [[nodiscard]] int fps_den() const { return fps_den_; }

  /// Slice count of the most recently decoded frame (1 before any frame and
  /// for every ACV1 frame).
  [[nodiscard]] int last_frame_slices() const { return last_frame_slices_; }

  /// Total slices concealed so far.
  [[nodiscard]] std::uint64_t concealed_slices() const {
    return concealed_slices_;
  }

  /// conceal_resync recovery events so far (damaged directories or frame
  /// headers skipped over; the optimized decoder's resync_skips analogue).
  [[nodiscard]] std::uint64_t resync_skips() const { return resync_skips_; }

  /// MSB-first bit cursor with the wire format's exhaustion semantics:
  /// reads past the end deliver zero bits and latch `exhausted`. Public so
  /// the file-local entropy helpers in ref_decoder.cpp can take one.
  struct BitCursor {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;       ///< bytes
    std::size_t bit_pos = 0;
    bool exhausted = false;

    std::uint64_t get_bits(int count);
    bool get_bit() { return get_bits(1) != 0; }
    void align();
    void skip_bits(std::size_t count);
    [[nodiscard]] std::size_t bit_size() const { return size * 8; }
    [[nodiscard]] std::size_t bits_left() const {
      return bit_size() - bit_pos;
    }
  };

 private:
  std::optional<RefPicture> decode_frame_strict();
  std::optional<RefPicture> decode_frame_resync();
  RefPicture fresh_picture();
  void finish_frame(RefPicture& out, int qp, bool deblock);
  void decode_frame_v1(RefPicture& out, int qp, bool inter_frame);
  void decode_frame_slices(RefPicture& out, int qp, bool inter_frame);
  void decode_frame_slices_resync(RefPicture& out, int qp, bool inter_frame);
  /// Scans data_ from `from_byte` for the next byte offset validating as a
  /// complete frame header + slice directory and repositions the cursor
  /// there; false (cursor at end) when none does.
  bool find_restart(std::size_t from_byte);
  bool decode_rows(BitCursor& bc, RefPicture& out, int qp, bool inter_frame,
                   int row_begin, int row_end, int first_row);
  void conceal_rows(RefPicture& out, int row_begin, int row_end);
  bool decode_intra_mb(BitCursor& bc, RefPicture& out, int bx, int by, int qp);
  bool decode_inter_mb(BitCursor& bc, RefPicture& out, int bx, int by, int qp,
                       int mvx, int mvy);
  void copy_skip_mb(RefPicture& out, int bx, int by);
  [[nodiscard]] bool mv_in_reference(int mvx, int mvy, int x, int y) const;
  void predicted_mv(int bx, int by, int first_row, int& px, int& py) const;

  std::vector<std::uint8_t> data_;
  BitCursor reader_;
  int version_ = 1;
  int width_ = 0;
  int height_ = 0;
  int fps_num_ = 0;
  int fps_den_ = 0;
  int mbs_x_ = 0;
  int mbs_y_ = 0;
  bool first_frame_ = true;
  bool conceal_resync_ = false;
  int last_frame_slices_ = 1;
  std::uint64_t concealed_slices_ = 0;
  std::uint64_t resync_skips_ = 0;
  RefPicture ref_;              ///< previous reconstruction
  std::vector<int> coded_mvx_;  ///< per-MB coded vectors of the current frame
  std::vector<int> coded_mvy_;
};

}  // namespace acbm::codec
