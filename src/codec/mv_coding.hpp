#pragma once
// Differential motion-vector coding.
//
// Vectors are coded as MVD = mv − median_predictor, one signed exp-Golomb
// code per component (DESIGN.md §4 documents the substitution for H.263's
// MVD VLC table — both are prefix codes monotone in |MVD|, which is the
// property the paper's R(mv) term and the PBM-fields-are-cheap argument
// rely on). The same bit-length function backs me::mv_rate_bits, so the
// search-side rate model is exact, not an estimate.

#include <cstdint>

#include "me/types.hpp"
#include "util/bitstream.hpp"

namespace acbm::codec {

/// Writes mv (half-pel units) differentially against `pred`.
void encode_mvd(util::BitWriter& bw, me::Mv mv, me::Mv pred);

/// Reads a vector coded against `pred`.
[[nodiscard]] me::Mv decode_mvd(util::BitReader& br, me::Mv pred);

/// Exact bit count encode_mvd would produce.
[[nodiscard]] std::uint32_t mvd_bits(me::Mv mv, me::Mv pred);

}  // namespace acbm::codec
