#pragma once
// The standard 8×8 zig-zag scan (H.263 Figure 14 / JPEG order): orders
// coefficients by increasing spatial frequency so quantized blocks end in
// long zero runs, which the run/level coder exploits.

#include <array>
#include <cstdint>

#include "codec/dct.hpp"

namespace acbm::codec {

/// kZigzagOrder[k] = raster index of the k-th scanned coefficient.
extern const std::array<std::uint8_t, kDctSamples> kZigzagOrder;

/// Raster-order block → zig-zag order.
void zigzag_scan(const std::int16_t in[kDctSamples],
                 std::int16_t out[kDctSamples]);

/// Zig-zag order → raster-order block.
void zigzag_unscan(const std::int16_t in[kDctSamples],
                   std::int16_t out[kDctSamples]);

}  // namespace acbm::codec
