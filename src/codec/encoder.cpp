#include "codec/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "codec/block_codec.hpp"
#include "codec/coeff_coding.hpp"
#include "codec/mc.hpp"
#include "codec/mv_coding.hpp"
#include "codec/pipeline.hpp"
#include "codec/quant.hpp"

namespace acbm::codec {

namespace {

constexpr int kMb = me::kBlockSize;  // 16

/// Offsets of the four 8×8 luma blocks inside a macroblock, coding order.
constexpr int kLumaBlockOffsets[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};

/// λ for SSD-domain mode decision (TMN-10 convention: 0.85·Qp²).
double mode_lambda(int qp) { return 0.85 * qp * qp; }

}  // namespace

/// A fully transformed INTRA macroblock, not yet written or reconstructed.
struct Encoder::IntraPlan {
  std::int16_t levels[6][kDctSamples];
  std::uint8_t dc[6];
  std::uint32_t cbp = 0;

  /// Exact payload bits (DCs + CBP + coefficients; excludes COD/mode bits).
  [[nodiscard]] std::uint32_t payload_bits() const {
    std::uint32_t bits = 6 * 8 + 6;
    for (int b = 0; b < 6; ++b) {
      if ((cbp >> b) & 1u) {
        bits += block_coeff_bits(levels[b], /*skip_dc=*/true);
      }
    }
    return bits;
  }

  /// Reconstructs into 16×16 luma + two 8×8 chroma scratch buffers.
  void reconstruct(int qp, std::uint8_t* y16, std::uint8_t* cb8,
                   std::uint8_t* cr8) const {
    for (int b = 0; b < 4; ++b) {
      const int ox = kLumaBlockOffsets[b][0];
      const int oy = kLumaBlockOffsets[b][1];
      reconstruct_intra_block(levels[b], dc[b], qp, y16 + oy * kMb + ox, kMb);
    }
    reconstruct_intra_block(levels[4], dc[4], qp, cb8, 8);
    reconstruct_intra_block(levels[5], dc[5], qp, cr8, 8);
  }
};

/// A fully predicted+transformed INTER macroblock.
struct Encoder::InterPlan {
  me::Mv mv;
  std::uint8_t pred_y[kMb * kMb];
  std::uint8_t pred_cb[8 * 8];
  std::uint8_t pred_cr[8 * 8];
  std::int16_t levels[6][kDctSamples];
  std::uint32_t cbp = 0;

  [[nodiscard]] bool skippable() const {
    return mv == me::Mv{0, 0} && cbp == 0;
  }

  /// Payload bits given the differential predictor (MVD + CBP + coeffs;
  /// excludes COD/mode bits).
  [[nodiscard]] std::uint32_t payload_bits(me::Mv predictor) const {
    std::uint32_t bits = mvd_bits(mv, predictor) + 6;
    for (int b = 0; b < 6; ++b) {
      if ((cbp >> b) & 1u) {
        bits += block_coeff_bits(levels[b]);
      }
    }
    return bits;
  }

  void reconstruct(int qp, std::uint8_t* y16, std::uint8_t* cb8,
                   std::uint8_t* cr8) const {
    for (int b = 0; b < 4; ++b) {
      const int ox = kLumaBlockOffsets[b][0];
      const int oy = kLumaBlockOffsets[b][1];
      reconstruct_inter_block(levels[b], pred_y + oy * kMb + ox, kMb, qp,
                              y16 + oy * kMb + ox, kMb);
    }
    reconstruct_inter_block(levels[4], pred_cb, 8, qp, cb8, 8);
    reconstruct_inter_block(levels[5], pred_cr, 8, qp, cr8, 8);
  }
};

Encoder::Encoder(video::PictureSize size, const EncoderConfig& config,
                 me::MotionEstimator& estimator)
    : size_(size), config_(config), estimator_(&estimator),
      recon_(size), ref_(size),
      me_field_(me::MvField::for_picture(size.width, size.height)),
      prev_me_field_(me_field_), coded_field_(me_field_) {
  // Non-positive dimensions would otherwise slip through the modulo check
  // (0 % 16 == 0) and break the slice clamp below.
  if (size.width <= 0 || size.height <= 0 || size.width % kMb != 0 ||
      size.height % kMb != 0) {
    throw std::invalid_argument(
        "encoder: picture dimensions must be positive multiples of 16");
  }
  if (config.qp < kMinQp || config.qp > kMaxQp) {
    throw std::invalid_argument("encoder: qp out of range 1..31");
  }
  // A slice is at least one macroblock row; the wire format caps the count
  // at a u8. Out-of-range requests degrade gracefully instead of throwing
  // so callers can pass "slices = threads" without sizing logic.
  slices_ = std::clamp(config.slices, 1, std::min(size.height / kMb,
                                                  kMaxSlices));
  pipeline_ = std::make_unique<EncoderPipeline>(*this, config.parallel);
  write_sequence_header();
}

Encoder::~Encoder() = default;

void Encoder::write_sequence_header() {
  // Single-slice streams keep the ACV1 magic (and stay byte-identical to
  // the pre-slice encoder); multi-slice streams announce the slice-header
  // syntax up front with ACV2.
  writer_.put_bits(slices_ > 1 ? kSequenceMagicV2 : kSequenceMagic, 32);
  writer_.put_bits(static_cast<std::uint32_t>(size_.width), 16);
  writer_.put_bits(static_cast<std::uint32_t>(size_.height), 16);
  writer_.put_bits(static_cast<std::uint32_t>(config_.fps_num), 16);
  writer_.put_bits(static_cast<std::uint32_t>(config_.fps_den), 16);
}

FrameReport Encoder::encode_frame(const video::Frame& src) {
  assert(!finished_);
  assert(src.width() == size_.width && src.height() == size_.height);
  return pipeline_->encode_frame(src);
}

// ---------------------------------------------------------------- planning

Encoder::IntraPlan Encoder::plan_intra_mb(const video::Frame& src, int bx,
                                          int by) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  IntraPlan plan;
  for (int b = 0; b < 4; ++b) {
    const int sx = x + kLumaBlockOffsets[b][0];
    const int sy = y + kLumaBlockOffsets[b][1];
    plan.dc[b] = encode_intra_block(src.y().row(sy) + sx, src.y().stride(),
                                    plan.levels[b], config_.qp);
  }
  plan.dc[4] = encode_intra_block(src.cb().row(y / 2) + x / 2,
                                  src.cb().stride(), plan.levels[4],
                                  config_.qp);
  plan.dc[5] = encode_intra_block(src.cr().row(y / 2) + x / 2,
                                  src.cr().stride(), plan.levels[5],
                                  config_.qp);
  for (int b = 0; b < 6; ++b) {
    if (block_has_coeffs(plan.levels[b], /*skip_dc=*/true)) {
      plan.cbp |= 1u << b;
    }
  }
  return plan;
}

Encoder::InterPlan Encoder::plan_inter_mb(const video::Frame& src, int bx,
                                          int by, me::Mv mv) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  InterPlan plan;
  plan.mv = mv;
  predict_luma(ref_half_, x, y, mv, kMb, kMb, plan.pred_y, kMb);
  const me::Mv cmv = derive_chroma_mv(mv);
  predict_chroma(ref_.cb(), x / 2, y / 2, cmv, 8, 8, plan.pred_cb, 8);
  predict_chroma(ref_.cr(), x / 2, y / 2, cmv, 8, 8, plan.pred_cr, 8);

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    encode_inter_block(src.y().row(y + oy) + x + ox, src.y().stride(),
                       plan.pred_y + oy * kMb + ox, kMb, plan.levels[b],
                       config_.qp);
  }
  encode_inter_block(src.cb().row(y / 2) + x / 2, src.cb().stride(),
                     plan.pred_cb, 8, plan.levels[4], config_.qp);
  encode_inter_block(src.cr().row(y / 2) + x / 2, src.cr().stride(),
                     plan.pred_cr, 8, plan.levels[5], config_.qp);
  for (int b = 0; b < 6; ++b) {
    if (block_has_coeffs(plan.levels[b])) {
      plan.cbp |= 1u << b;
    }
  }
  return plan;
}

// ----------------------------------------------------------------- writing

void Encoder::write_intra_plan(const IntraPlan& plan, SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const std::uint64_t before = writer.bit_count();
  for (int b = 0; b < 6; ++b) {
    writer.put_bits(plan.dc[b], 8);
  }
  writer.put_bits(plan.cbp, 6);
  for (int b = 0; b < 6; ++b) {
    if ((plan.cbp >> b) & 1u) {
      encode_block_coeffs(writer, plan.levels[b], /*skip_dc=*/true);
    }
  }
  slice.counters.coeff += writer.bit_count() - before;
}

// ---------------------------------------------------------- reconstruction

void Encoder::reconstruct_intra_plan(const IntraPlan& plan, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_intra_block(plan.levels[b], plan.dc[b], config_.qp,
                            recon_.y().row(y + oy) + x + ox,
                            recon_.y().stride());
  }
  reconstruct_intra_block(plan.levels[4], plan.dc[4], config_.qp,
                          recon_.cb().row(y / 2) + x / 2,
                          recon_.cb().stride());
  reconstruct_intra_block(plan.levels[5], plan.dc[5], config_.qp,
                          recon_.cr().row(y / 2) + x / 2,
                          recon_.cr().stride());
}

void Encoder::reconstruct_inter_plan(const InterPlan& plan, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_inter_block(plan.levels[b], plan.pred_y + oy * kMb + ox, kMb,
                            config_.qp, recon_.y().row(y + oy) + x + ox,
                            recon_.y().stride());
  }
  reconstruct_inter_block(plan.levels[4], plan.pred_cb, 8, config_.qp,
                          recon_.cb().row(y / 2) + x / 2,
                          recon_.cb().stride());
  reconstruct_inter_block(plan.levels[5], plan.pred_cr, 8, config_.qp,
                          recon_.cr().row(y / 2) + x / 2,
                          recon_.cr().stride());
}

void Encoder::reconstruct_skip_mb(int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int row = 0; row < kMb; ++row) {
    std::memcpy(recon_.y().row(y + row) + x, ref_.y().row(y + row) + x, kMb);
  }
  for (int row = 0; row < kMb / 2; ++row) {
    std::memcpy(recon_.cb().row(y / 2 + row) + x / 2,
                ref_.cb().row(y / 2 + row) + x / 2, kMb / 2);
    std::memcpy(recon_.cr().row(y / 2 + row) + x / 2,
                ref_.cr().row(y / 2 + row) + x / 2, kMb / 2);
  }
}

std::uint64_t Encoder::mb_ssd(const video::Frame& src, int bx, int by,
                              const std::uint8_t* y16, const std::uint8_t* cb8,
                              const std::uint8_t* cr8) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  std::uint64_t ssd = 0;
  for (int row = 0; row < kMb; ++row) {
    const std::uint8_t* s = src.y().row(y + row) + x;
    const std::uint8_t* r = y16 + row * kMb;
    for (int col = 0; col < kMb; ++col) {
      const int d = int(s[col]) - int(r[col]);
      ssd += static_cast<std::uint64_t>(d * d);
    }
  }
  for (int row = 0; row < 8; ++row) {
    const std::uint8_t* scb = src.cb().row(y / 2 + row) + x / 2;
    const std::uint8_t* scr = src.cr().row(y / 2 + row) + x / 2;
    for (int col = 0; col < 8; ++col) {
      const int dcb = int(scb[col]) - int(cb8[row * 8 + col]);
      const int dcr = int(scr[col]) - int(cr8[row * 8 + col]);
      ssd += static_cast<std::uint64_t>(dcb * dcb + dcr * dcr);
    }
  }
  return ssd;
}

// ------------------------------------------------------- macroblock coding

void Encoder::encode_intra_mb(const video::Frame& src, int bx, int by,
                              SliceState& slice) {
  const IntraPlan plan = plan_intra_mb(src, bx, by);
  write_intra_plan(plan, slice);
  reconstruct_intra_plan(plan, bx, by);
  coded_field_.set(bx, by, {0, 0});
}

void Encoder::encode_inter_mb(const video::Frame& src, int bx, int by,
                              me::Mv mv, SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const InterPlan plan = plan_inter_mb(src, bx, by, mv);

  if (config_.allow_skip && plan.skippable()) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(true);  // COD = 1
    slice.counters.header += writer.bit_count() - before;
    reconstruct_skip_mb(bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.skip_mbs;
    return;
  }

  const std::uint64_t header_start = writer.bit_count();
  writer.put_bit(false);  // COD = 0
  writer.put_bit(false);  // inter
  slice.counters.header += writer.bit_count() - header_start;

  const std::uint64_t mv_start = writer.bit_count();
  encode_mvd(writer, plan.mv,
             coded_field_.median_predictor(bx, by, slice.first_mb_row));
  slice.counters.mv += writer.bit_count() - mv_start;

  const std::uint64_t coeff_start = writer.bit_count();
  writer.put_bits(plan.cbp, 6);
  for (int b = 0; b < 6; ++b) {
    if ((plan.cbp >> b) & 1u) {
      encode_block_coeffs(writer, plan.levels[b]);
    }
  }
  slice.counters.coeff += writer.bit_count() - coeff_start;

  reconstruct_inter_plan(plan, bx, by);
  coded_field_.set(bx, by, plan.mv);
}

void Encoder::encode_inter_mb_rd(const video::Frame& src, int bx, int by,
                                 me::Mv mv, SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const double lambda = mode_lambda(config_.qp);
  const me::Mv predictor =
      coded_field_.median_predictor(bx, by, slice.first_mb_row);

  // Candidate 1: INTER with the estimated vector.
  const InterPlan inter = plan_inter_mb(src, bx, by, mv);
  std::uint8_t inter_y[kMb * kMb];
  std::uint8_t inter_cb[64];
  std::uint8_t inter_cr[64];
  inter.reconstruct(config_.qp, inter_y, inter_cb, inter_cr);
  const double j_inter =
      static_cast<double>(mb_ssd(src, bx, by, inter_y, inter_cb, inter_cr)) +
      lambda * (2.0 + inter.payload_bits(predictor));

  // Candidate 2: INTRA.
  const IntraPlan intra = plan_intra_mb(src, bx, by);
  std::uint8_t intra_y[kMb * kMb];
  std::uint8_t intra_cb[64];
  std::uint8_t intra_cr[64];
  intra.reconstruct(config_.qp, intra_y, intra_cb, intra_cr);
  const double j_intra =
      static_cast<double>(mb_ssd(src, bx, by, intra_y, intra_cb, intra_cr)) +
      lambda * (2.0 + intra.payload_bits());

  // Candidate 3: SKIP (copy of the reference at zero motion, 1 bit).
  double j_skip = std::numeric_limits<double>::infinity();
  if (config_.allow_skip) {
    const int x = bx * kMb;
    const int y = by * kMb;
    std::uint8_t skip_y[kMb * kMb];
    std::uint8_t skip_cb[64];
    std::uint8_t skip_cr[64];
    for (int row = 0; row < kMb; ++row) {
      std::memcpy(skip_y + row * kMb, ref_.y().row(y + row) + x, kMb);
    }
    for (int row = 0; row < 8; ++row) {
      std::memcpy(skip_cb + row * 8, ref_.cb().row(y / 2 + row) + x / 2, 8);
      std::memcpy(skip_cr + row * 8, ref_.cr().row(y / 2 + row) + x / 2, 8);
    }
    j_skip =
        static_cast<double>(mb_ssd(src, bx, by, skip_y, skip_cb, skip_cr)) +
        lambda * 1.0;
  }

  if (j_skip <= j_inter && j_skip <= j_intra) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(true);  // COD = 1
    slice.counters.header += writer.bit_count() - before;
    reconstruct_skip_mb(bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.skip_mbs;
    ++slice.inter_mbs;  // rebalanced against skip_mbs at frame end
    return;
  }

  if (j_intra < j_inter) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(false);  // COD = 0
    writer.put_bit(true);   // intra
    slice.counters.header += writer.bit_count() - before;
    write_intra_plan(intra, slice);
    reconstruct_intra_plan(intra, bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.intra_mbs;
    return;
  }

  const std::uint64_t header_start = writer.bit_count();
  writer.put_bit(false);  // COD = 0
  writer.put_bit(false);  // inter
  slice.counters.header += writer.bit_count() - header_start;

  const std::uint64_t mv_start = writer.bit_count();
  encode_mvd(writer, inter.mv, predictor);
  slice.counters.mv += writer.bit_count() - mv_start;

  const std::uint64_t coeff_start = writer.bit_count();
  writer.put_bits(inter.cbp, 6);
  for (int b = 0; b < 6; ++b) {
    if ((inter.cbp >> b) & 1u) {
      encode_block_coeffs(writer, inter.levels[b]);
    }
  }
  slice.counters.coeff += writer.bit_count() - coeff_start;

  reconstruct_inter_plan(inter, bx, by);
  coded_field_.set(bx, by, inter.mv);
  ++slice.inter_mbs;
}

std::vector<std::uint8_t> Encoder::finish() {
  assert(!finished_);
  finished_ = true;
  return writer_.take();
}

void Encoder::set_qp(int qp) {
  if (qp < kMinQp || qp > kMaxQp) {
    throw std::invalid_argument("encoder: qp out of range 1..31");
  }
  config_.qp = qp;
}

}  // namespace acbm::codec
