#include "codec/encoder.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "codec/block_codec.hpp"
#include "codec/coeff_coding.hpp"
#include "codec/mc.hpp"
#include "codec/mv_coding.hpp"
#include "codec/pipeline.hpp"
#include "obs/metrics.hpp"
#include "codec/quant.hpp"

namespace acbm::codec {

namespace {

constexpr int kMb = me::kBlockSize;  // 16

/// Offsets of the four 8×8 luma blocks inside a macroblock, coding order.
constexpr int kLumaBlockOffsets[4][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};

/// λ for SSD-domain mode decision (TMN-10 convention: 0.85·Qp²).
double mode_lambda(int qp) { return 0.85 * qp * qp; }

}  // namespace

std::uint32_t Encoder::IntraPlan::payload_bits() const {
  std::uint32_t bits = 6 * 8 + 6;
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      bits += block_coeff_bits(levels[b], /*skip_dc=*/true);
    }
  }
  return bits;
}

void Encoder::IntraPlan::reconstruct(int qp, std::uint8_t* y16,
                                     std::uint8_t* cb8,
                                     std::uint8_t* cr8) const {
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_intra_block(levels[b], dc[b], qp, y16 + oy * kMb + ox, kMb);
  }
  reconstruct_intra_block(levels[4], dc[4], qp, cb8, 8);
  reconstruct_intra_block(levels[5], dc[5], qp, cr8, 8);
}

std::uint32_t Encoder::InterPlan::payload_bits(me::Mv predictor) const {
  std::uint32_t bits = mvd_bits(mv, predictor) + 6;
  for (int b = 0; b < 6; ++b) {
    if ((cbp >> b) & 1u) {
      bits += block_coeff_bits(levels[b]);
    }
  }
  return bits;
}

void Encoder::InterPlan::reconstruct(int qp, std::uint8_t* y16,
                                     std::uint8_t* cb8,
                                     std::uint8_t* cr8) const {
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_inter_block(levels[b], pred_y + oy * kMb + ox, kMb, qp,
                            y16 + oy * kMb + ox, kMb);
  }
  reconstruct_inter_block(levels[4], pred_cb, 8, qp, cb8, 8);
  reconstruct_inter_block(levels[5], pred_cr, 8, qp, cr8, 8);
}

Encoder::Encoder(video::PictureSize size, const EncoderConfig& config,
                 me::MotionEstimator& estimator)
    : Encoder(size, config, estimator, nullptr) {}

Encoder::Encoder(video::PictureSize size, const EncoderConfig& config,
                 me::MotionEstimator& estimator,
                 util::ThreadPool& shared_pool)
    : Encoder(size, config, estimator, &shared_pool) {}

Encoder::Encoder(video::PictureSize size, const EncoderConfig& config,
                 me::MotionEstimator& estimator,
                 util::ThreadPool* shared_pool)
    : size_(size), config_(config), estimator_(&estimator),
      recon_buf_{video::Frame(size), video::Frame(size)},
      recon_(&recon_buf_[0]), front_ref_(&recon_buf_[1]),
      back_ref_(&recon_buf_[1]), last_recon_(&recon_buf_[0]),
      me_fields_{me::MvField::for_picture(size.width, size.height),
                 me::MvField::for_picture(size.width, size.height)},
      me_field_(&me_fields_[0]), prev_me_field_(&me_fields_[1]),
      last_me_field_(&me_fields_[0]), coded_field_(me_fields_[0]) {
  // Non-positive dimensions would otherwise slip through the modulo check
  // (0 % 16 == 0) and break the slice clamp below.
  if (size.width <= 0 || size.height <= 0 || size.width % kMb != 0 ||
      size.height % kMb != 0) {
    throw std::invalid_argument(
        "encoder: picture dimensions must be positive multiples of 16");
  }
  if (config.qp < kMinQp || config.qp > kMaxQp) {
    throw std::invalid_argument("encoder: qp out of range 1..31");
  }
  // A slice is at least one macroblock row; the wire format caps the count
  // at a u8. Out-of-range requests degrade gracefully instead of throwing
  // so callers can pass "slices = threads" without sizing logic.
  slices_ = std::clamp(config.slices, 1, std::min(size.height / kMb,
                                                  kMaxSlices));
  pipeline_ = shared_pool != nullptr
                  ? std::make_unique<EncoderPipeline>(*this, *shared_pool)
                  : std::make_unique<EncoderPipeline>(*this, config.parallel);
  write_sequence_header();
}

Encoder::~Encoder() = default;

void Encoder::set_metrics(obs::Registry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    stage_metrics_ = StageMetrics{};
    return;
  }
  stage_metrics_.me = &registry->histogram("enc.stage.me");
  stage_metrics_.plan = &registry->histogram("enc.stage.plan");
  stage_metrics_.entropy = &registry->histogram("enc.stage.entropy");
  stage_metrics_.frame_wall = &registry->histogram("enc.frame.wall");
}

void Encoder::write_sequence_header() {
  // Single-slice streams keep the ACV1 magic (and stay byte-identical to
  // the pre-slice encoder); multi-slice streams announce the slice-header
  // syntax up front with ACV2.
  writer_.put_bits(slices_ > 1 ? kSequenceMagicV2 : kSequenceMagic, 32);
  writer_.put_bits(static_cast<std::uint32_t>(size_.width), 16);
  writer_.put_bits(static_cast<std::uint32_t>(size_.height), 16);
  writer_.put_bits(static_cast<std::uint32_t>(config_.fps_num), 16);
  writer_.put_bits(static_cast<std::uint32_t>(config_.fps_den), 16);
}

FrameReport Encoder::encode_frame(const video::Frame& src) {
  assert(!finished_);
  assert(src.width() == size_.width && src.height() == size_.height);
  return pipeline_->encode_frame(src);
}

std::future<EncodedFrame> Encoder::submit_frame(video::Frame src) {
  assert(!finished_);
  assert(src.width() == size_.width && src.height() == size_.height);
  return pipeline_->submit_frame(std::move(src));
}

std::future<EncodedFrame> Encoder::submit_frame(video::Frame src,
                                                const SubmitOptions& options) {
  assert(!finished_);
  assert(src.width() == size_.width && src.height() == size_.height);
  return pipeline_->submit_frame(std::move(src), options);
}

std::optional<std::future<EncodedFrame>> Encoder::try_submit_frame(
    video::Frame src, const SubmitOptions& options) {
  assert(!finished_);
  assert(src.width() == size_.width && src.height() == size_.height);
  return pipeline_->try_submit_frame(std::move(src), options);
}

void Encoder::drain() { pipeline_->drain(); }

bool Encoder::failed() const { return pipeline_->failed(); }

// ---------------------------------------------------------------- planning

Encoder::IntraPlan Encoder::plan_intra_mb(const video::Frame& src, int bx,
                                          int by) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  IntraPlan plan;
  for (int b = 0; b < 4; ++b) {
    const int sx = x + kLumaBlockOffsets[b][0];
    const int sy = y + kLumaBlockOffsets[b][1];
    plan.dc[b] = encode_intra_block(src.y().row(sy) + sx, src.y().stride(),
                                    plan.levels[b], config_.qp);
  }
  plan.dc[4] = encode_intra_block(src.cb().row(y / 2) + x / 2,
                                  src.cb().stride(), plan.levels[4],
                                  config_.qp);
  plan.dc[5] = encode_intra_block(src.cr().row(y / 2) + x / 2,
                                  src.cr().stride(), plan.levels[5],
                                  config_.qp);
  for (int b = 0; b < 6; ++b) {
    if (block_has_coeffs(plan.levels[b], /*skip_dc=*/true)) {
      plan.cbp |= 1u << b;
    }
  }
  return plan;
}

Encoder::InterPlan Encoder::plan_inter_mb(const video::Frame& src, int bx,
                                          int by, me::Mv mv) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  InterPlan plan;
  plan.mv = mv;
  predict_luma(ref_half_, x, y, mv, kMb, kMb, plan.pred_y, kMb);
  const me::Mv cmv = derive_chroma_mv(mv);
  predict_chroma(front_ref_->cb(), x / 2, y / 2, cmv, 8, 8, plan.pred_cb, 8);
  predict_chroma(front_ref_->cr(), x / 2, y / 2, cmv, 8, 8, plan.pred_cr, 8);

  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    encode_inter_block(src.y().row(y + oy) + x + ox, src.y().stride(),
                       plan.pred_y + oy * kMb + ox, kMb, plan.levels[b],
                       config_.qp);
  }
  encode_inter_block(src.cb().row(y / 2) + x / 2, src.cb().stride(),
                     plan.pred_cb, 8, plan.levels[4], config_.qp);
  encode_inter_block(src.cr().row(y / 2) + x / 2, src.cr().stride(),
                     plan.pred_cr, 8, plan.levels[5], config_.qp);
  for (int b = 0; b < 6; ++b) {
    if (block_has_coeffs(plan.levels[b])) {
      plan.cbp |= 1u << b;
    }
  }
  return plan;
}

// ----------------------------------------------------------------- writing

void Encoder::write_intra_plan(const IntraPlan& plan, SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const std::uint64_t before = writer.bit_count();
  for (int b = 0; b < 6; ++b) {
    writer.put_bits(plan.dc[b], 8);
  }
  writer.put_bits(plan.cbp, 6);
  for (int b = 0; b < 6; ++b) {
    if ((plan.cbp >> b) & 1u) {
      encode_block_coeffs(writer, plan.levels[b], /*skip_dc=*/true);
    }
  }
  slice.counters.coeff += writer.bit_count() - before;
}

void Encoder::write_inter_plan_payload(const InterPlan& plan, me::Mv predictor,
                                       SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const std::uint64_t mv_start = writer.bit_count();
  encode_mvd(writer, plan.mv, predictor);
  slice.counters.mv += writer.bit_count() - mv_start;

  const std::uint64_t coeff_start = writer.bit_count();
  writer.put_bits(plan.cbp, 6);
  for (int b = 0; b < 6; ++b) {
    if ((plan.cbp >> b) & 1u) {
      encode_block_coeffs(writer, plan.levels[b]);
    }
  }
  slice.counters.coeff += writer.bit_count() - coeff_start;
}

// ---------------------------------------------------------- reconstruction

void Encoder::reconstruct_intra_plan(const IntraPlan& plan, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_intra_block(plan.levels[b], plan.dc[b], config_.qp,
                            recon_->y().row(y + oy) + x + ox,
                            recon_->y().stride());
  }
  reconstruct_intra_block(plan.levels[4], plan.dc[4], config_.qp,
                          recon_->cb().row(y / 2) + x / 2,
                          recon_->cb().stride());
  reconstruct_intra_block(plan.levels[5], plan.dc[5], config_.qp,
                          recon_->cr().row(y / 2) + x / 2,
                          recon_->cr().stride());
}

void Encoder::reconstruct_inter_plan(const InterPlan& plan, int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int b = 0; b < 4; ++b) {
    const int ox = kLumaBlockOffsets[b][0];
    const int oy = kLumaBlockOffsets[b][1];
    reconstruct_inter_block(plan.levels[b], plan.pred_y + oy * kMb + ox, kMb,
                            config_.qp, recon_->y().row(y + oy) + x + ox,
                            recon_->y().stride());
  }
  reconstruct_inter_block(plan.levels[4], plan.pred_cb, 8, config_.qp,
                          recon_->cb().row(y / 2) + x / 2,
                          recon_->cb().stride());
  reconstruct_inter_block(plan.levels[5], plan.pred_cr, 8, config_.qp,
                          recon_->cr().row(y / 2) + x / 2,
                          recon_->cr().stride());
}

void Encoder::reconstruct_skip_mb(int bx, int by) {
  const int x = bx * kMb;
  const int y = by * kMb;
  for (int row = 0; row < kMb; ++row) {
    std::memcpy(recon_->y().row(y + row) + x, back_ref_->y().row(y + row) + x, kMb);
  }
  for (int row = 0; row < kMb / 2; ++row) {
    std::memcpy(recon_->cb().row(y / 2 + row) + x / 2,
                back_ref_->cb().row(y / 2 + row) + x / 2, kMb / 2);
    std::memcpy(recon_->cr().row(y / 2 + row) + x / 2,
                back_ref_->cr().row(y / 2 + row) + x / 2, kMb / 2);
  }
}

std::uint64_t Encoder::mb_ssd(const video::Frame& src, int bx, int by,
                              const std::uint8_t* y16, const std::uint8_t* cb8,
                              const std::uint8_t* cr8) const {
  const int x = bx * kMb;
  const int y = by * kMb;
  std::uint64_t ssd = 0;
  for (int row = 0; row < kMb; ++row) {
    const std::uint8_t* s = src.y().row(y + row) + x;
    const std::uint8_t* r = y16 + row * kMb;
    for (int col = 0; col < kMb; ++col) {
      const int d = int(s[col]) - int(r[col]);
      ssd += static_cast<std::uint64_t>(d * d);
    }
  }
  for (int row = 0; row < 8; ++row) {
    const std::uint8_t* scb = src.cb().row(y / 2 + row) + x / 2;
    const std::uint8_t* scr = src.cr().row(y / 2 + row) + x / 2;
    for (int col = 0; col < 8; ++col) {
      const int dcb = int(scb[col]) - int(cb8[row * 8 + col]);
      const int dcr = int(scr[col]) - int(cr8[row * 8 + col]);
      ssd += static_cast<std::uint64_t>(dcb * dcb + dcr * dcr);
    }
  }
  return ssd;
}

void Encoder::plan_mb(const video::Frame& src, int bx, int by,
                      bool intra_frame, me::Mv mv, bool use_intra,
                      MbPlan& out) const {
  if (intra_frame) {
    out.intra = plan_intra_mb(src, bx, by);
    out.has_intra = true;
    out.has_inter = false;
    out.rd = false;
    return;
  }

  if (config_.mode_decision == ModeDecision::kRateDistortion) {
    // Plan all three candidates and reduce each to the pieces of its
    // Lagrangian cost that do not depend on the MVD predictor; stage 3
    // finishes the comparison. Scratch reconstructions are thrown away —
    // the winner is reconstructed for real from its plan in stage 3.
    out.rd = true;
    out.has_intra = true;
    out.has_inter = true;
    const double lambda = mode_lambda(config_.qp);
    std::uint8_t y16[kMb * kMb];
    std::uint8_t cb8[64];
    std::uint8_t cr8[64];

    out.inter = plan_inter_mb(src, bx, by, mv);
    out.inter.reconstruct(config_.qp, y16, cb8, cr8);
    out.inter_ssd = mb_ssd(src, bx, by, y16, cb8, cr8);
    out.inter_body_bits = 6;
    for (int b = 0; b < 6; ++b) {
      if ((out.inter.cbp >> b) & 1u) {
        out.inter_body_bits += block_coeff_bits(out.inter.levels[b]);
      }
    }

    out.intra = plan_intra_mb(src, bx, by);
    out.intra.reconstruct(config_.qp, y16, cb8, cr8);
    out.j_intra =
        static_cast<double>(mb_ssd(src, bx, by, y16, cb8, cr8)) +
        lambda * (2.0 + out.intra.payload_bits());

    out.j_skip = std::numeric_limits<double>::infinity();
    if (config_.allow_skip) {
      const int x = bx * kMb;
      const int y = by * kMb;
      for (int row = 0; row < kMb; ++row) {
        std::memcpy(y16 + row * kMb, front_ref_->y().row(y + row) + x, kMb);
      }
      for (int row = 0; row < 8; ++row) {
        std::memcpy(cb8 + row * 8, front_ref_->cb().row(y / 2 + row) + x / 2,
                    8);
        std::memcpy(cr8 + row * 8, front_ref_->cr().row(y / 2 + row) + x / 2,
                    8);
      }
      out.j_skip =
          static_cast<double>(mb_ssd(src, bx, by, y16, cb8, cr8)) +
          lambda * 1.0;
    }
    return;
  }

  out.rd = false;
  out.has_intra = use_intra;
  out.has_inter = !use_intra;
  if (use_intra) {
    out.intra = plan_intra_mb(src, bx, by);
  } else {
    out.inter = plan_inter_mb(src, bx, by, mv);
  }
}

// ------------------------------------------------------- macroblock coding

void Encoder::write_mb_from_plan(bool intra_frame, const MbPlan& plan, int bx,
                                 int by, SliceState& slice) {
  if (intra_frame) {
    // I-frame macroblocks carry no COD/mode bits.
    write_intra_plan(plan.intra, slice);
    reconstruct_intra_plan(plan.intra, bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.intra_mbs;
    return;
  }

  if (plan.rd) {
    write_rd_mb_from_plan(plan, bx, by, slice);
    return;
  }

  util::BitWriter& writer = *slice.writer;

  if (plan.has_intra) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(false);  // COD = 0 (coded)
    writer.put_bit(true);   // intra
    slice.counters.header += writer.bit_count() - before;
    write_intra_plan(plan.intra, slice);
    reconstruct_intra_plan(plan.intra, bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.intra_mbs;
    return;
  }

  // Heuristic INTER, degrading to SKIP when the zero-vector residual
  // quantised away in the plan stage.
  if (config_.allow_skip && plan.inter.skippable()) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(true);  // COD = 1
    slice.counters.header += writer.bit_count() - before;
    reconstruct_skip_mb(bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.skip_mbs;
    ++slice.inter_mbs;  // rebalanced against skip_mbs at frame end
    return;
  }

  const std::uint64_t header_start = writer.bit_count();
  writer.put_bit(false);  // COD = 0
  writer.put_bit(false);  // inter
  slice.counters.header += writer.bit_count() - header_start;

  write_inter_plan_payload(
      plan.inter, coded_field_.median_predictor(bx, by, slice.first_mb_row),
      slice);
  reconstruct_inter_plan(plan.inter, bx, by);
  coded_field_.set(bx, by, plan.inter.mv);
  ++slice.inter_mbs;
}

void Encoder::write_rd_mb_from_plan(const MbPlan& plan, int bx, int by,
                                    SliceState& slice) {
  util::BitWriter& writer = *slice.writer;
  const double lambda = mode_lambda(config_.qp);
  const me::Mv predictor =
      coded_field_.median_predictor(bx, by, slice.first_mb_row);

  // Identical arithmetic to planning the candidates in place: payload bits
  // are the uint32 sum of the MVD code and the precomputed body, so J_inter
  // here equals the pre-plan-stage encoder's value bit for bit.
  const std::uint32_t inter_payload =
      mvd_bits(plan.inter.mv, predictor) + plan.inter_body_bits;
  const double j_inter = static_cast<double>(plan.inter_ssd) +
                         lambda * (2.0 + inter_payload);

  if (plan.j_skip <= j_inter && plan.j_skip <= plan.j_intra) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(true);  // COD = 1
    slice.counters.header += writer.bit_count() - before;
    reconstruct_skip_mb(bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.skip_mbs;
    ++slice.inter_mbs;  // rebalanced against skip_mbs at frame end
    return;
  }

  if (plan.j_intra < j_inter) {
    const std::uint64_t before = writer.bit_count();
    writer.put_bit(false);  // COD = 0
    writer.put_bit(true);   // intra
    slice.counters.header += writer.bit_count() - before;
    write_intra_plan(plan.intra, slice);
    reconstruct_intra_plan(plan.intra, bx, by);
    coded_field_.set(bx, by, {0, 0});
    ++slice.intra_mbs;
    return;
  }

  const std::uint64_t header_start = writer.bit_count();
  writer.put_bit(false);  // COD = 0
  writer.put_bit(false);  // inter
  slice.counters.header += writer.bit_count() - header_start;

  write_inter_plan_payload(plan.inter, predictor, slice);
  reconstruct_inter_plan(plan.inter, bx, by);
  coded_field_.set(bx, by, plan.inter.mv);
  ++slice.inter_mbs;
}

std::vector<std::uint8_t> Encoder::finish() {
  assert(!finished_);
  finished_ = true;
  return writer_.take();
}

void Encoder::set_qp(int qp) {
  if (qp < kMinQp || qp > kMaxQp) {
    throw std::invalid_argument("encoder: qp out of range 1..31");
  }
  config_.qp = qp;
}

}  // namespace acbm::codec
