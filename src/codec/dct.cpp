#include "codec/dct.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace acbm::codec {

namespace {

/// basis[u][x] = C(u)·cos((2x+1)uπ/16)/2 with C(0)=1/√2 — the orthonormal
/// 1-D DCT basis. Computed once at static-init time.
struct Basis {
  double b[kDctSize][kDctSize];

  Basis() {
    for (int u = 0; u < kDctSize; ++u) {
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < kDctSize; ++x) {
        b[u][x] = 0.5 * cu *
                  std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0);
      }
    }
  }
};

const Basis kBasis;

}  // namespace

void forward_dct8x8(const std::int16_t in[kDctSamples],
                    double out[kDctSamples]) {
  // Rows first.
  double tmp[kDctSamples];
  for (int y = 0; y < kDctSize; ++y) {
    for (int u = 0; u < kDctSize; ++u) {
      double s = 0.0;
      for (int x = 0; x < kDctSize; ++x) {
        s += kBasis.b[u][x] * in[y * kDctSize + x];
      }
      tmp[y * kDctSize + u] = s;
    }
  }
  // Columns.
  for (int u = 0; u < kDctSize; ++u) {
    for (int v = 0; v < kDctSize; ++v) {
      double s = 0.0;
      for (int y = 0; y < kDctSize; ++y) {
        s += kBasis.b[v][y] * tmp[y * kDctSize + u];
      }
      out[v * kDctSize + u] = s;
    }
  }
}

void inverse_dct8x8(const double in[kDctSamples], double out[kDctSamples]) {
  double tmp[kDctSamples];
  // Columns first (transpose of forward order; any order is valid).
  for (int u = 0; u < kDctSize; ++u) {
    for (int y = 0; y < kDctSize; ++y) {
      double s = 0.0;
      for (int v = 0; v < kDctSize; ++v) {
        s += kBasis.b[v][y] * in[v * kDctSize + u];
      }
      tmp[y * kDctSize + u] = s;
    }
  }
  // Rows.
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      double s = 0.0;
      for (int u = 0; u < kDctSize; ++u) {
        s += kBasis.b[u][x] * tmp[y * kDctSize + u];
      }
      out[y * kDctSize + x] = s;
    }
  }
}

void inverse_dct8x8_to_int(const std::int16_t in[kDctSamples],
                           std::int16_t out[kDctSamples], int limit) {
  double coeffs[kDctSamples];
  for (int i = 0; i < kDctSamples; ++i) {
    coeffs[i] = in[i];
  }
  double spatial[kDctSamples];
  inverse_dct8x8(coeffs, spatial);
  for (int i = 0; i < kDctSamples; ++i) {
    const long r = std::lround(spatial[i]);
    out[i] = static_cast<std::int16_t>(
        std::clamp<long>(r, -limit, limit));
  }
}

}  // namespace acbm::codec
