#include "codec/quant.hpp"

#include <algorithm>
#include <cmath>

namespace acbm::codec {

namespace {

constexpr int kCoeffLimit = 2047;  // H.263 coefficient clamp

}  // namespace

std::int16_t quant_ac(double coeff, int qp, bool intra) {
  const double mag = std::abs(coeff);
  double level;
  if (intra) {
    level = mag / (2.0 * qp);
  } else {
    level = (mag - qp / 2.0) / (2.0 * qp);
  }
  long l = static_cast<long>(level);  // truncation toward zero (TMN)
  l = std::clamp<long>(l, 0, 127);
  return static_cast<std::int16_t>(coeff < 0 ? -l : l);
}

std::int16_t dequant_ac(std::int16_t level, int qp) {
  if (level == 0) {
    return 0;
  }
  const int mag = level < 0 ? -level : level;
  int rec = qp * (2 * mag + 1);
  if ((qp & 1) == 0) {
    rec -= 1;
  }
  rec = std::min(rec, kCoeffLimit);
  return static_cast<std::int16_t>(level < 0 ? -rec : rec);
}

std::uint8_t quant_intra_dc(double coeff) {
  long level = std::lround(coeff / 8.0);
  level = std::clamp<long>(level, 1, 254);
  return static_cast<std::uint8_t>(level);
}

std::int16_t dequant_intra_dc(std::uint8_t level) {
  return static_cast<std::int16_t>(static_cast<int>(level) * 8);
}

void quantize_block(const double coeffs[kDctSamples],
                    std::int16_t levels[kDctSamples], int qp, bool intra) {
  for (int i = 0; i < kDctSamples; ++i) {
    if (intra && i == 0) {
      levels[0] = 0;  // DC handled out of band
      continue;
    }
    levels[i] = quant_ac(coeffs[i], qp, intra);
  }
}

void dequantize_block(const std::int16_t levels[kDctSamples],
                      std::int16_t coeffs[kDctSamples], int qp, bool intra) {
  for (int i = 0; i < kDctSamples; ++i) {
    if (intra && i == 0) {
      coeffs[0] = 0;  // caller adds the dequantized DC
      continue;
    }
    coeffs[i] = dequant_ac(levels[i], qp);
  }
}

}  // namespace acbm::codec
