#pragma once
// Frame-level rate control (TMN-style virtual buffer).
//
// The paper's conclusions claim ACBM "is suitable for variable bandwidth
// channel conditions" because its complexity and quality self-adapt through
// the Qp-dependent threshold. This controller supplies the missing loop:
// it picks a per-frame quantiser that tracks a (possibly time-varying)
// target bitrate, so the variable-bandwidth experiment in
// examples/variable_bandwidth.cpp can exercise that claim end to end.
//
// Model: a virtual channel buffer drains at target_bits_per_frame every
// frame and fills with the actual coded bits. The quantiser steps up when
// the backlog exceeds dead-band thresholds and down when the buffer runs
// dry, with the per-frame step clamped to ±2 (H.263's DQUANT discipline
// keeps quality from oscillating).

#include <cstdint>

namespace acbm::codec {

class RateController {
 public:
  struct Config {
    double target_kbps = 48.0;  ///< channel rate the buffer drains at
    double fps = 30.0;          ///< frame rate (drain interval)
    int initial_qp = 16;
    int min_qp = 2;
    int max_qp = 31;
    /// Backlog (in frames' worth of bits) at which Qp starts increasing.
    double upper_deadband = 0.5;
    /// Buffer deficit (frames' worth) at which Qp starts decreasing.
    double lower_deadband = -0.5;
  };

  explicit RateController(const Config& config);

  /// Quantiser to use for the next frame.
  [[nodiscard]] int next_qp() const { return qp_; }

  /// Feed back the actual size of the frame just encoded.
  void frame_encoded(std::uint64_t bits);

  /// Changes the channel rate mid-stream (variable-bandwidth scenario).
  /// The buffer state carries over, so the controller reacts smoothly.
  void set_target_kbps(double kbps);

  /// Signed backlog in bits (positive = over budget).
  [[nodiscard]] double buffer_bits() const { return buffer_bits_; }

  /// Backlog expressed in frames' worth of target bits.
  [[nodiscard]] double backlog_frames() const;

  [[nodiscard]] double target_bits_per_frame() const {
    return target_bits_per_frame_;
  }

 private:
  Config config_;
  double target_bits_per_frame_;
  double buffer_bits_ = 0.0;
  int qp_;
};

}  // namespace acbm::codec
