#include "codec/mc.hpp"

namespace acbm::codec {

void predict_luma(const video::HalfpelPlanes& ref, int x, int y, me::Mv mv,
                  int bw, int bh, std::uint8_t* dst, int stride) {
  // Interpolates on the fly from the integer plane (H.263 rounding —
  // bit-identical to sampling a pre-built phase plane), so prediction never
  // forces the lazy HalfpelPlanes to materialise. One block's worth of
  // bilinear taps per coded macroblock replaces the whole-frame 4-plane
  // interpolation pass the eager construction used to charge every frame.
  const int phase_h = mv.x & 1;
  const int phase_v = mv.y & 1;
  const video::Plane& plane = ref.integer_plane();
  const int rx = x + ((mv.x - phase_h) >> 1);
  const int ry = y + ((mv.y - phase_v) >> 1);
  for (int row = 0; row < bh; ++row) {
    const std::uint8_t* r0 = plane.row(ry + row) + rx;
    const std::uint8_t* r1 = phase_v != 0 ? r0 + plane.stride() : r0;
    std::uint8_t* out = dst + static_cast<std::ptrdiff_t>(row) * stride;
    if (phase_h == 0 && phase_v == 0) {
      for (int col = 0; col < bw; ++col) {
        out[col] = r0[col];
      }
    } else if (phase_v == 0) {
      for (int col = 0; col < bw; ++col) {
        out[col] = static_cast<std::uint8_t>((r0[col] + r0[col + 1] + 1) >> 1);
      }
    } else if (phase_h == 0) {
      for (int col = 0; col < bw; ++col) {
        out[col] = static_cast<std::uint8_t>((r0[col] + r1[col] + 1) >> 1);
      }
    } else {
      for (int col = 0; col < bw; ++col) {
        out[col] = static_cast<std::uint8_t>(
            (r0[col] + r0[col + 1] + r1[col] + r1[col + 1] + 2) >> 2);
      }
    }
  }
}

me::Mv derive_chroma_mv(me::Mv luma_mv) {
  // luma_mv is in luma half-pels; the true chroma displacement is
  // luma_mv / 2 chroma half-pels. H.263 rounds fractional chroma positions
  // (luma_mv mod 4 ∈ {1,2,3} → half-sample) toward the half-pel grid.
  auto round_component = [](int v) {
    const int sign = v < 0 ? -1 : 1;
    const int a = v < 0 ? -v : v;
    const int whole = a >> 2;          // full chroma samples
    const int frac = a & 3;            // quarters of a chroma sample
    return sign * (whole * 2 + (frac != 0 ? 1 : 0));
  };
  return {round_component(luma_mv.x), round_component(luma_mv.y)};
}

void predict_chroma(const video::Plane& ref_chroma, int cx, int cy, me::Mv cmv,
                    int bw, int bh, std::uint8_t* dst, int stride) {
  for (int row = 0; row < bh; ++row) {
    std::uint8_t* out = dst + static_cast<std::ptrdiff_t>(row) * stride;
    for (int col = 0; col < bw; ++col) {
      out[col] = video::sample_halfpel(ref_chroma, (cx + col) * 2 + cmv.x,
                                       (cy + row) * 2 + cmv.y);
    }
  }
}

}  // namespace acbm::codec
