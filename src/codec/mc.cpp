#include "codec/mc.hpp"

namespace acbm::codec {

void predict_luma(const video::HalfpelPlanes& ref, int x, int y, me::Mv mv,
                  int bw, int bh, std::uint8_t* dst, int stride) {
  const int phase_h = mv.x & 1;
  const int phase_v = mv.y & 1;
  const video::Plane& plane = ref.plane(phase_h, phase_v);
  const int rx = x + ((mv.x - phase_h) >> 1);
  const int ry = y + ((mv.y - phase_v) >> 1);
  for (int row = 0; row < bh; ++row) {
    const std::uint8_t* src = plane.row(ry + row) + rx;
    std::uint8_t* out = dst + static_cast<std::ptrdiff_t>(row) * stride;
    for (int col = 0; col < bw; ++col) {
      out[col] = src[col];
    }
  }
}

me::Mv derive_chroma_mv(me::Mv luma_mv) {
  // luma_mv is in luma half-pels; the true chroma displacement is
  // luma_mv / 2 chroma half-pels. H.263 rounds fractional chroma positions
  // (luma_mv mod 4 ∈ {1,2,3} → half-sample) toward the half-pel grid.
  auto round_component = [](int v) {
    const int sign = v < 0 ? -1 : 1;
    const int a = v < 0 ? -v : v;
    const int whole = a >> 2;          // full chroma samples
    const int frac = a & 3;            // quarters of a chroma sample
    return sign * (whole * 2 + (frac != 0 ? 1 : 0));
  };
  return {round_component(luma_mv.x), round_component(luma_mv.y)};
}

void predict_chroma(const video::Plane& ref_chroma, int cx, int cy, me::Mv cmv,
                    int bw, int bh, std::uint8_t* dst, int stride) {
  for (int row = 0; row < bh; ++row) {
    std::uint8_t* out = dst + static_cast<std::ptrdiff_t>(row) * stride;
    for (int col = 0; col < bw; ++col) {
      out[col] = video::sample_halfpel(ref_chroma, (cx + col) * 2 + cmv.x,
                                       (cy + row) * 2 + cmv.y);
    }
  }
}

}  // namespace acbm::codec
