#include "codec/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "codec/deblock.hpp"
#include "me/sad.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "video/psnr.hpp"

namespace acbm::codec {

namespace {
constexpr int kMb = me::kBlockSize;  // 16
}  // namespace

EncoderPipeline::EncoderPipeline(Encoder& encoder,
                                 const ParallelConfig& parallel)
    : enc_(encoder),
      worker_count_(util::ThreadPool::resolve_thread_count(parallel.threads)) {
  if (worker_count_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(worker_count_);
  }
}

EncoderPipeline::~EncoderPipeline() = default;

void EncoderPipeline::ensure_workers() {
  if (!pool_ || !workers_.empty()) {
    return;
  }
  workers_.reserve(static_cast<std::size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.push_back(enc_.estimator_->clone());
  }
}

FrameReport EncoderPipeline::encode_frame(const video::Frame& src) {
  Encoder& e = enc_;
  const bool intra_frame =
      e.frame_index_ == 0 ||
      (e.config_.intra_period > 0 &&
       e.frame_index_ % e.config_.intra_period == 0);

  FrameReport report;
  report.intra = intra_frame;
  const std::uint64_t frame_start_bits = e.writer_.bit_count();

  e.writer_.align();
  e.writer_.put_bits(kFrameSync, 16);
  e.writer_.put_bits(intra_frame ? 0 : 1, 1);
  e.writer_.put_bits(static_cast<std::uint32_t>(e.config_.qp), 5);
  e.writer_.put_bit(e.config_.deblock);

  Encoder::MbBitCounters counters;
  counters.header = e.writer_.bit_count() - frame_start_bits;

  // Per-frame state is reset IN PLACE: the reference snapshot, both MV
  // fields and (below) the per-slice writers and plan buffers all reuse
  // their previous frame's allocations, so steady-state encoding does no
  // per-frame heap traffic for them — measurable at HD sizes, byte-exact
  // always (the reset paths reproduce freshly-constructed state).
  if (!intra_frame) {
    e.ref_half_.reset(e.ref_.y());
  }
  e.me_field_.reset_for_picture(e.size_.width, e.size_.height);
  e.coded_field_.reset_for_picture(e.size_.width, e.size_.height);

  if (!intra_frame) {
    motion_stage(src, report);
    mode_stage(src);
  }
  util::Timer stage_timer;
  plan_stage(src, intra_frame);
  report.plan_stage_seconds = stage_timer.seconds();
  stage_timer.restart();
  entropy_stage(intra_frame, counters, report);
  report.entropy_stage_seconds = stage_timer.seconds();

  e.writer_.align();

  // entropy_stage counted every inter-coded attempt; re-express the ones
  // that degraded to SKIP, matching the report's historical semantics.
  report.inter_mbs -= report.skip_mbs;

  report.bits = e.writer_.bit_count() - frame_start_bits;
  report.mv_bits = counters.mv;
  report.coeff_bits = counters.coeff;
  report.header_bits = counters.header;

  if (e.config_.deblock) {
    deblock_frame(e.recon_, e.config_.qp);
  }
  e.recon_.extend_borders();
  report.psnr_y = video::psnr_luma(src, e.recon_);
  report.psnr_yuv = video::psnr_yuv(src, e.recon_);
  report.me_field_smoothness = e.me_field_.smoothness_l1();

  // Advance reference state.
  e.ref_ = e.recon_;
  e.ref_.extend_borders();
  e.prev_me_field_ = e.me_field_;
  ++e.frame_index_;
  return report;
}

// ------------------------------------------------------------ motion stage

me::EstimateResult EncoderPipeline::estimate_block(
    me::MotionEstimator& estimator, const video::Frame& src, int bx,
    int by) const {
  const Encoder& e = enc_;
  me::BlockContext ctx;
  ctx.cur = &src.y();
  ctx.ref = &e.ref_half_;
  ctx.x = bx * kMb;
  ctx.y = by * kMb;
  ctx.bx = bx;
  ctx.by = by;
  ctx.window = me::unrestricted_window(e.config_.search_range);
  // Rate-aware search (me_lambda > 0) prices MVD bits against the median of
  // the ME field: its inputs (left, above, above-right) are exactly the
  // wavefront-ordered entries, so the predictor is identical in serial and
  // parallel encodes. λ = 0 (default) makes cost ≡ SAD.
  ctx.cost = me::MotionCost(e.config_.me_lambda,
                            e.me_field_.median_predictor(bx, by));
  ctx.half_pel = e.config_.half_pel;
  ctx.cur_field = &e.me_field_;
  ctx.prev_field = &e.prev_me_field_;
  ctx.qp = e.config_.qp;
  ctx.frame = e.frame_index_;
  return estimator.estimate(ctx);
}

void EncoderPipeline::motion_stage(const video::Frame& src,
                                   FrameReport& report) {
  const std::size_t mbs =
      static_cast<std::size_t>(enc_.me_field_.mbs_x()) *
      static_cast<std::size_t>(enc_.me_field_.mbs_y());
  me_results_.assign(mbs, me::EstimateResult{});

  if (pool_) {
    motion_stage_wavefront(src);
  } else {
    motion_stage_serial(src);
  }

  // Serial reduction keeps the report totals independent of scheduling.
  for (const me::EstimateResult& er : me_results_) {
    report.me_positions += er.positions;
    if (er.used_full_search) {
      ++report.full_search_blocks;
    }
  }
}

void EncoderPipeline::motion_stage_serial(const video::Frame& src) {
  Encoder& e = enc_;
  const int mbs_x = e.me_field_.mbs_x();
  const int mbs_y = e.me_field_.mbs_y();
  for (int by = 0; by < mbs_y; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      me_results_[idx] = estimate_block(*e.estimator_, src, bx, by);
      e.me_field_.set(bx, by, me_results_[idx].mv);
    }
  }
}

void EncoderPipeline::motion_stage_wavefront(const video::Frame& src) {
  Encoder& e = enc_;
  ensure_workers();
  const int mbs_x = e.me_field_.mbs_x();
  const int mbs_y = e.me_field_.mbs_y();

  // progress[by] = macroblocks of row `by` finished so far. Block (bx, by)
  // may start once row by−1 has finished through column bx+1 (its
  // above-right predictor) — the classic two-block wavefront stagger. The
  // dependency wait parks on a per-row condition variable after a short
  // spin (WavefrontProgress), so a stalled row sleeps instead of burning a
  // core yielding — the behaviour that matters once rows outnumber cores or
  // the machine is busy.
  util::WavefrontProgress progress(mbs_y);

  for (int by = 0; by < mbs_y; ++by) {
    // One task per row. The pool dispatches FIFO, so a row's predecessor is
    // always running or finished before the row starts: the dependency wait
    // below cannot deadlock.
    pool_->submit([this, &src, &progress, by, mbs_x, &e] {
      const int worker = util::ThreadPool::worker_index();
      assert(worker >= 0 && worker < static_cast<int>(workers_.size()));
      me::MotionEstimator& estimator = *workers_[static_cast<std::size_t>(
          worker)];
      for (int bx = 0; bx < mbs_x; ++bx) {
        if (by > 0) {
          progress.wait_for(by - 1, std::min(bx + 2, mbs_x));
        }
        const std::size_t idx =
            static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) +
            static_cast<std::size_t>(bx);
        me_results_[idx] = estimate_block(estimator, src, bx, by);
        e.me_field_.set(bx, by, me_results_[idx].mv);
        progress.publish(by, bx + 1);
      }
    });
  }
  pool_->wait_idle();

  // Drain every worker's statistics into the caller's estimator. Totals are
  // additive, so the result matches a serial run regardless of which worker
  // processed which rows.
  for (const auto& worker : workers_) {
    e.estimator_->merge_stats(*worker);
  }
}

// -------------------------------------------------------------- mode stage

void EncoderPipeline::mode_stage_rows(const video::Frame& src, int row_begin,
                                      int row_end) {
  const Encoder& e = enc_;
  const int mbs_x = e.me_field_.mbs_x();
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      // TMN5 heuristic: INTRA when the block's own activity (Intra_SAD)
      // undercuts the motion-compensated SAD by more than the bias.
      const std::uint32_t activity =
          me::intra_sad(src.y(), bx * kMb, by * kMb, kMb, kMb);
      const bool use_intra =
          static_cast<std::int64_t>(activity) + e.config_.intra_bias <
          static_cast<std::int64_t>(me_results_[idx].sad);
      use_intra_[idx] = use_intra ? 1 : 0;
    }
  }
}

void EncoderPipeline::mode_stage(const video::Frame& src) {
  const Encoder& e = enc_;
  const int mbs_x = e.me_field_.mbs_x();
  const int mbs_y = e.me_field_.mbs_y();

  if (e.config_.mode_decision == ModeDecision::kRateDistortion) {
    // RD decisions price MVD bits against the coded-field median predictor,
    // which only exists as entropy coding progresses — the decision is made
    // per block inside the (serial) entropy stage, and use_intra_ is never
    // read there.
    return;
  }

  use_intra_.assign(
      static_cast<std::size_t>(mbs_x) * static_cast<std::size_t>(mbs_y), 0);

  if (pool_) {
    // Independent per block — plain row slices, no wavefront needed.
    const int rows_per_task =
        std::max(1, (mbs_y + worker_count_ - 1) / worker_count_);
    for (int begin = 0; begin < mbs_y; begin += rows_per_task) {
      const int end = std::min(begin + rows_per_task, mbs_y);
      pool_->submit([this, &src, begin, end] {
        mode_stage_rows(src, begin, end);
      });
    }
    pool_->wait_idle();
  } else {
    mode_stage_rows(src, 0, mbs_y);
  }
}

// -------------------------------------------------------------- plan stage

void EncoderPipeline::plan_stage_rows(const video::Frame& src,
                                      bool intra_frame, int row_begin,
                                      int row_end) {
  const Encoder& e = enc_;
  const int mbs_x = e.me_field_.mbs_x();
  const bool rd = e.config_.mode_decision == ModeDecision::kRateDistortion;
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      const me::Mv mv = intra_frame ? me::Mv{} : me_results_[idx].mv;
      // use_intra_ is only filled by the heuristic mode stage; RD plans
      // both candidates and lets stage 3 pick.
      const bool use_intra = !intra_frame && !rd && use_intra_[idx] != 0;
      e.plan_mb(src, bx, by, intra_frame, mv, use_intra, plans_[idx]);
    }
  }
}

void EncoderPipeline::plan_stage(const video::Frame& src, bool intra_frame) {
  Encoder& e = enc_;
  const int mbs_x = e.me_field_.mbs_x();
  const int mbs_y = e.me_field_.mbs_y();
  plans_.resize(static_cast<std::size_t>(mbs_x) *
                static_cast<std::size_t>(mbs_y));

  if (pool_) {
    // Independent per block — plain row slices, like the mode stage.
    const int rows_per_task =
        std::max(1, (mbs_y + worker_count_ - 1) / worker_count_);
    for (int begin = 0; begin < mbs_y; begin += rows_per_task) {
      const int end = std::min(begin + rows_per_task, mbs_y);
      pool_->submit([this, &src, intra_frame, begin, end] {
        plan_stage_rows(src, intra_frame, begin, end);
      });
    }
    pool_->wait_idle();
  } else {
    plan_stage_rows(src, intra_frame, 0, mbs_y);
  }
}

// ----------------------------------------------------------- entropy stage

void EncoderPipeline::entropy_slice(bool intra_frame,
                                    Encoder::SliceState& slice, int row_begin,
                                    int row_end) {
  Encoder& e = enc_;
  // Same stride source as the stages that filled me_results_/plans_.
  const int mbs_x = e.me_field_.mbs_x();

  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      e.write_mb_from_plan(intra_frame, plans_[idx], bx, by, slice);
    }
  }
}

void EncoderPipeline::fold_slice(const Encoder::SliceState& slice,
                                 Encoder::MbBitCounters& counters,
                                 FrameReport& report) {
  counters.mv += slice.counters.mv;
  counters.coeff += slice.counters.coeff;
  counters.header += slice.counters.header;
  report.intra_mbs += slice.intra_mbs;
  report.inter_mbs += slice.inter_mbs;
  report.skip_mbs += slice.skip_mbs;
}

void EncoderPipeline::entropy_stage(bool intra_frame,
                                    Encoder::MbBitCounters& counters,
                                    FrameReport& report) {
  Encoder& e = enc_;
  const int mbs_y = e.me_field_.mbs_y();
  const int slice_count = e.slices_;  // clamped to [1, mbs_y] at construction

  if (slice_count == 1) {
    // Legacy ACV1 framing: one implicit slice straight into the stream
    // writer, no slice directory — byte-identical to the pre-slice encoder.
    Encoder::SliceState slice;
    slice.writer = &e.writer_;
    slice.first_mb_row = 0;
    entropy_slice(intra_frame, slice, 0, mbs_y);
    fold_slice(slice, counters, report);
    return;
  }

  // ACV2: each slice entropy-codes its rows into a private writer. Slice s
  // owns rows [s·mbs_y/N, (s+1)·mbs_y/N) — the same deterministic split the
  // decoder reconstructs from the slice headers. All inputs (me_results_,
  // use_intra_, the reference) are fixed before this stage, and slices
  // write only row-disjoint state, so the tasks are embarrassingly parallel
  // and the bytes are independent of scheduling. The writers are pipeline
  // members reset (not destroyed) per frame, so their payload buffers are
  // reused across frames.
  slice_writers_.resize(static_cast<std::size_t>(slice_count));
  std::vector<util::BitWriter>& writers = slice_writers_;
  std::vector<Encoder::SliceState> slices(
      static_cast<std::size_t>(slice_count));
  for (int s = 0; s < slice_count; ++s) {
    slices[static_cast<std::size_t>(s)].writer =
        &writers[static_cast<std::size_t>(s)];
    slices[static_cast<std::size_t>(s)].first_mb_row = s * mbs_y / slice_count;
  }
  const auto row_end = [&](int s) {
    return s + 1 < slice_count
               ? slices[static_cast<std::size_t>(s) + 1].first_mb_row
               : mbs_y;
  };

  if (pool_) {
    for (int s = 0; s < slice_count; ++s) {
      Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
      const int end = row_end(s);
      pool_->submit([this, intra_frame, &slice, end] {
        entropy_slice(intra_frame, slice, slice.first_mb_row, end);
      });
    }
    pool_->wait_idle();
  } else {
    for (int s = 0; s < slice_count; ++s) {
      Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
      entropy_slice(intra_frame, slice, slice.first_mb_row, row_end(s));
    }
  }

  // Slice directory + byte-aligned payload concatenation, in slice order.
  const std::uint64_t dir_start = e.writer_.bit_count();
  e.writer_.align();
  e.writer_.put_bits(static_cast<std::uint32_t>(slice_count), 8);
  counters.header += e.writer_.bit_count() - dir_start;
  for (int s = 0; s < slice_count; ++s) {
    Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
    util::BitWriter& writer = writers[static_cast<std::size_t>(s)];
    writer.align();  // zero-pad the tail exactly as take() did
    const std::span<const std::uint8_t> payload = writer.bytes();
    const std::uint64_t header_start = e.writer_.bit_count();
    e.writer_.put_bits(kSliceSync, 16);
    e.writer_.put_bits(static_cast<std::uint32_t>(s), 8);
    e.writer_.put_bits(static_cast<std::uint32_t>(slice.first_mb_row), 16);
    e.writer_.put_bits(static_cast<std::uint32_t>(payload.size()), 32);
    counters.header += e.writer_.bit_count() - header_start;
    e.writer_.put_bytes(payload);
    // Keep the byte buffer's capacity for the next frame's payload.
    writer.reset();
    fold_slice(slice, counters, report);
  }
}

}  // namespace acbm::codec
