#include "codec/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "codec/deblock.hpp"
#include "codec/service_stats.hpp"
#include "me/sad.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault_injector.hpp"
#include "video/psnr.hpp"

namespace acbm::codec {

namespace {
constexpr int kMb = me::kBlockSize;  // 16

std::exception_ptr session_error(SessionErrorClass cls, std::uint64_t seq,
                                 const char* site, const std::string& detail) {
  return std::make_exception_ptr(SessionError(cls, seq, site, detail));
}

std::int32_t trace_arg(std::uint64_t v) { return static_cast<std::int32_t>(v); }

void record_latency(obs::Histogram* hist, double seconds) {
  if (hist != nullptr) {
    hist->record(static_cast<std::uint64_t>(seconds * 1e9));
  }
}
}  // namespace

void EncoderPipeline::FrameJob::resolve() {
  if (resolved) {
    return;
  }
  resolved = true;
  if (trace_id != 0) {
    obs::async_end("svc", "frame", trace_id);
  }
  if (error != nullptr) {
    // Move the job's reference into the shared state so the last release of
    // the exception object happens on the consumer side (future::get /
    // catch), not in ~FrameJob on a pool worker.
    promise.set_exception(std::exchange(error, nullptr));
  } else {
    promise.set_value(std::move(out));
  }
}

EncoderPipeline::FrameJob::~FrameJob() {
  // Broken-promise guard: a job destroyed unresolved (session torn down
  // around it) rejects with kClosed so the consumer never sees
  // std::future_error{broken_promise}.
  if (!resolved) {
    promise.set_exception(session_error(
        SessionErrorClass::kClosed, submit_seq, "close",
        "session destroyed with this frame unresolved"));
  }
}

EncoderPipeline::EncoderPipeline(Encoder& encoder,
                                 const ParallelConfig& parallel)
    : enc_(encoder),
      worker_count_(util::ThreadPool::resolve_thread_count(parallel.threads)) {
  if (worker_count_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(worker_count_);
    active_pool_ = pool_.get();
  }
}

EncoderPipeline::EncoderPipeline(Encoder& encoder,
                                 util::ThreadPool& shared_pool)
    : enc_(encoder),
      worker_count_(shared_pool.size()),
      active_pool_(&shared_pool),
      queue_(std::make_unique<util::ThreadPool::Queue>(shared_pool)) {}

EncoderPipeline::~EncoderPipeline() {
  if (pipelined()) {
    drain();
  }
  // queue_'s destructor then drains the lane before the shared pool loses
  // the back-reference; pool_ (standalone) joins its workers after that.
}

void EncoderPipeline::ensure_workers() {
  if (active_pool_ == nullptr) {
    return;
  }
  if (workers_.empty()) {
    workers_.reserve(static_cast<std::size_t>(worker_count_));
    for (int i = 0; i < worker_count_; ++i) {
      workers_.push_back(enc_.estimator_->clone());
    }
  }
  if (enc_.degraded_estimator_ != nullptr && degraded_workers_.empty()) {
    degraded_workers_.reserve(static_cast<std::size_t>(worker_count_));
    for (int i = 0; i < worker_count_; ++i) {
      degraded_workers_.push_back(enc_.degraded_estimator_->clone());
    }
  }
}

bool EncoderPipeline::is_intra(std::uint64_t frame) const {
  return frame == 0 ||
         (enc_.config_.intra_period > 0 &&
          frame % static_cast<std::uint64_t>(enc_.config_.intra_period) == 0);
}

void EncoderPipeline::submit_stage_task(util::TaskGroup& group,
                                        std::function<void()> task) {
  if (queue_) {
    active_pool_->submit(*queue_, std::move(task), &group);
  } else {
    active_pool_->submit(std::move(task));
  }
}

void EncoderPipeline::wait_stage(util::TaskGroup& group) {
  if (queue_) {
    // Helping wait: the front/back driver task is itself a pool worker, so
    // it runs its own stage tasks instead of parking a worker.
    active_pool_->wait(group);
  } else {
    // Standalone mode runs one frame at a time from the caller's thread;
    // pool-wide idle is exactly the stage barrier.
    active_pool_->wait_idle();
  }
}

// ------------------------------------------------------------ frame driver

FrameReport EncoderPipeline::encode_frame(const video::Frame& src) {
  if (pipelined()) {
    // Service mode: route through the async machinery (the lane's FIFO
    // ordering is part of the deadlock-freedom argument, so there is no
    // separate synchronous path) and block on this frame's packet.
    return submit_frame(src).get().report;
  }
  FrameReport report;
  util::Timer wall;
  const std::uint64_t frame = next_index_++;
  run_front(src, frame, report, /*degraded=*/false);
  run_back(src, frame, report, nullptr);
  report.frame_wall_seconds = wall.seconds();
  record_latency(enc_.stage_metrics_.frame_wall, report.frame_wall_seconds);
  return report;
}

std::future<EncodedFrame> EncoderPipeline::submit_frame(video::Frame src) {
  return submit_frame(std::move(src), SubmitOptions{});
}

std::future<EncodedFrame> EncoderPipeline::submit_frame(
    video::Frame src, const SubmitOptions& options) {
  return *enqueue(std::move(src), options, /*overload_as_error=*/true);
}

std::optional<std::future<EncodedFrame>> EncoderPipeline::try_submit_frame(
    video::Frame src, const SubmitOptions& options) {
  return enqueue(std::move(src), options, /*overload_as_error=*/false);
}

std::optional<std::future<EncodedFrame>> EncoderPipeline::enqueue(
    video::Frame src, const SubmitOptions& options, bool overload_as_error) {
  if (!pipelined()) {
    throw std::logic_error(
        "Encoder::submit_frame requires a shared-pool (service) encoder");
  }
  ServiceStatsSink* stats = enc_.stats_sink_;
  auto job = std::make_unique<FrameJob>();
  job->src = std::move(src);
  job->deadline = options.deadline;
  std::future<EncodedFrame> future = job->promise.get_future();
  Reap reap;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    const std::uint64_t seq = next_seq_++;
    job->submit_seq = seq;
    if (failed_.load(std::memory_order_relaxed)) {
      // Fail fast: the session is latched; every further submit resolves
      // immediately so a driver loop notices without blocking on drain().
      job->error = session_error(SessionErrorClass::kSessionFailed, seq,
                                 "submit", failure_message_);
      if (stats != nullptr) {
        stats->add_failed();
      }
    } else {
      std::size_t pending = 0;
      for (const auto& j : jobs_) {
        if (j->stage == FrameJob::Stage::kPending) {
          ++pending;
        }
      }
      if (options.queue_limit > 0 &&
          pending >= static_cast<std::size_t>(options.queue_limit)) {
        if (options.degrade_on_overload &&
            enc_.degraded_estimator_ != nullptr) {
          // Degradation ladder: admit anyway, but flag the frame for the
          // cheaper estimator instead of shedding it.
          job->degraded = true;
          obs::instant("svc", "degrade", trace_arg(enc_.trace_session_),
                       trace_arg(seq));
          if (stats != nullptr) {
            stats->add_degraded();
          }
        } else {
          obs::instant("svc", "shed.overload", trace_arg(enc_.trace_session_),
                       trace_arg(seq));
          if (stats != nullptr) {
            stats->add_rejected();
          }
          if (!overload_as_error) {
            return std::nullopt;  // ~FrameJob abandons the untouched future
          }
          job->error = session_error(
              SessionErrorClass::kOverloaded, seq, "submit",
              "admission queue full (queue_limit=" +
                  std::to_string(options.queue_limit) + ")");
        }
      }
      if (job != nullptr && job->error == nullptr) {
        if (stats != nullptr) {
          stats->add_accepted();
          stats->note_queue_depth(pending + 1);
        }
        // Async submit→resolve span: id unique across sessions (the +1 on
        // the session keeps the id non-zero, resolve()'s disarmed marker).
        job->trace_id =
            ((enc_.trace_session_ + 1) << 32) | (seq & 0xffffffffu);
        obs::async_begin("svc", "frame", job->trace_id,
                         trace_arg(enc_.trace_session_), trace_arg(seq));
        jobs_.push_back(std::move(job));
        pump_locked(reap);
      }
    }
  }
  if (job != nullptr) {
    job->resolve();  // rejected at admission; nobody waits on it yet
  }
  for (auto& shed : reap) {
    shed->resolve();
  }
  return future;
}

void EncoderPipeline::drain() {
  if (!pipelined()) {
    return;
  }
  std::unique_lock<std::mutex> lock(admit_mutex_);
  drained_.wait(lock, [this] {
    return jobs_.empty() && !front_running_ && !back_running_;
  });
}

void EncoderPipeline::pump_locked(Reap& reap) {
  if (failed_.load(std::memory_order_relaxed)) {
    return;  // nothing dispatches on a latched session
  }
  ServiceStatsSink* stats = enc_.stats_sink_;
  // Admit the back BEFORE the front: both land on the same FIFO lane, so
  // back(f−1) is always dispatched before front(f) — the task that parks on
  // a reference row can never be scheduled ahead of the task that publishes
  // it, even on a one-worker pool.
  if (!back_running_ && !jobs_.empty() &&
      jobs_.front()->stage == FrameJob::Stage::kFrontDone) {
    // In-flight jobs form the deque prefix in index order, so jobs_.front()
    // is the lowest-index frame — exactly the next back (the bitstream
    // writer is strictly ordered).
    FrameJob* job = jobs_.front().get();
    job->stage = FrameJob::Stage::kBack;
    back_running_ = true;
    active_pool_->submit(*queue_, [this, job] {
      std::exception_ptr error;
      try {
        run_back(job->src, job->index, job->out.report, &job->out.bytes);
        job->out.report.frame_wall_seconds = job->wall.seconds();
        record_latency(enc_.stage_metrics_.frame_wall,
                       job->out.report.frame_wall_seconds);
      } catch (...) {
        error = std::current_exception();
        release_back_waiters();
      }
      finish_back(job, error);
    });
  }
  // front(f) needs front(f−1) retired (fronts serialise on the estimator,
  // the ME-field parity and the ref binding) and back(f−2) retired (frame
  // f's parity-(f&1) stage buffers and reconstruction target free): with
  // in-flight jobs forming the deque prefix, both hold exactly when the
  // first pending job sits at position <= 1. Deadline-expired frames met
  // here are shed (kTimeout) WITHOUT consuming an encode index — the next
  // pending frame takes their place.
  if (!front_running_) {
    for (;;) {
      std::size_t k = 0;
      while (k < jobs_.size() && jobs_[k]->stage != FrameJob::Stage::kPending) {
        ++k;
      }
      if (k >= jobs_.size() || k > 1) {
        break;
      }
      FrameJob* job = jobs_[k].get();
      if (job->deadline &&
          std::chrono::steady_clock::now() > *job->deadline) {
        job->error =
            session_error(SessionErrorClass::kTimeout, job->submit_seq,
                          "dispatch", "deadline expired before dispatch");
        obs::instant("svc", "shed.timeout", trace_arg(enc_.trace_session_),
                     trace_arg(job->submit_seq));
        if (stats != nullptr) {
          stats->add_timed_out();
        }
        reap.push_back(extract_locked(job));
        continue;
      }
      job->index = next_index_++;
      job->out.frame_index = job->index;
      job->stage = FrameJob::Stage::kFront;
      front_running_ = true;
      active_pool_->submit(*queue_, [this, job] {
        std::exception_ptr error;
        try {
          job->wall.restart();
          if (enc_.fault_ != nullptr && enc_.fault_->armed()) {
            enc_.fault_->inject(enc_.fault_lane_, job->submit_seq);
          }
          run_front(job->src, job->index, job->out.report, job->degraded);
        } catch (...) {
          error = std::current_exception();
        }
        finish_front(job, error);
      });
      break;
    }
  }
}

void EncoderPipeline::finish_front(FrameJob* job, std::exception_ptr error) {
  Reap reap;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    front_running_ = false;
    if (error != nullptr) {
      fail_locked(job, std::move(error), "front", reap);
    } else if (failed_.load(std::memory_order_relaxed)) {
      // The session latched while this front ran (its reference frame's
      // back failed): the frame can never be entropy-coded.
      job->error = session_error(SessionErrorClass::kSessionFailed,
                                 job->submit_seq, "front", failure_message_);
      if (enc_.stats_sink_ != nullptr) {
        enc_.stats_sink_->add_failed();
      }
      reap.push_back(extract_locked(job));
    } else {
      job->stage = FrameJob::Stage::kFrontDone;
      pump_locked(reap);
    }
    drained_.notify_all();
  }
  for (auto& done : reap) {
    done->resolve();
  }
}

void EncoderPipeline::finish_back(FrameJob* job, std::exception_ptr error) {
  Reap reap;
  {
    const std::lock_guard<std::mutex> lock(admit_mutex_);
    back_running_ = false;
    if (error != nullptr) {
      fail_locked(job, std::move(error), "back", reap);
    } else {
      // Even if the session latched while this back ran (a newer frame's
      // front failed), this frame's bytes precede the failure point — the
      // packet is valid and resolves with its value.
      if (enc_.stats_sink_ != nullptr) {
        enc_.stats_sink_->add_completed();
      }
      reap.push_back(extract_locked(job));
      pump_locked(reap);
    }
    drained_.notify_all();
  }
  // Resolve outside the lock: the waiter may destroy the session (and try
  // to drain this pipeline) the moment it observes the result.
  for (auto& done : reap) {
    done->resolve();
  }
}

void EncoderPipeline::fail_locked(FrameJob* job, std::exception_ptr cause,
                                  const char* site, Reap& reap) {
  SessionErrorClass cls = SessionErrorClass::kEncodeFailed;
  std::string detail = "unknown exception";
  try {
    std::rethrow_exception(cause);
  } catch (const std::bad_alloc&) {
    cls = SessionErrorClass::kResource;
    detail = "allocation failure";
  } catch (const std::exception& e) {
    detail = e.what();
  } catch (...) {
  }
  failure_message_ = detail;
  failed_.store(true, std::memory_order_release);

  ServiceStatsSink* stats = enc_.stats_sink_;
  job->error = session_error(cls, job->submit_seq, site, detail);
  if (stats != nullptr) {
    stats->add_failed();
  }
  reap.push_back(extract_locked(job));
  // Collateral: every job that is not currently running resolves with
  // kSessionFailed. A job still running (the overlapped front or back)
  // stays — its own finish callback observes failed_ and resolves it.
  std::vector<FrameJob*> collateral;
  for (const auto& j : jobs_) {
    if (j->stage == FrameJob::Stage::kPending ||
        j->stage == FrameJob::Stage::kFrontDone) {
      collateral.push_back(j.get());
    }
  }
  for (FrameJob* j : collateral) {
    j->error = session_error(SessionErrorClass::kSessionFailed, j->submit_seq,
                             "shed", detail);
    if (stats != nullptr) {
      stats->add_failed();
    }
    reap.push_back(extract_locked(j));
  }
}

std::unique_ptr<EncoderPipeline::FrameJob> EncoderPipeline::extract_locked(
    FrameJob* job) {
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->get() == job) {
      std::unique_ptr<FrameJob> owner = std::move(*it);
      jobs_.erase(it);
      return owner;
    }
  }
  assert(false && "extract_locked: job not in jobs_");
  return nullptr;
}

void EncoderPipeline::release_back_waiters() {
  // The failed back stopped writing before this publish (same-thread
  // ordering through the catch), so released readers race with nothing —
  // they read stale-but-allocated reference samples, and every result of
  // this latched session is discarded anyway.
  ref_ready_[back_parity_].publish(
      back_base_ + static_cast<std::uint64_t>(enc_.mbs_y()));
}

// ------------------------------------------------------- front half (1–2.5)

void EncoderPipeline::run_front(const video::Frame& src, std::uint64_t f,
                                FrameReport& report, bool degraded) {
  Encoder& e = enc_;
  const std::int32_t tsess = trace_arg(e.trace_session_);
  const std::int32_t tframe = trace_arg(f);
  obs::Span frame_span("enc", "frame.front", tsess, tframe);
  const bool intra_frame = is_intra(f);
  report.intra = intra_frame;

  front_parity_ = pipelined() ? static_cast<int>(f & 1) : 0;
  front_frame_ = f;
  front_degraded_ = degraded && e.degraded_estimator_ != nullptr;
  e.front_ref_ = &e.recon_buf_[(f + 1) & 1];
  e.me_field_ = &e.me_fields_[f & 1];
  e.prev_me_field_ = &e.me_fields_[(f + 1) & 1];

  // Reset IN PLACE: the MV fields, plan buffers and slice writers all reuse
  // their previous allocations, so steady-state encoding does no per-frame
  // heap traffic for them — measurable at HD sizes, byte-exact always.
  e.me_field_->reset_for_picture(e.size_.width, e.size_.height);

  if (!intra_frame) {
    // Zero-copy reference: ME and motion compensation read the previous
    // frame's reconstruction buffer directly. Under pipelining its lower
    // rows may still be materialising — the row-readiness gate below keeps
    // every read behind the publication frontier.
    e.ref_half_.bind(&e.front_ref_->y());
    front_gate_ = (pipelined() && f > 0) ? &ref_ready_[(f + 1) & 1] : nullptr;
    front_wait_base_ =
        f > 0 ? ((f - 1) >> 1) * static_cast<std::uint64_t>(e.mbs_y()) : 0;

    util::Timer me_timer;
    {
      obs::Span me_span("enc", "stage.me", tsess, tframe);
      motion_stage(src, report);
    }
    report.me_stage_seconds = me_timer.seconds();
    record_latency(e.stage_metrics_.me, report.me_stage_seconds);
    obs::Span mode_span("enc", "stage.mode", tsess, tframe);
    mode_stage(src);
  }
  report.me_field_smoothness = e.me_field_->smoothness_l1();

  util::Timer plan_timer;
  {
    obs::Span plan_span("enc", "stage.plan", tsess, tframe);
    // No gate needed here even though plans read the reference: the ME
    // wavefront's last row always waits for the complete reference (its
    // search window extends past the picture bottom into the replicated
    // border — see rows_needed), and intra-frame plans read no reference.
    plan_stage(src, intra_frame);
  }
  report.plan_stage_seconds = plan_timer.seconds();
  record_latency(e.stage_metrics_.plan, report.plan_stage_seconds);
}

// ----------------------------------------------------------- back half (3)

void EncoderPipeline::run_back(const video::Frame& src, std::uint64_t f,
                               FrameReport& report,
                               std::vector<std::uint8_t>* bytes_out) {
  Encoder& e = enc_;
  const std::int32_t tsess = trace_arg(e.trace_session_);
  const std::int32_t tframe = trace_arg(f);
  obs::Span frame_span("enc", "frame.back", tsess, tframe);
  const bool intra_frame = is_intra(f);
  // Parity and counter base first, before anything that can throw:
  // release_back_waiters reads them to unwedge the next frame's gated ME
  // rows if this back fails.
  back_parity_ = pipelined() ? static_cast<int>(f & 1) : 0;
  back_frame_ = f;
  back_base_ = (f >> 1) * static_cast<std::uint64_t>(e.mbs_y());
  // In-loop deblocking rewrites rows after entropy coding, so rows are only
  // final per-frame; without it each reconstructed row is final the moment
  // its macroblocks are, and publication is row-granular.
  row_publish_ = pipelined() && !e.config_.deblock;
  e.recon_ = &e.recon_buf_[f & 1];
  e.back_ref_ = &e.recon_buf_[(f + 1) & 1];
  e.coded_field_.reset_for_picture(e.size_.width, e.size_.height);

  if (row_publish_) {
    row_done_.assign(static_cast<std::size_t>(e.mbs_y()), 0);
    row_prefix_ = 0;
  }

  const std::uint64_t frame_start_bits = e.writer_.bit_count();
  // Frame 0's packet absorbs the sequence header so that concatenating the
  // per-frame packets reproduces Encoder::finish() byte for byte.
  const std::size_t stream_begin = f == 0 ? 0 : e.writer_.bytes().size();

  e.writer_.align();
  e.writer_.put_bits(kFrameSync, 16);
  e.writer_.put_bits(intra_frame ? 0 : 1, 1);
  e.writer_.put_bits(static_cast<std::uint32_t>(e.config_.qp), 5);
  e.writer_.put_bit(e.config_.deblock);

  Encoder::MbBitCounters counters;
  counters.header = e.writer_.bit_count() - frame_start_bits;

  util::Timer entropy_timer;
  {
    obs::Span entropy_span("enc", "stage.entropy", tsess, tframe);
    entropy_stage(intra_frame, counters, report);
  }
  report.entropy_stage_seconds = entropy_timer.seconds();
  record_latency(e.stage_metrics_.entropy, report.entropy_stage_seconds);

  e.writer_.align();

  // entropy_stage counted every inter-coded attempt; re-express the ones
  // that degraded to SKIP, matching the report's historical semantics.
  report.inter_mbs -= report.skip_mbs;

  report.bits = e.writer_.bit_count() - frame_start_bits;
  report.mv_bits = counters.mv;
  report.coeff_bits = counters.coeff;
  report.header_bits = counters.header;

  if (e.config_.deblock) {
    deblock_frame(*e.recon_, e.config_.qp);
  }
  if (!row_publish_) {
    e.recon_->extend_borders();
  }
  // else: every row was border-extended strip by strip as it was published;
  // re-extending here would rewrite (identical) border bytes under the next
  // frame's gated readers.
  if (pipelined()) {
    // Whole frame final (covers the deblock path, and releases a waiter of
    // any row in the non-deblock path that raced the last strip).
    ref_ready_[back_parity_].publish(back_base_ +
                                     static_cast<std::uint64_t>(e.mbs_y()));
  }
  report.psnr_y = video::psnr_luma(src, *e.recon_);
  report.psnr_yuv = video::psnr_yuv(src, *e.recon_);

  e.last_recon_ = e.recon_;
  e.last_me_field_ = &e.me_fields_[f & 1];

  if (bytes_out != nullptr) {
    const std::span<const std::uint8_t> stream = e.writer_.bytes();
    bytes_out->assign(stream.begin() + static_cast<std::ptrdiff_t>(stream_begin),
                      stream.end());
  }
}

// ------------------------------------------------------------ motion stage

me::EstimateResult EncoderPipeline::estimate_block(
    me::MotionEstimator& estimator, const video::Frame& src, int bx,
    int by) const {
  const Encoder& e = enc_;
  me::BlockContext ctx;
  ctx.cur = &src.y();
  ctx.ref = &e.ref_half_;
  ctx.x = bx * kMb;
  ctx.y = by * kMb;
  ctx.bx = bx;
  ctx.by = by;
  ctx.window = me::unrestricted_window(e.config_.search_range);
  // Rate-aware search (me_lambda > 0) prices MVD bits against the median of
  // the ME field: its inputs (left, above, above-right) are exactly the
  // wavefront-ordered entries, so the predictor is identical in serial and
  // parallel encodes. λ = 0 (default) makes cost ≡ SAD.
  ctx.cost = me::MotionCost(e.config_.me_lambda,
                            e.me_field_->median_predictor(bx, by));
  ctx.half_pel = e.config_.half_pel;
  ctx.cur_field = e.me_field_;
  ctx.prev_field = e.prev_me_field_;
  ctx.qp = e.config_.qp;
  ctx.frame = static_cast<int>(front_frame_);
  return estimator.estimate(ctx);
}

std::uint64_t EncoderPipeline::rows_needed(int by) const {
  const Encoder& e = enc_;
  // Deepest reference row an ME read of block row `by` can touch: the block
  // itself, displaced by up to +search_range (candidates are clamped to the
  // search window), plus one sample row consumed by half-pel interpolation
  // and one row of slack. Reads past the picture bottom resolve in the
  // replicated border, which is only final once the last row's strip is —
  // hence the clamp to "all rows".
  const int bottom = by * kMb + (kMb - 1) + e.config_.search_range + 2;
  if (bottom >= e.size_.height) {
    return static_cast<std::uint64_t>(e.mbs_y());
  }
  return static_cast<std::uint64_t>(bottom / kMb + 1);
}

void EncoderPipeline::motion_stage(const video::Frame& src,
                                   FrameReport& report) {
  std::vector<me::EstimateResult>& results = me_results_[front_parity_];
  const std::size_t mbs = static_cast<std::size_t>(enc_.mbs_x()) *
                          static_cast<std::size_t>(enc_.mbs_y());
  results.assign(mbs, me::EstimateResult{});

  if (active_pool_ != nullptr) {
    motion_stage_wavefront(src);
  } else {
    motion_stage_serial(src);
  }

  // Serial reduction keeps the report totals independent of scheduling.
  for (const me::EstimateResult& er : results) {
    report.me_positions += er.positions;
    if (er.used_full_search) {
      ++report.full_search_blocks;
    }
  }
}

void EncoderPipeline::motion_stage_serial(const video::Frame& src) {
  Encoder& e = enc_;
  std::vector<me::EstimateResult>& results = me_results_[front_parity_];
  me::MotionEstimator& estimator =
      front_degraded_ ? *e.degraded_estimator_ : *e.estimator_;
  const int mbs_x = e.mbs_x();
  const int mbs_y = e.mbs_y();
  for (int by = 0; by < mbs_y; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      results[idx] = estimate_block(estimator, src, bx, by);
      e.me_field_->set(bx, by, results[idx].mv);
    }
  }
}

void EncoderPipeline::motion_stage_wavefront(const video::Frame& src) {
  Encoder& e = enc_;
  ensure_workers();
  std::vector<me::EstimateResult>& results = me_results_[front_parity_];
  std::vector<std::unique_ptr<me::MotionEstimator>>& stage_workers =
      front_degraded_ ? degraded_workers_ : workers_;
  const int mbs_x = e.mbs_x();
  const int mbs_y = e.mbs_y();

  // progress[by] = macroblocks of row `by` finished so far. Block (bx, by)
  // may start once row by−1 has finished through column bx+1 (its
  // above-right predictor) — the classic two-block wavefront stagger. The
  // dependency wait parks on a per-row condition variable after a short
  // spin (WavefrontProgress), so a stalled row sleeps instead of burning a
  // core yielding — the behaviour that matters once rows outnumber cores or
  // the machine is busy.
  util::WavefrontProgress progress(mbs_y);

  for (int by = 0; by < mbs_y; ++by) {
    // One task per row. The lane dispatches FIFO, so a row's predecessor is
    // always running or finished before the row starts: the dependency wait
    // below cannot deadlock.
    submit_stage_task(front_group_, [this, &src, &progress, by, mbs_x,
                                     &results, &stage_workers, &e] {
      const std::int32_t tsess = trace_arg(e.trace_session_);
      const std::int32_t tframe = trace_arg(front_frame_);
      // Cross-frame gate first: park until the previous frame's entropy
      // stage has published every reference row this row's search window
      // can touch. The publisher (the back task, dispatched earlier on this
      // lane) never parks on this frame, so the wait always resolves.
      if (front_gate_ != nullptr) {
        obs::Span wait_span("enc", "wait.ref_rows", tsess, tframe, by);
        front_gate_->wait_for(front_wait_base_ + rows_needed(by));
      }
      obs::Span row_span("enc", "me.row", tsess, tframe, by);
      const int worker = util::ThreadPool::worker_index();
      assert(worker >= 0 && worker < static_cast<int>(stage_workers.size()));
      me::MotionEstimator& estimator =
          *stage_workers[static_cast<std::size_t>(worker)];
      try {
        for (int bx = 0; bx < mbs_x; ++bx) {
          if (by > 0) {
            progress.wait_for(by - 1, std::min(bx + 2, mbs_x));
          }
          const std::size_t idx =
              static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) +
              static_cast<std::size_t>(bx);
          results[idx] = estimate_block(estimator, src, bx, by);
          e.me_field_->set(bx, by, results[idx].mv);
          progress.publish(by, bx + 1);
        }
      } catch (...) {
        // Mark the whole row complete before the pool captures the error:
        // dependent rows park on this row's progress, and the stage barrier
        // can only rethrow once every row task has finished.
        progress.publish(by, mbs_x);
        throw;
      }
    });
  }
  wait_stage(front_group_);

  // Drain every worker's statistics into the caller's estimator. Totals are
  // additive, so the result matches a serial run regardless of which worker
  // processed which rows. Fronts serialise per session, so this never races
  // with another frame of the same estimator.
  me::MotionEstimator& primary =
      front_degraded_ ? *e.degraded_estimator_ : *e.estimator_;
  for (const auto& worker : stage_workers) {
    primary.merge_stats(*worker);
  }
}

// -------------------------------------------------------------- mode stage

void EncoderPipeline::mode_stage_rows(const video::Frame& src, int row_begin,
                                      int row_end) {
  const Encoder& e = enc_;
  const std::vector<me::EstimateResult>& results = me_results_[front_parity_];
  std::vector<std::uint8_t>& use_intra_flags = use_intra_[front_parity_];
  const int mbs_x = e.mbs_x();
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      // TMN5 heuristic: INTRA when the block's own activity (Intra_SAD)
      // undercuts the motion-compensated SAD by more than the bias.
      const std::uint32_t activity =
          me::intra_sad(src.y(), bx * kMb, by * kMb, kMb, kMb);
      const bool use_intra =
          static_cast<std::int64_t>(activity) + e.config_.intra_bias <
          static_cast<std::int64_t>(results[idx].sad);
      use_intra_flags[idx] = use_intra ? 1 : 0;
    }
  }
}

void EncoderPipeline::mode_stage(const video::Frame& src) {
  const Encoder& e = enc_;
  const int mbs_x = e.mbs_x();
  const int mbs_y = e.mbs_y();

  if (e.config_.mode_decision == ModeDecision::kRateDistortion) {
    // RD decisions price MVD bits against the coded-field median predictor,
    // which only exists as entropy coding progresses — the decision is made
    // per block inside the (serial) entropy stage, and use_intra_ is never
    // read there.
    return;
  }

  use_intra_[front_parity_].assign(
      static_cast<std::size_t>(mbs_x) * static_cast<std::size_t>(mbs_y), 0);

  if (active_pool_ != nullptr) {
    // Independent per block — plain row slices, no wavefront needed.
    const int rows_per_task =
        std::max(1, (mbs_y + worker_count_ - 1) / worker_count_);
    for (int begin = 0; begin < mbs_y; begin += rows_per_task) {
      const int end = std::min(begin + rows_per_task, mbs_y);
      submit_stage_task(front_group_, [this, &src, begin, end] {
        mode_stage_rows(src, begin, end);
      });
    }
    wait_stage(front_group_);
  } else {
    mode_stage_rows(src, 0, mbs_y);
  }
}

// -------------------------------------------------------------- plan stage

void EncoderPipeline::plan_stage_rows(const video::Frame& src,
                                      bool intra_frame, int row_begin,
                                      int row_end) {
  const Encoder& e = enc_;
  const std::vector<me::EstimateResult>& results = me_results_[front_parity_];
  const std::vector<std::uint8_t>& use_intra_flags = use_intra_[front_parity_];
  std::vector<Encoder::MbPlan>& plans = plans_[front_parity_];
  const int mbs_x = e.mbs_x();
  const bool rd = e.config_.mode_decision == ModeDecision::kRateDistortion;
  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      const me::Mv mv = intra_frame ? me::Mv{} : results[idx].mv;
      // use_intra_ is only filled by the heuristic mode stage; RD plans
      // both candidates and lets stage 3 pick.
      const bool use_intra = !intra_frame && !rd && use_intra_flags[idx] != 0;
      e.plan_mb(src, bx, by, intra_frame, mv, use_intra, plans[idx]);
    }
  }
}

void EncoderPipeline::plan_stage(const video::Frame& src, bool intra_frame) {
  Encoder& e = enc_;
  const int mbs_x = e.mbs_x();
  const int mbs_y = e.mbs_y();
  plans_[front_parity_].resize(static_cast<std::size_t>(mbs_x) *
                               static_cast<std::size_t>(mbs_y));

  if (active_pool_ != nullptr) {
    // Independent per block — plain row slices, like the mode stage.
    const int rows_per_task =
        std::max(1, (mbs_y + worker_count_ - 1) / worker_count_);
    for (int begin = 0; begin < mbs_y; begin += rows_per_task) {
      const int end = std::min(begin + rows_per_task, mbs_y);
      submit_stage_task(front_group_, [this, &src, intra_frame, begin, end] {
        plan_stage_rows(src, intra_frame, begin, end);
      });
    }
    wait_stage(front_group_);
  } else {
    plan_stage_rows(src, intra_frame, 0, mbs_y);
  }
}

// ----------------------------------------------------------- entropy stage

void EncoderPipeline::publish_back_row(int by) {
  Encoder& e = enc_;
  // Border-extend the strip first: a row is "published" only once every
  // sample a gated reader may touch — including the replicated side/top/
  // bottom bands — is final. Strips are row-disjoint, so concurrent slices
  // extend without overlap.
  e.recon_->extend_border_rows(by * kMb, (by + 1) * kMb);
  std::uint64_t ready = 0;
  {
    const std::lock_guard<std::mutex> lock(publish_mutex_);
    row_done_[static_cast<std::size_t>(by)] = 1;
    // The counter is cumulative, so only the contiguous prefix publishes;
    // out-of-order slice completions park here until the gap row lands.
    while (row_prefix_ < e.mbs_y() &&
           row_done_[static_cast<std::size_t>(row_prefix_)] != 0) {
      ++row_prefix_;
    }
    ready = back_base_ + static_cast<std::uint64_t>(row_prefix_);
  }
  // publish() takes a running max, so two slices racing here can never
  // regress the counter (the mutex orders the prefix computation; the
  // publication order outside it does not matter).
  ref_ready_[back_parity_].publish(ready);
}

void EncoderPipeline::entropy_slice(bool intra_frame,
                                    Encoder::SliceState& slice, int row_begin,
                                    int row_end) {
  Encoder& e = enc_;
  obs::Span span("enc", "entropy.slice", trace_arg(e.trace_session_),
                 trace_arg(back_frame_), row_begin);
  const std::vector<Encoder::MbPlan>& plans = plans_[back_parity_];
  // Same stride source as the stages that filled me_results_/plans_.
  const int mbs_x = e.mbs_x();

  for (int by = row_begin; by < row_end; ++by) {
    for (int bx = 0; bx < mbs_x; ++bx) {
      const std::size_t idx =
          static_cast<std::size_t>(by) * static_cast<std::size_t>(mbs_x) + bx;
      e.write_mb_from_plan(intra_frame, plans[idx], bx, by, slice);
    }
    if (row_publish_) {
      publish_back_row(by);
    }
  }
}

void EncoderPipeline::fold_slice(const Encoder::SliceState& slice,
                                 Encoder::MbBitCounters& counters,
                                 FrameReport& report) {
  counters.mv += slice.counters.mv;
  counters.coeff += slice.counters.coeff;
  counters.header += slice.counters.header;
  report.intra_mbs += slice.intra_mbs;
  report.inter_mbs += slice.inter_mbs;
  report.skip_mbs += slice.skip_mbs;
}

void EncoderPipeline::entropy_stage(bool intra_frame,
                                    Encoder::MbBitCounters& counters,
                                    FrameReport& report) {
  Encoder& e = enc_;
  const int mbs_y = e.mbs_y();
  const int slice_count = e.slices_;  // clamped to [1, mbs_y] at construction

  if (slice_count == 1) {
    // Legacy ACV1 framing: one implicit slice straight into the stream
    // writer, no slice directory — byte-identical to the pre-slice encoder.
    Encoder::SliceState slice;
    slice.writer = &e.writer_;
    slice.first_mb_row = 0;
    entropy_slice(intra_frame, slice, 0, mbs_y);
    fold_slice(slice, counters, report);
    return;
  }

  // ACV2: each slice entropy-codes its rows into a private writer. Slice s
  // owns rows [s·mbs_y/N, (s+1)·mbs_y/N) — the same deterministic split the
  // decoder reconstructs from the slice headers. All inputs (me_results_,
  // use_intra_, the reference) are fixed before this stage, and slices
  // write only row-disjoint state, so the tasks are embarrassingly parallel
  // and the bytes are independent of scheduling. The writers are pipeline
  // members reset (not destroyed) per frame, so their payload buffers are
  // reused across frames.
  slice_writers_.resize(static_cast<std::size_t>(slice_count));
  std::vector<util::BitWriter>& writers = slice_writers_;
  std::vector<Encoder::SliceState> slices(
      static_cast<std::size_t>(slice_count));
  for (int s = 0; s < slice_count; ++s) {
    slices[static_cast<std::size_t>(s)].writer =
        &writers[static_cast<std::size_t>(s)];
    slices[static_cast<std::size_t>(s)].first_mb_row = s * mbs_y / slice_count;
  }
  const auto row_end = [&](int s) {
    return s + 1 < slice_count
               ? slices[static_cast<std::size_t>(s) + 1].first_mb_row
               : mbs_y;
  };

  if (active_pool_ != nullptr) {
    for (int s = 0; s < slice_count; ++s) {
      Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
      const int end = row_end(s);
      submit_stage_task(back_group_, [this, intra_frame, &slice, end] {
        entropy_slice(intra_frame, slice, slice.first_mb_row, end);
      });
    }
    wait_stage(back_group_);
  } else {
    for (int s = 0; s < slice_count; ++s) {
      Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
      entropy_slice(intra_frame, slice, slice.first_mb_row, row_end(s));
    }
  }

  // Slice directory + byte-aligned payload concatenation, in slice order.
  const std::uint64_t dir_start = e.writer_.bit_count();
  e.writer_.align();
  e.writer_.put_bits(static_cast<std::uint32_t>(slice_count), 8);
  counters.header += e.writer_.bit_count() - dir_start;
  for (int s = 0; s < slice_count; ++s) {
    Encoder::SliceState& slice = slices[static_cast<std::size_t>(s)];
    util::BitWriter& writer = writers[static_cast<std::size_t>(s)];
    writer.align();  // zero-pad the tail exactly as take() did
    const std::span<const std::uint8_t> payload = writer.bytes();
    const std::uint64_t header_start = e.writer_.bit_count();
    e.writer_.put_bits(kSliceSync, 16);
    e.writer_.put_bits(static_cast<std::uint32_t>(s), 8);
    e.writer_.put_bits(static_cast<std::uint32_t>(slice.first_mb_row), 16);
    e.writer_.put_bits(static_cast<std::uint32_t>(payload.size()), 32);
    counters.header += e.writer_.bit_count() - header_start;
    e.writer_.put_bytes(payload);
    // Keep the byte buffer's capacity for the next frame's payload.
    writer.reset();
    fold_slice(slice, counters, report);
  }
}

}  // namespace acbm::codec
