#pragma once
// String key=value ↔ codec::EncoderConfig bridge (the encoder half of the
// project's spec grammar; the estimator half is me/spec.hpp).
//
// A config spec is a comma-separated key=value list over typed keys:
//
//   "qp=20,slices=4,threads=0"      — override three fields
//   "mode=rd,deblock=1"             — enum and bool keys
//   ""                              — all defaults
//
// encoder_config_from_spec applies a spec on top of a base config (defaults
// unless given), validating every key, value and range; unknown keys fail
// with the full key table. to_spec renders a config back into the grammar
// canonically — every key, declaration order — and parses back to an equal
// config, so benches and the CLI can stamp the exact configuration into
// artifacts (BENCH_ci.json context, encoder logs) and reproduce it from the
// stamp alone.

#include <string>
#include <string_view>

#include "codec/decoder.hpp"
#include "codec/encoder.hpp"

namespace acbm::codec {

/// @brief Parses "key=val,key=val" into an EncoderConfig.
/// @param spec the pair list; keys not mentioned keep `base`'s value
/// @param base starting configuration (default-constructed by default)
/// @throws util::SpecError on syntax errors, unknown keys (message lists
///         every valid key with default and range), malformed values and
///         out-of-range values
[[nodiscard]] EncoderConfig encoder_config_from_spec(
    std::string_view spec, const EncoderConfig& base = {});

/// @brief Canonical spec of `config`: every key in declaration order.
/// Round-trips: encoder_config_from_spec(to_spec(c)) reproduces c for all
/// fields the grammar covers (ParallelConfig::deterministic is an API
/// reservation and not mapped).
[[nodiscard]] std::string to_spec(const EncoderConfig& config);

/// One line per key (key=default (range): help) — the table unknown-key
/// errors embed and CLI --help prints.
[[nodiscard]] std::string config_spec_usage();

/// @brief Parses "key=val,key=val" into a DecoderConfig (the decoder half
/// of the grammar: "threads=4,conceal=resync,expect_frames=60").
/// Keys: threads, conceal (slice|resync|off), and the expect_* assertions
/// (width, height, fps, frames, slices, version; -1 = unchecked) that
/// absorb acbm_dec's --expect flag.
/// @throws util::SpecError like encoder_config_from_spec
[[nodiscard]] DecoderConfig decoder_config_from_spec(
    std::string_view spec, const DecoderConfig& base = {});

/// Canonical spec of `config`: every key in declaration order; round-trips
/// through decoder_config_from_spec.
[[nodiscard]] std::string to_spec(const DecoderConfig& config);

/// The decoder key table for usage/error text.
[[nodiscard]] std::string decoder_config_spec_usage();

}  // namespace acbm::codec
