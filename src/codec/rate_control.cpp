#include "codec/rate_control.hpp"

#include <algorithm>
#include <cassert>

namespace acbm::codec {

RateController::RateController(const Config& config)
    : config_(config),
      target_bits_per_frame_(config.target_kbps * 1000.0 / config.fps),
      qp_(config.initial_qp) {
  assert(config.fps > 0.0);
  assert(config.target_kbps > 0.0);
  assert(config.min_qp >= 1 && config.max_qp <= 31);
  assert(config.min_qp <= config.initial_qp &&
         config.initial_qp <= config.max_qp);
}

void RateController::frame_encoded(std::uint64_t bits) {
  buffer_bits_ += static_cast<double>(bits) - target_bits_per_frame_;
  // Leaky-bucket semantics on both sides: an idle channel cannot bank more
  // than one second of credit, and a bucket more than two seconds over-full
  // has already overflowed (a real system would be dropping frames), so the
  // controller does not owe debt beyond that horizon.
  const double min_buffer = -config_.fps * target_bits_per_frame_;
  const double max_buffer = 2.0 * config_.fps * target_bits_per_frame_;
  buffer_bits_ = std::clamp(buffer_bits_, min_buffer, max_buffer);

  const double backlog = backlog_frames();
  int step = 0;
  if (backlog > 4.0) {
    step = 2;
  } else if (backlog > config_.upper_deadband) {
    step = 1;
  } else if (backlog < 4.0 * config_.lower_deadband) {
    step = -2;
  } else if (backlog < config_.lower_deadband) {
    step = -1;
  }
  qp_ = std::clamp(qp_ + step, config_.min_qp, config_.max_qp);
}

void RateController::set_target_kbps(double kbps) {
  assert(kbps > 0.0);
  config_.target_kbps = kbps;
  target_bits_per_frame_ = kbps * 1000.0 / config_.fps;
  // Channel renegotiation flushes most of the old backlog: carrying many
  // frames' worth of debt measured at the old rate into the new one would
  // pin Qp at the ceiling long after the channel recovered.
  const double cap = 2.0 * target_bits_per_frame_;
  buffer_bits_ = std::clamp(buffer_bits_, -cap, cap);
}

double RateController::backlog_frames() const {
  return target_bits_per_frame_ > 0.0 ? buffer_bits_ / target_bits_per_frame_
                                      : 0.0;
}

}  // namespace acbm::codec
