#pragma once
// The per-8×8-block transform pipeline shared by encoder and decoder.
//
// Encoder side: samples/residual → DCT → quantize → levels.
// Decoder side (also the encoder's reconstruction loop — both run the same
// code, which is what makes encoder/decoder reconstruction bit-exact):
// levels → dequantize → IDCT → samples/residual.

#include <cstdint>

#include "codec/dct.hpp"

namespace acbm::codec {

/// Forward path for an INTRA block: transforms the 8×8 source samples,
/// quantizes AC coefficients into `levels` (levels[0] = 0) and returns the
/// fixed-step DC level.
std::uint8_t encode_intra_block(const std::uint8_t* src, int src_stride,
                                std::int16_t levels[kDctSamples], int qp);

/// Inverse path for an INTRA block: writes reconstructed samples.
void reconstruct_intra_block(const std::int16_t levels[kDctSamples],
                             std::uint8_t dc_level, int qp, std::uint8_t* dst,
                             int dst_stride);

/// Forward path for an INTER block: transforms src − pred and quantizes.
void encode_inter_block(const std::uint8_t* src, int src_stride,
                        const std::uint8_t* pred, int pred_stride,
                        std::int16_t levels[kDctSamples], int qp);

/// Inverse path for an INTER block: dst = clamp(pred + IDCT(dequant)).
void reconstruct_inter_block(const std::int16_t levels[kDctSamples],
                             const std::uint8_t* pred, int pred_stride, int qp,
                             std::uint8_t* dst, int dst_stride);

}  // namespace acbm::codec
