#pragma once
// The H.263-style hybrid encoder substrate (paper §4: "an H.263 encoder with
// half pixel precision [12]").
//
// Structure per P-frame macroblock:
//   motion estimation (pluggable MotionEstimator) → INTRA/INTER decision
//   (TMN rule) → SKIP detection → DCT/quantize → entropy coding →
//   bit-exact reconstruction for the next frame's reference.
//
// The bitstream ("ACV1") is fully decodable by codec::Decoder; tests verify
// that decoder output is sample-identical to the encoder's reconstruction.
//
// Bitstream layout (all codes defined in this repository):
//   sequence header : 32-bit magic "ACV1", u16 width, u16 height,
//                     u16 fps_num, u16 fps_den                (byte aligned)
//   frame           : u16 sync 0x7E5A, 1-bit type (0=I,1=P), 5-bit qp,
//                     1-bit deblock flag, macroblocks raster order,
//                     byte-align at end
//   I macroblock    : 6× u8 intra DC, 6-bit CBP, AC run/level per set block
//   P macroblock    : COD bit (1 = skip);
//                     coded: 1-bit intra flag;
//                       intra: as I macroblock
//                       inter: MVD (se×2 vs median predictor), 6-bit CBP,
//                              run/level per set block
//   block order     : Y00 Y10 Y01 Y11 Cb Cr
//
// Slice revision ("ACV2", emitted only when EncoderConfig::slices > 1 so
// single-slice streams stay byte-identical to ACV1):
//   sequence header : as ACV1 but magic "ACV2"
//   frame           : u16 sync, type/qp/deblock bits as ACV1, byte-align,
//                     u8 slice_count, then slice_count slices
//   slice           : u16 slice sync 0x534C ("SL"), u8 slice index,
//                     u16 first MB row, u32 payload byte length, payload
//                     (byte aligned; macroblocks of the slice's rows in
//                     raster order, byte-align at end)
//   Differential MV prediction resets at every slice boundary (the slice's
//   first row predicts like a picture's first row), so each slice payload
//   decodes independently of its siblings — and in parallel.

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "codec/dct.hpp"
#include "codec/session_error.hpp"
#include "me/estimator.hpp"
#include "me/mv_field.hpp"
#include "util/bitstream.hpp"
#include "video/frame.hpp"
#include "video/interp.hpp"

namespace acbm::util {
class FaultInjector;
class ThreadPool;
}

namespace acbm::obs {
class Histogram;
class Registry;
}

namespace acbm::codec {

/// Magic and sync constants of the ACV1 bitstream.
inline constexpr std::uint32_t kSequenceMagic = 0x41435631;    // "ACV1"
inline constexpr std::uint32_t kSequenceMagicV2 = 0x41435632;  // "ACV2"
inline constexpr std::uint32_t kFrameSync = 0x7E5A;
/// Marker starting every slice header in ACV2 streams ("SL"). Lets a decoder
/// that lost a slice's payload re-verify it is standing on the next header
/// before trusting its fields.
inline constexpr std::uint32_t kSliceSync = 0x534C;
/// u8 on the wire bounds the per-frame slice count.
inline constexpr int kMaxSlices = 255;

/// Threading knobs for the encoding pipeline. The motion-estimation stage
/// runs row-parallel in wavefront order (row N may lead row N+1 by at least
/// two macroblocks), which keeps every spatial predictor a block reads —
/// left, above, above-right — computed before the read. Each worker owns a
/// clone() of the caller's estimator; per-sequence statistics flow back via
/// MotionEstimator::merge_stats after every frame, so the primary
/// estimator's totals match a serial run exactly.
struct ParallelConfig {
  /// Worker threads for the parallel stages: 1 = serial (default),
  /// 0 = one per hardware thread, N = exactly N workers.
  int threads = 1;
  /// Bit-exact scheduling. The wavefront order used today is always
  /// deterministic — serial and N-thread encodes produce identical ACV1
  /// bytes — so this flag is an API reservation for future relaxed-order
  /// modes (free-running rows trading determinism for throughput); setting
  /// it false currently changes nothing.
  bool deterministic = true;
};

/// How the encoder chooses each P-frame macroblock's mode.
enum class ModeDecision {
  /// TMN5 heuristic: INTRA if Intra_SAD < SAD_inter − bias; SKIP if the
  /// zero-vector residual quantises away. What the paper's encoder [12] does.
  kHeuristic,
  /// Full Lagrangian decision: J = SSD + λ_mode·bits evaluated for SKIP,
  /// INTER and INTRA and the minimum transmitted — the cost function of the
  /// paper's §2.1 applied to mode selection (λ_mode = 0.85·Qp²).
  kRateDistortion,
};

struct EncoderConfig {
  int qp = 16;              ///< quantiser, 1..31
  int search_range = 15;    ///< ±p integer samples (paper: 15)
  bool half_pel = true;     ///< half-pel refinement + compensation
  int intra_period = 0;     ///< 0 = only frame 0 is intra; else every Nth
  double me_lambda = 0.0;   ///< λ for rate-aware ME (0 = pure SAD, paper)
  int intra_bias = 500;     ///< TMN INTRA decision: intra if A < SAD − bias
  bool allow_skip = true;   ///< emit COD=1 for zero-MV zero-CBP macroblocks
  bool deblock = false;     ///< in-loop Annex-J deblocking filter
  /// Independently-predicted entropy-coding slices per frame. 1 (default)
  /// emits the legacy ACV1 stream byte for byte; N > 1 emits ACV2 with N
  /// byte-aligned slice payloads per frame that the pipeline entropy-codes
  /// in parallel (and a decoder may parse in parallel). Clamped to the
  /// picture's macroblock rows and the wire limit of 255. Output is
  /// deterministic: a given slice count produces identical bytes at every
  /// thread count and kernel variant.
  int slices = 1;
  ModeDecision mode_decision = ModeDecision::kHeuristic;
  ParallelConfig parallel;  ///< pipeline threading (see ParallelConfig)
  int fps_num = 30;         ///< sequence header only
  int fps_den = 1;
};

/// Per-frame outcome: everything the paper's figures/tables are built from.
struct FrameReport {
  bool intra = false;
  std::uint64_t bits = 0;          ///< total bits for this frame
  double psnr_y = 0.0;             ///< reconstruction vs source, luma
  double psnr_yuv = 0.0;
  int intra_mbs = 0;
  int inter_mbs = 0;
  int skip_mbs = 0;
  std::uint64_t me_positions = 0;  ///< SAD evaluations this frame
  std::uint64_t full_search_blocks = 0;  ///< blocks where FSBM ran
  std::uint64_t mv_bits = 0;
  std::uint64_t coeff_bits = 0;
  std::uint64_t header_bits = 0;   ///< sync + mode/COD/CBP bits
  double me_field_smoothness = 0.0;  ///< MvField::smoothness_l1 of ME field
  /// Wall-clock spent in the pipeline's plan stage (stage 2.5: DCT/quant/RD
  /// candidate costing) and entropy stage (stage 3: MVD coding + bit
  /// writing + reconstruction) for this frame. Instrumentation only — the
  /// stage benches report these so their rows keep measuring the stage they
  /// are named after, not whatever else encode_frame does around it.
  double plan_stage_seconds = 0.0;
  double entropy_stage_seconds = 0.0;
  /// Wall-clock spent in the motion-estimation stage (0 for intra frames),
  /// completing the per-stage coverage the plan/entropy timers started.
  double me_stage_seconds = 0.0;
  /// End-to-end wall clock for the frame, first stage entered to last stage
  /// left. Under frame-level pipelining this spans the overlap with the
  /// neighbouring frames' stages, so it is the per-frame latency a service
  /// caller observes — not the sum of the stage timers.
  double frame_wall_seconds = 0.0;
};

/// One asynchronously encoded frame: the report plus this frame's slice of
/// the bitstream. The byte ranges of consecutive frames tile the stream
/// exactly (frame 0's range includes the sequence header), so concatenating
/// the packets of a session reproduces Encoder::finish() byte for byte.
struct EncodedFrame {
  std::uint64_t frame_index = 0;
  FrameReport report;
  std::vector<std::uint8_t> bytes;
};

class EncoderPipeline;
class ServiceStatsSink;

/// Streaming one-reference hybrid encoder. Feed frames in display order;
/// call finish() once to obtain the bitstream.
///
/// Frame encoding is delegated to an EncoderPipeline (codec/pipeline.hpp),
/// which splits the old monolithic macroblock loop into separable stages —
/// motion estimation, mode decision, macroblock planning (DCT/quant/RD
/// candidate costing), entropy coding + reconstruction — and runs the ME,
/// mode and plan stages across ParallelConfig::threads workers. The
/// pipeline's output is bit-exact regardless of thread count.
class Encoder {
 public:
  /// `estimator` is borrowed and must outlive the encoder — callers keep it
  /// to read algorithm-specific statistics (e.g. core::Acbm::stats()).
  /// With config.parallel.threads != 1 the pipeline workers run clone()s of
  /// it (taken lazily at the first parallel frame) and merge their statistics
  /// back into it after every frame, so stats() reads stay valid and match
  /// a serial run. The clones snapshot the estimator's configuration at that
  /// point: reconfiguring it mid-stream (e.g. Acbm::set_params or
  /// set_record_log after the first P-frame) is only honoured by serial
  /// encodes — finish the configuration before encoding starts.
  Encoder(video::PictureSize size, const EncoderConfig& config,
          me::MotionEstimator& estimator);

  /// Service-mode constructor: the pipeline runs on `shared_pool` (one lane
  /// of it) instead of building its own, and frame-level pipelining is
  /// enabled — submit_frame() overlaps frame t+1's motion estimation with
  /// frame t's entropy coding, gated per reference row so the bitstream
  /// stays byte-identical to the single-frame path.
  /// `config.parallel.threads` is ignored; the pool must outlive the
  /// encoder. Used by codec::EncoderService / EncodeSession.
  Encoder(video::PictureSize size, const EncoderConfig& config,
          me::MotionEstimator& estimator, util::ThreadPool& shared_pool);
  ~Encoder();

  // The pipeline keeps a back-reference to this encoder, so the object must
  // stay put once constructed.
  Encoder(const Encoder&) = delete;
  Encoder& operator=(const Encoder&) = delete;
  Encoder(Encoder&&) = delete;
  Encoder& operator=(Encoder&&) = delete;

  /// Encodes one frame and returns its report.
  FrameReport encode_frame(const video::Frame& src);

  /// Service mode only (shared-pool constructor): enqueues `src` for
  /// asynchronous, frame-pipelined encoding and returns a future for its
  /// packet. Frames complete in submission order. Throws std::logic_error
  /// when the encoder was not built on a shared pool. Thread-safe against
  /// the pool's workers but not against concurrent submitters — one thread
  /// drives a session.
  std::future<EncodedFrame> submit_frame(video::Frame src);

  /// Service mode with admission controls (deadline / bounded queue /
  /// degradation — see SubmitOptions). Admission rejections resolve the
  /// returned future with a SessionError instead of throwing.
  std::future<EncodedFrame> submit_frame(video::Frame src,
                                         const SubmitOptions& options);

  /// Like submit_frame(src, options), but an overload rejection returns
  /// std::nullopt (poll-style backpressure) instead of an error future.
  std::optional<std::future<EncodedFrame>> try_submit_frame(
      video::Frame src, const SubmitOptions& options);

  /// Blocks until every submit_frame() has resolved. No-op otherwise.
  /// Returns normally on a failed session (the error already surfaced
  /// through the per-frame futures).
  void drain();

  /// True once a frame's stage threw and latched this (service-mode)
  /// encoder failed: queued frames were resolved with kSessionFailed and
  /// later submits fail fast. Always false in standalone mode.
  [[nodiscard]] bool failed() const;

  /// Installs the service's shared health counters; the pipeline bumps
  /// them at every admission/resolution point. May be null (standalone).
  void set_stats_sink(ServiceStatsSink* sink) { stats_sink_ = sink; }

  /// Arms deterministic fault injection for this encoder's frames: the
  /// injector is queried at front dispatch with (lane, submit_seq). The
  /// injector is borrowed and must outlive the encoder; null disarms.
  void set_fault_injector(const util::FaultInjector* injector,
                          std::uint64_t lane) {
    fault_ = injector;
    fault_lane_ = lane;
  }

  /// Installs the metrics registry the pipeline records stage latencies
  /// into ("enc.stage.me/plan/entropy", "enc.frame.wall" histograms, in
  /// nanoseconds). Null disarms. The registry must outlive the encoder.
  /// The per-frame FrameReport stage timers keep being filled either way —
  /// they are now thin per-frame reads of the same measurements the
  /// histograms aggregate.
  void set_metrics(obs::Registry* registry);

  /// Session id stamped into this encoder's trace spans and async
  /// submit→resolve ids (obs::Span `session` arg). Defaults to 0.
  void set_trace_session(std::uint64_t id) { trace_session_ = id; }

  /// Installs the overload (degraded) estimator: frames admitted with
  /// SubmitOptions::degrade_on_overload past the queue limit run their
  /// motion stage on clones of this estimator instead of being shed.
  /// Install before the first encoded frame (worker clones are taken then).
  void set_degraded_estimator(std::unique_ptr<me::MotionEstimator> estimator) {
    degraded_estimator_ = std::move(estimator);
  }

  /// Byte-aligns and returns the complete bitstream; the encoder must not
  /// be used afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Changes the quantiser for subsequent frames (rate control). The frame
  /// header carries Qp, so the stream stays decodable across changes.
  /// Throws std::invalid_argument outside [1, 31].
  void set_qp(int qp);

  /// Reconstruction of the most recently encoded frame (the decoder's
  /// reference) — what the paper's PSNR is measured on. Meaningful only
  /// between frames (after encode_frame returns / the packet's future
  /// resolves, before the next frame starts).
  [[nodiscard]] const video::Frame& last_recon() const { return *last_recon_; }

  /// Motion field found by the estimator for the last P-frame. Same
  /// between-frames caveat as last_recon().
  [[nodiscard]] const me::MvField& last_me_field() const {
    return *last_me_field_;
  }

  /// Motion field as actually coded (zeros for intra/skip macroblocks).
  [[nodiscard]] const me::MvField& last_coded_field() const {
    return coded_field_;
  }

  [[nodiscard]] std::uint64_t total_bits() const { return writer_.bit_count(); }
  [[nodiscard]] const EncoderConfig& config() const { return config_; }
  [[nodiscard]] video::PictureSize size() const { return size_; }

  /// Effective entropy-coding slices per frame: config().slices clamped to
  /// the picture's macroblock rows and the wire limit. 1 means the stream
  /// is legacy ACV1; anything larger means ACV2.
  [[nodiscard]] int slices() const { return slices_; }

 private:
  friend class EncoderPipeline;

  /// Delegation target of both public constructors; `shared_pool` null
  /// means standalone (the pipeline builds its own pool per
  /// config.parallel).
  Encoder(video::PictureSize size, const EncoderConfig& config,
          me::MotionEstimator& estimator, util::ThreadPool* shared_pool);

  /// Per-frame tallies of where the bits went (FrameReport breakdown).
  struct MbBitCounters {
    std::uint64_t mv = 0;
    std::uint64_t coeff = 0;
    std::uint64_t header = 0;
  };

  /// Everything one entropy-coding slice owns while its rows are coded: the
  /// destination writer, the prediction boundary, and its share of the
  /// frame tallies. Slices touch no shared mutable encoder state, which is
  /// what lets the pipeline run them concurrently; the pipeline folds the
  /// tallies back into the FrameReport in slice order afterwards.
  struct SliceState {
    util::BitWriter* writer = nullptr;
    int first_mb_row = 0;  ///< MV prediction resets here (slice boundary)
    MbBitCounters counters;
    int intra_mbs = 0;
    int inter_mbs = 0;  ///< inter-coded attempts, including SKIP outcomes
    int skip_mbs = 0;
  };

  /// A fully transformed INTRA macroblock, not yet written or reconstructed.
  struct IntraPlan {
    std::int16_t levels[6][kDctSamples];
    std::uint8_t dc[6];
    std::uint32_t cbp = 0;

    /// Exact payload bits (DCs + CBP + coefficients; excludes COD/mode
    /// bits).
    [[nodiscard]] std::uint32_t payload_bits() const;

    /// Reconstructs into 16×16 luma + two 8×8 chroma scratch buffers.
    void reconstruct(int qp, std::uint8_t* y16, std::uint8_t* cb8,
                     std::uint8_t* cr8) const;
  };

  /// A fully predicted+transformed INTER macroblock.
  struct InterPlan {
    me::Mv mv;
    std::uint8_t pred_y[me::kBlockSize * me::kBlockSize];
    std::uint8_t pred_cb[8 * 8];
    std::uint8_t pred_cr[8 * 8];
    std::int16_t levels[6][kDctSamples];
    std::uint32_t cbp = 0;

    [[nodiscard]] bool skippable() const {
      return mv == me::Mv{0, 0} && cbp == 0;
    }

    /// Payload bits given the differential predictor (MVD + CBP + coeffs;
    /// excludes COD/mode bits).
    [[nodiscard]] std::uint32_t payload_bits(me::Mv predictor) const;

    void reconstruct(int qp, std::uint8_t* y16, std::uint8_t* cb8,
                     std::uint8_t* cr8) const;
  };

  /// Everything the plan stage (EncoderPipeline stage 2.5) precomputes for
  /// one macroblock, leaving stage 3 with only predictor-dependent MVD
  /// coding, bit writing and reconstruction. For rate–distortion mode all
  /// three candidates are planned here; the only cost term that cannot be
  /// precomputed is the MVD code length, which depends on the coded-field
  /// median predictor and therefore on every earlier decision in the slice
  /// — so the plan carries the predictor-independent pieces (candidate SSDs
  /// and non-MVD bit counts) and write_mb_from_plan finishes the J
  /// comparison with one cheap mvd_bits() call per macroblock.
  struct MbPlan {
    IntraPlan intra;  ///< valid when has_intra (or rd)
    InterPlan inter;  ///< valid when has_inter (or rd)
    bool has_intra = false;
    bool has_inter = false;
    bool rd = false;  ///< stage 3 must run the three-way J comparison
    /// RD precomputation: full J for the predictor-independent candidates…
    double j_intra = 0.0;
    double j_skip = 0.0;  ///< +inf when SKIP is disallowed
    /// …and the pieces of J_inter around the MVD term.
    std::uint64_t inter_ssd = 0;
    std::uint32_t inter_body_bits = 0;  ///< CBP + coefficient bits, no MVD
  };

  void write_sequence_header();

  IntraPlan plan_intra_mb(const video::Frame& src, int bx, int by) const;
  InterPlan plan_inter_mb(const video::Frame& src, int bx, int by,
                          me::Mv mv) const;

  /// Stage-2.5 entry point: plans macroblock (bx, by) according to the
  /// frame type / mode decision without touching any mutable encoder state
  /// — safe to call concurrently for distinct macroblocks.
  void plan_mb(const video::Frame& src, int bx, int by, bool intra_frame,
               me::Mv mv, bool use_intra, MbPlan& out) const;

  /// Stage-3 entry point: entropy-codes macroblock (bx, by) into `slice`
  /// from its precomputed plan and reconstructs it. Serial per slice (the
  /// MVD predictor chains through coded_field_).
  void write_mb_from_plan(bool intra_frame, const MbPlan& plan, int bx,
                          int by, SliceState& slice);

  void write_rd_mb_from_plan(const MbPlan& plan, int bx, int by,
                             SliceState& slice);
  void write_intra_plan(const IntraPlan& plan, SliceState& slice);
  /// MVD + CBP + coefficients of a coded INTER macroblock (after the
  /// COD/mode bits), with the slice's mv/coeff tallies updated.
  void write_inter_plan_payload(const InterPlan& plan, me::Mv predictor,
                                SliceState& slice);
  void reconstruct_intra_plan(const IntraPlan& plan, int bx, int by);
  void reconstruct_inter_plan(const InterPlan& plan, int bx, int by);
  void reconstruct_skip_mb(int bx, int by);

  /// SSD between the source macroblock and a candidate reconstruction
  /// produced into scratch buffers.
  std::uint64_t mb_ssd(const video::Frame& src, int bx, int by,
                       const std::uint8_t* y16, const std::uint8_t* cb8,
                       const std::uint8_t* cr8) const;

  [[nodiscard]] int mbs_x() const { return size_.width / me::kBlockSize; }
  [[nodiscard]] int mbs_y() const { return size_.height / me::kBlockSize; }

  video::PictureSize size_;
  EncoderConfig config_;
  me::MotionEstimator* estimator_;
  util::BitWriter writer_;

  /// Reconstruction double-buffer. Frame f reconstructs into
  /// recon_buf_[f & 1] and motion-compensates from recon_buf_[(f + 1) & 1]
  /// — the previous frame's reconstruction IS the reference, with no
  /// whole-frame ref_ = recon_ copy per frame, and under frame-level
  /// pipelining frame f+1's ME can read the buffer frame f's entropy stage
  /// is still filling (row-readiness gated by the pipeline). The pipeline
  /// retargets the role pointers below at each frame's stage boundaries.
  video::Frame recon_buf_[2];
  video::Frame* recon_;            ///< current frame's reconstruction target
  const video::Frame* front_ref_;  ///< reference read by ME/plan (stage 1-2.5)
  const video::Frame* back_ref_;   ///< reference read by SKIP recon (stage 3)
  const video::Frame* last_recon_; ///< most recently completed frame
  video::HalfpelPlanes ref_half_;  ///< half-pel view bound onto *front_ref_
  /// ME-field double-buffer, same parity scheme: frame f's estimator output
  /// lands in me_fields_[f & 1] and reads me_fields_[(f + 1) & 1] as the
  /// previous frame's field (temporal predictors).
  me::MvField me_fields_[2];
  me::MvField* me_field_;          ///< estimator output, current frame
  const me::MvField* prev_me_field_;
  const me::MvField* last_me_field_;
  me::MvField coded_field_;        ///< transmitted vectors, current frame
  int slices_ = 1;  ///< config.slices clamped to [1, min(mb rows, 255)]
  bool finished_ = false;
  // Fault-tolerance wiring, read by the pipeline (friend): health counters,
  // injection point, and the overload estimator. All optional.
  ServiceStatsSink* stats_sink_ = nullptr;
  const util::FaultInjector* fault_ = nullptr;
  std::uint64_t fault_lane_ = 0;
  // Observability wiring (obs/): stage-latency histograms cached off the
  // registry at set_metrics time so the hot path never does a name lookup,
  // and the session id trace spans are tagged with. All optional.
  struct StageMetrics {
    obs::Histogram* me = nullptr;
    obs::Histogram* plan = nullptr;
    obs::Histogram* entropy = nullptr;
    obs::Histogram* frame_wall = nullptr;
  };
  obs::Registry* metrics_ = nullptr;
  StageMetrics stage_metrics_;
  std::uint64_t trace_session_ = 0;
  std::unique_ptr<me::MotionEstimator> degraded_estimator_;
  std::unique_ptr<EncoderPipeline> pipeline_;  ///< constructed with *this
};

}  // namespace acbm::codec
