#include "codec/deblock.hpp"

#include <algorithm>
#include <cstdlib>

namespace acbm::codec {

int deblock_strength(int qp) {
  // H.263 Annex J, Table J.2.
  static constexpr int kStrength[32] = {
      0,  1, 1, 2, 2, 3, 3, 4, 4, 4, 5, 5, 6,  6,  7,  7,
      7,  8, 8, 8, 9, 9, 9, 10, 10, 10, 11, 11, 11, 12, 12, 12};
  return kStrength[std::clamp(qp, 1, 31)];
}

namespace {

std::uint8_t clip_sample(int v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

int up_down_ramp(int x, int strength) {
  const int ax = std::abs(x);
  const int value = std::max(0, ax - std::max(0, 2 * (ax - strength)));
  return x >= 0 ? value : -value;
}

}  // namespace

void deblock_edge(std::uint8_t& a, std::uint8_t& b, std::uint8_t& c,
                  std::uint8_t& d, int strength) {
  const int ia = a;
  const int ib = b;
  const int ic = c;
  const int id = d;
  const int diff = (ia - 4 * ib + 4 * ic - id) / 8;
  const int d1 = up_down_ramp(diff, strength);
  const int half = std::abs(d1) / 2;
  const int d2 = std::clamp((ia - id) / 4, -half, half);
  a = clip_sample(ia - d2);
  b = clip_sample(ib + d1);
  c = clip_sample(ic - d1);
  d = clip_sample(id + d2);
}

void deblock_plane(video::Plane& plane, int qp, int block) {
  const int strength = deblock_strength(qp);
  if (strength == 0 || plane.empty()) {
    return;
  }
  // Horizontal edges (filtering vertically across row boundaries).
  for (int edge = block; edge < plane.height(); edge += block) {
    std::uint8_t* r0 = plane.row(edge - 2);
    std::uint8_t* r1 = plane.row(edge - 1);
    std::uint8_t* r2 = plane.row(edge);
    std::uint8_t* r3 = plane.row(edge + 1);
    for (int x = 0; x < plane.width(); ++x) {
      deblock_edge(r0[x], r1[x], r2[x], r3[x], strength);
    }
  }
  // Vertical edges (filtering horizontally across column boundaries).
  for (int y = 0; y < plane.height(); ++y) {
    std::uint8_t* row = plane.row(y);
    for (int edge = block; edge < plane.width(); edge += block) {
      deblock_edge(row[edge - 2], row[edge - 1], row[edge], row[edge + 1],
                   strength);
    }
  }
}

void deblock_frame(video::Frame& frame, int qp) {
  deblock_plane(frame.y(), qp);
  deblock_plane(frame.cb(), qp);
  deblock_plane(frame.cr(), qp);
  frame.extend_borders();
}

}  // namespace acbm::codec
