#pragma once
// Health accounting for the encoding service.
//
// ServiceStatsSink is the hot-path half: a handful of relaxed counters the
// pipeline bumps at admission/resolution points (no lock, no ordering
// requirements — the counters are monotone and only read as a snapshot).
// Since PR 10 the storage lives in an obs::Registry under "svc.*" names, so
// the same numbers surface through the unified metrics layer (acbm_enc
// --metrics, bench_service counters) without a second accounting path; a
// sink constructed standalone owns a private registry so existing call
// sites keep working unchanged. ServiceStats is the cold snapshot handed to
// callers: acbm_enc --summary prints it, bench_service emits it as
// deterministic gateable counters.
//
// The counters form a conservation law a healthy run must satisfy:
//   accepted == completed + timed_out + failed        (once drained)
// and rejected counts frames that were never accepted at all (shed at
// submit with kOverloaded). degraded counts frames that were accepted but
// encoded with the overload estimator, so degraded <= accepted.

#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"

namespace acbm::codec {

/// Point-in-time snapshot of a service/session's health counters.
struct ServiceStats {
  std::uint64_t accepted = 0;          ///< frames admitted to a pipeline
  std::uint64_t completed = 0;         ///< futures resolved with a Packet
  std::uint64_t rejected = 0;          ///< shed at submit (kOverloaded)
  std::uint64_t timed_out = 0;         ///< deadline expired before dispatch
  std::uint64_t failed = 0;            ///< resolved with a fatal error
  std::uint64_t degraded = 0;          ///< encoded with the degraded estimator
  std::uint64_t peak_queue_depth = 0;  ///< max frames awaiting dispatch
};

/// Shared mutable counter block. One sink per EncoderService; every session
/// pipeline on the service bumps the same sink, so the snapshot aggregates
/// across sessions.
class ServiceStatsSink {
 public:
  /// Standalone sink backed by a private registry (tests, ad-hoc use).
  ServiceStatsSink() : owned_(std::make_unique<obs::Registry>()) {
    bind(*owned_);
  }
  /// Sink whose counters live in (and are reported through) `registry`.
  /// The registry must outlive the sink.
  explicit ServiceStatsSink(obs::Registry& registry) { bind(registry); }

  ServiceStatsSink(const ServiceStatsSink&) = delete;
  ServiceStatsSink& operator=(const ServiceStatsSink&) = delete;

  void add_accepted() { accepted_->add(); }
  void add_completed() { completed_->add(); }
  void add_rejected() { rejected_->add(); }
  void add_timed_out() { timed_out_->add(); }
  void add_failed() { failed_->add(); }
  void add_degraded() { degraded_->add(); }

  /// Running max of the per-session admission queue depth.
  void note_queue_depth(std::uint64_t depth) {
    peak_queue_depth_->note_max(depth);
  }

  [[nodiscard]] ServiceStats snapshot() const {
    ServiceStats s;
    s.accepted = accepted_->value();
    s.completed = completed_->value();
    s.rejected = rejected_->value();
    s.timed_out = timed_out_->value();
    s.failed = failed_->value();
    s.degraded = degraded_->value();
    s.peak_queue_depth = peak_queue_depth_->value();
    return s;
  }

 private:
  void bind(obs::Registry& registry) {
    accepted_ = &registry.counter("svc.accepted");
    completed_ = &registry.counter("svc.completed");
    rejected_ = &registry.counter("svc.rejected");
    timed_out_ = &registry.counter("svc.timed_out");
    failed_ = &registry.counter("svc.failed");
    degraded_ = &registry.counter("svc.degraded");
    peak_queue_depth_ = &registry.gauge("svc.peak_queue_depth");
  }

  std::unique_ptr<obs::Registry> owned_;  // only for the default constructor
  obs::Counter* accepted_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* timed_out_ = nullptr;
  obs::Counter* failed_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Gauge* peak_queue_depth_ = nullptr;
};

}  // namespace acbm::codec
