#pragma once
// Health accounting for the encoding service.
//
// ServiceStatsSink is the hot-path half: a handful of relaxed atomics the
// pipeline bumps at admission/resolution points (no lock, no ordering
// requirements — the counters are monotone and only read as a snapshot).
// ServiceStats is the cold snapshot handed to callers: acbm_enc --summary
// prints it, bench_service emits it as deterministic gateable counters.
//
// The counters form a conservation law a healthy run must satisfy:
//   accepted == completed + timed_out + failed        (once drained)
// and rejected counts frames that were never accepted at all (shed at
// submit with kOverloaded). degraded counts frames that were accepted but
// encoded with the overload estimator, so degraded <= accepted.

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace acbm::codec {

/// Point-in-time snapshot of a service/session's health counters.
struct ServiceStats {
  std::uint64_t accepted = 0;          ///< frames admitted to a pipeline
  std::uint64_t completed = 0;         ///< futures resolved with a Packet
  std::uint64_t rejected = 0;          ///< shed at submit (kOverloaded)
  std::uint64_t timed_out = 0;         ///< deadline expired before dispatch
  std::uint64_t failed = 0;            ///< resolved with a fatal error
  std::uint64_t degraded = 0;          ///< encoded with the degraded estimator
  std::uint64_t peak_queue_depth = 0;  ///< max frames awaiting dispatch
};

/// Shared mutable counter block. One sink per EncoderService; every session
/// pipeline on the service bumps the same sink, so the snapshot aggregates
/// across sessions.
class ServiceStatsSink {
 public:
  void add_accepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void add_completed() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void add_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void add_timed_out() { timed_out_.fetch_add(1, std::memory_order_relaxed); }
  void add_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void add_degraded() { degraded_.fetch_add(1, std::memory_order_relaxed); }

  /// Running max of the per-session admission queue depth.
  void note_queue_depth(std::uint64_t depth) {
    std::uint64_t seen = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > seen && !peak_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] ServiceStats snapshot() const {
    ServiceStats s;
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.timed_out = timed_out_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> peak_queue_depth_{0};
};

}  // namespace acbm::codec
