#include "synth/noise.hpp"

#include <cmath>

namespace acbm::synth {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double smoothstep5(double t) {
  // 6t^5 - 15t^4 + 10t^3
  return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

}  // namespace

double lattice_noise(std::uint64_t seed, std::int32_t xi, std::int32_t yi) {
  std::uint64_t h = seed;
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(xi)) |
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(yi))
                  << 32)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smooth_noise(std::uint64_t seed, double x, double y) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto xi = static_cast<std::int32_t>(fx);
  const auto yi = static_cast<std::int32_t>(fy);
  const double tx = smoothstep5(x - fx);
  const double ty = smoothstep5(y - fy);
  const double v00 = lattice_noise(seed, xi, yi);
  const double v10 = lattice_noise(seed, xi + 1, yi);
  const double v01 = lattice_noise(seed, xi, yi + 1);
  const double v11 = lattice_noise(seed, xi + 1, yi + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double fbm(std::uint64_t seed, double x, double y, int octaves,
           double lacunarity, double gain) {
  double sum = 0.0;
  double amplitude = 1.0;
  double total_amplitude = 0.0;
  double fx = x;
  double fy = y;
  for (int i = 0; i < octaves; ++i) {
    sum += amplitude * smooth_noise(seed + static_cast<std::uint64_t>(i) *
                                               0x9E3779B97F4A7C15ull,
                                    fx, fy);
    total_amplitude += amplitude;
    amplitude *= gain;
    fx *= lacunarity;
    fy *= lacunarity;
  }
  return total_amplitude > 0.0 ? sum / total_amplitude : 0.0;
}

}  // namespace acbm::synth
